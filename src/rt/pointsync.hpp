// Point-to-point synchronization: a monotonic progress flag.
//
// The NAS LU OpenMP port pipelines its SSOR wavefronts with per-thread
// progress flags (spin-wait + flush) instead of barriers. ProgressFlag is
// that primitive: a shared monotonic counter a producer posts and
// consumers wait on.
//
// Slipstream semantics follow §2's rule that the A-stream skips
// synchronization: the A-stream neither posts (it would be a shared
// store) nor waits (the flag value it would read is speculative anyway) —
// which is exactly what lets it run ahead of the wavefront and prefetch
// the planes its R-stream will process.
#pragma once

#include <vector>

#include "rt/runtime.hpp"

namespace ssomp::rt {

class ProgressFlag {
 public:
  ProgressFlag(Runtime& rt, std::string name);

  /// Producer: publishes progress `value` (monotonically increasing) and
  /// wakes satisfied waiters. A-streams skip.
  void post(ThreadCtx& t, long value);

  /// Consumer: blocks until the posted progress is >= `value`.
  /// A-streams skip (they run ahead of the wavefront). Waiting time is
  /// attributed to the lock category (the paper's Figure 2 buckets
  /// point-to-point waits with lock synchronization).
  void wait_ge(ThreadCtx& t, long value);

  /// Simulated read of the current progress value.
  [[nodiscard]] long read(ThreadCtx& t) const;

  [[nodiscard]] long value() const { return value_; }

  /// Number of parked waiters (invariant probe: must be zero whenever all
  /// consumers have been satisfied — a nonzero count at quiescence is a
  /// leaked waiter-list entry, i.e. a lost wakeup).
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiter {
    sim::SimCpu* cpu;
    long needed;
  };

  Runtime& rt_;
  std::string name_;
  sim::Addr word_;
  long value_ = 0;
  std::vector<Waiter> waiters_;

  static constexpr int kSpinProbes = 4;
  static constexpr sim::Cycles kBackoff = 300;
};

}  // namespace ssomp::rt
