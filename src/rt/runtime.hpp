// The slipstream-aware OpenMP runtime library (paper §3, §4).
//
// This is the layer the paper's Omni extension modifies: an Omni-style
// process pool (slaves created once at program start, parked between
// regions), parallel regions lowered to callables, worksharing with
// static/dynamic/guided schedules, and all the constructs §3.1 discusses,
// each with its slipstream-aware handling:
//
//   construct    R-stream                A-stream
//   ---------    ---------------------   --------------------------------
//   barrier      insert token (entry =   consume token; wait when none
//                LOCAL, exit = GLOBAL);
//                divergence check
//   for static   compute bounds locally  identical bounds (same id, same
//                                        halved thread count)
//   for dyn/gui  serialize on scheduler  wait on syscall semaphore; read
//                lock; publish chunk +   R's published decision
//                insert syscall token
//   single       compete for ticket      skip
//   master       execute if id 0         execute if paired with master
//   critical     lock; execute           skip (policy: execute unlocked
//                                        with stores as prefetches)
//   atomic       exclusive RMW           exclusive prefetch (policy)
//   reduction    partials + barriers     compute privately, no commit;
//                                        optional sync for fresh result
//   flush        void (hw coherent)      skip
//   shared store normal store            exclusive prefetch when in the
//                                        same session as R, else dropped
//   I/O          execute; insert token   skip output; wait token on input
//                on input completion
//
// The execution mode (single / double / slipstream) is chosen at runtime
// from the same "binary" (program callable), per §3.1.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "front/directive.hpp"
#include "machine/machine.hpp"
#include "rt/degrade.hpp"
#include "rt/options.hpp"
#include "rt/sync_primitives.hpp"
#include "slip/pair.hpp"
#include "slip/watchdog.hpp"
#include "stats/reqclass.hpp"
#include "trace/cycle_account.hpp"

namespace ssomp::rt {

class Runtime;
class ThreadCtx;
class SerialCtx;

/// One participant of a parallel region's team.
struct Member {
  sim::CpuId cpu = sim::kInvalidCpu;
  int tid = 0;  // OpenMP thread id; an A-stream shares its R-stream's id
  stats::StreamRole role = stats::StreamRole::kNone;
  slip::SlipPair* pair = nullptr;  // set in slipstream mode
};

struct Team {
  ExecutionMode mode = ExecutionMode::kSingle;
  int nthreads = 0;  // value returned by omp_get_num_threads()
  slip::SlipstreamConfig slip = slip::SlipstreamConfig::disabled();
  std::vector<Member> members;

  [[nodiscard]] bool slipstream() const {
    return mode == ExecutionMode::kSlipstream && slip.enabled();
  }
};

/// A per-parallel-region execution record (observability: which regions
/// dominate, what mode each ran in, what the slipstream machinery did).
struct RegionRecord {
  int index = 0;                   // region sequence number
  ExecutionMode mode = ExecutionMode::kSingle;
  slip::SlipstreamConfig slip = slip::SlipstreamConfig::disabled();
  int nthreads = 0;
  sim::Cycles start = 0;
  sim::Cycles cycles = 0;          // region duration (dispatch to join)
  std::uint64_t tokens_consumed = 0;
  std::uint64_t converted_stores = 0;
  std::uint64_t dropped_stores = 0;
  std::uint64_t forwarded_chunks = 0;
};

/// Per-region statistics of slipstream machinery.
struct SlipRegionStats {
  std::uint64_t tokens_consumed = 0;
  std::uint64_t tokens_inserted = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t forwarded_chunks = 0;  // dynamic-scheduling decisions sent
  std::uint64_t dropped_stores = 0;    // A-stores skipped outright
  std::uint64_t converted_stores = 0;  // A-stores turned into prefetches
  std::uint64_t restarts = 0;          // mid-region A-stream resyncs
  std::uint64_t benched_barriers = 0;  // R barrier visits with A benched
  std::uint64_t watchdog_trips = 0;    // diagnosed no-progress hangs
  std::uint64_t demotions = 0;         // CMPs demoted to single-stream
  std::uint64_t promotions = 0;        // probation re-promotions

  SlipRegionStats& operator+=(const SlipRegionStats& o) {
    tokens_consumed += o.tokens_consumed;
    tokens_inserted += o.tokens_inserted;
    recoveries += o.recoveries;
    forwarded_chunks += o.forwarded_chunks;
    dropped_stores += o.dropped_stores;
    converted_stores += o.converted_stores;
    restarts += o.restarts;
    benched_barriers += o.benched_barriers;
    watchdog_trips += o.watchdog_trips;
    demotions += o.demotions;
    promotions += o.promotions;
    return *this;
  }
};

/// Execution context handed to code inside a parallel region.
class ThreadCtx {
 public:
  ThreadCtx(Runtime& rt, const Member& member);

  [[nodiscard]] int id() const { return serial_nested_ ? 0 : member_.tid; }
  [[nodiscard]] int nthreads() const;
  [[nodiscard]] stats::StreamRole role() const { return member_.role; }
  [[nodiscard]] bool is_a_stream() const {
    return member_.role == stats::StreamRole::kA;
  }
  [[nodiscard]] sim::SimCpu& cpu();
  [[nodiscard]] Runtime& runtime() { return rt_; }

  /// Private computation: charges `n` busy cycles.
  void compute(sim::Cycles n);

  /// --- shared-memory access (used by SharedArray/SharedVar) ---

  /// Simulated load of a shared address (value handling is the caller's).
  void mem_read(sim::Addr a);

  /// Simulated store; returns true when the host value should be
  /// committed (always for R; never for A, whose stores are converted to
  /// exclusive prefetches or dropped per §2 and the construct policies).
  bool mem_write(sim::Addr a);

  /// --- synchronization & worksharing constructs ---

  void barrier();

  /// Worksharing loop over [lo, hi). The body receives chunk bounds.
  void for_chunks(long lo, long hi, front::ScheduleClause sched,
                  const std::function<void(long, long)>& body,
                  bool nowait = false);

  /// Per-iteration convenience wrapper.
  void for_loop(long lo, long hi, front::ScheduleClause sched,
                const std::function<void(long)>& body, bool nowait = false);
  void for_loop(long lo, long hi, const std::function<void(long)>& body,
                bool nowait = false);

  /// `single` construct: returns true on the executing thread. A-streams
  /// always skip (§3.1). Implied barrier unless nowait.
  bool single(const std::function<void()>& body, bool nowait = false);

  /// `master` construct: executed by thread 0's R- and A-streams. No
  /// implied barrier.
  void master(const std::function<void()>& body);

  /// `critical` construct.
  void critical(const std::function<void()>& body);

  /// `sections` construct; assignment static or dynamic.
  void sections(const std::vector<std::function<void()>>& sections,
                front::ScheduleKind kind = front::ScheduleKind::kStatic,
                bool nowait = false);

  /// `flush` directive: void on the hardware-coherent target.
  void flush();

  /// Nested parallel region. Nested parallelism is not enabled (the paper
  /// leaves inheritance into nested regions implementation-dependent,
  /// §3.1), so the inner region is serialized onto the encountering
  /// thread as a one-thread team — the OpenMP default with nesting
  /// disabled. Inside, this thread reports id 0 / nthreads 1, barriers
  /// are no-ops, and every worksharing construct executes entirely here.
  void parallel(const std::function<void(ThreadCtx&)>& body);

  /// Reductions (two-barrier partial-sum scheme). With `sync_a`, the
  /// A-stream waits for its R-stream's syscall token so it observes the
  /// fresh result (needed only when the result steers control flow, §3.1).
  double reduce_sum(double v, bool sync_a = false);
  double reduce_max(double v, bool sync_a = false);

  /// I/O operations (§3.1). Cost is charged to the R-stream; the A-stream
  /// skips output and synchronizes on input.
  void io_write(sim::Cycles cost);
  void io_read(sim::Cycles cost);

  /// True when the A-stream is within `window` barrier sessions of its
  /// R-stream (store-conversion predicate, §2; the default window of one
  /// session reproduces the paper's one-token-local exclusive coverage).
  [[nodiscard]] bool within_session_window(int window) const;

  /// Strict same-session check (window 0).
  [[nodiscard]] bool same_session() const {
    return within_session_window(0);
  }

  /// Throws slip::RecoveryException if this A-stream was flagged.
  void check_recovery();

  /// --- restart fast-forward replay (recovery policy kRestart) ---
  /// After a mid-region restart the A-stream re-executes the region body
  /// from the top, passing the first `barriers` barrier sites without
  /// consuming tokens (prepare_restart already advanced its position) and
  /// with computation/memory suppressed to a nominal charge, until it is
  /// structurally back at the R-stream's current episode.
  [[nodiscard]] bool in_replay() const { return replay_remaining_ > 0; }
  void begin_fast_forward(std::uint64_t barriers) {
    replay_remaining_ = barriers;
  }
  void note_replay_barrier() {
    if (replay_remaining_ > 0) --replay_remaining_;
  }

  [[nodiscard]] const Member& member() const { return member_; }

 private:
  friend class Runtime;

  double reduce(double v, bool sync_a, bool is_max);

  Runtime& rt_;
  Member member_;
  // R->A syscall-token pairing for I/O; suspended inside constructs the
  // A-stream skips (single, critical under the skip policy).
  bool io_pairing_ = true;
  // True inside a serialized nested parallel region (one-thread team).
  bool serial_nested_ = false;
  // Barrier sites left to pass in fast-forward replay (A-stream restart).
  std::uint64_t replay_remaining_ = 0;
};

/// Execution context for the serial parts of the program (master only).
class SerialCtx {
 public:
  explicit SerialCtx(Runtime& rt) : rt_(rt) {}

  [[nodiscard]] Runtime& runtime() { return rt_; }
  [[nodiscard]] sim::SimCpu& cpu();

  void compute(sim::Cycles n);
  void mem_read(sim::Addr a);
  bool mem_write(sim::Addr a);
  void io_write(sim::Cycles cost);
  void io_read(sim::Cycles cost);

  /// A SLIPSTREAM directive in the serial part: global program setting
  /// until overridden (§3.3). The string uses the paper's syntax.
  void slipstream_directive(std::string_view directive_text);

  /// Runs a parallel region. `region_directive` optionally carries a
  /// region-level SLIPSTREAM directive; `if_clause` false forces serial
  /// execution of the body on the master (OpenMP IF clause).
  void parallel(const std::function<void(ThreadCtx&)>& body,
                std::string_view region_directive = {},
                bool if_clause = true);

 private:
  Runtime& rt_;
};

class Runtime {
 public:
  Runtime(machine::Machine& machine, RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Runs `program` to completion on the simulated machine; returns the
  /// total simulated execution time.
  sim::Cycles run(const std::function<void(SerialCtx&)>& program);

  [[nodiscard]] machine::Machine& machine() { return machine_; }
  [[nodiscard]] mem::MemorySystem& mem() { return machine_.mem(); }
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }
  [[nodiscard]] front::DirectiveControl& directives() { return directives_; }
  [[nodiscard]] const Team& team() const { return team_; }
  [[nodiscard]] SlipRegionStats& slip_stats() { return slip_stats_; }
  [[nodiscard]] int regions_executed() const { return regions_executed_; }
  [[nodiscard]] const slip::FaultInjector& fault_injector() const {
    return injector_;
  }
  [[nodiscard]] const slip::InvariantAuditor& auditor() const {
    return auditor_;
  }
  [[nodiscard]] const trace::Instrumentation& instrumentation() const {
    return inst_;
  }
  [[nodiscard]] const slip::Watchdog& watchdog() const { return watchdog_; }
  [[nodiscard]] const DegradationController& degradation() const {
    return degrade_;
  }

  /// Per-CPU x per-region cycle accounting (slot 0 = serial, slot r+1 =
  /// parallel region r). Every breakdown cycle lands in exactly one
  /// bucket of exactly one row; verify with
  /// cycle_account().check_identity(per-CPU breakdown totals).
  [[nodiscard]] const trace::CycleAccount& cycle_account() const {
    return account_;
  }

  /// Execution records for every parallel region, in program order.
  [[nodiscard]] const std::vector<RegionRecord>& region_records() const {
    return region_records_;
  }

  /// Thread count the "omp_get_num_threads in the serial part" idiom
  /// would observe for the current mode (§3.1 Thread count/ID).
  [[nodiscard]] int logical_thread_count() const;

 private:
  friend class ThreadCtx;
  friend class SerialCtx;

  // Worksharing loop descriptors (host values; simulated traffic on
  // sched_word_). A small ring supports `nowait` overlap of consecutive
  // dynamic loops; threads may lag at most kLoopRing loops behind.
  struct LoopDesc {
    std::uint64_t epoch = 0;
    bool initialized = false;
    long next = 0;
    long hi = 0;
    long chunk = 1;
    front::ScheduleKind kind = front::ScheduleKind::kDynamic;
    // Affinity scheduling: per-thread partitions [part_next[t], part_hi[t]).
    std::vector<long> part_next;
    std::vector<long> part_hi;
    std::uint64_t steals = 0;
  };
  static constexpr int kLoopRing = 8;

  void slave_loop(sim::CpuId cpu);
  void run_member(const Member& m);
  void region_end_member(ThreadCtx& t);
  Team build_team(const slip::SlipstreamConfig& cfg) const;
  void dispatch_region(const std::function<void(ThreadCtx&)>& body,
                       const std::optional<front::ParsedSlipstream>& region);
  void signal_done(ThreadCtx& t);

  /// Slipstream-aware barrier implementation shared by barrier() and the
  /// end-of-region join.
  void slip_barrier(ThreadCtx& t, sim::TimeCategory cat);

  /// Dynamic/guided chunk acquisition (serialized, §3.2.2); returns false
  /// when the loop is exhausted.
  bool next_chunk(ThreadCtx& t, LoopDesc& d, long& lo, long& hi);

  /// Enters thread `t` into its next dynamic worksharing construct,
  /// initializing the descriptor on first entry.
  LoopDesc& enter_dynamic_loop(ThreadCtx& t, long lo, long hi,
                               front::ScheduleClause sched);

  /// R-side of §3.2.2: publish a scheduling decision to the paired
  /// A-stream and release it with a syscall-semaphore token.
  void forward_chunk(ThreadCtx& t, long lo, long hi, bool last);

  /// Audited recovery entry point: notifies the invariant auditor for
  /// newly raised requests, then delegates to the pair (which re-poisons
  /// on repeat requests).
  void request_pair_recovery(slip::SlipPair& pair, sim::SimCpu& r);

  /// A-side recovery after a RecoveryException: acks (reconciling the
  /// syscall channel), then either resynchronizes for a mid-region
  /// restart (returns true — the caller re-runs the body in fast-forward
  /// replay) or benches the A-stream for the region (returns false).
  bool begin_a_recovery(ThreadCtx& t);

  /// Injected kAStreamHang: parks the A-stream in a raw block (no token,
  /// no poison) until the watchdog or the end-of-run backstop wakes it,
  /// then raises a recovery and throws. Never returns normally.
  [[noreturn]] void hang_park(ThreadCtx& t);

  /// Watchdog rescue callback (engine-event context): converts a
  /// diagnosed no-progress hang into a recovery by poisoning the stuck
  /// wait / waking the hung CPU.
  void watchdog_rescue(const slip::WatchdogReport& rep);

  /// Emits a kFault marker when the injector's fired-count advanced past
  /// `fired_before` (call sites bracket each injector hook).
  void note_fault(sim::CpuId cpu, int node, std::uint64_t fired_before);

  machine::Machine& machine_;
  RuntimeOptions options_;
  slip::FaultInjector injector_;
  slip::InvariantAuditor auditor_;
  trace::Instrumentation inst_;
  slip::Watchdog watchdog_;
  DegradationController degrade_;
  front::DirectiveControl directives_;

  // Per-CPU "parked by an injected hang" flag: a hung CPU is blocked raw
  // (not registered as a semaphore waiter), so the watchdog rescue and
  // the end-of-run backstop need their own registry to find it.
  std::vector<bool> hung_;

  Team team_;
  std::function<void(ThreadCtx&)> current_body_;
  bool in_region_ = false;
  bool shutdown_ = false;
  int regions_executed_ = 0;

  // Job dispatch / join.
  sim::Addr job_word_;
  sim::Addr join_word_;
  int join_count_ = 0;
  int join_target_ = 0;
  bool master_waiting_ = false;
  std::vector<const Member*> cpu_member_;  // per-cpu slot for this region

  // Synchronization primitives (runtime arena).
  std::unique_ptr<SenseBarrier> barrier_;
  std::unique_ptr<SpinLock> sched_lock_;
  std::unique_ptr<SpinLock> single_lock_;
  std::unique_ptr<SpinLock> critical_lock_;
  std::unique_ptr<SpinLock> atomic_lock_;

  sim::Addr sched_word_;
  std::array<LoopDesc, kLoopRing> loops_{};

  // Per-R-thread count of dynamic worksharing constructs entered (selects
  // the thread's current LoopDesc).
  std::vector<std::uint64_t> member_loop_epoch_;

  // Single-construct ticket.
  sim::Addr single_word_;
  std::uint64_t single_done_seq_ = 0;
  std::vector<std::uint64_t> member_single_seq_;

  // Reduction area.
  std::vector<sim::Addr> partial_addrs_;
  std::vector<double> partial_values_;
  sim::Addr reduce_result_word_;
  double reduce_result_ = 0.0;

  SlipRegionStats slip_stats_;
  std::vector<RegionRecord> region_records_;
  trace::CycleAccount account_;
};

}  // namespace ssomp::rt
