// Runtime-wide execution options.
#pragma once

#include <string>

#include "front/directive.hpp"
#include "sim/types.hpp"
#include "slip/audit.hpp"
#include "slip/config.hpp"
#include "slip/faultinject.hpp"
#include "trace/tracer.hpp"

namespace ssomp::rt {

/// How the machine's processors are applied to the program (paper §5.1):
///   kSingle     one task per CMP, second processor idle (the baseline all
///               speedups are normalized to);
///   kDouble     two tasks per CMP (more parallelism);
///   kSlipstream one task per CMP, second processor runs the A-stream.
enum class ExecutionMode : std::uint8_t { kSingle = 0, kDouble, kSlipstream };

[[nodiscard]] constexpr std::string_view to_string(ExecutionMode m) {
  switch (m) {
    case ExecutionMode::kSingle: return "single";
    case ExecutionMode::kDouble: return "double";
    case ExecutionMode::kSlipstream: return "slipstream";
  }
  return "?";
}

/// What the A-stream does after a recovery unwinds it mid-region:
///   kBench    sit out the rest of the region (the paper's conservative
///             recovery — run-ahead resumes at the next region);
///   kRestart  resynchronize to the R-stream's current barrier episode and
///             resume run-ahead inside the same region, falling back to
///             the bench once the per-region restart budget is exhausted.
enum class RecoveryPolicy : std::uint8_t { kBench = 0, kRestart };

[[nodiscard]] constexpr std::string_view to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kBench: return "bench";
    case RecoveryPolicy::kRestart: return "restart";
  }
  return "?";
}

/// Adaptive per-CMP degradation (rt/degrade.hpp): demote a chronically
/// diverging pair to single-stream, re-probe it after a probation period.
struct DegradeOptions {
  bool enabled = false;
  /// Consecutive regions with a recovery before the CMP is demoted.
  int demote_after = 2;
  /// Regions a demoted CMP sits out before a probation re-promotion.
  int probation = 4;
};

struct RuntimeOptions {
  ExecutionMode mode = ExecutionMode::kSingle;

  /// Value of the OMP_SLIPSTREAM environment variable ("" = unset).
  std::string omp_slipstream_env;

  /// Program-global slipstream setting (overridable by directives).
  slip::SlipstreamConfig slip = front::DirectiveControl::default_config();

  /// Construct-handling policies for the A-stream (ablation knobs).
  slip::ConstructPolicies policies{};

  /// R-stream flags divergence when the A-stream lags by more than this
  /// many barriers (0 = divergence checking disabled).
  int divergence_threshold = 0;

  /// Default schedule for loops that do not specify one.
  front::ScheduleClause default_schedule{};

  /// What the A-stream does after a recovery unwinds it mid-region.
  RecoveryPolicy recovery = RecoveryPolicy::kBench;

  /// Restarts allowed per region per CMP before falling back to the
  /// bench (kRestart only). The divergence threshold backs off
  /// exponentially with each restart, so a chronically diverging region
  /// converges to the bench behavior rather than thrashing.
  int restart_budget = 3;

  /// Simulated-cycle timeout for the protocol-wait watchdog
  /// (slip/watchdog.hpp). 0 disables it.
  sim::Cycles watchdog_cycles = 0;

  /// Adaptive per-CMP degradation of chronically diverging pairs.
  DegradeOptions degrade{};

  /// Deterministic fault to inject into the recovery machinery
  /// (FaultKind::kNone = nothing injected).
  slip::FaultPlan fault{};

  /// Cross-validate the token-semaphore / mailbox / recovery accounting
  /// at region boundaries. Always on in debug builds, opt-in in release.
  bool audit = slip::kAuditDefaultOn;

  /// Event-level protocol tracing (per-CPU ring buffers, Perfetto export).
  trace::TraceConfig trace{};

  /// Online metrics registry (counters + cycle histograms). Cheap enough
  /// to keep on without tracing; implied by `trace.enabled`.
  bool metrics = false;
};

}  // namespace ssomp::rt
