#include "rt/runtime.hpp"

#include <algorithm>

namespace ssomp::rt {

using sim::TimeCategory;
using stats::StreamRole;

namespace {
/// Fixed cost charged for computing static-loop bounds (a handful of
/// integer instructions).
constexpr sim::Cycles kStaticSchedCost = 20;

/// Fixed cost of the A-stream restart routine (re-initializing the token
/// register and jumping the architectural position — the paper's recovery
/// routine run in resynchronize-instead-of-bench form).
constexpr sim::Cycles kRestartCost = 200;

/// Cap on the exponential divergence-threshold backoff shift.
constexpr std::uint64_t kMaxBackoffShift = 16;
}  // namespace

// ---------------------------------------------------------------------------
// Runtime

Runtime::Runtime(machine::Machine& machine, RuntimeOptions options)
    : machine_(machine),
      options_(std::move(options)),
      injector_(options_.fault, machine.ncmp()),
      auditor_(options_.audit, machine.ncmp()) {
  inst_.configure(machine_.engine(), options_.trace,
                  options_.metrics || options_.trace.enabled);
  if (inst_.active()) {
    for (int n = 0; n < machine_.ncmp(); ++n) {
      machine_.pair(n).set_instrumentation(&inst_, n);
    }
  }
  watchdog_.configure(
      machine_.engine(), options_.watchdog_cycles,
      [this](const slip::WatchdogReport& rep) { watchdog_rescue(rep); });
  for (int n = 0; n < machine_.ncmp(); ++n) {
    machine_.pair(n).set_watchdog(&watchdog_, n);
  }
  degrade_ = DegradationController(options_.degrade.enabled,
                                   options_.degrade.demote_after,
                                   options_.degrade.probation, machine.ncmp());
  hung_.assign(static_cast<std::size_t>(machine.ncpus()), false);
  directives_.set_env(options_.omp_slipstream_env);
  // The program-global slipstream setting (overridable by serial-part
  // directives at run time).
  front::ParsedSlipstream init;
  init.type = options_.slip.type;
  init.tokens = options_.slip.tokens;
  directives_.apply_serial(init);

  mem::AddrSpace& as = machine_.addr_space();
  job_word_ = as.alloc_runtime(64);
  join_word_ = as.alloc_runtime(64);
  sched_word_ = as.alloc_runtime(64);
  single_word_ = as.alloc_runtime(64);
  reduce_result_word_ = as.alloc_runtime(64);

  barrier_ = std::make_unique<SenseBarrier>(mem(), as);
  sched_lock_ = std::make_unique<SpinLock>(mem(), as);
  single_lock_ = std::make_unique<SpinLock>(mem(), as);
  critical_lock_ = std::make_unique<SpinLock>(mem(), as);
  atomic_lock_ = std::make_unique<SpinLock>(mem(), as);

  const int max_team = machine_.ncpus();
  member_loop_epoch_.assign(static_cast<std::size_t>(max_team), 0);
  member_single_seq_.assign(static_cast<std::size_t>(max_team), 0);
  partial_values_.assign(static_cast<std::size_t>(max_team), 0.0);
  for (int i = 0; i < max_team; ++i) {
    partial_addrs_.push_back(as.alloc_runtime(64));  // one line per slot
  }
  cpu_member_.assign(static_cast<std::size_t>(machine_.ncpus()), nullptr);

  // Cycle accounting: every CPU starts charging into the serial row
  // (slot 0); dispatch_region repoints the rows per region.
  account_.reset(machine_.ncpus());
  for (sim::CpuId c = 0; c < machine_.ncpus(); ++c) {
    machine_.cpu(c).set_account_row(account_.row_data(c, 0));
  }
}

Runtime::~Runtime() = default;

int Runtime::logical_thread_count() const {
  return options_.mode == ExecutionMode::kDouble ? machine_.ncpus()
                                                 : machine_.ncmp();
}

sim::Cycles Runtime::run(const std::function<void(SerialCtx&)>& program) {
  // Omni-style pool: all slaves are created at program start and parked
  // until the master posts a job.
  for (sim::CpuId c = 1; c < machine_.ncpus(); ++c) {
    machine_.cpu(c).start([this, c] { slave_loop(c); });
  }
  machine_.cpu(0).start([this, &program] {
    SerialCtx sc(*this);
    program(sc);
    // Shut the pool down.
    shutdown_ = true;
    sim::SimCpu& m = machine_.cpu(0);
    m.consume(mem().store(0, job_word_, m.issue_time()), TimeCategory::kBusy);
    for (sim::CpuId c = 1; c < machine_.ncpus(); ++c) {
      if (machine_.cpu(c).blocked()) machine_.cpu(c).wake();
    }
    m.flush_time();
  });
  machine_.engine().run();

  // Divergence backstop: an A-stream that over-consumed (ran ahead past
  // every token its R-stream will ever insert) is parked on a semaphore
  // with no future suppliers once the R-streams finish. Poison such waits
  // so the recovery path unwinds it — the runtime equivalent of the
  // paper's recovery routine for a deviating A-stream.
  bool rescued = true;
  while (rescued) {
    rescued = false;
    for (int n = 0; n < machine_.ncmp(); ++n) {
      slip::SlipPair& p = machine_.pair(n);
      if (p.barrier_sem().has_waiter() || p.syscall_sem().has_waiter()) {
        request_pair_recovery(p, machine_.cpu(p.r_cpu()));
        rescued = true;
      }
    }
    // A CPU parked by an injected hang is blocked raw — not a semaphore
    // waiter — so the poison sweep cannot reach it. Wake it directly; it
    // raises its own recovery on resume (hang_park).
    for (sim::CpuId c = 0; c < machine_.ncpus(); ++c) {
      if (hung_[static_cast<std::size_t>(c)] && machine_.cpu(c).blocked()) {
        machine_.cpu(c).wake();
        rescued = true;
      }
    }
    if (rescued) machine_.engine().run();
  }

  // Every fiber must have drained; anything else is a lost wakeup bug.
  for (sim::CpuId c = 0; c < machine_.ncpus(); ++c) {
    SSOMP_CHECK(machine_.cpu(c).finished());
  }
  mem().finalize_classification();

  // Harvest slipstream token-machinery statistics.
  for (int n = 0; n < machine_.ncmp(); ++n) {
    slip::SlipPair& p = machine_.pair(n);
    slip_stats_.tokens_consumed += p.barrier_sem().total_consumed();
    slip_stats_.tokens_inserted += p.barrier_sem().total_inserted();
    slip_stats_.recoveries += p.recoveries();
    slip_stats_.restarts += p.restarts_total();
    slip_stats_.benched_barriers += p.benched_barriers();
    auditor_.on_run_end(n, p, injector_);
  }
  slip_stats_.watchdog_trips += watchdog_.trips();
  slip_stats_.demotions += degrade_.demotions();
  slip_stats_.promotions += degrade_.promotions();
  return machine_.engine().now();
}

void Runtime::request_pair_recovery(slip::SlipPair& pair, sim::SimCpu& r) {
  if (!pair.recovery_requested()) {
    const int node = machine_.node_of(pair.r_cpu());
    auditor_.on_recovery_requested(node);
    if (inst_.active()) inst_.recovery_request(r.id(), node);
  }
  pair.request_recovery(r);
}

void Runtime::note_fault(sim::CpuId cpu, int node,
                         std::uint64_t fired_before) {
  if (inst_.active() && injector_.fired() > fired_before) {
    inst_.fault(cpu, node, static_cast<std::uint64_t>(injector_.plan().kind));
  }
}

void Runtime::slave_loop(sim::CpuId cpu_id) {
  sim::SimCpu& cpu = machine_.cpu(cpu_id);
  while (true) {
    cpu.block(TimeCategory::kJobWait);
    // Read the job descriptor the master published (the first read after
    // the master's store pays the coherence miss — the organic dispatch
    // cost of the spin-on-flag pool).
    cpu.consume(mem().load(cpu_id, job_word_, cpu.issue_time()),
                TimeCategory::kJobWait);
    if (shutdown_) return;
    const Member* m = cpu_member_[static_cast<std::size_t>(cpu_id)];
    SSOMP_CHECK(m != nullptr);  // only team members are woken
    run_member(*m);
  }
}

void Runtime::run_member(const Member& m) {
  ThreadCtx t(*this, m);
  if (m.role == StreamRole::kA) {
    bool done = false;
    while (!done) {
      try {
        current_body_(t);
        region_end_member(t);
        done = true;
      } catch (const slip::RecoveryException&) {
        // The recovery routine (§2.2): under kBench the A-stream is done
        // for the region and rejoins at the next one; under kRestart it
        // resynchronizes and re-runs the body in fast-forward replay.
        done = !begin_a_recovery(t);
      }
    }
  } else {
    current_body_(t);
    region_end_member(t);
  }
  if (m.cpu != 0) signal_done(t);
}

bool Runtime::begin_a_recovery(ThreadCtx& t) {
  slip::SlipPair& pair = *t.member().pair;
  sim::SimCpu& cpu = t.cpu();
  const int node = machine_.node_of(t.member().cpu);
  // Everything from here is the recovery routine. A benched A-stream
  // keeps the override through its join (the region-end reset clears it);
  // the restart path narrows it to kRestartResync below.
  cpu.set_bucket_override(sim::CycleBucket::kRecovery);
  const slip::SlipPair::AckReconcile rec = pair.ack_recovery();
  auditor_.on_recovery_acked(node, pair);
  if (inst_.active()) {
    inst_.recovery_ack(cpu.id(), node);
    if (rec.mailbox_cleared + rec.syscall_drained > 0) {
      inst_.mailbox_clear(cpu.id(), node, rec.mailbox_cleared,
                          rec.syscall_drained);
    }
  }
  const bool restart =
      options_.recovery == RecoveryPolicy::kRestart &&
      pair.restarts_this_region() <
          static_cast<std::uint64_t>(std::max(0, options_.restart_budget));
  if (!restart) {
    pair.set_benched();
    if (inst_.active()) {
      inst_.a_bench(cpu.id(), node, pair.restarts_this_region());
    }
    return false;
  }
  cpu.set_bucket_override(sim::CycleBucket::kRestartResync);
  cpu.consume(kRestartCost, TimeCategory::kBusy);
  const std::uint64_t resync = pair.prepare_restart();
  t.begin_fast_forward(pair.a_barriers());
  // No barrier sites to replay: the re-run is live immediately.
  if (!t.in_replay()) cpu.clear_bucket_override();
  if (inst_.active()) inst_.restart(cpu.id(), node, resync);
  return true;
}

void Runtime::hang_park(ThreadCtx& t) {
  slip::SlipPair& pair = *t.member().pair;
  sim::SimCpu& cpu = t.cpu();
  const int node = machine_.node_of(t.member().cpu);
  sim::Engine::CancelHandle guard =
      watchdog_.arm(slip::WatchSite::kHangPark, node, cpu.id());
  hung_[static_cast<std::size_t>(cpu.id())] = true;
  cpu.block(TimeCategory::kTokenWait);
  hung_[static_cast<std::size_t>(cpu.id())] = false;
  guard.cancel();
  // Whoever woke us (watchdog rescue or end-of-run backstop) may already
  // have raised the recovery; raise it here otherwise so the unwind's ack
  // always follows a request.
  if (!pair.recovery_requested()) {
    request_pair_recovery(pair, machine_.cpu(pair.r_cpu()));
  }
  throw slip::RecoveryException{};
}

void Runtime::watchdog_rescue(const slip::WatchdogReport& rep) {
  // (The trip itself is already recorded in watchdog_.reports(); the
  // run-end harvest folds the count into slip_stats_.)
  if (inst_.active()) {
    inst_.watchdog_trip(rep.cpu, std::max(rep.node, 0),
                        static_cast<std::uint64_t>(rep.site),
                        rep.fired_at - rep.wait_start);
  }
  switch (rep.site) {
    case slip::WatchSite::kBarrierToken:
    case slip::WatchSite::kSyscallToken: {
      // The A-stream is parked in a token consume with no supplier in
      // sight: poison the wait so it unwinds through the recovery path.
      slip::SlipPair& p = machine_.pair(rep.node);
      request_pair_recovery(p, machine_.cpu(p.r_cpu()));
      break;
    }
    case slip::WatchSite::kHangPark: {
      sim::SimCpu& c = machine_.cpu(static_cast<sim::CpuId>(rep.cpu));
      if (c.blocked()) c.wake();
      break;
    }
    case slip::WatchSite::kTeamBarrier: {
      // A member never reached the join: some pair is wedged. Sweep every
      // CMP — poison token waits and wake hung CPUs; the freed A-streams
      // unwind and the barrier drains.
      for (int n = 0; n < machine_.ncmp(); ++n) {
        slip::SlipPair& p = machine_.pair(n);
        if (p.barrier_sem().has_waiter() || p.syscall_sem().has_waiter()) {
          request_pair_recovery(p, machine_.cpu(p.r_cpu()));
        }
      }
      for (sim::CpuId c = 0; c < machine_.ncpus(); ++c) {
        if (hung_[static_cast<std::size_t>(c)] && machine_.cpu(c).blocked()) {
          machine_.cpu(c).wake();
        }
      }
      break;
    }
  }
}

void Runtime::region_end_member(ThreadCtx& t) {
  // Implicit barrier terminating the parallel region.
  slip_barrier(t, TimeCategory::kBarrier);
}

void Runtime::signal_done(ThreadCtx& t) {
  sim::SimCpu& cpu = t.cpu();
  // Atomic increment of the join counter.
  cpu.consume(mem().load(cpu.id(), join_word_, cpu.issue_time()),
              TimeCategory::kBarrier);
  cpu.consume(mem().store(cpu.id(), join_word_, cpu.issue_time()),
              TimeCategory::kBarrier);
  ++join_count_;
  if (join_count_ == join_target_ && master_waiting_) {
    machine_.cpu(0).wake();
  }
}

Team Runtime::build_team(const slip::SlipstreamConfig& cfg) const {
  Team team;
  team.slip = cfg;
  const int ncmp = machine_.ncmp();
  ExecutionMode mode = options_.mode;
  if (mode == ExecutionMode::kSlipstream && !cfg.enabled()) {
    // SLIPSTREAM(NONE) / OMP_SLIPSTREAM=NONE: the region falls back to one
    // task per CMP with the second processor idle.
    mode = ExecutionMode::kSingle;
  }
  team.mode = mode;
  switch (mode) {
    case ExecutionMode::kSingle:
      team.nthreads = ncmp;
      for (int n = 0; n < ncmp; ++n) {
        team.members.push_back(Member{machine_.r_cpu_of(n), n,
                                      StreamRole::kNone, nullptr});
      }
      break;
    case ExecutionMode::kDouble:
      team.nthreads = machine_.ncpus();
      for (int t = 0; t < machine_.ncpus(); ++t) {
        // Scatter placement: consecutive thread ids land on different
        // CMPs, as with OS-scheduled processes in the paper's setup. A
        // compact placement would co-locate adjacent block partitions and
        // turn their halo traffic into free intra-CMP hits — an affinity
        // guarantee the evaluated system did not provide.
        const sim::CpuId cpu =
            (t % ncmp) * machine_.config().cpus_per_cmp + t / ncmp;
        team.members.push_back(Member{cpu, t, StreamRole::kNone, nullptr});
      }
      break;
    case ExecutionMode::kSlipstream:
      team.nthreads = ncmp;
      for (int n = 0; n < ncmp; ++n) {
        // A CMP demoted by the degradation controller runs single-stream
        // for this region: its task gets no A-stream member and takes the
        // plain (non-slipstream) barrier path.
        if (!degrade_.slipstream_allowed(n)) {
          team.members.push_back(Member{machine_.r_cpu_of(n), n,
                                        StreamRole::kNone, nullptr});
          continue;
        }
        slip::SlipPair* pair =
            &const_cast<machine::Machine&>(machine_).pair(n);
        team.members.push_back(
            Member{machine_.r_cpu_of(n), n, StreamRole::kR, pair});
        team.members.push_back(
            Member{machine_.a_cpu_of(n), n, StreamRole::kA, pair});
      }
      break;
  }
  return team;
}

void Runtime::dispatch_region(
    const std::function<void(ThreadCtx&)>& body,
    const std::optional<front::ParsedSlipstream>& region) {
  SSOMP_CHECK(!in_region_);  // nested parallelism is not supported
  const slip::SlipstreamConfig cfg = directives_.resolve(region);
  team_ = build_team(cfg);
  current_body_ = body;
  in_region_ = true;
  ++regions_executed_;

  std::fill(cpu_member_.begin(), cpu_member_.end(), nullptr);
  for (const Member& m : team_.members) {
    cpu_member_[static_cast<std::size_t>(m.cpu)] = &m;
    mem().set_role(m.cpu, m.role);
  }
  mem().set_self_invalidation(team_.slipstream() &&
                              options_.policies.self_invalidation);
  if (team_.slipstream()) {
    for (int n = 0; n < machine_.ncmp(); ++n) {
      machine_.pair(n).reset_for_region(team_.slip.tokens);
      auditor_.on_region_reset(n, machine_.pair(n), injector_);
    }
  }
  join_count_ = 0;
  join_target_ = static_cast<int>(team_.members.size()) - 1;
  barrier_->configure(team_.nthreads);

  // Cycle accounting: point every CPU at this region's row. Time a CPU is
  // currently blocked on (slave park, benched A-stream) is attributed at
  // its wake, into the row current then — region rows therefore absorb
  // the park span that ends inside them, and the identity is unaffected.
  // A demoted CMP runs its task single-stream: everything its R-side CPU
  // does this region is the degradation cost, whatever the category.
  const int slot = regions_executed_;  // slot r+1 for region r
  for (sim::CpuId c = 0; c < machine_.ncpus(); ++c) {
    sim::SimCpu& cpu = machine_.cpu(c);
    cpu.set_account_row(account_.row_data(c, slot));
    cpu.clear_bucket_override();
  }
  if (team_.slipstream()) {
    for (int n = 0; n < machine_.ncmp(); ++n) {
      if (!degrade_.slipstream_allowed(n)) {
        machine_.cpu(machine_.r_cpu_of(n))
            .set_bucket_override(sim::CycleBucket::kDegraded);
      }
    }
  }

  RegionRecord record;
  record.index = regions_executed_ - 1;
  record.mode = team_.mode;
  record.slip = team_.slip;
  record.nthreads = team_.nthreads;
  record.start = machine_.engine().now();
  std::uint64_t tokens_before = 0;
  const std::uint64_t converted_before = slip_stats_.converted_stores;
  const std::uint64_t dropped_before = slip_stats_.dropped_stores;
  const std::uint64_t forwarded_before = slip_stats_.forwarded_chunks;
  std::vector<std::uint64_t> recoveries_before;
  if (team_.slipstream()) {
    for (int n = 0; n < machine_.ncmp(); ++n) {
      tokens_before += machine_.pair(n).barrier_sem().total_consumed();
      recoveries_before.push_back(machine_.pair(n).recoveries());
    }
  }
  if (inst_.active()) {
    inst_.region_begin(0, record.index, static_cast<int>(team_.mode));
  }

  // Publish the job and wake the team (master's store invalidates the
  // slaves' cached copies of the job word).
  sim::SimCpu& master = machine_.cpu(0);
  master.consume(mem().store(0, job_word_, master.issue_time()),
                 TimeCategory::kBusy);
  for (const Member& m : team_.members) {
    if (m.cpu == 0) continue;
    SSOMP_CHECK(machine_.cpu(m.cpu).blocked());
    machine_.cpu(m.cpu).wake();
  }

  // The master participates as thread 0's R-stream.
  const Member* mm = cpu_member_[0];
  SSOMP_CHECK(mm != nullptr);
  run_member(*mm);

  // Join: wait for every other member (R- and A-streams) to finish.
  while (join_count_ < join_target_) {
    master_waiting_ = true;
    master.block(TimeCategory::kBarrier);
    master_waiting_ = false;
  }
  master.consume(mem().load(0, join_word_, master.issue_time()),
                 TimeCategory::kBarrier);

  record.cycles = machine_.engine().now() - record.start;
  if (team_.slipstream()) {
    std::uint64_t tokens_after = 0;
    for (int n = 0; n < machine_.ncmp(); ++n) {
      tokens_after += machine_.pair(n).barrier_sem().total_consumed();
      auditor_.on_region_end(n, machine_.pair(n), injector_);
      // Advance the per-CMP degradation state machine on this region's
      // recovery record (a demoted CMP had no A-stream to diverge, so it
      // reads as clean and its probation clock ticks).
      const bool recovered =
          machine_.pair(n).recoveries() >
          recoveries_before[static_cast<std::size_t>(n)];
      switch (degrade_.on_region_end(n, recovered)) {
        case DegradationController::Transition::kDemoted:
          if (inst_.active()) {
            inst_.demote(0, n,
                         static_cast<std::uint64_t>(
                             options_.degrade.demote_after));
          }
          break;
        case DegradationController::Transition::kPromoted:
          if (inst_.active()) inst_.promote(0, n, /*probation=*/true);
          break;
        case DegradationController::Transition::kRestored:
          if (inst_.active()) inst_.promote(0, n, /*probation=*/false);
          break;
        case DegradationController::Transition::kNone:
          break;
      }
    }
    record.tokens_consumed = tokens_after - tokens_before;
  }
  record.converted_stores = slip_stats_.converted_stores - converted_before;
  record.dropped_stores = slip_stats_.dropped_stores - dropped_before;
  record.forwarded_chunks = slip_stats_.forwarded_chunks - forwarded_before;
  if (inst_.active()) {
    inst_.region_end(0, record.index, record.cycles, record.converted_stores,
                     record.dropped_stores);
  }
  region_records_.push_back(record);

  for (const Member& m : team_.members) {
    mem().set_role(m.cpu, StreamRole::kNone);
  }
  mem().set_self_invalidation(false);
  in_region_ = false;
  current_body_ = nullptr;

  // Cycle accounting: back to the serial row, and drop any override a
  // recovery left behind (a benched A-stream keeps kRecovery through its
  // join; it must not leak into the next region or the serial part).
  for (sim::CpuId c = 0; c < machine_.ncpus(); ++c) {
    sim::SimCpu& cpu = machine_.cpu(c);
    cpu.set_account_row(account_.row_data(c, 0));
    cpu.clear_bucket_override();
  }
}

void Runtime::slip_barrier(ThreadCtx& t, TimeCategory cat) {
  sim::SimCpu& cpu = t.cpu();
  const bool observed = inst_.active();
  const int role = static_cast<int>(t.role());
  if (!team_.slipstream() || t.role() == StreamRole::kNone) {
    const int node = machine_.node_of(t.member().cpu);
    if (observed) inst_.barrier_enter(cpu.id(), node, role);
    const sim::Cycles entered = machine_.engine().now();
    sim::Engine::CancelHandle wguard =
        watchdog_.arm(slip::WatchSite::kTeamBarrier, node, cpu.id());
    barrier_->arrive(cpu, t.id(), cat);
    wguard.cancel();
    if (observed) {
      inst_.barrier_exit(cpu.id(), node, role,
                         machine_.engine().now() - entered);
    }
    return;
  }
  slip::SlipPair& pair = *t.member().pair;
  const int node = machine_.node_of(t.member().cpu);
  if (t.role() == StreamRole::kR) {
    if (observed) inst_.barrier_enter(cpu.id(), node, role);
    pair.note_r_barrier();
    if (pair.a_benched()) pair.note_benched_barrier();
    // Fault injection: force a recovery landing in the hardest window —
    // while the A-stream is blocked inside a token consume().
    const std::uint64_t fired_before = injector_.fired();
    if (injector_.on_r_divergence_probe(node,
                                        pair.barrier_sem().has_waiter())) {
      request_pair_recovery(pair, cpu);
    }
    note_fault(cpu.id(), node, fired_before);
    // Divergence probe (§2.2): the R-stream compares the token count with
    // the initial value to predict whether its A-stream visited this
    // barrier; a persistent lag beyond the threshold triggers recovery.
    // Under the bench policy a recovered A-stream is out for the region,
    // so re-probing would only re-flag it; under the restart policy it
    // comes back, so keep probing — with the threshold backed off
    // exponentially per restart so a chronically diverging region settles
    // into the bench instead of thrashing through its restart budget.
    const bool probe_armed =
        options_.recovery == RecoveryPolicy::kRestart
            ? !pair.a_benched()
            : !pair.a_recovered_this_region();
    if (options_.divergence_threshold > 0 && probe_armed &&
        !pair.recovery_requested()) {
      (void)pair.barrier_sem().read_count(cpu);
      // A lagging A-stream (it may legitimately be *ahead* by the token
      // allowance) beyond the threshold is predicted diverged.
      const std::uint64_t lag =
          pair.r_barriers() > pair.a_barriers()
              ? pair.r_barriers() - pair.a_barriers()
              : 0;
      const std::uint64_t threshold =
          static_cast<std::uint64_t>(options_.divergence_threshold)
          << std::min(pair.restarts_this_region(), kMaxBackoffShift);
      if (lag > threshold) {
        request_pair_recovery(pair, cpu);
      }
    }
    // Fault injection may starve (skip) or over-insert (duplicate) the
    // token this barrier visit owes the A-stream.
    const std::uint64_t ins_fired_before = injector_.fired();
    const slip::TokenAction ins = injector_.on_r_token_insert(node);
    note_fault(cpu.id(), node, ins_fired_before);
    if (team_.slip.type == slip::SyncType::kLocal &&
        ins != slip::TokenAction::kSkip) {
      pair.barrier_sem().insert(cpu);  // token on barrier *entry*
      if (ins == slip::TokenAction::kDuplicate) pair.barrier_sem().insert(cpu);
    }
    const sim::Cycles entered = machine_.engine().now();
    sim::Engine::CancelHandle wguard =
        watchdog_.arm(slip::WatchSite::kTeamBarrier, node, cpu.id());
    barrier_->arrive(cpu, t.id(), cat);
    wguard.cancel();
    const sim::Cycles stall = machine_.engine().now() - entered;
    if (team_.slip.type == slip::SyncType::kGlobal &&
        ins != slip::TokenAction::kSkip) {
      pair.barrier_sem().insert(cpu);  // token on barrier *exit*
      if (ins == slip::TokenAction::kDuplicate) pair.barrier_sem().insert(cpu);
    }
    if (observed) inst_.barrier_exit(cpu.id(), node, role, stall);
  } else {
    t.check_recovery();
    if (t.in_replay()) {
      // Fast-forward replay after a restart: this barrier episode is one
      // prepare_restart already jumped the A-stream's position over —
      // pass it without consuming a token or counting a visit.
      t.note_replay_barrier();
      cpu.charge(1, TimeCategory::kBusy);
      // Replay ends at its last barrier site: from here the A-stream
      // executes live again, so stop billing restart-resync.
      if (!t.in_replay()) cpu.clear_bucket_override();
      return;
    }
    // Injected hang: park raw, with no token or poison on the way. Only
    // the watchdog (or the end-of-run backstop) gets the stream moving.
    const std::uint64_t hang_fired_before = injector_.fired();
    if (injector_.on_a_hang(node)) {
      note_fault(cpu.id(), node, hang_fired_before);
      hang_park(t);
    }
    // From here on, every barrier_enter pairs with an exit even on the
    // recovery-unwind paths, so exported trace slices never dangle.
    if (observed) inst_.barrier_enter(cpu.id(), node, role);
    const auto a_exit = [&] {
      if (observed) inst_.barrier_exit(cpu.id(), node, role, 0);
    };
    // Fault injection: skip this visit's consume entirely (the A-stream
    // barges past the barrier, unsynchronized) or consume a duplicate
    // token (it stalls a full session behind).
    const std::uint64_t fired_before = injector_.fired();
    const slip::TokenAction act = injector_.on_a_token_consume(node);
    note_fault(cpu.id(), node, fired_before);
    if (act == slip::TokenAction::kSkip) {
      a_exit();
      return;
    }
    if (!pair.barrier_sem().consume(cpu, TimeCategory::kTokenWait)) {
      a_exit();
      throw slip::RecoveryException{};
    }
    if (act == slip::TokenAction::kDuplicate &&
        !pair.barrier_sem().consume(cpu, TimeCategory::kTokenWait)) {
      a_exit();
      throw slip::RecoveryException{};
    }
    pair.note_a_barrier();
    if (inst_.active()) {
      // Run-ahead distance (in barrier sessions) the A-stream enjoys at
      // this barrier — the fig-2/fig-4 instrument.
      inst_.run_ahead(cpu.id(), node,
                      pair.a_barriers() > pair.r_barriers()
                          ? pair.a_barriers() - pair.r_barriers()
                          : 0);
    }
    a_exit();
  }
}

Runtime::LoopDesc& Runtime::enter_dynamic_loop(ThreadCtx& t, long lo, long hi,
                                               front::ScheduleClause sched) {
  const auto tid = static_cast<std::size_t>(t.id());
  const std::uint64_t epoch = ++member_loop_epoch_[tid];
  LoopDesc& d = loops_[epoch % kLoopRing];
  sched_lock_->acquire(t.cpu(), TimeCategory::kScheduling);
  if (!d.initialized || d.epoch < epoch) {
    d.epoch = epoch;
    d.initialized = true;
    d.next = lo;
    d.hi = hi;
    d.kind = sched.kind;
    d.chunk = sched.chunk > 0 ? sched.chunk : 1;
    if (sched.kind == front::ScheduleKind::kAffinity) {
      // Static-like per-thread partitions, consumed in local chunks.
      const int n = team_.nthreads;
      d.part_next.assign(static_cast<std::size_t>(n), 0);
      d.part_hi.assign(static_cast<std::size_t>(n), 0);
      const long count = hi - lo;
      const long base = count / n;
      const long rem = count % n;
      long cursor = lo;
      for (int p = 0; p < n; ++p) {
        const long len = base + (p < rem ? 1 : 0);
        d.part_next[static_cast<std::size_t>(p)] = cursor;
        d.part_hi[static_cast<std::size_t>(p)] = cursor + len;
        cursor += len;
      }
      d.steals = 0;
    }
    // The descriptor occupies the same cache line as the scheduler lock
    // (as in Omni's loop descriptor), so this store hits the line the
    // acquire just fetched.
    t.cpu().consume(1, TimeCategory::kScheduling);
  }
  SSOMP_CHECK(d.epoch == epoch);
  sched_lock_->release(t.cpu());
  return d;
}

bool Runtime::next_chunk(ThreadCtx& t, LoopDesc& d, long& lo, long& hi) {
  sim::SimCpu& cpu = t.cpu();
  // The scheduling decision is serialized through a critical section
  // (§3.2.2), a deliberate source of overhead the paper measures.
  sched_lock_->acquire(cpu, TimeCategory::kScheduling);
  // Loop counter co-located with the lock line: hits after the acquire.
  cpu.consume(1, TimeCategory::kScheduling);
  bool ok = false;
  if (d.kind == front::ScheduleKind::kAffinity) {
    // Affinity scheduling [16]: consume 1/2 of the remaining local
    // partition; steal half of the most-loaded partition when dry.
    int p = t.id();
    long remaining = d.part_hi[static_cast<std::size_t>(p)] -
                     d.part_next[static_cast<std::size_t>(p)];
    if (remaining <= 0) {
      long best = 0;
      int victim = -1;
      for (int q = 0; q < team_.nthreads; ++q) {
        const long r = d.part_hi[static_cast<std::size_t>(q)] -
                       d.part_next[static_cast<std::size_t>(q)];
        if (r > best) {
          best = r;
          victim = q;
        }
      }
      if (victim >= 0) {
        p = victim;
        remaining = best;
        ++d.steals;
      }
    }
    if (remaining > 0) {
      const long take = std::max<long>(d.chunk, (remaining + 1) / 2);
      lo = d.part_next[static_cast<std::size_t>(p)];
      hi = std::min(d.part_hi[static_cast<std::size_t>(p)],
                    lo + std::min(take, remaining));
      d.part_next[static_cast<std::size_t>(p)] = hi;
      ok = true;
      cpu.consume(1, TimeCategory::kScheduling);
    }
    sched_lock_->release(cpu);
    return ok;
  }
  if (d.next < d.hi) {
    long size = d.chunk;
    if (d.kind == front::ScheduleKind::kGuided) {
      const long remaining = d.hi - d.next;
      const long per = (remaining + 2L * team_.nthreads - 1) /
                       (2L * team_.nthreads);
      size = std::max(d.chunk, per);
    }
    lo = d.next;
    hi = std::min(d.hi, d.next + size);
    d.next = hi;
    ok = true;
    cpu.consume(1, TimeCategory::kScheduling);
  }
  sched_lock_->release(cpu);
  return ok;
}

void Runtime::forward_chunk(ThreadCtx& t, long lo, long hi, bool last) {
  slip::SlipPair& pair = *t.member().pair;
  sim::SimCpu& cpu = t.cpu();
  // Declare the decision through a shared variable, then release the
  // A-stream by adding a token to the syscall semaphore (§3.2.2).
  cpu.consume(mem().store(cpu.id(), pair.mailbox_addr(), cpu.issue_time()),
              TimeCategory::kScheduling);
  // Fault injection: corrupt this forwarded decision, or force a recovery
  // while the A-stream is blocked in the syscall-semaphore wait.
  slip::SlipPair::Mailbox mb{lo, hi, last};
  const int node = machine_.node_of(t.member().cpu);
  const std::uint64_t fired_before = injector_.fired();
  if (injector_.on_forward(node, mb, pair.syscall_sem().has_waiter())) {
    request_pair_recovery(pair, cpu);
  }
  note_fault(cpu.id(), node, fired_before);
  pair.mailbox_push(mb);
  pair.syscall_sem().insert(cpu);
  ++slip_stats_.forwarded_chunks;
}

// ---------------------------------------------------------------------------
// ThreadCtx

ThreadCtx::ThreadCtx(Runtime& rt, const Member& member)
    : rt_(rt), member_(member) {}

int ThreadCtx::nthreads() const {
  return serial_nested_ ? 1 : rt_.team_.nthreads;
}

sim::SimCpu& ThreadCtx::cpu() { return rt_.machine_.cpu(member_.cpu); }

void ThreadCtx::compute(sim::Cycles n) {
  // Fast-forward replay re-executes the region body only to get the
  // A-stream structurally back to the R-stream's episode: computation is
  // suppressed to a nominal charge (nonzero, so host-side loops that spin
  // on simulated progress still advance the clock).
  if (replay_remaining_ > 0) {
    cpu().charge(1, TimeCategory::kBusy);
    return;
  }
  cpu().charge(n, TimeCategory::kBusy);
}

void ThreadCtx::mem_read(sim::Addr a) {
  sim::SimCpu& c = cpu();
  if (replay_remaining_ > 0) {
    c.charge(1, TimeCategory::kBusy);
    return;
  }
  const sim::Cycles lat = rt_.mem().load(c.id(), a, c.issue_time());
  c.charge(lat, lat <= rt_.mem().params().l1_hit_cycles
                    ? TimeCategory::kBusy
                    : TimeCategory::kMemStall);
}

bool ThreadCtx::mem_write(sim::Addr a) {
  sim::SimCpu& c = cpu();
  if (replay_remaining_ > 0) {  // only ever set on an A-stream context
    c.charge(1, TimeCategory::kBusy);
    return false;
  }
  if (member_.role == StreamRole::kA) {
    // §2: the A-stream skips stores to shared variables. When it is in the
    // same session as its R-stream, the store is converted into an
    // exclusive prefetch; otherwise it is dropped.
    const int node = rt_.machine_.node_of(member_.cpu);
    if (rt_.options_.policies.a_stores_as_prefetch &&
        within_session_window(rt_.options_.policies.conversion_window) &&
        rt_.mem().prefetch(c.id(), a, /*exclusive=*/true, c.issue_time())) {
      ++rt_.slip_stats_.converted_stores;
      if (rt_.inst_.active()) rt_.inst_.store_converted(c.id(), node, a);
    } else {
      ++rt_.slip_stats_.dropped_stores;
      if (rt_.inst_.active()) rt_.inst_.store_dropped(c.id(), node, a);
    }
    c.charge(1, TimeCategory::kBusy);
    return false;
  }
  const sim::Cycles lat = rt_.mem().store(c.id(), a, c.issue_time());
  c.charge(lat, lat <= rt_.mem().params().l1_hit_cycles
                    ? TimeCategory::kBusy
                    : TimeCategory::kMemStall);
  return true;
}

bool ThreadCtx::within_session_window(int window) const {
  const slip::SlipPair* pair = member_.pair;
  if (pair == nullptr) return true;
  const auto a = pair->a_barriers();
  const auto r = pair->r_barriers();
  const std::uint64_t gap = a > r ? a - r : r - a;
  return gap <= static_cast<std::uint64_t>(window);
}

void ThreadCtx::check_recovery() {
  if (member_.role == StreamRole::kA && member_.pair->recovery_requested()) {
    throw slip::RecoveryException{};
  }
}

void ThreadCtx::barrier() {
  if (serial_nested_) return;  // one-thread team: barriers are no-ops
  rt_.slip_barrier(*this, TimeCategory::kBarrier);
}

void ThreadCtx::for_chunks(long lo, long hi, front::ScheduleClause sched,
                           const std::function<void(long, long)>& body,
                           bool nowait) {
  if (serial_nested_) {
    // One-thread team: the whole range runs here, whatever the schedule.
    if (is_a_stream()) check_recovery();
    compute(kStaticSchedCost);
    if (lo < hi) body(lo, hi);
    return;
  }
  if (sched.kind == front::ScheduleKind::kStatic) {
    // §3.2.1: every thread — and its A-stream, which shares its id and
    // halved thread count — computes its assignment independently.
    if (is_a_stream()) check_recovery();
    compute(kStaticSchedCost);
    const int n = nthreads();
    const long count = hi - lo;
    if (count > 0) {
      if (sched.chunk > 0) {
        // Round-robin chunks.
        for (long c = lo + static_cast<long>(id()) * sched.chunk; c < hi;
             c += static_cast<long>(n) * sched.chunk) {
          body(c, std::min(hi, c + sched.chunk));
        }
      } else {
        // One contiguous block per thread.
        const long base = count / n;
        const long rem = count % n;
        const long my_lo =
            lo + id() * base + std::min<long>(id(), rem);
        const long my_hi = my_lo + base + (id() < rem ? 1 : 0);
        if (my_lo < my_hi) body(my_lo, my_hi);
      }
    }
  } else if (!is_a_stream()) {
    Runtime::LoopDesc& d = rt_.enter_dynamic_loop(*this, lo, hi, sched);
    long clo = 0;
    long chi = 0;
    const bool forward =
        rt_.team_.slipstream() && member_.role == StreamRole::kR;
    while (rt_.next_chunk(*this, d, clo, chi)) {
      if (forward) rt_.forward_chunk(*this, clo, chi, /*last=*/false);
      body(clo, chi);
    }
    if (forward) rt_.forward_chunk(*this, 0, 0, /*last=*/true);
  } else if (in_replay()) {
    // Fast-forward replay: the R-stream's decisions for this loop predate
    // the restart (the ack-time reconcile cleared them), so consuming here
    // would pair fresh tokens with the wrong construct. Skip straight to
    // the trailing barrier.
    cpu().charge(1, TimeCategory::kBusy);
  } else {
    // A-stream under dynamic/guided scheduling: §3.2.2 — wait for the
    // R-stream's decision on the syscall semaphore, then run its chunk.
    slip::SlipPair& pair = *member_.pair;
    while (true) {
      check_recovery();
      // Cycle accounting: the token wait and the mailbox read are time
      // spent on the R->A syscall channel, not scheduling work — billed
      // to the syscall-wait bucket. A RecoveryException escaping here
      // leaves the override set; begin_a_recovery overwrites it.
      cpu().set_bucket_override(sim::CycleBucket::kSyscallWait);
      if (!pair.syscall_sem().consume(cpu(), TimeCategory::kScheduling)) {
        throw slip::RecoveryException{};
      }
      cpu().consume(
          rt_.mem().load(cpu().id(), pair.mailbox_addr(), cpu().issue_time()),
          TimeCategory::kScheduling);
      cpu().clear_bucket_override();
      if (pair.mailbox_empty()) {
        // A token with no decision behind it: possible after the depth
        // clamp dropped stale entries (a deeply diverged A-stream), or
        // after a restart whose replay skipped paired syscall consumes
        // (reduce/io sync tokens the R-stream inserted regardless).
        // Only a drop from THIS region (or this region's restart) is a
        // legitimate cause; the cumulative drop count would let one
        // region-1 drop excuse broken pairing forever after. Abandon the
        // loop; the next barrier resynchronizes.
        SSOMP_CHECK(pair.unpaired_syscall_token_explained());
        break;
      }
      const slip::SlipPair::Mailbox mb = pair.mailbox_pop();
      if (mb.last) break;
      body(mb.lo, mb.hi);
    }
  }
  if (!nowait) barrier();
}

void ThreadCtx::for_loop(long lo, long hi, front::ScheduleClause sched,
                         const std::function<void(long)>& body, bool nowait) {
  for_chunks(
      lo, hi, sched,
      [&](long clo, long chi) {
        for (long i = clo; i < chi; ++i) body(i);
      },
      nowait);
}

void ThreadCtx::for_loop(long lo, long hi,
                         const std::function<void(long)>& body, bool nowait) {
  front::ScheduleClause sched = rt_.options_.default_schedule;
  for_loop(lo, hi, sched, body, nowait);
}

bool ThreadCtx::single(const std::function<void()>& body, bool nowait) {
  if (serial_nested_) {
    if (!is_a_stream()) body();  // the sole team member executes
    return !is_a_stream();
  }
  bool executed = false;
  if (!is_a_stream()) {
    // Compete for the ticket: the first thread to reach this single
    // construct instance executes it.
    const auto tid = static_cast<std::size_t>(id());
    const std::uint64_t my_seq = ++rt_.member_single_seq_[tid];
    rt_.single_lock_->acquire(cpu(), TimeCategory::kLock);
    cpu().consume(
        rt_.mem().load(cpu().id(), rt_.single_word_, cpu().issue_time()),
        TimeCategory::kLock);
    if (rt_.single_done_seq_ < my_seq) {
      rt_.single_done_seq_ = my_seq;
      executed = true;
      cpu().consume(
          rt_.mem().store(cpu().id(), rt_.single_word_, cpu().issue_time()),
          TimeCategory::kLock);
    }
    rt_.single_lock_->release(cpu());
    if (executed) {
      // The A-stream skipped this construct: suspend R->A I/O pairing so
      // an io_read inside the body does not strand a syscall token.
      const bool saved = io_pairing_;
      io_pairing_ = false;
      body();
      io_pairing_ = saved;
    }
  }
  // §3.1: A-streams skip single sections — there is no way to predict
  // whether the paired R-stream will win the ticket, and prefetching on
  // the wrong node causes harmful migration.
  if (!nowait) barrier();
  return executed;
}

void ThreadCtx::master(const std::function<void()>& body) {
  // §3.1: unlike single, the executor is known a priori, so the A-stream
  // paired with the master executes the section too (with stores skipped).
  if (id() == 0) body();
}

void ThreadCtx::critical(const std::function<void()>& body) {
  if (is_a_stream()) {
    check_recovery();
    if (rt_.options_.policies.a_executes_critical) {
      body();  // unlocked; stores become prefetches via mem_write
    }
    return;
  }
  rt_.critical_lock_->acquire(cpu(), TimeCategory::kLock);
  if (rt_.options_.policies.a_executes_critical) {
    body();
  } else {
    const bool saved = io_pairing_;
    io_pairing_ = false;
    body();
    io_pairing_ = saved;
  }
  rt_.critical_lock_->release(cpu());
}

void ThreadCtx::sections(const std::vector<std::function<void()>>& sections,
                         front::ScheduleKind kind, bool nowait) {
  // The sections construct is a worksharing loop over section indices;
  // static assignment lets the A-stream run its R-stream's sections ahead,
  // dynamic assignment forwards the decision like dynamic-for (§3.1).
  front::ScheduleClause sched;
  sched.kind = kind;
  sched.chunk = 1;
  for_chunks(
      0, static_cast<long>(sections.size()), sched,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          sections[static_cast<std::size_t>(i)]();
        }
      },
      nowait);
}

void ThreadCtx::flush() {
  // Hardware cache coherence maintains flush semantics on every
  // transaction; the construct maps to void (§3.1). The A-stream produces
  // no shared values, so it must not affect visibility either.
}

double ThreadCtx::reduce(double v, bool sync_a, bool is_max) {
  if (serial_nested_) return v;  // one-thread team: identity reduction
  sim::SimCpu& c = cpu();
  const auto tid = static_cast<std::size_t>(id());
  if (!is_a_stream()) {
    rt_.partial_values_[tid] = v;
    c.consume(rt_.mem().store(c.id(), rt_.partial_addrs_[tid],
                              c.issue_time()),
              TimeCategory::kMemStall);
  } else {
    // The A-stream executes the reduction as user code but commits
    // nothing (§3.1).
    c.charge(1, TimeCategory::kBusy);
  }
  barrier();
  if (!is_a_stream() && id() == 0) {
    double acc = is_max ? -1.0e308 : 0.0;
    for (int i = 0; i < nthreads(); ++i) {
      c.consume(rt_.mem().load(c.id(),
                               rt_.partial_addrs_[static_cast<std::size_t>(i)],
                               c.issue_time()),
                TimeCategory::kMemStall);
      acc = is_max ? std::max(acc, rt_.partial_values_[static_cast<std::size_t>(i)])
                   : acc + rt_.partial_values_[static_cast<std::size_t>(i)];
    }
    rt_.reduce_result_ = acc;
    c.consume(rt_.mem().store(c.id(), rt_.reduce_result_word_,
                              c.issue_time()),
              TimeCategory::kMemStall);
  }
  barrier();
  if (rt_.team_.slipstream()) {
    if (member_.role == StreamRole::kR && sync_a) {
      member_.pair->syscall_sem().insert(c);
    } else if (is_a_stream() && sync_a && !in_replay()) {
      if (!member_.pair->syscall_sem().consume(c,
                                               TimeCategory::kStreamWait)) {
        throw slip::RecoveryException{};
      }
    }
  }
  c.consume(rt_.mem().load(c.id(), rt_.reduce_result_word_, c.issue_time()),
            TimeCategory::kMemStall);
  return rt_.reduce_result_;
}

double ThreadCtx::reduce_sum(double v, bool sync_a) {
  return reduce(v, sync_a, /*is_max=*/false);
}

double ThreadCtx::reduce_max(double v, bool sync_a) {
  return reduce(v, sync_a, /*is_max=*/true);
}

void ThreadCtx::parallel(const std::function<void(ThreadCtx&)>& body) {
  ThreadCtx inner(rt_, member_);
  inner.serial_nested_ = true;
  inner.io_pairing_ = io_pairing_;
  // Nested barriers are no-ops, so the inner region cannot retire replay
  // sites — but its computation must stay suppressed during replay.
  inner.replay_remaining_ = replay_remaining_;
  body(inner);
}

void ThreadCtx::io_write(sim::Cycles cost) {
  // §3.1: output operations are irreversible and must not be executed by
  // the speculative A-stream.
  if (is_a_stream()) return;
  cpu().consume(cost, TimeCategory::kBusy);
}

void ThreadCtx::io_read(sim::Cycles cost) {
  if (is_a_stream()) {
    // The A-stream must observe the same input image as its R-stream: it
    // stalls on the syscall semaphore until the R-stream completes the
    // input (§2.2, §3.1).
    check_recovery();
    if (in_replay()) {
      // The R-stream's pairing token for this input predates the restart
      // (drained at ack); the buffered image is host state, re-read free.
      cpu().charge(1, TimeCategory::kBusy);
      return;
    }
    if (!member_.pair->syscall_sem().consume(cpu(),
                                             TimeCategory::kStreamWait)) {
      throw slip::RecoveryException{};
    }
    cpu().consume(10, TimeCategory::kBusy);  // re-read the buffered image
    return;
  }
  cpu().consume(cost, TimeCategory::kBusy);
  if (io_pairing_ && rt_.team_.slipstream() &&
      member_.role == StreamRole::kR) {
    member_.pair->syscall_sem().insert(cpu());
  }
}

// ---------------------------------------------------------------------------
// SerialCtx

sim::SimCpu& SerialCtx::cpu() { return rt_.machine_.cpu(0); }

void SerialCtx::compute(sim::Cycles n) {
  cpu().charge(n, TimeCategory::kBusy);
}

void SerialCtx::mem_read(sim::Addr a) {
  sim::SimCpu& c = cpu();
  const sim::Cycles lat = rt_.mem().load(c.id(), a, c.issue_time());
  c.charge(lat, lat <= rt_.mem().params().l1_hit_cycles
                    ? TimeCategory::kBusy
                    : TimeCategory::kMemStall);
}

bool SerialCtx::mem_write(sim::Addr a) {
  sim::SimCpu& c = cpu();
  const sim::Cycles lat = rt_.mem().store(c.id(), a, c.issue_time());
  c.charge(lat, lat <= rt_.mem().params().l1_hit_cycles
                    ? TimeCategory::kBusy
                    : TimeCategory::kMemStall);
  return true;
}

void SerialCtx::io_write(sim::Cycles cost) {
  cpu().consume(cost, TimeCategory::kBusy);
}

void SerialCtx::io_read(sim::Cycles cost) {
  cpu().consume(cost, TimeCategory::kBusy);
}

void SerialCtx::slipstream_directive(std::string_view directive_text) {
  auto r = front::parse_slipstream_directive(directive_text);
  SSOMP_CHECK(r.ok);
  rt_.directives_.apply_serial(r.value);
}

void SerialCtx::parallel(const std::function<void(ThreadCtx&)>& body,
                         std::string_view region_directive, bool if_clause) {
  if (!if_clause) {
    // OpenMP IF(false): execute the region serially on the master.
    Member m{0, 0, stats::StreamRole::kNone, nullptr};
    Team saved = rt_.team_;
    rt_.team_ = Team{};
    rt_.team_.mode = ExecutionMode::kSingle;
    rt_.team_.nthreads = 1;
    rt_.team_.members.push_back(m);
    rt_.barrier_->configure(1);
    ThreadCtx t(rt_, m);
    body(t);
    rt_.team_ = saved;
    return;
  }
  std::optional<front::ParsedSlipstream> region;
  if (!region_directive.empty()) {
    auto r = front::parse_slipstream_directive(region_directive);
    SSOMP_CHECK(r.ok);
    region = r.value;
  }
  rt_.dispatch_region(body, region);
}

}  // namespace ssomp::rt
