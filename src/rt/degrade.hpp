// Adaptive per-CMP degradation of chronically diverging slipstream pairs.
//
// Recovery is not free: every divergence costs the R-stream a probe and
// the A-stream an unwind (plus replay under the restart policy), and a
// pair that diverges every region burns those cycles without ever
// delivering run-ahead benefit. The controller watches each CMP's
// region-by-region recovery record and demotes a pair that strikes out
// `demote_after` regions in a row to single-stream: the runtime stops
// building an A-stream member for that CMP, so the node runs its task
// exactly like ExecutionMode::kSingle while the rest of the machine keeps
// slipstreaming. After `probation` demoted regions the pair is re-promoted
// on probation for one region: a clean probation region restores it to
// healthy, a recovery during probation sends it straight back to the
// bench for another probation period.
//
// State machine, advanced once per (node, region) at region end:
//
//            recovered && ++strikes >= demote_after
//   Healthy ------------------------------------------> Degraded
//      ^  \______ clean region resets strikes ______/      |
//      |                                                   | probation
//      |   clean probation region                          v  regions pass
//      +----------------------------------------------- Probation
//                      recovered -> Degraded (probation restarts)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ssomp::rt {

class DegradationController {
 public:
  enum class State : std::uint8_t { kHealthy = 0, kDegraded, kProbation };

  /// What on_region_end decided for the node this region.
  enum class Transition : std::uint8_t {
    kNone = 0,
    kDemoted,   // Healthy/Probation -> Degraded
    kPromoted,  // Degraded -> Probation (one trial region)
    kRestored,  // Probation -> Healthy (clean trial)
  };

  DegradationController() : DegradationController(false, 2, 4, 1) {}
  DegradationController(bool enabled, int demote_after, int probation,
                        int ncmp)
      : enabled_(enabled),
        demote_after_(demote_after),
        probation_(probation),
        nodes_(static_cast<std::size_t>(ncmp)) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Whether the runtime should build an A-stream member for `node` in
  /// the region about to start. Degraded nodes run single-stream.
  [[nodiscard]] bool slipstream_allowed(int node) const {
    if (!enabled_) return true;
    return nodes_[static_cast<std::size_t>(node)].state != State::kDegraded;
  }

  [[nodiscard]] State state(int node) const {
    return nodes_[static_cast<std::size_t>(node)].state;
  }

  /// Advances the per-node state machine after a region's join completes.
  /// `recovered` is whether the node's pair raised at least one recovery
  /// in the region just finished (always false for a demoted node — it
  /// had no A-stream to diverge). Returns the transition taken, if any.
  Transition on_region_end(int node, bool recovered);

  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }

  // --- state exposure for the model checker ---
  //
  // The controller is embedded by value in model-checker states, so the
  // per-node counters that drive future transitions must be
  // hashable/comparable.
  [[nodiscard]] int strikes(int node) const {
    return nodes_[static_cast<std::size_t>(node)].strikes;
  }
  [[nodiscard]] int demoted_clock(int node) const {
    return nodes_[static_cast<std::size_t>(node)].demoted_clock;
  }

 private:
  struct Node {
    State state = State::kHealthy;
    int strikes = 0;       // consecutive recovered regions while Healthy
    int demoted_clock = 0;  // regions served while Degraded
  };

  bool enabled_;
  int demote_after_;
  int probation_;
  std::vector<Node> nodes_;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;
};

[[nodiscard]] constexpr std::string_view to_string(
    DegradationController::State s) {
  switch (s) {
    case DegradationController::State::kHealthy: return "healthy";
    case DegradationController::State::kDegraded: return "degraded";
    case DegradationController::State::kProbation: return "probation";
  }
  return "?";
}

}  // namespace ssomp::rt
