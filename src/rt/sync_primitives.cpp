#include "rt/sync_primitives.hpp"

#include <algorithm>

namespace ssomp::rt {

SpinLock::SpinLock(mem::MemorySystem& mem, mem::AddrSpace& addr_space)
    : mem_(mem), word_(addr_space.alloc_runtime(64)) {}

void SpinLock::acquire(sim::SimCpu& cpu, sim::TimeCategory cat) {
  int probes = 0;
  while (true) {
    // Test: read the lock word.
    cpu.consume(mem_.load(cpu.id(), word_, cpu.issue_time()), cat);
    if (!held_) {
      // Test-and-set: the RMW needs exclusive ownership of the line.
      cpu.consume(mem_.store(cpu.id(), word_, cpu.issue_time()), cat);
      if (!held_) {
        held_ = true;
        ++acquisitions_;
        return;
      }
      // Lost the race between our read and our RMW.
    }
    ++contended_;
    if (++probes < kSpinProbes) {
      cpu.consume(kBackoff, cat);
    } else {
      parked_.push_back(&cpu);
      cpu.block(cat);
      probes = 0;
    }
  }
}

void SpinLock::release(sim::SimCpu& cpu) {
  SSOMP_CHECK(held_);
  held_ = false;
  // The releasing store invalidates the spinners' cached copies.
  cpu.consume(mem_.store(cpu.id(), word_, cpu.issue_time()), sim::TimeCategory::kBusy);
  if (!parked_.empty()) {
    sim::SimCpu* next = parked_.front();
    parked_.pop_front();
    next->wake();
  }
}

SenseBarrier::SenseBarrier(mem::MemorySystem& mem, mem::AddrSpace& addr_space)
    : mem_(mem),
      counter_word_(addr_space.alloc_runtime(64)),
      sense_word_(addr_space.alloc_runtime(64)) {}

void SenseBarrier::configure(int participants) {
  SSOMP_CHECK(parked_.empty());
  SSOMP_CHECK(participants >= 1);
  participants_ = participants;
  count_ = participants;
  local_sense_.assign(static_cast<std::size_t>(participants), sense_);
}

void SenseBarrier::arrive(sim::SimCpu& cpu, int slot, sim::TimeCategory cat) {
  SSOMP_CHECK(slot >= 0 && slot < participants_);
  const bool my_sense = !local_sense_[static_cast<std::size_t>(slot)];
  local_sense_[static_cast<std::size_t>(slot)] = my_sense;

  // Atomic decrement of the arrival counter (read-modify-write).
  cpu.consume(mem_.load(cpu.id(), counter_word_, cpu.issue_time()), cat);
  cpu.consume(mem_.store(cpu.id(), counter_word_, cpu.issue_time()), cat);
  if (--count_ == 0) {
    // Last arriver: reset and release by flipping the shared sense.
    count_ = participants_;
    sense_ = my_sense;
    ++episodes_;
    cpu.consume(mem_.store(cpu.id(), sense_word_, cpu.issue_time()), cat);
    for (sim::SimCpu* waiter : parked_) waiter->wake();
    parked_.clear();
    return;
  }

  int probes = 0;
  while (sense_ != my_sense) {
    // Spin on the shared sense word.
    cpu.consume(mem_.load(cpu.id(), sense_word_, cpu.issue_time()), cat);
    if (sense_ == my_sense) break;
    if (++probes < kSpinProbes) {
      cpu.consume(kBackoff, cat);
    } else {
      parked_.push_back(&cpu);
      cpu.block(cat);
      // Woken by the releaser; the post-wake load below models the final
      // probe observing the flipped sense.
      cpu.consume(mem_.load(cpu.id(), sense_word_, cpu.issue_time()), cat);
      break;
    }
  }
}

}  // namespace ssomp::rt
