// Shared data containers for workloads.
//
// Values live once in host memory (the single authoritative copy); every
// access routes a simulated load/store through the ThreadCtx/SerialCtx so
// timing, coherence traffic, and the A-stream store policy are applied.
// Because the A-stream's mem_write never commits, a diverging A-stream can
// never corrupt the R-streams' data — the property slipstream relies on.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "rt/runtime.hpp"

namespace ssomp::rt {

enum class Distribution : std::uint8_t {
  kRoundRobin = 0,  // page-interleaved homes (the HomeMap default)
  kBlock,           // contiguous block of pages per node
};

template <typename T>
class SharedArray {
 public:
  SharedArray(Runtime& rt, std::size_t n, std::string name,
              Distribution dist = Distribution::kBlock)
      : rt_(&rt), name_(std::move(name)), host_(n) {
    base_ = rt.machine().addr_space().alloc_app(n * sizeof(T));
    if (dist == Distribution::kBlock && n > 0) {
      rt.mem().home_map().distribute_block(base_, n * sizeof(T));
    }
  }

  [[nodiscard]] std::size_t size() const { return host_.size(); }
  [[nodiscard]] sim::Addr addr(std::size_t i) const {
    return base_ + i * sizeof(T);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Simulated element read within a parallel region.
  [[nodiscard]] T read(ThreadCtx& t, std::size_t i) const {
    t.mem_read(addr(i));
    return host_[i];
  }

  /// Simulated element write; the A-stream's write is converted/dropped.
  void write(ThreadCtx& t, std::size_t i, T v) {
    if (t.mem_write(addr(i))) host_[i] = v;
  }

  /// Serial-part simulated access (master).
  [[nodiscard]] T read(SerialCtx& s, std::size_t i) const {
    s.mem_read(addr(i));
    return host_[i];
  }
  void write(SerialCtx& s, std::size_t i, T v) {
    if (s.mem_write(addr(i))) host_[i] = v;
  }

  /// Simulates a unit-stride read scan of elements [lo, hi): one load per
  /// cache line touched (the per-element accesses in between are L1 hits
  /// by construction and are charged by the caller's compute cost). Host
  /// values are then read directly via host().
  void scan_read(ThreadCtx& t, std::size_t lo, std::size_t hi) const {
    if (lo >= hi) return;
    const sim::Cycles lb = t.runtime().mem().params().line_bytes;
    const sim::Addr first = addr(lo) & ~(static_cast<sim::Addr>(lb) - 1);
    const sim::Addr last = addr(hi - 1);
    for (sim::Addr a = first; a <= last; a += lb) t.mem_read(a);
  }

  /// Simulates a unit-stride write scan of [lo, hi) and commits `src`
  /// (length hi-lo) to host values — except on the A-stream, whose writes
  /// are converted/dropped per the slipstream policy.
  void scan_write(ThreadCtx& t, std::size_t lo, std::size_t hi,
                  const T* src) {
    if (lo >= hi) return;
    const sim::Cycles lb = t.runtime().mem().params().line_bytes;
    const sim::Addr first = addr(lo) & ~(static_cast<sim::Addr>(lb) - 1);
    const sim::Addr last = addr(hi - 1);
    bool commit = false;
    for (sim::Addr a = first; a <= last; a += lb) {
      commit = t.mem_write(a);
    }
    if (commit) {
      for (std::size_t i = lo; i < hi; ++i) host_[i] = src[i - lo];
    }
  }

  /// Unsimulated host access, for initialization before the simulated
  /// program starts and for verification after it ends.
  [[nodiscard]] T& host(std::size_t i) { return host_[i]; }
  [[nodiscard]] const T& host(std::size_t i) const { return host_[i]; }
  [[nodiscard]] std::vector<T>& host_vector() { return host_; }
  [[nodiscard]] const std::vector<T>& host_vector() const { return host_; }

 private:
  Runtime* rt_;
  std::string name_;
  sim::Addr base_ = 0;
  std::vector<T> host_;
};

template <typename T>
class SharedVar {
 public:
  SharedVar(Runtime& rt, std::string name, T init = T{})
      : rt_(&rt), name_(std::move(name)), value_(init) {
    // One cache line per scalar: shared scalars are contention hot-spots
    // and must not false-share.
    base_ = rt.machine().addr_space().alloc_app(
        rt.mem().params().line_bytes);
  }

  [[nodiscard]] sim::Addr addr() const { return base_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] T read(ThreadCtx& t) const {
    t.mem_read(base_);
    return value_;
  }
  void write(ThreadCtx& t, T v) {
    if (t.mem_write(base_)) value_ = v;
  }

  [[nodiscard]] T read(SerialCtx& s) const {
    s.mem_read(base_);
    return value_;
  }
  void write(SerialCtx& s, T v) {
    if (s.mem_write(base_)) value_ = v;
  }

  /// OpenMP `atomic` update (§3.1): an exclusive RMW for the R-stream; the
  /// A-stream issues an exclusive prefetch under the default policy, so
  /// the data it will RMW later is unlikely to migrate away.
  void atomic_add(ThreadCtx& t, T v) {
    sim::SimCpu& c = t.cpu();
    auto& ms = t.runtime().mem();
    if (t.is_a_stream()) {
      t.check_recovery();
      if (t.runtime().options().policies.a_executes_atomic) {
        (void)ms.prefetch(c.id(), base_, /*exclusive=*/true, c.issue_time());
      }
      c.charge(1, sim::TimeCategory::kBusy);
      return;
    }
    c.consume(ms.load(c.id(), base_, c.issue_time()),
              sim::TimeCategory::kLock);
    c.consume(ms.store(c.id(), base_, c.issue_time()),
              sim::TimeCategory::kLock);
    value_ += v;
  }

  [[nodiscard]] T& host() { return value_; }
  [[nodiscard]] const T& host() const { return value_; }

 private:
  Runtime* rt_;
  std::string name_;
  sim::Addr base_ = 0;
  T value_;
};

}  // namespace ssomp::rt
