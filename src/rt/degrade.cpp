#include "rt/degrade.hpp"

namespace ssomp::rt {

DegradationController::Transition DegradationController::on_region_end(
    int node, bool recovered) {
  if (!enabled_) return Transition::kNone;
  Node& n = nodes_[static_cast<std::size_t>(node)];
  switch (n.state) {
    case State::kHealthy:
      if (!recovered) {
        n.strikes = 0;
        return Transition::kNone;
      }
      if (++n.strikes < demote_after_) return Transition::kNone;
      n.state = State::kDegraded;
      n.strikes = 0;
      n.demoted_clock = 0;
      ++demotions_;
      return Transition::kDemoted;
    case State::kDegraded:
      if (++n.demoted_clock < probation_) return Transition::kNone;
      n.state = State::kProbation;
      ++promotions_;
      return Transition::kPromoted;
    case State::kProbation:
      if (recovered) {
        n.state = State::kDegraded;
        n.demoted_clock = 0;
        ++demotions_;
        return Transition::kDemoted;
      }
      n.state = State::kHealthy;
      n.strikes = 0;
      return Transition::kRestored;
  }
  return Transition::kNone;
}

}  // namespace ssomp::rt
