// Simulated synchronization primitives used inside the runtime library.
//
// Both primitives generate real coherence traffic on runtime-arena lines
// (their words are allocated from AddrSpace's runtime arena, so they do not
// pollute the Figure 3/5 application request classification) and attribute
// waiting time to the caller-supplied category.
//
// Host-side state provides the value semantics; the simulated accesses
// provide the timing. A bounded spin-then-block scheme keeps host event
// counts proportional to simulated traffic without distorting wait times:
// the first probes are honest spin loads (they pay the invalidate-miss when
// the releaser writes), after which the waiter parks and the releaser's
// wake models the final probe.
#pragma once

#include <deque>
#include <vector>

#include "mem/memsys.hpp"
#include "sim/engine.hpp"

namespace ssomp::rt {

/// Test-and-test-and-set spin lock with bounded spinning.
class SpinLock {
 public:
  SpinLock(mem::MemorySystem& mem, mem::AddrSpace& addr_space);

  void acquire(sim::SimCpu& cpu, sim::TimeCategory cat);
  void release(sim::SimCpu& cpu);

  [[nodiscard]] bool held() const { return held_; }
  [[nodiscard]] std::uint64_t acquisitions() const { return acquisitions_; }
  [[nodiscard]] std::uint64_t contended_acquisitions() const {
    return contended_;
  }

 private:
  mem::MemorySystem& mem_;
  sim::Addr word_;
  bool held_ = false;
  std::deque<sim::SimCpu*> parked_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;

  static constexpr int kSpinProbes = 4;
  static constexpr sim::Cycles kBackoff = 200;
};

/// Central sense-reversing barrier over a fixed participant count.
class SenseBarrier {
 public:
  SenseBarrier(mem::MemorySystem& mem, mem::AddrSpace& addr_space);

  /// Sets the number of participants; resets the episode state. Only legal
  /// when nobody is waiting.
  void configure(int participants);

  /// `slot` identifies the participant (0 .. participants-1) and carries
  /// its private sense across episodes.
  void arrive(sim::SimCpu& cpu, int slot, sim::TimeCategory cat);

  [[nodiscard]] int participants() const { return participants_; }
  [[nodiscard]] std::uint64_t episodes() const { return episodes_; }

 private:
  mem::MemorySystem& mem_;
  sim::Addr counter_word_;
  sim::Addr sense_word_;
  int participants_ = 0;
  int count_ = 0;
  bool sense_ = false;
  std::vector<bool> local_sense_;
  std::vector<sim::SimCpu*> parked_;
  std::uint64_t episodes_ = 0;

  static constexpr int kSpinProbes = 4;
  static constexpr sim::Cycles kBackoff = 400;
};

}  // namespace ssomp::rt
