#include "rt/pointsync.hpp"

#include <algorithm>

namespace ssomp::rt {

ProgressFlag::ProgressFlag(Runtime& rt, std::string name)
    : rt_(rt),
      name_(std::move(name)),
      word_(rt.machine().addr_space().alloc_runtime(64)) {}

void ProgressFlag::post(ThreadCtx& t, long value) {
  if (t.is_a_stream()) {
    t.check_recovery();
    return;  // synchronization stores are skipped by the A-stream (§2)
  }
  SSOMP_CHECK(value >= value_);  // monotonic
  sim::SimCpu& cpu = t.cpu();
  cpu.consume(rt_.mem().store(cpu.id(), word_, cpu.issue_time()),
              sim::TimeCategory::kBusy);
  value_ = value;
  // Wake every waiter the new value satisfies.
  auto it = waiters_.begin();
  while (it != waiters_.end()) {
    if (it->needed <= value_) {
      it->cpu->wake();
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

void ProgressFlag::wait_ge(ThreadCtx& t, long value) {
  if (t.is_a_stream()) {
    t.check_recovery();
    return;  // the A-stream runs ahead of the wavefront
  }
  sim::SimCpu& cpu = t.cpu();
  int probes = 0;
  while (value_ < value) {
    // Spin-read the flag word (pays the coherence miss after each post).
    cpu.consume(rt_.mem().load(cpu.id(), word_, cpu.issue_time()),
                sim::TimeCategory::kLock);
    if (value_ >= value) break;
    if (++probes < kSpinProbes) {
      cpu.consume(kBackoff, sim::TimeCategory::kLock);
    } else {
      waiters_.push_back(Waiter{&cpu, value});
      cpu.block(sim::TimeCategory::kLock);
      probes = 0;
    }
  }
  // Final confirming read after the wait resolves.
  cpu.consume(rt_.mem().load(cpu.id(), word_, cpu.issue_time()),
              sim::TimeCategory::kLock);
}

long ProgressFlag::read(ThreadCtx& t) const {
  sim::SimCpu& cpu = t.cpu();
  cpu.consume(rt_.mem().load(cpu.id(), word_, cpu.issue_time()),
              sim::TimeCategory::kBusy);
  return value_;
}

}  // namespace ssomp::rt
