// Contention modeling.
//
// The paper models contention "at the network inputs and outputs, and at
// the memory controller". Each such point is a single-server Resource.
// Because one memory transaction touches the same resource at different
// points of its path (e.g. a bus carries the request now and the reply
// ~300 cycles later), the resource keeps a short list of future busy
// intervals and serves each request in the earliest gap that fits — a
// plain busy-until frontier would falsely block the idle window between a
// request and its own reply against other processors' traffic.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ssomp::mem {

class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  /// Serves a request arriving at time `t` with the given occupancy in the
  /// earliest gap at or after `t`. Returns the completion time.
  sim::Cycles serve(sim::Cycles t, sim::Cycles occupancy) {
    const sim::Cycles start = reserve(t, occupancy);
    queue_delay_total_ += start - t;
    busy_total_ += occupancy;
    ++requests_;
    return start + occupancy;
  }

  /// Records occupancy without contributing latency to any requester
  /// (used for victim writebacks, which are buffered in real hardware).
  void occupy(sim::Cycles t, sim::Cycles occupancy) {
    reserve(t, occupancy);
    busy_total_ += occupancy;
  }

  /// Earliest time a request arriving at `t` could start service.
  [[nodiscard]] sim::Cycles next_free() const {
    return intervals_.empty() ? 0 : intervals_.back().second;
  }

  [[nodiscard]] sim::Cycles busy_total() const { return busy_total_; }
  [[nodiscard]] sim::Cycles queue_delay_total() const {
    return queue_delay_total_;
  }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// Inserts a busy interval of `occ` cycles at the earliest gap >= t;
  /// returns its start time.
  sim::Cycles reserve(sim::Cycles t, sim::Cycles occ) {
    // Prune intervals that can no longer interact with new arrivals.
    // Arrival times are near-monotonic (bounded by the CPUs' deferral
    // quantum plus path offsets), so a generous slack keeps this exact in
    // practice while bounding the list.
    constexpr sim::Cycles kSlack = 4096;
    if (!intervals_.empty() && t > kSlack) {
      const sim::Cycles horizon = t - kSlack;
      auto keep = std::find_if(
          intervals_.begin(), intervals_.end(),
          [horizon](const auto& iv) { return iv.second > horizon; });
      intervals_.erase(intervals_.begin(), keep);
    }
    sim::Cycles start = t;
    auto pos = intervals_.begin();
    for (; pos != intervals_.end(); ++pos) {
      if (start + occ <= pos->first) break;  // fits in the gap before *pos
      start = std::max(start, pos->second);
    }
    intervals_.insert(pos, {start, start + occ});
    return start;
  }

  std::string name_;
  std::vector<std::pair<sim::Cycles, sim::Cycles>> intervals_;
  sim::Cycles busy_total_ = 0;
  sim::Cycles queue_delay_total_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace ssomp::mem
