// Contention modeling.
//
// The paper models contention "at the network inputs and outputs, and at
// the memory controller". Each such point is a single-server Resource.
// Because one memory transaction touches the same resource at different
// points of its path (e.g. a bus carries the request now and the reply
// ~300 cycles later), the resource keeps a short list of future busy
// intervals and serves each request in the earliest gap that fits — a
// plain busy-until frontier would falsely block the idle window between a
// request and its own reply against other processors' traffic.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ssomp::mem {

class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  /// Serves a request arriving at time `t` with the given occupancy in the
  /// earliest gap at or after `t`. Returns the completion time.
  sim::Cycles serve(sim::Cycles t, sim::Cycles occupancy) {
    const sim::Cycles start = reserve(t, occupancy);
    queue_delay_total_ += start - t;
    busy_total_ += occupancy;
    ++requests_;
    return start + occupancy;
  }

  /// Records occupancy without contributing latency to any requester
  /// (used for victim writebacks, which are buffered in real hardware).
  void occupy(sim::Cycles t, sim::Cycles occupancy) {
    reserve(t, occupancy);
    busy_total_ += occupancy;
  }

  /// Earliest time a request arriving at `t` could start service.
  [[nodiscard]] sim::Cycles next_free() const {
    return head_ >= intervals_.size() ? 0 : intervals_.back().second;
  }

  [[nodiscard]] sim::Cycles busy_total() const { return busy_total_; }
  [[nodiscard]] sim::Cycles queue_delay_total() const {
    return queue_delay_total_;
  }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// Inserts a busy interval of `occ` cycles at the earliest gap >= t;
  /// returns its start time. This runs on every modeled protocol step, so
  /// the list is managed as a vector with a dead prefix: pruning advances
  /// `head_` (no memmove per call) and the common append lands at the
  /// back (no shift); compaction is amortized over many prunes.
  sim::Cycles reserve(sim::Cycles t, sim::Cycles occ) {
    // Prune intervals that can no longer interact with new arrivals.
    // Arrival times are near-monotonic (bounded by the CPUs' deferral
    // quantum plus path offsets), so a generous slack keeps this exact in
    // practice while bounding the list.
    constexpr sim::Cycles kSlack = 4096;
    if (head_ < intervals_.size() && t > kSlack) {
      const sim::Cycles horizon = t - kSlack;
      while (head_ < intervals_.size() &&
             intervals_[head_].second <= horizon) {
        ++head_;
      }
      if (head_ >= 64 && head_ * 2 >= intervals_.size()) {
        intervals_.erase(intervals_.begin(),
                         intervals_.begin() +
                             static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    // Intervals are disjoint and sorted, so end times are monotonic:
    // everything ending at or before `t` ends before any candidate start
    // and can be skipped wholesale.
    const auto first = intervals_.begin() + static_cast<std::ptrdiff_t>(head_);
    const auto from = std::partition_point(
        first, intervals_.end(),
        [t](const std::pair<sim::Cycles, sim::Cycles>& iv) {
          return iv.second <= t;
        });
    sim::Cycles start = t;
    auto pos = static_cast<std::size_t>(from - intervals_.begin());
    for (; pos != intervals_.size(); ++pos) {
      if (start + occ <= intervals_[pos].first) break;  // fits in this gap
      start = std::max(start, intervals_[pos].second);
    }
    intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(pos),
                      {start, start + occ});
    return start;
  }

  std::string name_;
  std::vector<std::pair<sim::Cycles, sim::Cycles>> intervals_;
  std::size_t head_ = 0;  // intervals_[0, head_) are pruned (dead)
  sim::Cycles busy_total_ = 0;
  sim::Cycles queue_delay_total_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace ssomp::mem
