// The simulated memory hierarchy of the CMP-based DSM machine.
//
// Topology (paper §5): N nodes, each a dual-processor CMP. Every processor
// has a private L1; the two processors of a CMP share a unified L2. L2s
// are kept coherent by an invalidate-based fully-mapped directory; homes
// are page-interleaved (HomeMap). The interconnect is a fixed-delay
// network with contention modeled at the network inputs/outputs, the
// directory controllers and the memory controllers (Resource).
//
// The model is "atomic state, timed latency": protocol state transitions
// are applied when a request is issued, and the request's latency is
// computed by walking the message path through the contention resources.
// Non-blocking prefetches (the A-stream's converted stores) apply state
// eagerly but mark the L2 line pending until the computed completion time;
// a later request to a pending line waits and is counted as a merge at the
// shared L2 ("merges their requests when appropriate", §5). This is the
// mechanism behind the paper's A-Late/R-Late request classes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/addrspace.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/params.hpp"
#include "mem/resource.hpp"
#include "sim/types.hpp"
#include "stats/memstats.hpp"

namespace ssomp::mem {

class MemorySystem {
 public:
  MemorySystem(const MemParams& params, int nodes, int cpus_per_node = 2);

  /// Stream role of a processor; drives request classification and is set
  /// by the runtime when a parallel region starts/ends.
  void set_role(sim::CpuId cpu, stats::StreamRole role);
  [[nodiscard]] stats::StreamRole role(sim::CpuId cpu) const;

  /// Enables slipstream self-invalidation (paper §2, §3.2.1): when an
  /// A-stream's converted store targets a widely-shared line, the sharers
  /// receive self-invalidation hints (no acknowledgement round) instead of
  /// the conversion being dropped, so the later exclusive acquisition pays
  /// no invalidation fan-out.
  void set_self_invalidation(bool enabled) { self_invalidation_ = enabled; }
  [[nodiscard]] bool self_invalidation() const { return self_invalidation_; }

  /// Blocking load/store issued at time `now` (the CPU's issue_time()).
  /// Returns the access latency in cycles; the caller charges it to the
  /// issuing processor. State transitions are applied.
  sim::Cycles load(sim::CpuId cpu, sim::Addr addr, sim::Cycles now);
  sim::Cycles store(sim::CpuId cpu, sim::Addr addr, sim::Cycles now);

  /// Non-blocking prefetch into the shared L2 of `cpu`'s node (exclusive =
  /// read-for-ownership, used for the A-stream's converted stores).
  /// Returns false when the node's outstanding-fill budget (MSHRs) is
  /// exhausted — the paper's "no resource contention exists" condition for
  /// store conversion — in which case nothing is issued. The issue cost is
  /// one cycle either way, charged by the caller.
  bool prefetch(sim::CpuId cpu, sim::Addr addr, bool exclusive,
                sim::Cycles now);

  /// Outstanding prefetch-initiated fills at a node's shared L2.
  [[nodiscard]] int pending_prefetches(sim::NodeId node, sim::Cycles now);

  /// True when a line has >= 3 sharers besides `self` — an exclusive
  /// prefetch to such a line is predictably premature (it would rip the
  /// line out of active readers' caches), so converted stores skip it
  /// (or, with self-invalidation enabled, hint the sharers instead).
  [[nodiscard]] bool widely_shared(sim::Addr line_addr, sim::NodeId self);

  /// Sends self-invalidation hints to every sharer except `self`: each
  /// drops its copy after the hint's one-way latency, with no
  /// acknowledgement collection (the optimization's point).
  void send_self_invalidation_hints(sim::Addr line_addr, sim::NodeId self,
                                    sim::Cycles now);

  /// Classifies all still-resident/pending lines (call at end of run
  /// before reading `stats().req_class`).
  void finalize_classification();

  /// Cross-checks L1 inclusion, L2/directory consistency and directory
  /// entry invariants. Used by tests after every simulated run.
  [[nodiscard]] bool check_invariants() const;

  [[nodiscard]] HomeMap& home_map() { return home_map_; }
  [[nodiscard]] stats::MemStats& stats() { return stats_; }
  [[nodiscard]] const stats::MemStats& stats() const { return stats_; }
  [[nodiscard]] const MemParams& params() const { return params_; }
  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int cpus_per_node() const { return cpus_per_node_; }
  [[nodiscard]] sim::NodeId node_of(sim::CpuId cpu) const {
    return cpu / cpus_per_node_;
  }

  /// Total queueing delay accumulated at all contention resources.
  [[nodiscard]] sim::Cycles total_queue_delay() const;

  /// Per-resource contention summary (debug/reporting).
  struct ResourceReport {
    std::string name;
    std::uint64_t requests;
    sim::Cycles busy;
    sim::Cycles queue_delay;
  };
  [[nodiscard]] std::vector<ResourceReport> resource_report() const;

 private:
  struct L1Meta {};

  struct L2Meta {
    stats::StreamRole fetcher = stats::StreamRole::kNone;
    stats::ReqKind fill_kind = stats::ReqKind::kRead;
    bool merged_late = false;  // other stream merged while fill outstanding
    bool ref_r = false;        // R-stream referenced after fill completion
    bool ref_a = false;
    bool app = false;          // application shared-data arena
    sim::Cycles pending_until = 0;
  };

  using L1 = SetAssocCache<L1Meta>;
  using L2 = SetAssocCache<L2Meta>;

  struct NodeResources {
    Resource bus;
    Resource ni_in;
    Resource ni_out;
    Resource dirctl;
    Resource memctl;
    Resource l2port;  // the shared L2 is single-ported: the CMP's two
                      // processors contend for every L1-miss access
  };

  /// Running projected time for one message path.
  class PathTimer {
   public:
    explicit PathTimer(sim::Cycles start) : t_(start) {}
    void serve(Resource& r, sim::Cycles occupancy) {
      t_ = r.serve(t_, occupancy);
    }
    void wire(sim::Cycles c) { t_ += c; }
    void at_least(sim::Cycles t) { t_ = std::max(t_, t); }
    [[nodiscard]] sim::Cycles at() const { return t_; }

   private:
    sim::Cycles t_;
  };

  [[nodiscard]] L1& l1(sim::CpuId cpu) { return *l1s_[cpu]; }
  [[nodiscard]] L2& l2(sim::NodeId node) { return *l2s_[node]; }

  /// Records a post-fill reference by `cpu`'s stream on an L2 line.
  void record_ref(L2Meta& meta, stats::StreamRole role);

  /// Waits out a pending fill; returns extra latency and flags merges.
  sim::Cycles absorb_pending(L2::Line& line, stats::StreamRole role,
                             sim::Cycles now);

  /// Classifies and retires a line's current classification epoch.
  void finalize_line(const L2Meta& meta);

  /// Invalidates a line at a node (L2 + both L1s), finalizing its epoch
  /// and updating nothing in the directory (caller's job).
  void invalidate_at_node(sim::NodeId node, sim::Addr line_addr);

  /// Handles an L2 victim: directory update + writeback occupancy.
  void handle_l2_eviction(sim::NodeId node, const L2::Evicted& victim,
                          sim::Cycles now);

  /// Full coherence fill of `line_addr` into node's L2 (line not present).
  /// Applies directory/L2 transitions and returns the fill latency.
  sim::Cycles fill_line(sim::CpuId cpu, sim::Addr line_addr,
                        stats::ReqKind kind, sim::Cycles now);

  /// S -> M upgrade of a line already present in node's L2.
  sim::Cycles upgrade_line(sim::CpuId cpu, L2::Line& line, sim::Cycles now);

  /// Invalidation fan-out from home `h` at time `t_home`; returns the time
  /// at which all acknowledgements have been collected.
  sim::Cycles invalidate_sharers(sim::NodeId h, DirEntry& e,
                                 sim::NodeId except, sim::Addr line_addr,
                                 sim::Cycles t_home);

  /// Brings the line into `cpu`'s L1 with the given state.
  void fill_l1(sim::CpuId cpu, sim::Addr line_addr, LineState state);

  /// Invalidates the *other* local L1 copies when `cpu` writes.
  void invalidate_sibling_l1(sim::CpuId cpu, sim::Addr line_addr);

  /// Downgrades the other local L1 copies to Shared when `cpu` reads a
  /// line the sibling holds dirty.
  void downgrade_sibling_l1(sim::CpuId cpu, sim::Addr line_addr);

  /// Latency parameters pre-converted to cycles at construction. The
  /// ns→cycles conversion is a double multiply plus llround — far too
  /// expensive to repeat on every protocol step of every miss.
  struct LatencyTable {
    sim::Cycles bus = 0;
    sim::Cycles ni_local_dc = 0;
    sim::Cycles ni_remote_dc = 0;
    sim::Cycles net = 0;
    sim::Cycles mem = 0;

    LatencyTable() = default;
    explicit LatencyTable(const MemParams& p)
        : bus(p.bus_cycles()),
          ni_local_dc(p.ni_local_dc_cycles()),
          ni_remote_dc(p.ni_remote_dc_cycles()),
          net(p.net_cycles()),
          mem(p.mem_cycles()) {}
  };

  MemParams params_;
  LatencyTable lat_;
  int nodes_;
  int cpus_per_node_;
  HomeMap home_map_;
  Directory directory_;
  std::vector<std::unique_ptr<L1>> l1s_;
  std::vector<std::unique_ptr<L2>> l2s_;
  std::vector<NodeResources> res_;
  std::vector<stats::StreamRole> roles_;
  std::vector<std::vector<sim::Cycles>> inflight_;  // per-node completion times
  bool self_invalidation_ = false;
  stats::MemStats stats_;

  /// Outstanding-fill budget per shared L2 available to non-blocking
  /// prefetches (a typical MSHR file, minus slots reserved for the two
  /// processors' demand misses).
  static constexpr int kPrefetchMshrs = 8;
};

}  // namespace ssomp::mem
