#include "mem/params.hpp"

#include <cstdio>

namespace ssomp::mem {

void print_params(const MemParams& p) {
  std::printf("Simulated system parameters (paper Table 1):\n");
  std::printf("  CPU: MIPSY-like in-order CMP model, %.1f GHz\n", p.clock_ghz);
  std::printf("  L1: %u KB, %u-way, hit %llu cycle(s)\n",
              p.l1_size_bytes / 1024, p.l1_assoc,
              static_cast<unsigned long long>(p.l1_hit_cycles));
  std::printf("  L2 (shared): %u KB, %u-way, hit %llu cycles\n",
              p.l2_size_bytes / 1024, p.l2_assoc,
              static_cast<unsigned long long>(p.l2_hit_cycles));
  std::printf(
      "  BusTime %.0fns  PILocalDC %.0fns  NILocalDC %.0fns  NIRemoteDC "
      "%.0fns  Net %.0fns  Mem %.0fns\n",
      p.bus_ns, p.pi_local_dc_ns, p.ni_local_dc_ns, p.ni_remote_dc_ns,
      p.net_ns, p.mem_ns);
  std::printf("  min local miss %llu cycles (170ns), min remote miss %llu "
              "cycles (290ns)\n\n",
              static_cast<unsigned long long>(p.min_local_miss_cycles()),
              static_cast<unsigned long long>(p.min_remote_miss_cycles()));
}

}  // namespace ssomp::mem
