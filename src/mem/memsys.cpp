#include "mem/memsys.hpp"

#include <algorithm>

namespace ssomp::mem {

using stats::ReqClass;
using stats::ReqKind;
using stats::StreamRole;

MemorySystem::MemorySystem(const MemParams& params, int nodes,
                           int cpus_per_node)
    : params_(params),
      lat_(params),
      nodes_(nodes),
      cpus_per_node_(cpus_per_node),
      home_map_(nodes, params.page_bytes),
      directory_(nodes),
      res_(static_cast<std::size_t>(nodes)),
      roles_(static_cast<std::size_t>(nodes) * cpus_per_node,
             StreamRole::kNone),
      inflight_(static_cast<std::size_t>(nodes)) {
  SSOMP_CHECK(nodes >= 1 && cpus_per_node >= 1);
  for (int c = 0; c < nodes * cpus_per_node; ++c) {
    l1s_.push_back(std::make_unique<L1>(params.l1_size_bytes, params.l1_assoc,
                                        params.line_bytes));
  }
  for (int n = 0; n < nodes; ++n) {
    l2s_.push_back(std::make_unique<L2>(params.l2_size_bytes, params.l2_assoc,
                                        params.line_bytes));
  }
}

void MemorySystem::set_role(sim::CpuId cpu, StreamRole role) {
  SSOMP_CHECK(cpu >= 0 &&
              static_cast<std::size_t>(cpu) < roles_.size());
  roles_[static_cast<std::size_t>(cpu)] = role;
}

StreamRole MemorySystem::role(sim::CpuId cpu) const {
  SSOMP_DCHECK(cpu >= 0 &&
               static_cast<std::size_t>(cpu) < roles_.size());
  return roles_[static_cast<std::size_t>(cpu)];
}

void MemorySystem::record_ref(L2Meta& meta, StreamRole role) {
  if (role == StreamRole::kR) meta.ref_r = true;
  if (role == StreamRole::kA) meta.ref_a = true;
}

sim::Cycles MemorySystem::absorb_pending(L2::Line& line, StreamRole role,
                                         sim::Cycles now) {
  if (line.meta.pending_until <= now) return 0;
  // Merge with the outstanding fill at the shared L2.
  ++stats_.merges;
  if (role != StreamRole::kNone && role != line.meta.fetcher &&
      line.meta.fetcher != StreamRole::kNone) {
    line.meta.merged_late = true;
  }
  return line.meta.pending_until - now;
}

void MemorySystem::finalize_line(const L2Meta& meta) {
  if (!meta.app || meta.fetcher == StreamRole::kNone) return;
  ReqClass cls;
  if (meta.fetcher == StreamRole::kA) {
    if (meta.merged_late) {
      cls = ReqClass::kALate;
    } else if (meta.ref_r) {
      cls = ReqClass::kATimely;
    } else {
      cls = ReqClass::kAOnly;
    }
  } else {
    if (meta.merged_late) {
      cls = ReqClass::kRLate;
    } else if (meta.ref_a) {
      cls = ReqClass::kRTimely;
    } else {
      cls = ReqClass::kROnly;
    }
  }
  stats_.req_class.add(meta.fill_kind, cls);
}

void MemorySystem::invalidate_at_node(sim::NodeId node, sim::Addr line_addr) {
  const L2::Evicted gone = l2(node).invalidate(line_addr);
  if (gone.valid) finalize_line(gone.meta);
  for (int c = 0; c < cpus_per_node_; ++c) {
    l1(node * cpus_per_node_ + c).invalidate(line_addr);
  }
}

void MemorySystem::handle_l2_eviction(sim::NodeId node,
                                      const L2::Evicted& victim,
                                      sim::Cycles now) {
  if (!victim.valid) return;
  finalize_line(victim.meta);
  // Inclusion: drop any L1 copies on this node.
  for (int c = 0; c < cpus_per_node_; ++c) {
    l1(node * cpus_per_node_ + c).invalidate(victim.line_addr);
  }
  DirEntry& e = directory_.entry(victim.line_addr);
  const sim::NodeId h = home_map_.home_of(victim.line_addr);
  if (victim.state == LineState::kModified) {
    SSOMP_DCHECK(e.state == DirState::kModified && e.owner == node);
    // Victim writeback: buffered, contributes occupancy but no latency to
    // the access that triggered the eviction.
    res_[h].memctl.occupy(now, lat_.mem);
    e.state = DirState::kUncached;
    e.sharers = 0;
    e.owner = sim::kInvalidNode;
    ++stats_.writebacks;
  } else if (victim.state == LineState::kExclusive) {
    // Clean exclusive: release ownership, nothing to write back.
    SSOMP_DCHECK(e.state == DirState::kModified && e.owner == node);
    e.state = DirState::kUncached;
    e.sharers = 0;
    e.owner = sim::kInvalidNode;
  } else {
    Directory::remove_sharer(e, node);
    if (e.sharers == 0) {
      e.state = DirState::kUncached;
      e.owner = sim::kInvalidNode;
    }
  }
}

sim::Cycles MemorySystem::invalidate_sharers(sim::NodeId h, DirEntry& e,
                                             sim::NodeId except,
                                             sim::Addr line_addr,
                                             sim::Cycles t_home) {
  sim::Cycles acks_done = t_home;
  for (sim::NodeId s = 0; s < nodes_; ++s) {
    if (s == except || !Directory::is_sharer(e, s)) continue;
    PathTimer inv(t_home);
    if (s != h) {
      inv.serve(res_[h].ni_out, lat_.ni_remote_dc);
      inv.wire(lat_.net);
      inv.serve(res_[s].ni_in, lat_.ni_remote_dc);
    }
    inv.serve(res_[s].bus, lat_.bus);
    invalidate_at_node(s, line_addr);
    Directory::remove_sharer(e, s);
    if (s != h) inv.wire(lat_.net);  // ack back to home
    acks_done = std::max(acks_done, inv.at());
    ++stats_.invalidations;
  }
  return acks_done;
}

sim::Cycles MemorySystem::fill_line(sim::CpuId cpu, sim::Addr line_addr,
                                    ReqKind kind, sim::Cycles now) {
  const sim::NodeId n = node_of(cpu);
  const sim::NodeId h = home_map_.home_of(line_addr);
  const StreamRole who = role(cpu);
  DirEntry& e = directory_.entry(line_addr);
  const bool local = (h == n);

  PathTimer t(now);
  t.serve(res_[n].bus, lat_.bus);
  if (!local) {
    t.serve(res_[n].ni_out, lat_.ni_remote_dc);
    t.wire(lat_.net);
  }
  t.serve(res_[h].dirctl, lat_.ni_local_dc);
  const sim::Cycles t_home = t.at();

  bool fill_exclusive = false;  // MESI E-grant for this fill
  if (e.state == DirState::kModified) {
    // Owned by a third-party L2 (owner == n would have been an L2 hit);
    // with the E-state extension the owner's copy may be clean.
    const sim::NodeId o = e.owner;
    SSOMP_CHECK(o != n);
    // Forward request home -> owner.
    t.serve(res_[h].ni_out, lat_.ni_remote_dc);
    if (o != h) {
      t.wire(lat_.net);
      t.serve(res_[o].ni_in, lat_.ni_remote_dc);
    }
    t.serve(res_[o].bus, lat_.bus);
    t.wire(params_.l2_hit_cycles);  // owner L2 lookup/transfer
    // Owner -> requester data transfer.
    if (o != n) {
      t.serve(res_[o].ni_out, lat_.ni_remote_dc);
      t.wire(lat_.net);
      t.serve(res_[n].ni_in, lat_.ni_remote_dc);
    }
    t.serve(res_[n].bus, lat_.bus);
    // Sharing writeback / ownership transfer at the home memory (clean
    // exclusive owners have nothing to write back).
    L2::Line* owner_line = l2(o).find(line_addr);
    if (owner_line == nullptr || owner_line->state == LineState::kModified) {
      res_[h].memctl.occupy(t_home, lat_.mem);
    }
    if (kind == ReqKind::kRead) {
      // Owner downgrades to Shared.
      if (L2::Line* ol = l2(o).find(line_addr)) {
        ol->state = LineState::kShared;
      }
      for (int c = 0; c < cpus_per_node_; ++c) {
        if (auto* l = l1(o * cpus_per_node_ + c).find(line_addr)) {
          l->state = LineState::kShared;
        }
      }
      e.state = DirState::kShared;
      e.owner = sim::kInvalidNode;
      Directory::add_sharer(e, n);
      Directory::add_sharer(e, o);
    } else {
      // Exclusive: owner invalidates its copy, ownership moves to n.
      invalidate_at_node(o, line_addr);
      e.sharers = 0;
      e.owner = n;
      Directory::add_sharer(e, n);
      e.state = DirState::kModified;
    }
    ++stats_.fills_dirty;
  } else {
    sim::Cycles ready = t_home;
    if (kind == ReqKind::kReadEx && e.state == DirState::kShared) {
      ready = invalidate_sharers(h, e, n, line_addr, t_home);
    }
    // Memory fetch proceeds in parallel with invalidations.
    PathTimer data(t_home);
    data.serve(res_[h].memctl, lat_.mem);
    t.at_least(std::max(ready, data.at()));
    if (!local) {
      t.wire(lat_.net);
      t.serve(res_[n].ni_in, lat_.ni_remote_dc);
    }
    t.serve(res_[n].bus, lat_.bus);
    if (kind == ReqKind::kRead) {
      if (params_.exclusive_state && e.state == DirState::kUncached) {
        // MESI E: sole reader takes clean-exclusive ownership.
        fill_exclusive = true;
        e.state = DirState::kModified;  // directory tracks E as owned
        e.sharers = 0;
        Directory::add_sharer(e, n);
        e.owner = n;
      } else {
        e.state = DirState::kShared;
        Directory::add_sharer(e, n);
        e.owner = sim::kInvalidNode;
      }
    } else {
      e.state = DirState::kModified;
      e.sharers = 0;
      Directory::add_sharer(e, n);
      e.owner = n;
    }
    if (local) {
      ++stats_.fills_local;
    } else {
      ++stats_.fills_remote_clean;
    }
  }

  // Install in the node's L2.
  L2::Evicted victim;
  const LineState fill_state =
      kind != ReqKind::kRead ? LineState::kModified
      : fill_exclusive       ? LineState::kExclusive
                             : LineState::kShared;
  L2::Line& line = l2(n).insert(line_addr, fill_state, victim);
  handle_l2_eviction(n, victim, now);
  line.meta.fetcher = who;
  line.meta.fill_kind = kind;
  line.meta.app = AddrSpace::is_app(line_addr);
  ++stats_.l2_fills;
  return t.at() - now;
}

sim::Cycles MemorySystem::upgrade_line(sim::CpuId cpu, L2::Line& line,
                                       sim::Cycles now) {
  const sim::NodeId n = node_of(cpu);
  const sim::Addr la = line.line_addr;
  const sim::NodeId h = home_map_.home_of(la);
  const StreamRole who = role(cpu);
  DirEntry& e = directory_.entry(la);
  SSOMP_DCHECK(e.state == DirState::kShared && Directory::is_sharer(e, n));
  const bool local = (h == n);

  PathTimer t(now);
  t.serve(res_[n].bus, lat_.bus);
  if (!local) {
    t.serve(res_[n].ni_out, lat_.ni_remote_dc);
    t.wire(lat_.net);
  }
  t.serve(res_[h].dirctl, lat_.ni_local_dc);
  const sim::Cycles acks = invalidate_sharers(h, e, n, la, t.at());
  t.at_least(acks);
  if (!local) {
    t.wire(lat_.net);
    t.serve(res_[n].ni_in, lat_.ni_remote_dc);
  }
  t.serve(res_[n].bus, lat_.bus);

  e.state = DirState::kModified;
  e.sharers = 0;
  Directory::add_sharer(e, n);
  e.owner = n;
  ++stats_.upgrades;

  // A new exclusive classification epoch starts: retire the read epoch.
  finalize_line(line.meta);
  line.meta = L2Meta{};
  line.meta.fetcher = who;
  line.meta.fill_kind = ReqKind::kReadEx;
  line.meta.app = AddrSpace::is_app(la);
  line.state = LineState::kModified;
  return t.at() - now;
}

void MemorySystem::fill_l1(sim::CpuId cpu, sim::Addr line_addr,
                           LineState state) {
  L1& c = l1(cpu);
  if (L1::Line* line = c.find(line_addr)) {
    line->state = state;
    c.touch(*line);
    return;
  }
  L1::Evicted victim;
  c.insert(line_addr, state, victim);
  // L1 victims are silent: the inclusive L2 retains the line (and a dirty
  // L1 line implies the L2 line is already Modified).
}

void MemorySystem::invalidate_sibling_l1(sim::CpuId cpu, sim::Addr line_addr) {
  const sim::NodeId n = node_of(cpu);
  for (int c = 0; c < cpus_per_node_; ++c) {
    const sim::CpuId other = n * cpus_per_node_ + c;
    if (other != cpu) l1(other).invalidate(line_addr);
  }
}

void MemorySystem::downgrade_sibling_l1(sim::CpuId cpu, sim::Addr line_addr) {
  const sim::NodeId n = node_of(cpu);
  for (int c = 0; c < cpus_per_node_; ++c) {
    const sim::CpuId other = n * cpus_per_node_ + c;
    if (other == cpu) continue;
    if (L1::Line* line = l1(other).find(line_addr)) {
      line->state = LineState::kShared;
    }
  }
}

sim::Cycles MemorySystem::load(sim::CpuId cpu, sim::Addr addr,
                               sim::Cycles now) {
  ++stats_.loads;
  const sim::NodeId n = node_of(cpu);
  L1& c1 = l1(cpu);
  const sim::Addr la = c1.line_of(addr);

  if (L1::Line* line = c1.find(la)) {
    c1.touch(*line);
    ++stats_.l1_hits;
    // L1 hits do not reach the L2, but the line's L2 epoch has already
    // recorded this stream's reference when the L1 was filled.
    return params_.l1_hit_cycles;
  }

  // Resolved once for the whole miss walk, not per protocol step.
  const StreamRole who = role(cpu);
  L2& c2 = l2(n);
  if (L2::Line* line = c2.find(la)) {
    const sim::Cycles wait = absorb_pending(*line, who, now);
    c2.touch(*line);
    record_ref(line->meta, who);
    ++stats_.l2_hits;
    // Intra-CMP coherence: sharing a dirty line downgrades the sibling's
    // exclusive L1 copy, so its next store must re-assert ownership.
    if (line->state == LineState::kModified) {
      downgrade_sibling_l1(cpu, la);
    }
    fill_l1(cpu, la, LineState::kShared);
    const sim::Cycles done =
        res_[n].l2port.serve(now + wait, params_.l2_hit_cycles);
    return done - now;
  }

  const sim::Cycles lat = fill_line(cpu, la, ReqKind::kRead, now);
  L2::Line* line = c2.find(la);
  SSOMP_CHECK(line != nullptr);
  // The fill is outstanding until now+lat; a request from the sibling
  // processor inside that window merges at the shared L2 (the A-Late /
  // R-Late mechanism of Figures 3 and 5).
  line->meta.pending_until = now + lat;
  record_ref(line->meta, who);
  fill_l1(cpu, la, LineState::kShared);
  return lat;
}

sim::Cycles MemorySystem::store(sim::CpuId cpu, sim::Addr addr,
                                sim::Cycles now) {
  ++stats_.stores;
  const sim::NodeId n = node_of(cpu);
  L1& c1 = l1(cpu);
  const sim::Addr la = c1.line_of(addr);

  if (L1::Line* line = c1.find(la);
      line != nullptr && line->state == LineState::kModified) {
    c1.touch(*line);
    ++stats_.l1_hits;
    return params_.l1_hit_cycles;
  }

  // Resolved once for the whole miss walk, not per protocol step.
  const StreamRole who = role(cpu);
  L2& c2 = l2(n);
  sim::Cycles lat = 0;
  L2::Line* line = c2.find(la);
  if (line != nullptr) {
    lat += absorb_pending(*line, who, now);
    c2.touch(*line);
    if (line->state == LineState::kModified) {
      record_ref(line->meta, who);
      ++stats_.l2_hits;
      lat = res_[n].l2port.serve(now + lat, params_.l2_hit_cycles) - now;
    } else if (line->state == LineState::kExclusive) {
      // MESI E: first store by the clean-exclusive owner upgrades
      // silently — no directory round-trip (the point of the extension).
      line->state = LineState::kModified;
      record_ref(line->meta, who);
      ++stats_.l2_hits;
      ++stats_.silent_upgrades;
      lat = res_[n].l2port.serve(now + lat, params_.l2_hit_cycles) - now;
    } else {
      // S -> M upgrade through the directory.
      lat += upgrade_line(cpu, *line, now + lat);
      line->meta.pending_until = now + lat;
      record_ref(line->meta, who);
    }
  } else {
    lat += fill_line(cpu, la, ReqKind::kReadEx, now);
    line = c2.find(la);
    SSOMP_CHECK(line != nullptr);
    line->meta.pending_until = now + lat;
    record_ref(line->meta, who);
  }
  invalidate_sibling_l1(cpu, la);
  fill_l1(cpu, la, LineState::kModified);
  return std::max<sim::Cycles>(lat, 1);
}

bool MemorySystem::widely_shared(sim::Addr line_addr, sim::NodeId self) {
  const DirEntry* e = directory_.find(line_addr);
  if (e == nullptr || e->state != DirState::kShared) return false;
  const int others =
      Directory::sharer_count(*e) - (Directory::is_sharer(*e, self) ? 1 : 0);
  return others >= 3;
}

void MemorySystem::send_self_invalidation_hints(sim::Addr line_addr,
                                                sim::NodeId self,
                                                sim::Cycles now) {
  DirEntry& e = directory_.entry(line_addr);
  SSOMP_DCHECK(e.state == DirState::kShared);
  const sim::NodeId h = home_map_.home_of(line_addr);
  for (sim::NodeId s = 0; s < nodes_; ++s) {
    if (s == self || !Directory::is_sharer(e, s)) continue;
    // One-way hint message; the sharer drops its copy on receipt. Nobody
    // waits for acknowledgements — that is the optimization.
    PathTimer hint(now);
    if (s != h) {
      hint.serve(res_[h].ni_out, lat_.ni_remote_dc);
      hint.wire(lat_.net);
    }
    res_[s].bus.occupy(hint.at(), lat_.bus);
    invalidate_at_node(s, line_addr);
    Directory::remove_sharer(e, s);
    ++stats_.self_invalidations;
  }
  if (e.sharers == 0) {
    e.state = DirState::kUncached;
    e.owner = sim::kInvalidNode;
  }
}

int MemorySystem::pending_prefetches(sim::NodeId node, sim::Cycles now) {
  auto& v = inflight_[static_cast<std::size_t>(node)];
  std::erase_if(v, [now](sim::Cycles done) { return done <= now; });
  return static_cast<int>(v.size());
}

bool MemorySystem::prefetch(sim::CpuId cpu, sim::Addr addr, bool exclusive,
                            sim::Cycles now) {
  const sim::NodeId n = node_of(cpu);
  L2& c2 = l2(n);
  const sim::Addr la = c2.line_of(addr);

  if (L2::Line* line = c2.find(la)) {
    if (!exclusive || line->state == LineState::kModified ||
        line->state == LineState::kExclusive) {
      ++stats_.prefetches;
      return true;  // already satisfied (E upgrades silently) or in flight
    }
    if (line->meta.pending_until > now) {
      ++stats_.prefetches;
      return true;  // don't stack transactions on a pending line
    }
    if (pending_prefetches(n, now) >= kPrefetchMshrs) return false;
    if (exclusive && widely_shared(la, n)) {
      if (!self_invalidation_) return false;
      send_self_invalidation_hints(la, n, now);
    }
    // Eager non-blocking upgrade.
    const sim::Cycles lat = upgrade_line(cpu, *line, now);
    line->meta.pending_until = now + lat;
    inflight_[static_cast<std::size_t>(n)].push_back(now + lat);
    ++stats_.prefetches;
    return true;
  }

  if (pending_prefetches(n, now) >= kPrefetchMshrs) return false;
  if (exclusive && widely_shared(la, n)) {
    if (!self_invalidation_) return false;
    send_self_invalidation_hints(la, n, now);
  }
  const sim::Cycles lat =
      fill_line(cpu, la, exclusive ? ReqKind::kReadEx : ReqKind::kRead, now);
  L2::Line* line = c2.find(la);
  SSOMP_CHECK(line != nullptr);
  line->meta.pending_until = now + lat;
  inflight_[static_cast<std::size_t>(n)].push_back(now + lat);
  ++stats_.prefetches;
  return true;
}

void MemorySystem::finalize_classification() {
  for (auto& c2 : l2s_) {
    c2->for_each([this](L2::Line& line) {
      finalize_line(line.meta);
      // Reset so repeated finalization does not double-count.
      line.meta.fetcher = StreamRole::kNone;
    });
  }
}

bool MemorySystem::check_invariants() const {
  if (!directory_.check_invariants()) return false;
  for (int node = 0; node < nodes_; ++node) {
    const L2& c2 = *l2s_[node];
    // L1 inclusion: every valid L1 line exists in the node's L2.
    for (int c = 0; c < cpus_per_node_; ++c) {
      const L1& c1 = *l1s_[node * cpus_per_node_ + c];
      bool ok = true;
      c1.for_each([&](const L1::Line& line) {
        const L2::Line* l2line = c2.find(line.line_addr);
        if (l2line == nullptr) ok = false;
        // A dirty L1 line requires an exclusive L2 line.
        if (line.state == LineState::kModified &&
            (l2line == nullptr || l2line->state != LineState::kModified)) {
          ok = false;
        }
      });
      if (!ok) return false;
    }
    // L2 / directory consistency.
    bool ok = true;
    c2.for_each([&](const L2::Line& line) {
      const DirEntry* e = directory_.find(line.line_addr);
      if (e == nullptr) {
        ok = false;
        return;
      }
      if (!Directory::is_sharer(*e, node)) ok = false;
      if ((line.state == LineState::kModified ||
           line.state == LineState::kExclusive) &&
          (e->state != DirState::kModified || e->owner != node)) {
        ok = false;
      }
      if (line.state == LineState::kShared &&
          e->state == DirState::kModified) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  return true;
}

std::vector<MemorySystem::ResourceReport> MemorySystem::resource_report()
    const {
  std::vector<ResourceReport> out;
  for (int n = 0; n < nodes_; ++n) {
    const NodeResources& r = res_[static_cast<std::size_t>(n)];
    const auto add = [&](const char* kind, const Resource& res) {
      out.push_back(ResourceReport{
          "n" + std::to_string(n) + "." + kind, res.requests(),
          res.busy_total(), res.queue_delay_total()});
    };
    add("bus", r.bus);
    add("ni_in", r.ni_in);
    add("ni_out", r.ni_out);
    add("dirctl", r.dirctl);
    add("memctl", r.memctl);
    add("l2port", r.l2port);
  }
  return out;
}

sim::Cycles MemorySystem::total_queue_delay() const {
  sim::Cycles total = 0;
  for (const NodeResources& r : res_) {
    total += r.bus.queue_delay_total() + r.ni_in.queue_delay_total() +
             r.ni_out.queue_delay_total() + r.dirctl.queue_delay_total() +
             r.memctl.queue_delay_total() + r.l2port.queue_delay_total();
  }
  return total;
}

}  // namespace ssomp::mem
