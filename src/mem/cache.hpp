// Metadata-only set-associative cache with true-LRU replacement.
//
// The simulator tracks cache-line *state*, not data: workload values live
// once in host memory, so the A-stream's skipped stores can never corrupt
// the R-stream, while hit/miss behaviour and coherence traffic are fully
// modeled. The per-line `Meta` payload carries protocol and classification
// bookkeeping (who fetched the line, who referenced it).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace ssomp::mem {

enum class LineState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,  // clean, sole owner (MESI extension; directory-side it is
               // tracked as Modified-with-owner and forwards like dirty)
  kModified,
};

template <typename Meta>
class SetAssocCache {
 public:
  struct Line {
    sim::Addr line_addr = 0;  // address of the first byte of the line
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;  // larger = more recently used
    Meta meta{};

    [[nodiscard]] bool valid() const { return state != LineState::kInvalid; }
  };

  struct Evicted {
    bool valid = false;
    sim::Addr line_addr = 0;
    LineState state = LineState::kInvalid;
    Meta meta{};
  };

  SetAssocCache(std::uint32_t size_bytes, std::uint32_t assoc,
                std::uint32_t line_bytes)
      : line_bytes_(line_bytes), assoc_(assoc) {
    SSOMP_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0);
    SSOMP_CHECK(assoc > 0);
    SSOMP_CHECK(size_bytes % (assoc * line_bytes) == 0);
    sets_ = size_bytes / (assoc * line_bytes);
    SSOMP_CHECK((sets_ & (sets_ - 1)) == 0);
    while ((std::uint32_t{1} << line_shift_) < line_bytes_) ++line_shift_;
    lines_.resize(static_cast<std::size_t>(sets_) * assoc_);
  }

  [[nodiscard]] sim::Addr line_of(sim::Addr addr) const {
    return addr & ~static_cast<sim::Addr>(line_bytes_ - 1);
  }

  /// Looks up a line; returns nullptr on miss. Does not update LRU.
  [[nodiscard]] Line* find(sim::Addr addr) {
    const sim::Addr la = line_of(addr);
    Line* set = set_of(la);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      if (set[w].valid() && set[w].line_addr == la) return &set[w];
    }
    return nullptr;
  }

  [[nodiscard]] const Line* find(sim::Addr addr) const {
    return const_cast<SetAssocCache*>(this)->find(addr);
  }

  /// Marks a line most-recently-used.
  void touch(Line& line) { line.lru = ++lru_clock_; }

  /// Allocates a line for `addr`, evicting the LRU way if the set is full.
  /// The victim (if any) is reported through `evicted` so the caller can
  /// run writeback/invalidation protocol actions. The returned line is
  /// valid, MRU, with default-constructed Meta.
  Line& insert(sim::Addr addr, LineState state, Evicted& evicted) {
    const sim::Addr la = line_of(addr);
    SSOMP_DCHECK(find(la) == nullptr);
    Line* set = set_of(la);
    Line* victim = &set[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      if (!set[w].valid()) {
        victim = &set[w];
        break;
      }
      if (set[w].lru < victim->lru) victim = &set[w];
    }
    evicted = Evicted{};
    if (victim->valid()) {
      evicted.valid = true;
      evicted.line_addr = victim->line_addr;
      evicted.state = victim->state;
      evicted.meta = victim->meta;
    }
    victim->line_addr = la;
    victim->state = state;
    victim->meta = Meta{};
    touch(*victim);
    return *victim;
  }

  /// Invalidates the line containing `addr` if present; returns its prior
  /// contents for protocol bookkeeping.
  Evicted invalidate(sim::Addr addr) {
    Evicted out;
    if (Line* l = find(addr)) {
      out.valid = true;
      out.line_addr = l->line_addr;
      out.state = l->state;
      out.meta = l->meta;
      l->state = LineState::kInvalid;
    }
    return out;
  }

  /// Applies `fn` to every valid line (used to finalize classification at
  /// the end of a run and in invariant-checking tests). A template, not a
  /// std::function taker: the per-line indirect call and the per-call
  /// closure allocation both disappear.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Line& l : lines_) {
      if (l.valid()) fn(l);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Line& l : lines_) {
      if (l.valid()) fn(l);
    }
  }

  [[nodiscard]] std::uint32_t sets() const { return sets_; }
  [[nodiscard]] std::uint32_t assoc() const { return assoc_; }
  [[nodiscard]] std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  [[nodiscard]] Line* set_of(sim::Addr line_addr) {
    // Shift, not divide: this index computation is on every cache probe.
    const std::size_t index = (line_addr >> line_shift_) & (sets_ - 1);
    return &lines_[index * assoc_];
  }

  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint32_t sets_ = 0;
  int line_shift_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;
};

}  // namespace ssomp::mem
