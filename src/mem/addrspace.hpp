// Simulated shared virtual address space.
//
// Per §3.1 of the paper, slipstream support requires the shared virtual
// space to be contiguous (or at least not interleaved with private space)
// so that shared accesses can be delineated. We follow the UNIX-process
// model the paper's implementation chose: one contiguous shared arena for
// application data and a second contiguous arena for the runtime's own
// shared metadata (barrier flags, locks, scheduling counters). The second
// arena lets the statistics layer report application shared-data requests
// (Figures 3 and 5) without runtime-metadata noise, while runtime accesses
// still pay full coherence costs.
#pragma once

#include <cstdint>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace ssomp::mem {

class AddrSpace {
 public:
  static constexpr sim::Addr kAppBase = 0x1000'0000ULL;
  static constexpr sim::Addr kRuntimeBase = 0x8000'0000ULL;
  static constexpr sim::Addr kArenaSize = 0x4000'0000ULL;  // 1 GiB each

  explicit AddrSpace(std::uint32_t alignment = 64)
      : alignment_(alignment),
        app_next_(kAppBase),
        runtime_next_(kRuntimeBase) {
    SSOMP_CHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
  }

  /// Allocates application shared data (cache-line aligned).
  sim::Addr alloc_app(std::uint64_t bytes) {
    return bump(app_next_, bytes, kAppBase);
  }

  /// Allocates runtime-internal shared metadata. Each allocation gets its
  /// own page so distinct runtime structures (barrier words, locks,
  /// scheduling counters, mailboxes) have independent, interleaved home
  /// nodes instead of piling onto one directory controller.
  sim::Addr alloc_runtime(std::uint64_t bytes) {
    runtime_next_ = (runtime_next_ + kPageSize - 1) &
                    ~static_cast<sim::Addr>(kPageSize - 1);
    return bump(runtime_next_, bytes, kRuntimeBase);
  }

  static constexpr sim::Addr kPageSize = 4096;

  [[nodiscard]] static bool is_app(sim::Addr a) {
    return a >= kAppBase && a < kAppBase + kArenaSize;
  }
  [[nodiscard]] static bool is_runtime(sim::Addr a) {
    return a >= kRuntimeBase && a < kRuntimeBase + kArenaSize;
  }
  [[nodiscard]] static bool is_shared(sim::Addr a) {
    return is_app(a) || is_runtime(a);
  }

  [[nodiscard]] std::uint64_t app_bytes_allocated() const {
    return app_next_ - kAppBase;
  }
  [[nodiscard]] std::uint64_t runtime_bytes_allocated() const {
    return runtime_next_ - kRuntimeBase;
  }

 private:
  sim::Addr bump(sim::Addr& next, std::uint64_t bytes, sim::Addr base) {
    SSOMP_CHECK(bytes > 0);
    next = (next + alignment_ - 1) & ~static_cast<sim::Addr>(alignment_ - 1);
    const sim::Addr out = next;
    next += bytes;
    SSOMP_CHECK(next <= base + kArenaSize);
    return out;
  }

  std::uint32_t alignment_;
  sim::Addr app_next_;
  sim::Addr runtime_next_;
};

}  // namespace ssomp::mem
