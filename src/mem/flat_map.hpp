// Open-addressing hash map for the coherence fast path.
//
// The directory and home map used to probe std::unordered_map on every
// miss-path coherence action — a pointer-chasing, allocation-per-node
// structure paid millions of times per run. FlatMap is a linear-probing
// table over one contiguous slot array: probes touch a single cache line
// in the common case and inserts allocate only on growth (power-of-two
// capacity, rehash at 70% load).
//
// Deliberately minimal for the simulator's needs:
//   * keys are 64-bit integers; one key value (kEmptyKey, all ones) is
//     reserved as the empty-slot marker — line addresses and page numbers
//     never take it;
//   * no erase (the directory and home map only grow);
//   * references returned by find()/get_or_insert() are invalidated by a
//     rehash, i.e. by any later insert — callers must not hold an entry
//     reference across an insert of a *different* key (the memory system's
//     pattern: resolve the entry first, mutate, then move on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/check.hpp"

namespace ssomp::mem {

template <typename V>
class FlatMap {
 public:
  using Key = std::uint64_t;
  static constexpr Key kEmptyKey = ~Key{0};

  FlatMap() { rehash(kMinCapacity); }

  /// Number of stored entries.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `n` entries without rehashing on the way.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 / 10 < n) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Returns the value for `key`, or nullptr when absent. Never grows.
  [[nodiscard]] const V* find(Key key) const {
    SSOMP_DCHECK(key != kEmptyKey);
    std::size_t i = index_of(key);
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] V* find(Key key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Returns the value for `key`, default-constructing it when absent.
  /// May grow the table (invalidating other references).
  [[nodiscard]] V& get_or_insert(Key key) {
    SSOMP_DCHECK(key != kEmptyKey);
    std::size_t i = index_of(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmptyKey) break;
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.size() * 2);
      i = index_of(key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
    }
    Slot& s = slots_[i];
    s.key = key;
    s.value = V{};
    ++size_;
    return s.value;
  }

  /// Applies `fn(key, value)` to every entry (iteration order is the
  /// table's probe order — callers must not depend on it).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Key key = kEmptyKey;
    V value{};
  };

  static constexpr std::size_t kMinCapacity = 64;

  [[nodiscard]] std::size_t index_of(Key key) const {
    // Fibonacci multiplicative hash: line addresses and page numbers are
    // regular (strided), which raw masking would collide badly on.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_) &
           mask_;
  }

  void rehash(std::size_t capacity) {
    SSOMP_DCHECK((capacity & (capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    shift_ = 64 - bit_width(capacity);
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  [[nodiscard]] static int bit_width(std::size_t v) {
    int w = 0;
    while (v > 1) {
      v >>= 1;
      ++w;
    }
    return w;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  int shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace ssomp::mem
