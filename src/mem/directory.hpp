// Fully-mapped invalidate-based directory (paper §5: "System-wide coherence
// of the L2 caches is maintained by an invalidate-based fully-mapped
// directory protocol").
//
// One logical directory spans all home nodes; each cache line's entry lives
// at its home node (page-granular home assignment, see HomeMap). Entries
// track Uncached/Shared/Modified state, a sharer bit per node, and the
// owner node for modified lines.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace ssomp::mem {

enum class DirState : std::uint8_t { kUncached = 0, kShared, kModified };

struct DirEntry {
  DirState state = DirState::kUncached;
  std::uint64_t sharers = 0;  // bit per node (<= 64 nodes)
  sim::NodeId owner = sim::kInvalidNode;
};

class Directory {
 public:
  explicit Directory(int nodes) : nodes_(nodes) {
    SSOMP_CHECK(nodes >= 1 && nodes <= 64);
  }

  [[nodiscard]] DirEntry& entry(sim::Addr line_addr) {
    return entries_[line_addr];
  }

  [[nodiscard]] const DirEntry* find(sim::Addr line_addr) const {
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : &it->second;
  }

  static void add_sharer(DirEntry& e, sim::NodeId n) {
    e.sharers |= std::uint64_t{1} << n;
  }
  static void remove_sharer(DirEntry& e, sim::NodeId n) {
    e.sharers &= ~(std::uint64_t{1} << n);
  }
  [[nodiscard]] static bool is_sharer(const DirEntry& e, sim::NodeId n) {
    return (e.sharers >> n) & 1;
  }
  [[nodiscard]] static int sharer_count(const DirEntry& e) {
    return __builtin_popcountll(e.sharers);
  }

  [[nodiscard]] int nodes() const { return nodes_; }

  /// Protocol invariant check, used by tests after every simulated run:
  /// Modified lines have exactly one sharer equal to the owner; Shared
  /// lines have >= 1 sharer and no owner; Uncached lines have none.
  [[nodiscard]] bool check_invariants() const {
    for (const auto& [addr, e] : entries_) {
      switch (e.state) {
        case DirState::kUncached:
          if (e.sharers != 0 || e.owner != sim::kInvalidNode) return false;
          break;
        case DirState::kShared:
          if (e.sharers == 0 || e.owner != sim::kInvalidNode) return false;
          break;
        case DirState::kModified:
          if (e.owner == sim::kInvalidNode) return false;
          if (e.sharers != (std::uint64_t{1} << e.owner)) return false;
          break;
      }
    }
    return true;
  }

  [[nodiscard]] const std::unordered_map<sim::Addr, DirEntry>& entries()
      const {
    return entries_;
  }

 private:
  int nodes_;
  std::unordered_map<sim::Addr, DirEntry> entries_;
};

/// Page-to-home-node assignment. Default is round-robin by page number;
/// ranges can be pinned explicitly, which the workloads use for block
/// distribution of their main arrays (the common CC-NUMA placement the
/// paper's benchmarks rely on).
class HomeMap {
 public:
  HomeMap(int nodes, std::uint32_t page_bytes)
      : nodes_(nodes), page_bytes_(page_bytes) {
    SSOMP_CHECK(nodes >= 1);
    SSOMP_CHECK(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0);
  }

  [[nodiscard]] sim::NodeId home_of(sim::Addr addr) const {
    const sim::Addr page = addr / page_bytes_;
    auto it = pinned_.find(page);
    if (it != pinned_.end()) return it->second;
    return static_cast<sim::NodeId>(page % nodes_);
  }

  /// Pins all pages overlapping [base, base+bytes) to `node`.
  void pin_range(sim::Addr base, std::uint64_t bytes, sim::NodeId node) {
    SSOMP_CHECK(node >= 0 && node < nodes_);
    const sim::Addr first = base / page_bytes_;
    const sim::Addr last = (base + bytes - 1) / page_bytes_;
    for (sim::Addr p = first; p <= last; ++p) pinned_[p] = node;
  }

  /// Distributes [base, base+bytes) across all nodes in contiguous blocks
  /// (block placement, page granular).
  void distribute_block(sim::Addr base, std::uint64_t bytes) {
    const std::uint64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
    const std::uint64_t per = (pages + nodes_ - 1) / nodes_;
    for (std::uint64_t i = 0; i < pages; ++i) {
      const auto node = static_cast<sim::NodeId>(
          std::min<std::uint64_t>(i / std::max<std::uint64_t>(per, 1),
                                  static_cast<std::uint64_t>(nodes_ - 1)));
      pinned_[base / page_bytes_ + i] = node;
    }
  }

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] std::uint32_t page_bytes() const { return page_bytes_; }

 private:
  int nodes_;
  std::uint32_t page_bytes_;
  std::unordered_map<sim::Addr, sim::NodeId> pinned_;
};

}  // namespace ssomp::mem
