// Fully-mapped invalidate-based directory (paper §5: "System-wide coherence
// of the L2 caches is maintained by an invalidate-based fully-mapped
// directory protocol").
//
// One logical directory spans all home nodes; each cache line's entry lives
// at its home node (page-granular home assignment, see HomeMap). Entries
// track Uncached/Shared/Modified state, a sharer bit per node, and the
// owner node for modified lines.
//
// Entries live in an open-addressing FlatMap keyed by line address — the
// directory probe is on the miss walk of every coherence action, so it
// must be a single contiguous-table probe, not an unordered_map chase.
// entry() may grow the table: per FlatMap's contract, callers must not
// hold a reference to one entry across an entry() call for a different
// line (the memory system resolves the entry once per transaction).
#pragma once

#include <algorithm>
#include <cstdint>

#include "mem/flat_map.hpp"
#include "sim/check.hpp"
#include "sim/types.hpp"

namespace ssomp::mem {

enum class DirState : std::uint8_t { kUncached = 0, kShared, kModified };

struct DirEntry {
  DirState state = DirState::kUncached;
  std::uint64_t sharers = 0;  // bit per node (<= 64 nodes)
  sim::NodeId owner = sim::kInvalidNode;
};

class Directory {
 public:
  explicit Directory(int nodes) : nodes_(nodes) {
    SSOMP_CHECK(nodes >= 1 && nodes <= 64);
  }

  [[nodiscard]] DirEntry& entry(sim::Addr line_addr) {
    return entries_.get_or_insert(line_addr);
  }

  [[nodiscard]] const DirEntry* find(sim::Addr line_addr) const {
    return entries_.find(line_addr);
  }

  static void add_sharer(DirEntry& e, sim::NodeId n) {
    e.sharers |= std::uint64_t{1} << n;
  }
  static void remove_sharer(DirEntry& e, sim::NodeId n) {
    e.sharers &= ~(std::uint64_t{1} << n);
  }
  [[nodiscard]] static bool is_sharer(const DirEntry& e, sim::NodeId n) {
    return (e.sharers >> n) & 1;
  }
  [[nodiscard]] static int sharer_count(const DirEntry& e) {
    return __builtin_popcountll(e.sharers);
  }

  [[nodiscard]] int nodes() const { return nodes_; }

  /// Number of lines the directory has ever tracked.
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Applies `fn(line_addr, entry)` to every tracked line.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    entries_.for_each(fn);
  }

  /// Protocol invariant check, used by tests after every simulated run:
  /// Modified lines have exactly one sharer equal to the owner; Shared
  /// lines have >= 1 sharer and no owner; Uncached lines have none.
  [[nodiscard]] bool check_invariants() const {
    bool ok = true;
    entries_.for_each([&ok](sim::Addr, const DirEntry& e) {
      switch (e.state) {
        case DirState::kUncached:
          if (e.sharers != 0 || e.owner != sim::kInvalidNode) ok = false;
          break;
        case DirState::kShared:
          if (e.sharers == 0 || e.owner != sim::kInvalidNode) ok = false;
          break;
        case DirState::kModified:
          if (e.owner == sim::kInvalidNode) ok = false;
          else if (e.sharers != (std::uint64_t{1} << e.owner)) ok = false;
          break;
      }
    });
    return ok;
  }

 private:
  int nodes_;
  FlatMap<DirEntry> entries_;
};

/// Page-to-home-node assignment. Default is round-robin by page number;
/// ranges can be pinned explicitly, which the workloads use for block
/// distribution of their main arrays (the common CC-NUMA placement the
/// paper's benchmarks rely on). home_of() is on every fill path, so the
/// page split is a shift (page sizes are powers of two) and the pin
/// lookup a flat-table probe.
class HomeMap {
 public:
  HomeMap(int nodes, std::uint32_t page_bytes)
      : nodes_(nodes), page_bytes_(page_bytes) {
    SSOMP_CHECK(nodes >= 1);
    SSOMP_CHECK(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0);
    while ((std::uint32_t{1} << page_shift_) < page_bytes) ++page_shift_;
  }

  [[nodiscard]] sim::NodeId home_of(sim::Addr addr) const {
    const sim::Addr page = addr >> page_shift_;
    if (const sim::NodeId* pinned = pinned_.find(page)) return *pinned;
    return static_cast<sim::NodeId>(page % nodes_);
  }

  /// Pins all pages overlapping [base, base+bytes) to `node`.
  void pin_range(sim::Addr base, std::uint64_t bytes, sim::NodeId node) {
    SSOMP_CHECK(node >= 0 && node < nodes_);
    const sim::Addr first = base >> page_shift_;
    const sim::Addr last = (base + bytes - 1) >> page_shift_;
    for (sim::Addr p = first; p <= last; ++p) {
      pinned_.get_or_insert(p) = node;
    }
  }

  /// Distributes [base, base+bytes) across all nodes in contiguous blocks
  /// (block placement, page granular).
  void distribute_block(sim::Addr base, std::uint64_t bytes) {
    const std::uint64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
    const std::uint64_t per = (pages + nodes_ - 1) / nodes_;
    for (std::uint64_t i = 0; i < pages; ++i) {
      const auto node = static_cast<sim::NodeId>(
          std::min<std::uint64_t>(i / std::max<std::uint64_t>(per, 1),
                                  static_cast<std::uint64_t>(nodes_ - 1)));
      pinned_.get_or_insert((base >> page_shift_) + i) = node;
    }
  }

  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] std::uint32_t page_bytes() const { return page_bytes_; }

 private:
  int nodes_;
  std::uint32_t page_bytes_;
  int page_shift_ = 0;
  FlatMap<sim::NodeId> pinned_;
};

}  // namespace ssomp::mem
