// Simulated machine parameters (paper Table 1).
//
// Latencies given in nanoseconds in the paper are converted to cycles at
// the 1.2 GHz clock. The two calibration points stated in the paper hold
// with these defaults: the minimum local L2 miss costs 170 ns and the
// minimum remote clean miss costs 290 ns (see MemorySystem and the
// mem/params_test which checks both).
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/types.hpp"

namespace ssomp::mem {

struct MemParams {
  // Processor clock.
  double clock_ghz = 1.2;

  // L1 caches (separate I/D in the paper; only D is simulated — the
  // instruction stream of these kernels fits trivially in 16 KB).
  std::uint32_t l1_size_bytes = 16 * 1024;
  std::uint32_t l1_assoc = 2;
  sim::Cycles l1_hit_cycles = 1;

  // Unified shared L2 per CMP.
  std::uint32_t l2_size_bytes = 1024 * 1024;
  std::uint32_t l2_assoc = 4;
  sim::Cycles l2_hit_cycles = 10;

  // Geometry.
  std::uint32_t line_bytes = 64;
  std::uint32_t page_bytes = 4096;

  // Memory-system latency parameters, in nanoseconds (SimOS names).
  double bus_ns = 30;             // BusTime
  double pi_local_dc_ns = 10;     // PILocalDCTime
  double ni_local_dc_ns = 60;     // NILocalDCTime
  double ni_remote_dc_ns = 10;    // NIRemoteDCTime
  double net_ns = 50;             // NetTime
  double mem_ns = 50;             // MemTime

  // Access cost of the intra-CMP hardware token semaphore register (§2.2:
  // "a shared register ... between the two processors in a CMP").
  sim::Cycles token_register_cycles = 3;

  // MESI Exclusive-state extension (off by default; the paper's protocol
  // is plain invalidate MSI): a read filling an uncached line is granted
  // clean-exclusive ownership, and the owner's first store upgrades
  // silently with no directory round-trip. See bench/ext_estate.
  bool exclusive_state = false;

  [[nodiscard]] sim::Cycles ns(double nanoseconds) const {
    return static_cast<sim::Cycles>(std::llround(nanoseconds * clock_ghz));
  }

  [[nodiscard]] sim::Cycles bus_cycles() const { return ns(bus_ns); }
  [[nodiscard]] sim::Cycles pi_local_dc_cycles() const {
    return ns(pi_local_dc_ns);
  }
  [[nodiscard]] sim::Cycles ni_local_dc_cycles() const {
    return ns(ni_local_dc_ns);
  }
  [[nodiscard]] sim::Cycles ni_remote_dc_cycles() const {
    return ns(ni_remote_dc_ns);
  }
  [[nodiscard]] sim::Cycles net_cycles() const { return ns(net_ns); }
  [[nodiscard]] sim::Cycles mem_cycles() const { return ns(mem_ns); }

  /// Minimum local L2-miss latency (no contention): 170 ns in the paper.
  [[nodiscard]] sim::Cycles min_local_miss_cycles() const {
    return bus_cycles() + ni_local_dc_cycles() + mem_cycles() + bus_cycles();
  }

  /// Minimum remote clean L2-miss latency (no contention): 290 ns.
  [[nodiscard]] sim::Cycles min_remote_miss_cycles() const {
    return bus_cycles() + ni_remote_dc_cycles() + net_cycles() +
           ni_local_dc_cycles() + mem_cycles() + net_cycles() +
           ni_remote_dc_cycles() + bus_cycles();
  }

  /// Table-1 defaults scaled down for the reduced NAS problem classes used
  /// by the benchmark harness: cache capacities shrink with the working
  /// sets so that the communication-to-capacity ratio of the paper's
  /// operating point is preserved (documented in EXPERIMENTS.md). All
  /// latency parameters are unchanged.
  [[nodiscard]] static MemParams scaled_for_benchmarks() {
    MemParams p;
    p.l1_size_bytes = 4 * 1024;
    p.l2_size_bytes = 128 * 1024;
    return p;
  }
};

/// Prints the paper's Table 1 for `p`, including the two latency
/// calibration points (170 ns minimum local miss, 290 ns remote).
void print_params(const MemParams& p);

}  // namespace ssomp::mem
