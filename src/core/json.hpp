// JSON serialization of experiment configurations and results, for
// scripting around the CLI runner (tools/ssomp_run) without parsing
// tables. Hand-rolled writer — no external dependencies.
#pragma once

#include <string>

#include "core/driver.hpp"
#include "core/experiment.hpp"

namespace ssomp::core {

/// Serializes a config/result pair as a single JSON object with
/// "config", "result", "breakdown", "memory", "request_classes" and
/// "slipstream" sections.
[[nodiscard]] std::string to_json(const ExperimentConfig& config,
                                  const ExperimentResult& result);

struct SweepJsonOptions {
  /// Include host wall-clock timing (per-point "host_seconds" and the
  /// top-level "execution" object). This is the only non-deterministic
  /// content: with it off, the same plan serializes byte-identically at
  /// any --jobs count.
  bool host_seconds = true;
};

/// Canonical aggregate schema ("ssomp-sweep-v1") for BENCH_*.json: one
/// uniform document for every sweep — plan identity, per-point
/// coordinates + simulated results, and (optionally) host timing. See
/// docs/SWEEPS.md for the field list.
[[nodiscard]] std::string sweep_to_json(const SweepRun& run,
                                        const SweepJsonOptions& opts = {});

/// Writes sweep_to_json(run, opts) plus a trailing newline to `path`;
/// false on I/O error.
bool write_sweep_json(const SweepRun& run, const std::string& path,
                      const SweepJsonOptions& opts = {});

}  // namespace ssomp::core
