// JSON serialization of experiment configurations and results, for
// scripting around the CLI runner (tools/ssomp_run) without parsing
// tables. Hand-rolled writer — no external dependencies.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace ssomp::core {

/// Serializes a config/result pair as a single JSON object with
/// "config", "result", "breakdown", "memory", "request_classes" and
/// "slipstream" sections.
[[nodiscard]] std::string to_json(const ExperimentConfig& config,
                                  const ExperimentResult& result);

}  // namespace ssomp::core
