// Experiment driver: runs one workload on one machine/mode configuration
// and collects everything the paper's figures report.
#pragma once

#include <string>
#include <vector>

#include "core/workload.hpp"
#include "machine/machine.hpp"
#include "rt/options.hpp"
#include "stats/memstats.hpp"
#include "stats/timeline.hpp"
#include "trace/cycle_account.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace ssomp::core {

struct ExperimentConfig {
  machine::MachineConfig machine{};
  rt::RuntimeOptions runtime{};

  /// Sample every CPU's activity category at this period for the
  /// execution-timeline CSV (0 = no timeline).
  sim::Cycles timeline_interval = 0;

  /// Convenience constructors for the paper's three execution modes.
  [[nodiscard]] static ExperimentConfig single(int ncmp);
  [[nodiscard]] static ExperimentConfig double_mode(int ncmp);
  [[nodiscard]] static ExperimentConfig slipstream(
      int ncmp, slip::SlipstreamConfig slip);
};

struct ExperimentResult {
  sim::Cycles cycles = 0;              // total simulated execution time
  sim::TimeBreakdown team_breakdown;   // summed over participating CPUs
  int participating_cpus = 0;
  stats::MemStats mem;
  rt::SlipRegionStats slip;
  WorkloadResult workload;
  bool invariants_ok = false;

  /// Per-parallel-region execution records (what the per-region advisor
  /// aligns across configurations).
  std::vector<rt::RegionRecord> regions;

  /// Slipstream invariant-audit outcome (rt::RuntimeOptions::audit).
  /// Vacuously true when auditing was disabled.
  bool audit_ok = true;
  std::uint64_t audit_checks = 0;
  std::vector<std::string> audit_violations;

  /// Number of faults the injector fired (0 on clean runs).
  std::uint64_t faults_injected = 0;

  /// One line per diagnosed no-progress hang (slip::WatchdogReport
  /// describe() strings; empty when the watchdog never tripped).
  std::vector<std::string> watchdog_reports;

  /// Observability captures (filled only when the matching option is on).
  bool trace_enabled = false;
  bool metrics_enabled = false;
  std::string trace_json;    // Chrome trace-event JSON (Perfetto-loadable)
  trace::MetricsRegistry metrics;  // registry snapshot (metrics_enabled)
  std::string metrics_text;  // MetricsRegistry::to_text()
  std::string timeline_csv;  // Timeline::to_csv() (timeline_interval > 0)
  stats::TimelineData timeline;  // detached samples (timeline_interval > 0)
  trace::TraceCounts trace_counts;

  /// Cycle accounting: per-CPU x per-region exclusive-bucket matrix
  /// (always filled; slot 0 = serial, slot r+1 = region r) and the
  /// outcome of the per-CPU identity check
  /// `sum over rows and buckets == breakdown total`.
  trace::CycleAccount cycle_account;
  bool cycle_account_ok = true;
  std::vector<std::string> cycle_account_violations;

  /// Fraction of aggregate accounted CPU time in a category (the bars of
  /// the paper's Figures 2 and 4). TokenWait and StreamWait fold into the
  /// barrier category as in the paper's plots.
  [[nodiscard]] double fraction(sim::TimeCategory c) const;

  /// Barrier fraction including the slipstream-specific waits.
  [[nodiscard]] double barrier_fraction() const;
};

/// Runs `factory`'s workload under `config`; the machine is constructed
/// fresh, so runs are fully independent and deterministic.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                const WorkloadFactory& factory);

/// speedup = base_cycles / this_cycles (the paper normalizes to
/// single-mode execution).
[[nodiscard]] inline double speedup(const ExperimentResult& base,
                                    const ExperimentResult& other) {
  return other.cycles == 0
             ? 0.0
             : static_cast<double>(base.cycles) /
                   static_cast<double>(other.cycles);
}

}  // namespace ssomp::core
