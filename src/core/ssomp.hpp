// ssomp — slipstream-aware OpenMP on a simulated CMP-based DSM machine.
//
// Umbrella header: everything a downstream user needs to write and run a
// slipstream-enabled OpenMP-style program.
//
// Quick tour (see examples/quickstart.cpp for a runnable version):
//
//   machine::MachineConfig mc;            // 16 dual-CPU CMPs, Table 1
//   machine::Machine machine(mc);
//   rt::RuntimeOptions opts;
//   opts.mode = rt::ExecutionMode::kSlipstream;
//   opts.slip = slip::SlipstreamConfig::zero_token_global();
//   rt::Runtime runtime(machine, opts);
//
//   rt::SharedArray<double> x(runtime, n, "x");
//   runtime.run([&](rt::SerialCtx& sc) {
//     sc.parallel([&](rt::ThreadCtx& t) {
//       t.for_loop(0, n, [&](long i) { x.write(t, i, 2.0 * x.read(t, i)); });
//     }, "SLIPSTREAM(GLOBAL_SYNC, 0)");
//   });
#pragma once

#include "core/advisor.hpp"      // IWYU pragma: export
#include "core/driver.hpp"       // IWYU pragma: export
#include "core/experiment.hpp"   // IWYU pragma: export
#include "core/json.hpp"         // IWYU pragma: export
#include "core/plan.hpp"         // IWYU pragma: export
#include "core/workload.hpp"     // IWYU pragma: export
#include "front/directive.hpp"   // IWYU pragma: export
#include "machine/machine.hpp"   // IWYU pragma: export
#include "mem/memsys.hpp"        // IWYU pragma: export
#include "rt/options.hpp"        // IWYU pragma: export
#include "rt/runtime.hpp"        // IWYU pragma: export
#include "rt/shared.hpp"         // IWYU pragma: export
#include "sim/engine.hpp"        // IWYU pragma: export
#include "slip/config.hpp"       // IWYU pragma: export
#include "stats/report.hpp"      // IWYU pragma: export
