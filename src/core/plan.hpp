// Declarative experiment plans.
//
// The paper's evaluation is a grid — apps × execution modes × sync
// configurations × machine sizes — and every harness used to re-implement
// that grid as hand-rolled nested loops. An ExperimentPlan describes the
// grid once, as named axes, and expands it into a deterministic sequence
// of fully-resolved PlanPoints that the SweepDriver (core/driver.hpp)
// executes in parallel. Plans can also be loaded from a small text format
// (`ssomp_run --sweep PLANFILE`; see docs/SWEEPS.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/workload.hpp"
#include "front/directive.hpp"

namespace ssomp::core {

/// One named execution configuration: the mode axis value. The paper's
/// four evaluated configurations are "single", "double", "slip-L1"
/// (one-token local) and "slip-G0" (zero-token global); any
/// "slip-<L|G><tokens>" combination names the general case.
struct ModeAxis {
  std::string name;
  rt::ExecutionMode mode = rt::ExecutionMode::kSingle;
  slip::SlipstreamConfig slip = slip::SlipstreamConfig::disabled();
};

/// Parses a mode-axis name: "single", "double", or "slip-<L|G><tokens>"
/// (e.g. "slip-L1", "slip-G0", "slip-G4").
[[nodiscard]] front::ParseResult<ModeAxis> parse_mode_axis(
    const std::string& name);

/// The paper's four evaluated configurations, in canonical order.
[[nodiscard]] std::vector<ModeAxis> paper_modes();

/// A named schedule-axis value.
struct SchedAxis {
  std::string name = "static";
  front::ScheduleClause clause{};
};

/// A named free-form configuration variant (the axis benches use for
/// anything beyond app/mode/ncmp/schedule: recovery policies, fault
/// injection, coherence-protocol switches, latency scaling, ...).
/// `mutate` is applied to the fully-resolved point config last.
struct ConfigVariant {
  std::string name;
  std::function<void(ExperimentConfig&)> mutate;
};

struct PlanPoint;

/// A sweep described as named axes. Expansion order (and therefore run
/// indices, result ordering and aggregate-JSON ordering) is the
/// deterministic cross product: apps × modes × ncmps × schedules ×
/// variants, each axis in declaration order.
struct ExperimentPlan {
  std::string name = "sweep";

  /// Workload registry names ("CG", "MG", ...). Axis values are carried
  /// verbatim; they are resolved to factories only by the driver's
  /// WorkloadResolver, so core stays independent of the app layer.
  std::vector<std::string> apps;

  std::vector<ModeAxis> modes;
  std::vector<int> ncmps = {16};
  std::vector<SchedAxis> schedules = {SchedAxis{}};
  std::vector<ConfigVariant> variants = {ConfigVariant{}};

  /// Workload problem scale (apps::AppScale numeric value; 0 = bench,
  /// 1 = tiny — mirrored here to keep core decoupled from apps).
  int scale = 0;

  /// Base configuration every point starts from: machine parameters,
  /// runtime options (recovery/watchdog/audit/trace/...), timeline
  /// sampling. Expansion overwrites machine.ncmp, runtime.mode and
  /// runtime.slip from the axes.
  ExperimentConfig base{};

  /// Plan-level workload seed. 0 = keep each app's built-in default
  /// (paper-comparable data). Nonzero: every point's workload seed is
  /// derived deterministically from (seed, app) — deliberately NOT from
  /// mode/ncmp/variant, so cross-mode comparisons stay apples-to-apples.
  std::uint64_t seed = 0;

  /// Optional per-point schedule override, applied after expansion (e.g.
  /// the paper's per-app dynamic chunk sizes in Figure 4). Returning the
  /// passed-in clause keeps the axis value.
  std::function<front::ScheduleClause(const PlanPoint&)> schedule_override;

  /// Number of grid points expand() will produce.
  [[nodiscard]] std::size_t size() const {
    return apps.size() * modes.size() * ncmps.size() * schedules.size() *
           variants.size();
  }

  /// Expands the axes into the deterministic config grid.
  [[nodiscard]] std::vector<PlanPoint> expand() const;
};

/// One fully-resolved grid point.
struct PlanPoint {
  std::size_t index = 0;  // position in the expanded grid
  std::string app;
  ModeAxis mode;
  int ncmp = 16;
  SchedAxis schedule;
  std::string variant;  // "" for the default variant
  int scale = 0;        // apps::AppScale numeric value
  /// Workload seed for this point (0 = app default; see
  /// ExperimentPlan::seed).
  std::uint64_t workload_seed = 0;
  ExperimentConfig config;  // ready to hand to run_experiment

  /// Stable display name: "app/mode[/cmpN][/sched][/variant]" (optional
  /// parts appear only when the corresponding axis has >1 value).
  std::string label;
};

/// Maps a plan point to the workload it runs. The apps layer provides the
/// registry-backed standard resolver (apps::plan_resolver()); tests
/// inject synthetic workloads. A resolver (or the factory it returns) may
/// throw — the driver turns that into a structured error record.
using WorkloadResolver = std::function<WorkloadFactory(const PlanPoint&)>;

/// Parses the textual plan-file format (docs/SWEEPS.md):
///
///   # comment
///   name  = ci-smoke
///   apps  = CG, MG
///   modes = single, double, slip-L1, slip-G0
///   ncmp  = 4, 16
///   sched = static, dynamic,2
///   scale = tiny            # or bench (default)
///   seed  = 0
///   audit = on              # or off
///   metrics = on            # or off: per-point MetricsRegistry capture
///   recovery = restart,3    # or bench
///   divergence = 2
///   watchdog = 200000
///
/// Unknown keys are errors. `apps` and `modes` are required.
[[nodiscard]] front::ParseResult<ExperimentPlan> parse_plan(
    const std::string& text);

}  // namespace ssomp::core
