// Workload abstraction: a simulated OpenMP program plus its verification.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "rt/runtime.hpp"

namespace ssomp::core {

struct WorkloadResult {
  bool verified = false;
  double checksum = 0.0;   // workload-defined figure of merit
  std::string detail;      // human-readable verification summary
};

/// A benchmark program. Lifecycle per experiment:
///   1. construction allocates shared arrays on the runtime and fills host
///      initial values (unsimulated);
///   2. run() executes the simulated program (serial parts + regions);
///   3. verify() checks the host state against a serial reference.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  virtual void run(rt::SerialCtx& sc) = 0;
  [[nodiscard]] virtual WorkloadResult verify() = 0;
};

/// Factory: builds the workload against a fresh runtime (one per
/// experiment, since the simulated machine is single-use).
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(rt::Runtime&)>;

}  // namespace ssomp::core
