#include "core/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "stats/report.hpp"

namespace ssomp::core {

namespace {

using trace::JsonValue;

constexpr std::string_view kSweepSchema = "ssomp-sweep-v1";

/// Boolean member lookup (JsonValue has no bool helper).
bool bool_or(const JsonValue& obj, std::string_view key, bool fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) return fallback;
  return v->boolean;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// The boolean per-point gates whose true -> false flip is always a
/// regression, whatever the thresholds.
constexpr std::string_view kGateFields[] = {"verified", "invariants_ok",
                                            "audit_ok", "cycle_account_ok"};

/// Top-level per-point numeric fields compared as counters.
constexpr std::string_view kPointCounters[] = {"participating_cpus",
                                               "faults_injected"};

/// Collects name -> value for every numeric member of `obj[key]`.
void collect_numbers(const JsonValue& point, std::string_view key,
                     std::string_view prefix,
                     std::map<std::string, double>& out) {
  const JsonValue* obj = point.find(key);
  if (obj == nullptr || !obj->is_object()) return;
  for (const auto& [name, v] : obj->object) {
    if (v.is_number()) out[std::string(prefix) + name] = v.number;
  }
}

/// All counters of one point: top-level fields, the slipstream section,
/// and metric counters (when captured).
std::map<std::string, double> point_counters(const JsonValue& point) {
  std::map<std::string, double> out;
  for (std::string_view f : kPointCounters) {
    const JsonValue* v = point.find(f);
    if (v != nullptr && v->is_number()) out[std::string(f)] = v->number;
  }
  collect_numbers(point, "slipstream", "slipstream.", out);
  const JsonValue* metrics = point.find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    collect_numbers(*metrics, "counters", "metrics.", out);
  }
  return out;
}

/// Bucket name -> share of this point's accounted cycles.
std::map<std::string, double> bucket_shares(const JsonValue& point) {
  std::map<std::string, double> shares;
  const JsonValue* account = point.find("cycle_account");
  if (account == nullptr || !account->is_object()) return shares;
  const JsonValue* buckets = account->find("buckets");
  if (buckets == nullptr || !buckets->is_object()) return shares;
  double total = 0.0;
  for (const auto& [name, v] : buckets->object) {
    if (v.is_number()) total += v.number;
  }
  if (total <= 0.0) return shares;
  for (const auto& [name, v] : buckets->object) {
    if (v.is_number()) shares[name] = v.number / total;
  }
  return shares;
}

void diff_point(const JsonValue& base, const JsonValue& cand,
                const DiffThresholds& t, PointDiff& d) {
  const bool base_ok = bool_or(base, "ok", false);
  const bool cand_ok = bool_or(cand, "ok", false);
  if (base_ok && !cand_ok) {
    d.regressed = true;
    d.notes.push_back("point failed to run (ok flipped): " +
                      cand.string_or("error", "unknown error"));
    return;
  }
  if (!base_ok) return;  // baseline failure: nothing to compare against

  for (std::string_view gate : kGateFields) {
    if (bool_or(base, gate, true) && !bool_or(cand, gate, true)) {
      d.regressed = true;
      d.notes.push_back(std::string(gate) + " flipped true -> false");
    }
  }
  const std::string base_sum = base.string_or("checksum");
  const std::string cand_sum = cand.string_or("checksum");
  if (base_sum != cand_sum) {
    d.regressed = true;
    d.notes.push_back("checksum changed: " + base_sum + " -> " + cand_sum);
  }

  d.base_cycles = base.number_or("cycles");
  d.cand_cycles = cand.number_or("cycles");
  if (d.base_cycles > 0.0) {
    d.cycles_rel = (d.cand_cycles - d.base_cycles) / d.base_cycles;
    if (d.cycles_rel > t.cycles_rel) {
      d.regressed = true;
      std::ostringstream msg;
      msg.precision(4);
      msg << "cycles +" << d.cycles_rel * 100.0 << "% ("
          << static_cast<std::uint64_t>(d.base_cycles) << " -> "
          << static_cast<std::uint64_t>(d.cand_cycles) << ") > "
          << t.cycles_rel * 100.0 << "%";
      d.notes.push_back(msg.str());
    }
  }

  // Bucket-share shifts: a wait/overhead/idle bucket absorbing a larger
  // share of the accounted cycles is the attributional regression the
  // cycle accounting exists to catch. Compute growing its share is fine.
  const auto base_shares = bucket_shares(base);
  const auto cand_shares = bucket_shares(cand);
  for (const auto& [name, cand_share] : cand_shares) {
    if (name == "compute") continue;
    const auto it = base_shares.find(name);
    const double base_share = it == base_shares.end() ? 0.0 : it->second;
    const double shift = cand_share - base_share;
    if (shift > t.share_abs) {
      d.regressed = true;
      std::ostringstream msg;
      msg.precision(4);
      msg << "bucket " << name << " share +" << shift * 100.0 << "pt ("
          << base_share * 100.0 << "% -> " << cand_share * 100.0 << "%) > "
          << t.share_abs * 100.0 << "pt";
      d.notes.push_back(msg.str());
    }
  }

  // Counter changes, either direction: these are determinism signals
  // (token counts, recoveries, store conversions, metric counters).
  const auto base_ctrs = point_counters(base);
  const auto cand_ctrs = point_counters(cand);
  std::map<std::string, double> all = base_ctrs;
  all.insert(cand_ctrs.begin(), cand_ctrs.end());
  for (const auto& [name, unused] : all) {
    (void)unused;
    const auto bi = base_ctrs.find(name);
    const auto ci = cand_ctrs.find(name);
    const double b = bi == base_ctrs.end() ? 0.0 : bi->second;
    const double c = ci == cand_ctrs.end() ? 0.0 : ci->second;
    if (b == c) continue;
    const bool beyond =
        b == 0.0 ? true : std::abs(c - b) / std::abs(b) > t.counter_rel;
    if (!beyond) continue;
    d.regressed = true;
    std::ostringstream msg;
    msg.precision(12);
    msg << "counter " << name << " " << b << " -> " << c;
    d.notes.push_back(msg.str());
  }
}

}  // namespace

std::string validate_sweep(const trace::JsonValue& root) {
  if (!root.is_object()) return "root is not an object";
  const std::string schema = root.string_or("schema");
  if (schema != kSweepSchema) {
    return "schema is '" + schema + "', expected '" +
           std::string(kSweepSchema) + "'";
  }
  const JsonValue* plan = root.find("plan");
  if (plan == nullptr || !plan->is_object()) {
    return "missing 'plan' object";
  }
  const JsonValue* points = root.find("points");
  if (points == nullptr || !points->is_array()) {
    return "missing 'points' array";
  }
  for (std::size_t i = 0; i < points->array.size(); ++i) {
    const JsonValue& p = points->array[i];
    const std::string at = "points[" + std::to_string(i) + "]";
    if (!p.is_object()) return at + " is not an object";
    const JsonValue* label = p.find("label");
    if (label == nullptr || !label->is_string()) {
      return at + " has no 'label' string";
    }
    const JsonValue* ok = p.find("ok");
    if (ok == nullptr || ok->type != JsonValue::Type::kBool) {
      return at + " has no 'ok' flag";
    }
    if (ok->boolean) {
      const JsonValue* cycles = p.find("cycles");
      if (cycles == nullptr || !cycles->is_number()) {
        return at + " is ok but has no 'cycles'";
      }
    }
  }
  return {};
}

LoadedSweep load_sweep_text(const std::string& text,
                            const std::string& origin) {
  LoadedSweep out;
  trace::JsonParseResult parsed = trace::parse_json(text);
  if (!parsed.ok) {
    out.error = origin + ": invalid JSON at byte " +
                std::to_string(parsed.offset) + ": " + parsed.error;
    return out;
  }
  std::string invalid = validate_sweep(parsed.value);
  if (!invalid.empty()) {
    out.error = origin + ": not a valid ssomp-sweep-v1 aggregate: " + invalid;
    return out;
  }
  out.ok = true;
  out.root = std::move(parsed.value);
  return out;
}

LoadedSweep load_sweep_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    LoadedSweep out;
    out.error = path + ": cannot open";
    return out;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return load_sweep_text(text.str(), path);
}

SweepDiff diff_sweeps(const trace::JsonValue& base,
                      const trace::JsonValue& cand,
                      const DiffThresholds& t) {
  SweepDiff diff;
  diff.ok = true;
  diff.thresholds = t;
  const JsonValue* bplan = base.find("plan");
  const JsonValue* cplan = cand.find("plan");
  if (bplan != nullptr) diff.base_plan = bplan->string_or("name");
  if (cplan != nullptr) diff.cand_plan = cplan->string_or("name");

  const JsonValue* bpoints = base.find("points");
  const JsonValue* cpoints = cand.find("points");
  std::map<std::string, const JsonValue*> cand_by_label;
  for (const JsonValue& p : cpoints->array) {
    cand_by_label[p.string_or("label")] = &p;
  }

  for (const JsonValue& bp : bpoints->array) {
    PointDiff d;
    d.label = bp.string_or("label");
    const auto it = cand_by_label.find(d.label);
    if (it == cand_by_label.end()) {
      d.base_only = true;
      d.regressed = true;
      d.notes.push_back("point missing from candidate aggregate");
    } else {
      diff_point(bp, *it->second, t, d);
      cand_by_label.erase(it);
    }
    if (d.regressed) ++diff.regressions;
    diff.points.push_back(std::move(d));
  }
  // Whatever is left appeared only in the candidate: the grid changed,
  // which a baseline gate must notice too.
  for (const JsonValue& cp : cpoints->array) {
    const std::string label = cp.string_or("label");
    if (cand_by_label.find(label) == cand_by_label.end()) continue;
    PointDiff d;
    d.label = label;
    d.cand_only = true;
    d.regressed = true;
    d.notes.push_back("point missing from baseline aggregate");
    ++diff.regressions;
    diff.points.push_back(std::move(d));
  }
  return diff;
}

SweepDiff diff_sweep_files(const std::string& base_path,
                           const std::string& cand_path,
                           const DiffThresholds& t) {
  LoadedSweep base = load_sweep_file(base_path);
  if (!base.ok) {
    SweepDiff d;
    d.error = base.error;
    return d;
  }
  LoadedSweep cand = load_sweep_file(cand_path);
  if (!cand.ok) {
    SweepDiff d;
    d.error = cand.error;
    return d;
  }
  return diff_sweeps(base.root, cand.root, t);
}

std::string diff_to_json(const SweepDiff& d) {
  std::ostringstream out;
  out.precision(12);
  out << "{\"schema\":\"ssomp-diff-v1\"";
  if (!d.ok) {
    out << ",\"ok\":false,\"error\":\"" << escape(d.error) << "\"}";
    return out.str();
  }
  out << ",\"ok\":true,\"base_plan\":\"" << escape(d.base_plan)
      << "\",\"cand_plan\":\"" << escape(d.cand_plan) << "\""
      << ",\"thresholds\":{\"cycles_rel\":" << d.thresholds.cycles_rel
      << ",\"share_abs\":" << d.thresholds.share_abs
      << ",\"counter_rel\":" << d.thresholds.counter_rel << "}"
      << ",\"points\":" << d.points.size()
      << ",\"regressions\":" << d.regressions
      << ",\"clean\":" << (d.clean() ? "true" : "false") << ",\"diffs\":[";
  bool first = true;
  for (const PointDiff& p : d.points) {
    if (!first) out << ',';
    first = false;
    out << "{\"label\":\"" << escape(p.label) << "\",\"status\":\"";
    if (p.base_only) {
      out << "base-only";
    } else if (p.cand_only) {
      out << "cand-only";
    } else if (p.regressed) {
      out << "regressed";
    } else {
      out << "ok";
    }
    out << "\",\"base_cycles\":" << p.base_cycles
        << ",\"cand_cycles\":" << p.cand_cycles
        << ",\"cycles_rel\":" << p.cycles_rel << ",\"notes\":[";
    for (std::size_t i = 0; i < p.notes.size(); ++i) {
      if (i > 0) out << ',';
      out << '"' << escape(p.notes[i]) << '"';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

std::string diff_to_text(const SweepDiff& d) {
  std::ostringstream out;
  if (!d.ok) {
    out << "diff failed: " << d.error << '\n';
    return out.str();
  }
  out << "sweep diff: base plan '" << d.base_plan << "' vs candidate '"
      << d.cand_plan << "' — " << d.points.size() << " points, "
      << d.regressions << " regression(s)\n";
  stats::Table t({"point", "base cycles", "cand cycles", "delta", "status"});
  for (const PointDiff& p : d.points) {
    std::string status = "ok";
    if (p.base_only) status = "base-only";
    if (p.cand_only) status = "cand-only";
    if (!p.base_only && !p.cand_only && p.regressed) status = "REGRESSED";
    t.add_row({p.label,
               std::to_string(static_cast<std::uint64_t>(p.base_cycles)),
               std::to_string(static_cast<std::uint64_t>(p.cand_cycles)),
               stats::Table::pct(p.cycles_rel), status});
  }
  out << t.to_string();
  for (const PointDiff& p : d.points) {
    for (const std::string& note : p.notes) {
      out << "  " << p.label << ": " << note << '\n';
    }
  }
  return out.str();
}

}  // namespace ssomp::core
