// Per-region execution-mode advisor.
//
// The paper's closing argument is that OpenMP + slipstream "provid[es]
// run-time control and selection of the optimal execution mode for a
// particular combination of system architecture, application, and problem
// size" — and that "the decision is done per parallel region" (§3). The
// advisor operationalizes that: it runs the workload once per candidate
// configuration, aligns the per-region execution records, and recommends
// the winning configuration for each region (as the SLIPSTREAM directive
// text a programmer would paste in), plus the best whole-program setting.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/workload.hpp"

namespace ssomp::core {

struct CandidateConfig {
  std::string name;  // e.g. "single", "slip-L1"
  rt::ExecutionMode mode = rt::ExecutionMode::kSingle;
  slip::SlipstreamConfig slip = slip::SlipstreamConfig::disabled();
};

/// The default candidate set: the paper's four evaluated configurations.
[[nodiscard]] std::vector<CandidateConfig> default_candidates();

struct RegionAdvice {
  int region = 0;
  std::string best;            // winning candidate name
  std::string directive;       // suggested SLIPSTREAM directive ("" = none)
  sim::Cycles best_cycles = 0;
  sim::Cycles single_cycles = 0;  // the same region under the baseline
  double gain_vs_single = 0.0;
};

struct Advice {
  std::vector<RegionAdvice> regions;
  std::string best_overall;        // whole-program winner
  sim::Cycles best_overall_cycles = 0;
  sim::Cycles single_cycles = 0;
  /// Sum over regions of each region's best time plus the baseline's
  /// serial time — the (idealized) payoff of per-region selection.
  sim::Cycles per_region_ideal_cycles = 0;
};

/// Probes `factory`'s workload under every candidate on `machine_config`
/// and produces per-region recommendations. Workload runs must execute
/// the same region sequence in every mode (true for OpenMP-style
/// programs; region counts are checked). Candidate probes are
/// independent simulations and run concurrently on the sweep driver's
/// thread pool; `jobs` follows the driver's resolution chain (explicit >
/// SSOMP_JOBS > hardware concurrency).
[[nodiscard]] Advice advise(const machine::MachineConfig& machine_config,
                            const WorkloadFactory& factory,
                            const std::vector<CandidateConfig>& candidates =
                                default_candidates(),
                            int jobs = 0);

/// Renders the advice as a table plus directive suggestions.
[[nodiscard]] std::string format_advice(const Advice& advice);

}  // namespace ssomp::core
