#include "core/experiment.hpp"

#include <optional>

#include "stats/timeline.hpp"
#include "trace/chrome.hpp"

namespace ssomp::core {

ExperimentConfig ExperimentConfig::single(int ncmp) {
  ExperimentConfig c;
  c.machine.ncmp = ncmp;
  c.runtime.mode = rt::ExecutionMode::kSingle;
  return c;
}

ExperimentConfig ExperimentConfig::double_mode(int ncmp) {
  ExperimentConfig c;
  c.machine.ncmp = ncmp;
  c.runtime.mode = rt::ExecutionMode::kDouble;
  return c;
}

ExperimentConfig ExperimentConfig::slipstream(int ncmp,
                                              slip::SlipstreamConfig slip) {
  ExperimentConfig c;
  c.machine.ncmp = ncmp;
  c.runtime.mode = rt::ExecutionMode::kSlipstream;
  c.runtime.slip = slip;
  return c;
}

double ExperimentResult::fraction(sim::TimeCategory c) const {
  const auto total = static_cast<double>(team_breakdown.total());
  if (total == 0) return 0.0;
  return static_cast<double>(team_breakdown.get(c)) / total;
}

double ExperimentResult::barrier_fraction() const {
  const auto total = static_cast<double>(team_breakdown.total());
  if (total == 0) return 0.0;
  return static_cast<double>(
             team_breakdown.get(sim::TimeCategory::kBarrier) +
             team_breakdown.get(sim::TimeCategory::kTokenWait) +
             team_breakdown.get(sim::TimeCategory::kStreamWait)) /
         total;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const WorkloadFactory& factory) {
  machine::Machine machine(config.machine);
  rt::Runtime runtime(machine, config.runtime);
  std::unique_ptr<Workload> workload = factory(runtime);

  std::optional<stats::Timeline> timeline;
  if (config.timeline_interval > 0) {
    timeline.emplace(machine.engine(), config.timeline_interval);
  }

  ExperimentResult result;
  result.cycles =
      runtime.run([&](rt::SerialCtx& sc) { workload->run(sc); });

  if (timeline.has_value()) {
    timeline->finalize();
    result.timeline = timeline->data();
    result.timeline_csv = result.timeline.to_csv();
  }

  for (sim::CpuId c = 0; c < machine.ncpus(); ++c) {
    const sim::TimeBreakdown& b = machine.cpu(c).breakdown();
    if (b.get(sim::TimeCategory::kBusy) > 0) {
      result.team_breakdown += b;
      ++result.participating_cpus;
    }
  }
  result.mem = machine.mem().stats();
  result.slip = runtime.slip_stats();
  result.regions = runtime.region_records();
  result.workload = workload->verify();
  result.invariants_ok = machine.mem().check_invariants();
  result.audit_ok = runtime.auditor().ok();
  result.audit_checks = runtime.auditor().checks_performed();
  result.audit_violations = runtime.auditor().violations();
  result.faults_injected = runtime.fault_injector().fired();
  for (const slip::WatchdogReport& rep : runtime.watchdog().reports()) {
    result.watchdog_reports.push_back(rep.describe());
  }

  const trace::Instrumentation& inst = runtime.instrumentation();
  result.trace_enabled = inst.tracer().enabled();
  result.metrics_enabled = inst.metrics_on();
  if (result.trace_enabled) {
    result.trace_json = trace::chrome_trace_json(inst.tracer());
    result.trace_counts = inst.tracer().counts();
  }
  if (result.metrics_enabled) {
    result.metrics = inst.metrics();
    result.metrics_text = inst.metrics().to_text();
  }

  // Cycle-accounting identity: every breakdown cycle of every CPU must
  // have landed in exactly one bucket of exactly one region row.
  result.cycle_account = runtime.cycle_account();
  std::vector<sim::Cycles> expected;
  expected.reserve(static_cast<std::size_t>(machine.ncpus()));
  for (sim::CpuId c = 0; c < machine.ncpus(); ++c) {
    expected.push_back(machine.cpu(c).breakdown().total());
  }
  result.cycle_account_violations =
      result.cycle_account.check_identity(expected);
  result.cycle_account_ok = result.cycle_account_violations.empty();
  return result;
}

}  // namespace ssomp::core
