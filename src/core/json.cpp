#include "core/json.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace ssomp::core {

namespace {

/// Minimal streaming JSON object writer.
class Obj {
 public:
  explicit Obj(std::ostringstream& out) : out_(out) { out_ << '{'; }

  void key(const std::string& k) {
    if (!first_) out_ << ',';
    first_ = false;
    out_ << '"' << k << "\":";
  }
  void field(const std::string& k, std::uint64_t v) {
    key(k);
    out_ << v;
  }
  void field(const std::string& k, int v) {
    key(k);
    out_ << v;
  }
  void field(const std::string& k, double v) {
    key(k);
    // JSON has no NaN/Inf; results never legitimately contain them.
    out_ << (v == v ? v : 0.0);
  }
  void field(const std::string& k, bool v) {
    key(k);
    out_ << (v ? "true" : "false");
  }
  void field(const std::string& k, const std::string& v) {
    key(k);
    out_ << '"';
    for (char c : v) {
      if (c == '"' || c == '\\') out_ << '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        out_ << ' ';
        continue;
      }
      out_ << c;
    }
    out_ << '"';
  }
  /// Embeds `json` verbatim (already-serialized sub-document).
  void raw(const std::string& k, const std::string& json) {
    key(k);
    out_ << json;
  }
  void close() { out_ << '}'; }

 private:
  std::ostringstream& out_;
  bool first_ = true;
};

/// Structured emission of a MetricsRegistry. This replaces the former
/// raw() splice of a pre-serialized string: every name and value goes
/// through the writer (escaped, NaN-scrubbed), so a malformed metrics
/// blob can never corrupt the enclosing document.
void emit_metrics(std::ostringstream& out, Obj& parent,
                  const trace::MetricsRegistry& m) {
  parent.key("metrics");
  Obj o(out);
  o.key("counters");
  {
    Obj c(out);
    for (const auto& [name, ctr] : m.counters()) c.field(name, ctr.value());
    c.close();
  }
  o.key("histograms");
  {
    Obj hs(out);
    for (const auto& [name, h] : m.histograms()) {
      hs.key(name);
      Obj ho(out);
      ho.field("count", h.count());
      ho.field("sum", h.sum());
      ho.field("min", h.min());
      ho.field("max", h.max());
      ho.field("mean", h.mean());
      ho.field("p50", h.percentile(50));
      ho.field("p90", h.percentile(90));
      ho.field("p99", h.percentile(99));
      ho.key("buckets");
      out << '[';
      bool first = true;
      for (int b = 0; b < trace::Histogram::kBuckets; ++b) {
        if (h.bucket_count(b) == 0) continue;
        if (!first) out << ',';
        first = false;
        const std::uint64_t lo =
            b == 0 ? 0 : trace::Histogram::bucket_upper(b - 1) + 1;
        out << '[' << lo << ',' << trace::Histogram::bucket_upper(b) << ','
            << h.bucket_count(b) << ']';
      }
      out << ']';
      ho.close();
    }
    hs.close();
  }
  o.close();
}

/// Cycle-accounting matrix: per-bucket grand totals plus the full
/// rows[slot][cpu] = [bucket cycles...] matrix (slot 0 = serial, slot
/// r+1 = parallel region r).
void emit_cycle_account(std::ostringstream& out, Obj& parent,
                        const trace::CycleAccount& a) {
  parent.key("cycle_account");
  Obj o(out);
  o.field("cpus", a.cpus());
  o.field("slots", a.slots());
  o.key("buckets");
  {
    Obj b(out);
    for (int i = 0; i < sim::kCycleBucketCount; ++i) {
      const auto bucket = static_cast<sim::CycleBucket>(i);
      b.field(std::string(to_string(bucket)), a.bucket_total(bucket));
    }
    b.close();
  }
  o.key("rows");
  out << '[';
  for (int s = 0; s < a.slots(); ++s) {
    if (s > 0) out << ',';
    out << '[';
    for (int c = 0; c < a.cpus(); ++c) {
      if (c > 0) out << ',';
      out << '[';
      const trace::CycleAccount::Row& r = a.row(c, s);
      for (int b = 0; b < sim::kCycleBucketCount; ++b) {
        if (b > 0) out << ',';
        out << r.cycles[b];
      }
      out << ']';
    }
    out << ']';
  }
  out << ']';
  o.close();
}

/// One rollup group: metric and cycle-account state merged over a set of
/// successful sweep points. merge() is associative and the groups are
/// built in record order with map-sorted keys, so the rollup is
/// byte-identical at any --jobs count.
struct Rollup {
  std::uint64_t points = 0;
  sim::Cycles cycles = 0;
  trace::MetricsRegistry metrics;
  trace::CycleAccount account;

  void add(const ExperimentResult& r) {
    ++points;
    cycles += r.cycles;
    metrics.merge(r.metrics);
    account.merge(r.cycle_account);
  }
};

void emit_rollup_group(std::ostringstream& out, Obj& parent,
                       const std::string& key, const Rollup& g) {
  parent.key(key);
  Obj o(out);
  o.field("points", g.points);
  o.field("cycles_total", g.cycles);
  o.key("cycle_buckets");
  {
    Obj b(out);
    for (int i = 0; i < sim::kCycleBucketCount; ++i) {
      const auto bucket = static_cast<sim::CycleBucket>(i);
      b.field(std::string(to_string(bucket)), g.account.bucket_total(bucket));
    }
    b.close();
  }
  emit_metrics(out, o, g.metrics);
  o.close();
}

}  // namespace

std::string to_json(const ExperimentConfig& config,
                    const ExperimentResult& result) {
  std::ostringstream out;
  out.precision(12);
  Obj root(out);

  root.key("config");
  {
    Obj o(out);
    o.field("ncmp", config.machine.ncmp);
    o.field("cpus", config.machine.ncpus());
    o.field("mode", std::string(to_string(config.runtime.mode)));
    o.field("sync", std::string(to_string(config.runtime.slip.type)));
    o.field("tokens", config.runtime.slip.tokens);
    o.field("l1_bytes",
            static_cast<std::uint64_t>(config.machine.mem.l1_size_bytes));
    o.field("l2_bytes",
            static_cast<std::uint64_t>(config.machine.mem.l2_size_bytes));
    o.close();
  }

  root.key("result");
  {
    Obj o(out);
    o.field("cycles", result.cycles);
    o.field("participating_cpus", result.participating_cpus);
    o.field("verified", result.workload.verified);
    o.field("invariants_ok", result.invariants_ok);
    o.field("audit_ok", result.audit_ok);
    o.field("audit_checks", result.audit_checks);
    o.field("faults_injected", result.faults_injected);
    o.field("watchdog_reports",
            static_cast<std::uint64_t>(result.watchdog_reports.size()));
    o.field("cycle_account_ok", result.cycle_account_ok);
    o.field("checksum", result.workload.checksum);
    o.field("detail", result.workload.detail);
    o.close();
  }

  root.key("breakdown");
  {
    Obj o(out);
    for (int c = 0; c < sim::kTimeCategoryCount; ++c) {
      const auto cat = static_cast<sim::TimeCategory>(c);
      o.field(std::string(to_string(cat)),
              result.fraction(cat));
    }
    o.close();
  }

  root.key("memory");
  {
    Obj o(out);
    const auto& m = result.mem;
    o.field("loads", m.loads);
    o.field("stores", m.stores);
    o.field("prefetches", m.prefetches);
    o.field("l1_hits", m.l1_hits);
    o.field("l2_hits", m.l2_hits);
    o.field("l2_fills", m.l2_fills);
    o.field("merges", m.merges);
    o.field("fills_local", m.fills_local);
    o.field("fills_remote_clean", m.fills_remote_clean);
    o.field("fills_dirty", m.fills_dirty);
    o.field("upgrades", m.upgrades);
    o.field("invalidations", m.invalidations);
    o.field("self_invalidations", m.self_invalidations);
    o.field("writebacks", m.writebacks);
    o.close();
  }

  root.key("request_classes");
  {
    Obj o(out);
    using stats::ReqClass;
    using stats::ReqKind;
    for (ReqKind kind : {ReqKind::kRead, ReqKind::kReadEx}) {
      o.key(std::string(to_string(kind)));
      Obj k(out);
      for (ReqClass cls :
           {ReqClass::kATimely, ReqClass::kALate, ReqClass::kAOnly,
            ReqClass::kRTimely, ReqClass::kRLate, ReqClass::kROnly}) {
        k.field(std::string(to_string(cls)),
                result.mem.req_class.fraction(kind, cls));
      }
      k.field("total", result.mem.req_class.total(kind));
      k.close();
    }
    o.close();
  }

  root.key("slipstream");
  {
    Obj o(out);
    const auto& s = result.slip;
    o.field("tokens_consumed", s.tokens_consumed);
    o.field("tokens_inserted", s.tokens_inserted);
    o.field("recoveries", s.recoveries);
    o.field("forwarded_chunks", s.forwarded_chunks);
    o.field("converted_stores", s.converted_stores);
    o.field("dropped_stores", s.dropped_stores);
    o.field("restarts", s.restarts);
    o.field("benched_barriers", s.benched_barriers);
    o.field("watchdog_trips", s.watchdog_trips);
    o.field("demotions", s.demotions);
    o.field("promotions", s.promotions);
    o.close();
  }

  emit_cycle_account(out, root, result.cycle_account);

  if (result.metrics_enabled) {
    emit_metrics(out, root, result.metrics);
  }

  if (result.trace_enabled) {
    root.key("trace");
    Obj o(out);
    o.field("events_recorded", result.trace_counts.recorded);
    o.field("events_dropped", result.trace_counts.dropped);
    for (int k = 0; k < trace::kEventKindCount; ++k) {
      const auto kind = static_cast<trace::EventKind>(k);
      o.field(std::string(trace::to_string(kind)),
              result.trace_counts.of(kind));
    }
    o.close();
  }

  root.close();
  return out.str();
}

std::string sweep_to_json(const SweepRun& run, const SweepJsonOptions& opts) {
  std::ostringstream out;
  out.precision(12);
  Obj root(out);
  root.field("schema", std::string("ssomp-sweep-v1"));

  root.key("plan");
  {
    Obj o(out);
    o.field("name", run.plan.name);
    o.field("points", static_cast<std::uint64_t>(run.points.size()));
    o.field("scale", run.plan.scale == 1 ? std::string("tiny")
                                         : std::string("bench"));
    o.field("seed", run.plan.seed);
    o.close();
  }

  root.key("points");
  out << '[';
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const PlanPoint& p = run.points[i];
    const RunRecord& rec = run.records[i];
    if (i > 0) out << ',';
    Obj o(out);
    o.field("index", static_cast<std::uint64_t>(p.index));
    o.field("label", p.label);
    o.field("app", p.app);
    o.field("mode", p.mode.name);
    o.field("sync", std::string(to_string(p.config.runtime.slip.type)));
    o.field("tokens", p.config.runtime.slip.tokens);
    o.field("ncmp", p.ncmp);
    o.field("sched", p.schedule.name);
    o.field("variant", p.variant);
    o.field("workload_seed", p.workload_seed);
    o.field("ok", rec.ok);
    if (!rec.ok) {
      o.field("error", rec.error);
    } else {
      const ExperimentResult& r = rec.result;
      o.field("cycles", r.cycles);
      o.field("verified", r.workload.verified);
      o.field("invariants_ok", r.invariants_ok);
      o.field("audit_ok", r.audit_ok);
      o.field("checksum", r.workload.checksum);
      o.field("participating_cpus", r.participating_cpus);
      o.field("faults_injected", r.faults_injected);
      o.key("breakdown");
      {
        Obj b(out);
        for (int c = 0; c < sim::kTimeCategoryCount; ++c) {
          const auto cat = static_cast<sim::TimeCategory>(c);
          b.field(std::string(to_string(cat)), r.fraction(cat));
        }
        b.field("barrier_folded", r.barrier_fraction());
        b.close();
      }
      o.key("slipstream");
      {
        Obj s(out);
        s.field("tokens_consumed", r.slip.tokens_consumed);
        s.field("tokens_inserted", r.slip.tokens_inserted);
        s.field("converted_stores", r.slip.converted_stores);
        s.field("dropped_stores", r.slip.dropped_stores);
        s.field("forwarded_chunks", r.slip.forwarded_chunks);
        s.field("recoveries", r.slip.recoveries);
        s.field("restarts", r.slip.restarts);
        s.field("benched_barriers", r.slip.benched_barriers);
        s.field("watchdog_trips", r.slip.watchdog_trips);
        s.field("demotions", r.slip.demotions);
        s.field("promotions", r.slip.promotions);
        s.close();
      }
      o.field("cycle_account_ok", r.cycle_account_ok);
      emit_cycle_account(out, o, r.cycle_account);
      if (r.metrics_enabled) emit_metrics(out, o, r.metrics);
    }
    if (opts.host_seconds) o.field("host_seconds", rec.host_seconds);
    o.close();
  }
  out << ']';

  // Per-plan-axis rollup: merged metric and cycle-account state for the
  // whole sweep and for each app / mode / ncmp slice, over the points
  // that ran. Deterministic at any --jobs count (associative merges in
  // record order, map-sorted group keys).
  root.key("rollup");
  {
    Rollup all;
    std::map<std::string, Rollup> by_app;
    std::map<std::string, Rollup> by_mode;
    std::map<int, Rollup> by_ncmp;
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      if (!run.records[i].ok) continue;
      const ExperimentResult& r = run.records[i].result;
      all.add(r);
      by_app[run.points[i].app].add(r);
      by_mode[run.points[i].mode.name].add(r);
      by_ncmp[run.points[i].ncmp].add(r);
    }
    Obj o(out);
    emit_rollup_group(out, o, "all", all);
    o.key("by_app");
    {
      Obj g(out);
      for (const auto& [app, roll] : by_app) {
        emit_rollup_group(out, g, app, roll);
      }
      g.close();
    }
    o.key("by_mode");
    {
      Obj g(out);
      for (const auto& [mode, roll] : by_mode) {
        emit_rollup_group(out, g, mode, roll);
      }
      g.close();
    }
    o.key("by_ncmp");
    {
      Obj g(out);
      for (const auto& [ncmp, roll] : by_ncmp) {
        emit_rollup_group(out, g, std::to_string(ncmp), roll);
      }
      g.close();
    }
    o.close();
  }

  if (opts.host_seconds) {
    root.key("execution");
    Obj o(out);
    o.field("jobs", run.jobs);
    o.field("host_seconds_total", run.host_seconds_total);
    o.field("failures", run.failures());
    o.close();
  }

  root.close();
  return out.str();
}

bool write_sweep_json(const SweepRun& run, const std::string& path,
                      const SweepJsonOptions& opts) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << sweep_to_json(run, opts) << '\n';
  return static_cast<bool>(file);
}

}  // namespace ssomp::core
