#include "core/advisor.hpp"

#include <sstream>

#include "machine/machine.hpp"
#include "rt/runtime.hpp"
#include "sim/check.hpp"
#include "stats/report.hpp"

namespace ssomp::core {

std::vector<CandidateConfig> default_candidates() {
  return {
      {"single", rt::ExecutionMode::kSingle,
       slip::SlipstreamConfig::disabled()},
      {"double", rt::ExecutionMode::kDouble,
       slip::SlipstreamConfig::disabled()},
      {"slip-L1", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::one_token_local()},
      {"slip-G0", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::zero_token_global()},
  };
}

namespace {

struct ProbeRun {
  sim::Cycles total = 0;
  std::vector<rt::RegionRecord> regions;
};

ProbeRun probe(const machine::MachineConfig& mc, const WorkloadFactory& f,
               const CandidateConfig& candidate) {
  machine::Machine machine(mc);
  rt::RuntimeOptions opts;
  opts.mode = candidate.mode;
  opts.slip = candidate.slip;
  rt::Runtime runtime(machine, opts);
  auto workload = f(runtime);
  ProbeRun run;
  run.total = runtime.run([&](rt::SerialCtx& sc) { workload->run(sc); });
  SSOMP_CHECK(workload->verify().verified);
  run.regions = runtime.region_records();
  return run;
}

std::string directive_for(const CandidateConfig& c) {
  if (c.mode != rt::ExecutionMode::kSlipstream || !c.slip.enabled()) {
    return "";
  }
  return "SLIPSTREAM(" + std::string(to_string(c.slip.type)) + ", " +
         std::to_string(c.slip.tokens) + ")";
}

}  // namespace

Advice advise(const machine::MachineConfig& machine_config,
              const WorkloadFactory& factory,
              const std::vector<CandidateConfig>& candidates) {
  SSOMP_CHECK(!candidates.empty());
  std::vector<ProbeRun> runs;
  runs.reserve(candidates.size());
  std::size_t baseline = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    runs.push_back(probe(machine_config, factory, candidates[i]));
    if (candidates[i].mode == rt::ExecutionMode::kSingle) baseline = i;
    // The same program must produce the same region sequence everywhere.
    SSOMP_CHECK(runs[i].regions.size() == runs[0].regions.size());
  }

  Advice advice;
  advice.single_cycles = runs[baseline].total;
  std::size_t best_overall = 0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].total < runs[best_overall].total) best_overall = i;
  }
  advice.best_overall = candidates[best_overall].name;
  advice.best_overall_cycles = runs[best_overall].total;

  sim::Cycles region_savings = 0;
  for (std::size_t r = 0; r < runs[0].regions.size(); ++r) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].regions[r].cycles < runs[best].regions[r].cycles) {
        best = i;
      }
    }
    RegionAdvice ra;
    ra.region = static_cast<int>(r);
    ra.best = candidates[best].name;
    ra.directive = directive_for(candidates[best]);
    ra.best_cycles = runs[best].regions[r].cycles;
    ra.single_cycles = runs[baseline].regions[r].cycles;
    ra.gain_vs_single =
        ra.best_cycles == 0
            ? 0.0
            : static_cast<double>(ra.single_cycles) /
                      static_cast<double>(ra.best_cycles) -
                  1.0;
    region_savings += ra.single_cycles - ra.best_cycles;
    advice.regions.push_back(ra);
  }
  advice.per_region_ideal_cycles = advice.single_cycles - region_savings;
  return advice;
}

std::string format_advice(const Advice& advice) {
  std::ostringstream out;
  stats::Table table(
      {"region", "best mode", "cycles", "vs single", "suggested directive"});
  for (const auto& r : advice.regions) {
    table.add_row({std::to_string(r.region), r.best,
                   std::to_string(r.best_cycles),
                   stats::Table::pct(r.gain_vs_single),
                   r.directive.empty() ? "(run without slipstream)"
                                       : r.directive});
  }
  out << table.to_string();
  out << "\nwhole-program winner: " << advice.best_overall << " ("
      << advice.best_overall_cycles << " cycles; single = "
      << advice.single_cycles << ")\n";
  out << "idealized per-region selection: " << advice.per_region_ideal_cycles
      << " cycles ("
      << stats::Table::pct(
             static_cast<double>(advice.single_cycles) /
                 static_cast<double>(advice.per_region_ideal_cycles) -
             1.0)
      << " over single)\n";
  return out.str();
}

}  // namespace ssomp::core
