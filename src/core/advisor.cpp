#include "core/advisor.hpp"

#include <sstream>

#include "core/driver.hpp"
#include "sim/check.hpp"
#include "stats/report.hpp"

namespace ssomp::core {

std::vector<CandidateConfig> default_candidates() {
  return {
      {"single", rt::ExecutionMode::kSingle,
       slip::SlipstreamConfig::disabled()},
      {"double", rt::ExecutionMode::kDouble,
       slip::SlipstreamConfig::disabled()},
      {"slip-L1", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::one_token_local()},
      {"slip-G0", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::zero_token_global()},
  };
}

namespace {

std::string directive_for(const CandidateConfig& c) {
  if (c.mode != rt::ExecutionMode::kSlipstream || !c.slip.enabled()) {
    return "";
  }
  return "SLIPSTREAM(" + std::string(to_string(c.slip.type)) + ", " +
         std::to_string(c.slip.tokens) + ")";
}

}  // namespace

Advice advise(const machine::MachineConfig& machine_config,
              const WorkloadFactory& factory,
              const std::vector<CandidateConfig>& candidates, int jobs) {
  SSOMP_CHECK(!candidates.empty());

  // Candidate probes are independent simulations: batch them through the
  // sweep driver so they run concurrently.
  std::vector<BatchItem> items;
  items.reserve(candidates.size());
  std::size_t baseline = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].mode == rt::ExecutionMode::kSingle) baseline = i;
    BatchItem item;
    item.label = candidates[i].name;
    item.config.machine = machine_config;
    item.config.runtime.mode = candidates[i].mode;
    item.config.runtime.slip = candidates[i].slip;
    item.factory = factory;
    items.push_back(std::move(item));
  }
  const std::vector<RunRecord> runs =
      run_batch(items, SweepOptions{.jobs = jobs, .progress = {}});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    SSOMP_CHECK(runs[i].ok && "advisor probe failed");
    SSOMP_CHECK(runs[i].result.workload.verified);
    // The same program must produce the same region sequence everywhere.
    SSOMP_CHECK(runs[i].result.regions.size() ==
                runs[0].result.regions.size());
  }

  Advice advice;
  advice.single_cycles = runs[baseline].result.cycles;
  std::size_t best_overall = 0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].result.cycles < runs[best_overall].result.cycles) {
      best_overall = i;
    }
  }
  advice.best_overall = candidates[best_overall].name;
  advice.best_overall_cycles = runs[best_overall].result.cycles;

  sim::Cycles region_savings = 0;
  for (std::size_t r = 0; r < runs[0].result.regions.size(); ++r) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].result.regions[r].cycles <
          runs[best].result.regions[r].cycles) {
        best = i;
      }
    }
    RegionAdvice ra;
    ra.region = static_cast<int>(r);
    ra.best = candidates[best].name;
    ra.directive = directive_for(candidates[best]);
    ra.best_cycles = runs[best].result.regions[r].cycles;
    ra.single_cycles = runs[baseline].result.regions[r].cycles;
    ra.gain_vs_single =
        ra.best_cycles == 0
            ? 0.0
            : static_cast<double>(ra.single_cycles) /
                      static_cast<double>(ra.best_cycles) -
                  1.0;
    region_savings += ra.single_cycles - ra.best_cycles;
    advice.regions.push_back(ra);
  }
  advice.per_region_ideal_cycles = advice.single_cycles - region_savings;
  return advice;
}

std::string format_advice(const Advice& advice) {
  std::ostringstream out;
  stats::Table table(
      {"region", "best mode", "cycles", "vs single", "suggested directive"});
  for (const auto& r : advice.regions) {
    table.add_row({std::to_string(r.region), r.best,
                   std::to_string(r.best_cycles),
                   stats::Table::pct(r.gain_vs_single),
                   r.directive.empty() ? "(run without slipstream)"
                                       : r.directive});
  }
  out << table.to_string();
  out << "\nwhole-program winner: " << advice.best_overall << " ("
      << advice.best_overall_cycles << " cycles; single = "
      << advice.single_cycles << ")\n";
  out << "idealized per-region selection: " << advice.per_region_ideal_cycles
      << " cycles ("
      << stats::Table::pct(
             static_cast<double>(advice.single_cycles) /
                 static_cast<double>(advice.per_region_ideal_cycles) -
             1.0)
      << " over single)\n";
  return out.str();
}

}  // namespace ssomp::core
