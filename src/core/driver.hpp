// Parallel sweep driver.
//
// Executes a batch of independent experiments on a pool of host threads.
// Simulations are instance-scoped (machine, runtime, fibers, RNGs all
// live per run; sim::Fiber's current-fiber slot is thread_local), so the
// runs are embarrassingly parallel and results are bit-identical at any
// job count. Guarantees:
//
//   * deterministic result ordering — records come back in plan/batch
//     order no matter how the scheduler interleaved the runs;
//   * per-run failure isolation — a run whose resolver/factory/experiment
//     throws becomes a structured error record, not a sunk batch;
//   * per-run host wall-clock timing — every record carries host seconds
//     alongside the simulated cycle count.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/plan.hpp"

namespace ssomp::core {

/// Live progress notification for one batch item. Events are serialized
/// (the driver never invokes the callback concurrently), so the handler
/// needs no locking of its own; keep it fast — it runs on worker threads
/// with the progress lock held.
struct ProgressEvent {
  enum class Kind { kStart, kFinish, kFail };
  Kind kind = Kind::kStart;
  std::string label;
  std::size_t index = 0;      // item position in batch order
  std::size_t total = 0;      // batch size
  std::size_t completed = 0;  // runs finished or failed so far
  double host_seconds = 0.0;  // this run's wall clock (kFinish/kFail)
  double eta_seconds = 0.0;   // remaining-work estimate from the
                              // completed-run mean, spread over the pool
};
using ProgressFn = std::function<void(const ProgressEvent&)>;

struct SweepOptions {
  /// Worker threads. 0 = the SSOMP_JOBS environment variable if set and
  /// positive, else std::thread::hardware_concurrency().
  int jobs = 0;

  /// Optional per-run progress callback (start/finish/fail).
  ProgressFn progress;
};

/// Resolves the effective job count: `requested` > 0 wins, then
/// SSOMP_JOBS, then hardware concurrency (at least 1).
[[nodiscard]] int resolve_jobs(int requested);

/// One batch entry: an arbitrary configuration plus the factory that
/// builds its workload (invoked on the worker thread).
struct BatchItem {
  std::string label;
  ExperimentConfig config;
  WorkloadFactory factory;
};

/// The outcome of one run.
struct RunRecord {
  std::string label;
  bool ok = false;
  std::string error;        // exception message when !ok
  ExperimentResult result;  // valid only when ok
  double host_seconds = 0.0;
};

/// Runs every item on a pool of `opts.jobs` threads; records are returned
/// in item order. Throwing items yield !ok records; the rest of the batch
/// still completes.
[[nodiscard]] std::vector<RunRecord> run_batch(
    const std::vector<BatchItem>& items, const SweepOptions& opts = {});

/// A fully-executed plan: points and records are parallel arrays in
/// deterministic grid order.
struct SweepRun {
  ExperimentPlan plan;
  std::vector<PlanPoint> points;
  std::vector<RunRecord> records;
  int jobs = 1;
  double host_seconds_total = 0.0;

  [[nodiscard]] int failures() const;

  /// The record for the point labelled `label` ("CG/slip-L1/cmp4", ...),
  /// or nullptr if the plan has no such point.
  [[nodiscard]] const RunRecord* find(const std::string& label) const;
};

/// Expands `plan` and runs every point through `resolver` on the pool.
[[nodiscard]] SweepRun run_sweep(const ExperimentPlan& plan,
                                 const WorkloadResolver& resolver,
                                 const SweepOptions& opts = {});

/// The CLI surface shared by every sweep-running binary (the bench
/// harnesses, ssomp_run --sweep): --jobs N, --out FILE,
/// --no-host-seconds, --progress.
struct SweepCli {
  int jobs = 0;              // 0 → SSOMP_JOBS env → hardware concurrency
  bool host_seconds = true;  // off → byte-deterministic aggregate JSON
  bool progress = false;     // one-line per-run stderr updates
  std::string out;           // aggregate path ("" → the caller's default)
};

/// Consumes argv[i] (advancing `i` past a value operand) when it is one
/// of the shared sweep flags; returns false on anything else.
bool parse_sweep_flag(int argc, char** argv, int& i, SweepCli& cli);

}  // namespace ssomp::core
