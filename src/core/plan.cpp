#include "core/plan.hpp"

#include <cctype>
#include <sstream>

#include "mem/params.hpp"
#include "slip/faultinject.hpp"

namespace ssomp::core {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(trim(cur));
  return parts;
}

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  int v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// SplitMix64-style mixing of a string into a seed word.
std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;  // FNV-1a prime: stable across platforms
  }
  return h;
}

}  // namespace

front::ParseResult<ModeAxis> parse_mode_axis(const std::string& name) {
  using Result = front::ParseResult<ModeAxis>;
  ModeAxis m;
  m.name = name;
  if (name == "single") {
    m.mode = rt::ExecutionMode::kSingle;
    return Result::success(m);
  }
  if (name == "double") {
    m.mode = rt::ExecutionMode::kDouble;
    return Result::success(m);
  }
  if (name.rfind("slip-", 0) == 0 && name.size() >= 7) {
    const char sync = name[5];
    int tokens = 0;
    if ((sync == 'L' || sync == 'G') && parse_int(name.substr(6), tokens)) {
      m.mode = rt::ExecutionMode::kSlipstream;
      m.slip.type =
          sync == 'L' ? slip::SyncType::kLocal : slip::SyncType::kGlobal;
      m.slip.tokens = tokens;
      return Result::success(m);
    }
  }
  return Result::failure("bad mode '" + name +
                         "' (expected single, double, or slip-<L|G><N>)");
}

std::vector<ModeAxis> paper_modes() {
  return {
      {"single", rt::ExecutionMode::kSingle,
       slip::SlipstreamConfig::disabled()},
      {"double", rt::ExecutionMode::kDouble,
       slip::SlipstreamConfig::disabled()},
      {"slip-L1", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::one_token_local()},
      {"slip-G0", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::zero_token_global()},
  };
}

std::vector<PlanPoint> ExperimentPlan::expand() const {
  std::vector<PlanPoint> points;
  points.reserve(size());
  for (const std::string& app : apps) {
    for (const ModeAxis& mode : modes) {
      for (int ncmp : ncmps) {
        for (const SchedAxis& sched : schedules) {
          for (const ConfigVariant& variant : variants) {
            PlanPoint p;
            p.index = points.size();
            p.app = app;
            p.mode = mode;
            p.ncmp = ncmp;
            p.schedule = sched;
            p.variant = variant.name;
            p.scale = scale;
            if (seed != 0) {
              // Derived from (plan seed, app) only: every mode/size/
              // variant of one app sees identical workload data, so
              // speedups stay comparable across the grid.
              p.workload_seed = mix_string(seed ^ 0x9e3779b97f4a7c15ULL, app);
              if (p.workload_seed == 0) p.workload_seed = 1;
            }

            p.config = base;
            p.config.machine.ncmp = ncmp;
            p.config.runtime.mode = mode.mode;
            p.config.runtime.slip = mode.slip;
            if (schedule_override) {
              p.schedule.clause = schedule_override(p);
            }
            if (variant.mutate) variant.mutate(p.config);

            p.label = app + "/" + mode.name;
            if (ncmps.size() > 1) {
              p.label += "/cmp" + std::to_string(ncmp);
            }
            if (schedules.size() > 1) p.label += "/" + sched.name;
            if (!variant.name.empty()) p.label += "/" + variant.name;

            points.push_back(std::move(p));
          }
        }
      }
    }
  }
  return points;
}

front::ParseResult<ExperimentPlan> parse_plan(const std::string& text) {
  using Result = front::ParseResult<ExperimentPlan>;
  ExperimentPlan plan;
  plan.modes.clear();
  plan.ncmps.clear();
  plan.schedules.clear();
  plan.base.machine.mem = mem::MemParams::scaled_for_benchmarks();

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& msg) {
    return Result::failure("plan line " + std::to_string(lineno) + ": " +
                           msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) return fail("empty value for '" + key + "'");

    if (key == "name") {
      plan.name = value;
    } else if (key == "apps" || key == "app") {
      for (std::string app : split(value, ',')) {
        for (char& c : app) {
          c = static_cast<char>(
              std::toupper(static_cast<unsigned char>(c)));
        }
        plan.apps.push_back(app);
      }
    } else if (key == "modes" || key == "mode") {
      for (const std::string& name : split(value, ',')) {
        const auto parsed = parse_mode_axis(name);
        if (!parsed.ok) return fail(parsed.error);
        plan.modes.push_back(parsed.value);
      }
    } else if (key == "ncmp") {
      for (const std::string& n : split(value, ',')) {
        int ncmp = 0;
        if (!parse_int(n, ncmp) || ncmp < 1) {
          return fail("bad ncmp '" + n + "'");
        }
        plan.ncmps.push_back(ncmp);
      }
    } else if (key == "sched") {
      // Schedules use ';' between axis values because a clause itself
      // may contain ',' (e.g. "dynamic,2").
      for (const std::string& s : split(value, ';')) {
        const auto parsed = front::parse_schedule_clause(s);
        if (!parsed.ok) return fail("bad sched: " + parsed.error);
        plan.schedules.push_back({s, parsed.value});
      }
    } else if (key == "scale") {
      if (value == "bench") {
        plan.scale = 0;
      } else if (value == "tiny") {
        plan.scale = 1;
      } else {
        return fail("bad scale '" + value + "' (expected bench or tiny)");
      }
    } else if (key == "seed") {
      if (!parse_u64(value, plan.seed)) return fail("bad seed");
    } else if (key == "audit") {
      if (value == "on") {
        plan.base.runtime.audit = true;
      } else if (value == "off") {
        plan.base.runtime.audit = false;
      } else {
        return fail("bad audit '" + value + "' (expected on or off)");
      }
    } else if (key == "metrics") {
      if (value == "on") {
        plan.base.runtime.metrics = true;
      } else if (value == "off") {
        plan.base.runtime.metrics = false;
      } else {
        return fail("bad metrics '" + value + "' (expected on or off)");
      }
    } else if (key == "recovery") {
      auto v = split(value, ',');
      if (v[0] == "bench") {
        plan.base.runtime.recovery = rt::RecoveryPolicy::kBench;
      } else if (v[0] == "restart") {
        plan.base.runtime.recovery = rt::RecoveryPolicy::kRestart;
      } else {
        return fail("bad recovery (expected bench or restart)");
      }
      if (v.size() > 1) {
        int budget = 0;
        if (!parse_int(v[1], budget)) return fail("bad recovery budget");
        plan.base.runtime.restart_budget = budget;
      }
    } else if (key == "divergence") {
      int d = 0;
      if (!parse_int(value, d)) return fail("bad divergence");
      plan.base.runtime.divergence_threshold = d;
    } else if (key == "watchdog") {
      std::uint64_t cycles = 0;
      if (!parse_u64(value, cycles)) return fail("bad watchdog");
      plan.base.runtime.watchdog_cycles =
          static_cast<sim::Cycles>(cycles);
    } else if (key == "inject") {
      const auto parsed = slip::parse_fault_plan(value);
      if (!parsed.ok) return fail("bad inject: " + parsed.error);
      plan.base.runtime.fault = parsed.value;
      plan.base.runtime.audit = true;
    } else if (key == "timeline") {
      std::uint64_t interval = 0;
      if (!parse_u64(value, interval) || interval == 0) {
        return fail("bad timeline interval");
      }
      plan.base.timeline_interval = static_cast<sim::Cycles>(interval);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }

  if (plan.apps.empty()) return Result::failure("plan declares no apps");
  if (plan.modes.empty()) return Result::failure("plan declares no modes");
  if (plan.ncmps.empty()) plan.ncmps = {16};
  if (plan.schedules.empty()) plan.schedules = {SchedAxis{}};
  return Result::success(std::move(plan));
}

}  // namespace ssomp::core
