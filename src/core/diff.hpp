// Sweep-aggregate diffing (`slipdiff`, `slipreport --compare`).
//
// Compares two ssomp-sweep-v1 aggregates point-by-point — simulated
// cycle deltas, cycle-account bucket-share shifts, slipstream/metrics
// counter changes, and boolean gate flips (ok/verified/audit/identity) —
// against configurable thresholds, producing a machine-readable
// ssomp-diff-v1 report for CI gating against committed baselines. Host
// wall-clock fields are never compared (docs/PERFORMANCE.md: host
// seconds may change freely; simulated cycles may not).
#pragma once

#include <string>
#include <vector>

#include "trace/jsonv.hpp"

namespace ssomp::core {

/// All thresholds default to zero: any change is a regression, matching
/// the repo's byte-determinism ethos. Raise them to tolerate intended
/// drift (e.g. --cycles-pct 2 => cycles_rel 0.02).
struct DiffThresholds {
  /// Allowed relative simulated-cycle increase per point (0.02 = +2%).
  /// Decreases never regress.
  double cycles_rel = 0.0;
  /// Allowed absolute share increase per non-compute cycle bucket
  /// (0.01 = one percentage point). Compute growing is not a regression;
  /// waits/overhead/idle growing is.
  double share_abs = 0.0;
  /// Allowed relative change per counter, either direction (counters are
  /// determinism signals: an unexpected move in any direction matters).
  double counter_rel = 0.0;
};

/// Verdict for one plan point (matched across the two aggregates by
/// label).
struct PointDiff {
  std::string label;
  bool base_only = false;  // point missing from the candidate
  bool cand_only = false;  // point missing from the baseline
  double base_cycles = 0.0;
  double cand_cycles = 0.0;
  double cycles_rel = 0.0;  // (cand - base) / base
  bool regressed = false;
  /// One line per threshold exceedance / gate flip, human-readable.
  std::vector<std::string> notes;
};

struct SweepDiff {
  bool ok = false;    // both inputs loaded and schema-valid
  std::string error;  // load/validation failure when !ok
  std::string base_plan;
  std::string cand_plan;
  DiffThresholds thresholds;
  std::vector<PointDiff> points;
  int regressions = 0;

  [[nodiscard]] bool clean() const { return ok && regressions == 0; }
};

/// A parsed-and-validated ssomp-sweep-v1 document.
struct LoadedSweep {
  bool ok = false;
  std::string error;
  trace::JsonValue root;
};

/// Strict schema validation: object root, schema == "ssomp-sweep-v1",
/// plan object, points array of well-formed point objects. Returns an
/// empty string when valid, else a description of the first violation.
[[nodiscard]] std::string validate_sweep(const trace::JsonValue& root);

/// Parses and validates aggregate text; `origin` names the source in
/// error messages (a file path, "stdin", ...).
[[nodiscard]] LoadedSweep load_sweep_text(const std::string& text,
                                          const std::string& origin);

/// Reads, parses and validates an aggregate file.
[[nodiscard]] LoadedSweep load_sweep_file(const std::string& path);

/// Diffs two validated aggregates.
[[nodiscard]] SweepDiff diff_sweeps(const trace::JsonValue& base,
                                    const trace::JsonValue& cand,
                                    const DiffThresholds& t = {});

/// Convenience: load both files, then diff. I/O, parse and schema
/// failures come back as !ok with `error` set.
[[nodiscard]] SweepDiff diff_sweep_files(const std::string& base_path,
                                         const std::string& cand_path,
                                         const DiffThresholds& t = {});

/// Machine-readable report (schema "ssomp-diff-v1"; docs/SWEEPS.md).
[[nodiscard]] std::string diff_to_json(const SweepDiff& d);

/// Human-readable table plus per-point notes.
[[nodiscard]] std::string diff_to_text(const SweepDiff& d);

}  // namespace ssomp::core
