#include "core/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace ssomp::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs one item, converting any exception into an error record. Aborts
/// (SSOMP_CHECK failures) are simulator bugs and still kill the process —
/// only recoverable, per-run failures are isolated.
RunRecord execute(const BatchItem& item) {
  RunRecord rec;
  rec.label = item.label;
  const auto start = std::chrono::steady_clock::now();
  try {
    rec.result = run_experiment(item.config, item.factory);
    rec.ok = true;
  } catch (const std::exception& e) {
    rec.error = e.what();
  } catch (...) {
    rec.error = "unknown exception";
  }
  rec.host_seconds = seconds_since(start);
  return rec;
}

}  // namespace

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SSOMP_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<RunRecord> run_batch(const std::vector<BatchItem>& items,
                                 const SweepOptions& opts) {
  std::vector<RunRecord> records(items.size());
  if (items.empty()) return records;

  const int jobs = std::min<int>(resolve_jobs(opts.jobs),
                                 static_cast<int>(items.size()));

  // Progress accounting is shared across workers; the mutex both guards
  // it and serializes callback invocations, so handlers see a consistent
  // event order without their own locking.
  std::mutex progress_mu;
  std::size_t completed = 0;
  double host_seconds_sum = 0.0;
  const auto notify = [&](ProgressEvent::Kind kind, std::size_t i,
                          const RunRecord* rec) {
    if (!opts.progress) return;
    std::lock_guard<std::mutex> lock(progress_mu);
    ProgressEvent ev;
    ev.kind = kind;
    ev.label = items[i].label;
    ev.index = i;
    ev.total = items.size();
    if (rec != nullptr) {
      ++completed;
      host_seconds_sum += rec->host_seconds;
      ev.host_seconds = rec->host_seconds;
    }
    ev.completed = completed;
    if (completed > 0) {
      const double mean =
          host_seconds_sum / static_cast<double>(completed);
      ev.eta_seconds = mean *
                       static_cast<double>(items.size() - completed) /
                       static_cast<double>(std::max(jobs, 1));
    }
    opts.progress(ev);
  };
  const auto run_one = [&](std::size_t i) {
    notify(ProgressEvent::Kind::kStart, i, nullptr);
    records[i] = execute(items[i]);
    notify(records[i].ok ? ProgressEvent::Kind::kFinish
                         : ProgressEvent::Kind::kFail,
           i, &records[i]);
  };

  if (jobs <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) run_one(i);
    return records;
  }

  // Work-stealing off a shared counter; each worker writes only its own
  // disjoint record slots, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) break;
      run_one(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return records;
}

int SweepRun::failures() const {
  int n = 0;
  for (const RunRecord& r : records) {
    if (!r.ok) ++n;
  }
  return n;
}

const RunRecord* SweepRun::find(const std::string& label) const {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].label == label) return &records[i];
  }
  return nullptr;
}

SweepRun run_sweep(const ExperimentPlan& plan,
                   const WorkloadResolver& resolver,
                   const SweepOptions& opts) {
  SweepRun run;
  run.plan = plan;
  run.points = plan.expand();
  run.jobs = resolve_jobs(opts.jobs);
  if (static_cast<std::size_t>(run.jobs) > run.points.size()) {
    run.jobs = std::max<int>(1, static_cast<int>(run.points.size()));
  }

  std::vector<BatchItem> items;
  items.reserve(run.points.size());
  for (const PlanPoint& point : run.points) {
    BatchItem item;
    item.label = point.label;
    item.config = point.config;
    // Resolve lazily on the worker thread so a throwing resolver is
    // isolated to its own record like any other per-run failure.
    item.factory = [&resolver, &point](rt::Runtime& rt) {
      return resolver(point)(rt);
    };
    items.push_back(std::move(item));
  }

  const auto start = std::chrono::steady_clock::now();
  run.records = run_batch(
      items, SweepOptions{.jobs = run.jobs, .progress = opts.progress});
  run.host_seconds_total = seconds_since(start);
  return run;
}

bool parse_sweep_flag(int argc, char** argv, int& i, SweepCli& cli) {
  const std::string arg = argv[i];
  if (arg == "--jobs" && i + 1 < argc) {
    cli.jobs = std::atoi(argv[++i]);
    return true;
  }
  if (arg == "--out" && i + 1 < argc) {
    cli.out = argv[++i];
    return true;
  }
  if (arg == "--no-host-seconds") {
    cli.host_seconds = false;
    return true;
  }
  if (arg == "--progress") {
    cli.progress = true;
    return true;
  }
  return false;
}

}  // namespace ssomp::core
