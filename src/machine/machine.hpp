// The simulated CMP-based DSM multiprocessor (paper §5).
//
// A Machine is N CMP nodes, each with two processors, a shared L2, a slice
// of globally-shared memory, and the per-CMP slipstream hardware (token
// semaphore register pair + scheduling mailbox). Composes the simulation
// engine, the memory system and the slipstream pairs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/addrspace.hpp"
#include "mem/memsys.hpp"
#include "mem/params.hpp"
#include "sim/engine.hpp"
#include "slip/pair.hpp"

namespace ssomp::machine {

struct MachineConfig {
  int ncmp = 16;          // paper: "composed of 16 CMPs"
  int cpus_per_cmp = 2;   // dual-processor CMP nodes
  mem::MemParams mem{};

  [[nodiscard]] int ncpus() const { return ncmp * cpus_per_cmp; }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] int ncmp() const { return config_.ncmp; }
  [[nodiscard]] int ncpus() const { return config_.ncpus(); }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] mem::MemorySystem& mem() { return *mem_; }
  [[nodiscard]] mem::AddrSpace& addr_space() { return addr_space_; }

  [[nodiscard]] sim::SimCpu& cpu(sim::CpuId id) { return engine_.cpu(id); }
  [[nodiscard]] sim::NodeId node_of(sim::CpuId id) const {
    return id / config_.cpus_per_cmp;
  }

  /// R-stream processor of a CMP (first CPU), A-stream processor (second).
  [[nodiscard]] sim::CpuId r_cpu_of(sim::NodeId node) const {
    return node * config_.cpus_per_cmp;
  }
  [[nodiscard]] sim::CpuId a_cpu_of(sim::NodeId node) const {
    return node * config_.cpus_per_cmp + 1;
  }

  [[nodiscard]] slip::SlipPair& pair(sim::NodeId node) {
    return *pairs_.at(static_cast<std::size_t>(node));
  }

 private:
  MachineConfig config_;
  sim::Engine engine_;
  mem::AddrSpace addr_space_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::vector<std::unique_ptr<slip::SlipPair>> pairs_;
};

}  // namespace ssomp::machine
