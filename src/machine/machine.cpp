#include "machine/machine.hpp"

namespace ssomp::machine {

Machine::Machine(const MachineConfig& config) : config_(config) {
  SSOMP_CHECK(config.ncmp >= 1 && config.ncmp <= 64);
  SSOMP_CHECK(config.cpus_per_cmp == 2);  // slipstream targets dual-CPU CMPs
  for (int n = 0; n < config.ncmp; ++n) {
    for (int c = 0; c < config.cpus_per_cmp; ++c) {
      engine_.add_cpu("n" + std::to_string(n) + ".p" + std::to_string(c));
    }
  }
  mem_ = std::make_unique<mem::MemorySystem>(config.mem, config.ncmp,
                                             config.cpus_per_cmp);
  for (int n = 0; n < config.ncmp; ++n) {
    // One cache line per mailbox so pairs never false-share.
    const sim::Addr mailbox =
        addr_space_.alloc_runtime(config.mem.line_bytes);
    pairs_.push_back(std::make_unique<slip::SlipPair>(
        r_cpu_of(n), a_cpu_of(n), config.mem.token_register_cycles, mailbox));
  }
}

}  // namespace ssomp::machine
