// Slipstream execution-mode configuration (paper §3.3).
//
// The directive is
//     !$OMP SLIPSTREAM([type] [, tokens])
// with type one of GLOBAL_SYNC, LOCAL_SYNC or RUNTIME_SYNC, and `tokens`
// the initial token count of the A/R synchronization semaphore (default 0).
// RUNTIME_SYNC defers the choice to the OMP_SLIPSTREAM environment
// variable, which accepts the same arguments plus the extra type NONE that
// disables slipstream entirely.
#pragma once

#include <cstdint>
#include <string_view>

namespace ssomp::slip {

enum class SyncType : std::uint8_t {
  kNone = 0,    // slipstream disabled (env-only value)
  kGlobal,      // R-stream inserts the token when *exiting* a barrier
  kLocal,       // R-stream inserts the token when *entering* a barrier
  kRuntime,     // directive defers to the OMP_SLIPSTREAM environment value
};

[[nodiscard]] constexpr std::string_view to_string(SyncType t) {
  switch (t) {
    case SyncType::kNone: return "NONE";
    case SyncType::kGlobal: return "GLOBAL_SYNC";
    case SyncType::kLocal: return "LOCAL_SYNC";
    case SyncType::kRuntime: return "RUNTIME_SYNC";
  }
  return "?";
}

/// Policies for constructs where the paper describes a recommended default
/// but leaves room ("it may be advisable..."). Exposed for the ablation
/// benchmarks.
struct ConstructPolicies {
  bool a_executes_critical = false;  // default: A-stream skips criticals
  bool a_executes_atomic = true;     // default: A executes atomics (as
                                     // exclusive prefetches)
  bool a_stores_as_prefetch = true;  // default: convert A shared stores to
                                     // exclusive prefetches when close
                                     // enough to R's session (else drop)
  int conversion_window = 1;         // max sessions of A-lead at which a
                                     // store still converts (0 = strictly
                                     // the same session)
  bool self_invalidation = false;    // coherence optimization (§2, §3.2.1):
                                     // the A-stream's exclusive-prefetch
                                     // stream sends self-invalidation
                                     // hints to remote sharers, taking the
                                     // invalidation fan-out off the
                                     // R-stream's store critical path
};

struct SlipstreamConfig {
  SyncType type = SyncType::kGlobal;  // paper's implementation default
  int tokens = 0;                     // initial token count (default 0)
  ConstructPolicies policies{};

  /// Divergence handling: the R-stream flags its A-stream as diverged when
  /// the A-stream lags by more than this many barriers (0 disables).
  int divergence_threshold = 0;

  [[nodiscard]] bool enabled() const { return type != SyncType::kNone; }

  /// The two configurations evaluated in the paper's Figure 2.
  [[nodiscard]] static SlipstreamConfig one_token_local() {
    return {.type = SyncType::kLocal, .tokens = 1};
  }
  [[nodiscard]] static SlipstreamConfig zero_token_global() {
    return {.type = SyncType::kGlobal, .tokens = 0};
  }
  [[nodiscard]] static SlipstreamConfig disabled() {
    return {.type = SyncType::kNone, .tokens = 0};
  }
};

[[nodiscard]] constexpr bool operator==(const SlipstreamConfig& a,
                                        const SlipstreamConfig& b) {
  return a.type == b.type && a.tokens == b.tokens;
}

}  // namespace ssomp::slip
