// Simulated-time watchdog for slipstream protocol waits.
//
// Every blocking wait of the protocol — the A-stream's barrier-token and
// syscall-token consumes, the team barrier, and the injected hang park —
// can arm a timer before parking. If the wait outlives the configured
// timeout, the timer fires, records a structured WatchdogReport, and
// invokes the runtime's rescue callback, which converts the hang into a
// diagnosed recovery instead of a wedged simulation. A wait that
// completes in time disarms its timer, which is then discarded without
// advancing simulated time (sim::Engine timer events), so a clean run
// with the watchdog enabled is cycle-identical to one without it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace ssomp::slip {

/// Which wait the watchdog was guarding when it tripped.
enum class WatchSite : std::uint8_t {
  kBarrierToken = 0,  // A-stream blocked in a barrier-token consume
  kSyscallToken,      // A-stream blocked in a syscall-token consume
  kTeamBarrier,       // member blocked in the team sense barrier
  kHangPark,          // injected kAStreamHang park
};

[[nodiscard]] constexpr std::string_view to_string(WatchSite s) {
  switch (s) {
    case WatchSite::kBarrierToken: return "barrier-token";
    case WatchSite::kSyscallToken: return "syscall-token";
    case WatchSite::kTeamBarrier: return "team-barrier";
    case WatchSite::kHangPark: return "hang-park";
  }
  return "?";
}

/// One diagnosed no-progress hang.
struct WatchdogReport {
  WatchSite site = WatchSite::kBarrierToken;
  int node = -1;
  int cpu = -1;
  sim::Cycles wait_start = 0;
  sim::Cycles fired_at = 0;
  sim::Cycles timeout = 0;

  /// One line: "watchdog: cpu 3 (node 1) stuck in barrier-token wait
  /// since cycle N, timed out after T cycles".
  [[nodiscard]] std::string describe() const;
};

class Watchdog {
 public:
  /// Called when a timer expires with its wait still outstanding. The
  /// callback runs in engine-event context (no fiber current) and is
  /// expected to kick the stuck wait loose (poison / wake).
  using RescueFn = std::function<void(const WatchdogReport&)>;

  /// Arms the watchdog. `timeout` of 0 disables it: arm() returns a null
  /// handle and no timers are ever scheduled.
  void configure(sim::Engine& engine, sim::Cycles timeout, RescueFn rescue) {
    engine_ = &engine;
    timeout_ = timeout;
    rescue_ = std::move(rescue);
  }

  [[nodiscard]] bool enabled() const {
    return engine_ != nullptr && timeout_ > 0;
  }
  [[nodiscard]] sim::Cycles timeout() const { return timeout_; }

  /// Starts guarding a wait that begins now. Returns the disarm handle
  /// (call `handle.cancel()` when the wait completes), or an empty handle
  /// when the watchdog is disabled (cancelling an empty handle is a
  /// no-op, so callers need no null check).
  sim::Engine::CancelHandle arm(WatchSite site, int node, int cpu);

  [[nodiscard]] std::uint64_t trips() const { return reports_.size(); }
  [[nodiscard]] const std::vector<WatchdogReport>& reports() const {
    return reports_;
  }

 private:
  sim::Engine* engine_ = nullptr;
  sim::Cycles timeout_ = 0;
  RescueFn rescue_;
  std::vector<WatchdogReport> reports_;
};

}  // namespace ssomp::slip
