#include "slip/audit.hpp"

#include <sstream>

namespace ssomp::slip {

InvariantAuditor::InvariantAuditor(bool enabled, int ncmp)
    : enabled_(enabled),
      base_(static_cast<std::size_t>(ncmp)),
      recovery_outstanding_(static_cast<std::size_t>(ncmp), false) {}

void InvariantAuditor::expect(bool condition, int node, const char* when,
                              const std::string& detail) {
  ++checks_;
  if (condition) return;
  std::ostringstream msg;
  msg << "node " << node << " [" << when << "]: " << detail;
  violations_.push_back(msg.str());
}

void InvariantAuditor::on_region_reset(int node, const SlipPair& p,
                                       const FaultInjector& inj) {
  if (!enabled_) return;
  Baseline& b = base_[static_cast<std::size_t>(node)];
  b.valid = true;
  b.barrier_inserted = p.barrier_sem().total_inserted();
  b.barrier_consumed = p.barrier_sem().total_consumed();
  b.syscall_inserted = p.syscall_sem().total_inserted();
  b.syscall_consumed = p.syscall_sem().total_consumed();
  b.mailbox_pushed = p.mailbox_pushed();
  b.mailbox_popped = p.mailbox_popped();
  b.mailbox_dropped = p.mailbox_dropped();
  b.mailbox_cleared = p.mailbox_cleared();
  b.barrier_drained = p.barrier_sem().total_drained();
  b.syscall_drained = p.syscall_sem().total_drained();
  b.restart_skipped = p.restart_skipped_barriers();
  b.initial_tokens = p.initial_tokens();
  b.ledger = inj.ledger(node);
  // A request that was still outstanding when its region was torn down
  // lapsed: the join made it moot. Account it explicitly (the old code
  // cleared the flag silently, hiding the only audit-visible evidence
  // that a request was never acknowledged).
  if (recovery_outstanding_[static_cast<std::size_t>(node)]) ++lapsed_;
  recovery_outstanding_[static_cast<std::size_t>(node)] = false;
  // The reset itself must leave the pair quiescent.
  expect(p.mailbox_size() == 0, node, "region-reset",
         "mailbox not cleared by reset_for_region");
  expect(!p.barrier_sem().has_waiter() && !p.syscall_sem().has_waiter(),
         node, "region-reset", "semaphore re-initialized with a waiter");
}

void InvariantAuditor::check_pair(int node, const SlipPair& p,
                                  const FaultInjector& inj, const char* when) {
  const Baseline& b = base_[static_cast<std::size_t>(node)];
  if (!b.valid) return;

  const auto d = [](std::uint64_t now, std::uint64_t base) {
    return static_cast<std::int64_t>(now - base);
  };
  const std::int64_t bar_ins = d(p.barrier_sem().total_inserted(),
                                 b.barrier_inserted);
  const std::int64_t bar_cons = d(p.barrier_sem().total_consumed(),
                                  b.barrier_consumed);
  const std::int64_t sys_ins = d(p.syscall_sem().total_inserted(),
                                 b.syscall_inserted);
  const std::int64_t sys_cons = d(p.syscall_sem().total_consumed(),
                                  b.syscall_consumed);
  const FaultInjector::NodeLedger& led = inj.ledger(node);
  const std::int64_t suppressed =
      d(led.suppressed_inserts, b.ledger.suppressed_inserts);
  const std::int64_t extra_ins = d(led.extra_inserts, b.ledger.extra_inserts);
  const std::int64_t extra_cons =
      d(led.extra_consumes, b.ledger.extra_consumes);
  const std::int64_t bar_drained =
      d(p.barrier_sem().total_drained(), b.barrier_drained);
  const std::int64_t sys_drained =
      d(p.syscall_sem().total_drained(), b.syscall_drained);
  const std::int64_t restart_skipped =
      d(p.restart_skipped_barriers(), b.restart_skipped);

  const auto fmt = [](std::int64_t a, std::int64_t c) {
    std::ostringstream s;
    s << " (expected " << a << ", got " << c << ")";
    return s.str();
  };

  // Token conservation: count == initial + inserted − consumed − drained,
  // per semaphore (the syscall semaphore always starts at zero; drains
  // come from the restart/reconcile routines resetting the registers).
  const std::int64_t bar_count =
      b.initial_tokens + bar_ins - bar_cons - bar_drained;
  expect(p.barrier_sem().count() == bar_count, node, when,
         "barrier-token conservation violated" +
             fmt(bar_count, p.barrier_sem().count()));
  const std::int64_t sys_count = sys_ins - sys_cons - sys_drained;
  expect(p.syscall_sem().count() == sys_count, node, when,
         "syscall-token conservation violated" +
             fmt(sys_count, p.syscall_sem().count()));
  expect(p.barrier_sem().count() >= 0 && p.syscall_sem().count() >= 0, node,
         when, "negative token count");

  // Insert/visit agreement: one token per R barrier visit, modulo
  // injected starvation / surplus.
  const auto r_vis = static_cast<std::int64_t>(p.r_barriers());
  expect(bar_ins == r_vis - suppressed + extra_ins, node, when,
         "R-stream inserts disagree with its barrier visits" +
             fmt(r_vis - suppressed + extra_ins, bar_ins));

  // Consume/visit agreement: one successful consume per A barrier visit,
  // modulo injected duplicates (a skipped visit skips both) and barrier
  // episodes jumped over by a restart resync (counted as visits, no
  // consume).
  const auto a_vis = static_cast<std::int64_t>(p.a_barriers());
  expect(bar_cons == a_vis - restart_skipped + extra_cons, node, when,
         "A-stream consumes disagree with its barrier visits" +
             fmt(a_vis - restart_skipped + extra_cons, bar_cons));

  // The A-stream can never be ahead past the token allowance.
  expect(a_vis - restart_skipped + extra_cons <=
             b.initial_tokens + bar_ins - bar_drained,
         node, when, "A-stream ran past the token allowance");

  // Mailbox conservation and coverage: the queue holds exactly what was
  // pushed and not yet popped, depth-dropped, or cleared by a recovery
  // reconcile, and every queued decision is backed by an unconsumed
  // syscall token.
  const std::int64_t mb_expect =
      d(p.mailbox_pushed(), b.mailbox_pushed) -
      d(p.mailbox_popped(), b.mailbox_popped) -
      d(p.mailbox_dropped(), b.mailbox_dropped) -
      d(p.mailbox_cleared(), b.mailbox_cleared);
  const auto mb_size = static_cast<std::int64_t>(p.mailbox_size());
  expect(mb_size == mb_expect, node, when,
         "mailbox push/pop/drop conservation violated" +
             fmt(mb_expect, mb_size));
  expect(mb_size <= p.syscall_sem().count(), node, when,
         "queued scheduling decisions exceed outstanding syscall tokens" +
             fmt(p.syscall_sem().count(), mb_size));
}

void InvariantAuditor::on_region_end(int node, const SlipPair& p,
                                     const FaultInjector& inj) {
  if (!enabled_) return;
  check_pair(node, p, inj, "region-end");
  // The join completed, so no member can still be parked on a semaphore.
  expect(!p.barrier_sem().has_waiter() && !p.syscall_sem().has_waiter(),
         node, "region-end", "semaphore waiter survived the region join");
}

void InvariantAuditor::on_recovery_requested(int node) {
  if (!enabled_) return;
  expect(!recovery_outstanding_[static_cast<std::size_t>(node)], node,
         "recovery", "second recovery raised before acknowledgement");
  recovery_outstanding_[static_cast<std::size_t>(node)] = true;
}

void InvariantAuditor::on_recovery_acked(int node) {
  if (!enabled_) return;
  expect(recovery_outstanding_[static_cast<std::size_t>(node)], node,
         "recovery", "acknowledgement without a pending recovery request");
  recovery_outstanding_[static_cast<std::size_t>(node)] = false;
}

void InvariantAuditor::on_recovery_acked(int node, const SlipPair& p) {
  on_recovery_acked(node);
  if (!enabled_) return;
  expect(p.syscall_sem().count() == 0, node, "recovery-ack",
         "syscall token survived the ack-time reconcile");
  expect(p.mailbox_size() == 0, node, "recovery-ack",
         "stale forwarded decision survived the ack-time reconcile");
}

void InvariantAuditor::on_run_end(int node, const SlipPair& p,
                                  const FaultInjector& inj) {
  if (!enabled_) return;
  // Re-validate the final region's accounting after the divergence
  // backstop drained (poisons change no counters), then confirm the
  // machine is quiescent.
  check_pair(node, p, inj, "run-end");
  expect(!p.barrier_sem().has_waiter() && !p.syscall_sem().has_waiter(),
         node, "run-end", "semaphore waiter survived the run");
}

std::string InvariantAuditor::summary() const {
  std::ostringstream s;
  s << "audit: " << checks_ << " checks, " << violations_.size()
    << " violation" << (violations_.size() == 1 ? "" : "s");
  if (!violations_.empty()) s << "; first: " << violations_.front();
  return s.str();
}

}  // namespace ssomp::slip
