// Invariant auditor for the slipstream token-semaphore protocol.
//
// Cross-validates the accounting identities the recovery machinery
// depends on (§2.2, Figure 1), at every parallel-region boundary and at
// end of run:
//
//   * token conservation, per semaphore per region:
//       count == initial + inserted_delta − consumed_delta
//     (and therefore consumed_delta <= initial + inserted_delta, i.e. the
//     A-stream can never hold more sessions than the token allowance);
//   * insert/visit agreement: the R-stream inserts exactly one token per
//     barrier visit, so inserted_delta == r_barriers, compensated by any
//     injected starve/extra faults;
//   * consume/visit agreement: the A-stream notes exactly one barrier per
//     successful consume, so consumed_delta == a_barriers, compensated by
//     injected skip/duplicate faults;
//   * mailbox conservation: queue depth == pushed − popped − dropped
//     deltas, and (clean runs) every queued decision is backed by an
//     unconsumed syscall token;
//   * recovery ordering: an acknowledgement must follow a request, and at
//     most one recovery can be outstanding per pair.
//
// The auditor is always on in debug builds and opt-in in release builds
// (RuntimeOptions::audit / --audit). Violations are collected, not fatal:
// the caller decides whether to abort, fail the experiment, or report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "slip/faultinject.hpp"
#include "slip/pair.hpp"

namespace ssomp::slip {

/// Build-dependent default: every debug build audits; release builds
/// (NDEBUG) opt in via RuntimeOptions::audit or --audit.
#ifdef NDEBUG
inline constexpr bool kAuditDefaultOn = false;
#else
inline constexpr bool kAuditDefaultOn = true;
#endif

class InvariantAuditor {
 public:
  InvariantAuditor() : InvariantAuditor(false, 1) {}
  InvariantAuditor(bool enabled, int ncmp);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Called after SlipPair::reset_for_region: snapshots the cumulative
  /// semaphore/mailbox/ledger counters the region-end check diffs against.
  void on_region_reset(int node, const SlipPair& p, const FaultInjector& inj);

  /// Called after the region join completes (all members finished).
  void on_region_end(int node, const SlipPair& p, const FaultInjector& inj);

  /// Recovery-ordering hooks. `on_recovery_requested` is called only for
  /// a newly raised request (not idempotent re-requests).
  void on_recovery_requested(int node);
  void on_recovery_acked(int node);

  /// Ack-time reconcile invariant: SlipPair::ack_recovery just drained the
  /// syscall semaphore and cleared the mailbox, so immediately after it
  /// there can be no orphaned syscall token and no stale forwarded
  /// decision — the two sides of the forwarding channel restart in sync.
  void on_recovery_acked(int node, const SlipPair& p);

  /// Whole-run finale, after the divergence backstop has drained.
  void on_run_end(int node, const SlipPair& p, const FaultInjector& inj);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_performed() const { return checks_; }

  /// Recovery requests still outstanding when their region was reset.
  /// A request can legitimately land after the A-stream's last protocol
  /// operation of the region (the divergence still happened; the region
  /// join makes it moot), but it must be accounted, not silently
  /// discarded — a rising lapse count in a run that should recover
  /// promptly is a protocol smell the model checker and reports key off.
  [[nodiscard]] std::uint64_t lapsed_recoveries() const { return lapsed_; }

  /// One-line summary ("audit: 120 checks, 0 violations" or the first
  /// violation text).
  [[nodiscard]] std::string summary() const;

 private:
  struct Baseline {
    bool valid = false;
    std::uint64_t barrier_inserted = 0;
    std::uint64_t barrier_consumed = 0;
    std::uint64_t syscall_inserted = 0;
    std::uint64_t syscall_consumed = 0;
    std::uint64_t mailbox_pushed = 0;
    std::uint64_t mailbox_popped = 0;
    std::uint64_t mailbox_dropped = 0;
    std::uint64_t mailbox_cleared = 0;
    std::uint64_t barrier_drained = 0;
    std::uint64_t syscall_drained = 0;
    std::uint64_t restart_skipped = 0;
    int initial_tokens = 0;
    FaultInjector::NodeLedger ledger;
  };

  void check_pair(int node, const SlipPair& p, const FaultInjector& inj,
                  const char* when);
  void expect(bool condition, int node, const char* when,
              const std::string& detail);

  bool enabled_;
  std::vector<Baseline> base_;
  std::vector<bool> recovery_outstanding_;
  std::vector<std::string> violations_;
  std::uint64_t checks_ = 0;
  std::uint64_t lapsed_ = 0;
};

}  // namespace ssomp::slip
