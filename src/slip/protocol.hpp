// Pure protocol core for the slipstream token/recovery state machine.
//
// Every host-visible transition of TokenSemaphore and SlipPair is factored
// into a side-effect-free-on-failure function over plain-data state structs.
// The live classes (tokens.hpp, pair.hpp) delegate here and keep only the
// simulation concerns around the shared core: cycle charging, fiber
// blocking/waking, watchdog arming and instrumentation. The bounded model
// checker (slip/model/) steps the exact same transition functions over
// explicit states, so the protocol verified by the checker is — by
// construction, not by transcription — the protocol the engine runs.
//
// Transitions that can fail report the violated precondition as a string
// (nullptr means the transition applied). The live wrappers feed that
// through enforce(), which aborts like SSOMP_CHECK; the checker treats a
// non-null return as a reachable-state violation and emits the schedule
// that produced it as a counterexample.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ssomp::slip::proto {

/// Where precondition violations go. By default they abort (same contract
/// as SSOMP_CHECK); tests and the replay harness install a sink to capture
/// the message instead so a violating schedule can be driven through the
/// real objects without killing the process.
using ViolationSink = void (*)(const char* what);

inline ViolationSink& violation_sink() {
  static ViolationSink sink = nullptr;
  return sink;
}

inline void enforce(const char* violation) {
  if (violation == nullptr) return;
  if (violation_sink() != nullptr) {
    violation_sink()(violation);
    return;
  }
  std::fprintf(stderr, "SSOMP protocol violation: %s\n", violation);
  std::abort();
}

/// Test hooks that re-enable historical (pre-fix) protocol behavior so the
/// checker→counterexample→replay pipeline can demonstrate, in CI, that it
/// still catches the bugs this code used to have. Never set outside tests.
struct LegacyBugs {
  /// Pre-fix poison semantics: latch the poison flag only for a *parked*
  /// waiter, silently dropping a poison that lands in the
  /// woken-but-not-yet-resumed window (wake() clears blocked_ immediately;
  /// the fiber resumes at a later event).
  bool drop_poison_in_wake_window = false;
};

inline LegacyBugs& legacy_bugs() {
  static LegacyBugs bugs;
  return bugs;
}

// ---------------------------------------------------------------------------
// Token semaphore core (paper §2.2, Figure 1).
// ---------------------------------------------------------------------------

struct TokenState {
  int count = 0;
  bool poisoned = false;
  bool waiter = false;  // a consumer is registered (parked or woken-pending)
  std::uint64_t inserted = 0;
  std::uint64_t consumed = 0;
  std::uint64_t drained = 0;

  friend bool operator==(const TokenState&, const TokenState&) = default;
};

/// (Re)initialization; legal only with no registered waiter. A pending
/// poison can only exist while its waiter is registered, so by the time
/// re-initialization is legal the flag must already be clear — report
/// instead of silently masking a lost poison.
[[nodiscard]] inline const char* token_initialize(TokenState& s, int tokens) {
  if (s.waiter) return "token register re-initialized under a registered waiter";
  if (s.poisoned) return "token register re-initialized with a pending poison";
  if (tokens < 0) return "token register initialized to a negative count";
  s.count = tokens;
  return nullptr;
}

enum class Acquire : std::uint8_t {
  kTaken = 0,     // token consumed immediately
  kMustWait = 1,  // no token; caller registered as the waiter and must park
};

/// First half of a blocking consume: take a token or register as waiter.
[[nodiscard]] inline const char* token_consume_begin(TokenState& s,
                                                     Acquire& out) {
  if (s.count == 0) {
    // One A-stream per semaphore.
    if (s.waiter) return "second waiter registered on a token semaphore";
    s.waiter = true;
    out = Acquire::kMustWait;
    return nullptr;
  }
  --s.count;
  ++s.consumed;
  out = Acquire::kTaken;
  return nullptr;
}

enum class Resume : std::uint8_t {
  kToken = 0,     // woken by an insert; token consumed
  kPoisoned = 1,  // woken by a poison; no token consumed, flag cleared
};

/// Second half of a blocking consume, applied when the parked waiter
/// resumes. The poison flag wins over a token that arrived in the same
/// window (the consume reports failure; the token stays for later).
[[nodiscard]] inline const char* token_consume_resume(TokenState& s,
                                                      Resume& out) {
  if (!s.waiter) return "semaphore wait resumed with no registered waiter";
  s.waiter = false;
  if (s.poisoned) {
    s.poisoned = false;
    out = Resume::kPoisoned;
    return nullptr;
  }
  if (s.count <= 0) return "waiter resumed with neither token nor poison";
  --s.count;
  ++s.consumed;
  out = Resume::kToken;
  return nullptr;
}

/// Non-blocking consume; true when a token was taken.
[[nodiscard]] inline bool token_try_consume(TokenState& s) {
  if (s.count == 0) return false;
  --s.count;
  ++s.consumed;
  return true;
}

/// Insert one token. Returns true when the caller must wake a parked
/// waiter (`waiter_parked` reports whether the registered waiter's fiber is
/// actually blocked — a woken-but-not-resumed waiter must not be woken
/// twice).
[[nodiscard]] inline bool token_insert(TokenState& s, bool waiter_parked) {
  ++s.count;
  ++s.inserted;
  return s.waiter && waiter_parked;
}

/// Poison the wait: the registered waiter's consume resumes with failure.
/// The flag is latched for any *registered* waiter, not only a parked one:
/// a waiter already woken by insert() but not yet resumed must still
/// observe a poison arriving in that window. Returns true when the caller
/// must wake a parked waiter. No-op without a registered waiter.
[[nodiscard]] inline bool token_poison(TokenState& s, bool waiter_parked) {
  if (!s.waiter) return false;
  if (legacy_bugs().drop_poison_in_wake_window && !waiter_parked) {
    return false;  // historical bug: poison lost in the wake window
  }
  s.poisoned = true;
  return waiter_parked;
}

/// Discard tokens down to `target`, tracking the removal in `drained` so
/// the conservation identity stays exact across restarts.
[[nodiscard]] inline const char* token_drain_to(TokenState& s, int target,
                                                std::uint64_t& removed) {
  removed = 0;
  if (target < 0) return "token register drained to a negative target";
  if (s.count <= target) return nullptr;
  removed = static_cast<std::uint64_t>(s.count - target);
  s.count = target;
  s.drained += removed;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Pair (per-CMP) protocol core.
// ---------------------------------------------------------------------------

/// All protocol-visible SlipPair state except the two TokenStates and the
/// mailbox *values* (the value queue lives in the live class / the model
/// keeps only the control-flow-relevant `last` bits; its length is mirrored
/// here as mb_size).
struct PairState {
  int initial_tokens = 0;
  std::uint64_t r_barriers = 0;
  std::uint64_t a_barriers = 0;
  std::uint64_t recoveries = 0;
  bool recovery_requested = false;
  bool a_recovered_this_region = false;
  bool a_benched = false;
  std::uint64_t restarts_this_region = 0;
  std::uint64_t restarts_total = 0;
  std::uint64_t restart_skipped_barriers = 0;
  std::uint64_t benched_barriers = 0;
  std::uint64_t mb_size = 0;
  std::uint64_t mb_pushed = 0;
  std::uint64_t mb_popped = 0;
  std::uint64_t mb_dropped = 0;
  std::uint64_t mb_cleared = 0;
  /// Snapshot of mb_dropped at the last region reset. A drop only explains
  /// an unpaired syscall token within its own region; comparing against the
  /// cumulative counter would let a region-1 drop excuse protocol breakage
  /// forever after.
  std::uint64_t mb_dropped_at_region_start = 0;

  friend bool operator==(const PairState&, const PairState&) = default;
};

/// Region reset. Clears the mailbox mirror (the live class clears the value
/// queue alongside), re-initializes bookkeeping, and re-baselines the
/// per-region drop counter. Token registers are re-initialized separately
/// via token_initialize so their staleness preconditions are checked.
[[nodiscard]] inline const char* pair_reset_for_region(PairState& p,
                                                       TokenState& barrier,
                                                       TokenState& syscall,
                                                       int initial_tokens) {
  if (const char* v = token_initialize(barrier, initial_tokens)) return v;
  if (const char* v = token_initialize(syscall, 0)) return v;
  p.mb_size = 0;  // entries discarded at a region boundary are not "cleared"
  p.initial_tokens = initial_tokens;
  p.r_barriers = 0;
  p.a_barriers = 0;
  p.recovery_requested = false;
  p.a_recovered_this_region = false;
  p.restarts_this_region = 0;
  p.a_benched = false;
  p.mb_dropped_at_region_start = p.mb_dropped;
  return nullptr;
}

/// Marks a recovery request. Returns true when this is a NEW request (the
/// auditor counts those); repeat requests do not count a new recovery but
/// the caller must still re-poison both semaphores — the first poison can
/// land while the A-stream is not waiting, and a later request must be able
/// to kick a wait entered afterwards.
[[nodiscard]] inline bool pair_request_recovery(PairState& p) {
  if (p.recovery_requested) return false;
  p.recovery_requested = true;
  ++p.recoveries;
  return true;
}

struct AckReconcile {
  std::uint64_t mailbox_cleared = 0;
  std::uint64_t syscall_drained = 0;
};

/// A-side acknowledgment: clears the request, drops the mailbox mirror and
/// drains the syscall register to zero so forwarded decisions and their
/// tokens are created strictly in pairs again.
[[nodiscard]] inline const char* pair_ack_recovery(PairState& p,
                                                   TokenState& syscall,
                                                   AckReconcile& out) {
  p.recovery_requested = false;
  p.a_recovered_this_region = true;
  out.mailbox_cleared = p.mb_size;
  p.mb_cleared += p.mb_size;
  p.mb_size = 0;
  return token_drain_to(syscall, 0, out.syscall_drained);
}

/// A-side restart resync: fast-forward the A-stream's barrier position to
/// the R-stream's episode and reset the barrier register to the initial
/// allowance. `resync` reports the barrier episodes the restarted A-stream
/// must replay without consuming tokens.
[[nodiscard]] inline const char* pair_prepare_restart(PairState& p,
                                                      TokenState& barrier,
                                                      std::uint64_t& resync) {
  ++p.restarts_this_region;
  ++p.restarts_total;
  std::uint64_t removed = 0;
  if (const char* v = token_drain_to(barrier, p.initial_tokens, removed)) {
    return v;
  }
  resync = 0;
  if (p.r_barriers > p.a_barriers) {
    resync = p.r_barriers - p.a_barriers;
    p.restart_skipped_barriers += resync;
    p.a_barriers = p.r_barriers;
  }
  return nullptr;
}

/// Mailbox push with depth clamping. Returns true when the stalest entry
/// was dropped to make room (the caller pops its value queue's front).
[[nodiscard]] inline bool pair_mailbox_push(PairState& p, std::uint64_t depth) {
  bool dropped = false;
  if (p.mb_size >= depth) {
    --p.mb_size;
    ++p.mb_dropped;
    dropped = true;
  }
  ++p.mb_size;
  ++p.mb_pushed;
  return dropped;
}

[[nodiscard]] inline const char* pair_mailbox_pop(PairState& p) {
  if (p.mb_size == 0) return "pop from an empty mailbox";
  --p.mb_size;
  ++p.mb_popped;
  return nullptr;
}

/// Legitimacy test for a syscall token that arrived with no mailbox entry
/// to pair with: only a decision dropped *this region* or a mid-region
/// restart (which drains the channel asymmetrically) explains it. Anything
/// else is a protocol break.
[[nodiscard]] inline bool pair_unpaired_token_explained(const PairState& p) {
  return p.mb_dropped > p.mb_dropped_at_region_start ||
         p.restarts_this_region > 0;
}

}  // namespace ssomp::slip::proto
