// The A/R synchronization token semaphore (paper §2.2, Figure 1).
//
// Modeled as a hardware register shared by the two processors of a CMP:
// every operation charges a small fixed access latency. The A-stream
// consumes a token to skip a barrier and blocks when none is available;
// the R-stream inserts a token at each barrier (on entry for LOCAL_SYNC,
// on exit for GLOBAL_SYNC). The same mechanism, initialized to zero,
// implements the "syscall semaphore" used for I/O synchronization and for
// forwarding dynamic-scheduling decisions to the A-stream.
//
// The protocol-visible state transitions live in slip/protocol.hpp
// (proto::TokenState and the token_* functions); this class wraps them
// with the simulation concerns — cycle charging, fiber parking/waking,
// watchdog arming and instrumentation — so the model checker steps the
// very same transition code the engine runs.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "slip/protocol.hpp"
#include "slip/watchdog.hpp"
#include "trace/tracer.hpp"

namespace ssomp::slip {

class TokenSemaphore {
 public:
  explicit TokenSemaphore(sim::Cycles access_cycles = 3)
      : access_cycles_(access_cycles) {}

  /// Arms protocol observability: every insert/consume/wait on this
  /// semaphore is reported to `inst` as an event on CMP `node`.
  /// `syscall` selects the syscall-semaphore event kinds over the
  /// barrier-token ones. Null detaches (the default: zero overhead).
  void set_instrumentation(trace::Instrumentation* inst, int node,
                           bool syscall) {
    inst_ = inst;
    node_ = node;
    syscall_ = syscall;
  }

  /// Arms hang detection: every blocking consume() on this semaphore is
  /// guarded by a watchdog timer reporting CMP `node`. Null detaches
  /// (the default). The node is carried separately from the
  /// instrumentation node because tracing may be off while the watchdog
  /// is on.
  void set_watchdog(Watchdog* wdog, int node) {
    wdog_ = wdog;
    node_ = node;
  }

  /// (Re)initializes the counter; legal only with no waiter and no
  /// pending poison (see proto::token_initialize).
  void initialize(int tokens) {
    proto::enforce(proto::token_initialize(st_, tokens));
  }

  /// Consumes one token, blocking the calling CPU while the count is zero.
  /// Wait time is attributed to `cat`. Returns false if the wait was
  /// poisoned (recovery requested) instead of satisfied by a token.
  [[nodiscard]] bool consume(sim::SimCpu& cpu, sim::TimeCategory cat) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    proto::Acquire acq = proto::Acquire::kTaken;
    proto::enforce(proto::token_consume_begin(st_, acq));
    if (acq == proto::Acquire::kMustWait) {
      const sim::Cycles wait_start = cpu.engine().now();
      if (inst_ != nullptr) inst_->sem_wait_begin(cpu.id(), node_, syscall_);
      sim::Engine::CancelHandle guard =
          wdog_ != nullptr
              ? wdog_->arm(syscall_ ? WatchSite::kSyscallToken
                                    : WatchSite::kBarrierToken,
                           node_, cpu.id())
              : sim::Engine::CancelHandle{};
      waiter_ = &cpu;
      cpu.block(cat);
      waiter_ = nullptr;
      guard.cancel();  // disarm; dropped timelessly
      proto::Resume res = proto::Resume::kToken;
      proto::enforce(proto::token_consume_resume(st_, res));
      const bool poisoned = res == proto::Resume::kPoisoned;
      if (inst_ != nullptr) {
        inst_->sem_wait_end(cpu.id(), node_, syscall_,
                            cpu.engine().now() - wait_start, poisoned);
      }
      if (poisoned) return false;
    }
    if (inst_ != nullptr) {
      inst_->sem_consume(cpu.id(), node_, syscall_, st_.count);
    }
    return true;
  }

  /// Non-blocking variant; returns true when a token was taken.
  [[nodiscard]] bool try_consume(sim::SimCpu& cpu) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    if (!proto::token_try_consume(st_)) return false;
    if (inst_ != nullptr) {
      inst_->sem_consume(cpu.id(), node_, syscall_, st_.count);
    }
    return true;
  }

  /// Inserts one token and wakes a blocked consumer if any.
  void insert(sim::SimCpu& cpu) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    const bool wake =
        proto::token_insert(st_, waiter_ != nullptr && waiter_->blocked());
    if (inst_ != nullptr) {
      inst_->sem_insert(cpu.id(), node_, syscall_, st_.count);
    }
    if (wake) waiter_->wake(access_cycles_);
  }

  /// Reads the counter (the R-stream's divergence probe).
  [[nodiscard]] int read_count(sim::SimCpu& cpu) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    return st_.count;
  }

  /// Wakes a blocked consumer *without* providing a token; its consume()
  /// returns false. Used to kick a waiting A-stream into recovery. The
  /// latching rules (registered vs parked waiter) live in
  /// proto::token_poison.
  void poison(sim::SimCpu& waker) {
    const bool wake =
        proto::token_poison(st_, waiter_ != nullptr && waiter_->blocked());
    if (wake) waiter_->wake(access_cycles_);
    (void)waker;
  }

  /// Discards tokens down to `target` (the recovery routine resetting the
  /// hardware register to a known state — see SlipPair::ack_recovery and
  /// prepare_restart). Returns the number of tokens removed; the removal
  /// is tracked in total_drained() so the auditor's conservation identity
  /// stays exact across restarts. No-op when count <= target.
  std::uint64_t drain_to(int target) {
    std::uint64_t removed = 0;
    proto::enforce(proto::token_drain_to(st_, target, removed));
    return removed;
  }

  [[nodiscard]] int count() const { return st_.count; }
  [[nodiscard]] bool has_waiter() const { return st_.waiter; }
  [[nodiscard]] std::uint64_t total_inserted() const { return st_.inserted; }
  [[nodiscard]] std::uint64_t total_consumed() const { return st_.consumed; }
  [[nodiscard]] std::uint64_t total_drained() const { return st_.drained; }

  /// Protocol-core view, for the model-replay harness's lockstep
  /// state comparison.
  [[nodiscard]] const proto::TokenState& state() const { return st_; }
  [[nodiscard]] proto::TokenState& state() { return st_; }

 private:
  sim::Cycles access_cycles_;
  proto::TokenState st_;
  sim::SimCpu* waiter_ = nullptr;  // wake target while st_.waiter is set
  trace::Instrumentation* inst_ = nullptr;
  int node_ = -1;
  bool syscall_ = false;
  Watchdog* wdog_ = nullptr;
};

}  // namespace ssomp::slip
