// The A/R synchronization token semaphore (paper §2.2, Figure 1).
//
// Modeled as a hardware register shared by the two processors of a CMP:
// every operation charges a small fixed access latency. The A-stream
// consumes a token to skip a barrier and blocks when none is available;
// the R-stream inserts a token at each barrier (on entry for LOCAL_SYNC,
// on exit for GLOBAL_SYNC). The same mechanism, initialized to zero,
// implements the "syscall semaphore" used for I/O synchronization and for
// forwarding dynamic-scheduling decisions to the A-stream.
#pragma once

#include <cstdint>

#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "slip/watchdog.hpp"
#include "trace/tracer.hpp"

namespace ssomp::slip {

class TokenSemaphore {
 public:
  explicit TokenSemaphore(sim::Cycles access_cycles = 3)
      : access_cycles_(access_cycles) {}

  /// Arms protocol observability: every insert/consume/wait on this
  /// semaphore is reported to `inst` as an event on CMP `node`.
  /// `syscall` selects the syscall-semaphore event kinds over the
  /// barrier-token ones. Null detaches (the default: zero overhead).
  void set_instrumentation(trace::Instrumentation* inst, int node,
                           bool syscall) {
    inst_ = inst;
    node_ = node;
    syscall_ = syscall;
  }

  /// Arms hang detection: every blocking consume() on this semaphore is
  /// guarded by a watchdog timer reporting CMP `node`. Null detaches
  /// (the default). The node is carried separately from the
  /// instrumentation node because tracing may be off while the watchdog
  /// is on.
  void set_watchdog(Watchdog* wdog, int node) {
    wdog_ = wdog;
    node_ = node;
  }

  /// (Re)initializes the counter; legal only with no waiter. A pending
  /// poison can only exist while its waiter is still registered (the
  /// waiter clears the flag when it resumes), so by the time re-
  /// initialization is legal the flag must already be clear — assert
  /// that instead of silently masking a lost poison.
  void initialize(int tokens) {
    SSOMP_CHECK(waiter_ == nullptr);
    SSOMP_CHECK(!poisoned_);
    SSOMP_CHECK(tokens >= 0);
    count_ = tokens;
  }

  /// Consumes one token, blocking the calling CPU while the count is zero.
  /// Wait time is attributed to `cat`. Returns false if the wait was
  /// poisoned (recovery requested) instead of satisfied by a token.
  [[nodiscard]] bool consume(sim::SimCpu& cpu, sim::TimeCategory cat) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    if (count_ == 0) {
      SSOMP_CHECK(waiter_ == nullptr);  // one A-stream per semaphore
      const sim::Cycles wait_start = cpu.engine().now();
      if (inst_ != nullptr) inst_->sem_wait_begin(cpu.id(), node_, syscall_);
      sim::Engine::CancelHandle guard =
          wdog_ != nullptr
              ? wdog_->arm(syscall_ ? WatchSite::kSyscallToken
                                    : WatchSite::kBarrierToken,
                           node_, cpu.id())
              : sim::Engine::CancelHandle{};
      waiter_ = &cpu;
      cpu.block(cat);
      waiter_ = nullptr;
      guard.cancel();  // disarm; dropped timelessly
      const bool poisoned = poisoned_;
      if (inst_ != nullptr) {
        inst_->sem_wait_end(cpu.id(), node_, syscall_,
                            cpu.engine().now() - wait_start, poisoned);
      }
      if (poisoned) {
        poisoned_ = false;
        return false;
      }
      SSOMP_CHECK(count_ > 0);
    }
    --count_;
    ++consumed_;
    if (inst_ != nullptr) inst_->sem_consume(cpu.id(), node_, syscall_, count_);
    return true;
  }

  /// Non-blocking variant; returns true when a token was taken.
  [[nodiscard]] bool try_consume(sim::SimCpu& cpu) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    if (count_ == 0) return false;
    --count_;
    ++consumed_;
    if (inst_ != nullptr) inst_->sem_consume(cpu.id(), node_, syscall_, count_);
    return true;
  }

  /// Inserts one token and wakes a blocked consumer if any.
  void insert(sim::SimCpu& cpu) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    ++count_;
    ++inserted_;
    if (inst_ != nullptr) inst_->sem_insert(cpu.id(), node_, syscall_, count_);
    if (waiter_ != nullptr && waiter_->blocked()) {
      waiter_->wake(access_cycles_);
    }
  }

  /// Reads the counter (the R-stream's divergence probe).
  [[nodiscard]] int read_count(sim::SimCpu& cpu) {
    cpu.consume(access_cycles_, sim::TimeCategory::kBusy);
    return count_;
  }

  /// Wakes a blocked consumer *without* providing a token; its consume()
  /// returns false. Used to kick a waiting A-stream into recovery.
  ///
  /// The flag is latched for any *registered* waiter, not only a blocked
  /// one: a waiter that insert() has already woken but that has not yet
  /// resumed (wake() clears blocked_ immediately; the fiber resumes at a
  /// later event) must still observe a poison arriving in that window —
  /// otherwise the poison is silently lost and a later re-request cannot
  /// reach a waiter that blocked again in the meantime.
  void poison(sim::SimCpu& waker) {
    if (waiter_ == nullptr) return;
    poisoned_ = true;
    if (waiter_->blocked()) waiter_->wake(access_cycles_);
    (void)waker;
  }

  /// Discards tokens down to `target` (the recovery routine resetting the
  /// hardware register to a known state — see SlipPair::ack_recovery and
  /// prepare_restart). Returns the number of tokens removed; the removal
  /// is tracked in total_drained() so the auditor's conservation identity
  /// stays exact across restarts. No-op when count <= target.
  std::uint64_t drain_to(int target) {
    SSOMP_CHECK(target >= 0);
    if (count_ <= target) return 0;
    const auto removed = static_cast<std::uint64_t>(count_ - target);
    count_ = target;
    drained_ += removed;
    return removed;
  }

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] bool has_waiter() const { return waiter_ != nullptr; }
  [[nodiscard]] std::uint64_t total_inserted() const { return inserted_; }
  [[nodiscard]] std::uint64_t total_consumed() const { return consumed_; }
  [[nodiscard]] std::uint64_t total_drained() const { return drained_; }

 private:
  sim::Cycles access_cycles_;
  int count_ = 0;
  bool poisoned_ = false;
  sim::SimCpu* waiter_ = nullptr;
  std::uint64_t inserted_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t drained_ = 0;
  trace::Instrumentation* inst_ = nullptr;
  int node_ = -1;
  bool syscall_ = false;
  Watchdog* wdog_ = nullptr;
};

}  // namespace ssomp::slip
