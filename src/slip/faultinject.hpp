// Deterministic fault injection for the slipstream recovery machinery.
//
// The paper's correctness story (§2.2, Figure 1) rests on the token-
// semaphore protocol and the A-stream recovery routine, but in normal
// operation those paths are exercised only incidentally. The injector
// deliberately forces the failure modes the protocol must survive:
//
//   * the A-stream skipping or duplicating a barrier token consume,
//   * the R-stream starving or over-inserting barrier tokens,
//   * a recovery request landing while the A-stream is blocked in a
//     token consume() or in the syscall-semaphore wait,
//   * a corrupted forwarded scheduling decision (§3.2.2 mailbox).
//
// Faults fire deterministically: the injector counts visits of each
// injection site per CMP and fires the planned fault exactly once, at the
// Nth visit on the targeted node. Value corruption is driven by the
// deterministic sim/rng generator seeded from the plan, so every injected
// run is exactly reproducible. Everything the injector does is recorded
// in a per-node ledger so the invariant auditor (slip/audit.hpp) can
// compensate its accounting checks for the injected deltas.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "slip/pair.hpp"

namespace ssomp::slip {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kSkipBarrier,       // A-stream skips the token consume at the Nth barrier
  kDuplicateBarrier,  // A-stream consumes an extra token at the Nth barrier
  kStarveToken,       // R-stream suppresses its Nth token insertion
  kExtraToken,        // R-stream inserts a surplus token at its Nth barrier
  kRecoverInConsume,  // request recovery while A blocks in a token consume
  kRecoverInSyscall,  // request recovery while A blocks in the syscall wait
  kCorruptForward,    // corrupt the Nth forwarded scheduling decision
  kAStreamHang,       // A-stream parks indefinitely at its Nth barrier
  kRStreamTokenLoss,  // from the Nth insert on, every R token is lost
};

[[nodiscard]] constexpr std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kSkipBarrier: return "skip-barrier";
    case FaultKind::kDuplicateBarrier: return "duplicate-barrier";
    case FaultKind::kStarveToken: return "starve-token";
    case FaultKind::kExtraToken: return "extra-token";
    case FaultKind::kRecoverInConsume: return "recover-in-consume";
    case FaultKind::kRecoverInSyscall: return "recover-in-syscall";
    case FaultKind::kCorruptForward: return "corrupt-forward";
    case FaultKind::kAStreamHang: return "a-stream-hang";
    case FaultKind::kRStreamTokenLoss: return "r-stream-token-loss";
  }
  return "?";
}

/// Every injectable kind, in declaration order (for sweeps and --help).
[[nodiscard]] const std::vector<FaultKind>& all_fault_kinds();

/// One planned fault: `kind` at the `visit`-th eligible visit of the
/// injection site on CMP `node` (1-based; recovery-forcing kinds count
/// only visits where the A-stream is actually blocked in the wait).
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  int node = 0;
  std::uint64_t visit = 1;
  std::uint64_t seed = 0x51195;  // drives corruption value choice

  [[nodiscard]] bool active() const { return kind != FaultKind::kNone; }
};

struct FaultPlanParse {
  bool ok = false;
  FaultPlan value;
  std::string error;
};

/// Parses "KIND[,NODE[,VISIT[,SEED]]]", e.g. "starve-token,0,3".
[[nodiscard]] FaultPlanParse parse_fault_plan(std::string_view text);

/// What the runtime should do at a token-semaphore injection site.
enum class TokenAction : std::uint8_t { kNormal = 0, kSkip, kDuplicate };

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultPlan{}, 1) {}
  FaultInjector(const FaultPlan& plan, int ncmp);

  /// Per-node record of every injected perturbation, used by the
  /// invariant auditor to compensate its accounting cross-checks.
  struct NodeLedger {
    std::uint64_t skipped_consumes = 0;
    std::uint64_t extra_consumes = 0;
    std::uint64_t suppressed_inserts = 0;
    std::uint64_t extra_inserts = 0;
    std::uint64_t forced_recoveries = 0;
    std::uint64_t corrupted_forwards = 0;
  };

  // --- injection-site hooks (called by the runtime) ---

  /// R-stream at a barrier, about to insert its token.
  [[nodiscard]] TokenAction on_r_token_insert(int node);

  /// A-stream at a barrier, about to consume its token.
  [[nodiscard]] TokenAction on_a_token_consume(int node);

  /// R-stream divergence-probe point; `a_waiting` is whether the paired
  /// A-stream is currently blocked in a barrier-token consume. Returns
  /// true when the runtime should force request_recovery now.
  [[nodiscard]] bool on_r_divergence_probe(int node, bool a_waiting);

  /// R-stream about to forward a scheduling decision; `a_waiting` is
  /// whether the A-stream is blocked in the syscall-semaphore wait.
  /// May corrupt `mb` in place; returns true when the runtime should
  /// force request_recovery before inserting the syscall token.
  [[nodiscard]] bool on_forward(int node, SlipPair::Mailbox& mb,
                                bool a_waiting);

  /// A-stream at a barrier, before the token consume. Returns true when
  /// the planned kAStreamHang fires here: the runtime parks the A-stream
  /// in a raw block with no token or poison on the way — only the
  /// watchdog (or the end-of-run backstop) can get it moving again.
  [[nodiscard]] bool on_a_hang(int node);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] const NodeLedger& ledger(int node) const {
    return ledgers_.at(static_cast<std::size_t>(node));
  }

  // --- state exposure for the model checker ---
  //
  // The injector is embedded by value in model-checker states, so its
  // evolving internals must be hashable/comparable. The RNG is excluded
  // on purpose: it is only drawn from when the one-shot corruption fires,
  // so its state is a function of `fired()` and the (constant) plan.
  [[nodiscard]] std::uint64_t site_visits(int node) const {
    return site_visits_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] bool token_loss_active() const { return token_loss_active_; }

 private:
  /// Counts one eligible visit of `kind`'s site on `node`; true when the
  /// planned fault fires here (right kind, right node, Nth visit, not
  /// yet fired).
  bool fire(FaultKind kind, int node);

  FaultPlan plan_{};
  std::vector<NodeLedger> ledgers_;
  std::vector<std::uint64_t> site_visits_;  // per node, for the planned site
  std::uint64_t fired_ = 0;
  // kRStreamTokenLoss is persistent, not one-shot: once the Nth insert
  // fires the latch, every subsequent insert on the node is lost too
  // (a broken wire, not a glitch). Each suppression is ledgered.
  bool token_loss_active_ = false;
  sim::Rng rng_;
};

}  // namespace ssomp::slip
