// A-stream / R-stream pairing state for one CMP (paper §2, §3.2.2).
//
// Each CMP that runs in slipstream mode has one pair: the R-stream on its
// first processor, the A-stream on its second. The pair owns
//   * the barrier token semaphore (Figure 1),
//   * the syscall semaphore used for I/O and for forwarding dynamic
//     scheduling decisions from R to A,
//   * the mailbox through which R publishes its scheduling decision
//     (a shared variable; the simulated address gives it real coherence
//     timing, the host fields carry the value), and
//   * divergence/recovery bookkeeping.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/types.hpp"
#include "slip/tokens.hpp"

namespace ssomp::slip {

/// Thrown on the A-stream's fiber when the R-stream requests recovery;
/// unwinds the A-stream to the parallel-region boundary where it rejoins.
struct RecoveryException {};

class SlipPair {
 public:
  SlipPair(sim::CpuId r_cpu, sim::CpuId a_cpu, sim::Cycles sem_access_cycles,
           sim::Addr mailbox_addr)
      : r_cpu_(r_cpu),
        a_cpu_(a_cpu),
        barrier_sem_(sem_access_cycles),
        syscall_sem_(sem_access_cycles),
        mailbox_addr_(mailbox_addr) {}

  [[nodiscard]] sim::CpuId r_cpu() const { return r_cpu_; }
  [[nodiscard]] sim::CpuId a_cpu() const { return a_cpu_; }

  [[nodiscard]] TokenSemaphore& barrier_sem() { return barrier_sem_; }
  [[nodiscard]] TokenSemaphore& syscall_sem() { return syscall_sem_; }

  /// Simulated address of the scheduling-decision mailbox.
  [[nodiscard]] sim::Addr mailbox_addr() const { return mailbox_addr_; }

  /// Host-side mailbox payload (value forwarded from R to A). The queue
  /// mirrors the syscall-semaphore token count: one entry per outstanding
  /// forwarded decision (all timing flows through mailbox_addr traffic and
  /// the semaphore; the queue carries only the values).
  struct Mailbox {
    long lo = 0;
    long hi = 0;
    bool last = false;  // no more chunks in this loop
  };
  std::deque<Mailbox> mailbox_queue;

  /// Prepares the pair for a new parallel region.
  void reset_for_region(int initial_tokens) {
    barrier_sem_.initialize(initial_tokens);
    syscall_sem_.initialize(0);
    initial_tokens_ = initial_tokens;
    r_barriers_ = 0;
    a_barriers_ = 0;
    recovery_requested_ = false;
    a_recovered_this_region_ = false;
  }

  [[nodiscard]] int initial_tokens() const { return initial_tokens_; }

  // Barrier-visit counters (host bookkeeping mirroring the token register).
  void note_r_barrier() { ++r_barriers_; }
  void note_a_barrier() { ++a_barriers_; }
  [[nodiscard]] std::uint64_t r_barriers() const { return r_barriers_; }
  [[nodiscard]] std::uint64_t a_barriers() const { return a_barriers_; }

  /// R-side: flags the A-stream as diverged and kicks it out of any
  /// semaphore wait. The A-stream observes the flag at its next simulated
  /// operation and unwinds via RecoveryException.
  void request_recovery(sim::SimCpu& r) {
    if (recovery_requested_) return;
    recovery_requested_ = true;
    ++recoveries_;
    barrier_sem_.poison(r);
    syscall_sem_.poison(r);
  }

  [[nodiscard]] bool recovery_requested() const { return recovery_requested_; }

  /// A-side: acknowledges recovery (called when the exception is caught).
  void ack_recovery() {
    recovery_requested_ = false;
    a_recovered_this_region_ = true;
  }

  [[nodiscard]] bool a_recovered_this_region() const {
    return a_recovered_this_region_;
  }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

 private:
  sim::CpuId r_cpu_;
  sim::CpuId a_cpu_;
  TokenSemaphore barrier_sem_;
  TokenSemaphore syscall_sem_;
  sim::Addr mailbox_addr_;
  int initial_tokens_ = 0;
  std::uint64_t r_barriers_ = 0;
  std::uint64_t a_barriers_ = 0;
  std::uint64_t recoveries_ = 0;
  bool recovery_requested_ = false;
  bool a_recovered_this_region_ = false;
};

}  // namespace ssomp::slip
