// A-stream / R-stream pairing state for one CMP (paper §2, §3.2.2).
//
// Each CMP that runs in slipstream mode has one pair: the R-stream on its
// first processor, the A-stream on its second. The pair owns
//   * the barrier token semaphore (Figure 1),
//   * the syscall semaphore used for I/O and for forwarding dynamic
//     scheduling decisions from R to A,
//   * the mailbox through which R publishes its scheduling decision
//     (a shared variable; the simulated address gives it real coherence
//     timing, the host fields carry the value), and
//   * divergence/recovery bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "sim/check.hpp"
#include "sim/types.hpp"
#include "slip/tokens.hpp"
#include "trace/tracer.hpp"

namespace ssomp::slip {

/// Thrown on the A-stream's fiber when the R-stream requests recovery;
/// unwinds the A-stream to the parallel-region boundary where it rejoins.
struct RecoveryException {};

class SlipPair {
 public:
  SlipPair(sim::CpuId r_cpu, sim::CpuId a_cpu, sim::Cycles sem_access_cycles,
           sim::Addr mailbox_addr)
      : r_cpu_(r_cpu),
        a_cpu_(a_cpu),
        barrier_sem_(sem_access_cycles),
        syscall_sem_(sem_access_cycles),
        mailbox_addr_(mailbox_addr) {}

  [[nodiscard]] sim::CpuId r_cpu() const { return r_cpu_; }
  [[nodiscard]] sim::CpuId a_cpu() const { return a_cpu_; }

  /// Arms protocol observability for this pair: both semaphores report
  /// token traffic and the mailbox reports push/pop/drop, all attributed
  /// to CMP `node`. Null detaches.
  void set_instrumentation(trace::Instrumentation* inst, int node) {
    inst_ = inst;
    node_ = node;
    barrier_sem_.set_instrumentation(inst, node, /*syscall=*/false);
    syscall_sem_.set_instrumentation(inst, node, /*syscall=*/true);
  }

  /// Arms hang detection on both semaphores (see slip/watchdog.hpp).
  /// `node` identifies the CMP in watchdog reports; it must be passed
  /// here because instrumentation (which also carries the node) is only
  /// armed when tracing is on, while the watchdog must report a valid
  /// node regardless.
  void set_watchdog(Watchdog* wdog, int node) {
    barrier_sem_.set_watchdog(wdog, node);
    syscall_sem_.set_watchdog(wdog, node);
  }

  [[nodiscard]] TokenSemaphore& barrier_sem() { return barrier_sem_; }
  [[nodiscard]] TokenSemaphore& syscall_sem() { return syscall_sem_; }
  [[nodiscard]] const TokenSemaphore& barrier_sem() const {
    return barrier_sem_;
  }
  [[nodiscard]] const TokenSemaphore& syscall_sem() const {
    return syscall_sem_;
  }

  /// Simulated address of the scheduling-decision mailbox.
  [[nodiscard]] sim::Addr mailbox_addr() const { return mailbox_addr_; }

  /// Host-side mailbox payload (value forwarded from R to A). The queue
  /// mirrors the syscall-semaphore token count: one entry per outstanding
  /// forwarded decision (all timing flows through mailbox_addr traffic and
  /// the semaphore; the queue carries only the values).
  struct Mailbox {
    long lo = 0;
    long hi = 0;
    bool last = false;  // no more chunks in this loop
  };

  /// Host-side bound on outstanding forwarded scheduling decisions; past
  /// it the stalest decision is dropped (and accounted, so the auditor
  /// can reconcile queue depth against the syscall-token count).
  static constexpr std::size_t kMailboxDepth = 1024;

  void mailbox_push(const Mailbox& mb) {
    if (mailbox_queue_.size() >= kMailboxDepth) {
      mailbox_queue_.pop_front();
      ++mailbox_dropped_;
      if (inst_ != nullptr) {
        inst_->mailbox_drop(r_cpu_, node_, mailbox_dropped_);
      }
    }
    mailbox_queue_.push_back(mb);
    ++mailbox_pushed_;
    if (inst_ != nullptr) inst_->mailbox_push(r_cpu_, node_, mb.lo, mb.hi);
  }

  [[nodiscard]] Mailbox mailbox_pop() {
    SSOMP_CHECK(!mailbox_queue_.empty());
    const Mailbox mb = mailbox_queue_.front();
    mailbox_queue_.pop_front();
    ++mailbox_popped_;
    if (inst_ != nullptr) inst_->mailbox_pop(a_cpu_, node_, mb.lo, mb.hi);
    return mb;
  }

  [[nodiscard]] bool mailbox_empty() const { return mailbox_queue_.empty(); }
  [[nodiscard]] std::size_t mailbox_size() const {
    return mailbox_queue_.size();
  }
  [[nodiscard]] std::uint64_t mailbox_pushed() const {
    return mailbox_pushed_;
  }
  [[nodiscard]] std::uint64_t mailbox_popped() const {
    return mailbox_popped_;
  }
  [[nodiscard]] std::uint64_t mailbox_dropped() const {
    return mailbox_dropped_;
  }

  /// Prepares the pair for a new parallel region. Clears the mailbox:
  /// a recovery can unwind the A-stream with forwarded-but-unconsumed
  /// decisions still queued, and a stale entry surviving into the next
  /// region would pair with the wrong syscall token and poison that
  /// region's dynamic schedule.
  void reset_for_region(int initial_tokens) {
    barrier_sem_.initialize(initial_tokens);
    syscall_sem_.initialize(0);
    mailbox_queue_.clear();
    initial_tokens_ = initial_tokens;
    r_barriers_ = 0;
    a_barriers_ = 0;
    recovery_requested_ = false;
    a_recovered_this_region_ = false;
    restarts_this_region_ = 0;
    a_benched_ = false;
  }

  [[nodiscard]] int initial_tokens() const { return initial_tokens_; }

  // Barrier-visit counters (host bookkeeping mirroring the token register).
  void note_r_barrier() { ++r_barriers_; }
  void note_a_barrier() { ++a_barriers_; }
  [[nodiscard]] std::uint64_t r_barriers() const { return r_barriers_; }
  [[nodiscard]] std::uint64_t a_barriers() const { return a_barriers_; }

  /// R-side: flags the A-stream as diverged and kicks it out of any
  /// semaphore wait. The A-stream observes the flag at its next simulated
  /// operation and unwinds via RecoveryException. Repeat requests do not
  /// count a new recovery but DO re-poison: the first poison can land
  /// while the A-stream is not waiting (or already woken), and a later
  /// request must still be able to kick a wait entered afterwards.
  void request_recovery(sim::SimCpu& r) {
    if (!recovery_requested_) {
      recovery_requested_ = true;
      ++recoveries_;
    }
    barrier_sem_.poison(r);
    syscall_sem_.poison(r);
  }

  [[nodiscard]] bool recovery_requested() const { return recovery_requested_; }

  /// What ack_recovery() reconciled away (for instrumentation).
  struct AckReconcile {
    std::uint64_t mailbox_cleared = 0;
    std::uint64_t syscall_drained = 0;
  };

  /// A-side: acknowledges recovery (called when the exception is caught)
  /// and reconciles the syscall channel. The mailbox was previously
  /// cleared only at region reset, while every outstanding syscall token
  /// survived the unwind — so a restarted A-stream could pop a decision
  /// that belongs to a pre-recovery token. Dropping the queue AND
  /// draining the semaphore to zero together keeps the two sides of the
  /// channel consistent: post-ack, forwarded decisions and their tokens
  /// are created strictly in pairs again.
  AckReconcile ack_recovery() {
    recovery_requested_ = false;
    a_recovered_this_region_ = true;
    AckReconcile r;
    r.mailbox_cleared = mailbox_queue_.size();
    mailbox_cleared_ += r.mailbox_cleared;
    mailbox_queue_.clear();
    r.syscall_drained = syscall_sem_.drain_to(0);
    return r;
  }

  /// A-side resynchronization for a mid-region restart: fast-forwards the
  /// A-stream's barrier position to the R-stream's current episode and
  /// resets the barrier-token register to the region's initial allowance
  /// (draining any surplus; a deficit is left to the R-stream's future
  /// inserts). The jumped barrier visits are tracked so the auditor can
  /// reconcile consumes against visits. Returns the resync distance in
  /// barrier episodes — the number of body barriers the restarted
  /// A-stream must replay without consuming tokens.
  std::uint64_t prepare_restart() {
    ++restarts_this_region_;
    ++restarts_total_;
    (void)barrier_sem_.drain_to(initial_tokens_);
    std::uint64_t skipped = 0;
    if (r_barriers_ > a_barriers_) {
      skipped = r_barriers_ - a_barriers_;
      restart_skipped_barriers_ += skipped;
      a_barriers_ = r_barriers_;
    }
    return skipped;
  }

  /// A-side: the A-stream is out for the remainder of this region (bench
  /// policy, or restart budget exhausted). The R-stream counts its
  /// remaining barrier visits as benched — run-ahead coverage forfeited.
  void set_benched() { a_benched_ = true; }
  void note_benched_barrier() { ++benched_barriers_; }

  [[nodiscard]] bool a_recovered_this_region() const {
    return a_recovered_this_region_;
  }
  [[nodiscard]] bool a_benched() const { return a_benched_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t restarts_this_region() const {
    return restarts_this_region_;
  }
  [[nodiscard]] std::uint64_t restarts_total() const {
    return restarts_total_;
  }
  [[nodiscard]] std::uint64_t restart_skipped_barriers() const {
    return restart_skipped_barriers_;
  }
  [[nodiscard]] std::uint64_t benched_barriers() const {
    return benched_barriers_;
  }
  [[nodiscard]] std::uint64_t mailbox_cleared() const {
    return mailbox_cleared_;
  }

 private:
  sim::CpuId r_cpu_;
  sim::CpuId a_cpu_;
  TokenSemaphore barrier_sem_;
  TokenSemaphore syscall_sem_;
  sim::Addr mailbox_addr_;
  std::deque<Mailbox> mailbox_queue_;
  std::uint64_t mailbox_pushed_ = 0;
  std::uint64_t mailbox_popped_ = 0;
  std::uint64_t mailbox_dropped_ = 0;
  int initial_tokens_ = 0;
  std::uint64_t r_barriers_ = 0;
  std::uint64_t a_barriers_ = 0;
  std::uint64_t recoveries_ = 0;
  bool recovery_requested_ = false;
  bool a_recovered_this_region_ = false;
  bool a_benched_ = false;
  std::uint64_t restarts_this_region_ = 0;
  std::uint64_t restarts_total_ = 0;
  std::uint64_t restart_skipped_barriers_ = 0;
  std::uint64_t benched_barriers_ = 0;
  std::uint64_t mailbox_cleared_ = 0;
  trace::Instrumentation* inst_ = nullptr;
  int node_ = -1;
};

}  // namespace ssomp::slip
