// A-stream / R-stream pairing state for one CMP (paper §2, §3.2.2).
//
// Each CMP that runs in slipstream mode has one pair: the R-stream on its
// first processor, the A-stream on its second. The pair owns
//   * the barrier token semaphore (Figure 1),
//   * the syscall semaphore used for I/O and for forwarding dynamic
//     scheduling decisions from R to A,
//   * the mailbox through which R publishes its scheduling decision
//     (a shared variable; the simulated address gives it real coherence
//     timing, the host fields carry the value), and
//   * divergence/recovery bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "sim/check.hpp"
#include "sim/types.hpp"
#include "slip/tokens.hpp"
#include "trace/tracer.hpp"

namespace ssomp::slip {

/// Thrown on the A-stream's fiber when the R-stream requests recovery;
/// unwinds the A-stream to the parallel-region boundary where it rejoins.
struct RecoveryException {};

class SlipPair {
 public:
  SlipPair(sim::CpuId r_cpu, sim::CpuId a_cpu, sim::Cycles sem_access_cycles,
           sim::Addr mailbox_addr)
      : r_cpu_(r_cpu),
        a_cpu_(a_cpu),
        barrier_sem_(sem_access_cycles),
        syscall_sem_(sem_access_cycles),
        mailbox_addr_(mailbox_addr) {}

  [[nodiscard]] sim::CpuId r_cpu() const { return r_cpu_; }
  [[nodiscard]] sim::CpuId a_cpu() const { return a_cpu_; }

  /// Arms protocol observability for this pair: both semaphores report
  /// token traffic and the mailbox reports push/pop/drop, all attributed
  /// to CMP `node`. Null detaches.
  void set_instrumentation(trace::Instrumentation* inst, int node) {
    inst_ = inst;
    node_ = node;
    barrier_sem_.set_instrumentation(inst, node, /*syscall=*/false);
    syscall_sem_.set_instrumentation(inst, node, /*syscall=*/true);
  }

  [[nodiscard]] TokenSemaphore& barrier_sem() { return barrier_sem_; }
  [[nodiscard]] TokenSemaphore& syscall_sem() { return syscall_sem_; }
  [[nodiscard]] const TokenSemaphore& barrier_sem() const {
    return barrier_sem_;
  }
  [[nodiscard]] const TokenSemaphore& syscall_sem() const {
    return syscall_sem_;
  }

  /// Simulated address of the scheduling-decision mailbox.
  [[nodiscard]] sim::Addr mailbox_addr() const { return mailbox_addr_; }

  /// Host-side mailbox payload (value forwarded from R to A). The queue
  /// mirrors the syscall-semaphore token count: one entry per outstanding
  /// forwarded decision (all timing flows through mailbox_addr traffic and
  /// the semaphore; the queue carries only the values).
  struct Mailbox {
    long lo = 0;
    long hi = 0;
    bool last = false;  // no more chunks in this loop
  };

  /// Host-side bound on outstanding forwarded scheduling decisions; past
  /// it the stalest decision is dropped (and accounted, so the auditor
  /// can reconcile queue depth against the syscall-token count).
  static constexpr std::size_t kMailboxDepth = 1024;

  void mailbox_push(const Mailbox& mb) {
    if (mailbox_queue_.size() >= kMailboxDepth) {
      mailbox_queue_.pop_front();
      ++mailbox_dropped_;
      if (inst_ != nullptr) {
        inst_->mailbox_drop(r_cpu_, node_, mailbox_dropped_);
      }
    }
    mailbox_queue_.push_back(mb);
    ++mailbox_pushed_;
    if (inst_ != nullptr) inst_->mailbox_push(r_cpu_, node_, mb.lo, mb.hi);
  }

  [[nodiscard]] Mailbox mailbox_pop() {
    SSOMP_CHECK(!mailbox_queue_.empty());
    const Mailbox mb = mailbox_queue_.front();
    mailbox_queue_.pop_front();
    ++mailbox_popped_;
    if (inst_ != nullptr) inst_->mailbox_pop(a_cpu_, node_, mb.lo, mb.hi);
    return mb;
  }

  [[nodiscard]] bool mailbox_empty() const { return mailbox_queue_.empty(); }
  [[nodiscard]] std::size_t mailbox_size() const {
    return mailbox_queue_.size();
  }
  [[nodiscard]] std::uint64_t mailbox_pushed() const {
    return mailbox_pushed_;
  }
  [[nodiscard]] std::uint64_t mailbox_popped() const {
    return mailbox_popped_;
  }
  [[nodiscard]] std::uint64_t mailbox_dropped() const {
    return mailbox_dropped_;
  }

  /// Prepares the pair for a new parallel region. Clears the mailbox:
  /// a recovery can unwind the A-stream with forwarded-but-unconsumed
  /// decisions still queued, and a stale entry surviving into the next
  /// region would pair with the wrong syscall token and poison that
  /// region's dynamic schedule.
  void reset_for_region(int initial_tokens) {
    barrier_sem_.initialize(initial_tokens);
    syscall_sem_.initialize(0);
    mailbox_queue_.clear();
    initial_tokens_ = initial_tokens;
    r_barriers_ = 0;
    a_barriers_ = 0;
    recovery_requested_ = false;
    a_recovered_this_region_ = false;
  }

  [[nodiscard]] int initial_tokens() const { return initial_tokens_; }

  // Barrier-visit counters (host bookkeeping mirroring the token register).
  void note_r_barrier() { ++r_barriers_; }
  void note_a_barrier() { ++a_barriers_; }
  [[nodiscard]] std::uint64_t r_barriers() const { return r_barriers_; }
  [[nodiscard]] std::uint64_t a_barriers() const { return a_barriers_; }

  /// R-side: flags the A-stream as diverged and kicks it out of any
  /// semaphore wait. The A-stream observes the flag at its next simulated
  /// operation and unwinds via RecoveryException. Repeat requests do not
  /// count a new recovery but DO re-poison: the first poison can land
  /// while the A-stream is not waiting (or already woken), and a later
  /// request must still be able to kick a wait entered afterwards.
  void request_recovery(sim::SimCpu& r) {
    if (!recovery_requested_) {
      recovery_requested_ = true;
      ++recoveries_;
    }
    barrier_sem_.poison(r);
    syscall_sem_.poison(r);
  }

  [[nodiscard]] bool recovery_requested() const { return recovery_requested_; }

  /// A-side: acknowledges recovery (called when the exception is caught).
  void ack_recovery() {
    recovery_requested_ = false;
    a_recovered_this_region_ = true;
  }

  [[nodiscard]] bool a_recovered_this_region() const {
    return a_recovered_this_region_;
  }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

 private:
  sim::CpuId r_cpu_;
  sim::CpuId a_cpu_;
  TokenSemaphore barrier_sem_;
  TokenSemaphore syscall_sem_;
  sim::Addr mailbox_addr_;
  std::deque<Mailbox> mailbox_queue_;
  std::uint64_t mailbox_pushed_ = 0;
  std::uint64_t mailbox_popped_ = 0;
  std::uint64_t mailbox_dropped_ = 0;
  int initial_tokens_ = 0;
  std::uint64_t r_barriers_ = 0;
  std::uint64_t a_barriers_ = 0;
  std::uint64_t recoveries_ = 0;
  bool recovery_requested_ = false;
  bool a_recovered_this_region_ = false;
  trace::Instrumentation* inst_ = nullptr;
  int node_ = -1;
};

}  // namespace ssomp::slip
