// A-stream / R-stream pairing state for one CMP (paper §2, §3.2.2).
//
// Each CMP that runs in slipstream mode has one pair: the R-stream on its
// first processor, the A-stream on its second. The pair owns
//   * the barrier token semaphore (Figure 1),
//   * the syscall semaphore used for I/O and for forwarding dynamic
//     scheduling decisions from R to A,
//   * the mailbox through which R publishes its scheduling decision
//     (a shared variable; the simulated address gives it real coherence
//     timing, the host fields carry the value), and
//   * divergence/recovery bookkeeping.
//
// The protocol-visible transitions live in slip/protocol.hpp
// (proto::PairState and the pair_* functions); this class wraps them with
// the value-carrying mailbox queue and instrumentation so the model
// checker steps the same transition code the engine runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "sim/types.hpp"
#include "slip/protocol.hpp"
#include "slip/tokens.hpp"
#include "trace/tracer.hpp"

namespace ssomp::slip {

/// Thrown on the A-stream's fiber when the R-stream requests recovery;
/// unwinds the A-stream to the parallel-region boundary where it rejoins.
struct RecoveryException {};

class SlipPair {
 public:
  /// `mailbox_depth` bounds outstanding forwarded decisions; past it the
  /// stalest decision is dropped (and accounted, so the auditor can
  /// reconcile queue depth against the syscall-token count). Tests and the
  /// model-replay harness shrink it to exercise the drop path.
  SlipPair(sim::CpuId r_cpu, sim::CpuId a_cpu, sim::Cycles sem_access_cycles,
           sim::Addr mailbox_addr, std::size_t mailbox_depth = kMailboxDepth)
      : r_cpu_(r_cpu),
        a_cpu_(a_cpu),
        barrier_sem_(sem_access_cycles),
        syscall_sem_(sem_access_cycles),
        mailbox_addr_(mailbox_addr),
        mailbox_depth_(mailbox_depth) {}

  [[nodiscard]] sim::CpuId r_cpu() const { return r_cpu_; }
  [[nodiscard]] sim::CpuId a_cpu() const { return a_cpu_; }

  /// Arms protocol observability for this pair: both semaphores report
  /// token traffic and the mailbox reports push/pop/drop, all attributed
  /// to CMP `node`. Null detaches.
  void set_instrumentation(trace::Instrumentation* inst, int node) {
    inst_ = inst;
    node_ = node;
    barrier_sem_.set_instrumentation(inst, node, /*syscall=*/false);
    syscall_sem_.set_instrumentation(inst, node, /*syscall=*/true);
  }

  /// Arms hang detection on both semaphores (see slip/watchdog.hpp).
  /// `node` identifies the CMP in watchdog reports; it must be passed
  /// here because instrumentation (which also carries the node) is only
  /// armed when tracing is on, while the watchdog must report a valid
  /// node regardless.
  void set_watchdog(Watchdog* wdog, int node) {
    barrier_sem_.set_watchdog(wdog, node);
    syscall_sem_.set_watchdog(wdog, node);
  }

  [[nodiscard]] TokenSemaphore& barrier_sem() { return barrier_sem_; }
  [[nodiscard]] TokenSemaphore& syscall_sem() { return syscall_sem_; }
  [[nodiscard]] const TokenSemaphore& barrier_sem() const {
    return barrier_sem_;
  }
  [[nodiscard]] const TokenSemaphore& syscall_sem() const {
    return syscall_sem_;
  }

  /// Simulated address of the scheduling-decision mailbox.
  [[nodiscard]] sim::Addr mailbox_addr() const { return mailbox_addr_; }

  /// Host-side mailbox payload (value forwarded from R to A). The queue
  /// mirrors the syscall-semaphore token count: one entry per outstanding
  /// forwarded decision (all timing flows through mailbox_addr traffic and
  /// the semaphore; the queue carries only the values).
  struct Mailbox {
    long lo = 0;
    long hi = 0;
    bool last = false;  // no more chunks in this loop
  };

  /// Default host-side bound on outstanding forwarded decisions.
  static constexpr std::size_t kMailboxDepth = 1024;

  void mailbox_push(const Mailbox& mb) {
    if (proto::pair_mailbox_push(core_, mailbox_depth_)) {
      mailbox_queue_.pop_front();
      if (inst_ != nullptr) {
        inst_->mailbox_drop(r_cpu_, node_, core_.mb_dropped);
      }
    }
    mailbox_queue_.push_back(mb);
    if (inst_ != nullptr) inst_->mailbox_push(r_cpu_, node_, mb.lo, mb.hi);
  }

  [[nodiscard]] Mailbox mailbox_pop() {
    proto::enforce(proto::pair_mailbox_pop(core_));
    const Mailbox mb = mailbox_queue_.front();
    mailbox_queue_.pop_front();
    if (inst_ != nullptr) inst_->mailbox_pop(a_cpu_, node_, mb.lo, mb.hi);
    return mb;
  }

  [[nodiscard]] bool mailbox_empty() const { return mailbox_queue_.empty(); }
  [[nodiscard]] std::size_t mailbox_size() const {
    return mailbox_queue_.size();
  }
  [[nodiscard]] std::uint64_t mailbox_pushed() const { return core_.mb_pushed; }
  [[nodiscard]] std::uint64_t mailbox_popped() const { return core_.mb_popped; }
  [[nodiscard]] std::uint64_t mailbox_dropped() const {
    return core_.mb_dropped;
  }
  /// Decisions dropped since the last region reset. A previous region's
  /// drop cannot explain this region's unpaired syscall token, so the
  /// runtime's channel tripwire keys off this, not the cumulative count.
  [[nodiscard]] std::uint64_t mailbox_dropped_this_region() const {
    return core_.mb_dropped - core_.mb_dropped_at_region_start;
  }

  /// True when a syscall token with no mailbox entry to pair with has a
  /// legitimate cause (a drop this region, or a mid-region restart that
  /// drained the channel asymmetrically). See
  /// proto::pair_unpaired_token_explained.
  [[nodiscard]] bool unpaired_syscall_token_explained() const {
    return proto::pair_unpaired_token_explained(core_);
  }

  /// Prepares the pair for a new parallel region. Clears the mailbox:
  /// a recovery can unwind the A-stream with forwarded-but-unconsumed
  /// decisions still queued, and a stale entry surviving into the next
  /// region would pair with the wrong syscall token and poison that
  /// region's dynamic schedule.
  void reset_for_region(int initial_tokens) {
    proto::enforce(proto::pair_reset_for_region(
        core_, barrier_sem_.state(), syscall_sem_.state(), initial_tokens));
    mailbox_queue_.clear();
  }

  [[nodiscard]] int initial_tokens() const { return core_.initial_tokens; }

  // Barrier-visit counters (host bookkeeping mirroring the token register).
  void note_r_barrier() { ++core_.r_barriers; }
  void note_a_barrier() { ++core_.a_barriers; }
  [[nodiscard]] std::uint64_t r_barriers() const { return core_.r_barriers; }
  [[nodiscard]] std::uint64_t a_barriers() const { return core_.a_barriers; }

  /// R-side: flags the A-stream as diverged and kicks it out of any
  /// semaphore wait. The A-stream observes the flag at its next simulated
  /// operation and unwinds via RecoveryException. Repeat requests do not
  /// count a new recovery but DO re-poison: the first poison can land
  /// while the A-stream is not waiting (or already woken), and a later
  /// request must still be able to kick a wait entered afterwards.
  void request_recovery(sim::SimCpu& r) {
    (void)proto::pair_request_recovery(core_);
    barrier_sem_.poison(r);
    syscall_sem_.poison(r);
  }

  [[nodiscard]] bool recovery_requested() const {
    return core_.recovery_requested;
  }

  /// What ack_recovery() reconciled away (for instrumentation).
  using AckReconcile = proto::AckReconcile;

  /// A-side: acknowledges recovery (called when the exception is caught)
  /// and reconciles the syscall channel. The mailbox was previously
  /// cleared only at region reset, while every outstanding syscall token
  /// survived the unwind — so a restarted A-stream could pop a decision
  /// that belongs to a pre-recovery token. Dropping the queue AND
  /// draining the semaphore to zero together keeps the two sides of the
  /// channel consistent: post-ack, forwarded decisions and their tokens
  /// are created strictly in pairs again.
  AckReconcile ack_recovery() {
    AckReconcile r;
    proto::enforce(
        proto::pair_ack_recovery(core_, syscall_sem_.state(), r));
    mailbox_queue_.clear();
    return r;
  }

  /// A-side resynchronization for a mid-region restart: fast-forwards the
  /// A-stream's barrier position to the R-stream's current episode and
  /// resets the barrier-token register to the region's initial allowance
  /// (draining any surplus; a deficit is left to the R-stream's future
  /// inserts). The jumped barrier visits are tracked so the auditor can
  /// reconcile consumes against visits. Returns the resync distance in
  /// barrier episodes — the number of body barriers the restarted
  /// A-stream must replay without consuming tokens.
  std::uint64_t prepare_restart() {
    std::uint64_t resync = 0;
    proto::enforce(
        proto::pair_prepare_restart(core_, barrier_sem_.state(), resync));
    return resync;
  }

  /// A-side: the A-stream is out for the remainder of this region (bench
  /// policy, or restart budget exhausted). The R-stream counts its
  /// remaining barrier visits as benched — run-ahead coverage forfeited.
  void set_benched() { core_.a_benched = true; }
  void note_benched_barrier() { ++core_.benched_barriers; }

  [[nodiscard]] bool a_recovered_this_region() const {
    return core_.a_recovered_this_region;
  }
  [[nodiscard]] bool a_benched() const { return core_.a_benched; }
  [[nodiscard]] std::uint64_t recoveries() const { return core_.recoveries; }
  [[nodiscard]] std::uint64_t restarts_this_region() const {
    return core_.restarts_this_region;
  }
  [[nodiscard]] std::uint64_t restarts_total() const {
    return core_.restarts_total;
  }
  [[nodiscard]] std::uint64_t restart_skipped_barriers() const {
    return core_.restart_skipped_barriers;
  }
  [[nodiscard]] std::uint64_t benched_barriers() const {
    return core_.benched_barriers;
  }
  [[nodiscard]] std::uint64_t mailbox_cleared() const {
    return core_.mb_cleared;
  }

  /// Protocol-core view, for the model-replay harness's lockstep state
  /// comparison.
  [[nodiscard]] const proto::PairState& core() const { return core_; }

 private:
  sim::CpuId r_cpu_;
  sim::CpuId a_cpu_;
  TokenSemaphore barrier_sem_;
  TokenSemaphore syscall_sem_;
  sim::Addr mailbox_addr_;
  std::size_t mailbox_depth_;
  std::deque<Mailbox> mailbox_queue_;
  proto::PairState core_;
  trace::Instrumentation* inst_ = nullptr;
  int node_ = -1;
};

}  // namespace ssomp::slip
