#include "slip/model/schedule.hpp"

#include <sstream>

namespace ssomp::slip::model {
namespace {

constexpr std::string_view kMagic = "ssomp-schedule-v1";

std::string_view action_word(ActionKind k) {
  switch (k) {
    case ActionKind::kRStep: return "r";
    case ActionKind::kAStep: return "a";
    case ActionKind::kWdogToken: return "wdog-token";
    case ActionKind::kWdogTeam: return "wdog-team";
    case ActionKind::kWdogHang: return "wdog-hang";
    case ActionKind::kBackstop: return "backstop";
    case ActionKind::kRegionEnd: return "region-end";
  }
  return "?";
}

bool parse_action_word(std::string_view w, ActionKind& out) {
  if (w == "r") out = ActionKind::kRStep;
  else if (w == "a") out = ActionKind::kAStep;
  else if (w == "wdog-token") out = ActionKind::kWdogToken;
  else if (w == "wdog-team") out = ActionKind::kWdogTeam;
  else if (w == "wdog-hang") out = ActionKind::kWdogHang;
  else if (w == "backstop") out = ActionKind::kBackstop;
  else if (w == "region-end") out = ActionKind::kRegionEnd;
  else return false;
  return true;
}

bool parse_sync(std::string_view w, SyncType& out) {
  if (w == "local") out = SyncType::kLocal;
  else if (w == "global") out = SyncType::kGlobal;
  else if (w == "none") out = SyncType::kNone;
  else if (w == "runtime") out = SyncType::kRuntime;
  else return false;
  return true;
}

std::string_view sync_word(SyncType s) {
  switch (s) {
    case SyncType::kLocal: return "local";
    case SyncType::kGlobal: return "global";
    case SyncType::kNone: return "none";
    case SyncType::kRuntime: return "runtime";
  }
  return "?";
}

}  // namespace

std::string serialize_schedule(const Schedule& s) {
  const ModelConfig& c = s.config;
  std::ostringstream out;
  out << kMagic << "\n";
  out << "ncmp " << c.ncmp << "\n";
  out << "tokens " << c.tokens << "\n";
  out << "sync " << sync_word(c.sync) << "\n";
  out << "regions " << c.regions << "\n";
  out << "barriers " << c.barriers << "\n";
  out << "chunks " << c.chunks << "\n";
  out << "mailbox-depth " << c.mailbox_depth << "\n";
  out << "threshold " << c.divergence_threshold << "\n";
  out << "policy " << to_string(c.policy) << "\n";
  out << "restart-budget " << c.restart_budget << "\n";
  out << "watchdog " << (c.watchdog ? 1 : 0) << "\n";
  out << "degrade " << (c.degrade_enabled ? 1 : 0) << " " << c.demote_after
      << " " << c.probation << "\n";
  out << "fault " << slip::to_string(c.fault.kind);
  if (c.fault.active()) {
    out << "," << c.fault.node << "," << c.fault.visit << ","
        << c.fault.seed;
  }
  out << "\n";
  if (!s.expect.empty()) out << "expect " << s.expect << "\n";
  for (const Action& a : s.actions) {
    out << "step " << action_word(a.kind);
    if (a.kind != ActionKind::kBackstop && a.kind != ActionKind::kRegionEnd) {
      out << " " << a.node;
    }
    out << "\n";
  }
  return out.str();
}

ScheduleParse parse_schedule(const std::string& text) {
  ScheduleParse res;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    res.error = "missing ssomp-schedule-v1 header";
    return res;
  }
  Schedule& s = res.value;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    const auto bad = [&](const std::string& why) {
      std::ostringstream msg;
      msg << "line " << lineno << ": " << why;
      res.error = msg.str();
      return res;
    };
    if (key == "ncmp") { if (!(ls >> s.config.ncmp)) return bad("bad ncmp"); }
    else if (key == "tokens") {
      if (!(ls >> s.config.tokens)) return bad("bad tokens");
    } else if (key == "sync") {
      std::string w;
      if (!(ls >> w) || !parse_sync(w, s.config.sync)) return bad("bad sync");
    } else if (key == "regions") {
      if (!(ls >> s.config.regions)) return bad("bad regions");
    } else if (key == "barriers") {
      if (!(ls >> s.config.barriers)) return bad("bad barriers");
    } else if (key == "chunks") {
      if (!(ls >> s.config.chunks)) return bad("bad chunks");
    } else if (key == "mailbox-depth") {
      if (!(ls >> s.config.mailbox_depth)) return bad("bad mailbox-depth");
    } else if (key == "threshold") {
      if (!(ls >> s.config.divergence_threshold)) return bad("bad threshold");
    } else if (key == "policy") {
      std::string w;
      if (!(ls >> w)) return bad("bad policy");
      if (w == "bench") s.config.policy = Policy::kBench;
      else if (w == "restart") s.config.policy = Policy::kRestart;
      else return bad("unknown policy '" + w + "'");
    } else if (key == "restart-budget") {
      if (!(ls >> s.config.restart_budget)) return bad("bad restart-budget");
    } else if (key == "watchdog") {
      int v = 0;
      if (!(ls >> v)) return bad("bad watchdog");
      s.config.watchdog = v != 0;
    } else if (key == "degrade") {
      int v = 0;
      if (!(ls >> v >> s.config.demote_after >> s.config.probation)) {
        return bad("bad degrade");
      }
      s.config.degrade_enabled = v != 0;
    } else if (key == "fault") {
      std::string spec;
      if (!(ls >> spec)) return bad("bad fault");
      FaultPlanParse fp = parse_fault_plan(spec);
      if (!fp.ok) return bad("bad fault: " + fp.error);
      s.config.fault = fp.value;
    } else if (key == "expect") {
      std::string rest;
      std::getline(ls, rest);
      while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
      if (rest.empty()) return bad("empty expect");
      s.expect = rest;
    } else if (key == "step") {
      std::string w;
      if (!(ls >> w)) return bad("bad step");
      Action a;
      if (!parse_action_word(w, a.kind)) {
        return bad("unknown action '" + w + "'");
      }
      if (a.kind != ActionKind::kBackstop &&
          a.kind != ActionKind::kRegionEnd) {
        if (!(ls >> a.node)) return bad("missing node for '" + w + "'");
      }
      s.actions.push_back(a);
    } else {
      return bad("unknown directive '" + key + "'");
    }
  }
  res.ok = true;
  return res;
}

}  // namespace ssomp::slip::model
