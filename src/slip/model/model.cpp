#include "slip/model/model.hpp"

#include <algorithm>
#include <sstream>

namespace ssomp::slip::model {
namespace {

constexpr std::uint64_t kMaxBackoffShift = 16;  // mirrors rt/runtime.cpp

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (i * 8)));
}
void put_i32(std::string& out, int v) {
  put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}
void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_bool(std::string& out, bool v) { put_u8(out, v ? 1 : 0); }

void encode_token(std::string& out, const proto::TokenState& t) {
  put_i32(out, t.count);
  put_bool(out, t.poisoned);
  put_bool(out, t.waiter);
  put_u64(out, t.inserted);
  put_u64(out, t.consumed);
  put_u64(out, t.drained);
}

void encode_pair(std::string& out, const proto::PairState& p) {
  put_i32(out, p.initial_tokens);
  put_u64(out, p.r_barriers);
  put_u64(out, p.a_barriers);
  put_u64(out, p.recoveries);
  put_bool(out, p.recovery_requested);
  put_bool(out, p.a_recovered_this_region);
  put_bool(out, p.a_benched);
  put_u64(out, p.restarts_this_region);
  put_u64(out, p.restarts_total);
  put_u64(out, p.restart_skipped_barriers);
  put_u64(out, p.benched_barriers);
  put_u64(out, p.mb_size);
  put_u64(out, p.mb_pushed);
  put_u64(out, p.mb_popped);
  put_u64(out, p.mb_dropped);
  put_u64(out, p.mb_cleared);
  put_u64(out, p.mb_dropped_at_region_start);
}

void encode_ledger(std::string& out, const FaultInjector::NodeLedger& l) {
  put_u64(out, l.skipped_consumes);
  put_u64(out, l.extra_consumes);
  put_u64(out, l.suppressed_inserts);
  put_u64(out, l.extra_inserts);
  put_u64(out, l.forced_recoveries);
  put_u64(out, l.corrupted_forwards);
}

}  // namespace

std::string ModelConfig::describe() const {
  std::ostringstream s;
  s << "ncmp=" << ncmp << " tokens=" << tokens << " sync="
    << slip::to_string(sync) << " regions=" << regions
    << " barriers=" << barriers << " chunks=" << chunks
    << " policy=" << model::to_string(policy)
    << " budget=" << restart_budget
    << " wdog=" << (watchdog ? 1 : 0)
    << " degrade=" << (degrade_enabled ? 1 : 0);
  if (degrade_enabled) {
    s << "(demote=" << demote_after << ",probation=" << probation << ")";
  }
  s << " fault=" << slip::to_string(fault.kind);
  if (fault.active()) {
    s << "," << fault.node << "," << fault.visit;
  }
  return s.str();
}

std::string to_string(const Action& a) {
  std::ostringstream s;
  switch (a.kind) {
    case ActionKind::kRStep: s << "r " << a.node; break;
    case ActionKind::kAStep: s << "a " << a.node; break;
    case ActionKind::kWdogToken: s << "wdog-token " << a.node; break;
    case ActionKind::kWdogTeam: s << "wdog-team " << a.node; break;
    case ActionKind::kWdogHang: s << "wdog-hang " << a.node; break;
    case ActionKind::kBackstop: s << "backstop"; break;
    case ActionKind::kRegionEnd: s << "region-end"; break;
  }
  return s.str();
}

void ModelState::encode(std::string& out, const ModelConfig& cfg) const {
  put_u8(out, region);
  put_u8(out, team_arrived);
  put_bool(out, finished);
  for (const NodeState& n : nodes) {
    encode_pair(out, n.pair);
    encode_token(out, n.barrier);
    encode_token(out, n.syscall);
    put_u64(out, n.mb_last.size());
    for (std::uint8_t b : n.mb_last) put_u8(out, b);
    put_u8(out, static_cast<std::uint8_t>(n.r.phase));
    put_u8(out, n.r.bar);
    put_u8(out, n.r.chunk);
    put_bool(out, n.r.slip);
    put_bool(out, n.r.wdog_fired);
    put_u8(out, n.r.owed);
    put_u8(out, n.r.pending_ins);
    put_u8(out, static_cast<std::uint8_t>(n.a.phase));
    put_u8(out, n.a.bar);
    put_bool(out, n.a.exists);
    put_bool(out, n.a.parked);
    put_bool(out, n.a.wake_pending);
    put_bool(out, n.a.hung);
    put_bool(out, n.a.hung_wake);
    put_bool(out, n.a.dup_pending);
    put_u64(out, n.a.replay);
    put_bool(out, n.a.wdog_fired);
    put_bool(out, n.a.hang_wdog_fired);
    put_bool(out, n.ghost.poison_due_barrier);
    put_bool(out, n.ghost.poison_due_syscall);
    encode_pair(out, n.base_pair);
    encode_token(out, n.base_barrier);
    encode_token(out, n.base_syscall);
    encode_ledger(out, n.base_ledger);
    put_u64(out, n.recoveries_at_region_start);
    put_bool(out, n.recovery_outstanding);
  }
  for (int node = 0; node < cfg.ncmp; ++node) {
    encode_ledger(out, injector.ledger(node));
    put_u64(out, injector.site_visits(node));
    put_u8(out, static_cast<std::uint8_t>(degrade.state(node)));
    put_i32(out, degrade.strikes(node));
    put_i32(out, degrade.demoted_clock(node));
  }
  put_u64(out, injector.fired());
  put_bool(out, injector.token_loss_active());
  put_u64(out, degrade.demotions());
  put_u64(out, degrade.promotions());
}

Model::Model(const ModelConfig& cfg) : cfg_(cfg) {}

ModelState Model::initial() const {
  ModelState s;
  s.nodes.resize(static_cast<std::size_t>(cfg_.ncmp));
  s.injector = FaultInjector(cfg_.fault, cfg_.ncmp);
  s.degrade = rt::DegradationController(cfg_.degrade_enabled, cfg_.demote_after,
                                        cfg_.probation, cfg_.ncmp);
  s.team_expected = static_cast<std::uint8_t>(cfg_.ncmp);
  dispatch_region(s);
  return s;
}

void Model::reset_node(ModelState& s, int node) const {
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  // Mirrors InvariantAuditor::on_region_reset: an un-acked request lapses
  // here (accounted by the live auditor; the model just clears the ghost).
  n.recovery_outstanding = false;
  proto::enforce(proto::pair_reset_for_region(n.pair, n.barrier, n.syscall,
                                              cfg_.tokens));
  n.mb_last.clear();
  n.ghost = Ghost{};
  n.base_pair = n.pair;
  n.base_barrier = n.barrier;
  n.base_syscall = n.syscall;
  n.base_ledger = s.injector.ledger(node);
  n.recoveries_at_region_start = n.pair.recoveries;
}

void Model::dispatch_region(ModelState& s) const {
  for (int node = 0; node < cfg_.ncmp; ++node) {
    reset_node(s, node);
    NodeState& n = s.nodes[static_cast<std::size_t>(node)];
    n.r = RActor{};
    n.a = AActor{};
    n.r.slip = s.degrade.slipstream_allowed(node);
    if (n.r.slip) {
      n.r.phase = cfg_.chunks > 0 ? RPhase::kFwdPush : RPhase::kBarNote;
      n.a.exists = true;
      n.a.phase = cfg_.chunks > 0 ? APhase::kChunkCheck : APhase::kBarCheck;
    } else {
      n.r.phase = RPhase::kBarArrive;  // plain member: team barriers only
      n.a.exists = false;
      n.a.phase = APhase::kDone;
    }
  }
  s.team_arrived = 0;
}

bool Model::any_wake_pending(const ModelState& s) const {
  for (const NodeState& n : s.nodes) {
    if (n.a.wake_pending || n.a.hung_wake) return true;
  }
  return false;
}

std::vector<Action> Model::enabled(const ModelState& s) const {
  std::vector<Action> out;
  if (s.finished) return out;
  const bool window = any_wake_pending(s);
  bool all_done = true;
  for (int node = 0; node < cfg_.ncmp; ++node) {
    const NodeState& n = s.nodes[static_cast<std::size_t>(node)];
    // R-stream. In the wake window only host-only segments may run (the
    // engine's tie-breaking delivers a pending resume before any charging
    // segment issued afterwards completes; see the header comment).
    const bool r_runnable = n.r.phase != RPhase::kDone &&
                            n.r.phase != RPhase::kWaitTeam;
    const bool r_host_only =
        n.r.phase == RPhase::kFwdPush || n.r.phase == RPhase::kBarNote;
    if (r_runnable && (!window || r_host_only)) {
      out.push_back({ActionKind::kRStep, node});
    }
    if (n.r.phase != RPhase::kDone) all_done = false;
    // A-stream.
    if (n.a.wake_pending || n.a.hung_wake) {
      out.push_back({ActionKind::kAStep, node});
    } else if (!window && n.a.exists && n.a.phase != APhase::kDone &&
               !n.a.parked && !n.a.hung) {
      out.push_back({ActionKind::kAStep, node});
    }
    if (n.a.exists && n.a.phase != APhase::kDone) all_done = false;
    // Watchdog timers fire from engine-event (host) context, so they are
    // enabled even inside a wake window — a timer can trip while its
    // waiter's resume is still in flight.
    if (cfg_.watchdog) {
      if (n.a.exists && (n.a.parked || n.a.wake_pending) && !n.a.wdog_fired) {
        out.push_back({ActionKind::kWdogToken, node});
      }
      if (n.r.phase == RPhase::kWaitTeam && !n.r.wdog_fired) {
        out.push_back({ActionKind::kWdogTeam, node});
      }
      if (n.a.hung && !n.a.hung_wake && !n.a.hang_wdog_fired) {
        out.push_back({ActionKind::kWdogHang, node});
      }
    }
  }
  if (all_done) {
    out.push_back({ActionKind::kRegionEnd, 0});
    return out;
  }
  if (out.empty()) {
    // Engine drained with unfinished members: the run-loop backstop sweep.
    out.push_back({ActionKind::kBackstop, 0});
  }
  return out;
}

void Model::request_recovery(ModelState& s, int node, StepResult& r) const {
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  // Runtime::request_pair_recovery: the auditor hook runs only for a new
  // request; the poisons always run (PR-3 semantics: a later request must
  // still kick a wait entered after the first poison).
  if (proto::pair_request_recovery(n.pair)) {
    if (n.recovery_outstanding && r.ok) {
      r.ok = false;
      r.violation = "second recovery raised before acknowledgement";
    }
    n.recovery_outstanding = true;
  }
  const bool bar_parked = n.a.parked && (n.a.phase == APhase::kBarConsume ||
                                         n.a.phase == APhase::kBarConsumeDup);
  const bool sys_parked = n.a.parked && n.a.phase == APhase::kChunkConsume;
  if (n.barrier.waiter) n.ghost.poison_due_barrier = true;
  if (proto::token_poison(n.barrier, bar_parked)) {
    n.a.parked = false;
    n.a.wake_pending = true;
  }
  if (n.syscall.waiter) n.ghost.poison_due_syscall = true;
  if (proto::token_poison(n.syscall, sys_parked)) {
    n.a.parked = false;
    n.a.wake_pending = true;
  }
}

void Model::insert_token(ModelState& s, int node, bool syscall) const {
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  proto::TokenState& st = syscall ? n.syscall : n.barrier;
  const bool parked_here =
      n.a.parked &&
      (syscall ? n.a.phase == APhase::kChunkConsume
               : (n.a.phase == APhase::kBarConsume ||
                  n.a.phase == APhase::kBarConsumeDup));
  if (proto::token_insert(st, parked_here)) {
    n.a.parked = false;
    n.a.wake_pending = true;
  }
}

void Model::arrive_team(ModelState& s, int node) const {
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  n.r.phase = RPhase::kWaitTeam;
  n.r.wdog_fired = false;
  ++s.team_arrived;
  if (s.team_arrived == s.team_expected) release_team(s);
}

void Model::release_team(ModelState& s) const {
  s.team_arrived = 0;
  for (int node = 0; node < cfg_.ncmp; ++node) {
    NodeState& n = s.nodes[static_cast<std::size_t>(node)];
    if (n.r.phase != RPhase::kWaitTeam) continue;
    n.r.wdog_fired = false;
    if (n.r.slip && cfg_.sync == SyncType::kGlobal) {
      n.r.phase = RPhase::kBarInsertPost;  // token on barrier *exit*
      continue;
    }
    ++n.r.bar;
    n.r.phase = n.r.bar < cfg_.barriers
                    ? (n.r.slip ? RPhase::kBarNote : RPhase::kBarArrive)
                    : RPhase::kDone;
  }
}

StepResult Model::step_r(ModelState& s, int node) const {
  StepResult r;
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  switch (n.r.phase) {
    case RPhase::kFwdPush: {
      // forward_chunk's host segment: fault hook, then the mailbox push.
      SlipPair::Mailbox mb{0, 0, n.r.chunk == cfg_.chunks};
      if (s.injector.on_forward(node, mb, n.syscall.waiter)) {
        request_recovery(s, node, r);
      }
      if (proto::pair_mailbox_push(n.pair, cfg_.mailbox_depth)) {
        n.mb_last.erase(n.mb_last.begin());
      }
      n.mb_last.push_back(mb.last ? 1 : 0);
      n.r.phase = RPhase::kFwdInsert;
      break;
    }
    case RPhase::kFwdInsert: {
      insert_token(s, node, /*syscall=*/true);
      ++n.r.chunk;
      n.r.phase =
          n.r.chunk <= cfg_.chunks ? RPhase::kFwdPush : RPhase::kBarNote;
      break;
    }
    case RPhase::kBarNote: {
      n.pair.r_barriers += 1;
      n.r.owed += 1;
      if (n.pair.a_benched) n.pair.benched_barriers += 1;
      if (s.injector.on_r_divergence_probe(node, n.barrier.waiter)) {
        request_recovery(s, node, r);
      }
      n.r.phase = RPhase::kBarProbe;
      break;
    }
    case RPhase::kBarProbe: {
      const bool probe_armed = cfg_.policy == Policy::kRestart
                                   ? !n.pair.a_benched
                                   : !n.pair.a_recovered_this_region;
      if (cfg_.divergence_threshold > 0 && probe_armed &&
          !n.pair.recovery_requested) {
        const std::uint64_t lag = n.pair.r_barriers > n.pair.a_barriers
                                      ? n.pair.r_barriers - n.pair.a_barriers
                                      : 0;
        const std::uint64_t threshold =
            static_cast<std::uint64_t>(cfg_.divergence_threshold)
            << std::min(n.pair.restarts_this_region, kMaxBackoffShift);
        if (lag > threshold) request_recovery(s, node, r);
      }
      // LOCAL_SYNC runs the insert hook in the next (insert) segment;
      // GLOBAL_SYNC runs it at the head of the arrive segment.
      n.r.phase = cfg_.sync == SyncType::kLocal ? RPhase::kBarInsert
                                                : RPhase::kBarArrive;
      break;
    }
    case RPhase::kBarInsert: {  // LOCAL_SYNC: hook + first entry-insert
      const TokenAction act = s.injector.on_r_token_insert(node);
      if (act == TokenAction::kSkip) {
        n.r.owed -= 1;
        n.r.phase = RPhase::kBarArrive;
      } else {
        if (act == TokenAction::kDuplicate) n.r.owed += 1;
        insert_token(s, node, /*syscall=*/false);
        n.r.owed -= 1;
        n.r.phase = act == TokenAction::kDuplicate ? RPhase::kBarInsertDup
                                                   : RPhase::kBarArrive;
      }
      break;
    }
    case RPhase::kBarInsertDup: {
      insert_token(s, node, /*syscall=*/false);
      n.r.owed -= 1;
      n.r.phase = RPhase::kBarArrive;
      break;
    }
    case RPhase::kBarArrive: {
      if (n.r.slip && cfg_.sync == SyncType::kGlobal) {
        const TokenAction act = s.injector.on_r_token_insert(node);
        n.r.pending_ins = static_cast<std::uint8_t>(act);
        if (act == TokenAction::kSkip) n.r.owed -= 1;
        if (act == TokenAction::kDuplicate) n.r.owed += 1;
      }
      arrive_team(s, node);
      break;
    }
    case RPhase::kBarInsertPost: {  // GLOBAL_SYNC exit-insert
      const auto act = static_cast<TokenAction>(n.r.pending_ins);
      if (act != TokenAction::kSkip) {
        insert_token(s, node, /*syscall=*/false);
        n.r.owed -= 1;
      }
      if (act == TokenAction::kDuplicate) {
        n.r.phase = RPhase::kBarInsertPostDup;
        break;
      }
      ++n.r.bar;
      n.r.phase = n.r.bar < cfg_.barriers ? RPhase::kBarNote : RPhase::kDone;
      break;
    }
    case RPhase::kBarInsertPostDup: {
      insert_token(s, node, /*syscall=*/false);
      n.r.owed -= 1;
      ++n.r.bar;
      n.r.phase = n.r.bar < cfg_.barriers ? RPhase::kBarNote : RPhase::kDone;
      break;
    }
    case RPhase::kWaitTeam:
    case RPhase::kDone:
      r.ok = false;
      r.violation = "R-step scheduled for a non-runnable R-stream";
      return r;
  }
  return r;
}

void Model::a_unwind(ModelState& s, int node) const {
  // RecoveryException thrown → caught in run_member → begin_a_recovery up
  // to the restart decision; all one host segment.
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  proto::AckReconcile rec;
  proto::enforce(proto::pair_ack_recovery(n.pair, n.syscall, rec));
  n.mb_last.clear();
  n.recovery_outstanding = false;  // auditor on_recovery_acked
  n.a.dup_pending = false;
  const bool restart =
      cfg_.policy == Policy::kRestart &&
      n.pair.restarts_this_region <
          static_cast<std::uint64_t>(std::max(0, cfg_.restart_budget));
  if (!restart) {
    n.pair.a_benched = true;
    n.a.phase = APhase::kDone;
    return;
  }
  n.a.phase = APhase::kRecover;  // prepare_restart after the restart charge
}

StepResult Model::a_recover(ModelState& s, int node) const {
  StepResult r;
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  std::uint64_t resync = 0;
  const char* v = proto::pair_prepare_restart(n.pair, n.barrier, resync);
  if (v != nullptr) {
    r.ok = false;
    r.violation = v;
    return r;
  }
  n.a.replay = n.pair.a_barriers;  // begin_fast_forward
  n.a.bar = 0;
  n.a.phase = cfg_.chunks > 0 ? APhase::kChunkCheck : APhase::kBarCheck;
  return r;
}

StepResult Model::step_a(ModelState& s, int node) const {
  StepResult r;
  NodeState& n = s.nodes[static_cast<std::size_t>(node)];
  const auto advance_bar = [&](bool note) {
    if (note) n.pair.a_barriers += 1;
    ++n.a.bar;
    n.a.phase = n.a.bar < cfg_.barriers ? APhase::kBarCheck : APhase::kDone;
  };
  if (n.a.hung_wake) {  // resume from the injected hang park
    n.a.hung = false;
    n.a.hung_wake = false;
    n.a.hang_wdog_fired = false;
    if (!n.pair.recovery_requested) request_recovery(s, node, r);
    a_unwind(s, node);
    if (!r.ok) return r;
    return check(s);
  }
  if (n.a.wake_pending) {  // resume from a semaphore wait
    n.a.wake_pending = false;
    n.a.wdog_fired = false;
    const bool on_syscall = n.a.phase == APhase::kChunkConsume;
    proto::TokenState& st = on_syscall ? n.syscall : n.barrier;
    bool& due = on_syscall ? n.ghost.poison_due_syscall
                           : n.ghost.poison_due_barrier;
    proto::Resume res = proto::Resume::kToken;
    const char* v = proto::token_consume_resume(st, res);
    if (v != nullptr) {
      r.ok = false;
      r.violation = v;
      return r;
    }
    if (due && res == proto::Resume::kToken) {
      r.ok = false;
      r.violation = "waiter resumed past a delivered poison";
      return r;
    }
    due = false;
    if (res == proto::Resume::kPoisoned) {
      a_unwind(s, node);
      return check(s);
    }
    if (on_syscall) {
      n.a.phase = APhase::kChunkPop;
    } else if (n.a.phase == APhase::kBarConsume && n.a.dup_pending) {
      n.a.phase = APhase::kBarConsumeDup;
    } else {
      n.a.dup_pending = false;
      advance_bar(/*note=*/true);
    }
    return check(s);
  }
  switch (n.a.phase) {
    case APhase::kChunkCheck: {
      if (n.pair.recovery_requested) {
        a_unwind(s, node);
        break;
      }
      // for_chunks: a replaying A-stream skips the whole dynamic loop.
      n.a.phase = n.a.replay > 0 ? APhase::kBarCheck : APhase::kChunkConsume;
      break;
    }
    case APhase::kChunkConsume: {
      proto::Acquire acq = proto::Acquire::kTaken;
      const char* v = proto::token_consume_begin(n.syscall, acq);
      if (v != nullptr) {
        r.ok = false;
        r.violation = v;
        return r;
      }
      if (acq == proto::Acquire::kMustWait) {
        n.a.parked = true;
        n.a.wdog_fired = false;
      } else {
        n.a.phase = APhase::kChunkPop;
      }
      break;
    }
    case APhase::kChunkPop: {
      if (n.pair.mb_size == 0) {
        // A token with no decision behind it needs a this-region cause
        // (the per-region tripwire the live runtime asserts).
        if (!proto::pair_unpaired_token_explained(n.pair)) {
          r.ok = false;
          r.violation =
              "syscall token consumed with no decision and no "
              "this-region drop or restart to explain it";
          return r;
        }
        n.a.phase = APhase::kBarCheck;  // abandon the loop
        break;
      }
      const char* v = proto::pair_mailbox_pop(n.pair);
      if (v != nullptr) {
        r.ok = false;
        r.violation = v;
        return r;
      }
      const bool last = n.mb_last.front() != 0;
      n.mb_last.erase(n.mb_last.begin());
      n.a.phase = last ? APhase::kBarCheck : APhase::kChunkCheck;
      break;
    }
    case APhase::kBarCheck: {
      if (n.pair.recovery_requested) {
        a_unwind(s, node);
        break;
      }
      if (n.a.replay > 0) {
        --n.a.replay;  // note_replay_barrier: pass without consume or note
        advance_bar(/*note=*/false);
        break;
      }
      if (s.injector.on_a_hang(node)) {
        n.a.hung = true;
        n.a.hang_wdog_fired = false;
        break;
      }
      const TokenAction act = s.injector.on_a_token_consume(node);
      if (act == TokenAction::kSkip) {
        advance_bar(/*note=*/false);  // barges past: no consume, no note
        break;
      }
      n.a.dup_pending = act == TokenAction::kDuplicate;
      n.a.phase = APhase::kBarConsume;
      break;
    }
    case APhase::kBarConsume:
    case APhase::kBarConsumeDup: {
      proto::Acquire acq = proto::Acquire::kTaken;
      const char* v = proto::token_consume_begin(n.barrier, acq);
      if (v != nullptr) {
        r.ok = false;
        r.violation = v;
        return r;
      }
      if (acq == proto::Acquire::kMustWait) {
        n.a.parked = true;
        n.a.wdog_fired = false;
      } else if (n.a.phase == APhase::kBarConsume && n.a.dup_pending) {
        n.a.phase = APhase::kBarConsumeDup;
      } else {
        n.a.dup_pending = false;
        advance_bar(/*note=*/true);
      }
      break;
    }
    case APhase::kRecover: {
      StepResult rr = a_recover(s, node);
      if (!rr.ok) return rr;
      return check(s);
    }
    case APhase::kDone:
      r.ok = false;
      r.violation = "A-step scheduled for a finished A-stream";
      return r;
  }
  if (!r.ok) return r;
  return check(s);
}

void Model::backstop(ModelState& s, StepResult& r) const {
  bool rescued = false;
  for (int node = 0; node < cfg_.ncmp; ++node) {
    NodeState& n = s.nodes[static_cast<std::size_t>(node)];
    if (n.barrier.waiter || n.syscall.waiter) {
      request_recovery(s, node, r);
      rescued = true;
    }
    if (n.a.hung && !n.a.hung_wake) {
      n.a.hung_wake = true;
      rescued = true;
    }
  }
  if (!rescued) {
    r.ok = false;
    r.violation =
        "wedged: no runnable member and the backstop sweep found "
        "nothing to rescue";
  }
}

StepResult Model::region_end(ModelState& s) const {
  StepResult r = check(s);
  if (!r.ok) return r;
  for (int node = 0; node < cfg_.ncmp; ++node) {
    NodeState& n = s.nodes[static_cast<std::size_t>(node)];
    // Auditor on_region_end: the join completed, so nobody is parked.
    if (n.barrier.waiter || n.syscall.waiter) {
      r.ok = false;
      r.violation = "semaphore waiter survived the region join";
      return r;
    }
    const bool recovered = n.pair.recoveries > n.recoveries_at_region_start;
    (void)s.degrade.on_region_end(node, recovered);
  }
  ++s.region;
  if (s.region >= cfg_.regions) {
    s.finished = true;  // run-end: check(s) above is the final audit
    return r;
  }
  dispatch_region(s);
  return check(s);
}

StepResult Model::step(ModelState& s, const Action& a) const {
  switch (a.kind) {
    case ActionKind::kRStep: {
      StepResult r = step_r(s, a.node);
      if (!r.ok) return r;
      return check(s);
    }
    case ActionKind::kAStep:
      return step_a(s, a.node);
    case ActionKind::kWdogToken: {
      StepResult r;
      NodeState& n = s.nodes[static_cast<std::size_t>(a.node)];
      n.a.wdog_fired = true;
      request_recovery(s, a.node, r);  // watchdog_rescue, token sites
      if (!r.ok) return r;
      return check(s);
    }
    case ActionKind::kWdogTeam: {
      StepResult r;
      NodeState& n = s.nodes[static_cast<std::size_t>(a.node)];
      n.r.wdog_fired = true;
      // watchdog_rescue kTeamBarrier: sweep every CMP.
      for (int node = 0; node < cfg_.ncmp; ++node) {
        NodeState& m = s.nodes[static_cast<std::size_t>(node)];
        if (m.barrier.waiter || m.syscall.waiter) {
          request_recovery(s, node, r);
        }
        if (m.a.hung && !m.a.hung_wake) m.a.hung_wake = true;
      }
      if (!r.ok) return r;
      return check(s);
    }
    case ActionKind::kWdogHang: {
      NodeState& n = s.nodes[static_cast<std::size_t>(a.node)];
      n.a.hang_wdog_fired = true;
      n.a.hung_wake = true;  // wake; hang_park raises recovery on resume
      return check(s);
    }
    case ActionKind::kBackstop: {
      StepResult r;
      backstop(s, r);
      if (!r.ok) return r;
      return check(s);
    }
    case ActionKind::kRegionEnd:
      return region_end(s);
  }
  StepResult r;
  r.ok = false;
  r.violation = "unknown action";
  return r;
}

StepResult Model::check(const ModelState& s) const {
  StepResult r;
  const auto fail = [&](int node, const std::string& what) {
    r.ok = false;
    std::ostringstream msg;
    msg << "node " << node << ": " << what;
    r.violation = msg.str();
  };
  for (int node = 0; node < cfg_.ncmp && r.ok; ++node) {
    const NodeState& n = s.nodes[static_cast<std::size_t>(node)];
    const auto d = [](std::uint64_t now, std::uint64_t base) {
      return static_cast<std::int64_t>(now - base);
    };
    // Token conservation (audit.hpp), valid in EVERY state.
    const std::int64_t bar_ins = d(n.barrier.inserted, n.base_barrier.inserted);
    const std::int64_t bar_cons =
        d(n.barrier.consumed, n.base_barrier.consumed);
    const std::int64_t bar_drained =
        d(n.barrier.drained, n.base_barrier.drained);
    if (n.barrier.count !=
        n.pair.initial_tokens + bar_ins - bar_cons - bar_drained) {
      fail(node, "barrier-token conservation violated");
      break;
    }
    const std::int64_t sys_ins = d(n.syscall.inserted, n.base_syscall.inserted);
    const std::int64_t sys_cons =
        d(n.syscall.consumed, n.base_syscall.consumed);
    const std::int64_t sys_drained =
        d(n.syscall.drained, n.base_syscall.drained);
    if (n.syscall.count != sys_ins - sys_cons - sys_drained) {
      fail(node, "syscall-token conservation violated");
      break;
    }
    if (n.barrier.count < 0 || n.syscall.count < 0) {
      fail(node, "negative token count");
      break;
    }
    // Insert/visit agreement, adjusted by the tokens the R-stream still
    // owes for visits whose insert segment has not completed.
    const FaultInjector::NodeLedger& led = s.injector.ledger(node);
    const std::int64_t suppressed =
        d(led.suppressed_inserts, n.base_ledger.suppressed_inserts);
    const std::int64_t extra_ins =
        d(led.extra_inserts, n.base_ledger.extra_inserts);
    const std::int64_t extra_cons =
        d(led.extra_consumes, n.base_ledger.extra_consumes);
    const std::int64_t r_vis = d(n.pair.r_barriers, n.base_pair.r_barriers);
    if (bar_ins != r_vis - suppressed + extra_ins -
                       static_cast<std::int64_t>(n.r.owed)) {
      fail(node, "R-stream inserts disagree with its barrier visits");
      break;
    }
    // Consume/visit agreement. The duplicate-consume fault is recorded
    // in the ledger at hook time, one micro-op before the first of the
    // two consumes lands; while the episode is still in kBarConsume with
    // the duplicate pending, that ledger entry is not yet matched by a
    // consume and must be discounted.
    const std::int64_t a_vis = d(n.pair.a_barriers, n.base_pair.a_barriers);
    const std::int64_t restart_skipped = d(
        n.pair.restart_skipped_barriers, n.base_pair.restart_skipped_barriers);
    const std::int64_t dup_announced =
        (n.a.phase == APhase::kBarConsume && n.a.dup_pending) ? 1 : 0;
    if (bar_cons != a_vis - restart_skipped + extra_cons - dup_announced) {
      fail(node, "A-stream consumes disagree with its barrier visits");
      break;
    }
    // Allowance bound.
    if (a_vis - restart_skipped + extra_cons - dup_announced >
        n.pair.initial_tokens + bar_ins - bar_drained) {
      fail(node, "A-stream ran past the token allowance");
      break;
    }
    // Mailbox conservation + coverage. One forwarded decision may be
    // in flight: pushed, with its syscall-token insert still pending.
    const std::int64_t mb_expect = d(n.pair.mb_pushed, n.base_pair.mb_pushed) -
                                   d(n.pair.mb_popped, n.base_pair.mb_popped) -
                                   d(n.pair.mb_dropped, n.base_pair.mb_dropped) -
                                   d(n.pair.mb_cleared, n.base_pair.mb_cleared);
    if (static_cast<std::int64_t>(n.pair.mb_size) != mb_expect) {
      fail(node, "mailbox push/pop/drop conservation violated");
      break;
    }
    if (n.mb_last.size() != n.pair.mb_size) {
      fail(node, "mailbox value queue out of sync with its counter");
      break;
    }
    // One decision may be pushed with its token insert still pending
    // (R mid-forward), and one token may be consumed with its pop still
    // pending (A in kChunkPop).
    const std::int64_t r_in_flight = n.r.phase == RPhase::kFwdInsert ? 1 : 0;
    const std::int64_t a_in_flight = n.a.phase == APhase::kChunkPop ? 1 : 0;
    if (static_cast<std::int64_t>(n.pair.mb_size) >
        n.syscall.count + r_in_flight + a_in_flight) {
      fail(node, "queued scheduling decisions exceed outstanding syscall "
                 "tokens");
      break;
    }
    // Recovery ordering ghost stays consistent with the pair flag.
    if (n.recovery_outstanding != n.pair.recovery_requested) {
      fail(node, "auditor recovery ledger out of sync with the pair");
      break;
    }
  }
  return r;
}

}  // namespace ssomp::slip::model
