#include "slip/model/checker.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace ssomp::slip::model {
namespace {

/// 128-bit key from two independent FNV-1a passes over the canonical
/// encoding (different offset bases and a byte salt on the second pass).
/// Collisions would silently prune distinct states, so the combined
/// width is kept far above what a few hundred thousand states need.
struct Key {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const Key&, const Key&) = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
  }
};

Key hash_state(const ModelState& s, const ModelConfig& cfg) {
  std::string bytes;
  bytes.reserve(512);
  s.encode(bytes, cfg);
  Key k{14695981039346656037ull, 0xcbf29ce484222325ull};
  for (unsigned char c : bytes) {
    k.lo = (k.lo ^ c) * 1099511628211ull;
    k.hi = (k.hi ^ (c + 0x42u)) * 0x100000001b3ull;
  }
  return k;
}

struct Visit {
  Key parent{};
  Action action{};
  std::uint32_t depth = 0;
  bool has_parent = false;
};

void tally(const ModelState& s, CheckStats& st) {
  st.faults_fired = std::max(st.faults_fired, s.injector.fired());
  std::uint64_t rec = 0;
  std::uint64_t rst = 0;
  for (const NodeState& n : s.nodes) {
    rec += n.pair.recoveries;
    rst += n.pair.restarts_total;
  }
  st.recoveries = std::max(st.recoveries, rec);
  st.restarts = std::max(st.restarts, rst);
  st.demotions = std::max(st.demotions, s.degrade.demotions());
  if (s.finished) ++st.terminal_states;
}

std::vector<Action> rebuild_schedule(
    const std::unordered_map<Key, Visit, KeyHash>& visited, const Key& leaf,
    const Action& last) {
  std::vector<Action> sched{last};
  Key at = leaf;
  for (;;) {
    const Visit& v = visited.at(at);
    if (!v.has_parent) break;
    sched.push_back(v.action);
    at = v.parent;
  }
  std::reverse(sched.begin(), sched.end());
  return sched;
}

}  // namespace

CheckResult run_checker(const Model& model, const CheckerOptions& opts) {
  CheckResult res;
  const ModelConfig& cfg = model.config();

  ModelState init = model.initial();
  {
    StepResult first = model.check(init);
    if (!first.ok) {
      res.ok = false;
      res.violation = first.violation;
      res.stats.states_visited = 1;
      return res;
    }
  }

  std::unordered_map<Key, Visit, KeyHash> visited;
  std::deque<std::pair<Key, ModelState>> frontier;
  const Key k0 = hash_state(init, cfg);
  visited.emplace(k0, Visit{});
  tally(init, res.stats);
  frontier.emplace_back(k0, std::move(init));

  while (!frontier.empty()) {
    auto [key, state] = std::move(frontier.front());
    frontier.pop_front();
    const std::uint32_t depth = visited.at(key).depth;
    res.stats.max_depth_seen = std::max(res.stats.max_depth_seen, depth);
    if (depth >= opts.max_depth) {
      res.truncated = true;
      continue;
    }
    for (const Action& a : model.enabled(state)) {
      ModelState next = state;  // copy, then step in place
      if (a.kind == ActionKind::kBackstop) ++res.stats.backstop_runs;
      StepResult r = model.step(next, a);
      ++res.stats.transitions;
      if (!r.ok) {
        res.ok = false;
        res.violation = r.violation;
        res.schedule = rebuild_schedule(visited, key, a);
        res.stats.states_visited = visited.size();
        return res;
      }
      const Key nk = hash_state(next, cfg);
      auto [it, fresh] = visited.emplace(
          nk, Visit{key, a, depth + 1, /*has_parent=*/true});
      if (!fresh) continue;
      tally(next, res.stats);
      if (visited.size() >= opts.max_states) {
        res.truncated = true;
        res.stats.states_visited = visited.size();
        return res;
      }
      if (!next.finished) frontier.emplace_back(nk, std::move(next));
    }
  }
  res.stats.states_visited = visited.size();
  return res;
}

CheckResult random_walk(const Model& model, std::uint64_t seed,
                        std::uint32_t max_steps) {
  CheckResult res;
  ModelState s = model.initial();
  std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ull;
  const auto next_u64 = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (std::uint32_t step = 0; step < max_steps && !s.finished; ++step) {
    const std::vector<Action> acts = model.enabled(s);
    if (acts.empty()) break;
    const Action a = acts[next_u64() % acts.size()];
    if (a.kind == ActionKind::kBackstop) ++res.stats.backstop_runs;
    StepResult r = model.step(s, a);
    res.schedule.push_back(a);
    ++res.stats.transitions;
    if (!r.ok) {
      res.ok = false;
      res.violation = r.violation;
      return res;
    }
  }
  res.truncated = !s.finished;
  tally(s, res.stats);
  res.stats.states_visited = res.stats.transitions + 1;
  return res;
}

}  // namespace ssomp::slip::model
