// The canonical verification grid.
//
// Small enough to enumerate exhaustively in CI, wide enough to cover the
// protocol's hard axes: both token allowances, every fault kind from
// faultinject.hpp (plus the fault-free baseline), bench and restart
// recovery, degradation off and on (with demote/probation tightened so
// the 3-region run actually drives the state machine through demotion
// and probation), and a global-sync slice for the exit-insert path.
#pragma once

#include <vector>

#include "slip/model/model.hpp"

namespace ssomp::slip::model {

[[nodiscard]] std::vector<ModelConfig> default_grid();

}  // namespace ssomp::slip::model
