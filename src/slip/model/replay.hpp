// Counterexample replay: drive a model schedule through the REAL objects.
//
// The harness builds the live protocol objects (SlipPair, TokenSemaphore,
// FaultInjector, DegradationController) on a real simulation Engine, with
// one fiber per A-stream and a driver fiber executing the R-stream,
// watchdog, backstop, and master segments inline. The schedule's actions
// are executed one at a time — A-stream steps via a baton protocol
// (the fiber parks between commands), semaphore resumes by letting the
// engine deliver the pending wake event — and the model is stepped in
// lockstep. After every action where live and model are synchronized, the
// full protocol state (PairState, both TokenStates, injector ledgers,
// degradation counters) is compared field-for-field.
//
// The one place live and model can transiently decouple: a sweep action
// (team-barrier watchdog, backstop) can wake SEVERAL parked A-streams at
// once. The engine delivers those resumes in wake-issue order the moment
// the driver next yields, while the schedule orders them explicitly; the
// harness executes the whole batch on the first resume action, steps the
// model through the remaining resume actions as they arrive, and resumes
// comparing when the batch drains. Schedules that interleave a same-node
// R-stream or watchdog action into such a batch are reported as not
// strictly replayable rather than silently mis-compared.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "slip/model/schedule.hpp"

namespace ssomp::slip::model {

struct ReplayResult {
  /// Schedule executed to its end (or to the expected violation) with
  /// every synchronized comparison passing.
  bool ok = false;
  /// Every synchronized live-vs-model comparison matched.
  bool fidelity_ok = true;
  std::string fidelity_error;
  /// Model-detected invariant violation during the replayed schedule.
  bool violation_hit = false;
  std::string violation;
  std::size_t violation_step = 0;
  /// Protocol-precondition violations raised by the LIVE objects
  /// (captured via proto::violation_sink instead of aborting).
  std::vector<std::string> live_violations;
  std::size_t steps_executed = 0;
  std::size_t compares = 0;
};

/// Replays `sched` on live objects in lockstep with the model. When
/// `sched.expect` is non-empty, success requires the model to report a
/// violation containing that text at some step; when it is empty, success
/// requires a violation-free run to the schedule's end.
[[nodiscard]] ReplayResult replay_schedule(const Schedule& sched);

}  // namespace ssomp::slip::model
