// Serialized counterexample schedules.
//
// A schedule file pins everything a run needs to be deterministic: the
// model configuration (which doubles as the live-engine configuration
// for replay) plus the exact action sequence. Text format, one
// directive per line, so counterexamples are diffable and reviewable:
//
//   ssomp-schedule-v1
//   # free-text comments
//   ncmp 2
//   tokens 1
//   sync local
//   regions 1
//   barriers 2
//   chunks 0
//   mailbox-depth 4
//   threshold 1
//   policy bench
//   restart-budget 3
//   watchdog 0
//   degrade 0 2 4
//   fault starve-token,0,1
//   expect waiter resumed past a delivered poison
//   step r 0
//   step a 0
//   ...
//
// Config lines may appear in any order before the first `step`; omitted
// lines keep ModelConfig defaults. `expect` (optional) records the
// violation the schedule was minimized to reach — replay asserts that
// this violation (and not some other) reproduces.
#pragma once

#include <string>
#include <vector>

#include "slip/model/model.hpp"

namespace ssomp::slip::model {

struct Schedule {
  ModelConfig config{};
  std::vector<Action> actions;
  /// Expected violation text; empty for a clean (property-test) schedule.
  std::string expect;
};

[[nodiscard]] std::string serialize_schedule(const Schedule& s);

struct ScheduleParse {
  bool ok = false;
  Schedule value;
  std::string error;
};

[[nodiscard]] ScheduleParse parse_schedule(const std::string& text);

}  // namespace ssomp::slip::model
