// Bounded explicit-state enumeration of the protocol model.
//
// Breadth-first search over Model states: every enabled action of every
// frontier state is applied, successors are deduplicated by a 128-bit
// hash of the canonical state encoding, and every transition runs the
// full invariant battery. BFS means the first violation found is at
// minimal scheduling depth — the counterexample schedule is already
// minimized, no separate shrinking pass needed.
//
// Bounds: `max_states` caps the visited set (the search reports
// truncated=true when it gives up) and `max_depth` caps schedule length
// (a backstop against modelling bugs that open an infinite region; real
// configs terminate long before it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "slip/model/model.hpp"

namespace ssomp::slip::model {

struct CheckerOptions {
  std::uint64_t max_states = 2000000;
  std::uint32_t max_depth = 4096;
};

/// Aggregate facts about the explored space, for coverage assertions in
/// tests ("this config really did exercise a restart / a demotion").
struct CheckStats {
  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;   // finished == true
  std::uint32_t max_depth_seen = 0;
  std::uint64_t faults_fired = 0;      // max injector.fired() over the space
  std::uint64_t recoveries = 0;        // max total pair recoveries seen
  std::uint64_t restarts = 0;          // max total restarts seen
  std::uint64_t demotions = 0;         // max degrade demotions seen
  std::uint64_t backstop_runs = 0;     // times the wedge backstop fired
};

struct CheckResult {
  bool ok = true;             // no violation found in the explored space
  bool truncated = false;     // state budget or depth bound hit
  std::string violation;      // first (minimal-depth) violation text
  std::vector<Action> schedule;  // actions from initial() to the violation
  CheckStats stats;
};

/// Exhaustively explores `model` within `opts` bounds.
[[nodiscard]] CheckResult run_checker(const Model& model,
                                      const CheckerOptions& opts = {});

/// Follows one pseudo-random path from initial() to termination (or the
/// step bound) and returns the schedule taken; used by the live-replay
/// property test. The walk never picks disabled actions, so the schedule
/// is always replayable. A violation found on the walk is reported the
/// same way run_checker reports one.
[[nodiscard]] CheckResult random_walk(const Model& model, std::uint64_t seed,
                                      std::uint32_t max_steps = 4096);

}  // namespace ssomp::slip::model
