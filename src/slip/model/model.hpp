// Explicit-state model of the slipstream token/recovery protocol.
//
// The model steps the SAME transition functions the engine runs
// (slip/protocol.hpp) plus the real FaultInjector and
// DegradationController embedded by value, over a small configuration:
// up to 2 CMPs, a few tokens, a few barriers/chunks per region, one fault
// plan, restart/degrade on or off. What is abstracted away is only
// timing: the engine's yield-delimited execution is discretized into
// micro-ops at exactly the points where the real fibers can interleave
// (every cycle charge is a yield), so every reachable ordering of the
// real engine maps to a path of the model.
//
// Interleaving soundness. The engine breaks timestamp ties by insertion
// order, which gives one load-bearing guarantee the model mirrors: a
// parked fiber woken by insert()/poison() resumes BEFORE any charging
// operation issued afterwards completes. The model therefore restricts
// enabled actions while a wake is pending to that fiber's resume plus
// host-only (non-charging) operations — which is exactly the set of
// orderings the engine can produce: a charging op started after the wake
// completes after the resume (model: resume first, then the op), and a
// charging op started before the wake commutes with the resume (it
// touches a different pair or the team phaser).
//
// Every state is checked against every audit.hpp identity (token
// conservation, insert/visit and consume/visit agreement, allowance
// bound, mailbox conservation and coverage, recovery ordering) plus
// model-only ghost invariants the boundary auditor cannot see:
// a delivered poison may never be resumed past, an unpaired syscall
// token needs a this-region cause, and the system may never wedge with
// the backstop unable to rescue anyone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/degrade.hpp"
#include "slip/config.hpp"
#include "slip/faultinject.hpp"
#include "slip/protocol.hpp"

namespace ssomp::slip::model {

/// Recovery policy mirror (rt/options.hpp is a heavier include and the
/// model needs only the branch begin_a_recovery takes).
enum class Policy : std::uint8_t { kBench = 0, kRestart };

[[nodiscard]] constexpr std::string_view to_string(Policy p) {
  return p == Policy::kBench ? "bench" : "restart";
}

struct ModelConfig {
  int ncmp = 2;
  int tokens = 1;             // initial barrier-token allowance
  SyncType sync = SyncType::kLocal;
  int regions = 1;
  int barriers = 2;           // barrier episodes per region body
  int chunks = 0;             // forwarded dynamic chunks per region (per CMP)
  std::uint64_t mailbox_depth = 4;
  int divergence_threshold = 1;
  Policy policy = Policy::kBench;
  int restart_budget = 3;
  bool watchdog = false;      // hang-detection timers armed
  bool degrade_enabled = false;
  int demote_after = 2;
  int probation = 4;
  FaultPlan fault{};

  [[nodiscard]] std::string describe() const;
};

/// One scheduling decision: which actor takes its next micro-op. The
/// micro-op itself is determined by the actor's current phase, so a
/// schedule (sequence of actions) fully determines the run.
enum class ActionKind : std::uint8_t {
  kRStep = 0,    // the node's R-stream runs its next yield-delimited segment
  kAStep,        // the node's A-stream runs its next segment (or resumes)
  kWdogToken,    // watchdog fires on the A-stream's semaphore wait
  kWdogTeam,     // watchdog fires on the R-stream's team-barrier wait
  kWdogHang,     // watchdog fires on a hang-parked A-stream
  kBackstop,     // end-of-run divergence backstop sweep (only when wedged)
  kRegionEnd,    // master: join completed; audit, degrade, reset/terminate
};

struct Action {
  ActionKind kind = ActionKind::kRStep;
  int node = 0;

  friend bool operator==(const Action&, const Action&) = default;
};

[[nodiscard]] std::string to_string(const Action& a);

/// R-stream control position (phases are the engine's yield boundaries).
enum class RPhase : std::uint8_t {
  kFwdPush = 0,   // host: fault hook + mailbox push for chunk `chunk`
  kFwdInsert,     // charge: syscall-token insert for the pushed chunk
  kBarNote,       // host: note_r_barrier + benched note + probe fault hook
  kBarProbe,      // charge: divergence probe (read_count + lag test)
  kBarInsert,     // charge: token insert on barrier entry (LOCAL_SYNC)
  kBarInsertDup,  // charge: surplus insert (kExtraToken fired)
  kBarArrive,     // charge: arrive at the team barrier
  kWaitTeam,      // parked at the team barrier
  kBarInsertPost, // charge: token insert on barrier exit (GLOBAL_SYNC)
  kBarInsertPostDup,
  kDone,          // region body finished (joined)
};

/// A-stream control position.
enum class APhase : std::uint8_t {
  kChunkCheck = 0,  // host: check_recovery at dynamic-loop head
  kChunkConsume,    // charge: syscall-semaphore consume (may park)
  kChunkPop,        // charge+host: mailbox load, empty-check, pop
  kBarCheck,        // host: check_recovery / replay retire / hang hook
  kBarConsume,      // charge: barrier-token consume (may park)
  kBarConsumeDup,   // charge: duplicate consume (kDuplicateBarrier fired)
  kRecover,         // host: ack + bench-or-restart decision
  kDone,            // region body finished, or benched, or no A this region
};

struct RActor {
  RPhase phase = RPhase::kDone;
  std::uint8_t bar = 0;    // next barrier episode index
  std::uint8_t chunk = 0;  // next chunk index
  bool slip = true;        // node has an A-stream this region
  bool wdog_fired = false; // team-barrier watchdog already fired this wait
  /// Barrier tokens this R-stream owes but has not yet inserted (visit
  /// noted, insert segment pending). Adjusts the insert/visit identity so
  /// it can be checked in EVERY state, not only at region boundaries.
  std::uint8_t owed = 0;
  /// GLOBAL_SYNC: on_r_token_insert verdict carried across the team
  /// barrier to the exit-insert segment (the hook runs on entry).
  std::uint8_t pending_ins = 0;  // TokenAction

  friend bool operator==(const RActor&, const RActor&) = default;
};

struct AActor {
  APhase phase = APhase::kDone;
  std::uint8_t bar = 0;
  bool exists = false;       // member built this region
  bool parked = false;       // blocked in a semaphore wait
  bool wake_pending = false; // woken, resume event not yet delivered
  bool hung = false;         // kAStreamHang raw park
  bool hung_wake = false;    // woken from the hang park
  bool dup_pending = false;  // second consume owed (kDuplicateBarrier)
  std::uint64_t replay = 0;  // fast-forward barriers left to retire
  bool wdog_fired = false;   // token watchdog already fired this wait
  bool hang_wdog_fired = false;

  friend bool operator==(const AActor&, const AActor&) = default;
};

/// Ghost bits the live protocol does not store but the checker tracks to
/// state invariants precisely (classic model-checking instrumentation).
struct Ghost {
  /// token_poison latched (or should have latched) a poison for the
  /// currently registered waiter. Post-fix this mirrors
  /// TokenState::poisoned exactly; under proto::LegacyBugs it can be true
  /// while the real flag was dropped — the waiter then resumes past a
  /// delivered poison, which is the invariant violation.
  bool poison_due_barrier = false;
  bool poison_due_syscall = false;

  friend bool operator==(const Ghost&, const Ghost&) = default;
};

/// Per-node protocol + bookkeeping state.
struct NodeState {
  proto::PairState pair{};
  proto::TokenState barrier{};
  proto::TokenState syscall{};
  /// Control-flow-relevant mailbox values: the `last` bit per queued
  /// decision (front = stalest). Mirrors pair.mb_size.
  std::vector<std::uint8_t> mb_last;
  RActor r{};
  AActor a{};
  Ghost ghost{};
  /// Auditor baselines, snapshotted at region reset (audit.hpp::Baseline).
  proto::PairState base_pair{};
  proto::TokenState base_barrier{};
  proto::TokenState base_syscall{};
  FaultInjector::NodeLedger base_ledger{};
  std::uint64_t recoveries_at_region_start = 0;
  bool recovery_outstanding = false;  // auditor's ordering ghost

  friend bool operator==(const NodeState&, const NodeState&) = default;
};

struct ModelState {
  std::vector<NodeState> nodes;
  FaultInjector injector;  // by value: visit counters evolve with the state
  rt::DegradationController degrade;
  std::uint8_t region = 0;
  std::uint8_t team_arrived = 0;   // R-streams arrived at the current episode
  std::uint8_t team_expected = 0;  // == ncmp (all R-streams participate)
  bool finished = false;           // all regions done, run-end audit passed

  /// Canonical byte encoding (fixed field order) for hashing/visited-set
  /// keys. FaultInjector/DegradationController internals are encoded via
  /// their accessors; the injector RNG is excluded (see faultinject.hpp).
  void encode(std::string& out, const ModelConfig& cfg) const;
};

/// A step's outcome: either fine, or the text of the violated invariant.
struct StepResult {
  bool ok = true;
  std::string violation;
};

class Model {
 public:
  explicit Model(const ModelConfig& cfg);

  [[nodiscard]] const ModelConfig& config() const { return cfg_; }

  /// The initial state: region 0 dispatched, all actors at their region
  /// start positions.
  [[nodiscard]] ModelState initial() const;

  /// All actions enabled in `s` (empty only for finished states — the
  /// backstop action is enabled, by design, exactly when the real
  /// backstop would run: nothing else can move and the run is not done).
  [[nodiscard]] std::vector<Action> enabled(const ModelState& s) const;

  /// Applies `a` to `s` in place; `a` must be enabled. The result carries
  /// the first invariant violation found in the successor state, if any.
  [[nodiscard]] StepResult step(ModelState& s, const Action& a) const;

  /// Full invariant battery over a state (also run internally by step()).
  [[nodiscard]] StepResult check(const ModelState& s) const;

 private:
  void dispatch_region(ModelState& s) const;
  void reset_node(ModelState& s, int node) const;
  [[nodiscard]] StepResult region_end(ModelState& s) const;
  void request_recovery(ModelState& s, int node, StepResult& r) const;
  void insert_token(ModelState& s, int node, bool syscall) const;
  [[nodiscard]] StepResult step_r(ModelState& s, int node) const;
  [[nodiscard]] StepResult step_a(ModelState& s, int node) const;
  void a_unwind(ModelState& s, int node) const;
  [[nodiscard]] StepResult a_recover(ModelState& s, int node) const;
  void backstop(ModelState& s, StepResult& r) const;
  [[nodiscard]] bool any_wake_pending(const ModelState& s) const;
  void release_team(ModelState& s) const;
  void arrive_team(ModelState& s, int node) const;

  ModelConfig cfg_;
};

}  // namespace ssomp::slip::model
