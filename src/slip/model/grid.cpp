#include "slip/model/grid.hpp"

namespace ssomp::slip::model {
namespace {

bool fault_wants_chunks(FaultKind k) {
  // Faults that live on the syscall-semaphore / mailbox path are only
  // reachable when the region actually forwards decisions.
  return k == FaultKind::kCorruptForward || k == FaultKind::kRecoverInSyscall;
}

bool fault_wants_watchdog(FaultKind k) {
  // The watchdog is what turns these faults into recoverable events; the
  // fault-free baseline keeps it on too so the rescue machinery is
  // enumerated against healthy runs.
  return k == FaultKind::kNone || k == FaultKind::kAStreamHang ||
         k == FaultKind::kRStreamTokenLoss;
}

ModelConfig base_config() {
  ModelConfig c;
  c.ncmp = 2;
  c.sync = SyncType::kLocal;
  c.regions = 2;
  c.barriers = 2;
  c.chunks = 0;
  c.mailbox_depth = 2;
  c.divergence_threshold = 1;
  c.restart_budget = 2;
  // Tight degradation knobs: with 2-3 regions, demote_after=1 and
  // probation=1 let a single faulty region drive demote -> probation ->
  // re-promote (or a second strike) inside the enumerated horizon.
  c.demote_after = 1;
  c.probation = 1;
  return c;
}

}  // namespace

std::vector<ModelConfig> default_grid() {
  std::vector<ModelConfig> grid;

  const FaultKind kinds[] = {
      FaultKind::kNone,
      FaultKind::kSkipBarrier,
      FaultKind::kDuplicateBarrier,
      FaultKind::kStarveToken,
      FaultKind::kExtraToken,
      FaultKind::kRecoverInConsume,
      FaultKind::kRecoverInSyscall,
      FaultKind::kCorruptForward,
      FaultKind::kAStreamHang,
      FaultKind::kRStreamTokenLoss,
  };

  for (int tokens : {1, 2}) {
    for (Policy policy : {Policy::kBench, Policy::kRestart}) {
      for (bool degrade : {false, true}) {
        for (FaultKind kind : kinds) {
          ModelConfig c = base_config();
          c.tokens = tokens;
          c.policy = policy;
          c.degrade_enabled = degrade;
          c.watchdog = fault_wants_watchdog(kind);
          // watchdog x restart multiplies rescue x replay interleavings;
          // a single-restart budget keeps those configs exhaustively
          // enumerable (~1.8M states) while still covering the restart
          // path and the budget-exhausted bench fallback.
          if (c.watchdog && policy == Policy::kRestart) c.restart_budget = 1;
          if (fault_wants_chunks(kind)) {
            // The fault lives on the syscall/mailbox path; one barrier
            // episode keeps the product space exhaustive within budget.
            c.chunks = 1;
            c.barriers = 1;
          }
          if (kind != FaultKind::kNone) {
            c.fault.kind = kind;
            c.fault.node = 0;
            c.fault.visit = 1;
          }
          if (degrade) c.regions = 3;  // room for demote + probation verdict
          grid.push_back(c);
        }
      }
    }
  }

  // Global-sync slice: exit-side token inserts ride the team barrier, so
  // the insert/arrive orderings differ from the LOCAL_SYNC default.
  for (Policy policy : {Policy::kBench, Policy::kRestart}) {
    for (FaultKind kind :
         {FaultKind::kNone, FaultKind::kSkipBarrier, FaultKind::kStarveToken}) {
      ModelConfig c = base_config();
      c.sync = SyncType::kGlobal;
      c.tokens = 1;
      c.policy = policy;
      // watchdog x restart explodes the space under GLOBAL_SYNC (team
      // rescue x replay interleavings); that pairing is covered in the
      // LOCAL_SYNC block, so the global slice arms the watchdog only
      // for the bench policy.
      c.watchdog = fault_wants_watchdog(kind) && policy == Policy::kBench;
      if (kind != FaultKind::kNone) {
        c.fault.kind = kind;
        c.fault.node = 0;
        c.fault.visit = 1;
      }
      grid.push_back(c);
    }
  }

  return grid;
}

}  // namespace ssomp::slip::model
