#include "slip/model/replay.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "rt/degrade.hpp"
#include "sim/engine.hpp"
#include "slip/faultinject.hpp"
#include "slip/pair.hpp"

namespace ssomp::slip::model {
namespace {

constexpr sim::Cycles kRestartCost = 200;       // mirrors rt/runtime.cpp
constexpr std::uint64_t kMaxBackoffShift = 16;  // mirrors rt/runtime.cpp

/// Commands the driver issues to an A-stream fiber through its baton.
enum class ACmd : std::uint8_t {
  kNone = 0,
  kChunkCheck,   // host: unwind if recovery requested, else nothing
  kSyscallConsume,
  kChunkPop,
  kBarCheck,     // host: unwind / replay-retire / hang+consume hooks
  kBarConsume,   // blocking barrier consume; param: note on success
  kRecover,      // restart charge + prepare_restart
  kExit,
};

struct LiveNode {
  std::unique_ptr<SlipPair> pair;
  sim::SimCpu* a_cpu = nullptr;
  // Baton slots (written by the driver, read by the A fiber).
  ACmd cmd = ACmd::kNone;
  bool param_unwind = false;   // kChunkCheck / kBarCheck
  bool param_retire = false;   // kBarCheck: replay fast-forward retire
  bool param_note = false;     // kBarConsume: note_a_barrier on success
  // Status written by the A fiber.
  bool at_baton = false;
  bool hung = false;
  bool last_popped_last = false;
  std::uint64_t recoveries_at_region_start = 0;
};

/// proto::enforce sink. The harness is single-threaded (the whole replay
/// runs inside one Engine), so a single static target is fine.
std::vector<std::string>* g_live_violations = nullptr;

void sink(const char* what) {
  if (g_live_violations != nullptr) g_live_violations->emplace_back(what);
}

struct SinkGuard {
  proto::ViolationSink saved;
  explicit SinkGuard(std::vector<std::string>* out) {
    g_live_violations = out;
    saved = proto::violation_sink();
    proto::violation_sink() = &sink;
  }
  ~SinkGuard() {
    proto::violation_sink() = saved;
    g_live_violations = nullptr;
  }
};

bool ledger_eq(const FaultInjector::NodeLedger& a,
               const FaultInjector::NodeLedger& b) {
  return a.skipped_consumes == b.skipped_consumes &&
         a.extra_consumes == b.extra_consumes &&
         a.suppressed_inserts == b.suppressed_inserts &&
         a.extra_inserts == b.extra_inserts &&
         a.forced_recoveries == b.forced_recoveries &&
         a.corrupted_forwards == b.corrupted_forwards;
}

class Harness {
 public:
  Harness(const Schedule& sched, ReplayResult& res)
      : sched_(sched), model_(sched.config), res_(res) {}

  void run() {
    const ModelConfig& cfg = sched_.config;
    driver_ = &engine_.add_cpu("driver");
    nodes_.resize(static_cast<std::size_t>(cfg.ncmp));
    injector_ = FaultInjector(cfg.fault, cfg.ncmp);
    degrade_ = rt::DegradationController(cfg.degrade_enabled, cfg.demote_after,
                                         cfg.probation, cfg.ncmp);
    for (int n = 0; n < cfg.ncmp; ++n) {
      LiveNode& ln = nodes_[static_cast<std::size_t>(n)];
      ln.a_cpu = &engine_.add_cpu("a" + std::to_string(n));
      ln.pair = std::make_unique<SlipPair>(
          /*r_cpu=*/0, ln.a_cpu->id(), /*sem_access_cycles=*/3,
          /*mailbox_addr=*/0x1000u * static_cast<sim::Addr>(n + 1),
          cfg.mailbox_depth);
      ln.pair->reset_for_region(cfg.tokens);
      ln.a_cpu->start([this, n] { a_loop(n); });
    }
    driver_->start([this] { drive(); });
    engine_.run();
  }

 private:
  SlipPair& pair(int n) { return *nodes_[static_cast<std::size_t>(n)].pair; }
  LiveNode& node(int n) { return nodes_[static_cast<std::size_t>(n)]; }

  // --- A-stream fiber ---------------------------------------------------

  void a_unwind(int n) {
    (void)pair(n).ack_recovery();
    const bool restart =
        sched_.config.policy == Policy::kRestart &&
        pair(n).restarts_this_region() <
            static_cast<std::uint64_t>(
                std::max(0, sched_.config.restart_budget));
    if (!restart) pair(n).set_benched();
    // Under restart the kRecover command follows as its own step.
  }

  void a_loop(int n) {
    LiveNode& ln = node(n);
    sim::SimCpu& cpu = *ln.a_cpu;
    for (;;) {
      ln.at_baton = true;
      cpu.block(sim::TimeCategory::kIdle);
      ln.at_baton = false;
      switch (ln.cmd) {
        case ACmd::kExit:
          return;
        case ACmd::kChunkCheck:
          if (ln.param_unwind) a_unwind(n);
          break;
        case ACmd::kSyscallConsume:
          if (!pair(n).syscall_sem().consume(
                  cpu, sim::TimeCategory::kScheduling)) {
            a_unwind(n);
          }
          break;
        case ACmd::kChunkPop: {
          cpu.consume(3, sim::TimeCategory::kScheduling);  // mailbox load
          if (pair(n).mailbox_empty()) {
            if (!pair(n).unpaired_syscall_token_explained()) {
              sink("syscall token consumed with no decision and no "
                   "this-region drop or restart to explain it");
            }
          } else {
            ln.last_popped_last = pair(n).mailbox_pop().last;
          }
          break;
        }
        case ACmd::kBarCheck: {
          if (ln.param_unwind) {
            a_unwind(n);
            break;
          }
          if (ln.param_retire) break;  // fast-forward: pass without consume
          if (injector_.on_a_hang(n)) {
            ln.hung = true;
            cpu.block(sim::TimeCategory::kTokenWait);
            ln.hung = false;
            if (!pair(n).recovery_requested()) live_request(n);
            a_unwind(n);
            break;
          }
          (void)injector_.on_a_token_consume(n);
          break;
        }
        case ACmd::kBarConsume: {
          if (!pair(n).barrier_sem().consume(cpu,
                                             sim::TimeCategory::kTokenWait)) {
            a_unwind(n);
            break;
          }
          if (ln.param_note) pair(n).note_a_barrier();
          break;
        }
        case ACmd::kNone:
        case ACmd::kRecover:
          if (ln.cmd == ACmd::kRecover) {
            cpu.consume(kRestartCost, sim::TimeCategory::kBusy);
            (void)pair(n).prepare_restart();
          }
          break;
      }
      ln.cmd = ACmd::kNone;
    }
  }

  // --- driver side ------------------------------------------------------

  void live_request(int n) {
    // Runtime::request_pair_recovery: the instrumentation/auditor hook for
    // a NEW request carries no protocol state; the poisons always run.
    pair(n).request_recovery(*driver_);
  }

  void fidelity_fail(std::size_t step, const std::string& why) {
    if (!res_.fidelity_ok) return;
    res_.fidelity_ok = false;
    std::ostringstream msg;
    msg << "step " << step << ": " << why;
    res_.fidelity_error = msg.str();
  }

  /// Yields the driver until the A-stream fiber of `n` is blocked again
  /// (at its baton, parked in a semaphore, or hang-parked).
  bool settle(int n) {
    LiveNode& ln = node(n);
    for (int spins = 0; spins < 1000000; ++spins) {
      if (ln.a_cpu->blocked() || ln.a_cpu->finished()) return true;
      driver_->consume(1, sim::TimeCategory::kBusy);
    }
    return false;
  }

  void issue(int n, ACmd cmd, bool unwind = false, bool retire = false,
             bool note = false) {
    LiveNode& ln = node(n);
    ln.cmd = cmd;
    ln.param_unwind = unwind;
    ln.param_retire = retire;
    ln.param_note = note;
    ln.a_cpu->wake();
  }

  std::size_t model_pending(const ModelState& ms) const {
    std::size_t k = 0;
    for (const NodeState& n : ms.nodes) {
      if (n.a.wake_pending || n.a.hung_wake) ++k;
    }
    return k;
  }

  /// Field-for-field comparison of the live protocol state against the
  /// model state. Returns an empty string on match.
  std::string compare(const ModelState& ms) {
    const ModelConfig& cfg = sched_.config;
    for (int n = 0; n < cfg.ncmp; ++n) {
      const NodeState& mn = ms.nodes[static_cast<std::size_t>(n)];
      const auto tag = [n](const char* what) {
        std::ostringstream s;
        s << "node " << n << ": live/model mismatch in " << what;
        return s.str();
      };
      if (!(pair(n).core() == mn.pair)) return tag("PairState");
      if (!(pair(n).barrier_sem().state() == mn.barrier)) {
        return tag("barrier TokenState");
      }
      if (!(pair(n).syscall_sem().state() == mn.syscall)) {
        return tag("syscall TokenState");
      }
      if (!ledger_eq(injector_.ledger(n), ms.injector.ledger(n))) {
        return tag("fault-injector ledger");
      }
      if (injector_.site_visits(n) != ms.injector.site_visits(n)) {
        return tag("fault-injector site visits");
      }
      if (degrade_.state(n) != ms.degrade.state(n) ||
          degrade_.strikes(n) != ms.degrade.strikes(n) ||
          degrade_.demoted_clock(n) != ms.degrade.demoted_clock(n)) {
        return tag("degradation state");
      }
    }
    if (injector_.fired() != ms.injector.fired()) {
      return "live/model mismatch in fault fired count";
    }
    if (injector_.token_loss_active() != ms.injector.token_loss_active()) {
      return "live/model mismatch in token-loss latch";
    }
    if (degrade_.demotions() != ms.degrade.demotions() ||
        degrade_.promotions() != ms.degrade.promotions()) {
      return "live/model mismatch in demotion/promotion totals";
    }
    return {};
  }

  void step_live_r(const ModelState& pre, int n) {
    const ModelConfig& cfg = sched_.config;
    const RActor& r = pre.nodes[static_cast<std::size_t>(n)].r;
    switch (r.phase) {
      case RPhase::kFwdPush: {
        SlipPair::Mailbox mb{0, 0, r.chunk == cfg.chunks};
        if (injector_.on_forward(n, mb, pair(n).syscall_sem().has_waiter())) {
          live_request(n);
        }
        pair(n).mailbox_push(mb);
        break;
      }
      case RPhase::kFwdInsert:
        pair(n).syscall_sem().insert(*driver_);
        break;
      case RPhase::kBarNote:
        pair(n).note_r_barrier();
        if (pair(n).a_benched()) pair(n).note_benched_barrier();
        if (injector_.on_r_divergence_probe(
                n, pair(n).barrier_sem().has_waiter())) {
          live_request(n);
        }
        break;
      case RPhase::kBarProbe: {
        const bool probe_armed = cfg.policy == Policy::kRestart
                                     ? !pair(n).a_benched()
                                     : !pair(n).a_recovered_this_region();
        if (cfg.divergence_threshold > 0 && probe_armed &&
            !pair(n).recovery_requested()) {
          (void)pair(n).barrier_sem().read_count(*driver_);
          const std::uint64_t lag =
              pair(n).r_barriers() > pair(n).a_barriers()
                  ? pair(n).r_barriers() - pair(n).a_barriers()
                  : 0;
          const std::uint64_t threshold =
              static_cast<std::uint64_t>(cfg.divergence_threshold)
              << std::min(pair(n).restarts_this_region(), kMaxBackoffShift);
          if (lag > threshold) live_request(n);
        }
        break;
      }
      case RPhase::kBarInsert: {
        const TokenAction act = injector_.on_r_token_insert(n);
        if (act != TokenAction::kSkip) pair(n).barrier_sem().insert(*driver_);
        break;
      }
      case RPhase::kBarInsertDup:
        pair(n).barrier_sem().insert(*driver_);
        break;
      case RPhase::kBarArrive:
        // The team phaser is driver bookkeeping (the model tracks it); the
        // GLOBAL_SYNC insert hook runs at the arrive segment's head.
        if (r.slip && cfg.sync == SyncType::kGlobal) {
          (void)injector_.on_r_token_insert(n);
        }
        break;
      case RPhase::kBarInsertPost:
        if (static_cast<TokenAction>(r.pending_ins) != TokenAction::kSkip) {
          pair(n).barrier_sem().insert(*driver_);
        }
        break;
      case RPhase::kBarInsertPostDup:
        pair(n).barrier_sem().insert(*driver_);
        break;
      case RPhase::kWaitTeam:
      case RPhase::kDone:
        break;
    }
  }

  /// A-stream action: either deliver a pending resume or issue the next
  /// command through the baton. Returns false when the fiber failed to
  /// settle (a harness bug, reported as a fidelity error).
  bool step_live_a(const ModelState& pre, int n, std::size_t step) {
    const NodeState& mn = pre.nodes[static_cast<std::size_t>(n)];
    if (mn.a.wake_pending || mn.a.hung_wake) {
      if (!settle(n)) {
        fidelity_fail(step, "A-stream resume never settled");
        return false;
      }
      return true;
    }
    switch (mn.a.phase) {
      case APhase::kChunkCheck:
        issue(n, ACmd::kChunkCheck, /*unwind=*/mn.pair.recovery_requested);
        break;
      case APhase::kChunkConsume:
        issue(n, ACmd::kSyscallConsume);
        break;
      case APhase::kChunkPop:
        issue(n, ACmd::kChunkPop);
        break;
      case APhase::kBarCheck:
        issue(n, ACmd::kBarCheck, /*unwind=*/mn.pair.recovery_requested,
              /*retire=*/!mn.pair.recovery_requested && mn.a.replay > 0);
        break;
      case APhase::kBarConsume:
        issue(n, ACmd::kBarConsume, false, false,
              /*note=*/!mn.a.dup_pending);
        break;
      case APhase::kBarConsumeDup:
        issue(n, ACmd::kBarConsume, false, false, /*note=*/true);
        break;
      case APhase::kRecover:
        issue(n, ACmd::kRecover);
        break;
      case APhase::kDone:
        fidelity_fail(step, "schedule steps a finished A-stream");
        return false;
    }
    if (!settle(n)) {
      fidelity_fail(step, "A-stream command never settled");
      return false;
    }
    return true;
  }

  void step_live_region_end(const ModelState& pre) {
    const ModelConfig& cfg = sched_.config;
    for (int n = 0; n < cfg.ncmp; ++n) {
      const bool recovered =
          pair(n).recoveries() > node(n).recoveries_at_region_start;
      (void)degrade_.on_region_end(n, recovered);
    }
    if (pre.region + 1 >= cfg.regions) return;  // final region: run ends
    for (int n = 0; n < cfg.ncmp; ++n) {
      pair(n).reset_for_region(cfg.tokens);
      node(n).recoveries_at_region_start = pair(n).recoveries();
    }
  }

  void step_live_sweep(const ModelState& pre) {
    const ModelConfig& cfg = sched_.config;
    for (int n = 0; n < cfg.ncmp; ++n) {
      if (pair(n).barrier_sem().has_waiter() ||
          pair(n).syscall_sem().has_waiter()) {
        live_request(n);
      }
      const NodeState& mn = pre.nodes[static_cast<std::size_t>(n)];
      if (mn.a.hung && !mn.a.hung_wake) node(n).a_cpu->wake();
    }
  }

  void drive() {
    const ModelConfig& cfg = sched_.config;
    ModelState ms = model_.initial();
    // `unsynced`: nodes whose live resume already ran (a multi-wake sweep
    // delivered it) but whose model resume step has not arrived yet.
    std::vector<bool> unsynced(static_cast<std::size_t>(cfg.ncmp), false);
    auto any_unsynced = [&] {
      return std::any_of(unsynced.begin(), unsynced.end(),
                         [](bool b) { return b; });
    };
    for (std::size_t i = 0; i < sched_.actions.size(); ++i) {
      const Action& a = sched_.actions[i];
      const std::size_t pending_before = model_pending(ms);
      bool live_ran = true;
      switch (a.kind) {
        case ActionKind::kRStep:
          if (unsynced[static_cast<std::size_t>(a.node)]) {
            fidelity_fail(i, "R-step on a node with an un-synced resume — "
                             "schedule not strictly replayable");
            return;
          }
          step_live_r(ms, a.node);
          break;
        case ActionKind::kAStep: {
          const NodeState& mn = ms.nodes[static_cast<std::size_t>(a.node)];
          const bool is_resume = mn.a.wake_pending || mn.a.hung_wake;
          if (is_resume && unsynced[static_cast<std::size_t>(a.node)]) {
            // Live already ran this resume during an earlier batch settle.
            unsynced[static_cast<std::size_t>(a.node)] = false;
            live_ran = false;
            break;
          }
          if (is_resume && pending_before > 1) {
            // The settle below drains EVERY pending wake; mark the others.
            for (int n = 0; n < cfg.ncmp; ++n) {
              if (n == a.node) continue;
              const NodeState& on = ms.nodes[static_cast<std::size_t>(n)];
              if (on.a.wake_pending || on.a.hung_wake) {
                unsynced[static_cast<std::size_t>(n)] = true;
              }
            }
          }
          if (!step_live_a(ms, a.node, i)) return;
          break;
        }
        case ActionKind::kWdogToken:
          if (unsynced[static_cast<std::size_t>(a.node)]) {
            fidelity_fail(i, "watchdog on a node with an un-synced resume");
            return;
          }
          live_request(a.node);
          break;
        case ActionKind::kWdogTeam:
        case ActionKind::kBackstop:
          if (any_unsynced()) {
            fidelity_fail(i, "sweep during an un-synced resume batch");
            return;
          }
          step_live_sweep(ms);
          break;
        case ActionKind::kWdogHang:
          node(a.node).a_cpu->wake();
          break;
        case ActionKind::kRegionEnd:
          if (any_unsynced()) {
            fidelity_fail(i, "region end during an un-synced resume batch");
            return;
          }
          step_live_region_end(ms);
          break;
      }
      (void)live_ran;
      // Step the model through the same action.
      StepResult r = model_.step(ms, a);
      res_.steps_executed = i + 1;
      if (!r.ok) {
        res_.violation_hit = true;
        res_.violation = r.violation;
        res_.violation_step = i;
        break;
      }
      // Compare whenever live and model are in sync: no wake the engine
      // has not delivered (pending model wakes mean the live resume is
      // still in flight — protocol state matches, flags do not need to)
      // and no batch-delivered resume the model has not executed.
      if (!any_unsynced()) {
        const std::string mismatch = compare(ms);
        ++res_.compares;
        if (!mismatch.empty()) {
          fidelity_fail(i, mismatch);
          break;
        }
      }
    }
    shutdown();
  }

  void shutdown() {
    for (int n = 0; n < sched_.config.ncmp; ++n) {
      LiveNode& ln = node(n);
      if (ln.at_baton && ln.a_cpu->blocked()) {
        ln.cmd = ACmd::kExit;
        ln.a_cpu->wake();
        (void)settle(n);
      }
    }
  }

  const Schedule& sched_;
  Model model_;
  ReplayResult& res_;
  sim::Engine engine_;
  sim::SimCpu* driver_ = nullptr;
  std::vector<LiveNode> nodes_;
  FaultInjector injector_;
  rt::DegradationController degrade_;
};

}  // namespace

ReplayResult replay_schedule(const Schedule& sched) {
  ReplayResult res;
  SinkGuard guard(&res.live_violations);
  Harness h(sched, res);
  h.run();
  if (!res.fidelity_ok) {
    res.ok = false;
  } else if (sched.expect.empty()) {
    res.ok = !res.violation_hit;
  } else {
    res.ok = res.violation_hit &&
             res.violation.find(sched.expect) != std::string::npos;
  }
  return res;
}

}  // namespace ssomp::slip::model
