#include "slip/watchdog.hpp"

#include <sstream>

namespace ssomp::slip {

std::string WatchdogReport::describe() const {
  std::ostringstream s;
  s << "watchdog: cpu " << cpu << " (node " << node << ") stuck in "
    << to_string(site) << " wait since cycle " << wait_start
    << ", timed out after " << timeout << " cycles at " << fired_at;
  return s.str();
}

sim::Engine::CancelHandle Watchdog::arm(WatchSite site, int node, int cpu) {
  if (!enabled()) return {};
  WatchdogReport rep;
  rep.site = site;
  rep.node = node;
  rep.cpu = cpu;
  rep.wait_start = engine_->now();
  rep.timeout = timeout_;
  return engine_->schedule_timer_after(timeout_, [this, rep]() mutable {
    rep.fired_at = engine_->now();
    reports_.push_back(rep);
    if (rescue_) rescue_(rep);
  });
}

}  // namespace ssomp::slip
