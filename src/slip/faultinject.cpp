#include "slip/faultinject.hpp"

#include <charconv>

namespace ssomp::slip {

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {
      FaultKind::kSkipBarrier,      FaultKind::kDuplicateBarrier,
      FaultKind::kStarveToken,      FaultKind::kExtraToken,
      FaultKind::kRecoverInConsume, FaultKind::kRecoverInSyscall,
      FaultKind::kCorruptForward,   FaultKind::kAStreamHang,
      FaultKind::kRStreamTokenLoss,
  };
  return kinds;
}

namespace {

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto* end = s.data() + s.size();
  const auto r = std::from_chars(s.data(), end, out);
  return r.ec == std::errc{} && r.ptr == end;
}

}  // namespace

FaultPlanParse parse_fault_plan(std::string_view text) {
  FaultPlanParse result;
  std::vector<std::string_view> fields;
  while (!text.empty()) {
    const auto comma = text.find(',');
    fields.push_back(text.substr(0, comma));
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
  }
  if (fields.empty() || fields.size() > 4) {
    result.error = "expected KIND[,NODE[,VISIT[,SEED]]]";
    return result;
  }
  bool known = false;
  for (FaultKind k : all_fault_kinds()) {
    if (fields[0] == to_string(k)) {
      result.value.kind = k;
      known = true;
      break;
    }
  }
  if (!known && fields[0] != "none") {
    result.error = "unknown fault kind '" + std::string(fields[0]) + "'";
    return result;
  }
  std::uint64_t v = 0;
  if (fields.size() > 1) {
    if (!parse_u64(fields[1], v)) {
      result.error = "bad node '" + std::string(fields[1]) + "'";
      return result;
    }
    result.value.node = static_cast<int>(v);
  }
  if (fields.size() > 2) {
    if (!parse_u64(fields[2], v) || v == 0) {
      result.error = "bad visit '" + std::string(fields[2]) + "' (1-based)";
      return result;
    }
    result.value.visit = v;
  }
  if (fields.size() > 3) {
    if (!parse_u64(fields[3], v)) {
      result.error = "bad seed '" + std::string(fields[3]) + "'";
      return result;
    }
    result.value.seed = v;
  }
  result.ok = true;
  return result;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int ncmp)
    : plan_(plan),
      ledgers_(static_cast<std::size_t>(ncmp)),
      site_visits_(static_cast<std::size_t>(ncmp), 0),
      rng_(plan.seed) {}

bool FaultInjector::fire(FaultKind kind, int node) {
  if (plan_.kind != kind || plan_.node != node || fired_ > 0) return false;
  if (node < 0 || static_cast<std::size_t>(node) >= site_visits_.size()) {
    return false;
  }
  const std::uint64_t visit = ++site_visits_[static_cast<std::size_t>(node)];
  if (visit != plan_.visit) return false;
  ++fired_;
  return true;
}

TokenAction FaultInjector::on_r_token_insert(int node) {
  if (token_loss_active_ && plan_.node == node) {
    ++ledgers_[static_cast<std::size_t>(node)].suppressed_inserts;
    return TokenAction::kSkip;
  }
  if (fire(FaultKind::kRStreamTokenLoss, node)) {
    token_loss_active_ = true;
    ++ledgers_[static_cast<std::size_t>(node)].suppressed_inserts;
    return TokenAction::kSkip;
  }
  if (fire(FaultKind::kStarveToken, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].suppressed_inserts;
    return TokenAction::kSkip;
  }
  if (fire(FaultKind::kExtraToken, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].extra_inserts;
    return TokenAction::kDuplicate;
  }
  return TokenAction::kNormal;
}

TokenAction FaultInjector::on_a_token_consume(int node) {
  if (fire(FaultKind::kSkipBarrier, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].skipped_consumes;
    return TokenAction::kSkip;
  }
  if (fire(FaultKind::kDuplicateBarrier, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].extra_consumes;
    return TokenAction::kDuplicate;
  }
  return TokenAction::kNormal;
}

bool FaultInjector::on_r_divergence_probe(int node, bool a_waiting) {
  // Only visits where the A-stream is actually blocked in consume() are
  // eligible: the point of the fault is a recovery landing mid-wait.
  if (plan_.kind != FaultKind::kRecoverInConsume || !a_waiting) return false;
  if (fire(FaultKind::kRecoverInConsume, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].forced_recoveries;
    return true;
  }
  return false;
}

bool FaultInjector::on_forward(int node, SlipPair::Mailbox& mb,
                               bool a_waiting) {
  if (plan_.kind == FaultKind::kRecoverInSyscall && a_waiting &&
      fire(FaultKind::kRecoverInSyscall, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].forced_recoveries;
    return true;
  }
  if (fire(FaultKind::kCorruptForward, node)) {
    ++ledgers_[static_cast<std::size_t>(node)].corrupted_forwards;
    // Two corruption shapes, both memory-safe for the speculative
    // consumer (bounds never widen): an empty chunk (a stale re-read of
    // the previous decision's end), or a premature end-of-loop marker.
    if ((rng_.next() & 1) != 0) {
      mb.hi = mb.lo;  // empty chunk
    } else {
      mb = SlipPair::Mailbox{0, 0, /*last=*/true};  // premature last
    }
  }
  return false;
}

bool FaultInjector::on_a_hang(int node) {
  return fire(FaultKind::kAStreamHang, node);
}

}  // namespace ssomp::slip
