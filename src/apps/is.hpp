// NAS IS: integer bucket sort (key histogramming + ranking). Not part of
// the paper's evaluated suite — included as an extended workload because
// its shared histogram hammers the atomic/critical constructs, the
// pattern the paper's §3.1 atomic/critical policies are about.
#pragma once

#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct IsParams {
  long keys = 1 << 14;
  long buckets = 256;
  int iterations = 2;
  std::uint64_t seed = 97;
  front::ScheduleClause sched{};

  [[nodiscard]] static IsParams tiny() {
    return {.keys = 1 << 10, .buckets = 32, .iterations = 1};
  }
};

class Is final : public core::Workload {
 public:
  Is(rt::Runtime& rt, const IsParams& p);

  [[nodiscard]] std::string name() const override { return "IS"; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  [[nodiscard]] double checksum() const { return checksum_; }

 private:
  IsParams p_;
  rt::SharedArray<long> keys_;
  rt::SharedArray<double> histogram_;  // per-bucket counts
  rt::SharedArray<long> offsets_;      // exclusive prefix sums
  rt::SharedArray<long> ranks_;        // final key ranks
  double checksum_ = 0.0;
};

std::unique_ptr<core::Workload> make_is(rt::Runtime& rt, const IsParams& p);

}  // namespace ssomp::apps
