#include "apps/registry.hpp"

#include "apps/bt.hpp"
#include "apps/cg.hpp"
#include "apps/ep.hpp"
#include "apps/ft.hpp"
#include "apps/is.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/sp.hpp"
#include "sim/check.hpp"

namespace ssomp::apps {

const std::vector<AppSpec>& extended_suite() {
  static const std::vector<AppSpec> kSuite = {
      {"EP", "embarrassingly parallel Gaussian pairs", true},
      {"FT", "3D FFT (transpose-style communication)", true},
      {"IS", "integer bucket sort (atomic/critical-heavy)", false},
  };
  return kSuite;
}

const std::vector<AppSpec>& paper_suite() {
  static const std::vector<AppSpec> kSuite = {
      {"BT", "block-tridiagonal ADI solver", true},
      {"CG", "conjugate gradient (sparse SpMV + reductions)", true},
      {"LU", "SSOR with plane-wavefront sweeps", false},
      {"MG", "3D multigrid V-cycle", true},
      {"SP", "scalar-pentadiagonal ADI solver", true},
  };
  return kSuite;
}

core::WorkloadFactory make_workload(const std::string& name, AppScale scale,
                                    front::ScheduleClause sched) {
  const bool tiny = scale == AppScale::kTiny;
  if (name == "CG") {
    CgParams p = tiny ? CgParams::tiny() : CgParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_cg(rt, p); };
  }
  if (name == "MG") {
    MgParams p = tiny ? MgParams::tiny() : MgParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_mg(rt, p); };
  }
  if (name == "BT") {
    BtParams p = tiny ? BtParams::tiny() : BtParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_bt(rt, p); };
  }
  if (name == "SP") {
    SpParams p = tiny ? SpParams::tiny() : SpParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_sp(rt, p); };
  }
  if (name == "LU") {
    LuParams p = tiny ? LuParams::tiny() : LuParams{};
    return [p](rt::Runtime& rt) { return make_lu(rt, p); };
  }
  if (name == "EP") {
    EpParams p = tiny ? EpParams::tiny() : EpParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_ep(rt, p); };
  }
  if (name == "FT") {
    FtParams p = tiny ? FtParams::tiny() : FtParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_ft(rt, p); };
  }
  if (name == "IS") {
    IsParams p = tiny ? IsParams::tiny() : IsParams{};
    p.sched = sched;
    return [p](rt::Runtime& rt) { return make_is(rt, p); };
  }
  SSOMP_CHECK(false && "unknown workload name");
  return {};
}

front::ScheduleClause dynamic_schedule_for(const std::string& name,
                                           AppScale scale, int nthreads) {
  front::ScheduleClause sched;
  sched.kind = front::ScheduleKind::kDynamic;
  if (name == "CG") {
    // Paper §5.2: "for CG we used chunk size equal to half the assignment
    // under static block assignment."
    const long n = (scale == AppScale::kTiny ? CgParams::tiny() : CgParams{}).n;
    sched.chunk = std::max<long>(1, n / (2L * nthreads));
  } else {
    // Compiler default chunk for the others (the k/j plane loops are
    // coarse-grained, as the paper notes).
    sched.chunk = 1;
  }
  return sched;
}

}  // namespace ssomp::apps
