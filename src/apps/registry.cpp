#include "apps/registry.hpp"

#include <cstdio>
#include <stdexcept>

#include "apps/bt.hpp"
#include "apps/cg.hpp"
#include "apps/ep.hpp"
#include "apps/ft.hpp"
#include "apps/is.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/sp.hpp"
#include "stats/report.hpp"
#include "sim/check.hpp"

namespace ssomp::apps {

const std::vector<AppSpec>& extended_suite() {
  static const std::vector<AppSpec> kSuite = {
      {"EP", "embarrassingly parallel Gaussian pairs", true},
      {"FT", "3D FFT (transpose-style communication)", true},
      {"IS", "integer bucket sort (atomic/critical-heavy)", false},
  };
  return kSuite;
}

const std::vector<AppSpec>& paper_suite() {
  static const std::vector<AppSpec> kSuite = {
      {"BT", "block-tridiagonal ADI solver", true},
      {"CG", "conjugate gradient (sparse SpMV + reductions)", true},
      {"LU", "SSOR with plane-wavefront sweeps", false},
      {"MG", "3D multigrid V-cycle", true},
      {"SP", "scalar-pentadiagonal ADI solver", true},
  };
  return kSuite;
}

void print_paper_suite() {
  std::printf("Benchmarks (paper Table 2; reduced problem classes):\n");
  stats::Table t({"benchmark", "description", "dynamic suite"});
  for (const AppSpec& s : paper_suite()) {
    t.add_row({s.name, s.description, s.in_dynamic_suite ? "yes" : "no"});
  }
  t.print();
  std::printf("\n");
}

core::WorkloadFactory make_workload(const std::string& name, AppScale scale,
                                    front::ScheduleClause sched,
                                    std::uint64_t seed_override) {
  const bool tiny = scale == AppScale::kTiny;
  if (name == "CG") {
    CgParams p = tiny ? CgParams::tiny() : CgParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_cg(rt, p); };
  }
  if (name == "MG") {
    MgParams p = tiny ? MgParams::tiny() : MgParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_mg(rt, p); };
  }
  if (name == "BT") {
    BtParams p = tiny ? BtParams::tiny() : BtParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_bt(rt, p); };
  }
  if (name == "SP") {
    SpParams p = tiny ? SpParams::tiny() : SpParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_sp(rt, p); };
  }
  if (name == "LU") {
    LuParams p = tiny ? LuParams::tiny() : LuParams{};
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_lu(rt, p); };
  }
  if (name == "EP") {
    EpParams p = tiny ? EpParams::tiny() : EpParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_ep(rt, p); };
  }
  if (name == "FT") {
    FtParams p = tiny ? FtParams::tiny() : FtParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_ft(rt, p); };
  }
  if (name == "IS") {
    IsParams p = tiny ? IsParams::tiny() : IsParams{};
    p.sched = sched;
    if (seed_override != 0) p.seed = seed_override;
    return [p](rt::Runtime& rt) { return make_is(rt, p); };
  }
  throw std::invalid_argument("unknown workload name: " + name);
}

core::WorkloadResolver plan_resolver() {
  return [](const core::PlanPoint& point) {
    return make_workload(point.app,
                         point.scale == 1 ? AppScale::kTiny
                                          : AppScale::kBench,
                         point.schedule.clause, point.workload_seed);
  };
}

front::ScheduleClause dynamic_schedule_for(const std::string& name,
                                           AppScale scale, int nthreads) {
  front::ScheduleClause sched;
  sched.kind = front::ScheduleKind::kDynamic;
  if (name == "CG") {
    // Paper §5.2: "for CG we used chunk size equal to half the assignment
    // under static block assignment."
    const long n = (scale == AppScale::kTiny ? CgParams::tiny() : CgParams{}).n;
    sched.chunk = std::max<long>(1, n / (2L * nthreads));
  } else {
    // Compiler default chunk for the others (the k/j plane loops are
    // coarse-grained, as the paper notes).
    sched.chunk = 1;
  }
  return sched;
}

}  // namespace ssomp::apps
