// NAS FT: 3D FFT time-stepping kernel. Not part of the paper's evaluated
// suite — included as an extended workload because its z-direction FFT
// sweeps produce the transpose-style cross-plane communication pattern
// none of the paper's five kernels exhibit.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct FtParams {
  long n = 16;   // grid edge (power of two); n^3 complex points
  int steps = 2;
  std::uint64_t seed = 31;
  front::ScheduleClause sched{};

  [[nodiscard]] static FtParams tiny() { return {.n = 8, .steps = 1}; }
};

class Ft final : public core::Workload {
 public:
  Ft(rt::Runtime& rt, const FtParams& p);

  [[nodiscard]] std::string name() const override { return "FT"; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  [[nodiscard]] std::complex<double> checksum() const { return checksum_; }

 private:
  FtParams p_;
  Grid3 g_;
  // Complex field stored as interleaved (re, im) doubles.
  std::unique_ptr<rt::SharedArray<double>> u_;
  std::complex<double> checksum_;
};

/// In-place iterative radix-2 FFT over `n` complex values (n a power of
/// two); inverse = conjugate transform without normalization. Exposed for
/// direct unit testing against a reference DFT.
void fft_line(std::complex<double>* data, long n, bool inverse);

std::unique_ptr<core::Workload> make_ft(rt::Runtime& rt, const FtParams& p);

}  // namespace ssomp::apps
