// Name-indexed workload registry: the paper's benchmark suite (Table 2)
// plus EP, at benchmark scale and at a tiny scale used by tests.
#pragma once

#include <string>
#include <vector>

#include "apps/common.hpp"
#include "core/plan.hpp"
#include "core/workload.hpp"

namespace ssomp::apps {

enum class AppScale : std::uint8_t {
  kBench = 0,  // sizes used by the figure-reproduction harnesses
  kTiny,       // seconds-fast sizes for unit/integration tests
};

struct AppSpec {
  std::string name;
  std::string description;
  bool in_dynamic_suite;  // paper §5.2 excludes LU (static programmatic)
};

/// The paper's suite order: BT, CG, LU, MG, SP (Table 2).
[[nodiscard]] const std::vector<AppSpec>& paper_suite();

/// Prints the paper's Table 2 (the suite plus reduced-class notes).
void print_paper_suite();

/// Extended workloads beyond the paper's evaluation (EP compute-bound,
/// FT transpose-heavy, IS atomic/critical-heavy).
[[nodiscard]] const std::vector<AppSpec>& extended_suite();

/// Builds a workload by name ("BT", "CG", "LU", "MG", "SP", "EP", "FT",
/// "IS").
/// `sched` applies to the app's schedulable loops (LU ignores it for its
/// programmatically-static portions). `seed_override` replaces the app's
/// built-in workload seed when nonzero. Aborts on unknown name.
[[nodiscard]] core::WorkloadFactory make_workload(
    const std::string& name, AppScale scale,
    front::ScheduleClause sched = {}, std::uint64_t seed_override = 0);

/// The registry-backed resolver for plan-driven sweeps: maps a PlanPoint
/// to its workload by app name, honoring the point's scale, schedule and
/// workload seed. Throws std::invalid_argument on unknown app names (the
/// SweepDriver turns that into a per-point error record).
[[nodiscard]] core::WorkloadResolver plan_resolver();

/// The dynamic-scheduling chunk the paper uses for CG (half the static
/// block assignment) and the compiler defaults elsewhere.
[[nodiscard]] front::ScheduleClause dynamic_schedule_for(
    const std::string& name, AppScale scale, int nthreads);

}  // namespace ssomp::apps
