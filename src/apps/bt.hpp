// NAS BT: block-tridiagonal ADI solver (see adi.hpp for the skeleton).
#pragma once

#include "apps/adi.hpp"

namespace ssomp::apps {

struct BtParams {
  long n = 16;
  int steps = 3;
  std::uint64_t seed = 11;
  front::ScheduleClause sched{};

  [[nodiscard]] static BtParams tiny() { return {.n = 6, .steps = 1}; }

  [[nodiscard]] AdiParams to_adi() const {
    return {.n = n,
            .steps = steps,
            .block_coupling = true,
            .solve_cost_per_pt = Costs::kBtSolvePerPt,
            .rhs_cost_per_pt = Costs::kBtRhsPerPt,
            .seed = seed,
            .sched = sched};
  }
};

class Bt final : public Adi {
 public:
  Bt(rt::Runtime& rt, const BtParams& p) : Adi(rt, "BT", p.to_adi()) {}
};

std::unique_ptr<core::Workload> make_bt(rt::Runtime& rt, const BtParams& p);

}  // namespace ssomp::apps
