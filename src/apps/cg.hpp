// NAS CG: conjugate-gradient kernel (sparse SpMV + dot-product
// reductions), the benchmark with the most fine-grained sharing in the
// paper's suite.
#pragma once

#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct CgParams {
  long n = 1400;           // rows (NAS class S uses 1400)
  long nnz_per_row = 8;    // nonzeros per row
  int outer_iters = 3;     // outer (zeta) iterations
  int cg_iters = 10;       // inner CG iterations (NAS uses 25)
  double shift = 10.0;     // diagonal shift (lambda)
  std::uint64_t seed = 42;
  front::ScheduleClause sched{};  // loop schedule (paper: default static;
                                  // dynamic uses chunk = half static block)

  [[nodiscard]] static CgParams tiny() {
    return {.n = 96, .nnz_per_row = 5, .outer_iters = 2, .cg_iters = 4};
  }
};

class Cg final : public core::Workload {
 public:
  Cg(rt::Runtime& rt, const CgParams& p);

  [[nodiscard]] std::string name() const override { return "CG"; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  [[nodiscard]] double zeta() const { return zeta_; }

 private:
  void conj_grad_region(rt::SerialCtx& sc, double& rnorm);

  CgParams p_;
  // Sparse matrix in CSR form.
  rt::SharedArray<double> a_;
  rt::SharedArray<long> colidx_;
  rt::SharedArray<long> rowstr_;
  // Vectors.
  rt::SharedArray<double> x_, z_, pvec_, q_, r_;
  double zeta_ = 0.0;
};

std::unique_ptr<core::Workload> make_cg(rt::Runtime& rt, const CgParams& p);

}  // namespace ssomp::apps
