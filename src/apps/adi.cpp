#include "apps/adi.hpp"

#include <cmath>

namespace ssomp::apps {

namespace {

// Constant recurrence coefficients (diagonally dominant, so the sweeps are
// numerically stable) and the BT component-coupling block.
constexpr double kDiag = 2.5;
constexpr double kLower = 0.4;
constexpr double kUpper = 0.35;
constexpr double kStencilA = 0.88;   // rhs: center weight
constexpr double kStencilB = 0.02;   // rhs: face-neighbor weight
constexpr double kNonlin = 0.01;     // rhs: u0-coupling term

double coupling(int m, int mp) {
  // Deterministic small off-diagonal coupling matrix B[m][mp].
  if (m == mp) return 1.0;
  return 0.05 / static_cast<double>(1 + ((m * 7 + mp * 3) % 5));
}

/// rhs row (all 5 components for fixed j,k) from the u stencil.
void rhs_row(const std::vector<double>& u, const Grid3& g, long j, long k,
             std::vector<double>& out) {
  const long nx = g.nx;
  out.assign(static_cast<std::size_t>(nx) * Adi::kComp, 0.0);
  for (long i = 1; i < nx - 1; ++i) {
    const auto c = static_cast<std::size_t>(g.at(i, j, k)) * Adi::kComp;
    const std::size_t xm =
        static_cast<std::size_t>(g.at(i - 1, j, k)) * Adi::kComp;
    const std::size_t xp =
        static_cast<std::size_t>(g.at(i + 1, j, k)) * Adi::kComp;
    const std::size_t ym =
        static_cast<std::size_t>(g.at(i, j - 1, k)) * Adi::kComp;
    const std::size_t yp =
        static_cast<std::size_t>(g.at(i, j + 1, k)) * Adi::kComp;
    const std::size_t zm =
        static_cast<std::size_t>(g.at(i, j, k - 1)) * Adi::kComp;
    const std::size_t zp =
        static_cast<std::size_t>(g.at(i, j, k + 1)) * Adi::kComp;
    for (int m = 0; m < Adi::kComp; ++m) {
      const auto um = static_cast<std::size_t>(m);
      const double faces = u[xm + um] + u[xp + um] + u[ym + um] +
                           u[yp + um] + u[zm + um] + u[zp + um];
      out[static_cast<std::size_t>(i) * Adi::kComp + um] =
          kStencilA * u[c + um] + kStencilB * faces +
          kNonlin * u[c] * u[c + um];
    }
  }
}

/// One forward-elimination step: x_i <- (x_i - L * C x_{i-1}) / D, where C
/// is the identity (SP) or the coupling block (BT).
void fwd_step(double* x, const double* prev, bool block) {
  double mixed[Adi::kComp];
  for (int m = 0; m < Adi::kComp; ++m) {
    if (block) {
      double s = 0.0;
      for (int mp = 0; mp < Adi::kComp; ++mp) {
        s += coupling(m, mp) * prev[mp];
      }
      mixed[m] = s;
    } else {
      mixed[m] = prev[m];
    }
  }
  for (int m = 0; m < Adi::kComp; ++m) {
    x[m] = (x[m] - kLower * mixed[m]) / kDiag;
  }
}

/// One back-substitution step: x_i <- x_i - U * C x_{i+1}.
void bwd_step(double* x, const double* next, bool block) {
  double mixed[Adi::kComp];
  for (int m = 0; m < Adi::kComp; ++m) {
    if (block) {
      double s = 0.0;
      for (int mp = 0; mp < Adi::kComp; ++mp) {
        s += coupling(m, mp) * next[mp];
      }
      mixed[m] = s;
    } else {
      mixed[m] = next[m];
    }
  }
  for (int m = 0; m < Adi::kComp; ++m) {
    x[m] = x[m] - kUpper * mixed[m];
  }
}

}  // namespace

Adi::Adi(rt::Runtime& rt, std::string name, const AdiParams& p)
    : name_(std::move(name)), p_(p) {
  g_ = Grid3{p.n + 2, p.n + 2, p.n + 2};
  const auto total = static_cast<std::size_t>(g_.size()) * kComp;
  u_ = std::make_unique<rt::SharedArray<double>>(rt, total, name_ + ".u");
  rhs_ = std::make_unique<rt::SharedArray<double>>(rt, total,
                                                   name_ + ".rhs");
  // Smooth deterministic initial field (NAS initializes from the exact
  // solution's trilinear interpolant; a smooth trig field plays the role).
  for (long k = 0; k < g_.nz; ++k) {
    for (long j = 0; j < g_.ny; ++j) {
      for (long i = 0; i < g_.nx; ++i) {
        for (int m = 0; m < kComp; ++m) {
          const double x = static_cast<double>(i) / (g_.nx - 1);
          const double y = static_cast<double>(j) / (g_.ny - 1);
          const double z = static_cast<double>(k) / (g_.nz - 1);
          u_->host(static_cast<std::size_t>(g_.at(i, j, k)) * kComp +
                   static_cast<std::size_t>(m)) =
              1.0 + 0.1 * (m + 1) * std::sin(3.0 * x + 2.0 * y + z);
        }
      }
    }
  }
}

void Adi::run(rt::SerialCtx& sc) {
  const Grid3 g = g_;
  const long rowlen = g.nx * kComp;  // doubles per (j,k) row
  const auto row_base = [&](long j, long k) {
    return static_cast<std::size_t>(g.at(0, j, k)) * kComp;
  };

  for (int step = 0; step < p_.steps; ++step) {
    // One parallel region per time step: rhs and the three ADI sweeps are
    // orphaned worksharing loops separated by their implied barriers (the
    // NAS-OMP structure the slipstream token protocol rides on).
    sc.parallel([&](rt::ThreadCtx& t) {
    { // --- compute_rhs: parallel over interior k-planes ---
      std::vector<double> out;
      t.for_loop(1, g.nz - 1, p_.sched, [&](long k) {
        for (long j = 1; j < g.ny - 1; ++j) {
          for (int dk = -1; dk <= 1; ++dk) {
            for (int dj = -1; dj <= 1; ++dj) {
              if (std::abs(dj) + std::abs(dk) > 1) continue;  // faces only
              const std::size_t b = row_base(j + dj, k + dk);
              u_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
            }
          }
          rhs_row(u_->host_vector(), g, j, k, out);
          t.compute(static_cast<sim::Cycles>(g.nx - 2) * p_.rhs_cost_per_pt);
          const std::size_t b = row_base(j, k);
          rhs_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           out.data());
        }
      });
    }

    { // --- x_solve: recurrence along i; parallel over k ---
      t.for_loop(1, g.nz - 1, p_.sched, [&](long k) {
        for (long j = 1; j < g.ny - 1; ++j) {
          const std::size_t b = row_base(j, k);
          rhs_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          std::vector<double> row(
              rhs_->host_vector().begin() + static_cast<long>(b),
              rhs_->host_vector().begin() + static_cast<long>(b) + rowlen);
          for (long i = 2; i < g.nx - 1; ++i) {
            fwd_step(&row[static_cast<std::size_t>(i) * kComp],
                     &row[static_cast<std::size_t>(i - 1) * kComp],
                     p_.block_coupling);
          }
          for (long i = g.nx - 3; i >= 1; --i) {
            bwd_step(&row[static_cast<std::size_t>(i) * kComp],
                     &row[static_cast<std::size_t>(i + 1) * kComp],
                     p_.block_coupling);
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) * 2 *
                    p_.solve_cost_per_pt);
          rhs_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           row.data());
        }
      });
    }

    { // --- y_solve: recurrence along j (vectorized over i); parallel over k
      std::vector<double> cur(static_cast<std::size_t>(rowlen));
      t.for_loop(1, g.nz - 1, p_.sched, [&](long k) {
        // Forward sweep over j.
        for (long j = 2; j < g.ny - 1; ++j) {
          const std::size_t b = row_base(j, k);
          const std::size_t bp = row_base(j - 1, k);
          rhs_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          rhs_->scan_read(t, bp, bp + static_cast<std::size_t>(rowlen));
          for (long i = 1; i < g.nx - 1; ++i) {
            for (int m = 0; m < kComp; ++m) {
              cur[static_cast<std::size_t>(i) * kComp +
                  static_cast<std::size_t>(m)] =
                  rhs_->host(b + static_cast<std::size_t>(i) * kComp +
                             static_cast<std::size_t>(m));
            }
            fwd_step(&cur[static_cast<std::size_t>(i) * kComp],
                     &rhs_->host_vector()[bp + static_cast<std::size_t>(i) *
                                                   kComp],
                     p_.block_coupling);
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) *
                    p_.solve_cost_per_pt);
          rhs_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           cur.data());
        }
        // Backward sweep over j.
        for (long j = g.ny - 3; j >= 1; --j) {
          const std::size_t b = row_base(j, k);
          const std::size_t bn = row_base(j + 1, k);
          rhs_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          rhs_->scan_read(t, bn, bn + static_cast<std::size_t>(rowlen));
          for (long i = 1; i < g.nx - 1; ++i) {
            for (int m = 0; m < kComp; ++m) {
              cur[static_cast<std::size_t>(i) * kComp +
                  static_cast<std::size_t>(m)] =
                  rhs_->host(b + static_cast<std::size_t>(i) * kComp +
                             static_cast<std::size_t>(m));
            }
            bwd_step(&cur[static_cast<std::size_t>(i) * kComp],
                     &rhs_->host_vector()[bn + static_cast<std::size_t>(i) *
                                                   kComp],
                     p_.block_coupling);
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) *
                    p_.solve_cost_per_pt);
          rhs_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           cur.data());
        }
      });
    }

    { // --- z_solve: recurrence along k; parallel over j (NAS z_solve
      // parallelizes the j loop, producing cross-plane traffic) ---
      std::vector<double> cur(static_cast<std::size_t>(rowlen));
      t.for_loop(1, g.ny - 1, p_.sched, [&](long j) {
        for (long k = 2; k < g.nz - 1; ++k) {
          const std::size_t b = row_base(j, k);
          const std::size_t bp = row_base(j, k - 1);
          rhs_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          rhs_->scan_read(t, bp, bp + static_cast<std::size_t>(rowlen));
          for (long i = 1; i < g.nx - 1; ++i) {
            for (int m = 0; m < kComp; ++m) {
              cur[static_cast<std::size_t>(i) * kComp +
                  static_cast<std::size_t>(m)] =
                  rhs_->host(b + static_cast<std::size_t>(i) * kComp +
                             static_cast<std::size_t>(m));
            }
            fwd_step(&cur[static_cast<std::size_t>(i) * kComp],
                     &rhs_->host_vector()[bp + static_cast<std::size_t>(i) *
                                                   kComp],
                     p_.block_coupling);
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) *
                    p_.solve_cost_per_pt);
          rhs_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           cur.data());
        }
        for (long k = g.nz - 3; k >= 1; --k) {
          const std::size_t b = row_base(j, k);
          const std::size_t bn = row_base(j, k + 1);
          rhs_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          rhs_->scan_read(t, bn, bn + static_cast<std::size_t>(rowlen));
          for (long i = 1; i < g.nx - 1; ++i) {
            for (int m = 0; m < kComp; ++m) {
              cur[static_cast<std::size_t>(i) * kComp +
                  static_cast<std::size_t>(m)] =
                  rhs_->host(b + static_cast<std::size_t>(i) * kComp +
                             static_cast<std::size_t>(m));
            }
            bwd_step(&cur[static_cast<std::size_t>(i) * kComp],
                     &rhs_->host_vector()[bn + static_cast<std::size_t>(i) *
                                                   kComp],
                     p_.block_coupling);
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) *
                    p_.solve_cost_per_pt);
          rhs_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           cur.data());
        }
      });
    }

    { // --- add: u -= dt * rhs; parallel over k ---
      std::vector<double> out(static_cast<std::size_t>(rowlen));
      t.for_loop(1, g.nz - 1, p_.sched, [&](long k) {
        for (long j = 1; j < g.ny - 1; ++j) {
          const std::size_t b = row_base(j, k);
          u_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          rhs_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
          for (long x = 0; x < rowlen; ++x) {
            const auto ux = static_cast<std::size_t>(x);
            out[ux] = u_->host(b + ux) - 0.1 * rhs_->host(b + ux);
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) *
                    Costs::kAxpyPerElem);
          u_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                         out.data());
        }
      });
    }
    });
  }

  // Solution checksum (reduction region).
  double result = 0.0;
  sc.parallel([&](rt::ThreadCtx& t) {
    double local = 0.0;
    t.for_loop(
        1, g.nz - 1, p_.sched,
        [&](long k) {
          for (long j = 1; j < g.ny - 1; ++j) {
            const std::size_t b = row_base(j, k);
            u_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
            for (long x = kComp; x < rowlen - kComp; ++x) {
              const double v = u_->host(b + static_cast<std::size_t>(x));
              local += v * v;
            }
            t.compute(static_cast<sim::Cycles>(rowlen) * Costs::kDotPerElem);
          }
        },
        /*nowait=*/true);
    const double total = t.reduce_sum(local);
    if (t.id() == 0 && !t.is_a_stream()) result = total;
  });
  checksum_ = std::sqrt(result);
}

core::WorkloadResult Adi::verify() {
  // Serial reference: the same time steps on a host copy of the initial
  // field (reconstructed deterministically).
  const Grid3 g = g_;
  const long rowlen = g.nx * kComp;
  std::vector<double> u(static_cast<std::size_t>(g.size()) * kComp);
  std::vector<double> rhs(u.size(), 0.0);
  for (long k = 0; k < g.nz; ++k) {
    for (long j = 0; j < g.ny; ++j) {
      for (long i = 0; i < g.nx; ++i) {
        for (int m = 0; m < kComp; ++m) {
          const double x = static_cast<double>(i) / (g.nx - 1);
          const double y = static_cast<double>(j) / (g.ny - 1);
          const double z = static_cast<double>(k) / (g.nz - 1);
          u[static_cast<std::size_t>(g.at(i, j, k)) * kComp +
            static_cast<std::size_t>(m)] =
              1.0 + 0.1 * (m + 1) * std::sin(3.0 * x + 2.0 * y + z);
        }
      }
    }
  }
  const auto row_base = [&](long j, long k) {
    return static_cast<std::size_t>(g.at(0, j, k)) * kComp;
  };
  std::vector<double> out;
  for (int step = 0; step < p_.steps; ++step) {
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        rhs_row(u, g, j, k, out);
        std::copy(out.begin(), out.end(),
                  rhs.begin() + static_cast<long>(row_base(j, k)));
      }
    }
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        double* row = &rhs[row_base(j, k)];
        for (long i = 2; i < g.nx - 1; ++i) {
          fwd_step(&row[i * kComp], &row[(i - 1) * kComp],
                   p_.block_coupling);
        }
        for (long i = g.nx - 3; i >= 1; --i) {
          bwd_step(&row[i * kComp], &row[(i + 1) * kComp],
                   p_.block_coupling);
        }
      }
    }
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 2; j < g.ny - 1; ++j) {
        for (long i = 1; i < g.nx - 1; ++i) {
          fwd_step(&rhs[row_base(j, k) + static_cast<std::size_t>(i) * kComp],
                   &rhs[row_base(j - 1, k) +
                        static_cast<std::size_t>(i) * kComp],
                   p_.block_coupling);
        }
      }
      for (long j = g.ny - 3; j >= 1; --j) {
        for (long i = 1; i < g.nx - 1; ++i) {
          bwd_step(&rhs[row_base(j, k) + static_cast<std::size_t>(i) * kComp],
                   &rhs[row_base(j + 1, k) +
                        static_cast<std::size_t>(i) * kComp],
                   p_.block_coupling);
        }
      }
    }
    for (long j = 1; j < g.ny - 1; ++j) {
      for (long k = 2; k < g.nz - 1; ++k) {
        for (long i = 1; i < g.nx - 1; ++i) {
          fwd_step(&rhs[row_base(j, k) + static_cast<std::size_t>(i) * kComp],
                   &rhs[row_base(j, k - 1) +
                        static_cast<std::size_t>(i) * kComp],
                   p_.block_coupling);
        }
      }
      for (long k = g.nz - 3; k >= 1; --k) {
        for (long i = 1; i < g.nx - 1; ++i) {
          bwd_step(&rhs[row_base(j, k) + static_cast<std::size_t>(i) * kComp],
                   &rhs[row_base(j, k + 1) +
                        static_cast<std::size_t>(i) * kComp],
                   p_.block_coupling);
        }
      }
    }
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        const std::size_t b = row_base(j, k);
        for (long x = 0; x < rowlen; ++x) {
          u[b + static_cast<std::size_t>(x)] -=
              0.1 * rhs[b + static_cast<std::size_t>(x)];
        }
      }
    }
  }
  double norm = 0.0;
  for (long k = 1; k < g.nz - 1; ++k) {
    for (long j = 1; j < g.ny - 1; ++j) {
      const std::size_t b = row_base(j, k);
      for (long x = kComp; x < rowlen - kComp; ++x) {
        const double v = u[b + static_cast<std::size_t>(x)];
        norm += v * v;
      }
    }
  }
  norm = std::sqrt(norm);

  core::WorkloadResult res;
  res.checksum = checksum_;
  res.verified = close(checksum_, norm, 1e-8);
  res.detail = "|u|=" + std::to_string(checksum_) +
               " reference=" + std::to_string(norm);
  return res;
}

}  // namespace ssomp::apps
