#include "apps/cg.hpp"

#include <algorithm>
#include <cmath>

namespace ssomp::apps {

namespace {

/// Builds the deterministic random sparse matrix (CSR): `nnz_per_row`
/// off-diagonal entries per row plus a dominant diagonal, mirroring the
/// structure (not the exact makea algorithm) of NAS CG.
void build_matrix(const CgParams& p, std::vector<double>& a,
                  std::vector<long>& colidx, std::vector<long>& rowstr) {
  rowstr.assign(static_cast<std::size_t>(p.n) + 1, 0);
  a.clear();
  colidx.clear();
  for (long i = 0; i < p.n; ++i) {
    sim::Rng rng(p.seed + static_cast<std::uint64_t>(i) * 0x9e37ULL);
    rowstr[static_cast<std::size_t>(i)] = static_cast<long>(a.size());
    std::vector<long> cols;
    cols.push_back(i);  // diagonal
    while (static_cast<long>(cols.size()) < p.nnz_per_row) {
      const long c = static_cast<long>(rng.next_below(
          static_cast<std::uint64_t>(p.n)));
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
    std::sort(cols.begin(), cols.end());
    for (long c : cols) {
      colidx.push_back(c);
      if (c == i) {
        a.push_back(static_cast<double>(p.nnz_per_row) + p.shift);
      } else {
        a.push_back(-(0.25 + 0.5 * rng.next_double()));
      }
    }
  }
  rowstr[static_cast<std::size_t>(p.n)] = static_cast<long>(a.size());
}

}  // namespace

Cg::Cg(rt::Runtime& rt, const CgParams& p)
    : p_(p),
      a_(rt, 1, "cg.a"),
      colidx_(rt, 1, "cg.colidx"),
      rowstr_(rt, 1, "cg.rowstr"),
      x_(rt, static_cast<std::size_t>(p.n), "cg.x"),
      z_(rt, static_cast<std::size_t>(p.n), "cg.z"),
      pvec_(rt, static_cast<std::size_t>(p.n), "cg.p"),
      q_(rt, static_cast<std::size_t>(p.n), "cg.q"),
      r_(rt, static_cast<std::size_t>(p.n), "cg.r") {
  std::vector<double> av;
  std::vector<long> ci, rs;
  build_matrix(p_, av, ci, rs);
  a_ = rt::SharedArray<double>(rt, av.size(), "cg.a");
  colidx_ = rt::SharedArray<long>(rt, ci.size(), "cg.colidx");
  rowstr_ = rt::SharedArray<long>(rt, rs.size(), "cg.rowstr");
  a_.host_vector() = av;
  colidx_.host_vector() = ci;
  rowstr_.host_vector() = rs;
  for (long i = 0; i < p_.n; ++i) x_.host(static_cast<std::size_t>(i)) = 1.0;
}

void Cg::conj_grad_region(rt::SerialCtx& sc, double& rnorm) {
  const long n = p_.n;
  double shared_rho = 0.0;  // every thread's private copy comes from the
                            // reduction, so control flow stays identical
  sc.parallel([&](rt::ThreadCtx& t) {
    // q = z = 0, r = p = x.
    t.for_chunks(0, n, p_.sched, [&](long lo, long hi) {
      x_.scan_read(t, static_cast<std::size_t>(lo),
                   static_cast<std::size_t>(hi));
      for (long i = lo; i < hi; ++i) {
        const double xi = x_.host(static_cast<std::size_t>(i));
        q_.write(t, static_cast<std::size_t>(i), 0.0);
        z_.write(t, static_cast<std::size_t>(i), 0.0);
        r_.write(t, static_cast<std::size_t>(i), xi);
        pvec_.write(t, static_cast<std::size_t>(i), xi);
        t.compute(Costs::kAxpyPerElem);
      }
    });

    // rho = r . r
    double local = 0.0;
    t.for_chunks(
        0, n, p_.sched,
        [&](long lo, long hi) {
          r_.scan_read(t, static_cast<std::size_t>(lo),
                       static_cast<std::size_t>(hi));
          for (long i = lo; i < hi; ++i) {
            const double ri = r_.host(static_cast<std::size_t>(i));
            local += ri * ri;
            t.compute(Costs::kDotPerElem);
          }
        },
        /*nowait=*/true);
    double rho = t.reduce_sum(local);

    for (int it = 0; it < p_.cg_iters; ++it) {
      // q = A p
      t.for_chunks(0, n, p_.sched, [&](long lo, long hi) {
        rowstr_.scan_read(t, static_cast<std::size_t>(lo),
                          static_cast<std::size_t>(hi) + 1);
        for (long i = lo; i < hi; ++i) {
          const long ks = rowstr_.host(static_cast<std::size_t>(i));
          const long ke = rowstr_.host(static_cast<std::size_t>(i) + 1);
          a_.scan_read(t, static_cast<std::size_t>(ks),
                       static_cast<std::size_t>(ke));
          colidx_.scan_read(t, static_cast<std::size_t>(ks),
                            static_cast<std::size_t>(ke));
          double sum = 0.0;
          for (long k = ks; k < ke; ++k) {
            const long col = colidx_.host(static_cast<std::size_t>(k));
            // Gather: the only irregular access — read per element.
            sum += a_.host(static_cast<std::size_t>(k)) *
                   pvec_.read(t, static_cast<std::size_t>(col));
            t.compute(Costs::kSpmvPerNnz);
          }
          q_.write(t, static_cast<std::size_t>(i), sum);
        }
      });

      // d = p . q
      double dloc = 0.0;
      t.for_chunks(
          0, n, p_.sched,
          [&](long lo, long hi) {
            pvec_.scan_read(t, static_cast<std::size_t>(lo),
                            static_cast<std::size_t>(hi));
            q_.scan_read(t, static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi));
            for (long i = lo; i < hi; ++i) {
              dloc += pvec_.host(static_cast<std::size_t>(i)) *
                      q_.host(static_cast<std::size_t>(i));
              t.compute(Costs::kDotPerElem);
            }
          },
          /*nowait=*/true);
      const double d = t.reduce_sum(dloc);
      const double alpha = rho / d;

      // z += alpha p ; r -= alpha q ; rho' = r . r
      double rloc = 0.0;
      t.for_chunks(
          0, n, p_.sched,
          [&](long lo, long hi) {
            const auto ulo = static_cast<std::size_t>(lo);
            const auto uhi = static_cast<std::size_t>(hi);
            z_.scan_read(t, ulo, uhi);
            pvec_.scan_read(t, ulo, uhi);
            r_.scan_read(t, ulo, uhi);
            q_.scan_read(t, ulo, uhi);
            std::vector<double> znew(uhi - ulo);
            std::vector<double> rnew(uhi - ulo);
            for (std::size_t i = ulo; i < uhi; ++i) {
              znew[i - ulo] = z_.host(i) + alpha * pvec_.host(i);
              rnew[i - ulo] = r_.host(i) - alpha * q_.host(i);
              rloc += rnew[i - ulo] * rnew[i - ulo];
              t.compute(2 * Costs::kAxpyPerElem + Costs::kDotPerElem);
            }
            z_.scan_write(t, ulo, uhi, znew.data());
            r_.scan_write(t, ulo, uhi, rnew.data());
          },
          /*nowait=*/true);
      const double rho0 = rho;
      rho = t.reduce_sum(rloc);
      const double beta = rho / rho0;

      // p = r + beta p
      t.for_chunks(0, n, p_.sched, [&](long lo, long hi) {
        const auto ulo = static_cast<std::size_t>(lo);
        const auto uhi = static_cast<std::size_t>(hi);
        r_.scan_read(t, ulo, uhi);
        pvec_.scan_read(t, ulo, uhi);
        std::vector<double> pnew(uhi - ulo);
        for (std::size_t i = ulo; i < uhi; ++i) {
          pnew[i - ulo] = r_.host(i) + beta * pvec_.host(i);
          t.compute(Costs::kAxpyPerElem);
        }
        pvec_.scan_write(t, ulo, uhi, pnew.data());
      });
    }

    // ||r - x|| contribution for the residual norm (structure of NAS's
    // final residual computation; here r holds the CG residual already).
    if (t.id() == 0 && !t.is_a_stream()) shared_rho = rho;
  });
  rnorm = std::sqrt(shared_rho);
}

void Cg::run(rt::SerialCtx& sc) {
  double rnorm = 0.0;
  for (int it = 0; it < p_.outer_iters; ++it) {
    conj_grad_region(sc, rnorm);
    // Serial part: zeta update and x normalization driver values.
    double xz = 0.0;
    double znorm = 0.0;
    for (long i = 0; i < p_.n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      xz += x_.host(ui) * z_.host(ui);
      znorm += z_.host(ui) * z_.host(ui);
    }
    sc.compute(static_cast<sim::Cycles>(p_.n) * 2);
    zeta_ = p_.shift + 1.0 / xz;
    // x = z / ||z|| for the next outer iteration.
    const double inv = 1.0 / std::sqrt(znorm);
    const long n = p_.n;
    sc.parallel([&](rt::ThreadCtx& t) {
      t.for_chunks(0, n, p_.sched, [&](long lo, long hi) {
        const auto ulo = static_cast<std::size_t>(lo);
        const auto uhi = static_cast<std::size_t>(hi);
        z_.scan_read(t, ulo, uhi);
        std::vector<double> xn(uhi - ulo);
        for (std::size_t i = ulo; i < uhi; ++i) {
          xn[i - ulo] = inv * z_.host(i);
          t.compute(Costs::kAxpyPerElem);
        }
        x_.scan_write(t, ulo, uhi, xn.data());
      });
    });
  }
}

core::WorkloadResult Cg::verify() {
  // Serial reference: identical algorithm on host copies.
  std::vector<double> a = a_.host_vector();
  std::vector<long> colidx = colidx_.host_vector();
  std::vector<long> rowstr = rowstr_.host_vector();
  const long n = p_.n;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), z(x.size()),
      p(x.size()), q(x.size()), r(x.size());
  double zeta = 0.0;
  for (int outer = 0; outer < p_.outer_iters; ++outer) {
    for (long i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      q[ui] = 0.0;
      z[ui] = 0.0;
      r[ui] = x[ui];
      p[ui] = x[ui];
    }
    double rho = 0.0;
    for (double ri : r) rho += ri * ri;
    for (int it = 0; it < p_.cg_iters; ++it) {
      for (long i = 0; i < n; ++i) {
        double sum = 0.0;
        for (long k = rowstr[static_cast<std::size_t>(i)];
             k < rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
          sum += a[static_cast<std::size_t>(k)] *
                 p[static_cast<std::size_t>(colidx[static_cast<std::size_t>(
                     k)])];
        }
        q[static_cast<std::size_t>(i)] = sum;
      }
      double d = 0.0;
      for (long i = 0; i < n; ++i) {
        d += p[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i)];
      }
      const double alpha = rho / d;
      double rho_new = 0.0;
      for (long i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        z[ui] += alpha * p[ui];
        r[ui] -= alpha * q[ui];
        rho_new += r[ui] * r[ui];
      }
      const double beta = rho_new / rho;
      rho = rho_new;
      for (long i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        p[ui] = r[ui] + beta * p[ui];
      }
    }
    double xz = 0.0;
    double znorm = 0.0;
    for (long i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      xz += x[ui] * z[ui];
      znorm += z[ui] * z[ui];
    }
    zeta = p_.shift + 1.0 / xz;
    const double inv = 1.0 / std::sqrt(znorm);
    for (long i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      x[ui] = inv * z[ui];
    }
  }

  core::WorkloadResult res;
  res.checksum = zeta_;
  res.verified = close(zeta_, zeta, 1e-8);
  res.detail = "zeta=" + std::to_string(zeta_) +
               " reference=" + std::to_string(zeta);
  return res;
}

std::unique_ptr<core::Workload> make_cg(rt::Runtime& rt, const CgParams& p) {
  return std::make_unique<Cg>(rt, p);
}

}  // namespace ssomp::apps
