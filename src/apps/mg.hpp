// NAS MG: 3D multigrid V-cycle (27-point stencils, restriction and
// prolongation between grid levels), barrier-separated sweeps.
#pragma once

#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct MgParams {
  long n = 32;       // finest grid is n^3 interior points (power of two)
  int levels = 3;    // grid hierarchy depth
  int v_cycles = 2;  // V-cycle count
  std::uint64_t seed = 7;
  front::ScheduleClause sched{};

  [[nodiscard]] static MgParams tiny() {
    return {.n = 8, .levels = 2, .v_cycles = 1};
  }
};

class Mg final : public core::Workload {
 public:
  Mg(rt::Runtime& rt, const MgParams& p);

  [[nodiscard]] std::string name() const override { return "MG"; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  [[nodiscard]] double rnorm() const { return rnorm_; }

 private:
  struct Level {
    Grid3 g;  // (n+2)^3 including the zero boundary shell
    std::unique_ptr<rt::SharedArray<double>> u;
    std::unique_ptr<rt::SharedArray<double>> r;
  };

  MgParams p_;
  std::vector<Level> levels_;
  std::unique_ptr<rt::SharedArray<double>> v_;  // right-hand side (finest)
  double rnorm_ = 0.0;
};

std::unique_ptr<core::Workload> make_mg(rt::Runtime& rt, const MgParams& p);

}  // namespace ssomp::apps
