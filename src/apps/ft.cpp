#include "apps/ft.hpp"

#include <cmath>

namespace ssomp::apps {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Cost model: a radix-2 butterfly stage over n points.
sim::Cycles fft_cost(long n) {
  long stages = 0;
  for (long m = n; m > 1; m >>= 1) ++stages;
  return static_cast<sim::Cycles>(n * stages * 14);  // ~14 cyc / butterfly
}

}  // namespace

void fft_line(std::complex<double>* data, long n, bool inverse) {
  // Bit-reversal permutation.
  for (long i = 1, j = 0; i < n; ++i) {
    long bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (long len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (long i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (long k = 0; k < len / 2; ++k) {
        const std::complex<double> a = data[i + k];
        const std::complex<double> b = data[i + k + len / 2] * w;
        data[i + k] = a + b;
        data[i + k + len / 2] = a - b;
        w *= wlen;
      }
    }
  }
}

Ft::Ft(rt::Runtime& rt, const FtParams& p) : p_(p) {
  SSOMP_CHECK((p.n & (p.n - 1)) == 0);
  g_ = Grid3{p.n, p.n, p.n};
  u_ = std::make_unique<rt::SharedArray<double>>(
      rt, static_cast<std::size_t>(g_.size()) * 2, "ft.u");
  sim::Rng rng(p.seed);
  for (long i = 0; i < g_.size(); ++i) {
    u_->host(static_cast<std::size_t>(i) * 2) = rng.next_double();
    u_->host(static_cast<std::size_t>(i) * 2 + 1) = rng.next_double();
  }
}

void Ft::run(rt::SerialCtx& sc) {
  const Grid3 g = g_;
  const long n = p_.n;
  const auto base2 = [&](long j, long k) {
    return static_cast<std::size_t>(g.at(0, j, k)) * 2;
  };
  auto& u = *u_;

  std::complex<double> total(0.0, 0.0);
  for (int step = 0; step < p_.steps; ++step) {
    // One region per time step: x-FFT, y-FFT (per plane), z-FFT
    // (cross-plane "transpose" traffic), evolve, checksum reduction.
    double re = 0.0;
    double im = 0.0;
    sc.parallel([&](rt::ThreadCtx& t) {
      std::vector<std::complex<double>> line(static_cast<std::size_t>(n));
      std::vector<double> row(static_cast<std::size_t>(n) * 2);

      // --- x-direction FFTs: unit-stride lines; parallel over k ---
      t.for_loop(0, n, p_.sched, [&](long k) {
        for (long j = 0; j < n; ++j) {
          const std::size_t b = base2(j, k);
          u.scan_read(t, b, b + static_cast<std::size_t>(n) * 2);
          for (long i = 0; i < n; ++i) {
            line[static_cast<std::size_t>(i)] = {
                u.host(b + static_cast<std::size_t>(i) * 2),
                u.host(b + static_cast<std::size_t>(i) * 2 + 1)};
          }
          fft_line(line.data(), n, false);
          t.compute(fft_cost(n));
          for (long i = 0; i < n; ++i) {
            row[static_cast<std::size_t>(i) * 2] =
                line[static_cast<std::size_t>(i)].real();
            row[static_cast<std::size_t>(i) * 2 + 1] =
                line[static_cast<std::size_t>(i)].imag();
          }
          u.scan_write(t, b, b + static_cast<std::size_t>(n) * 2,
                       row.data());
        }
      });

      // --- y-direction FFTs: within a k-plane; parallel over k ---
      t.for_loop(0, n, p_.sched, [&](long k) {
        for (long i = 0; i < n; ++i) {
          // Gather the y-line (stride n in complex elements). Row-granular
          // touches: one read per (j) row region at this i.
          for (long j = 0; j < n; ++j) {
            const std::size_t e =
                static_cast<std::size_t>(g.at(i, j, k)) * 2;
            if (i == 0) {
              u.scan_read(t, base2(j, k),
                          base2(j, k) + static_cast<std::size_t>(n) * 2);
            }
            line[static_cast<std::size_t>(j)] = {u.host(e), u.host(e + 1)};
          }
          fft_line(line.data(), n, false);
          t.compute(fft_cost(n));
          for (long j = 0; j < n; ++j) {
            const std::size_t e =
                static_cast<std::size_t>(g.at(i, j, k)) * 2;
            if (t.mem_write(u.addr(e))) {
              u.host(e) = line[static_cast<std::size_t>(j)].real();
              u.host(e + 1) = line[static_cast<std::size_t>(j)].imag();
            }
          }
        }
      });

      // --- z-direction FFTs: cross-plane lines; parallel over j (the
      // transpose-style communication: every thread touches all planes) ---
      t.for_loop(0, n, p_.sched, [&](long j) {
        for (long i = 0; i < n; ++i) {
          for (long k = 0; k < n; ++k) {
            const std::size_t e =
                static_cast<std::size_t>(g.at(i, j, k)) * 2;
            if (i == 0) {
              u.scan_read(t, base2(j, k),
                          base2(j, k) + static_cast<std::size_t>(n) * 2);
            }
            line[static_cast<std::size_t>(k)] = {u.host(e), u.host(e + 1)};
          }
          fft_line(line.data(), n, false);
          t.compute(fft_cost(n));
          for (long k = 0; k < n; ++k) {
            const std::size_t e =
                static_cast<std::size_t>(g.at(i, j, k)) * 2;
            if (t.mem_write(u.addr(e))) {
              u.host(e) = line[static_cast<std::size_t>(k)].real();
              u.host(e + 1) = line[static_cast<std::size_t>(k)].imag();
            }
          }
        }
      });

      // --- evolve: pointwise damping factor (stands in for the exp
      // evolution), plus inverse transform back along x only (keeps the
      // data bounded without tripling the sweep count) ---
      t.for_loop(0, n, p_.sched, [&](long k) {
        for (long j = 0; j < n; ++j) {
          const std::size_t b = base2(j, k);
          u.scan_read(t, b, b + static_cast<std::size_t>(n) * 2);
          for (long i = 0; i < n; ++i) {
            line[static_cast<std::size_t>(i)] = {
                u.host(b + static_cast<std::size_t>(i) * 2),
                u.host(b + static_cast<std::size_t>(i) * 2 + 1)};
            line[static_cast<std::size_t>(i)] *=
                1.0 / static_cast<double>(g.size());
          }
          fft_line(line.data(), n, true);
          t.compute(fft_cost(n) + static_cast<sim::Cycles>(n) * 6);
          for (long i = 0; i < n; ++i) {
            row[static_cast<std::size_t>(i) * 2] =
                line[static_cast<std::size_t>(i)].real();
            row[static_cast<std::size_t>(i) * 2 + 1] =
                line[static_cast<std::size_t>(i)].imag();
          }
          u.scan_write(t, b, b + static_cast<std::size_t>(n) * 2,
                       row.data());
        }
      });

      // --- checksum: sum of a scattered index sequence (NAS style) ---
      double lre = 0.0;
      double lim = 0.0;
      t.for_loop(
          0, n, p_.sched,
          [&](long k) {
            for (long q = 0; q < n; ++q) {
              const long idx = (q * 131 + k * 17) % g.size();
              const auto e = static_cast<std::size_t>(idx) * 2;
              t.mem_read(u.addr(e));
              lre += u.host(e);
              lim += u.host(e + 1);
            }
            t.compute(static_cast<sim::Cycles>(n) * 4);
          },
          /*nowait=*/true);
      const double sre = t.reduce_sum(lre);
      const double sim_ = t.reduce_sum(lim);
      if (t.id() == 0 && !t.is_a_stream()) {
        re = sre;
        im = sim_;
      }
    });
    total += std::complex<double>(re, im);
  }
  checksum_ = total;
}

core::WorkloadResult Ft::verify() {
  const Grid3 g = g_;
  const long n = p_.n;
  std::vector<std::complex<double>> u(static_cast<std::size_t>(g.size()));
  sim::Rng rng(p_.seed);
  for (auto& c : u) {
    const double re = rng.next_double();
    const double im = rng.next_double();
    c = {re, im};
  }
  std::vector<std::complex<double>> line(static_cast<std::size_t>(n));
  std::complex<double> total(0.0, 0.0);
  for (int step = 0; step < p_.steps; ++step) {
    for (long k = 0; k < n; ++k) {
      for (long j = 0; j < n; ++j) {
        for (long i = 0; i < n; ++i) {
          line[static_cast<std::size_t>(i)] =
              u[static_cast<std::size_t>(g.at(i, j, k))];
        }
        fft_line(line.data(), n, false);
        for (long i = 0; i < n; ++i) {
          u[static_cast<std::size_t>(g.at(i, j, k))] =
              line[static_cast<std::size_t>(i)];
        }
      }
    }
    for (long k = 0; k < n; ++k) {
      for (long i = 0; i < n; ++i) {
        for (long j = 0; j < n; ++j) {
          line[static_cast<std::size_t>(j)] =
              u[static_cast<std::size_t>(g.at(i, j, k))];
        }
        fft_line(line.data(), n, false);
        for (long j = 0; j < n; ++j) {
          u[static_cast<std::size_t>(g.at(i, j, k))] =
              line[static_cast<std::size_t>(j)];
        }
      }
    }
    for (long j = 0; j < n; ++j) {
      for (long i = 0; i < n; ++i) {
        for (long k = 0; k < n; ++k) {
          line[static_cast<std::size_t>(k)] =
              u[static_cast<std::size_t>(g.at(i, j, k))];
        }
        fft_line(line.data(), n, false);
        for (long k = 0; k < n; ++k) {
          u[static_cast<std::size_t>(g.at(i, j, k))] =
              line[static_cast<std::size_t>(k)];
        }
      }
    }
    for (long k = 0; k < n; ++k) {
      for (long j = 0; j < n; ++j) {
        for (long i = 0; i < n; ++i) {
          line[static_cast<std::size_t>(i)] =
              u[static_cast<std::size_t>(g.at(i, j, k))] /
              static_cast<double>(g.size());
        }
        fft_line(line.data(), n, true);
        for (long i = 0; i < n; ++i) {
          u[static_cast<std::size_t>(g.at(i, j, k))] =
              line[static_cast<std::size_t>(i)];
        }
      }
    }
    for (long k = 0; k < n; ++k) {
      for (long q = 0; q < n; ++q) {
        const long idx = (q * 131 + k * 17) % g.size();
        total += u[static_cast<std::size_t>(idx)];
      }
    }
  }

  core::WorkloadResult res;
  res.checksum = checksum_.real();
  res.verified = close(checksum_.real(), total.real(), 1e-8) &&
                 close(checksum_.imag(), total.imag(), 1e-8);
  res.detail = "chk=(" + std::to_string(checksum_.real()) + "," +
               std::to_string(checksum_.imag()) + ") reference=(" +
               std::to_string(total.real()) + "," +
               std::to_string(total.imag()) + ")";
  return res;
}

std::unique_ptr<core::Workload> make_ft(rt::Runtime& rt, const FtParams& p) {
  return std::make_unique<Ft>(rt, p);
}

}  // namespace ssomp::apps
