#include "apps/is.hpp"

namespace ssomp::apps {

namespace {
constexpr long kKeySpread = 16;  // keys in [0, buckets * kKeySpread)
}

Is::Is(rt::Runtime& rt, const IsParams& p)
    : p_(p),
      keys_(rt, static_cast<std::size_t>(p.keys), "is.keys"),
      histogram_(rt, static_cast<std::size_t>(p.buckets), "is.hist"),
      offsets_(rt, static_cast<std::size_t>(p.buckets), "is.off"),
      ranks_(rt, static_cast<std::size_t>(p.keys), "is.rank") {
  sim::Rng rng(p.seed);
  for (long i = 0; i < p.keys; ++i) {
    keys_.host(static_cast<std::size_t>(i)) = static_cast<long>(
        rng.next_below(static_cast<std::uint64_t>(p.buckets * kKeySpread)));
  }
}

void Is::run(rt::SerialCtx& sc) {
  const long nb = p_.buckets;
  const long nk = p_.keys;
  double result = 0.0;

  // Per-thread histograms and rank cursors live in shared memory, as in
  // the NAS IS bucket arrays. Sized for the largest possible team.
  const int max_threads = sc.runtime().machine().ncpus();
  rt::SharedArray<long> thread_hist(
      sc.runtime(), static_cast<std::size_t>(max_threads * nb), "is.th");
  rt::SharedArray<long> starts(
      sc.runtime(), static_cast<std::size_t>(max_threads * nb), "is.st");

  for (int iter = 0; iter < p_.iterations; ++iter) {
    sc.parallel([&](rt::ThreadCtx& t) {
      const auto tid = static_cast<std::size_t>(t.id());
      std::vector<long> local(static_cast<std::size_t>(nb), 0);

      // --- local histogramming over this thread's static key block ---
      t.for_chunks(
          0, nk, front::ScheduleClause{},
          [&](long lo, long hi) {
            keys_.scan_read(t, static_cast<std::size_t>(lo),
                            static_cast<std::size_t>(hi));
            for (long i = lo; i < hi; ++i) {
              const long b =
                  keys_.host(static_cast<std::size_t>(i)) / kKeySpread;
              ++local[static_cast<std::size_t>(b)];
              t.compute(4);
            }
          },
          /*nowait=*/true);
      // Publish the thread's histogram row.
      thread_hist.scan_write(t, tid * static_cast<std::size_t>(nb),
                             (tid + 1) * static_cast<std::size_t>(nb),
                             local.data());
      // Merge into the global histogram under the critical construct
      // (the §3.1 pattern IS stresses).
      t.critical([&] {
        if (t.is_a_stream()) return;
        for (long b = 0; b < nb; ++b) {
          const auto ub = static_cast<std::size_t>(b);
          histogram_.write(t, ub, histogram_.read(t, ub) +
                                      static_cast<double>(local[ub]));
          t.compute(3);
        }
      });
      t.barrier();

      // --- prefix sums: one thread computes bucket offsets and the
      // per-thread start cursors (index-ordered, so ranking is stable) ---
      t.single([&] {
        long off = 0;
        for (long b = 0; b < nb; ++b) {
          offsets_.write(t, static_cast<std::size_t>(b), off);
          for (int q = 0; q < t.nthreads(); ++q) {
            const auto idx = static_cast<std::size_t>(q) *
                                 static_cast<std::size_t>(nb) +
                             static_cast<std::size_t>(b);
            t.mem_read(thread_hist.addr(idx));
            if (t.mem_write(starts.addr(idx))) {
              starts.host(idx) = off;
            }
            off += thread_hist.host(idx);
            t.compute(4);
          }
        }
      });

      // --- ranking: each thread ranks its own block using its cursors ---
      std::vector<long> cursor(static_cast<std::size_t>(nb));
      starts.scan_read(t, tid * static_cast<std::size_t>(nb),
                       (tid + 1) * static_cast<std::size_t>(nb));
      for (long b = 0; b < nb; ++b) {
        cursor[static_cast<std::size_t>(b)] =
            starts.host(tid * static_cast<std::size_t>(nb) +
                        static_cast<std::size_t>(b));
      }
      t.for_chunks(0, nk, front::ScheduleClause{}, [&](long lo, long hi) {
        keys_.scan_read(t, static_cast<std::size_t>(lo),
                        static_cast<std::size_t>(hi));
        for (long i = lo; i < hi; ++i) {
          const long b = keys_.host(static_cast<std::size_t>(i)) /
                         kKeySpread;
          const long r = cursor[static_cast<std::size_t>(b)]++;
          ranks_.write(t, static_cast<std::size_t>(i), r);
          t.compute(6);
        }
      });

      // --- verification checksum (reduction) ---
      double lsum = 0.0;
      t.for_chunks(
          0, nk, front::ScheduleClause{},
          [&](long lo, long hi) {
            ranks_.scan_read(t, static_cast<std::size_t>(lo),
                             static_cast<std::size_t>(hi));
            for (long i = lo; i < hi; ++i) {
              lsum += static_cast<double>(
                          ranks_.host(static_cast<std::size_t>(i))) *
                      static_cast<double>(i % 7 + 1);
            }
            t.compute((hi - lo) * 2);
          },
          /*nowait=*/true);
      const double total = t.reduce_sum(lsum);
      if (t.id() == 0 && !t.is_a_stream()) result = total;
    });
  }
  checksum_ = result;
}

core::WorkloadResult Is::verify() {
  const long nb = p_.buckets;
  const long nk = p_.keys;
  // Stable counting sort by key index (what the per-thread index-ordered
  // cursors compute in parallel).
  std::vector<long> hist(static_cast<std::size_t>(nb), 0);
  for (long i = 0; i < nk; ++i) {
    ++hist[static_cast<std::size_t>(keys_.host(static_cast<std::size_t>(i)) /
                                    kKeySpread)];
  }
  std::vector<long> offsets(static_cast<std::size_t>(nb), 0);
  long off = 0;
  for (long b = 0; b < nb; ++b) {
    offsets[static_cast<std::size_t>(b)] = off;
    off += hist[static_cast<std::size_t>(b)];
  }
  std::vector<long> cursor = offsets;
  std::vector<long> ranks(static_cast<std::size_t>(nk));
  for (long i = 0; i < nk; ++i) {
    const long b = keys_.host(static_cast<std::size_t>(i)) / kKeySpread;
    ranks[static_cast<std::size_t>(i)] = cursor[static_cast<std::size_t>(b)]++;
  }
  double want = 0.0;
  bool ranks_ok = true;
  for (long i = 0; i < nk; ++i) {
    want += static_cast<double>(ranks[static_cast<std::size_t>(i)]) *
            static_cast<double>(i % 7 + 1);
    if (ranks_.host(static_cast<std::size_t>(i)) !=
        ranks[static_cast<std::size_t>(i)]) {
      ranks_ok = false;
    }
  }
  // The histogram accumulated once per iteration.
  bool hist_ok = true;
  for (long b = 0; b < nb; ++b) {
    if (histogram_.host(static_cast<std::size_t>(b)) !=
        static_cast<double>(hist[static_cast<std::size_t>(b)]) *
            p_.iterations) {
      hist_ok = false;
    }
  }

  core::WorkloadResult res;
  res.checksum = checksum_;
  res.verified = ranks_ok && hist_ok && close(checksum_, want, 1e-12);
  res.detail = std::string("ranks ") + (ranks_ok ? "ok" : "MISMATCH") +
               ", histogram " + (hist_ok ? "ok" : "MISMATCH") +
               ", checksum=" + std::to_string(checksum_);
  return res;
}

std::unique_ptr<core::Workload> make_is(rt::Runtime& rt, const IsParams& p) {
  return std::make_unique<Is>(rt, p);
}

}  // namespace ssomp::apps
