// NAS SP: scalar-pentadiagonal ADI solver (see adi.hpp for the skeleton).
#pragma once

#include "apps/adi.hpp"

namespace ssomp::apps {

struct SpParams {
  long n = 16;
  int steps = 3;
  std::uint64_t seed = 13;
  front::ScheduleClause sched{};

  [[nodiscard]] static SpParams tiny() { return {.n = 6, .steps = 1}; }

  [[nodiscard]] AdiParams to_adi() const {
    return {.n = n,
            .steps = steps,
            .block_coupling = false,
            .solve_cost_per_pt = Costs::kSpSolvePerPt,
            .rhs_cost_per_pt = Costs::kSpRhsPerPt,
            .seed = seed,
            .sched = sched};
  }
};

class Sp final : public Adi {
 public:
  Sp(rt::Runtime& rt, const SpParams& p) : Adi(rt, "SP", p.to_adi()) {}
};

std::unique_ptr<core::Workload> make_sp(rt::Runtime& rt, const SpParams& p);

}  // namespace ssomp::apps
