// Shared helpers for the NAS-kernel ports.
//
// The workloads are structure-faithful, scaled-down C++ ports of the
// OpenMP NAS Parallel Benchmarks 2.3 kernels the paper evaluates (Table 2):
// the same loop nests are parallelized, the same reductions and barrier
// placements occur, and the sharing patterns (gather SpMV, 27-point
// stencils, ADI line sweeps, SSOR wavefronts) are preserved. Problem
// classes are reduced so a 32-processor simulation completes in seconds;
// cache capacities are scaled correspondingly (MemParams::
// scaled_for_benchmarks, documented in EXPERIMENTS.md).
#pragma once

#include <cmath>
#include <cstdint>

#include "core/workload.hpp"
#include "front/directive.hpp"
#include "rt/shared.hpp"
#include "sim/rng.hpp"

namespace ssomp::apps {

/// 3D row-major index helper: [k][j][i], i fastest (unit stride).
struct Grid3 {
  long nx = 0, ny = 0, nz = 0;

  [[nodiscard]] long size() const { return nx * ny * nz; }
  [[nodiscard]] long at(long i, long j, long k) const {
    return (k * ny + j) * nx + i;
  }
};

/// Relative-error verification helper.
[[nodiscard]] inline bool close(double got, double want,
                                double rel = 1e-8) {
  const double scale = std::max({std::fabs(got), std::fabs(want), 1e-30});
  return std::fabs(got - want) / scale <= rel;
}

/// Instruction-cost model (cycles per element of work) for the in-order
/// 1.2 GHz core. These charge the private computation that the simulator
/// does not trace; shared-data access time comes from the memory model.
// Each scaled-down grid point / matrix row stands in for a block of the
// full-size problem, so the per-element cycle charges are calibrated to
// reproduce the paper's busy-to-stall operating point at 16 CMPs (see
// EXPERIMENTS.md, "cost calibration") rather than to count the literal
// instructions of the reduced kernel.
struct Costs {
  static constexpr sim::Cycles kSpmvPerNnz = 36;
  static constexpr sim::Cycles kAxpyPerElem = 20;
  static constexpr sim::Cycles kDotPerElem = 12;
  static constexpr sim::Cycles kStencilPerPt = 60;
  static constexpr sim::Cycles kRestrictPerPt = 50;
  static constexpr sim::Cycles kInterpPerPt = 28;
  static constexpr sim::Cycles kBtRhsPerPt = 220;
  static constexpr sim::Cycles kSpRhsPerPt = 260;
  static constexpr sim::Cycles kBtSolvePerPt = 560;  // 5x5 block ops
  static constexpr sim::Cycles kSpSolvePerPt = 420;  // scalar penta
  static constexpr sim::Cycles kSsorPerPt = 480;
};

}  // namespace ssomp::apps
