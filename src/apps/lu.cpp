#include "apps/lu.hpp"

#include <cmath>

#include "rt/pointsync.hpp"

namespace ssomp::apps {

namespace {

constexpr double kOmega = 1.2;    // SSOR relaxation factor
constexpr double kDiag = 2.0;
constexpr double kStencilA = 0.8;
constexpr double kStencilB = 0.03;

/// rsd row (j,k): 7-point stencil residual of u.
void lu_rhs_row(const std::vector<double>& u, const Grid3& g, long j, long k,
                std::vector<double>& out) {
  out.assign(static_cast<std::size_t>(g.nx) * Lu::kComp, 0.0);
  for (long i = 1; i < g.nx - 1; ++i) {
    for (int m = 0; m < Lu::kComp; ++m) {
      const auto um = static_cast<std::size_t>(m);
      const auto at = [&](long di, long dj, long dk) {
        return u[static_cast<std::size_t>(g.at(i + di, j + dj, k + dk)) *
                     Lu::kComp +
                 um];
      };
      out[static_cast<std::size_t>(i) * Lu::kComp + um] =
          kStencilA * at(0, 0, 0) +
          kStencilB * (at(-1, 0, 0) + at(1, 0, 0) + at(0, -1, 0) +
                       at(0, 1, 0) + at(0, 0, -1) + at(0, 0, 1));
    }
  }
}

}  // namespace

Lu::Lu(rt::Runtime& rt, const LuParams& p) : p_(p) {
  g_ = Grid3{p.n + 2, p.n + 2, p.n + 2};
  const auto total = static_cast<std::size_t>(g_.size()) * kComp;
  u_ = std::make_unique<rt::SharedArray<double>>(rt, total, "lu.u");
  rsd_ = std::make_unique<rt::SharedArray<double>>(rt, total, "lu.rsd");
  v_ = std::make_unique<rt::SharedArray<double>>(rt, total, "lu.v");
  for (long k = 0; k < g_.nz; ++k) {
    for (long j = 0; j < g_.ny; ++j) {
      for (long i = 0; i < g_.nx; ++i) {
        for (int m = 0; m < kComp; ++m) {
          const double x = static_cast<double>(i) / (g_.nx - 1);
          const double y = static_cast<double>(j) / (g_.ny - 1);
          const double z = static_cast<double>(k) / (g_.nz - 1);
          u_->host(static_cast<std::size_t>(g_.at(i, j, k)) * kComp +
                   static_cast<std::size_t>(m)) =
              1.0 + 0.05 * (m + 1) * std::cos(2.0 * x + 3.0 * y + z);
        }
      }
    }
  }
}

void Lu::run(rt::SerialCtx& sc) {
  const Grid3 g = g_;
  const long rowlen = g.nx * kComp;
  const auto row_base = [&](long j, long k) {
    return static_cast<std::size_t>(g.at(0, j, k)) * kComp;
  };
  // LU programmatically specifies static scheduling for its loops.
  const front::ScheduleClause kStatic{};

  // Row updates shared by the barrier and pipelined sweep variants.
  const auto lower_row = [&](rt::ThreadCtx& t, std::vector<double>& out,
                             long j, long k) {
    const std::size_t b = row_base(j, k);
    const std::size_t bp = row_base(j, k - 1);
    const std::size_t bpm = row_base(j - 1, k - 1);
    const std::size_t bpp = row_base(j + 1, k - 1);
    rsd_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
    v_->scan_read(t, bp, bp + static_cast<std::size_t>(rowlen));
    v_->scan_read(t, bpm, bpm + static_cast<std::size_t>(rowlen));
    v_->scan_read(t, bpp, bpp + static_cast<std::size_t>(rowlen));
    for (long x = kComp; x < rowlen - kComp; ++x) {
      const auto ux = static_cast<std::size_t>(x);
      out[ux] = (rsd_->host(b + ux) +
                 kOmega * (0.3 * v_->host(bp + ux) +
                           0.1 * (v_->host(bpm + ux) + v_->host(bpp + ux)))) /
                kDiag;
    }
    out[0] = out[static_cast<std::size_t>(rowlen) - 1] = 0.0;
    t.compute(static_cast<sim::Cycles>(g.nx - 2) * Costs::kSsorPerPt);
    v_->scan_write(t, b, b + static_cast<std::size_t>(rowlen), out.data());
  };
  const auto upper_row = [&](rt::ThreadCtx& t, std::vector<double>& out,
                             long j, long k) {
    const std::size_t b = row_base(j, k);
    const std::size_t bn = row_base(j, k + 1);
    const std::size_t bnm = row_base(j - 1, k + 1);
    const std::size_t bnp = row_base(j + 1, k + 1);
    v_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
    v_->scan_read(t, bn, bn + static_cast<std::size_t>(rowlen));
    v_->scan_read(t, bnm, bnm + static_cast<std::size_t>(rowlen));
    v_->scan_read(t, bnp, bnp + static_cast<std::size_t>(rowlen));
    for (long x = kComp; x < rowlen - kComp; ++x) {
      const auto ux = static_cast<std::size_t>(x);
      out[ux] = v_->host(b + ux) -
                kOmega * (0.2 * v_->host(bn + ux) +
                          0.05 * (v_->host(bnm + ux) + v_->host(bnp + ux)));
    }
    out[0] = out[static_cast<std::size_t>(rowlen) - 1] = 0.0;
    t.compute(static_cast<sim::Cycles>(g.nx - 2) * Costs::kSsorPerPt);
    v_->scan_write(t, b, b + static_cast<std::size_t>(rowlen), out.data());
  };

  // Per-thread progress flags for the pipelined variant (value = planes
  // completed, cumulative across iterations so they never need resetting).
  std::vector<std::unique_ptr<rt::ProgressFlag>> lower_flags;
  std::vector<std::unique_ptr<rt::ProgressFlag>> upper_flags;
  if (p_.pipelined) {
    const int max_threads = sc.runtime().machine().ncpus();
    for (int q = 0; q < max_threads; ++q) {
      lower_flags.push_back(std::make_unique<rt::ProgressFlag>(
          sc.runtime(), "lu.lo" + std::to_string(q)));
      upper_flags.push_back(std::make_unique<rt::ProgressFlag>(
          sc.runtime(), "lu.up" + std::to_string(q)));
    }
  }
  // Wavefront sweep over planes with the thread's static row block; waits
  // on the j-neighbours' flags for the previous plane, posts its own.
  const auto pipelined_sweep =
      [&](rt::ThreadCtx& t, std::vector<double>& out,
          std::vector<std::unique_ptr<rt::ProgressFlag>>& flags, bool upper,
          long base) {
        const int nth = t.nthreads();
        const int tid = t.id();
        const long count = g.ny - 2;
        const long bsz = count / nth;
        const long rem = count % nth;
        const long jlo = 1 + tid * bsz + std::min<long>(tid, rem);
        const long jhi = jlo + bsz + (tid < rem ? 1 : 0);
        const long planes = g.nz - 2;
        if (jlo >= jhi) {
          flags[static_cast<std::size_t>(tid)]->post(t, base + planes);
          return;
        }
        for (long p = 1; p <= planes; ++p) {
          const long k = upper ? g.nz - 1 - p : p;
          if (tid > 0) {
            flags[static_cast<std::size_t>(tid) - 1]->wait_ge(t,
                                                              base + p - 1);
          }
          if (tid + 1 < nth) {
            flags[static_cast<std::size_t>(tid) + 1]->wait_ge(t,
                                                              base + p - 1);
          }
          for (long j = jlo; j < jhi; ++j) {
            if (upper) {
              upper_row(t, out, j, k);
            } else {
              lower_row(t, out, j, k);
            }
          }
          flags[static_cast<std::size_t>(tid)]->post(t, base + p);
        }
      };

  for (int iter = 0; iter < p_.iters; ++iter) {
    // One parallel region per SSOR iteration; the sweeps inside
    // synchronize through the loops' implied barriers plus the per-plane
    // barriers of the wavefront.
    double norm = 0.0;
    sc.parallel([&](rt::ThreadCtx& t) {
    { // rsd = stencil(u): parallel over k-planes.
      std::vector<double> out;
      t.for_loop(1, g.nz - 1, kStatic, [&](long k) {
        for (long j = 1; j < g.ny - 1; ++j) {
          for (int dk = -1; dk <= 1; ++dk) {
            for (int dj = -1; dj <= 1; ++dj) {
              if (std::abs(dj) + std::abs(dk) > 1) continue;
              const std::size_t b = row_base(j + dj, k + dk);
              u_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
            }
          }
          lu_rhs_row(u_->host_vector(), g, j, k, out);
          t.compute(static_cast<sim::Cycles>(g.nx - 2) * Costs::kSsorPerPt);
          const std::size_t b = row_base(j, k);
          rsd_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                           out.data());
        }
      });
    }

    { // Lower sweep: wavefront over k-planes, either a barrier per plane
      // or point-to-point pipelining (NAS LU-OMP scheme).
      std::vector<double> out(static_cast<std::size_t>(rowlen));
      if (p_.pipelined) {
        pipelined_sweep(t, out, lower_flags, /*upper=*/false,
                        static_cast<long>(iter) * (g.nz - 2));
        t.barrier();  // sweep complete before the upper sweep reads v
      } else {
        for (long k = 1; k < g.nz - 1; ++k) {
          t.for_loop(
              1, g.ny - 1, kStatic,
              [&](long j) { lower_row(t, out, j, k); },
              /*nowait=*/true);
          t.barrier();  // plane k complete before plane k+1 reads it
        }
      }
    }

    { // Upper sweep: reverse plane order, dependence on k+1.
      std::vector<double> out(static_cast<std::size_t>(rowlen));
      if (p_.pipelined) {
        pipelined_sweep(t, out, upper_flags, /*upper=*/true,
                        static_cast<long>(iter) * (g.nz - 2));
        t.barrier();
      } else {
        for (long k = g.nz - 2; k >= 1; --k) {
          t.for_loop(
              1, g.ny - 1, kStatic,
              [&](long j) { upper_row(t, out, j, k); },
              /*nowait=*/true);
          t.barrier();
        }
      }
    }

    { // u += omega * v, plus the iteration's residual norm (reduction).
      std::vector<double> out(static_cast<std::size_t>(rowlen));
      double local = 0.0;
      t.for_loop(
          1, g.nz - 1, kStatic,
          [&](long k) {
            for (long j = 1; j < g.ny - 1; ++j) {
              const std::size_t b = row_base(j, k);
              u_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
              v_->scan_read(t, b, b + static_cast<std::size_t>(rowlen));
              for (long x = 0; x < rowlen; ++x) {
                const auto ux = static_cast<std::size_t>(x);
                out[ux] = u_->host(b + ux) + kOmega * 0.1 * v_->host(b + ux);
                local += v_->host(b + ux) * v_->host(b + ux);
              }
              t.compute(static_cast<sim::Cycles>(g.nx) *
                        (Costs::kAxpyPerElem + Costs::kDotPerElem));
              u_->scan_write(t, b, b + static_cast<std::size_t>(rowlen),
                             out.data());
            }
          },
          /*nowait=*/true);
      const double total = t.reduce_sum(local);
      if (t.id() == 0 && !t.is_a_stream()) norm = total;
    }
    });
    checksum_ = std::sqrt(norm);
  }
}

core::WorkloadResult Lu::verify() {
  const Grid3 g = g_;
  const long rowlen = g.nx * kComp;
  std::vector<double> u(static_cast<std::size_t>(g.size()) * kComp);
  std::vector<double> rsd(u.size(), 0.0);
  std::vector<double> v(u.size(), 0.0);
  for (long k = 0; k < g.nz; ++k) {
    for (long j = 0; j < g.ny; ++j) {
      for (long i = 0; i < g.nx; ++i) {
        for (int m = 0; m < kComp; ++m) {
          const double x = static_cast<double>(i) / (g.nx - 1);
          const double y = static_cast<double>(j) / (g.ny - 1);
          const double z = static_cast<double>(k) / (g.nz - 1);
          u[static_cast<std::size_t>(g.at(i, j, k)) * kComp +
            static_cast<std::size_t>(m)] =
              1.0 + 0.05 * (m + 1) * std::cos(2.0 * x + 3.0 * y + z);
        }
      }
    }
  }
  const auto row_base = [&](long j, long k) {
    return static_cast<std::size_t>(g.at(0, j, k)) * kComp;
  };
  double norm = 0.0;
  std::vector<double> out;
  for (int iter = 0; iter < p_.iters; ++iter) {
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        lu_rhs_row(u, g, j, k, out);
        std::copy(out.begin(), out.end(),
                  rsd.begin() + static_cast<long>(row_base(j, k)));
      }
    }
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        const std::size_t b = row_base(j, k);
        const std::size_t bp = row_base(j, k - 1);
        const std::size_t bpm = row_base(j - 1, k - 1);
        const std::size_t bpp = row_base(j + 1, k - 1);
        for (long x = kComp; x < rowlen - kComp; ++x) {
          const auto ux = static_cast<std::size_t>(x);
          v[b + ux] = (rsd[b + ux] +
                       kOmega * (0.3 * v[bp + ux] +
                                 0.1 * (v[bpm + ux] + v[bpp + ux]))) /
                      kDiag;
        }
        v[b] = v[b + static_cast<std::size_t>(rowlen) - 1] = 0.0;
      }
    }
    for (long k = g.nz - 2; k >= 1; --k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        const std::size_t b = row_base(j, k);
        const std::size_t bn = row_base(j, k + 1);
        const std::size_t bnm = row_base(j - 1, k + 1);
        const std::size_t bnp = row_base(j + 1, k + 1);
        for (long x = kComp; x < rowlen - kComp; ++x) {
          const auto ux = static_cast<std::size_t>(x);
          v[b + ux] = v[b + ux] -
                      kOmega * (0.2 * v[bn + ux] +
                                0.05 * (v[bnm + ux] + v[bnp + ux]));
        }
        v[b] = v[b + static_cast<std::size_t>(rowlen) - 1] = 0.0;
      }
    }
    norm = 0.0;
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        const std::size_t b = row_base(j, k);
        for (long x = 0; x < rowlen; ++x) {
          const auto ux = static_cast<std::size_t>(x);
          u[b + ux] += kOmega * 0.1 * v[b + ux];
          norm += v[b + ux] * v[b + ux];
        }
      }
    }
  }
  norm = std::sqrt(norm);

  core::WorkloadResult res;
  res.checksum = checksum_;
  res.verified = close(checksum_, norm, 1e-8);
  res.detail = "|v|=" + std::to_string(checksum_) +
               " reference=" + std::to_string(norm);
  return res;
}

std::unique_ptr<core::Workload> make_lu(rt::Runtime& rt, const LuParams& p) {
  return std::make_unique<Lu>(rt, p);
}

}  // namespace ssomp::apps
