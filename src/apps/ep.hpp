// NAS EP: embarrassingly parallel Gaussian-pair generation. Not part of
// the paper's five-benchmark suite; used by the examples and tests as a
// compute-dominant contrast workload (slipstream has little to prefetch),
// and to exercise the critical and atomic constructs.
#pragma once

#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct EpParams {
  long pairs = 1 << 17;      // total random pairs
  long block = 256;          // pairs per worksharing block
  std::uint64_t seed = 271828;
  front::ScheduleClause sched{};

  [[nodiscard]] static EpParams tiny() { return {.pairs = 1 << 9}; }
};

class Ep final : public core::Workload {
 public:
  Ep(rt::Runtime& rt, const EpParams& p);

  [[nodiscard]] std::string name() const override { return "EP"; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  [[nodiscard]] double sx() const { return sx_; }
  [[nodiscard]] double sy() const { return sy_; }

 private:
  static constexpr int kBins = 10;

  EpParams p_;
  rt::SharedArray<double> bins_;
  rt::SharedVar<double> accepted_;
  double sx_ = 0.0;
  double sy_ = 0.0;
};

std::unique_ptr<core::Workload> make_ep(rt::Runtime& rt, const EpParams& p);

}  // namespace ssomp::apps
