#include "apps/mg.hpp"

#include <cmath>

namespace ssomp::apps {

namespace {

// 27-point stencil weights by neighbor class (|di|+|dj|+|dk|).
// A (the residual operator) and S (the smoother) use NAS MG's coefficient
// classes: A has zero face weight, S has zero corner weight.
constexpr double kA[4] = {-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};
constexpr double kS[4] = {-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};

/// Applies a 27-point stencil with class weights `w` to `in` at row (j,k),
/// writing interior results to out_row (length g.nx; borders zeroed).
void stencil_row(const std::vector<double>& in, const Grid3& g, long j,
                 long k, const double w[4], std::vector<double>& out_row) {
  out_row.assign(static_cast<std::size_t>(g.nx), 0.0);
  for (long i = 1; i < g.nx - 1; ++i) {
    double sum = 0.0;
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          const int cls = std::abs(di) + std::abs(dj) + std::abs(dk);
          if (w[cls] == 0.0) continue;
          sum += w[cls] *
                 in[static_cast<std::size_t>(g.at(i + di, j + dj, k + dk))];
        }
      }
    }
    out_row[static_cast<std::size_t>(i)] = sum;
  }
}

/// Full-weighting restriction: coarse row (jc,kc) from the fine grid.
void rprj3_row(const std::vector<double>& fine, const Grid3& fg,
               const Grid3& cg, long jc, long kc,
               std::vector<double>& out_row) {
  out_row.assign(static_cast<std::size_t>(cg.nx), 0.0);
  static constexpr double kW[4] = {8.0 / 64.0, 4.0 / 64.0, 2.0 / 64.0,
                                   1.0 / 64.0};
  for (long ic = 1; ic < cg.nx - 1; ++ic) {
    const long fi = 2 * ic;
    const long fj = 2 * jc;
    const long fk = 2 * kc;
    double sum = 0.0;
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          const int cls = std::abs(di) + std::abs(dj) + std::abs(dk);
          sum += kW[cls] * fine[static_cast<std::size_t>(
                               fg.at(fi + di, fj + dj, fk + dk))];
        }
      }
    }
    out_row[static_cast<std::size_t>(ic)] = sum;
  }
}

/// Trilinear prolongation: additive contribution to fine row (jf,kf) from
/// the coarse grid (coarse points sit at even fine indices).
void interp_row(const std::vector<double>& coarse, const Grid3& cg,
                const Grid3& fg, long jf, long kf,
                std::vector<double>& add_row) {
  add_row.assign(static_cast<std::size_t>(fg.nx), 0.0);
  const auto axis = [](long f) {
    // Returns {c0, c1, w0, w1}: coarse indices and weights along one axis.
    struct R {
      long c0, c1;
      double w0, w1;
    };
    if (f % 2 == 0) return R{f / 2, f / 2, 1.0, 0.0};
    return R{(f - 1) / 2, (f + 1) / 2, 0.5, 0.5};
  };
  const auto aj = axis(jf);
  const auto ak = axis(kf);
  for (long i = 1; i < fg.nx - 1; ++i) {
    const auto ai = axis(i);
    double sum = 0.0;
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        for (int c = 0; c < 2; ++c) {
          const double w = (a ? ai.w1 : ai.w0) * (b ? aj.w1 : aj.w0) *
                           (c ? ak.w1 : ak.w0);
          if (w == 0.0) continue;
          sum += w * coarse[static_cast<std::size_t>(
                        cg.at(a ? ai.c1 : ai.c0, b ? aj.c1 : aj.c0,
                              c ? ak.c1 : ak.c0))];
        }
      }
    }
    add_row[static_cast<std::size_t>(i)] = sum;
  }
}

}  // namespace

Mg::Mg(rt::Runtime& rt, const MgParams& p) : p_(p) {
  long n = p.n;
  for (int l = 0; l < p.levels; ++l) {
    Level lev;
    lev.g = Grid3{n + 2, n + 2, n + 2};
    lev.u = std::make_unique<rt::SharedArray<double>>(
        rt, static_cast<std::size_t>(lev.g.size()),
        "mg.u" + std::to_string(l));
    lev.r = std::make_unique<rt::SharedArray<double>>(
        rt, static_cast<std::size_t>(lev.g.size()),
        "mg.r" + std::to_string(l));
    levels_.push_back(std::move(lev));
    n /= 2;
  }
  const Grid3& g = levels_[0].g;
  v_ = std::make_unique<rt::SharedArray<double>>(
      rt, static_cast<std::size_t>(g.size()), "mg.v");
  // Right-hand side: a few point charges of alternating sign, like NAS
  // MG's +1/-1 charge placement (deterministic pseudo-random positions).
  sim::Rng rng(p.seed);
  const int charges = 10;
  for (int c = 0; c < charges; ++c) {
    const long i = 1 + static_cast<long>(
                           rng.next_below(static_cast<std::uint64_t>(p.n)));
    const long j = 1 + static_cast<long>(
                           rng.next_below(static_cast<std::uint64_t>(p.n)));
    const long k = 1 + static_cast<long>(
                           rng.next_below(static_cast<std::uint64_t>(p.n)));
    v_->host(static_cast<std::size_t>(g.at(i, j, k))) =
        (c % 2 == 0) ? 1.0 : -1.0;
  }
}

void Mg::run(rt::SerialCtx& sc) {
  // One parallel region spans a whole V-cycle, with the kernels as
  // orphaned worksharing loops separated by the loops' implied barriers —
  // the structure of the NAS-OMP port, and the barrier stream the
  // slipstream token protocol rides on. Work is shared over interior
  // k-planes.
  const auto sweep_stencil = [&](rt::ThreadCtx& t,
                                 rt::SharedArray<double>& in,
                                 rt::SharedArray<double>& rhs_or_base,
                                 rt::SharedArray<double>& out, const Grid3& g,
                                 const double w[4], bool residual_form,
                                 sim::Cycles cost) {
    // residual_form: out = rhs - A(in); else smoother: out = base + S(in).
    {
      std::vector<double> row;
      std::vector<double> result(static_cast<std::size_t>(g.nx));
      t.for_loop(1, g.nz - 1, p_.sched, [&](long k) {
        for (long j = 1; j < g.ny - 1; ++j) {
          // Touch the nine input rows the stencil reads.
          for (int dk = -1; dk <= 1; ++dk) {
            for (int dj = -1; dj <= 1; ++dj) {
              const long base = g.at(0, j + dj, k + dk);
              in.scan_read(t, static_cast<std::size_t>(base),
                           static_cast<std::size_t>(base + g.nx));
            }
          }
          const long rb = g.at(0, j, k);
          rhs_or_base.scan_read(t, static_cast<std::size_t>(rb),
                                static_cast<std::size_t>(rb + g.nx));
          stencil_row(in.host_vector(), g, j, k, w, row);
          for (long i = 0; i < g.nx; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            const double base_v =
                rhs_or_base.host(static_cast<std::size_t>(rb + i));
            result[ui] = residual_form ? base_v - row[ui] : base_v + row[ui];
            if (i == 0 || i == g.nx - 1) result[ui] = 0.0;
          }
          t.compute(static_cast<sim::Cycles>(g.nx - 2) * cost);
          out.scan_write(t, static_cast<std::size_t>(rb),
                         static_cast<std::size_t>(rb + g.nx), result.data());
        }
      });
    }
  };

  const auto resid = [&](rt::ThreadCtx& t, Level& lev,
                         rt::SharedArray<double>& rhs) {
    sweep_stencil(t, *lev.u, rhs, *lev.r, lev.g, kA, /*residual_form=*/true,
                  Costs::kStencilPerPt);
  };
  const auto psinv = [&](rt::ThreadCtx& t, Level& lev) {
    sweep_stencil(t, *lev.r, *lev.u, *lev.u, lev.g, kS,
                  /*residual_form=*/false, Costs::kStencilPerPt);
  };
  const auto zero_u = [&](rt::ThreadCtx& t, Level& lev) {
    const Grid3 g = lev.g;
    {
      std::vector<double> zeros(static_cast<std::size_t>(g.nx), 0.0);
      t.for_loop(0, g.nz, p_.sched, [&](long k) {
        for (long j = 0; j < g.ny; ++j) {
          const long rb = g.at(0, j, k);
          lev.u->scan_write(t, static_cast<std::size_t>(rb),
                            static_cast<std::size_t>(rb + g.nx),
                            zeros.data());
          t.compute(static_cast<sim::Cycles>(g.nx));
        }
      });
    }
  };
  const auto restrict_r = [&](rt::ThreadCtx& t, Level& fine, Level& coarse) {
    const Grid3 fg = fine.g;
    const Grid3 cg = coarse.g;
    {
      std::vector<double> row;
      t.for_loop(1, cg.nz - 1, p_.sched, [&](long kc) {
        for (long jc = 1; jc < cg.ny - 1; ++jc) {
          for (int dk = -1; dk <= 1; ++dk) {
            for (int dj = -1; dj <= 1; ++dj) {
              const long base = fg.at(0, 2 * jc + dj, 2 * kc + dk);
              fine.r->scan_read(t, static_cast<std::size_t>(base),
                                static_cast<std::size_t>(base + fg.nx));
            }
          }
          rprj3_row(fine.r->host_vector(), fg, cg, jc, kc, row);
          const long rb = cg.at(0, jc, kc);
          t.compute(static_cast<sim::Cycles>(cg.nx - 2) *
                    Costs::kRestrictPerPt);
          coarse.r->scan_write(t, static_cast<std::size_t>(rb),
                               static_cast<std::size_t>(rb + cg.nx),
                               row.data());
        }
      });
    }
  };
  const auto interp_add = [&](rt::ThreadCtx& t, Level& coarse, Level& fine) {
    const Grid3 fg = fine.g;
    const Grid3 cg = coarse.g;
    {
      std::vector<double> add;
      std::vector<double> result(static_cast<std::size_t>(fg.nx));
      t.for_loop(1, fg.nz - 1, p_.sched, [&](long kf) {
        for (long jf = 1; jf < fg.ny - 1; ++jf) {
          // Coarse rows feeding this fine row.
          for (long cj : {(jf - 1) / 2, (jf + 1) / 2}) {
            for (long ck : {(kf - 1) / 2, (kf + 1) / 2}) {
              const long base = cg.at(0, cj, ck);
              coarse.u->scan_read(t, static_cast<std::size_t>(base),
                                  static_cast<std::size_t>(base + cg.nx));
            }
          }
          const long rb = fg.at(0, jf, kf);
          fine.u->scan_read(t, static_cast<std::size_t>(rb),
                            static_cast<std::size_t>(rb + fg.nx));
          interp_row(coarse.u->host_vector(), cg, fg, jf, kf, add);
          for (long i = 0; i < fg.nx; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            result[ui] =
                fine.u->host(static_cast<std::size_t>(rb + i)) + add[ui];
            if (i == 0 || i == fg.nx - 1) result[ui] = 0.0;
          }
          t.compute(static_cast<sim::Cycles>(fg.nx - 2) *
                    Costs::kInterpPerPt);
          fine.u->scan_write(t, static_cast<std::size_t>(rb),
                             static_cast<std::size_t>(rb + fg.nx),
                             result.data());
        }
      });
    }
  };

  const int lt = p_.levels;
  sc.parallel([&](rt::ThreadCtx& t) {
    zero_u(t, levels_[0]);
    resid(t, levels_[0], *v_);  // r = v - A u (u = 0)
  });

  for (int cycle = 0; cycle < p_.v_cycles; ++cycle) {
    sc.parallel([&](rt::ThreadCtx& t) {
      // Down: restrict the residual to the coarsest level.
      for (int l = 0; l + 1 < lt; ++l) {
        restrict_r(t, levels_[static_cast<std::size_t>(l)],
                   levels_[static_cast<std::size_t>(l) + 1]);
      }
      // Coarsest: u = S r.
      zero_u(t, levels_[static_cast<std::size_t>(lt - 1)]);
      psinv(t, levels_[static_cast<std::size_t>(lt - 1)]);
      // Up: prolongate, correct the residual, smooth.
      for (int l = lt - 2; l >= 1; --l) {
        Level& lev = levels_[static_cast<std::size_t>(l)];
        zero_u(t, lev);
        interp_add(t, levels_[static_cast<std::size_t>(l) + 1], lev);
        resid(t, lev, *lev.r);
        psinv(t, lev);
      }
      // Finest level.
      interp_add(t, levels_[1], levels_[0]);
      resid(t, levels_[0], *v_);
      psinv(t, levels_[0]);
      resid(t, levels_[0], *v_);
    });
  }

  // rnorm = || r ||_2 over the finest grid (reduction region).
  const Grid3 g = levels_[0].g;
  double result = 0.0;
  sc.parallel([&](rt::ThreadCtx& t) {
    double local = 0.0;
    t.for_loop(
        1, g.nz - 1, p_.sched,
        [&](long k) {
          for (long j = 1; j < g.ny - 1; ++j) {
            const long rb = g.at(0, j, k);
            levels_[0].r->scan_read(t, static_cast<std::size_t>(rb),
                                    static_cast<std::size_t>(rb + g.nx));
            for (long i = 1; i < g.nx - 1; ++i) {
              const double rv =
                  levels_[0].r->host(static_cast<std::size_t>(rb + i));
              local += rv * rv;
            }
            t.compute(static_cast<sim::Cycles>(g.nx - 2) *
                      Costs::kDotPerElem);
          }
        },
        /*nowait=*/true);
    const double total = t.reduce_sum(local);
    if (t.id() == 0 && !t.is_a_stream()) result = total;
  });
  rnorm_ = std::sqrt(result);
}

core::WorkloadResult Mg::verify() {
  // Serial reference: same cycle structure on host copies.
  struct HostLevel {
    Grid3 g;
    std::vector<double> u, r;
  };
  std::vector<HostLevel> ls;
  long n = p_.n;
  for (int l = 0; l < p_.levels; ++l) {
    HostLevel hl;
    hl.g = Grid3{n + 2, n + 2, n + 2};
    hl.u.assign(static_cast<std::size_t>(hl.g.size()), 0.0);
    hl.r.assign(static_cast<std::size_t>(hl.g.size()), 0.0);
    ls.push_back(std::move(hl));
    n /= 2;
  }
  std::vector<double> v = v_->host_vector();

  const auto stencil_full = [](const std::vector<double>& in,
                               const std::vector<double>& base,
                               std::vector<double>& out, const Grid3& g,
                               const double w[4], bool residual_form) {
    std::vector<double> row;
    std::vector<double> result(static_cast<std::size_t>(g.nx));
    std::vector<double> tmp(out.size(), 0.0);
    for (long k = 1; k < g.nz - 1; ++k) {
      for (long j = 1; j < g.ny - 1; ++j) {
        stencil_row(in, g, j, k, w, row);
        const long rb = g.at(0, j, k);
        for (long i = 0; i < g.nx; ++i) {
          double val = residual_form
                           ? base[static_cast<std::size_t>(rb + i)] -
                                 row[static_cast<std::size_t>(i)]
                           : base[static_cast<std::size_t>(rb + i)] +
                                 row[static_cast<std::size_t>(i)];
          if (i == 0 || i == g.nx - 1) val = 0.0;
          tmp[static_cast<std::size_t>(rb + i)] = val;
        }
      }
    }
    out = tmp;
  };

  const auto resid_h = [&](HostLevel& lev, const std::vector<double>& rhs) {
    stencil_full(lev.u, rhs, lev.r, lev.g, kA, true);
  };
  const auto psinv_h = [&](HostLevel& lev) {
    stencil_full(lev.r, lev.u, lev.u, lev.g, kS, false);
  };
  const auto restrict_h = [&](HostLevel& fine, HostLevel& coarse) {
    std::vector<double> row;
    for (long kc = 1; kc < coarse.g.nz - 1; ++kc) {
      for (long jc = 1; jc < coarse.g.ny - 1; ++jc) {
        rprj3_row(fine.r, fine.g, coarse.g, jc, kc, row);
        const long rb = coarse.g.at(0, jc, kc);
        for (long i = 0; i < coarse.g.nx; ++i) {
          coarse.r[static_cast<std::size_t>(rb + i)] =
              row[static_cast<std::size_t>(i)];
        }
      }
    }
  };
  const auto interp_h = [&](HostLevel& coarse, HostLevel& fine) {
    std::vector<double> add;
    for (long kf = 1; kf < fine.g.nz - 1; ++kf) {
      for (long jf = 1; jf < fine.g.ny - 1; ++jf) {
        interp_row(coarse.u, coarse.g, fine.g, jf, kf, add);
        const long rb = fine.g.at(0, jf, kf);
        for (long i = 1; i < fine.g.nx - 1; ++i) {
          fine.u[static_cast<std::size_t>(rb + i)] +=
              add[static_cast<std::size_t>(i)];
        }
      }
    }
  };

  const int lt = p_.levels;
  resid_h(ls[0], v);
  for (int cycle = 0; cycle < p_.v_cycles; ++cycle) {
    for (int l = 0; l + 1 < lt; ++l) {
      restrict_h(ls[static_cast<std::size_t>(l)],
                 ls[static_cast<std::size_t>(l) + 1]);
    }
    auto& cl = ls[static_cast<std::size_t>(lt - 1)];
    cl.u.assign(cl.u.size(), 0.0);
    psinv_h(cl);
    for (int l = lt - 2; l >= 1; --l) {
      auto& lev = ls[static_cast<std::size_t>(l)];
      lev.u.assign(lev.u.size(), 0.0);
      interp_h(ls[static_cast<std::size_t>(l) + 1], lev);
      resid_h(lev, lev.r);
      psinv_h(lev);
    }
    interp_h(ls[1], ls[0]);
    resid_h(ls[0], v);
    psinv_h(ls[0]);
    resid_h(ls[0], v);
  }
  double norm = 0.0;
  const Grid3& g = ls[0].g;
  for (long k = 1; k < g.nz - 1; ++k) {
    for (long j = 1; j < g.ny - 1; ++j) {
      for (long i = 1; i < g.nx - 1; ++i) {
        const double rv = ls[0].r[static_cast<std::size_t>(g.at(i, j, k))];
        norm += rv * rv;
      }
    }
  }
  norm = std::sqrt(norm);

  core::WorkloadResult res;
  res.checksum = rnorm_;
  res.verified = close(rnorm_, norm, 1e-8);
  res.detail =
      "rnorm=" + std::to_string(rnorm_) + " reference=" + std::to_string(norm);
  return res;
}

std::unique_ptr<core::Workload> make_mg(rt::Runtime& rt, const MgParams& p) {
  return std::make_unique<Mg>(rt, p);
}

}  // namespace ssomp::apps
