// Shared skeleton for the two ADI solvers of the suite:
//   BT — block-tridiagonal: the five solution components are coupled
//        through a constant 5x5 block at every line-solve step;
//   SP — scalar-pentadiagonal: components solved independently (modeled
//        as scalar recurrences with a cheaper per-point cost).
//
// One time step = compute_rhs (7-point stencil over the 5-component grid),
// x/y/z line sweeps (forward/backward recurrences along each dimension;
// x- and y-sweeps are parallel over k-planes, the z-sweep is parallel over
// j as in the NAS OpenMP ports), and the add of the correction into u.
#pragma once

#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct AdiParams {
  long n = 12;  // interior points per dimension (NAS class S uses 12)
  int steps = 3;
  bool block_coupling = true;  // BT: true, SP: false
  sim::Cycles solve_cost_per_pt = Costs::kBtSolvePerPt;
  sim::Cycles rhs_cost_per_pt = Costs::kBtRhsPerPt;
  std::uint64_t seed = 11;
  front::ScheduleClause sched{};
};

class Adi : public core::Workload {
 public:
  Adi(rt::Runtime& rt, std::string name, const AdiParams& p);

  [[nodiscard]] std::string name() const override { return name_; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  [[nodiscard]] double checksum() const { return checksum_; }

  static constexpr int kComp = 5;  // solution components per grid point

 private:
  std::string name_;
  AdiParams p_;
  Grid3 g_;  // (n+2)^3 with boundary shell; element index * kComp + m
  std::unique_ptr<rt::SharedArray<double>> u_;
  std::unique_ptr<rt::SharedArray<double>> rhs_;
  double checksum_ = 0.0;
};

}  // namespace ssomp::apps
