#include "apps/bt.hpp"

namespace ssomp::apps {

std::unique_ptr<core::Workload> make_bt(rt::Runtime& rt, const BtParams& p) {
  return std::make_unique<Bt>(rt, p);
}

}  // namespace ssomp::apps
