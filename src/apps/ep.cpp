#include "apps/ep.hpp"

#include <cmath>

namespace ssomp::apps {

namespace {

struct BlockResult {
  double sx = 0.0;
  double sy = 0.0;
  double accepted = 0.0;
  double bins[10] = {};
};

/// Generates one block of Gaussian pairs (Marsaglia polar method on a
/// per-block deterministic stream, mirroring NAS EP's restartable random
/// sequence).
BlockResult run_block(std::uint64_t seed, long block_index, long pairs) {
  BlockResult out;
  sim::Rng rng(seed + static_cast<std::uint64_t>(block_index) * 0x517cc1ULL);
  for (long i = 0; i < pairs; ++i) {
    const double x = 2.0 * rng.next_double() - 1.0;
    const double y = 2.0 * rng.next_double() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0 || t == 0.0) continue;
    const double f = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * f;
    const double gy = y * f;
    out.sx += gx;
    out.sy += gy;
    out.accepted += 1.0;
    const int bin =
        std::min(9, static_cast<int>(std::max(std::fabs(gx),
                                              std::fabs(gy))));
    out.bins[bin] += 1.0;
  }
  return out;
}

}  // namespace

Ep::Ep(rt::Runtime& rt, const EpParams& p)
    : p_(p), bins_(rt, kBins, "ep.bins"), accepted_(rt, "ep.accepted") {}

void Ep::run(rt::SerialCtx& sc) {
  const long nblocks = (p_.pairs + p_.block - 1) / p_.block;
  double rsx = 0.0;
  double rsy = 0.0;
  sc.parallel([&](rt::ThreadCtx& t) {
    BlockResult local;
    t.for_chunks(
        0, nblocks, p_.sched,
        [&](long lo, long hi) {
          for (long b = lo; b < hi; ++b) {
            const long first = b * p_.block;
            const long count = std::min(p_.block, p_.pairs - first);
            const BlockResult r = run_block(p_.seed, b, count);
            local.sx += r.sx;
            local.sy += r.sy;
            local.accepted += r.accepted;
            for (int q = 0; q < kBins; ++q) local.bins[q] += r.bins[q];
            // Dominated by private computation: ~60 cycles per pair.
            t.compute(static_cast<sim::Cycles>(count) * 60);
          }
        },
        /*nowait=*/true);
    // Bin table merged under the critical construct (as NAS EP does).
    t.critical([&] {
      for (int q = 0; q < kBins; ++q) {
        const double cur = bins_.read(t, static_cast<std::size_t>(q));
        bins_.write(t, static_cast<std::size_t>(q),
                    cur + local.bins[static_cast<std::size_t>(q)]);
      }
    });
    // Acceptance count via the atomic construct.
    accepted_.atomic_add(t, local.accepted);
    const double gsx = t.reduce_sum(local.sx);
    const double gsy = t.reduce_sum(local.sy);
    if (t.id() == 0 && !t.is_a_stream()) {
      rsx = gsx;
      rsy = gsy;
    }
  });
  sx_ = rsx;
  sy_ = rsy;
}

core::WorkloadResult Ep::verify() {
  const long nblocks = (p_.pairs + p_.block - 1) / p_.block;
  double sx = 0.0;
  double sy = 0.0;
  double accepted = 0.0;
  double bins[kBins] = {};
  for (long b = 0; b < nblocks; ++b) {
    const long first = b * p_.block;
    const long count = std::min(p_.block, p_.pairs - first);
    const BlockResult r = run_block(p_.seed, b, count);
    sx += r.sx;
    sy += r.sy;
    accepted += r.accepted;
    for (int q = 0; q < kBins; ++q) bins[q] += r.bins[q];
  }
  bool bins_ok = true;
  for (int q = 0; q < kBins; ++q) {
    if (bins_.host(static_cast<std::size_t>(q)) != bins[q]) bins_ok = false;
  }
  core::WorkloadResult res;
  res.checksum = sx_ + sy_;
  res.verified = close(sx_, sx, 1e-9) && close(sy_, sy, 1e-9) && bins_ok &&
                 accepted_.host() == accepted;
  res.detail = "sx=" + std::to_string(sx_) + " sy=" + std::to_string(sy_) +
               (bins_ok ? " bins-ok" : " BINS-MISMATCH");
  return res;
}

std::unique_ptr<core::Workload> make_ep(rt::Runtime& rt, const EpParams& p) {
  return std::make_unique<Ep>(rt, p);
}

}  // namespace ssomp::apps
