#include "apps/sp.hpp"

namespace ssomp::apps {

std::unique_ptr<core::Workload> make_sp(rt::Runtime& rt, const SpParams& p) {
  return std::make_unique<Sp>(rt, p);
}

}  // namespace ssomp::apps
