// NAS LU: SSOR solver. The lower/upper triangular sweeps carry a
// k-plane dependence, giving LU the barrier-heavy, limited-overlap profile
// that makes it the smallest slipstream winner in the paper.
//
// Static scheduling is programmatically specified for the sweep loops (the
// paper excludes LU from the dynamic-scheduling study for this reason).
//
// Two sweep synchronization schemes are provided: a barrier per plane
// (default — the conservative variant the paper's static-heavy LU profile
// matches) and the NAS-OMP point-to-point pipelining via per-thread
// progress flags (LuParams::pipelined; see rt/pointsync.hpp).
#pragma once

#include <memory>
#include <vector>

#include "apps/common.hpp"

namespace ssomp::apps {

struct LuParams {
  long n = 12;
  int iters = 3;
  std::uint64_t seed = 17;
  /// Pipelined wavefront sweeps with point-to-point progress flags (the
  /// NAS LU-OMP scheme) instead of a barrier per plane.
  bool pipelined = false;

  [[nodiscard]] static LuParams tiny() { return {.n = 6, .iters = 1}; }
};

class Lu final : public core::Workload {
 public:
  Lu(rt::Runtime& rt, const LuParams& p);

  [[nodiscard]] std::string name() const override { return "LU"; }
  void run(rt::SerialCtx& sc) override;
  [[nodiscard]] core::WorkloadResult verify() override;

  static constexpr int kComp = 5;

 private:
  LuParams p_;
  Grid3 g_;
  std::unique_ptr<rt::SharedArray<double>> u_;
  std::unique_ptr<rt::SharedArray<double>> rsd_;  // rhs / residual
  std::unique_ptr<rt::SharedArray<double>> v_;    // sweep intermediate
  double checksum_ = 0.0;
};

std::unique_ptr<core::Workload> make_lu(rt::Runtime& rt, const LuParams& p);

}  // namespace ssomp::apps
