#include "front/directive.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

namespace ssomp::front {

namespace {

std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_commas(std::string_view s) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t pos = s.find(',');
    if (pos == std::string_view::npos) {
      if (!trim(s).empty()) parts.push_back(trim(s));
      break;
    }
    parts.push_back(trim(s.substr(0, pos)));
    s.remove_prefix(pos + 1);
  }
  return parts;
}

bool parse_nonneg_int(std::string_view s, int& out) {
  if (s.empty() || s.size() > 9) return false;
  long v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  out = static_cast<int>(v);
  return true;
}

std::optional<slip::SyncType> sync_type_from(std::string_view word,
                                             bool allow_none) {
  const std::string w = upper(word);
  if (w == "GLOBAL_SYNC") return slip::SyncType::kGlobal;
  if (w == "LOCAL_SYNC") return slip::SyncType::kLocal;
  if (w == "RUNTIME_SYNC") return slip::SyncType::kRuntime;
  if (allow_none && w == "NONE") return slip::SyncType::kNone;
  return std::nullopt;
}

/// Parses the "[type] [, tokens]" argument list shared by the directive
/// and the environment variable.
ParseResult<ParsedSlipstream> parse_args(std::string_view args,
                                         bool allow_none) {
  using R = ParseResult<ParsedSlipstream>;
  ParsedSlipstream out;
  const auto parts = split_commas(args);
  if (parts.size() > 2) {
    return R::failure("too many arguments (expected [type][, tokens])");
  }
  std::size_t i = 0;
  if (i < parts.size()) {
    if (auto t = sync_type_from(parts[i], allow_none)) {
      out.type = *t;
      ++i;
    } else if (parts.size() == 2) {
      return R::failure("unknown synchronization type '" +
                        std::string(parts[i]) + "'");
    }
  }
  if (i < parts.size()) {
    int tokens = 0;
    if (!parse_nonneg_int(parts[i], tokens)) {
      return R::failure("invalid token count '" + std::string(parts[i]) +
                        "'");
    }
    out.tokens = tokens;
    ++i;
  }
  if (i != parts.size()) {
    return R::failure("trailing arguments after token count");
  }
  return R::success(out);
}

}  // namespace

ParseResult<ParsedSlipstream> parse_slipstream_directive(
    std::string_view text) {
  using R = ParseResult<ParsedSlipstream>;
  std::string_view s = trim(text);
  // Strip optional sentinels.
  for (std::string_view sentinel : {"!$OMP", "!$omp", "#pragma omp"}) {
    if (s.size() >= sentinel.size() &&
        upper(s.substr(0, sentinel.size())) == upper(sentinel)) {
      s = trim(s.substr(sentinel.size()));
      break;
    }
  }
  const std::string head = upper(s.substr(0, 10));
  if (head != "SLIPSTREAM") {
    return R::failure("not a SLIPSTREAM directive");
  }
  s = trim(s.substr(10));
  if (s.empty()) return R::success(ParsedSlipstream{});
  if (s.front() != '(' || s.back() != ')') {
    return R::failure("malformed argument list");
  }
  return parse_args(trim(s.substr(1, s.size() - 2)), /*allow_none=*/false);
}

ParseResult<ParsedSlipstream> parse_slipstream_env(std::string_view text) {
  return parse_args(trim(text), /*allow_none=*/true);
}

ParseResult<ScheduleClause> parse_schedule_clause(std::string_view text) {
  using R = ParseResult<ScheduleClause>;
  std::string_view s = trim(text);
  const std::string head = upper(s.substr(0, 8));
  if (head == "SCHEDULE") {
    s = trim(s.substr(8));
    if (s.empty() || s.front() != '(' || s.back() != ')') {
      return R::failure("malformed schedule clause");
    }
    s = trim(s.substr(1, s.size() - 2));
  }
  const auto parts = split_commas(s);
  if (parts.empty() || parts.size() > 2) {
    return R::failure("expected kind[, chunk]");
  }
  ScheduleClause out;
  const std::string kind = upper(parts[0]);
  if (kind == "STATIC") {
    out.kind = ScheduleKind::kStatic;
  } else if (kind == "DYNAMIC") {
    out.kind = ScheduleKind::kDynamic;
  } else if (kind == "GUIDED") {
    out.kind = ScheduleKind::kGuided;
  } else if (kind == "AFFINITY") {
    out.kind = ScheduleKind::kAffinity;
  } else {
    return R::failure("unknown schedule kind '" + std::string(parts[0]) +
                      "'");
  }
  if (parts.size() == 2) {
    int chunk = 0;
    if (!parse_nonneg_int(parts[1], chunk) || chunk <= 0) {
      return R::failure("invalid chunk size '" + std::string(parts[1]) + "'");
    }
    out.chunk = chunk;
  }
  return R::success(out);
}

bool DirectiveControl::set_env(std::string_view value) {
  if (trim(value).empty()) {
    env_.reset();
    return true;
  }
  auto r = parse_slipstream_env(value);
  if (!r.ok) return false;
  env_ = r.value;
  return true;
}

void DirectiveControl::apply_serial(const ParsedSlipstream& d) {
  if (d.type) global_.type = *d.type;
  if (d.tokens) global_.tokens = *d.tokens;
}

slip::SlipstreamConfig DirectiveControl::resolve(
    const std::optional<ParsedSlipstream>& region) const {
  slip::SlipstreamConfig cfg = global_;
  if (region) {
    if (region->type) cfg.type = *region->type;
    if (region->tokens) cfg.tokens = *region->tokens;
  }
  if (cfg.type == slip::SyncType::kRuntime) {
    if (env_) {
      cfg.type = env_->type.value_or(default_config().type);
      if (env_->tokens) cfg.tokens = *env_->tokens;
    } else {
      cfg.type = default_config().type;
    }
  }
  return cfg;
}

}  // namespace ssomp::front
