#include "front/report.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ssomp::front {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Extracts the directive text after an OpenMP sentinel, if any.
bool omp_directive(std::string_view line, std::string& out) {
  const std::string l = lower(line);
  for (const std::string& sentinel :
       {std::string("#pragma omp"), std::string("!$omp")}) {
    const auto pos = l.find(sentinel);
    if (pos != std::string::npos) {
      out = std::string(trim(line.substr(pos + sentinel.size())));
      return true;
    }
  }
  return false;
}

/// First word of a directive.
std::string head_word(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
    ++i;
  }
  return lower(s.substr(0, i));
}

/// Finds "slipstream(... )" or bare "slipstream" inside a directive; true
/// if present, with the full token text in `out`.
bool find_slipstream_clause(std::string_view text, std::string& out) {
  const std::string l = lower(text);
  const auto pos = l.find("slipstream");
  if (pos == std::string::npos) return false;
  std::size_t end = pos + 10;
  if (end < l.size()) {
    // Skip whitespace, then an optional parenthesized argument list.
    std::size_t i = end;
    while (i < l.size() && std::isspace(static_cast<unsigned char>(l[i]))) {
      ++i;
    }
    if (i < l.size() && l[i] == '(') {
      const auto close = l.find(')', i);
      end = close == std::string::npos ? l.size() : close + 1;
    }
  }
  out = std::string(text.substr(pos, end - pos));
  return true;
}

std::string schedule_of(std::string_view text) {
  const std::string l = lower(text);
  const auto pos = l.find("schedule");
  if (pos == std::string::npos) return "static (default)";
  const auto open = l.find('(', pos);
  const auto close = l.find(')', pos);
  if (open == std::string::npos || close == std::string::npos) {
    return "malformed";
  }
  return std::string(trim(l.substr(open + 1, close - open - 1)));
}

std::string describe_sync(const slip::SlipstreamConfig& cfg) {
  if (!cfg.enabled()) return "disabled";
  std::string out(to_string(cfg.type));
  out += ", tokens=" + std::to_string(cfg.tokens);
  return out;
}

}  // namespace

SourceReport analyze_source(std::string_view source,
                            std::string_view omp_slipstream_env) {
  SourceReport report;
  DirectiveControl control;
  if (!control.set_env(omp_slipstream_env)) {
    report.errors.push_back("0: invalid OMP_SLIPSTREAM value '" +
                            std::string(omp_slipstream_env) + "'");
  }

  int depth = 0;  // parallel-region brace depth (approximate)
  std::istringstream stream{std::string(source)};
  std::string line;
  int lineno = 0;
  bool pending_region_scope = false;  // a parallel directive awaiting '{'

  while (std::getline(stream, line)) {
    ++lineno;
    // Track region extent by brace count once a parallel directive opened.
    for (char c : line) {
      if (c == '{') {
        if (pending_region_scope || depth > 0) ++depth;
        pending_region_scope = false;
      } else if (c == '}') {
        if (depth > 0) --depth;
      }
    }

    std::string text;
    if (!omp_directive(line, text)) continue;
    const std::string kind = head_word(text);

    ConstructReport c;
    c.line = lineno;
    c.clauses = text;

    if (kind == "slipstream") {
      ++report.slipstream_directives;
      auto parsed = parse_slipstream_directive(text);
      if (!parsed.ok) {
        report.errors.push_back(std::to_string(lineno) + ": " + parsed.error);
        continue;
      }
      if (depth == 0) {
        control.apply_serial(parsed.value);
        c.construct = "slipstream (serial)";
        c.r_action = "sets the program-global slipstream configuration";
        c.a_action = "-";
        c.sync = describe_sync(control.resolve());
      } else {
        report.errors.push_back(
            std::to_string(lineno) +
            ": SLIPSTREAM inside a parallel region has no effect (the "
            "execution mode is fixed for the region, §3.1)");
        continue;
      }
      report.constructs.push_back(std::move(c));
      continue;
    }

    if (kind == "parallel") {
      ++report.parallel_regions;
      pending_region_scope = true;
      std::optional<ParsedSlipstream> region;
      std::string clause;
      if (find_slipstream_clause(text, clause)) {
        ++report.slipstream_directives;
        auto parsed = parse_slipstream_directive(clause);
        if (parsed.ok) {
          region = parsed.value;
        } else {
          report.errors.push_back(std::to_string(lineno) + ": " +
                                  parsed.error);
        }
      }
      const slip::SlipstreamConfig cfg = control.resolve(region);
      c.construct = text.find("for") != std::string::npos ? "parallel for"
                                                          : "parallel";
      c.r_action = "spawn team; execute region";
      c.a_action = cfg.enabled()
                       ? "paired A-streams launched (same thread ids, "
                         "halved thread count)"
                       : "second processors stay idle";
      c.sync = describe_sync(cfg);
      if (c.construct == "parallel for") {
        c.clauses += "  [schedule: " + schedule_of(text) + "]";
      }
      report.constructs.push_back(std::move(c));
      continue;
    }

    if (kind == "for" || kind == "do") {
      c.construct = "for";
      const std::string sched = schedule_of(text);
      c.r_action = "worksharing (" + sched + ")";
      c.a_action =
          sched.find("static") != std::string::npos
              ? "computes identical bounds independently (§3.2.1)"
              : "waits on the syscall semaphore for R's chunk decision "
                "(§3.2.2)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "barrier") {
      c.construct = "barrier";
      c.r_action = "arrive; insert token (entry=LOCAL, exit=GLOBAL)";
      c.a_action = "consume token; skip the barrier (§2.2)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "single") {
      c.construct = "single";
      c.r_action = "first arriver executes";
      c.a_action = "skipped — the executor is unpredictable (§3.1)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "master") {
      c.construct = "master";
      c.r_action = "thread 0 executes";
      c.a_action = "master's A-stream executes too (§3.1)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "critical") {
      c.construct = "critical";
      c.r_action = "lock; execute; unlock";
      c.a_action = "skipped by default (data would migrate, §3.1)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "atomic") {
      c.construct = "atomic";
      c.r_action = "exclusive RMW";
      c.a_action = "exclusive prefetch (keeps the data from migrating)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "sections" || kind == "section") {
      c.construct = kind;
      c.r_action = "functional worksharing";
      c.a_action = "static assignment: executes ahead; dynamic: forwarded";
      report.constructs.push_back(std::move(c));
      continue;
    }
    if (kind == "flush") {
      c.construct = "flush";
      c.r_action = "void (hardware cache coherence)";
      c.a_action = "skipped — produces no shared values (§3.1)";
      report.constructs.push_back(std::move(c));
      continue;
    }
    // Unknown directive: report it so typos do not pass silently.
    report.errors.push_back(std::to_string(lineno) +
                            ": unrecognized OpenMP directive '" + kind + "'");
  }

  report.final_global = control.resolve();
  return report;
}

std::string format_report(const SourceReport& report) {
  std::ostringstream out;
  out << "slipstream compile report\n";
  out << "=========================\n\n";
  // Column widths.
  std::size_t wc = 12, wr = 10, wa = 10;
  for (const auto& c : report.constructs) {
    wc = std::max(wc, c.construct.size());
    wr = std::max(wr, c.r_action.size());
    wa = std::max(wa, c.a_action.size());
  }
  for (const auto& c : report.constructs) {
    out << "line " << c.line << ":\t" << c.construct;
    if (!c.sync.empty()) out << "  [A/R sync: " << c.sync << "]";
    out << "\n";
    out << "\tR-stream: " << c.r_action << "\n";
    out << "\tA-stream: " << c.a_action << "\n";
  }
  out << "\nsummary: " << report.parallel_regions << " parallel region(s), "
      << report.slipstream_directives << " SLIPSTREAM directive(s), "
      << report.errors.size() << " diagnostic(s)\n";
  out << "global setting after serial part: "
      << to_string(report.final_global.type)
      << ", tokens=" << report.final_global.tokens << "\n";
  for (const auto& e : report.errors) {
    out << "warning: " << e << "\n";
  }
  return out.str();
}

}  // namespace ssomp::front
