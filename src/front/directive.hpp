// The slipstream directive front-end (paper §3.3).
//
// This is the compiler-visible surface of the extension. The Omni-based
// implementation maps the directive to a runtime-library call; here the
// same grammar is parsed from strings so applications (and tests) can use
// the exact syntax of the paper:
//
//     SLIPSTREAM([type] [, tokens])
//       type   := GLOBAL_SYNC | LOCAL_SYNC | RUNTIME_SYNC
//       tokens := non-negative integer (default 0)
//
// and for the environment variable OMP_SLIPSTREAM the same arguments, with
// the additional type NONE that disables slipstream execution.
//
// Placement semantics: a directive in the serial part sets the program-
// global configuration until overridden by a later serial directive; a
// directive attached to a parallel region takes precedence for that region
// only, and the global setting is restored on region exit.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "slip/config.hpp"

namespace ssomp::front {

/// A parsed SLIPSTREAM directive / OMP_SLIPSTREAM value. Absent fields
/// were not specified and inherit from the enclosing scope.
struct ParsedSlipstream {
  std::optional<slip::SyncType> type;
  std::optional<int> tokens;
};

template <typename T>
struct ParseResult {
  bool ok = false;
  T value{};
  std::string error;

  static ParseResult success(T v) { return {true, std::move(v), {}}; }
  static ParseResult failure(std::string e) { return {false, {}, std::move(e)}; }
};

/// Parses a directive string, e.g. "SLIPSTREAM(LOCAL_SYNC, 1)".
/// The leading sentinel ("!$OMP" / "#pragma omp") may be present or not.
[[nodiscard]] ParseResult<ParsedSlipstream> parse_slipstream_directive(
    std::string_view text);

/// Parses an OMP_SLIPSTREAM environment value, e.g. "GLOBAL_SYNC,2" or
/// "NONE". Same grammar as the directive arguments (no SLIPSTREAM keyword).
[[nodiscard]] ParseResult<ParsedSlipstream> parse_slipstream_env(
    std::string_view text);

/// OpenMP loop-schedule clause, e.g. "schedule(dynamic, 4)" or "static".
/// kAffinity is the affinity-scheduling extension the paper references
/// ([16]): per-thread partitions consumed locally first, with stealing
/// from the most-loaded partition when a thread runs dry — dynamic load
/// balance without wholesale cache-affinity loss.
enum class ScheduleKind : std::uint8_t {
  kStatic = 0,
  kDynamic,
  kGuided,
  kAffinity,
};

struct ScheduleClause {
  ScheduleKind kind = ScheduleKind::kStatic;
  long chunk = 0;  // 0 = implementation default
};

[[nodiscard]] ParseResult<ScheduleClause> parse_schedule_clause(
    std::string_view text);

[[nodiscard]] constexpr std::string_view to_string(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kStatic: return "static";
    case ScheduleKind::kDynamic: return "dynamic";
    case ScheduleKind::kGuided: return "guided";
    case ScheduleKind::kAffinity: return "affinity";
  }
  return "?";
}

/// Program-level directive state: global (serial-part) setting, the
/// environment variable, and per-region resolution.
class DirectiveControl {
 public:
  /// Installs the OMP_SLIPSTREAM environment value (empty = unset).
  /// Returns false (and keeps the previous value) on a parse error.
  bool set_env(std::string_view value);

  /// A SLIPSTREAM directive encountered in the serial part.
  void apply_serial(const ParsedSlipstream& d);

  /// Resolves the effective configuration for a parallel region carrying
  /// an optional region-level directive. RUNTIME_SYNC is replaced by the
  /// environment value (or the implementation default when unset).
  [[nodiscard]] slip::SlipstreamConfig resolve(
      const std::optional<ParsedSlipstream>& region = std::nullopt) const;

  [[nodiscard]] const slip::SlipstreamConfig& global() const {
    return global_;
  }

  /// Implementation default (paper §3.3: "we assumed it to be global
  /// synchronization", zero initial tokens).
  [[nodiscard]] static slip::SlipstreamConfig default_config() {
    return slip::SlipstreamConfig{.type = slip::SyncType::kGlobal,
                                  .tokens = 0};
  }

 private:
  slip::SlipstreamConfig global_ = default_config();
  std::optional<ParsedSlipstream> env_;
};

}  // namespace ssomp::front
