// Slipstream compile report (the "-qreport" of the slipstream-aware
// compiler).
//
// The paper's compiler change is small — map the SLIPSTREAM directive to a
// runtime call — but the *semantics* of what the A-stream will do at each
// OpenMP construct (§3.1) are non-obvious to a programmer. This analyzer
// scans OpenMP-annotated source text (C pragmas or Fortran sentinels) and
// reports, per construct, the R-stream and A-stream actions and the
// resolved A/R synchronization of each parallel region, applying the §3.3
// precedence rules (serial-part globals, region overrides, RUNTIME_SYNC
// via OMP_SLIPSTREAM).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "front/directive.hpp"

namespace ssomp::front {

struct ConstructReport {
  int line = 0;                 // 1-based source line
  std::string construct;        // "parallel", "for", "critical", ...
  std::string clauses;          // raw clause text
  std::string r_action;         // what the R-stream does
  std::string a_action;         // what the A-stream does (§3.1)
  std::string sync;             // resolved sync for parallel regions
};

struct SourceReport {
  std::vector<ConstructReport> constructs;
  std::vector<std::string> errors;      // "<line>: message"
  slip::SlipstreamConfig final_global;  // global setting after the scan
  int parallel_regions = 0;
  int slipstream_directives = 0;
};

/// Analyzes `source`. `omp_slipstream_env` is the OMP_SLIPSTREAM value
/// ("" = unset) used to resolve RUNTIME_SYNC.
[[nodiscard]] SourceReport analyze_source(std::string_view source,
                                          std::string_view omp_slipstream_env);

/// Renders the report as an aligned text table with a summary footer.
[[nodiscard]] std::string format_report(const SourceReport& report);

}  // namespace ssomp::front
