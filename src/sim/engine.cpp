#include "sim/engine.hpp"

#include <utility>

namespace ssomp::sim {

SimCpu& Engine::add_cpu(std::string name) {
  auto id = static_cast<CpuId>(cpus_.size());
  cpus_.push_back(std::make_unique<SimCpu>(*this, id, std::move(name)));
  return *cpus_.back();
}

Cycles Engine::run(Cycles until) {
  SSOMP_CHECK(Fiber::current() == nullptr);
  while (!queue_.empty()) {
    const QueuedEvent top = queue_.top();
    if (top.kind == EventKind::kCallback) {
      // Cancelled events (generation moved on) — and auxiliary
      // (non-timer) events with no ordinary event left to observe — are
      // dropped before they can advance time. Armed timers survive the
      // drain: when everything else is blocked, the timer expiry is the
      // next real thing that happens. Dropped events never touch
      // `events_processed_`; `ordinary_pending_` only ever counted
      // non-cancelable events, so cancellation cannot perturb it either.
      const EventArena::Slot& s = arena_.slot(top.slot);
      if (s.gen != top.gen) {
        queue_.pop();
        continue;
      }
      if (s.cancelable && !s.timer && ordinary_pending_ == 0) {
        arena_.release(top.slot);
        queue_.pop();
        continue;
      }
    }
    if (top.when > until) break;
    queue_.pop();
    SSOMP_CHECK(top.when >= now_);
    now_ = top.when;
    ++events_processed_;
    if (top.kind == EventKind::kResumeCpu) {
      --ordinary_pending_;
      cpus_[static_cast<std::size_t>(top.cpu)]->resume_from_scheduler();
    } else {
      EventArena::Slot& s = arena_.slot(top.slot);
      if (!s.cancelable) --ordinary_pending_;
      // Move the callback out and recycle the slot *before* invoking: the
      // callback may schedule (reusing this very slot), and a handle to
      // this event must read as fired from inside its own callback.
      InlineCallback fn = std::move(s.fn);
      arena_.release(top.slot);
      fn();
    }
  }
  return now_;
}

SimCpu::SimCpu(Engine& engine, CpuId id, std::string name)
    : engine_(engine), id_(id), name_(std::move(name)) {}

void SimCpu::start(std::function<void()> body, Cycles start_at) {
  SSOMP_CHECK(fiber_ == nullptr);
  fiber_ = std::make_unique<Fiber>(name_, std::move(body));
  engine_.schedule_resume(id_, start_at);
}

void SimCpu::resume_from_scheduler() {
  SSOMP_CHECK(fiber_ != nullptr);
  fiber_->resume();
  if (fiber_->finished() && finish_time_ == 0) {
    finish_time_ = engine_.now();
  }
}

void SimCpu::consume(Cycles n, TimeCategory cat) {
  SSOMP_CHECK(is_current());
  breakdown_.add(cat, n);
  account(cat, n);
  last_category_ = cat;
  pending_ += n;
  flush_time();
}

void SimCpu::flush_time() {
  SSOMP_DCHECK(is_current());
  if (pending_ == 0) return;
  const Cycles n = pending_;
  pending_ = 0;
  engine_.schedule_resume(id_, engine_.now() + n);
  fiber_->yield();
}

void SimCpu::block(TimeCategory cat) {
  SSOMP_CHECK(is_current());
  SSOMP_CHECK(!blocked_);
  flush_time();
  blocked_ = true;
  block_start_ = engine_.now();
  block_category_ = cat;
  fiber_->yield();
  // Woken: attribute the time spent blocked.
  SSOMP_CHECK(!blocked_);
  breakdown_.add(block_category_, engine_.now() - block_start_);
  account(block_category_, engine_.now() - block_start_);
}

void SimCpu::wake(Cycles delay) {
  SSOMP_CHECK(!is_current());
  SSOMP_CHECK(blocked_);
  blocked_ = false;
  engine_.schedule_resume(id_, engine_.now() + delay);
}

}  // namespace ssomp::sim
