#include "sim/engine.hpp"

#include <utility>

namespace ssomp::sim {

SimCpu& Engine::add_cpu(std::string name) {
  auto id = static_cast<CpuId>(cpus_.size());
  cpus_.push_back(std::make_unique<SimCpu>(*this, id, std::move(name)));
  return *cpus_.back();
}

void Engine::schedule_at(Cycles when, std::function<void()> fn) {
  SSOMP_CHECK(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
  ++ordinary_pending_;
}

Engine::CancelHandle Engine::schedule_cancelable_at(Cycles when,
                                                    std::function<void()> fn) {
  SSOMP_CHECK(when >= now_);
  auto handle = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), handle, false});
  return handle;
}

Engine::CancelHandle Engine::schedule_timer_at(Cycles when,
                                               std::function<void()> fn) {
  SSOMP_CHECK(when >= now_);
  auto handle = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), handle, true});
  return handle;
}

Cycles Engine::run(Cycles until) {
  SSOMP_CHECK(Fiber::current() == nullptr);
  while (!queue_.empty()) {
    // Cancelled events — and auxiliary (non-timer) events with no
    // ordinary event left to observe — are dropped before they can
    // advance time. Armed timers survive the drain: when everything else
    // is blocked, the timer expiry is the next real thing that happens.
    if (queue_.top().cancelled &&
        (*queue_.top().cancelled ||
         (!queue_.top().timer && ordinary_pending_ == 0))) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.cancelled == nullptr) --ordinary_pending_;
    SSOMP_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++events_processed_;
    ev.fn();
  }
  return now_;
}

SimCpu::SimCpu(Engine& engine, CpuId id, std::string name)
    : engine_(engine), id_(id), name_(std::move(name)) {}

void SimCpu::start(std::function<void()> body, Cycles start_at) {
  SSOMP_CHECK(fiber_ == nullptr);
  fiber_ = std::make_unique<Fiber>(name_, std::move(body));
  engine_.schedule_at(start_at, [this] { resume_from_scheduler(); });
}

void SimCpu::resume_from_scheduler() {
  SSOMP_CHECK(fiber_ != nullptr);
  fiber_->resume();
  if (fiber_->finished() && finish_time_ == 0) {
    finish_time_ = engine_.now();
  }
}

void SimCpu::consume(Cycles n, TimeCategory cat) {
  SSOMP_CHECK(is_current());
  breakdown_.add(cat, n);
  last_category_ = cat;
  pending_ += n;
  flush_time();
}

void SimCpu::charge(Cycles n, TimeCategory cat) {
  SSOMP_DCHECK(is_current());
  breakdown_.add(cat, n);
  last_category_ = cat;
  pending_ += n;
  if (pending_ >= kMaxDefer) flush_time();
}

void SimCpu::flush_time() {
  SSOMP_DCHECK(is_current());
  if (pending_ == 0) return;
  const Cycles n = pending_;
  pending_ = 0;
  engine_.schedule_at(engine_.now() + n, [this] { resume_from_scheduler(); });
  fiber_->yield();
}

Cycles SimCpu::issue_time() const { return engine_.now() + pending_; }

void SimCpu::block(TimeCategory cat) {
  SSOMP_CHECK(is_current());
  SSOMP_CHECK(!blocked_);
  flush_time();
  blocked_ = true;
  block_start_ = engine_.now();
  block_category_ = cat;
  fiber_->yield();
  // Woken: attribute the time spent blocked.
  SSOMP_CHECK(!blocked_);
  breakdown_.add(block_category_, engine_.now() - block_start_);
}

void SimCpu::wake(Cycles delay) {
  SSOMP_CHECK(!is_current());
  SSOMP_CHECK(blocked_);
  blocked_ = false;
  engine_.schedule_after(delay, [this] { resume_from_scheduler(); });
}

}  // namespace ssomp::sim
