// Basic simulation-wide scalar types and identifiers.
#pragma once

#include <cstdint>

namespace ssomp::sim {

/// Simulated time, in processor clock cycles.
using Cycles = std::uint64_t;

/// Simulated physical/virtual address (flat 64-bit space).
using Addr = std::uint64_t;

/// Global index of a simulated processor (0 .. 2*ncmp-1).
using CpuId = int;

/// Index of a CMP node (0 .. ncmp-1).
using NodeId = int;

inline constexpr CpuId kInvalidCpu = -1;
inline constexpr NodeId kInvalidNode = -1;

}  // namespace ssomp::sim
