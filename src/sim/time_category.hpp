// Execution-time accounting categories.
//
// These mirror the breakdown reported in the paper's Figures 2 and 4:
// busy cycles, memory stalls, lock and barrier synchronization, scheduling
// time, and job-wait time. The simulator additionally distinguishes the
// slipstream-specific waits (A-stream waiting for a token, R-stream waiting
// for its A-stream, I/O semaphore waits); report code folds those into the
// paper's categories when reproducing the figures.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace ssomp::sim {

enum class TimeCategory : std::uint8_t {
  kBusy = 0,     // executing application instructions
  kMemStall,     // stalled on the memory hierarchy
  kLock,         // acquiring/spinning on a lock (critical/atomic)
  kBarrier,      // waiting at a barrier
  kScheduling,   // acquiring a worksharing chunk (dynamic/guided)
  kJobWait,      // slave idling in the pool waiting for a parallel region
  kTokenWait,    // A-stream waiting for a slipstream token
  kStreamWait,   // R-stream waiting for its A-stream (divergence check/IO)
  kIdle,         // processor unused in this execution mode
  kCategoryCount
};

inline constexpr int kTimeCategoryCount =
    static_cast<int>(TimeCategory::kCategoryCount);

[[nodiscard]] constexpr std::string_view to_string(TimeCategory c) {
  switch (c) {
    case TimeCategory::kBusy: return "busy";
    case TimeCategory::kMemStall: return "mem_stall";
    case TimeCategory::kLock: return "lock";
    case TimeCategory::kBarrier: return "barrier";
    case TimeCategory::kScheduling: return "scheduling";
    case TimeCategory::kJobWait: return "job_wait";
    case TimeCategory::kTokenWait: return "token_wait";
    case TimeCategory::kStreamWait: return "stream_wait";
    case TimeCategory::kIdle: return "idle";
    case TimeCategory::kCategoryCount: break;
  }
  return "?";
}

/// Exclusive cycle-accounting buckets (the "top-down" decomposition every
/// simulated cycle lands in exactly once; see docs/OBSERVABILITY.md).
///
/// Where TimeCategory records *what the processor was doing* (the paper's
/// Figure 2/4 categories), CycleBucket records *why the cycle was spent*
/// from the slipstream protocol's point of view: protocol waits and
/// resilience episodes are split out, everything the application actually
/// executed folds into kCompute. The static TimeCategory -> CycleBucket
/// mapping below covers steady state; the runtime overrides it around
/// resilience episodes (recovery, restart fast-forward replay, degraded
/// regions) via SimCpu::set_bucket_override.
enum class CycleBucket : std::uint8_t {
  kCompute = 0,     // busy + mem stall + lock + scheduling work
  kTokenWait,       // A-stream blocked on a slipstream token
  kSyscallWait,     // waits on the R->A syscall/forwarding channel
  kBarrierStall,    // team-barrier arrival stalls
  kRecovery,        // recovery routine (ack, reconcile, bench unwind)
  kRestartResync,   // restart cost + fast-forward replay after a restart
  kDegraded,        // cycles executed by a CMP demoted to single-stream
  kIdle,            // parked in the pool / processor unused in this mode
  kBucketCount
};

inline constexpr int kCycleBucketCount =
    static_cast<int>(CycleBucket::kBucketCount);

[[nodiscard]] constexpr std::string_view to_string(CycleBucket b) {
  switch (b) {
    case CycleBucket::kCompute: return "compute";
    case CycleBucket::kTokenWait: return "token_wait";
    case CycleBucket::kSyscallWait: return "syscall_wait";
    case CycleBucket::kBarrierStall: return "barrier_stall";
    case CycleBucket::kRecovery: return "recovery";
    case CycleBucket::kRestartResync: return "restart_resync";
    case CycleBucket::kDegraded: return "degraded";
    case CycleBucket::kIdle: return "idle";
    case CycleBucket::kBucketCount: break;
  }
  return "?";
}

/// Steady-state bucket of a time category (no override in effect).
[[nodiscard]] constexpr CycleBucket bucket_of(TimeCategory c) {
  switch (c) {
    case TimeCategory::kBusy:
    case TimeCategory::kMemStall:
    case TimeCategory::kLock:
    case TimeCategory::kScheduling:
      return CycleBucket::kCompute;
    case TimeCategory::kTokenWait:
      return CycleBucket::kTokenWait;
    case TimeCategory::kStreamWait:
      return CycleBucket::kSyscallWait;
    case TimeCategory::kBarrier:
      return CycleBucket::kBarrierStall;
    case TimeCategory::kJobWait:
    case TimeCategory::kIdle:
    case TimeCategory::kCategoryCount:
      break;
  }
  return CycleBucket::kIdle;
}

/// Per-processor accumulated cycles by category.
class TimeBreakdown {
 public:
  void add(TimeCategory c, Cycles n) { cycles_[static_cast<int>(c)] += n; }

  [[nodiscard]] Cycles get(TimeCategory c) const {
    return cycles_[static_cast<int>(c)];
  }

  [[nodiscard]] Cycles total() const {
    Cycles t = 0;
    for (Cycles c : cycles_) t += c;
    return t;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    for (int i = 0; i < kTimeCategoryCount; ++i) {
      cycles_[i] += other.cycles_[i];
    }
    return *this;
  }

  void clear() { cycles_.fill(0); }

 private:
  std::array<Cycles, kTimeCategoryCount> cycles_{};
};

}  // namespace ssomp::sim
