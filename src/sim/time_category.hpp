// Execution-time accounting categories.
//
// These mirror the breakdown reported in the paper's Figures 2 and 4:
// busy cycles, memory stalls, lock and barrier synchronization, scheduling
// time, and job-wait time. The simulator additionally distinguishes the
// slipstream-specific waits (A-stream waiting for a token, R-stream waiting
// for its A-stream, I/O semaphore waits); report code folds those into the
// paper's categories when reproducing the figures.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace ssomp::sim {

enum class TimeCategory : std::uint8_t {
  kBusy = 0,     // executing application instructions
  kMemStall,     // stalled on the memory hierarchy
  kLock,         // acquiring/spinning on a lock (critical/atomic)
  kBarrier,      // waiting at a barrier
  kScheduling,   // acquiring a worksharing chunk (dynamic/guided)
  kJobWait,      // slave idling in the pool waiting for a parallel region
  kTokenWait,    // A-stream waiting for a slipstream token
  kStreamWait,   // R-stream waiting for its A-stream (divergence check/IO)
  kIdle,         // processor unused in this execution mode
  kCategoryCount
};

inline constexpr int kTimeCategoryCount =
    static_cast<int>(TimeCategory::kCategoryCount);

[[nodiscard]] constexpr std::string_view to_string(TimeCategory c) {
  switch (c) {
    case TimeCategory::kBusy: return "busy";
    case TimeCategory::kMemStall: return "mem_stall";
    case TimeCategory::kLock: return "lock";
    case TimeCategory::kBarrier: return "barrier";
    case TimeCategory::kScheduling: return "scheduling";
    case TimeCategory::kJobWait: return "job_wait";
    case TimeCategory::kTokenWait: return "token_wait";
    case TimeCategory::kStreamWait: return "stream_wait";
    case TimeCategory::kIdle: return "idle";
    case TimeCategory::kCategoryCount: break;
  }
  return "?";
}

/// Per-processor accumulated cycles by category.
class TimeBreakdown {
 public:
  void add(TimeCategory c, Cycles n) { cycles_[static_cast<int>(c)] += n; }

  [[nodiscard]] Cycles get(TimeCategory c) const {
    return cycles_[static_cast<int>(c)];
  }

  [[nodiscard]] Cycles total() const {
    Cycles t = 0;
    for (Cycles c : cycles_) t += c;
    return t;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    for (int i = 0; i < kTimeCategoryCount; ++i) {
      cycles_[i] += other.cycles_[i];
    }
    return *this;
  }

  void clear() { cycles_.fill(0); }

 private:
  std::array<Cycles, kTimeCategoryCount> cycles_{};
};

}  // namespace ssomp::sim
