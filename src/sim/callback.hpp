// Small-buffer-optimized move-only callable storage for engine events.
//
// Every event the engine schedules used to be a heap-allocated
// std::function closure. The closures the simulator actually schedules
// are tiny — a captured `this` plus a few words; the largest is the
// watchdog's report capture at ~56 bytes — so InlineCallback stores them
// in a fixed in-slot buffer and the steady-state scheduling paths perform
// zero heap allocations. Oversized callables still work through a single
// heap allocation as a correctness fallback.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/check.hpp"

namespace ssomp::sim {

class InlineCallback {
 public:
  /// Inline capacity. Covers every closure the runtime schedules; bump it
  /// if a new hot-path closure grows past it (the arena test asserts the
  /// runtime's closures stay inline).
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() = default;
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  InlineCallback(InlineCallback&& other) noexcept { take(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  ~InlineCallback() { reset(); }

  /// Stores `fn`, replacing any current callable.
  template <typename F>
  void emplace(F&& fn) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (stored_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) (Fn*)(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  /// True when `F` would be stored in the inline buffer (no allocation).
  template <typename F>
  [[nodiscard]] static constexpr bool stored_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  [[nodiscard]] bool empty() const { return ops_ == nullptr; }

  /// Destroys the stored callable, if any.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Invokes the stored callable (must be non-empty).
  void operator()() {
    SSOMP_DCHECK(ops_ != nullptr);
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs dst's storage from src's and ends src's ownership
    /// (inline: move + destroy source; heap: pointer transfer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* dst, void* src) {
        Fn& from = *std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(from));
        from.~Fn();
      },
      [](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* dst, void* src) {
        ::new (dst) (Fn*)(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

  void take(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ssomp::sim
