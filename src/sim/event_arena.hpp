// Pooled storage for scheduled callback events.
//
// The engine's priority queue holds small POD references; the callback
// payloads live here, in recycled slots. Chunked allocation keeps slot
// addresses stable (a growing arena never moves live callbacks), a LIFO
// free list makes steady-state schedule/run cycles allocation-free, and a
// per-slot generation counter lets cancel handles outlive their event
// safely: a handle whose generation no longer matches the slot refers to
// an event that already fired, was cancelled, or whose slot was recycled,
// and cancelling it is a no-op.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.hpp"
#include "sim/check.hpp"

namespace ssomp::sim {

class EventArena {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Slot {
    InlineCallback fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNone;
    bool cancelable = false;
    bool timer = false;
  };

  /// Takes a free slot (growing by one chunk when the pool is empty) and
  /// stores `fn` in it. Returns the slot index; read the slot's `gen` to
  /// build a cancel handle.
  template <typename F>
  std::uint32_t acquire(F&& fn, bool cancelable, bool timer) {
    if (free_head_ == kNone) grow();
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    --free_count_;
    s.fn.emplace(std::forward<F>(fn));
    s.cancelable = cancelable;
    s.timer = timer;
    return idx;
  }

  /// Destroys the slot's callback and recycles the slot. Bumping the
  /// generation invalidates every outstanding handle (and stale queue
  /// reference) to the old occupant.
  void release(std::uint32_t idx) {
    Slot& s = slot(idx);
    s.fn.reset();
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    SSOMP_DCHECK(idx < capacity());
    return (*chunks_[idx >> kChunkShift])[idx & (kChunkSlots - 1)];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    SSOMP_DCHECK(idx < capacity());
    return (*chunks_[idx >> kChunkShift])[idx & (kChunkSlots - 1)];
  }

  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunkSlots;
  }
  [[nodiscard]] std::size_t free_slots() const { return free_count_; }
  [[nodiscard]] std::size_t live_slots() const {
    return capacity() - free_count_;
  }

 private:
  static constexpr std::uint32_t kChunkShift = 6;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  using Chunk = std::array<Slot, kChunkSlots>;

  void grow() {
    const auto base = static_cast<std::uint32_t>(capacity());
    chunks_.push_back(std::make_unique<Chunk>());
    // Thread the new chunk onto the free list low-index-first.
    for (std::uint32_t i = kChunkSlots; i-- > 0;) {
      Slot& s = (*chunks_.back())[i];
      s.next_free = free_head_;
      free_head_ = base + i;
    }
    free_count_ += kChunkSlots;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::uint32_t free_head_ = kNone;
  std::uint32_t free_count_ = 0;
};

}  // namespace ssomp::sim
