#include "sim/fiber.hpp"

#include <exception>

#include "sim/check.hpp"

#ifdef SSOMP_FIBER_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

namespace ssomp::sim {

namespace {
// The fiber being switched into / currently running, used by the
// trampoline and by Fiber::current(). Each simulation is single-threaded,
// but the sweep driver (core/driver.hpp) runs many independent
// simulations on concurrent host threads, so the slot must be per-thread:
// a fiber is always resumed and yielded on the thread that created it.
thread_local Fiber* g_current = nullptr;
}  // namespace

#ifndef SSOMP_FIBER_UCONTEXT

// Fast userspace context switch (System V AMD64). ucontext's swapcontext
// costs ~300 ns because it saves/restores the signal mask with a syscall;
// the simulator performs millions of switches per run, so we save only the
// callee-saved integer registers and the stack pointer (~20 ns). XMM
// registers are caller-saved in this ABI and need no handling.
extern "C" void ssomp_ctx_switch(void** save_sp, void* restore_sp);
asm(R"(
.text
.globl ssomp_ctx_switch
.type ssomp_ctx_switch, @function
ssomp_ctx_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
.size ssomp_ctx_switch, .-ssomp_ctx_switch
)");

Fiber::Fiber(std::string name, std::function<void()> body)
    : name_(std::move(name)),
      body_(std::move(body)),
      // for_overwrite: zero-filling the whole stack would touch (and fault
      // in) every page of every fiber up front; the switch machinery only
      // needs the initial frame written below.
      stack_(std::make_unique_for_overwrite<char[]>(kStackSize)) {
  SSOMP_CHECK(body_ != nullptr);
  // Lay out the initial stack frame so the first switch "returns" into the
  // trampoline: six dummy callee-saved slots below the return address.
  // ABI alignment: at trampoline entry rsp must be ≡ 8 (mod 16), which
  // holds when the dummy-slot base is 16-byte aligned.
  auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + kStackSize;
  top &= ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<void**>(top - 64);
  for (int i = 0; i < 6; ++i) frame[i] = nullptr;  // dummy callee-saved
  frame[6] = reinterpret_cast<void*>(&Fiber::trampoline);
  sp_ = frame;
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = g_current;
  SSOMP_CHECK(self != nullptr);
#ifdef SSOMP_FIBER_ASAN
  // First activation: no fake stack of our own to restore yet; record
  // where we came from so yield()/the final switch can announce it.
  __sanitizer_finish_switch_fiber(nullptr, &self->parent_stack_bottom_,
                                  &self->parent_stack_size_);
#endif
  try {
    self->body_();
  } catch (...) {
    // Exceptions must be handled inside the fiber body; letting one cross
    // the context-switch boundary would corrupt unwinding state.
    std::terminate();
  }
  self->finished_ = true;
  // Permanently return to the scheduler.
#ifdef SSOMP_FIBER_ASAN
  // Null save slot: the fiber is done, its fake stack can be destroyed.
  __sanitizer_start_switch_fiber(nullptr, self->parent_stack_bottom_,
                                 self->parent_stack_size_);
#endif
  ssomp_ctx_switch(&self->sp_, self->parent_sp_);
  SSOMP_CHECK(false);  // a finished fiber must never be resumed
}

void Fiber::resume() {
  SSOMP_CHECK(!finished_);
  SSOMP_CHECK(g_current == nullptr);  // no nested fibers
  g_current = this;
#ifdef SSOMP_FIBER_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_.get(), kStackSize);
#endif
  ssomp_ctx_switch(&parent_sp_, sp_);
#ifdef SSOMP_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
  g_current = nullptr;
}

void Fiber::yield() {
  SSOMP_CHECK(g_current == this);
#ifdef SSOMP_FIBER_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, parent_stack_bottom_,
                                 parent_stack_size_);
#endif
  ssomp_ctx_switch(&sp_, parent_sp_);
#ifdef SSOMP_FIBER_ASAN
  __sanitizer_finish_switch_fiber(fake, &parent_stack_bottom_,
                                  &parent_stack_size_);
#endif
}

#else  // portable fallback

Fiber::Fiber(std::string name, std::function<void()> body)
    : name_(std::move(name)),
      body_(std::move(body)),
      stack_(std::make_unique_for_overwrite<char[]>(kStackSize)) {
  SSOMP_CHECK(body_ != nullptr);
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = g_current;
  SSOMP_CHECK(self != nullptr);
  try {
    self->body_();
  } catch (...) {
    std::terminate();
  }
  self->finished_ = true;
  // uc_link returns control to the scheduler context.
}

void Fiber::resume() {
  SSOMP_CHECK(!finished_);
  SSOMP_CHECK(g_current == nullptr);
  if (!started_) {
    SSOMP_CHECK(getcontext(&context_) == 0);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = kStackSize;
    context_.uc_link = &scheduler_context_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
    started_ = true;
  }
  g_current = this;
  SSOMP_CHECK(swapcontext(&scheduler_context_, &context_) == 0);
  g_current = nullptr;
}

void Fiber::yield() {
  SSOMP_CHECK(g_current == this);
  SSOMP_CHECK(swapcontext(&context_, &scheduler_context_) == 0);
}

#endif

Fiber* Fiber::current() { return g_current; }

}  // namespace ssomp::sim
