// Stackful cooperative fibers.
//
// Each simulated processor context executes ordinary C++ code on a fiber.
// When the code performs a simulated operation that consumes time (memory
// access, compute, spin probe), the fiber switches back to the engine's
// scheduler, which advances simulated time and resumes whichever fiber
// wakes next. This gives execution-driven simulation with natural-looking
// workload code.
//
// On x86-64 Linux a hand-rolled register switch is used (~20 ns); other
// platforms fall back to ucontext.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#if !(defined(__x86_64__) && defined(__linux__))
#include <ucontext.h>
#define SSOMP_FIBER_UCONTEXT 1
#endif

// AddressSanitizer tracks each stack with a shadow; switching to a stack
// it does not know about breaks its unwinding and no-return handling, so
// every context switch must be bracketed with the sanitizer fiber hooks.
#if defined(__SANITIZE_ADDRESS__)
#define SSOMP_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SSOMP_FIBER_ASAN 1
#endif
#endif

namespace ssomp::sim {

class Fiber {
 public:
  /// Creates a fiber that will run `body` when first resumed.
  Fiber(std::string name, std::function<void()> body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control from the scheduler into this fiber. Returns when
  /// the fiber yields or finishes.
  void resume();

  /// Transfers control from inside this fiber back to the scheduler.
  void yield();

  /// True once `body` has returned.
  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The fiber currently executing, or nullptr if control is in the
  /// scheduler. The simulator is single-threaded by design.
  static Fiber* current();

 private:
  static void trampoline();

  std::string name_;
  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  bool finished_ = false;

#ifdef SSOMP_FIBER_UCONTEXT
  ucontext_t context_{};
  ucontext_t scheduler_context_{};
  bool started_ = false;
#else
  void* sp_ = nullptr;         // this fiber's saved stack pointer
  void* parent_sp_ = nullptr;  // the scheduler's saved stack pointer
#endif

#ifdef SSOMP_FIBER_ASAN
  // Bounds of the stack we switched in from, reported by
  // __sanitizer_finish_switch_fiber; needed to announce the switch back.
  const void* parent_stack_bottom_ = nullptr;
  std::size_t parent_stack_size_ = 0;
#endif

#ifdef SSOMP_FIBER_ASAN
  // Redzones between stack frames roughly quadruple stack usage.
  static constexpr std::size_t kStackSize = 1024 * 1024;
#else
  static constexpr std::size_t kStackSize = 256 * 1024;
#endif
};

}  // namespace ssomp::sim
