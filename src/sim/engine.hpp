// Discrete-event simulation engine.
//
// The engine owns simulated time and a priority queue of pending events.
// Two kinds of event exist: resuming a blocked processor context, and
// running a plain callback (used for fire-and-forget completions such as
// A-stream prefetch fills). Ties are broken by insertion order, making the
// whole simulation deterministic.
//
// The hot path is allocation-free in steady state: the dominant event —
// "resume CPU k" — is a typed entry encoded entirely in the queue (no
// closure, no slot), and callback events live in a pooled EventArena whose
// slots are recycled through a free list with the closure stored inline
// (sim/callback.hpp). Cancellation uses per-slot generation counters, so a
// cancel handle is two integers, not a shared_ptr.
#pragma once

#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/event_arena.hpp"
#include "sim/fiber.hpp"
#include "sim/time_category.hpp"
#include "sim/types.hpp"

namespace ssomp::sim {

class SimCpu;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Cycles now() const { return now_; }

  /// Creates a processor context. CPUs are identified by creation order.
  SimCpu& add_cpu(std::string name);

  [[nodiscard]] int cpu_count() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] SimCpu& cpu(CpuId id) {
    SSOMP_CHECK(id >= 0 && id < cpu_count());
    return *cpus_[static_cast<std::size_t>(id)];
  }

  /// Handle for a cancelable event. A value type: two integers naming the
  /// arena slot and the generation it was issued for. Cancelling is safe
  /// at any time — if the event already fired, was cancelled, or its slot
  /// was recycled, the generation no longer matches and cancel() is a
  /// no-op. A cancelled event is discarded without running and —
  /// critically — without advancing `now()`, so a pending periodic tick
  /// cannot inflate the measured run length after the workload finishes.
  class CancelHandle {
   public:
    CancelHandle() = default;

    /// True while the underlying event is still pending.
    [[nodiscard]] bool armed() const {
      return engine_ != nullptr && engine_->event_armed(slot_, gen_);
    }

    /// Cancels the event if it is still pending; otherwise a no-op.
    /// Clears the handle either way.
    void cancel() {
      if (engine_ != nullptr) engine_->cancel_event(slot_, gen_);
      engine_ = nullptr;
    }

   private:
    friend class Engine;
    CancelHandle(Engine* engine, std::uint32_t slot, std::uint32_t gen)
        : engine_(engine), slot_(slot), gen_(gen) {}

    Engine* engine_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  /// Schedules `fn` to run at absolute time `when` (>= now).
  template <typename F>
  void schedule_at(Cycles when, F&& fn) {
    push_callback(when, std::forward<F>(fn), /*cancelable=*/false,
                  /*timer=*/false);
    ++ordinary_pending_;
  }

  /// Schedules `fn` to run `delay` cycles from now.
  template <typename F>
  void schedule_after(Cycles delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Like schedule_at(), but returns a handle that cancels the event.
  /// Cancelable events are *auxiliary*: they observe the simulation but
  /// must not extend it. When only cancelable events remain in the queue
  /// they are discarded unrun, again without advancing `now()` — a
  /// periodic sampler therefore never pushes simulated time past the last
  /// ordinary event.
  template <typename F>
  CancelHandle schedule_cancelable_at(Cycles when, F&& fn) {
    const std::uint32_t slot = push_callback(when, std::forward<F>(fn),
                                             /*cancelable=*/true,
                                             /*timer=*/false);
    return CancelHandle{this, slot, arena_.slot(slot).gen};
  }

  template <typename F>
  CancelHandle schedule_cancelable_after(Cycles delay, F&& fn) {
    return schedule_cancelable_at(now_ + delay, std::forward<F>(fn));
  }

  /// A *timer* event: cancelable like the auxiliary events above (a
  /// cancelled timer is discarded without advancing `now()`), but NOT
  /// discarded when only cancelable events remain. A watchdog armed on a
  /// wait must still fire when the whole simulation wedges — at that
  /// point the timer expiry IS the next thing that happens, exactly as a
  /// hardware timer interrupt would be. Disarm with `handle.cancel()`.
  template <typename F>
  CancelHandle schedule_timer_at(Cycles when, F&& fn) {
    const std::uint32_t slot = push_callback(when, std::forward<F>(fn),
                                             /*cancelable=*/true,
                                             /*timer=*/true);
    return CancelHandle{this, slot, arena_.slot(slot).gen};
  }

  template <typename F>
  CancelHandle schedule_timer_after(Cycles delay, F&& fn) {
    return schedule_timer_at(now_ + delay, std::forward<F>(fn));
  }

  /// Runs events until the queue drains or `until` is reached.
  /// Returns the final simulated time.
  Cycles run(Cycles until = ~Cycles{0});

  /// Number of events processed so far (for micro-benchmarks and tests).
  /// Cancelled and drain-dropped events never count.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Event-pool introspection (arena tests and the perf harness).
  [[nodiscard]] std::size_t event_pool_capacity() const {
    return arena_.capacity();
  }
  [[nodiscard]] std::size_t event_pool_live() const {
    return arena_.live_slots();
  }

 private:
  friend class SimCpu;

  enum class EventKind : std::uint8_t { kResumeCpu, kCallback };

  /// A queued event reference. Resume events are fully encoded here; for
  /// callback events the payload lives in the arena and `gen` detects
  /// cancellation (a slot whose generation moved on was cancelled, and
  /// the queue entry is stale).
  struct QueuedEvent {
    Cycles when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    EventKind kind;
    CpuId cpu;
  };
  struct EventOrder {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  template <typename F>
  std::uint32_t push_callback(Cycles when, F&& fn, bool cancelable,
                              bool timer) {
    SSOMP_CHECK(when >= now_);
    const std::uint32_t slot =
        arena_.acquire(std::forward<F>(fn), cancelable, timer);
    queue_.push(QueuedEvent{when, next_seq_++, slot, arena_.slot(slot).gen,
                            EventKind::kCallback, kInvalidCpu});
    return slot;
  }

  /// The typed fast path for the dominant event: make CPU `cpu` runnable
  /// at absolute time `when`. No closure, no arena slot — the queue entry
  /// is the whole event.
  void schedule_resume(CpuId cpu, Cycles when) {
    SSOMP_CHECK(when >= now_);
    queue_.push(
        QueuedEvent{when, next_seq_++, 0, 0, EventKind::kResumeCpu, cpu});
    ++ordinary_pending_;
  }

  [[nodiscard]] bool event_armed(std::uint32_t slot, std::uint32_t gen) const {
    return slot < arena_.capacity() && arena_.slot(slot).gen == gen;
  }

  /// Cancels a pending callback event. The arena slot is recycled
  /// immediately (its generation moves on); the stale queue entry is
  /// dropped when it reaches the top. Ordinary-event accounting is
  /// untouched: only cancelable events ever produce handles, and they
  /// never counted toward `ordinary_pending_`.
  void cancel_event(std::uint32_t slot, std::uint32_t gen) {
    if (!event_armed(slot, gen)) return;
    arena_.release(slot);
  }

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t ordinary_pending_ = 0;  // non-cancelable events in queue_
  EventArena arena_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, EventOrder>
      queue_;
  std::vector<std::unique_ptr<SimCpu>> cpus_;
};

/// A simulated in-order processor context.
///
/// Workload and runtime code running on the CPU's fiber consumes simulated
/// time through `consume()` and can block/unblock through `block()`/`wake()`.
/// All consumed time is attributed to a TimeCategory for the Figure 2/4
/// breakdowns.
class SimCpu {
 public:
  SimCpu(Engine& engine, CpuId id, std::string name);

  [[nodiscard]] CpuId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// Assigns the code this processor runs and makes it runnable at `start`.
  /// Must be called at most once before Engine::run().
  void start(std::function<void()> body, Cycles start_at = 0);

  /// --- Calls below are only legal from within this CPU's fiber. ---

  /// Advances simulated time by `n` cycles, attributed to `cat`, and
  /// synchronizes with the engine immediately (exact interleaving). Use
  /// for operations whose ordering other processors can observe.
  void consume(Cycles n, TimeCategory cat);

  /// Accrues `n` cycles lazily: the charge is recorded now, but the fiber
  /// only yields to the engine once the accrued debt crosses a threshold.
  /// This keeps host event counts proportional to cache *misses* rather
  /// than accesses. Pair with `issue_time()` so the memory system sees
  /// this CPU's true local time. Inline: this runs on every simulated
  /// memory access.
  void charge(Cycles n, TimeCategory cat) {
    SSOMP_DCHECK(is_current());
    breakdown_.add(cat, n);
    account(cat, n);
    last_category_ = cat;
    pending_ += n;
    if (pending_ >= kMaxDefer) flush_time();
  }

  /// Yields until all lazily-charged time has elapsed.
  void flush_time();

  /// Unelapsed lazily-charged cycles.
  [[nodiscard]] Cycles pending() const { return pending_; }

  /// This CPU's local time: engine time plus unelapsed charges. Memory-
  /// system requests must be stamped with this.
  [[nodiscard]] Cycles issue_time() const { return engine_.now() + pending_; }

  /// Blocks until another agent calls `wake()` (flushes charges first).
  /// Waiting time is attributed to `cat`.
  void block(TimeCategory cat);

  /// --- Calls below are made by other agents (not this CPU's fiber). ---

  /// Makes a blocked CPU runnable after `delay` cycles.
  void wake(Cycles delay = 0);

  [[nodiscard]] bool finished() const { return fiber_ && fiber_->finished(); }
  [[nodiscard]] bool blocked() const { return blocked_; }

  /// True when called from code running on this CPU's fiber.
  [[nodiscard]] bool is_current() const {
    return Fiber::current() == fiber_.get();
  }

  [[nodiscard]] const TimeBreakdown& breakdown() const { return breakdown_; }
  TimeBreakdown& breakdown() { return breakdown_; }

  /// Category of the CPU's most recent activity (what a sampling profiler
  /// would observe right now). Blocked CPUs report their wait category.
  [[nodiscard]] TimeCategory current_category() const {
    return blocked_ ? block_category_ : last_category_;
  }

  /// Cycle at which this CPU finished its body (for per-CPU utilization).
  [[nodiscard]] Cycles finish_time() const { return finish_time_; }

  /// --- Cycle accounting (trace::CycleAccount integration). ---
  ///
  /// The runtime points each CPU at a per-region bucket row (an array of
  /// kCycleBucketCount counters owned by trace::CycleAccount; the pointer
  /// must stay valid until replaced or cleared). Every cycle that enters
  /// `breakdown_` is mirrored into exactly one row bucket, chosen by the
  /// static bucket_of() mapping unless an override is in effect — the
  /// runtime sets overrides around resilience episodes (recovery, restart
  /// replay, degraded regions) that the category alone cannot identify.
  /// Time spent blocked is attributed at wake, on this CPU's fiber, using
  /// the row/override current at that moment.
  void set_account_row(Cycles* row) { account_row_ = row; }
  void set_bucket_override(CycleBucket b) {
    bucket_override_ = static_cast<std::int8_t>(b);
  }
  void clear_bucket_override() { bucket_override_ = -1; }
  [[nodiscard]] bool has_bucket_override() const {
    return bucket_override_ >= 0;
  }

 private:
  friend class Engine;

  void resume_from_scheduler();

  void account(TimeCategory cat, Cycles n) {
    if (account_row_ != nullptr) {
      const int b = bucket_override_ >= 0 ? bucket_override_
                                          : static_cast<int>(bucket_of(cat));
      account_row_[b] += n;
    }
  }

  Engine& engine_;
  CpuId id_;
  std::string name_;
  std::unique_ptr<Fiber> fiber_;
  TimeBreakdown breakdown_;
  bool blocked_ = false;
  Cycles block_start_ = 0;
  TimeCategory block_category_ = TimeCategory::kIdle;
  Cycles finish_time_ = 0;
  Cycles pending_ = 0;
  TimeCategory last_category_ = TimeCategory::kIdle;
  Cycles* account_row_ = nullptr;
  std::int8_t bucket_override_ = -1;

  /// Deferral quantum: lazily-charged time is flushed once it exceeds
  /// this. Orderings at synchronization points remain exact because every
  /// synchronizing operation flushes first; only independent accesses
  /// within a quantum may interleave out of true timestamp order.
  static constexpr Cycles kMaxDefer = 500;
};

}  // namespace ssomp::sim
