// Discrete-event simulation engine.
//
// The engine owns simulated time and a priority queue of pending events.
// Two kinds of event exist: resuming a blocked processor context, and
// running a plain callback (used for fire-and-forget completions such as
// A-stream prefetch fills). Ties are broken by insertion order, making the
// whole simulation deterministic.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/check.hpp"
#include "sim/fiber.hpp"
#include "sim/time_category.hpp"
#include "sim/types.hpp"

namespace ssomp::sim {

class SimCpu;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Cycles now() const { return now_; }

  /// Creates a processor context. CPUs are identified by creation order.
  SimCpu& add_cpu(std::string name);

  [[nodiscard]] int cpu_count() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] SimCpu& cpu(CpuId id) {
    SSOMP_CHECK(id >= 0 && id < cpu_count());
    return *cpus_[static_cast<std::size_t>(id)];
  }

  /// Schedules `fn` to run at absolute time `when` (>= now).
  void schedule_at(Cycles when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` cycles from now.
  void schedule_after(Cycles delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Handle for a cancelable event: set `*handle = true` to cancel.
  /// A cancelled event is discarded without running and — critically —
  /// without advancing `now()`, so a pending periodic tick cannot inflate
  /// the measured run length after the workload finishes.
  using CancelHandle = std::shared_ptr<bool>;

  /// Like schedule_at(), but returns a handle that cancels the event.
  /// Cancelable events are *auxiliary*: they observe the simulation but
  /// must not extend it. When only cancelable events remain in the queue
  /// they are discarded unrun, again without advancing `now()` — a
  /// periodic sampler therefore never pushes simulated time past the last
  /// ordinary event.
  CancelHandle schedule_cancelable_at(Cycles when, std::function<void()> fn);

  /// Like schedule_after(), but returns a handle that cancels the event.
  CancelHandle schedule_cancelable_after(Cycles delay,
                                         std::function<void()> fn) {
    return schedule_cancelable_at(now_ + delay, std::move(fn));
  }

  /// A *timer* event: cancelable like the auxiliary events above (a
  /// cancelled timer is discarded without advancing `now()`), but NOT
  /// discarded when only cancelable events remain. A watchdog armed on a
  /// wait must still fire when the whole simulation wedges — at that
  /// point the timer expiry IS the next thing that happens, exactly as a
  /// hardware timer interrupt would be. Disarm by setting `*handle`.
  CancelHandle schedule_timer_at(Cycles when, std::function<void()> fn);

  CancelHandle schedule_timer_after(Cycles delay, std::function<void()> fn) {
    return schedule_timer_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `until` is reached.
  /// Returns the final simulated time.
  Cycles run(Cycles until = ~Cycles{0});

  /// Number of events processed so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

 private:
  friend class SimCpu;

  struct Event {
    Cycles when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;  // null for ordinary events
    bool timer = false;  // survives ordinary-queue drain (watchdogs)
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t ordinary_pending_ = 0;  // non-cancelable events in queue_
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<SimCpu>> cpus_;
};

/// A simulated in-order processor context.
///
/// Workload and runtime code running on the CPU's fiber consumes simulated
/// time through `consume()` and can block/unblock through `block()`/`wake()`.
/// All consumed time is attributed to a TimeCategory for the Figure 2/4
/// breakdowns.
class SimCpu {
 public:
  SimCpu(Engine& engine, CpuId id, std::string name);

  [[nodiscard]] CpuId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// Assigns the code this processor runs and makes it runnable at `start`.
  /// Must be called at most once before Engine::run().
  void start(std::function<void()> body, Cycles start_at = 0);

  /// --- Calls below are only legal from within this CPU's fiber. ---

  /// Advances simulated time by `n` cycles, attributed to `cat`, and
  /// synchronizes with the engine immediately (exact interleaving). Use
  /// for operations whose ordering other processors can observe.
  void consume(Cycles n, TimeCategory cat);

  /// Accrues `n` cycles lazily: the charge is recorded now, but the fiber
  /// only yields to the engine once the accrued debt crosses a threshold.
  /// This keeps host event counts proportional to cache *misses* rather
  /// than accesses. Pair with `issue_time()` so the memory system sees
  /// this CPU's true local time.
  void charge(Cycles n, TimeCategory cat);

  /// Yields until all lazily-charged time has elapsed.
  void flush_time();

  /// Unelapsed lazily-charged cycles.
  [[nodiscard]] Cycles pending() const { return pending_; }

  /// This CPU's local time: engine time plus unelapsed charges. Memory-
  /// system requests must be stamped with this.
  [[nodiscard]] Cycles issue_time() const;

  /// Blocks until another agent calls `wake()` (flushes charges first).
  /// Waiting time is attributed to `cat`.
  void block(TimeCategory cat);

  /// --- Calls below are made by other agents (not this CPU's fiber). ---

  /// Makes a blocked CPU runnable after `delay` cycles.
  void wake(Cycles delay = 0);

  [[nodiscard]] bool finished() const { return fiber_ && fiber_->finished(); }
  [[nodiscard]] bool blocked() const { return blocked_; }

  /// True when called from code running on this CPU's fiber.
  [[nodiscard]] bool is_current() const {
    return Fiber::current() == fiber_.get();
  }

  [[nodiscard]] const TimeBreakdown& breakdown() const { return breakdown_; }
  TimeBreakdown& breakdown() { return breakdown_; }

  /// Category of the CPU's most recent activity (what a sampling profiler
  /// would observe right now). Blocked CPUs report their wait category.
  [[nodiscard]] TimeCategory current_category() const {
    return blocked_ ? block_category_ : last_category_;
  }

  /// Cycle at which this CPU finished its body (for per-CPU utilization).
  [[nodiscard]] Cycles finish_time() const { return finish_time_; }

 private:
  void resume_from_scheduler();

  Engine& engine_;
  CpuId id_;
  std::string name_;
  std::unique_ptr<Fiber> fiber_;
  TimeBreakdown breakdown_;
  bool blocked_ = false;
  Cycles block_start_ = 0;
  TimeCategory block_category_ = TimeCategory::kIdle;
  Cycles finish_time_ = 0;
  Cycles pending_ = 0;
  TimeCategory last_category_ = TimeCategory::kIdle;

  /// Deferral quantum: lazily-charged time is flushed once it exceeds
  /// this. Orderings at synchronization points remain exact because every
  /// synchronizing operation flushes first; only independent accesses
  /// within a quantum may interleave out of true timestamp order.
  static constexpr Cycles kMaxDefer = 500;
};

}  // namespace ssomp::sim
