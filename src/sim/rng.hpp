// Deterministic pseudo-random number generation for workloads.
//
// The simulator itself is fully deterministic; randomness appears only in
// workload construction (e.g. the CG sparse-matrix pattern) and in tests.
// xoshiro256** is used for speed and reproducibility across platforms.
#pragma once

#include <cstdint>

namespace ssomp::sim {

/// SplitMix64 — used to seed the main generator from a single word.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is fine here: workload
    // construction does not need perfect uniformity, determinism does.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ssomp::sim
