// Internal invariant checking.
//
// SSOMP_CHECK is always on (simulator correctness beats the tiny cost of a
// predictable branch); SSOMP_DCHECK compiles out in release-with-NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ssomp::sim::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "ssomp check failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace ssomp::sim::detail

#define SSOMP_CHECK(expr)                                            \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::ssomp::sim::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define SSOMP_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define SSOMP_DCHECK(expr) SSOMP_CHECK(expr)
#endif
