#include "trace/cycle_account.hpp"

#include <sstream>

#include "sim/check.hpp"

namespace ssomp::trace {

void CycleAccount::reset(int cpus) {
  SSOMP_CHECK(cpus >= 0);
  cpus_ = cpus;
  slots_.clear();
  slots_.emplace_back(static_cast<std::size_t>(cpus_));
}

sim::Cycles* CycleAccount::row_data(int cpu, int slot) {
  SSOMP_CHECK(cpu >= 0 && cpu < cpus_);
  SSOMP_CHECK(slot >= 0);
  while (slots() <= slot) {
    slots_.emplace_back(static_cast<std::size_t>(cpus_));
  }
  return slots_[static_cast<std::size_t>(slot)]
              [static_cast<std::size_t>(cpu)]
                  .cycles.data();
}

const CycleAccount::Row& CycleAccount::row(int cpu, int slot) const {
  SSOMP_CHECK(cpu >= 0 && cpu < cpus_);
  SSOMP_CHECK(slot >= 0 && slot < slots());
  return slots_[static_cast<std::size_t>(slot)]
               [static_cast<std::size_t>(cpu)];
}

CycleAccount::Row CycleAccount::cpu_total(int cpu) const {
  SSOMP_CHECK(cpu >= 0 && cpu < cpus_);
  Row out;
  for (const auto& rows : slots_) {
    const Row& r = rows[static_cast<std::size_t>(cpu)];
    for (int b = 0; b < sim::kCycleBucketCount; ++b) {
      out.cycles[b] += r.cycles[b];
    }
  }
  return out;
}

sim::Cycles CycleAccount::bucket_total(sim::CycleBucket b) const {
  sim::Cycles t = 0;
  for (const auto& rows : slots_) {
    for (const Row& r : rows) t += r.get(b);
  }
  return t;
}

sim::Cycles CycleAccount::total() const {
  sim::Cycles t = 0;
  for (const auto& rows : slots_) {
    for (const Row& r : rows) t += r.total();
  }
  return t;
}

void CycleAccount::merge(const CycleAccount& other) {
  if (other.cpus_ > cpus_) {
    for (auto& rows : slots_) {
      rows.resize(static_cast<std::size_t>(other.cpus_));
    }
    cpus_ = other.cpus_;
  }
  while (slots() < other.slots()) {
    slots_.emplace_back(static_cast<std::size_t>(cpus_));
  }
  for (int s = 0; s < other.slots(); ++s) {
    auto& dst = slots_[static_cast<std::size_t>(s)];
    const auto& src = other.slots_[static_cast<std::size_t>(s)];
    for (std::size_t cpu = 0; cpu < src.size(); ++cpu) {
      for (int b = 0; b < sim::kCycleBucketCount; ++b) {
        dst[cpu].cycles[b] += src[cpu].cycles[b];
      }
    }
  }
}

std::vector<std::string> CycleAccount::check_identity(
    const std::vector<sim::Cycles>& expected) const {
  std::vector<std::string> violations;
  const int n = std::min(cpus_, static_cast<int>(expected.size()));
  for (int cpu = 0; cpu < n; ++cpu) {
    const sim::Cycles got = cpu_total(cpu).total();
    const sim::Cycles want = expected[static_cast<std::size_t>(cpu)];
    if (got != want) {
      std::ostringstream msg;
      msg << "cycle-account identity violated on cpu " << cpu
          << ": sum(buckets) = " << got << ", breakdown total = " << want;
      violations.push_back(msg.str());
    }
  }
  if (cpus_ != static_cast<int>(expected.size())) {
    std::ostringstream msg;
    msg << "cycle-account cpu count " << cpus_ << " != breakdown cpu count "
        << expected.size();
    violations.push_back(msg.str());
  }
  return violations;
}

}  // namespace ssomp::trace
