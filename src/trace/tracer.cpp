#include "trace/tracer.hpp"

#include <algorithm>

namespace ssomp::trace {

void Tracer::attach(sim::Engine& engine, const TraceConfig& cfg) {
  if (!cfg.enabled) return;
  SSOMP_CHECK(engine_ == nullptr);
  engine_ = &engine;
  rings_.reserve(static_cast<std::size_t>(engine.cpu_count()));
  for (int c = 0; c < engine.cpu_count(); ++c) {
    rings_.emplace_back(cfg.ring_capacity);
    cpu_names_.push_back(engine.cpu(c).name());
  }
}

void Tracer::emit(int cpu, EventKind kind, std::uint64_t arg0,
                  std::uint64_t arg1, int node) {
  if (engine_ == nullptr) return;
  SSOMP_CHECK(cpu >= 0 && cpu < cpu_count());
  Event e;
  e.when = engine_->now();
  e.seq = next_seq_++;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.kind = kind;
  e.cpu = static_cast<std::int16_t>(cpu);
  e.node = static_cast<std::int16_t>(node);
  rings_[static_cast<std::size_t>(cpu)].push(e);
  ++kind_counts_[static_cast<std::size_t>(kind)];
}

TraceCounts Tracer::counts() const {
  TraceCounts c;
  c.by_kind = kind_counts_;
  for (const EventRing& r : rings_) {
    c.recorded += r.pushed();
    c.dropped += r.dropped();
  }
  return c;
}

std::vector<Event> Tracer::sorted_events() const {
  std::vector<Event> all;
  std::size_t total = 0;
  for (const EventRing& r : rings_) total += r.size();
  all.reserve(total);
  for (const EventRing& r : rings_) {
    for (std::size_t i = 0; i < r.size(); ++i) all.push_back(r.at(i));
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  });
  return all;
}

// ---------------------------------------------------------------------------
// Instrumentation

void Instrumentation::configure(sim::Engine& engine,
                                const TraceConfig& trace_cfg,
                                bool metrics_on) {
  tracer_.attach(engine, trace_cfg);
  metrics_on_ = metrics_on;
  active_ = tracer_.enabled() || metrics_on_;
  if (!metrics_on_) return;
  token_wait_ = &metrics_.histogram("token_wait_cycles");
  syscall_wait_ = &metrics_.histogram("syscall_wait_cycles");
  barrier_stall_ = &metrics_.histogram("barrier_stall_cycles");
  run_ahead_ = &metrics_.histogram("run_ahead_distance");
  region_conversion_pct_ = &metrics_.histogram("region_conversion_pct");
  tokens_inserted_ = &metrics_.counter("tokens_inserted");
  tokens_consumed_ = &metrics_.counter("tokens_consumed");
  chunks_forwarded_ = &metrics_.counter("chunks_forwarded");
  chunks_dropped_ = &metrics_.counter("chunks_dropped");
  stores_converted_ = &metrics_.counter("stores_converted");
  stores_dropped_ = &metrics_.counter("stores_dropped");
  recoveries_ = &metrics_.counter("recoveries_requested");
  faults_ = &metrics_.counter("faults_injected");
  restarts_ = &metrics_.counter("a_stream_restarts");
  benched_regions_ = &metrics_.counter("a_stream_benched_regions");
  watchdog_trips_ = &metrics_.counter("watchdog_trips");
  demotions_ = &metrics_.counter("cmp_demotions");
  promotions_ = &metrics_.counter("cmp_promotions");
  restart_resync_ = &metrics_.histogram("restart_resync_distance");
}

void Instrumentation::sem_insert(int cpu, int node, bool syscall,
                                 int count_after) {
  tracer_.emit(cpu, syscall ? EventKind::kSyscallInsert
                            : EventKind::kTokenInsert,
               static_cast<std::uint64_t>(count_after), 0, node);
  if (metrics_on_ && !syscall) tokens_inserted_->inc();
}

void Instrumentation::sem_consume(int cpu, int node, bool syscall,
                                  int count_after) {
  tracer_.emit(cpu, syscall ? EventKind::kSyscallConsume
                            : EventKind::kTokenConsume,
               static_cast<std::uint64_t>(count_after), 0, node);
  if (metrics_on_ && !syscall) tokens_consumed_->inc();
}

void Instrumentation::sem_wait_begin(int cpu, int node, bool syscall) {
  tracer_.emit(cpu, syscall ? EventKind::kSyscallWaitBegin
                            : EventKind::kTokenWaitBegin,
               0, 0, node);
}

void Instrumentation::sem_wait_end(int cpu, int node, bool syscall,
                                   std::uint64_t waited, bool poisoned) {
  tracer_.emit(cpu, syscall ? EventKind::kSyscallWaitEnd
                            : EventKind::kTokenWaitEnd,
               waited, poisoned ? 1 : 0, node);
  if (metrics_on_) {
    (syscall ? syscall_wait_ : token_wait_)->record(waited);
  }
}

void Instrumentation::mailbox_push(int cpu, int node, long lo, long hi) {
  tracer_.emit(cpu, EventKind::kChunkPush, static_cast<std::uint64_t>(lo),
               static_cast<std::uint64_t>(hi), node);
  if (metrics_on_) chunks_forwarded_->inc();
}

void Instrumentation::mailbox_pop(int cpu, int node, long lo, long hi) {
  tracer_.emit(cpu, EventKind::kChunkPop, static_cast<std::uint64_t>(lo),
               static_cast<std::uint64_t>(hi), node);
}

void Instrumentation::mailbox_drop(int cpu, int node, std::uint64_t depth) {
  tracer_.emit(cpu, EventKind::kChunkDrop, depth, 0, node);
  if (metrics_on_) chunks_dropped_->inc();
}

void Instrumentation::barrier_enter(int cpu, int node, int role) {
  tracer_.emit(cpu, EventKind::kBarrierEnter,
               static_cast<std::uint64_t>(role), 0, node);
}

void Instrumentation::barrier_exit(int cpu, int node, int role,
                                   std::uint64_t stall) {
  tracer_.emit(cpu, EventKind::kBarrierExit, static_cast<std::uint64_t>(role),
               stall, node);
  if (metrics_on_) barrier_stall_->record(stall);
}

void Instrumentation::region_begin(int cpu, int index, int mode) {
  tracer_.emit(cpu, EventKind::kRegionBegin,
               static_cast<std::uint64_t>(index),
               static_cast<std::uint64_t>(mode));
}

void Instrumentation::region_end(int cpu, int index, std::uint64_t cycles,
                                 std::uint64_t converted,
                                 std::uint64_t dropped) {
  tracer_.emit(cpu, EventKind::kRegionEnd, static_cast<std::uint64_t>(index),
               cycles);
  if (metrics_on_ && converted + dropped > 0) {
    region_conversion_pct_->record(converted * 100 / (converted + dropped));
  }
}

void Instrumentation::recovery_request(int cpu, int node) {
  tracer_.emit(cpu, EventKind::kRecoveryRequest, 0, 0, node);
  if (metrics_on_) recoveries_->inc();
}

void Instrumentation::recovery_ack(int cpu, int node) {
  tracer_.emit(cpu, EventKind::kRecoveryAck, 0, 0, node);
}

void Instrumentation::store_converted(int cpu, int node, std::uint64_t addr) {
  tracer_.emit(cpu, EventKind::kStoreConvert, addr, 0, node);
  if (metrics_on_) stores_converted_->inc();
}

void Instrumentation::store_dropped(int cpu, int node, std::uint64_t addr) {
  tracer_.emit(cpu, EventKind::kStoreDrop, addr, 0, node);
  if (metrics_on_) stores_dropped_->inc();
}

void Instrumentation::fault(int cpu, int node, std::uint64_t kind) {
  tracer_.emit(cpu, EventKind::kFault, kind, 0, node);
  if (metrics_on_) faults_->inc();
}

void Instrumentation::run_ahead(int cpu, int node, std::uint64_t distance) {
  if (metrics_on_) run_ahead_->record(distance);
  (void)cpu;
  (void)node;
}

void Instrumentation::restart(int cpu, int node,
                              std::uint64_t resync_distance) {
  tracer_.emit(cpu, EventKind::kRestart, resync_distance, 0, node);
  if (metrics_on_) {
    restarts_->inc();
    restart_resync_->record(resync_distance);
  }
}

void Instrumentation::a_bench(int cpu, int node, std::uint64_t restarts_used) {
  tracer_.emit(cpu, EventKind::kBench, restarts_used, 0, node);
  if (metrics_on_) benched_regions_->inc();
}

void Instrumentation::watchdog_trip(int cpu, int node, std::uint64_t site,
                                    std::uint64_t waited) {
  tracer_.emit(cpu, EventKind::kWatchdog, site, waited, node);
  if (metrics_on_) watchdog_trips_->inc();
}

void Instrumentation::mailbox_clear(int cpu, int node, std::uint64_t cleared,
                                    std::uint64_t drained) {
  tracer_.emit(cpu, EventKind::kMailboxClear, cleared, drained, node);
}

void Instrumentation::demote(int cpu, int node, std::uint64_t strikes) {
  tracer_.emit(cpu, EventKind::kDemote, strikes, 0, node);
  if (metrics_on_) demotions_->inc();
}

void Instrumentation::promote(int cpu, int node, bool probation) {
  tracer_.emit(cpu, EventKind::kPromote, probation ? 1 : 0, 0, node);
  if (metrics_on_) promotions_->inc();
}

}  // namespace ssomp::trace
