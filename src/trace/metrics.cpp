#include "trace/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "stats/report.hpp"

namespace ssomp::trace {

int Histogram::bucket_of(std::uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

std::uint64_t Histogram::bucket_upper(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record(std::uint64_t v) {
  min_ = count_ == 0 ? v : std::min(min_, v);
  max_ = std::max(max_, v);
  ++count_;
  sum_ += v;
  ++buckets_[bucket_of(v)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets_[b];
    if (cum >= rank) {
      return std::clamp(bucket_upper(b), min_, max_);
    }
  }
  return max_;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":" << c.value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << '"' << name << "\":{\"count\":" << h.count()
        << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
        << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
        << ",\"p50\":" << h.percentile(50) << ",\"p90\":" << h.percentile(90)
        << ",\"p99\":" << h.percentile(99) << ",\"buckets\":[";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.bucket_count(b) == 0) continue;
      if (!bfirst) out << ',';
      bfirst = false;
      const std::uint64_t lo = b == 0 ? 0 : Histogram::bucket_upper(b - 1) + 1;
      out << '[' << lo << ',' << Histogram::bucket_upper(b) << ','
          << h.bucket_count(b) << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::to_text() const {
  std::ostringstream out;
  if (!counters_.empty()) {
    stats::Table t({"counter", "value"});
    for (const auto& [name, c] : counters_) {
      t.add_row({name, std::to_string(c.value())});
    }
    out << t.to_string();
  }
  if (!histograms_.empty()) {
    if (!counters_.empty()) out << '\n';
    stats::Table t({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : histograms_) {
      t.add_row({name, std::to_string(h.count()),
                 stats::Table::fmt(h.mean(), 1),
                 std::to_string(h.percentile(50)),
                 std::to_string(h.percentile(90)),
                 std::to_string(h.percentile(99)), std::to_string(h.max())});
    }
    out << t.to_string();
  }
  return out.str();
}

}  // namespace ssomp::trace
