#include "trace/summary.hpp"

#include <sstream>
#include <vector>

#include "stats/report.hpp"

namespace ssomp::trace {

TraceSummary summarize_chrome_trace(const JsonValue& root) {
  TraceSummary s;
  if (!root.is_object()) {
    s.error = "top-level JSON value is not an object";
    return s;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    s.error = "missing \"traceEvents\" array";
    return s;
  }

  std::map<double, std::string> track_names;  // tid -> thread_name
  // Open B-slice timestamps per (tid, name) for duration pairing.
  std::map<std::pair<double, std::string>, std::vector<double>> open;

  for (const JsonValue& e : events->array) {
    if (!e.is_object()) {
      s.error = "traceEvents entry is not an object";
      return s;
    }
    ++s.trace_events;
    const std::string ph = e.string_or("ph");
    const std::string name = e.string_or("name");
    const double tid = e.number_or("tid");
    if (ph == "M") {
      if (name == "thread_name") {
        if (const JsonValue* args = e.find("args")) {
          track_names[tid] = args->string_or("name");
        }
      }
      continue;
    }
    ++s.by_track[track_names.count(tid)
                     ? track_names[tid]
                     : "tid" + std::to_string(static_cast<long>(tid))];
    if (ph == "i" || ph == "B" || ph == "b") ++s.by_name[name];
    if (ph == "i") {
      if (const JsonValue* args = e.find("args")) {
        const int node = static_cast<int>(args->number_or("node"));
        if (name == "recovery-request") ++s.per_node[node].recoveries;
        if (name == "restart") ++s.per_node[node].restarts;
        if (name == "a-bench") ++s.per_node[node].benches;
        if (name == "watchdog") ++s.per_node[node].watchdog_trips;
        if (name == "demote") ++s.per_node[node].demotions;
        if (name == "promote") ++s.per_node[node].promotions;
      }
    }
    if (ph == "B") {
      open[{tid, name}].push_back(e.number_or("ts"));
    } else if (ph == "E") {
      auto& stack = open[{tid, name}];
      if (!stack.empty()) {
        const double begin = stack.back();
        stack.pop_back();
        SliceStats& ss = s.slices[name];
        ++ss.count;
        ss.total_cycles +=
            static_cast<std::uint64_t>(e.number_or("ts") - begin);
      }
    }
  }

  if (const JsonValue* other = root.find("otherData")) {
    s.events_recorded =
        static_cast<std::uint64_t>(other->number_or("events_recorded"));
    s.events_dropped =
        static_cast<std::uint64_t>(other->number_or("events_dropped"));
    s.token_inserts =
        static_cast<std::uint64_t>(other->number_or("token_insert"));
    s.token_consumes =
        static_cast<std::uint64_t>(other->number_or("token_consume"));
    s.recoveries =
        static_cast<std::uint64_t>(other->number_or("recovery_request"));
    s.faults = static_cast<std::uint64_t>(other->number_or("fault"));
    s.restarts = static_cast<std::uint64_t>(other->number_or("restart"));
    s.benches = static_cast<std::uint64_t>(other->number_or("a_bench"));
    s.watchdog_trips =
        static_cast<std::uint64_t>(other->number_or("watchdog"));
    s.mailbox_clears =
        static_cast<std::uint64_t>(other->number_or("mailbox_clear"));
    s.demotions = static_cast<std::uint64_t>(other->number_or("demote"));
    s.promotions = static_cast<std::uint64_t>(other->number_or("promote"));
  }
  s.ok = true;
  return s;
}

TraceSummary summarize_chrome_trace_text(std::string_view text) {
  const JsonParseResult parsed = parse_json(text);
  if (!parsed.ok) {
    TraceSummary s;
    s.error = "JSON parse error at byte " + std::to_string(parsed.offset) +
              ": " + parsed.error;
    return s;
  }
  return summarize_chrome_trace(parsed.value);
}

std::string TraceSummary::format() const {
  std::ostringstream out;
  out << "trace: " << trace_events << " JSON records, " << events_recorded
      << " protocol events recorded, " << events_dropped
      << " evicted by ring wraparound\n"
      << "tokens: " << token_inserts << " inserted, " << token_consumes
      << " consumed   recoveries: " << recoveries << "   faults: " << faults
      << "\n"
      << "resilience: " << restarts << " restarts, " << benches
      << " benchings, " << watchdog_trips << " watchdog trips, "
      << mailbox_clears << " mailbox clears, " << demotions << " demotions, "
      << promotions << " promotions\n\n";
  if (!per_node.empty()) {
    stats::Table t({"cmp", "recoveries", "restarts", "benchings", "watchdog",
                    "demotions", "promotions"});
    NodeResilience sum;
    for (const auto& [node, r] : per_node) {
      t.add_row({std::to_string(node), std::to_string(r.recoveries),
                 std::to_string(r.restarts), std::to_string(r.benches),
                 std::to_string(r.watchdog_trips),
                 std::to_string(r.demotions), std::to_string(r.promotions)});
      sum.recoveries += r.recoveries;
      sum.restarts += r.restarts;
      sum.benches += r.benches;
      sum.watchdog_trips += r.watchdog_trips;
      sum.demotions += r.demotions;
      sum.promotions += r.promotions;
    }
    out << t.to_string();
    // Retained instants vs the eviction-proof otherData counts: unequal
    // sums mean the ring evicted resilience events (or the file was
    // hand-edited) — flag it the same way ssomp_run flags stat drift.
    const bool match = sum.recoveries == recoveries &&
                       sum.restarts == restarts && sum.benches == benches &&
                       sum.watchdog_trips == watchdog_trips &&
                       sum.demotions == demotions &&
                       sum.promotions == promotions;
    out << "per-CMP totals vs exact counts: "
        << (match ? "[match]" : "[MISMATCH — ring eviction or edited file]")
        << "\n\n";
  }
  if (!by_name.empty()) {
    stats::Table t({"event", "retained"});
    for (const auto& [name, n] : by_name) {
      t.add_row({name, std::to_string(n)});
    }
    out << t.to_string() << '\n';
  }
  if (!slices.empty()) {
    stats::Table t({"slice", "count", "total cycles", "mean cycles"});
    for (const auto& [name, ss] : slices) {
      t.add_row({name, std::to_string(ss.count),
                 std::to_string(ss.total_cycles),
                 stats::Table::fmt(ss.count == 0
                                       ? 0.0
                                       : static_cast<double>(ss.total_cycles) /
                                             static_cast<double>(ss.count),
                                   1)});
    }
    out << t.to_string() << '\n';
  }
  if (!by_track.empty()) {
    stats::Table t({"track", "events"});
    for (const auto& [name, n] : by_track) {
      t.add_row({name, std::to_string(n)});
    }
    out << t.to_string();
  }
  return out.str();
}

}  // namespace ssomp::trace
