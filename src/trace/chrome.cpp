#include "trace/chrome.hpp"

#include <deque>
#include <map>
#include <sstream>
#include <vector>

namespace ssomp::trace {

namespace {

class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& out) : out_(out) {}

  /// Starts one trace-event record: {"name":NAME,"ph":PH,"ts":TS,
  /// "pid":0,"tid":TID ... (caller appends fields, then calls close()).
  void open(std::string_view name, char ph, std::uint64_t ts, int tid) {
    if (!first_) out_ << ',';
    first_ = false;
    out_ << "{\"name\":\"" << name << "\",\"ph\":\"" << ph
         << "\",\"ts\":" << ts << ",\"pid\":0,\"tid\":" << tid;
  }
  void cat(std::string_view c) { out_ << ",\"cat\":\"" << c << "\""; }
  void id(std::uint64_t i) { out_ << ",\"id\":" << i; }
  void args_begin() { out_ << ",\"args\":{"; }
  void arg(std::string_view k, std::uint64_t v, bool first) {
    if (!first) out_ << ',';
    out_ << '"' << k << "\":" << v;
  }
  void args_end() { out_ << '}'; }
  void close() { out_ << '}'; }

  /// Convenience: a complete instant event with up to two numeric args.
  void instant(std::string_view name, std::uint64_t ts, int tid,
               std::string_view cat_name,
               std::initializer_list<std::pair<std::string_view, std::uint64_t>>
                   args) {
    open(name, 'i', ts, tid);
    cat(cat_name);
    out_ << ",\"s\":\"t\"";
    args_begin();
    bool first = true;
    for (const auto& [k, v] : args) {
      arg(k, v, first);
      first = false;
    }
    args_end();
    close();
  }

 private:
  std::ostringstream& out_;
  bool first_ = true;
};

constexpr std::string_view kModeNames[] = {"single", "double", "slipstream"};

std::string_view mode_name(std::uint64_t m) {
  return m < 3 ? kModeNames[m] : "?";
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  EventWriter w(out);

  // Track metadata: process name plus one named, ordered track per CPU.
  w.open("process_name", 'M', 0, 0);
  out << ",\"args\":{\"name\":\"ssomp\"}";
  w.close();
  for (int c = 0; c < tracer.cpu_count(); ++c) {
    w.open("thread_name", 'M', 0, c);
    out << ",\"args\":{\"name\":\"" << tracer.cpu_name(c) << "\"}";
    w.close();
    w.open("thread_sort_index", 'M', 0, c);
    out << ",\"args\":{\"sort_index\":" << c << "}";
    w.close();
  }

  // Duration-slice pairing state: per-CPU stack depth per slice name, so
  // an end whose begin was evicted from the ring never emits an orphan E.
  std::map<std::pair<int, std::string_view>, int> open_slices;
  const auto begin_slice = [&](std::string_view name, const Event& e) {
    w.open(name, 'B', e.when, e.cpu);
    w.cat("slip");
    w.close();
    ++open_slices[{e.cpu, name}];
  };
  const auto end_slice = [&](std::string_view name, const Event& e,
                             std::uint64_t dur_arg) {
    int& depth = open_slices[{e.cpu, name}];
    if (depth <= 0) return;  // begin evicted by ring wraparound
    --depth;
    w.open(name, 'E', e.when, e.cpu);
    w.args_begin();
    w.arg("cycles", dur_arg, true);
    w.args_end();
    w.close();
  };

  // Async "token" span bookkeeping: FIFO of open insert timestamps per
  // node (token semantics are FIFO — the A-stream consumes the oldest).
  std::map<int, std::deque<std::uint64_t>> open_tokens;  // node -> span ids
  std::uint64_t next_span = 1;

  for (const Event& e : tracer.sorted_events()) {
    switch (e.kind) {
      case EventKind::kRegionBegin:
        w.open("region", 'B', e.when, e.cpu);
        w.cat("region");
        w.args_begin();
        w.arg("index", e.arg0, true);
        w.args_end();
        w.close();
        ++open_slices[{e.cpu, "region"}];
        // The mode only renders in args; keep an instant for findability.
        w.instant(mode_name(e.arg1), e.when, e.cpu, "region",
                  {{"index", e.arg0}});
        break;
      case EventKind::kRegionEnd:
        end_slice("region", e, e.arg1);
        break;
      case EventKind::kBarrierEnter:
        begin_slice("barrier", e);
        break;
      case EventKind::kBarrierExit:
        end_slice("barrier", e, e.arg1);
        break;
      case EventKind::kTokenWaitBegin:
        begin_slice("token-wait", e);
        break;
      case EventKind::kTokenWaitEnd:
        end_slice("token-wait", e, e.arg0);
        break;
      case EventKind::kSyscallWaitBegin:
        begin_slice("syscall-wait", e);
        break;
      case EventKind::kSyscallWaitEnd:
        end_slice("syscall-wait", e, e.arg0);
        break;
      case EventKind::kTokenInsert: {
        w.instant("token+", e.when, e.cpu, "token", {{"count", e.arg0}});
        const std::uint64_t span = next_span++;
        open_tokens[e.node].push_back(span);
        w.open("token", 'b', e.when, e.cpu);
        w.cat("token");
        w.id(span);
        w.close();
        break;
      }
      case EventKind::kTokenConsume: {
        w.instant("token-", e.when, e.cpu, "token", {{"count", e.arg0}});
        auto& q = open_tokens[e.node];
        if (!q.empty()) {  // initial-allowance tokens have no insert event
          w.open("token", 'e', e.when, e.cpu);
          w.cat("token");
          w.id(q.front());
          w.close();
          q.pop_front();
        }
        break;
      }
      case EventKind::kSyscallInsert:
        w.instant("sys+", e.when, e.cpu, "syscall", {{"count", e.arg0}});
        break;
      case EventKind::kSyscallConsume:
        w.instant("sys-", e.when, e.cpu, "syscall", {{"count", e.arg0}});
        break;
      case EventKind::kChunkPush:
        w.instant("chunk-push", e.when, e.cpu, "sched",
                  {{"lo", e.arg0}, {"hi", e.arg1}});
        break;
      case EventKind::kChunkPop:
        w.instant("chunk-pop", e.when, e.cpu, "sched",
                  {{"lo", e.arg0}, {"hi", e.arg1}});
        break;
      case EventKind::kChunkDrop:
        w.instant("chunk-drop", e.when, e.cpu, "sched", {{"depth", e.arg0}});
        break;
      case EventKind::kStoreConvert:
        w.instant("store-convert", e.when, e.cpu, "astore",
                  {{"addr", e.arg0}});
        break;
      case EventKind::kStoreDrop:
        w.instant("store-drop", e.when, e.cpu, "astore", {{"addr", e.arg0}});
        break;
      case EventKind::kRecoveryRequest:
        w.instant("recovery-request", e.when, e.cpu, "recovery",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)}});
        break;
      case EventKind::kRecoveryAck:
        w.instant("recovery-ack", e.when, e.cpu, "recovery",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)}});
        break;
      case EventKind::kFault:
        w.instant("fault", e.when, e.cpu, "fault", {{"kind", e.arg0}});
        break;
      case EventKind::kRestart:
        w.instant("restart", e.when, e.cpu, "recovery",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)},
                   {"resync", e.arg0}});
        break;
      case EventKind::kBench:
        w.instant("a-bench", e.when, e.cpu, "recovery",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)},
                   {"restarts", e.arg0}});
        break;
      case EventKind::kWatchdog:
        w.instant("watchdog", e.when, e.cpu, "recovery",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)},
                   {"site", e.arg0},
                   {"waited", e.arg1}});
        break;
      case EventKind::kMailboxClear:
        w.instant("mailbox-clear", e.when, e.cpu, "recovery",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)},
                   {"cleared", e.arg0},
                   {"drained", e.arg1}});
        break;
      case EventKind::kDemote:
        w.instant("demote", e.when, e.cpu, "degrade",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)},
                   {"strikes", e.arg0}});
        break;
      case EventKind::kPromote:
        w.instant("promote", e.when, e.cpu, "degrade",
                  {{"node", static_cast<std::uint64_t>(
                                e.node < 0 ? 0 : e.node)},
                   {"probation", e.arg0}});
        break;
      case EventKind::kKindCount:
        break;
    }
  }

  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"cycles\"";
  const TraceCounts counts = tracer.counts();
  out << ",\"events_recorded\":" << counts.recorded
      << ",\"events_dropped\":" << counts.dropped;
  for (int k = 0; k < kEventKindCount; ++k) {
    out << ",\"" << to_string(static_cast<EventKind>(k))
        << "\":" << counts.by_kind[static_cast<std::size_t>(k)];
  }
  out << "}}";
  return out.str();
}

}  // namespace ssomp::trace
