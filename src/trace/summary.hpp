// Trace-file summarization for `slipreport --trace FILE`.
//
// Parses a Chrome trace-event JSON file produced by trace/chrome.hpp and
// reduces it to the numbers a terminal reader wants: exact protocol
// counts (from otherData, eviction-proof), retained-event breakdowns per
// name and per track, and total/mean durations of the retained wait and
// barrier slices. Parse failures are reported with a byte offset so a
// malformed trace fails loudly (the CI smoke job relies on this).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "trace/jsonv.hpp"

namespace ssomp::trace {

struct SliceStats {
  std::uint64_t count = 0;
  std::uint64_t total_cycles = 0;
};

struct TraceSummary {
  bool ok = false;
  std::string error;

  std::uint64_t trace_events = 0;  // records in the traceEvents array
  std::map<std::string, std::uint64_t> by_name;    // instants + B slices
  std::map<std::string, std::uint64_t> by_track;   // per thread_name
  std::map<std::string, SliceStats> slices;        // paired B/E durations

  // Exact aggregate counts from otherData (0 when absent).
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t token_inserts = 0;
  std::uint64_t token_consumes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t faults = 0;
  std::uint64_t restarts = 0;
  std::uint64_t benches = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t mailbox_clears = 0;
  std::uint64_t demotions = 0;
  std::uint64_t promotions = 0;

  /// Per-CMP resilience activity, built from retained instant events'
  /// args.node (subject to ring eviction, unlike the otherData counts —
  /// comparing the column sums against them is the eviction check).
  struct NodeResilience {
    std::uint64_t recoveries = 0;
    std::uint64_t restarts = 0;
    std::uint64_t benches = 0;
    std::uint64_t watchdog_trips = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
  };
  std::map<int, NodeResilience> per_node;

  /// Renders the summary as text tables.
  [[nodiscard]] std::string format() const;
};

/// Summarizes parsed trace JSON. Returns ok=false with an explanation
/// when the document is not a chrome trace object.
[[nodiscard]] TraceSummary summarize_chrome_trace(const JsonValue& root);

/// Convenience: parse + summarize raw text.
[[nodiscard]] TraceSummary summarize_chrome_trace_text(std::string_view text);

}  // namespace ssomp::trace
