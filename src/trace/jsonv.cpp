#include "trace/jsonv.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace ssomp::trace {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->str : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult parse() {
    JsonParseResult r;
    skip_ws();
    if (!parse_value(r.value)) {
      r.error = error_;
      r.offset = pos_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error = "trailing characters after JSON value";
      r.offset = pos_;
      return r;
    }
    r.ok = true;
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool fail(const char* msg) {
    error_ = msg;
    return false;
  }

  bool expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      error_ = std::string("expected '") + c + "'";
      return false;
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.type = JsonValue::Type::kString; return parse_string(out.str);
      case 't': return parse_literal("true", out, JsonValue::Type::kBool, true);
      case 'f':
        return parse_literal("false", out, JsonValue::Type::kBool, false);
      case 'n': return parse_literal("null", out, JsonValue::Type::kNull, false);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view lit, JsonValue& out,
                     JsonValue::Type type, bool b) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    out.type = type;
    out.boolean = b;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      return fail("malformed number");
    }
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            const auto [p, ec] = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc{} || p != text_.data() + pos_ + 4) {
              return fail("bad \\u escape");
            }
            pos_ += 4;
            // Traces are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (!expect('[')) return false;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (!expect(',')) return false;
    }
  }

  bool parse_object(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (!expect('{')) return false;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      JsonValue v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (!expect(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace ssomp::trace
