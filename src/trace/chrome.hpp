// Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).
//
// Layout: one named track per simulated CPU (pid 0, tid = cpu id) carrying
// duration slices for token/syscall waits, barrier episodes and parallel
// regions, plus instant markers for token traffic, forwarded chunks,
// A-store outcomes, recoveries and injected faults. Barrier-token
// lifetimes additionally render as async "token" spans (ph b/e) anchored
// to each CMP's R-CPU track, so run-ahead distance is visible as stacked
// in-flight tokens. Timestamps are simulated cycles written into the
// microsecond "ts" field (absolute units don't matter for inspection).
//
// The top-level "otherData" object carries the tracer's exact aggregate
// counts (recorded/dropped/per-kind), which survive ring-buffer eviction;
// consumers cross-check these against SlipRegionStats.
#pragma once

#include <string>

#include "trace/tracer.hpp"

namespace ssomp::trace {

[[nodiscard]] std::string chrome_trace_json(const Tracer& tracer);

}  // namespace ssomp::trace
