// Online metrics registry: named counters and cycle-valued histograms.
//
// The registry aggregates as the simulation runs (O(1) per sample, no
// event storage), so metrics can stay enabled when full event tracing is
// off. Histograms use power-of-two buckets — exact count/sum/min/max,
// bucket-resolution percentiles — which is the right fidelity for
// latency-style distributions (token-wait durations, barrier stalls,
// run-ahead distances) at a fixed 65-word footprint.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ssomp::trace {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

  /// Folds `other` in. Associative and commutative.
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bucket b>0 covers [2^(b-1), 2^b-1]

  void record(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Bucket index holding `v`: 0 for 0, else bit_width(v).
  [[nodiscard]] static int bucket_of(std::uint64_t v);

  /// Inclusive upper bound of bucket `b` (0 for b == 0, 2^b - 1 otherwise).
  [[nodiscard]] static std::uint64_t bucket_upper(int b);

  /// Estimated p-th percentile (p in [0, 100]): the upper bound of the
  /// bucket where the cumulative count reaches ceil(p/100 * count),
  /// clamped to the exact observed [min, max]. Deterministic, within one
  /// power of two of the true value. Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    return buckets_[b];
  }

  /// Folds `other` in. Associative and commutative: the merged state is
  /// exactly the state of recording both sample streams into one
  /// histogram (buckets, count, sum, min, max all pool losslessly), so
  /// merged percentiles match the pooled stream's to bucket resolution.
  void merge(const Histogram& other);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metric store. Lookup is by string name; references returned are
/// stable for the registry's lifetime (hot paths resolve once and keep
/// the pointer). std::map keeps report output deterministically sorted.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// JSON object: {"counters": {...}, "histograms": {name: {count, sum,
  /// min, max, mean, p50, p90, p99, buckets: [[lo, hi, n], ...]}}}.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable tables (counters, then histogram summaries).
  [[nodiscard]] std::string to_text() const;

  /// Folds `other` in: same-named metrics merge, new names are copied.
  /// Associative and commutative; std::map keying keeps the result
  /// independent of merge order.
  void merge(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ssomp::trace
