// Event tracer + instrumentation facade.
//
// Tracer owns one EventRing per simulated CPU plus exact per-kind
// monotonic counters (immune to ring overflow). Instrumentation bundles
// the tracer with the online MetricsRegistry and exposes one inline hook
// per protocol transition; the runtime, the token semaphores and the
// SlipPair mailbox call these hooks. Either half can be enabled
// independently: full event tracing (--trace) is heavyweight in memory,
// the metrics registry (--metrics) is O(1) per sample, and with both off
// every hook is a single predictable branch.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "trace/metrics.hpp"
#include "trace/ring.hpp"

namespace ssomp::trace {

/// Tracing knobs carried by rt::RuntimeOptions.
struct TraceConfig {
  bool enabled = false;
  /// Events retained per CPU; older events are evicted on wraparound
  /// (counts stay exact, see EventRing).
  std::size_t ring_capacity = 1 << 14;
};

/// Exact aggregate counts, independent of ring eviction.
struct TraceCounts {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;  // evicted by ring wraparound
  std::array<std::uint64_t, kEventKindCount> by_kind{};

  [[nodiscard]] std::uint64_t of(EventKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }
};

class Tracer {
 public:
  Tracer() = default;

  /// Arms the tracer: one ring per CPU of `engine`, stamped from its
  /// clock. Without this call the tracer stays disabled.
  void attach(sim::Engine& engine, const TraceConfig& cfg);

  [[nodiscard]] bool enabled() const { return engine_ != nullptr; }

  void emit(int cpu, EventKind kind, std::uint64_t arg0 = 0,
            std::uint64_t arg1 = 0, int node = -1);

  [[nodiscard]] int cpu_count() const { return static_cast<int>(rings_.size()); }
  [[nodiscard]] const EventRing& ring(int cpu) const { return rings_[static_cast<std::size_t>(cpu)]; }
  [[nodiscard]] const std::string& cpu_name(int cpu) const {
    return cpu_names_[static_cast<std::size_t>(cpu)];
  }

  /// Exact per-kind counts (monotonic; unaffected by eviction).
  [[nodiscard]] TraceCounts counts() const;

  /// All retained events merged across rings, ordered by (when, seq).
  [[nodiscard]] std::vector<Event> sorted_events() const;

 private:
  sim::Engine* engine_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::vector<EventRing> rings_;
  std::vector<std::string> cpu_names_;
  std::array<std::uint64_t, kEventKindCount> kind_counts_{};
};

/// The single object the runtime wires through itself and the slipstream
/// hardware models. Hooks fan out to the tracer (when tracing) and to the
/// metrics registry (when metrics are on).
class Instrumentation {
 public:
  /// Must be called once before the simulation starts. `metrics_on`
  /// keeps the registry live even when `trace_cfg.enabled` is false.
  void configure(sim::Engine& engine, const TraceConfig& trace_cfg,
                 bool metrics_on);

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool metrics_on() const { return metrics_on_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

  // --- hooks (semantics documented at the EventKind taxonomy) ---

  void sem_insert(int cpu, int node, bool syscall, int count_after);
  void sem_consume(int cpu, int node, bool syscall, int count_after);
  void sem_wait_begin(int cpu, int node, bool syscall);
  void sem_wait_end(int cpu, int node, bool syscall, std::uint64_t waited,
                    bool poisoned);
  void mailbox_push(int cpu, int node, long lo, long hi);
  void mailbox_pop(int cpu, int node, long lo, long hi);
  void mailbox_drop(int cpu, int node, std::uint64_t depth);
  void barrier_enter(int cpu, int node, int role);
  void barrier_exit(int cpu, int node, int role, std::uint64_t stall);
  void region_begin(int cpu, int index, int mode);
  void region_end(int cpu, int index, std::uint64_t cycles,
                  std::uint64_t converted, std::uint64_t dropped);
  void recovery_request(int cpu, int node);
  void recovery_ack(int cpu, int node);
  void store_converted(int cpu, int node, std::uint64_t addr);
  void store_dropped(int cpu, int node, std::uint64_t addr);
  void fault(int cpu, int node, std::uint64_t kind);
  void run_ahead(int cpu, int node, std::uint64_t distance);
  void restart(int cpu, int node, std::uint64_t resync_distance);
  void a_bench(int cpu, int node, std::uint64_t restarts_used);
  void watchdog_trip(int cpu, int node, std::uint64_t site,
                     std::uint64_t waited);
  void mailbox_clear(int cpu, int node, std::uint64_t cleared,
                     std::uint64_t drained);
  void demote(int cpu, int node, std::uint64_t strikes);
  void promote(int cpu, int node, bool probation);

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  bool metrics_on_ = false;
  bool active_ = false;

  // Pre-resolved registry handles for the hot hooks.
  Histogram* token_wait_ = nullptr;
  Histogram* syscall_wait_ = nullptr;
  Histogram* barrier_stall_ = nullptr;
  Histogram* run_ahead_ = nullptr;
  Histogram* region_conversion_pct_ = nullptr;
  Counter* tokens_inserted_ = nullptr;
  Counter* tokens_consumed_ = nullptr;
  Counter* chunks_forwarded_ = nullptr;
  Counter* chunks_dropped_ = nullptr;
  Counter* stores_converted_ = nullptr;
  Counter* stores_dropped_ = nullptr;
  Counter* recoveries_ = nullptr;
  Counter* faults_ = nullptr;
  Counter* restarts_ = nullptr;
  Counter* benched_regions_ = nullptr;
  Counter* watchdog_trips_ = nullptr;
  Counter* demotions_ = nullptr;
  Counter* promotions_ = nullptr;
  Histogram* restart_resync_ = nullptr;
};

}  // namespace ssomp::trace
