// Minimal JSON value + recursive-descent parser (no dependencies).
//
// The repo writes JSON in several places (core/json, trace/chrome); this
// is the matching reader, used to validate emitted traces in tests and to
// power `slipreport --trace` summaries. Strictness favors catching writer
// bugs: trailing garbage, unterminated strings and malformed numbers are
// errors with a byte offset.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssomp::trace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Numeric value of member `key`, or `fallback`.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback = 0.0) const;

  /// String value of member `key`, or `fallback`.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback = {}) const;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
  std::size_t offset = 0;  // byte offset of the error
};

[[nodiscard]] JsonParseResult parse_json(std::string_view text);

}  // namespace ssomp::trace
