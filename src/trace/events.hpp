// Typed slipstream protocol events (the observability layer's vocabulary).
//
// Every interesting transition of the token protocol — token traffic on
// the barrier and syscall semaphores, barrier episodes, forwarded
// scheduling decisions, recovery requests, A-store conversion outcomes,
// region boundaries, and injected faults — is recorded as one fixed-size
// Event. Events are stamped with simulated time and a global sequence
// number (for a stable total order among same-cycle events) and stored in
// per-CPU ring buffers (trace/ring.hpp), then exported as a Chrome
// trace-event JSON file (trace/chrome.hpp) loadable in Perfetto.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace ssomp::trace {

enum class EventKind : std::uint8_t {
  kRegionBegin = 0,   // arg0 = region index, arg1 = execution mode
  kRegionEnd,         // arg0 = region index, arg1 = region cycles
  kBarrierEnter,      // arg0 = stream role
  kBarrierExit,       // arg0 = stream role, arg1 = stall cycles
  kTokenInsert,       // barrier semaphore; arg0 = count after insert
  kTokenConsume,      // barrier semaphore; arg0 = count after consume
  kTokenWaitBegin,    // A-stream blocked in a barrier-token consume
  kTokenWaitEnd,      // arg0 = wait cycles, arg1 = 1 when poisoned
  kSyscallInsert,     // syscall semaphore; arg0 = count after insert
  kSyscallConsume,    // syscall semaphore; arg0 = count after consume
  kSyscallWaitBegin,  // A-stream blocked in a syscall-token consume
  kSyscallWaitEnd,    // arg0 = wait cycles, arg1 = 1 when poisoned
  kRecoveryRequest,   // R-side request_recovery (first request per episode)
  kRecoveryAck,       // A-side ack after unwinding to the region boundary
  kChunkPush,         // forwarded scheduling decision; arg0 = lo, arg1 = hi
  kChunkPop,          // A-stream consumed a decision; arg0 = lo, arg1 = hi
  kChunkDrop,         // depth clamp dropped the stalest decision
  kStoreConvert,      // A-store converted to exclusive prefetch; arg0 = addr
  kStoreDrop,         // A-store dropped outright; arg0 = addr
  kFault,             // injected fault fired; arg0 = slip::FaultKind
  kRestart,           // A-stream restarted mid-region; arg0 = resync distance
  kBench,             // A-stream benched for the region; arg0 = restarts used
  kWatchdog,          // watchdog tripped; arg0 = WatchSite, arg1 = wait cycles
  kMailboxClear,      // ack-time reconcile; arg0 = cleared, arg1 = drained
  kDemote,            // CMP demoted to single-stream; arg0 = strike count
  kPromote,           // CMP re-promoted on probation (arg0 = 1) or restored
  kKindCount
};

inline constexpr int kEventKindCount = static_cast<int>(EventKind::kKindCount);

[[nodiscard]] constexpr std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kRegionBegin: return "region_begin";
    case EventKind::kRegionEnd: return "region_end";
    case EventKind::kBarrierEnter: return "barrier_enter";
    case EventKind::kBarrierExit: return "barrier_exit";
    case EventKind::kTokenInsert: return "token_insert";
    case EventKind::kTokenConsume: return "token_consume";
    case EventKind::kTokenWaitBegin: return "token_wait_begin";
    case EventKind::kTokenWaitEnd: return "token_wait_end";
    case EventKind::kSyscallInsert: return "syscall_insert";
    case EventKind::kSyscallConsume: return "syscall_consume";
    case EventKind::kSyscallWaitBegin: return "syscall_wait_begin";
    case EventKind::kSyscallWaitEnd: return "syscall_wait_end";
    case EventKind::kRecoveryRequest: return "recovery_request";
    case EventKind::kRecoveryAck: return "recovery_ack";
    case EventKind::kChunkPush: return "chunk_push";
    case EventKind::kChunkPop: return "chunk_pop";
    case EventKind::kChunkDrop: return "chunk_drop";
    case EventKind::kStoreConvert: return "store_convert";
    case EventKind::kStoreDrop: return "store_drop";
    case EventKind::kFault: return "fault";
    case EventKind::kRestart: return "restart";
    case EventKind::kBench: return "a_bench";
    case EventKind::kWatchdog: return "watchdog";
    case EventKind::kMailboxClear: return "mailbox_clear";
    case EventKind::kDemote: return "demote";
    case EventKind::kPromote: return "promote";
    case EventKind::kKindCount: break;
  }
  return "?";
}

/// One recorded protocol event. `node` is the CMP the event concerns
/// (-1 for events with no CMP affinity, e.g. region boundaries).
struct Event {
  sim::Cycles when = 0;
  std::uint64_t seq = 0;  // global emission order (ties within a cycle)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  EventKind kind = EventKind::kRegionBegin;
  std::int16_t cpu = 0;
  std::int16_t node = -1;
};

}  // namespace ssomp::trace
