// Fixed-capacity per-CPU event ring buffer.
//
// Tracing must be droppable-overhead: each CPU appends into its own
// preallocated ring and the oldest events are overwritten once the ring
// wraps. Total pushes are counted independently of the storage, so
// aggregate event counts (the numbers cross-checked against
// SlipRegionStats) stay exact even after overflow; only the evicted
// events' *details* are lost, and the eviction count is reported so a
// truncated trace is never mistaken for a complete one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/check.hpp"
#include "trace/events.hpp"

namespace ssomp::trace {

class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : buf_(capacity) {
    SSOMP_CHECK(capacity > 0);
  }

  void push(const Event& e) {
    buf_[static_cast<std::size_t>(pushed_ % buf_.size())] = e;
    ++pushed_;
  }

  /// Events currently stored (<= capacity).
  [[nodiscard]] std::size_t size() const {
    return pushed_ < buf_.size() ? static_cast<std::size_t>(pushed_)
                                 : buf_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Total events ever pushed.
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }

  /// Events evicted by wraparound.
  [[nodiscard]] std::uint64_t dropped() const { return pushed_ - size(); }

  /// i-th stored event in chronological (push) order: 0 is the oldest
  /// still retained, size()-1 the newest.
  [[nodiscard]] const Event& at(std::size_t i) const {
    SSOMP_CHECK(i < size());
    return buf_[static_cast<std::size_t>((dropped() + i) % buf_.size())];
  }

 private:
  std::vector<Event> buf_;
  std::uint64_t pushed_ = 0;
};

}  // namespace ssomp::trace
