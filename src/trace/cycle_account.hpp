// Per-CPU x per-region cycle-accounting matrix.
//
// Every simulated cycle a CPU accrues lands in exactly one exclusive
// CycleBucket (sim/time_category.hpp) of exactly one row of this matrix:
// the runtime points each SimCpu at the row for the region it is
// executing (slot 0 is the serial / outside-region span, slot r+1 is
// parallel region r) and the engine mirrors every breakdown charge into
// the active row. The defining identity — per CPU, the sum over all rows
// and buckets equals the CPU's total breakdown cycles — therefore holds
// by construction and is audit-checked after every run (see
// docs/OBSERVABILITY.md).
//
// Rows live in a deque of per-region vectors so that handing out raw row
// pointers to SimCpu is safe: deque growth never relocates existing
// elements.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "sim/time_category.hpp"
#include "sim/types.hpp"

namespace ssomp::trace {

class CycleAccount {
 public:
  struct Row {
    std::array<sim::Cycles, sim::kCycleBucketCount> cycles{};

    [[nodiscard]] sim::Cycles get(sim::CycleBucket b) const {
      return cycles[static_cast<int>(b)];
    }
    [[nodiscard]] sim::Cycles total() const {
      sim::Cycles t = 0;
      for (sim::Cycles c : cycles) t += c;
      return t;
    }
  };

  /// Clears the matrix and sizes it for `cpus` processors with only the
  /// serial slot (slot 0) present.
  void reset(int cpus);

  [[nodiscard]] int cpus() const { return cpus_; }

  /// Number of slots present (>= 1 after reset: slot 0 is serial time,
  /// slot r+1 covers parallel region r).
  [[nodiscard]] int slots() const { return static_cast<int>(slots_.size()); }

  /// Raw bucket array for (cpu, slot), creating the slot (and any slots
  /// before it) on demand. The address is stable for the lifetime of this
  /// object — safe to hand to SimCpu::set_account_row.
  [[nodiscard]] sim::Cycles* row_data(int cpu, int slot);

  [[nodiscard]] const Row& row(int cpu, int slot) const;

  /// Sum over all slots for one CPU, per bucket.
  [[nodiscard]] Row cpu_total(int cpu) const;

  /// Sum over all CPUs and slots for one bucket.
  [[nodiscard]] sim::Cycles bucket_total(sim::CycleBucket b) const;

  /// Grand total over every cpu, slot and bucket.
  [[nodiscard]] sim::Cycles total() const;

  /// Folds `other` in element-wise, padding with zero rows where shapes
  /// differ. Associative and commutative.
  void merge(const CycleAccount& other);

  /// Checks the accounting identity against per-CPU breakdown totals
  /// (expected[cpu] = SimCpu::breakdown().total()). Returns a
  /// human-readable description per violated CPU; empty means the
  /// identity holds.
  [[nodiscard]] std::vector<std::string> check_identity(
      const std::vector<sim::Cycles>& expected) const;

 private:
  int cpus_ = 0;
  std::deque<std::vector<Row>> slots_;  // slots_[slot][cpu]
};

}  // namespace ssomp::trace
