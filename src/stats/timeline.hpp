// Execution timeline sampling.
//
// A Timeline periodically samples every simulated CPU's current activity
// category (a sampling profiler for the simulated machine). The samples
// reconstruct phase behaviour over time — e.g. how the A-stream's token
// waits interleave with the R-stream's barrier episodes — and export as
// CSV for external plotting.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace ssomp::stats {

/// The collected samples, detached from the engine that produced them so
/// a run's timeline can outlive its machine (core::ExperimentResult
/// carries one per timed run).
struct TimelineData {
  struct Sample {
    sim::Cycles when = 0;
    std::vector<sim::TimeCategory> category;  // one per CPU
  };

  sim::Cycles interval = 0;
  std::vector<std::string> cpu_names;
  std::vector<Sample> samples;

  [[nodiscard]] bool empty() const { return samples.empty(); }

  /// Fraction of samples in which `cpu` was in `cat` within
  /// [from, to) (the whole run by default). Out-of-range `cpu` yields 0.
  [[nodiscard]] double fraction(sim::CpuId cpu, sim::TimeCategory cat,
                                sim::Cycles from = 0,
                                sim::Cycles to = ~sim::Cycles{0}) const;

  /// CSV: header "cycle,cpu0,cpu1,..." then one row per sample with
  /// category names.
  [[nodiscard]] std::string to_csv() const;
};

class Timeline {
 public:
  /// Starts sampling `engine`'s CPUs every `interval` cycles. Must be
  /// called before Engine::run(); sampling stops when the event queue
  /// drains (each tick reschedules itself only while CPUs are alive).
  Timeline(sim::Engine& engine, sim::Cycles interval);

  using Sample = TimelineData::Sample;

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return data_.samples;
  }

  /// The detached sample set (copyable, engine-independent).
  [[nodiscard]] const TimelineData& data() const { return data_; }

  /// Closes out sampling after Engine::run() returns: cancels the pending
  /// tick (so it cannot inflate simulated time) and records one final
  /// sample at the current time. Guarantees at least one sample even for
  /// runs shorter than `interval`. Idempotent per point in time.
  void finalize();

  /// Fraction of samples in which `cpu` was in `cat` within
  /// [from, to) (the whole run by default). Out-of-range `cpu` yields 0.
  [[nodiscard]] double fraction(sim::CpuId cpu, sim::TimeCategory cat,
                                sim::Cycles from = 0,
                                sim::Cycles to = ~sim::Cycles{0}) const {
    return data_.fraction(cpu, cat, from, to);
  }

  /// CSV: header "cycle,cpu0,cpu1,..." then one row per sample with
  /// category names.
  [[nodiscard]] std::string to_csv() const { return data_.to_csv(); }

 private:
  void tick();
  void record_sample();

  sim::Engine& engine_;
  sim::Cycles interval_;
  TimelineData data_;
  sim::Engine::CancelHandle pending_tick_;
};

}  // namespace ssomp::stats
