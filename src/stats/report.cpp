#include "stats/report.hpp"

#include <cctype>
#include <cstdio>
#include <limits>
#include <sstream>

namespace ssomp::stats {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'x' && c != 'e') {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::size_t pad = width[i] - row[i].size();
      const bool right = r > 0 && looks_numeric(row[i]);
      if (i) out << "  ";
      if (right) out << std::string(pad, ' ') << row[i];
      else out << row[i] << std::string(pad, ' ');
    }
    out << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < width.size(); ++i) {
        total += width[i] + (i ? 2 : 0);
      }
      out << std::string(total, '-') << '\n';
    }
  }
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

namespace {

/// snprintf into a right-sized string: a fixed buffer silently truncates
/// huge magnitudes (1e300 renders as 300+ characters with %f).
std::string format_double(double v, int precision, const char* suffix) {
  if (v != v) return std::string("nan") + suffix;
  if (v == std::numeric_limits<double>::infinity()) {
    return std::string("inf") + suffix;
  }
  if (v == -std::numeric_limits<double>::infinity()) {
    return std::string("-inf") + suffix;
  }
  const int n = std::snprintf(nullptr, 0, "%.*f", precision, v);
  if (n <= 0) return std::string("?") + suffix;
  std::string out(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(out.data(), out.size(), "%.*f", precision, v);
  out.resize(static_cast<std::size_t>(n));
  return out + suffix;
}

}  // namespace

std::string Table::fmt(double v, int precision) {
  return format_double(v, precision, "");
}

std::string Table::pct(double fraction, int precision) {
  return format_double(fraction * 100.0, precision, "%");
}

}  // namespace ssomp::stats
