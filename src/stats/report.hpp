// Text-table reporting helpers shared by the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

namespace ssomp::stats {

/// Simple fixed-width table printer: first row is the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment; numeric-looking cells right-aligned.
  [[nodiscard]] std::string to_string() const;

  void print() const;

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssomp::stats
