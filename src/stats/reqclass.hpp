// Shared-data request classification (paper Figures 3 and 5).
//
// Every L2 fill of an application shared-data line in slipstream mode is
// classified, at line death (eviction/invalidation) or at end of run, into
// one of six bins per request kind:
//
//   A-Timely : fetched by the A-stream, referenced by the R-stream after
//              the fill completed — a useful prefetch.
//   A-Late   : the R-stream requested the line while the A-stream's fill
//              was still outstanding (the shared L2 merges the requests).
//   A-Only   : fetched by the A-stream, evicted/invalidated without any
//              R-stream reference — harmful traffic (premature prefetch).
//   R-Timely / R-Late / R-Only : the symmetric bins for lines fetched by
//              the R-stream (R-Timely means the A-stream was behind and
//              benefited from R's fetch).
//
// Request kinds are Read (GETS, from loads) and ReadEx (GETX, from stores,
// upgrades, and the A-stream's store-converted exclusive prefetches).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ssomp::stats {

enum class StreamRole : std::uint8_t { kNone = 0, kR, kA };

enum class ReqKind : std::uint8_t { kRead = 0, kReadEx };
inline constexpr int kReqKindCount = 2;

enum class ReqClass : std::uint8_t {
  kATimely = 0,
  kALate,
  kAOnly,
  kRTimely,
  kRLate,
  kROnly,
};
inline constexpr int kReqClassCount = 6;

[[nodiscard]] constexpr std::string_view to_string(ReqKind k) {
  return k == ReqKind::kRead ? "read" : "read_ex";
}

[[nodiscard]] constexpr std::string_view to_string(ReqClass c) {
  switch (c) {
    case ReqClass::kATimely: return "A-Timely";
    case ReqClass::kALate: return "A-Late";
    case ReqClass::kAOnly: return "A-Only";
    case ReqClass::kRTimely: return "R-Timely";
    case ReqClass::kRLate: return "R-Late";
    case ReqClass::kROnly: return "R-Only";
  }
  return "?";
}

class ReqClassCounts {
 public:
  void add(ReqKind kind, ReqClass cls, std::uint64_t n = 1) {
    counts_[static_cast<int>(kind)][static_cast<int>(cls)] += n;
  }

  [[nodiscard]] std::uint64_t get(ReqKind kind, ReqClass cls) const {
    return counts_[static_cast<int>(kind)][static_cast<int>(cls)];
  }

  [[nodiscard]] std::uint64_t total(ReqKind kind) const {
    std::uint64_t t = 0;
    for (auto c : counts_[static_cast<int>(kind)]) t += c;
    return t;
  }

  /// Fraction of `kind` fills in class `cls`; 0 when no fills were seen.
  [[nodiscard]] double fraction(ReqKind kind, ReqClass cls) const {
    const std::uint64_t t = total(kind);
    return t == 0 ? 0.0 : static_cast<double>(get(kind, cls)) /
                              static_cast<double>(t);
  }

  /// Fraction of fills referenced by both streams ("correlation", §5.1).
  [[nodiscard]] double both_streams_fraction(ReqKind kind) const {
    return fraction(kind, ReqClass::kATimely) +
           fraction(kind, ReqClass::kALate) +
           fraction(kind, ReqClass::kRTimely) +
           fraction(kind, ReqClass::kRLate);
  }

  ReqClassCounts& operator+=(const ReqClassCounts& o) {
    for (int k = 0; k < kReqKindCount; ++k) {
      for (int c = 0; c < kReqClassCount; ++c) {
        counts_[k][c] += o.counts_[k][c];
      }
    }
    return *this;
  }

  void clear() {
    for (auto& row : counts_) row.fill(0);
  }

 private:
  std::array<std::array<std::uint64_t, kReqClassCount>, kReqKindCount>
      counts_{};
};

}  // namespace ssomp::stats
