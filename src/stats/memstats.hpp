// Aggregate memory-system counters.
#pragma once

#include <cstdint>

#include "stats/reqclass.hpp"

namespace ssomp::stats {

struct MemStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t prefetches = 0;

  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;       // includes merges with outstanding fills
  std::uint64_t l2_fills = 0;      // new lines brought into an L2
  std::uint64_t merges = 0;        // requests merged with an outstanding fill

  std::uint64_t fills_local = 0;         // home on requesting node, clean
  std::uint64_t fills_remote_clean = 0;  // remote home, served from memory
  std::uint64_t fills_dirty = 0;         // served by a dirty third-party L2

  std::uint64_t upgrades = 0;            // S->M with no data transfer
  std::uint64_t silent_upgrades = 0;     // E->M (MESI extension)
  std::uint64_t invalidations = 0;       // sharer-invalidation messages
  std::uint64_t self_invalidations = 0;  // slipstream self-invalidation hints
  std::uint64_t writebacks = 0;          // dirty L2 evictions

  ReqClassCounts req_class;  // application shared-data fills only

  MemStats& operator+=(const MemStats& o) {
    loads += o.loads;
    stores += o.stores;
    prefetches += o.prefetches;
    l1_hits += o.l1_hits;
    l2_hits += o.l2_hits;
    l2_fills += o.l2_fills;
    merges += o.merges;
    fills_local += o.fills_local;
    fills_remote_clean += o.fills_remote_clean;
    fills_dirty += o.fills_dirty;
    upgrades += o.upgrades;
    silent_upgrades += o.silent_upgrades;
    invalidations += o.invalidations;
    self_invalidations += o.self_invalidations;
    writebacks += o.writebacks;
    req_class += o.req_class;
    return *this;
  }
};

}  // namespace ssomp::stats
