#include "stats/timeline.hpp"

#include <sstream>

namespace ssomp::stats {

Timeline::Timeline(sim::Engine& engine, sim::Cycles interval)
    : engine_(engine), interval_(interval) {
  SSOMP_CHECK(interval > 0);
  engine_.schedule_after(interval_, [this] { tick(); });
}

void Timeline::tick() {
  Sample s;
  s.when = engine_.now();
  bool any_alive = false;
  for (sim::CpuId c = 0; c < engine_.cpu_count(); ++c) {
    s.category.push_back(engine_.cpu(c).current_category());
    any_alive |= !engine_.cpu(c).finished();
  }
  samples_.push_back(std::move(s));
  // Keep sampling only while some CPU is still running; otherwise the
  // self-rescheduling event would keep the queue alive forever.
  if (any_alive) {
    engine_.schedule_after(interval_, [this] { tick(); });
  }
}

double Timeline::fraction(sim::CpuId cpu, sim::TimeCategory cat,
                          sim::Cycles from, sim::Cycles to) const {
  std::uint64_t in_window = 0;
  std::uint64_t matching = 0;
  for (const Sample& s : samples_) {
    if (s.when < from || s.when >= to) continue;
    ++in_window;
    if (s.category[static_cast<std::size_t>(cpu)] == cat) ++matching;
  }
  return in_window == 0
             ? 0.0
             : static_cast<double>(matching) / static_cast<double>(in_window);
}

std::string Timeline::to_csv() const {
  std::ostringstream out;
  out << "cycle";
  for (sim::CpuId c = 0; c < engine_.cpu_count(); ++c) {
    out << ',' << engine_.cpu(c).name();
  }
  out << '\n';
  for (const Sample& s : samples_) {
    out << s.when;
    for (sim::TimeCategory cat : s.category) {
      out << ',' << to_string(cat);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ssomp::stats
