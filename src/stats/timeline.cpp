#include "stats/timeline.hpp"

#include <sstream>

namespace ssomp::stats {

Timeline::Timeline(sim::Engine& engine, sim::Cycles interval)
    : engine_(engine), interval_(interval) {
  SSOMP_CHECK(interval > 0);
  data_.interval = interval;
  for (sim::CpuId c = 0; c < engine_.cpu_count(); ++c) {
    data_.cpu_names.push_back(engine_.cpu(c).name());
  }
  pending_tick_ = engine_.schedule_cancelable_after(interval_, [this] {
    tick();
  });
}

void Timeline::record_sample() {
  Sample s;
  s.when = engine_.now();
  for (sim::CpuId c = 0; c < engine_.cpu_count(); ++c) {
    s.category.push_back(engine_.cpu(c).current_category());
  }
  data_.samples.push_back(std::move(s));
}

void Timeline::tick() {
  record_sample();
  bool any_alive = false;
  for (sim::CpuId c = 0; c < engine_.cpu_count(); ++c) {
    any_alive |= !engine_.cpu(c).finished();
  }
  // Keep sampling only while some CPU is still running; otherwise the
  // self-rescheduling event would keep the queue alive forever. The tick
  // is cancelable so finalize() can retract it without advancing time.
  if (any_alive) {
    pending_tick_ = engine_.schedule_cancelable_after(interval_, [this] {
      tick();
    });
  } else {
    pending_tick_ = {};
  }
}

void Timeline::finalize() {
  // Retract the pending tick (no-op if it already fired or was dropped).
  pending_tick_.cancel();
  // Record the end state unless a tick already sampled this very cycle —
  // this is what gives sub-interval runs their (single) sample.
  if (data_.samples.empty() || data_.samples.back().when < engine_.now()) {
    record_sample();
  }
}

double TimelineData::fraction(sim::CpuId cpu, sim::TimeCategory cat,
                              sim::Cycles from, sim::Cycles to) const {
  if (cpu < 0) return 0.0;
  const auto idx = static_cast<std::size_t>(cpu);
  std::uint64_t in_window = 0;
  std::uint64_t matching = 0;
  for (const Sample& s : samples) {
    if (s.when < from || s.when >= to) continue;
    if (idx >= s.category.size()) continue;
    ++in_window;
    if (s.category[idx] == cat) ++matching;
  }
  return in_window == 0
             ? 0.0
             : static_cast<double>(matching) / static_cast<double>(in_window);
}

std::string TimelineData::to_csv() const {
  std::ostringstream out;
  out << "cycle";
  for (const std::string& name : cpu_names) {
    out << ',' << name;
  }
  out << '\n';
  for (const Sample& s : samples) {
    out << s.when;
    for (sim::TimeCategory cat : s.category) {
      out << ',' << to_string(cat);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace ssomp::stats
