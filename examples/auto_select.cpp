// Automatic per-region mode selection — the paper\'s closing vision made
// executable: probe a workload under the four evaluated configurations
// and emit the SLIPSTREAM directive each region should carry.
//
//   ./auto_select [APP]
#include <cstdio>

#include "apps/registry.hpp"
#include "core/ssomp.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "CG";
  machine::MachineConfig mc;
  mc.ncmp = 16;
  mc.mem = mem::MemParams::scaled_for_benchmarks();
  std::printf("Probing %s under single / double / slip-L1 / slip-G0...\n\n",
              app.c_str());
  const auto advice = core::advise(
      mc, apps::make_workload(app, apps::AppScale::kBench));
  std::fputs(core::format_advice(advice).c_str(), stdout);
  std::printf("\nPaste the suggested directives onto the matching parallel\n"
              "regions (or set OMP_SLIPSTREAM for the program-wide pick) —\n"
              "the same binary serves every choice.\n");
  return 0;
}
