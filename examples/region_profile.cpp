// Region profile: per-parallel-region execution records for a workload —
// which regions dominate, and what the slipstream machinery did in each.
//
//   ./region_profile [APP]
#include <cstdio>

#include "apps/registry.hpp"
#include "core/ssomp.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "MG";

  machine::MachineConfig mc;
  mc.ncmp = 16;
  mc.mem = mem::MemParams::scaled_for_benchmarks();
  machine::Machine machine(mc);
  rt::RuntimeOptions opts;
  opts.mode = rt::ExecutionMode::kSlipstream;
  opts.slip = slip::SlipstreamConfig::one_token_local();
  rt::Runtime runtime(machine, opts);

  auto workload = apps::make_workload(app, apps::AppScale::kBench)(runtime);
  const sim::Cycles total =
      runtime.run([&](rt::SerialCtx& sc) { workload->run(sc); });
  const auto verdict = workload->verify();
  std::printf("%s under slipstream (L1): %llu cycles, %s\n\n", app.c_str(),
              static_cast<unsigned long long>(total),
              verdict.verified ? "verified" : "VERIFICATION FAILED");

  stats::Table table({"region", "mode", "sync", "threads", "cycles",
                      "share", "tokens", "conv stores", "dropped",
                      "fwd chunks"});
  for (const auto& r : runtime.region_records()) {
    table.add_row(
        {std::to_string(r.index), std::string(to_string(r.mode)),
         r.slip.enabled()
             ? std::string(to_string(r.slip.type)) + "," +
                   std::to_string(r.slip.tokens)
             : "-",
         std::to_string(r.nthreads), std::to_string(r.cycles),
         stats::Table::pct(static_cast<double>(r.cycles) /
                           static_cast<double>(total)),
         std::to_string(r.tokens_consumed),
         std::to_string(r.converted_stores), std::to_string(r.dropped_stores),
         std::to_string(r.forwarded_chunks)});
  }
  table.print();
  std::printf("\nThe per-region view is what the paper's per-region\n"
              "SLIPSTREAM directive acts on: regions with high token churn\n"
              "and converted stores benefit; serial-ish regions do not.\n");
  return verdict.verified ? 0 : 1;
}
