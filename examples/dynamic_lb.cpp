// Dynamic scheduling with load imbalance: how the R-stream's chunk
// decisions are forwarded to its A-stream (paper §3.2.2).
//
// The workload is a triangular loop (cost of iteration i grows with i), a
// classic load-balancing case where dynamic scheduling beats static — and
// a worst case for slipstream's static bound computation, exercising the
// syscall-semaphore forwarding path instead.
#include <cstdio>

#include "core/ssomp.hpp"

using namespace ssomp;

namespace {

constexpr long kTasks = 384;

double run(rt::ExecutionMode mode, front::ScheduleKind kind, long chunk,
           double* checksum) {
  machine::MachineConfig mc;
  mc.ncmp = 16;
  mc.mem = mem::MemParams::scaled_for_benchmarks();
  machine::Machine machine(mc);
  rt::RuntimeOptions opts;
  opts.mode = mode;
  opts.slip = slip::SlipstreamConfig::zero_token_global();
  rt::Runtime runtime(machine, opts);

  rt::SharedArray<double> work(runtime, kTasks * 64, "work");
  rt::SharedArray<double> out(runtime, kTasks, "out");
  for (std::size_t i = 0; i < work.size(); ++i) {
    work.host(i) = 1.0 / static_cast<double>(i + 1);
  }

  front::ScheduleClause sched;
  sched.kind = kind;
  sched.chunk = chunk;

  double sum = 0.0;
  const sim::Cycles cycles = runtime.run([&](rt::SerialCtx& sc) {
    sc.parallel([&](rt::ThreadCtx& t) {
      t.for_loop(0, kTasks, sched, [&](long i) {
        // Triangular cost: task i touches i/6+1 blocks of shared data.
        const long blocks = i / 6 + 1;
        double acc = 0.0;
        for (long b = 0; b < blocks && b < 64; ++b) {
          acc += work.read(t, static_cast<std::size_t>(i * 64 + b % 64));
          t.compute(400);
        }
        out.write(t, static_cast<std::size_t>(i), acc);
      });
      double local = 0.0;
      t.for_loop(
          0, kTasks, front::ScheduleClause{},
          [&](long i) { local += out.read(t, static_cast<std::size_t>(i)); },
          /*nowait=*/true);
      const double total = t.reduce_sum(local);
      if (t.id() == 0 && !t.is_a_stream()) sum = total;
    });
  });
  *checksum = sum;
  return static_cast<double>(cycles);
}

}  // namespace

int main() {
  std::printf("Load-imbalanced loop: scheduling x execution mode\n\n");
  struct Row {
    const char* label;
    rt::ExecutionMode mode;
    front::ScheduleKind kind;
    long chunk;
  };
  const Row rows[] = {
      {"single + static", rt::ExecutionMode::kSingle,
       front::ScheduleKind::kStatic, 0},
      {"single + dynamic,4", rt::ExecutionMode::kSingle,
       front::ScheduleKind::kDynamic, 4},
      {"single + guided", rt::ExecutionMode::kSingle,
       front::ScheduleKind::kGuided, 2},
      {"slipstream + static", rt::ExecutionMode::kSlipstream,
       front::ScheduleKind::kStatic, 0},
      {"slipstream + dynamic,4", rt::ExecutionMode::kSlipstream,
       front::ScheduleKind::kDynamic, 4},
      {"slipstream + guided", rt::ExecutionMode::kSlipstream,
       front::ScheduleKind::kGuided, 2},
  };
  double ref = -1.0;
  double base = 0.0;
  for (const Row& r : rows) {
    double checksum = 0.0;
    const double cycles = run(r.mode, r.kind, r.chunk, &checksum);
    if (ref < 0) {
      ref = checksum;
      base = cycles;
    }
    std::printf("%-24s %12.0f cycles (%.3fx)  checksum=%.6f%s\n", r.label,
                cycles, base / cycles, checksum,
                checksum == ref ? "" : "  MISMATCH!");
    if (checksum != ref) return 1;
  }
  std::printf("\nUnder dynamic/guided scheduling the A-stream cannot\n"
              "precompute its assignment; it waits on the pair's syscall\n"
              "semaphore for the R-stream's published decision and then\n"
              "prefetches exactly the chunk its R-stream will execute.\n");
  return 0;
}
