// Quickstart: run the CG kernel on the simulated 16-CMP machine in all
// three execution modes and see slipstream's effect.
//
//   $ ./quickstart
//
// This is the smallest end-to-end tour of the public API: build a
// machine, pick an execution mode, run a workload, read the results.
#include <cstdio>

#include "apps/cg.hpp"
#include "core/ssomp.hpp"

using namespace ssomp;

int main() {
  std::printf("ssomp quickstart: NAS CG on a simulated 16-CMP DSM machine\n\n");

  core::ExperimentResult results[3];
  const char* names[3] = {"single (1 task/CMP)", "double (2 tasks/CMP)",
                          "slipstream (A/R pairs)"};
  for (int m = 0; m < 3; ++m) {
    // 1. Describe the machine: 16 dual-processor CMPs, Table-1 latencies,
    //    cache capacities scaled to the reduced problem class.
    machine::MachineConfig mc;
    mc.ncmp = 16;
    mc.mem = mem::MemParams::scaled_for_benchmarks();
    machine::Machine machine(mc);

    // 2. Pick the execution mode. The same program ("binary") runs in all
    //    three — that is the point of the extension.
    rt::RuntimeOptions opts;
    opts.mode = static_cast<rt::ExecutionMode>(m);
    opts.slip = slip::SlipstreamConfig::one_token_local();
    rt::Runtime runtime(machine, opts);

    // 3. Build and run the workload.
    apps::Cg cg(runtime, apps::CgParams{});
    const sim::Cycles cycles =
        runtime.run([&](rt::SerialCtx& sc) { cg.run(sc); });

    // 4. Read out results.
    results[m].cycles = cycles;
    const auto v = cg.verify();
    std::printf("%-24s %10llu cycles   zeta=%.6f  %s\n", names[m],
                static_cast<unsigned long long>(cycles), cg.zeta(),
                v.verified ? "verified" : "VERIFICATION FAILED");
  }

  std::printf("\nspeedup over single: double %.3fx, slipstream %.3fx\n",
              static_cast<double>(results[0].cycles) / results[1].cycles,
              static_cast<double>(results[0].cycles) / results[2].cycles);
  std::printf("\nSlipstream applies each CMP's second processor to\n"
              "prefetching for the first instead of more parallelism —\n"
              "the win when communication dominates. Try bench/ for the\n"
              "full figure reproductions.\n");
  return 0;
}
