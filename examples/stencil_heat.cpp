// A hand-written workload on the public API: 2D heat diffusion (Jacobi)
// with per-region slipstream directives in the paper's syntax.
//
// Shows what a *user* of the slipstream-aware runtime writes: shared
// arrays, parallel regions with worksharing loops, reductions — and the
// SLIPSTREAM directive controlling the A/R synchronization per region,
// including a serial-part global setting and RUNTIME_SYNC deferring to
// OMP_SLIPSTREAM.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/ssomp.hpp"

using namespace ssomp;

namespace {

constexpr long kN = 192;        // grid edge (with boundary shell)
constexpr int kSteps = 12;      // Jacobi sweeps
constexpr double kAlpha = 0.2;  // diffusion coefficient

double run_heat(rt::ExecutionMode mode, const std::string& env,
                double* out_norm) {
  machine::MachineConfig mc;
  mc.ncmp = 16;
  mc.mem = mem::MemParams::scaled_for_benchmarks();
  machine::Machine machine(mc);
  rt::RuntimeOptions opts;
  opts.mode = mode;
  opts.omp_slipstream_env = env;
  rt::Runtime runtime(machine, opts);

  rt::SharedArray<double> u(runtime, kN * kN, "heat.u");
  rt::SharedArray<double> unew(runtime, kN * kN, "heat.unew");
  // Hot spot in the middle, cold boundary.
  for (long j = kN / 4; j < 3 * kN / 4; ++j) {
    for (long i = kN / 4; i < 3 * kN / 4; ++i) {
      u.host(static_cast<std::size_t>(j * kN + i)) = 100.0;
    }
  }

  double norm = 0.0;
  const sim::Cycles cycles = runtime.run([&](rt::SerialCtx& sc) {
    // Serial-part directive: global setting for the whole program (§3.3).
    sc.slipstream_directive("SLIPSTREAM(RUNTIME_SYNC)");

    for (int step = 0; step < kSteps; ++step) {
      // The sweep region inherits the global setting (here RUNTIME_SYNC,
      // resolved through OMP_SLIPSTREAM).
      sc.parallel([&](rt::ThreadCtx& t) {
        std::vector<double> row(kN);
        t.for_loop(1, kN - 1, front::ScheduleClause{}, [&](long j) {
          const auto b = static_cast<std::size_t>(j * kN);
          u.scan_read(t, b - kN, b + 2 * kN);  // rows j-1, j, j+1
          for (long i = 0; i < kN; ++i) {
            const auto c = b + static_cast<std::size_t>(i);
            if (i == 0 || i == kN - 1) {
              row[static_cast<std::size_t>(i)] = u.host(c);
              continue;
            }
            row[static_cast<std::size_t>(i)] =
                u.host(c) + kAlpha * (u.host(c - 1) + u.host(c + 1) +
                                      u.host(c - kN) + u.host(c + kN) -
                                      4.0 * u.host(c));
          }
          t.compute(kN * 8);
          unew.scan_write(t, b, b + kN, row.data());
        });
      });
      std::swap(u.host_vector(), unew.host_vector());
    }

    // Final norm with a one-region reduction; this region overrides the
    // global setting with a tight zero-token global sync (§3.3 precedence).
    sc.parallel(
        [&](rt::ThreadCtx& t) {
          double local = 0.0;
          t.for_loop(
              1, kN - 1, front::ScheduleClause{},
              [&](long j) {
                const auto b = static_cast<std::size_t>(j * kN);
                u.scan_read(t, b, b + kN);
                for (long i = 1; i < kN - 1; ++i) {
                  const double v = u.host(b + static_cast<std::size_t>(i));
                  local += v * v;
                }
                t.compute(kN * 2);
              },
              /*nowait=*/true);
          const double total = t.reduce_sum(local);
          if (t.id() == 0 && !t.is_a_stream()) norm = std::sqrt(total);
        },
        "SLIPSTREAM(GLOBAL_SYNC, 0)");
  });
  *out_norm = norm;
  return static_cast<double>(cycles);
}

}  // namespace

int main() {
  std::printf("2D heat diffusion with per-region slipstream directives\n\n");
  double n1 = 0, n2 = 0, n3 = 0;
  const double single = run_heat(rt::ExecutionMode::kSingle, "", &n1);
  // Same binary, slipstream activated through the environment (§3.3).
  const double slip =
      run_heat(rt::ExecutionMode::kSlipstream, "LOCAL_SYNC,1", &n2);
  const double off = run_heat(rt::ExecutionMode::kSlipstream, "NONE", &n3);

  std::printf("single:                     %12.0f cycles  norm=%.6f\n",
              single, n1);
  std::printf("OMP_SLIPSTREAM=LOCAL_SYNC,1 %12.0f cycles  norm=%.6f  "
              "(%.3fx)\n",
              slip, n2, single / slip);
  std::printf("OMP_SLIPSTREAM=NONE         %12.0f cycles  norm=%.6f  "
              "(falls back to single tasking)\n",
              off, n3);
  if (n1 != n2 || n1 != n3) {
    std::printf("ERROR: results differ across modes!\n");
    return 1;
  }
  std::printf("\nIdentical numerical results in every mode — the A-stream\n"
              "never commits a store, so speculation cannot corrupt data.\n");
  return 0;
}
