/* CG main loop annotated with OpenMP + the slipstream extension, in the
 * paper's syntax. Feed this to tools/slipreport to see how the
 * slipstream-aware compiler will treat each construct. */

#pragma omp slipstream(RUNTIME_SYNC)

void conj_grad(void) {
#pragma omp parallel slipstream(LOCAL_SYNC, 1)
  {
#pragma omp for schedule(static)
    for (int i = 0; i < n; i++) { q[i] = 0.0; r[i] = x[i]; p[i] = x[i]; }

    for (int it = 0; it < 25; it++) {
#pragma omp for schedule(static) nowait
      for (int i = 0; i < n; i++) { /* q = A p */ }
#pragma omp barrier

#pragma omp single
      { rho0 = rho; }

#pragma omp for schedule(dynamic, 43)
      for (int i = 0; i < n; i++) { /* z, r update */ }

#pragma omp master
      { /* log progress */ }

#pragma omp critical
      { global_d += local_d; }

#pragma omp atomic
      counter++;

#pragma omp flush
    }
  }
}
