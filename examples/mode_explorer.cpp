// Mode explorer: sweep one workload across machine sizes, execution modes
// and A/R synchronization settings from the command line.
//
//   ./mode_explorer [APP] [NCMP...]
//   ./mode_explorer MG 4 8 16
//
// Useful for finding the operating point where slipstream overtakes
// double-mode execution for a given application — the per-region decision
// §3 of the paper argues for.
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/registry.hpp"
#include "core/ssomp.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  std::string app = argc > 1 ? argv[1] : "MG";
  std::vector<int> sizes;
  for (int i = 2; i < argc; ++i) sizes.push_back(std::atoi(argv[i]));
  if (sizes.empty()) sizes = {4, 8, 16};

  bool known = app == "EP";
  for (const auto& s : apps::paper_suite()) known |= s.name == app;
  if (!known) {
    std::fprintf(stderr, "unknown app '%s' (try BT CG LU MG SP EP)\n",
                 app.c_str());
    return 1;
  }

  std::printf("Mode explorer: %s\n\n", app.c_str());
  stats::Table table({"CMPs", "mode", "sync", "cycles", "speedup",
                      "busy", "stall", "barrier"});
  for (int ncmp : sizes) {
    struct Variant {
      const char* mode_name;
      rt::ExecutionMode mode;
      const char* sync_name;
      slip::SlipstreamConfig slip;
    };
    const Variant variants[] = {
        {"single", rt::ExecutionMode::kSingle, "-",
         slip::SlipstreamConfig::disabled()},
        {"double", rt::ExecutionMode::kDouble, "-",
         slip::SlipstreamConfig::disabled()},
        {"slipstream", rt::ExecutionMode::kSlipstream, "L1",
         slip::SlipstreamConfig::one_token_local()},
        {"slipstream", rt::ExecutionMode::kSlipstream, "G0",
         slip::SlipstreamConfig::zero_token_global()},
        {"slipstream", rt::ExecutionMode::kSlipstream, "L2",
         {.type = slip::SyncType::kLocal, .tokens = 2}},
    };
    sim::Cycles base = 0;
    for (const Variant& v : variants) {
      core::ExperimentConfig cfg;
      cfg.machine.ncmp = ncmp;
      cfg.machine.mem = mem::MemParams::scaled_for_benchmarks();
      cfg.runtime.mode = v.mode;
      cfg.runtime.slip = v.slip;
      const auto r = core::run_experiment(
          cfg, apps::make_workload(app, apps::AppScale::kBench));
      if (!r.workload.verified) {
        std::fprintf(stderr, "verification failed: %s\n",
                     r.workload.detail.c_str());
        return 1;
      }
      if (base == 0) base = r.cycles;
      table.add_row({std::to_string(ncmp), v.mode_name, v.sync_name,
                     std::to_string(r.cycles),
                     stats::Table::fmt(static_cast<double>(base) / r.cycles, 3),
                     stats::Table::pct(r.fraction(sim::TimeCategory::kBusy)),
                     stats::Table::pct(
                         r.fraction(sim::TimeCategory::kMemStall)),
                     stats::Table::pct(r.barrier_fraction())});
    }
  }
  table.print();
  return 0;
}
