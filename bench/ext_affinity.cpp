// Extension study: affinity scheduling (the proposal the paper's §3.2.2
// cites as the fix for dynamic scheduling's cache-affinity loss),
// interacting with slipstream mode.
//
// Two questions:
//   1. On an iterative, balanced workload (MG), does affinity scheduling
//      recover static-like locality that plain dynamic scheduling loses?
//   2. Does slipstream still help on top of each scheduler?
#include "bench/bench_common.hpp"

using namespace ssomp;

int main() {
  std::printf("=== Extension: affinity scheduling x slipstream (MG, 16 "
              "CMPs) ===\n\n");

  stats::Table table({"schedule", "mode", "cycles", "vs static-single",
                      "remote fills", "sched"});
  front::ScheduleClause scheds[3];
  scheds[0].kind = front::ScheduleKind::kStatic;
  scheds[1].kind = front::ScheduleKind::kDynamic;
  scheds[1].chunk = 1;
  scheds[2].kind = front::ScheduleKind::kAffinity;
  const char* sched_names[3] = {"static", "dynamic", "affinity"};

  sim::Cycles base = 0;
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 2; ++m) {
      const bool slip = m == 1;
      const auto r = bench::run_mode(
          "MG",
          slip ? rt::ExecutionMode::kSlipstream : rt::ExecutionMode::kSingle,
          slip ? slip::SlipstreamConfig::zero_token_global()
               : slip::SlipstreamConfig::disabled(),
          scheds[s]);
      bench::check_verified("MG", r);
      if (base == 0) base = r.cycles;
      table.add_row(
          {sched_names[s], slip ? "slipstream" : "single",
           std::to_string(r.cycles),
           stats::Table::fmt(static_cast<double>(base) / r.cycles, 3),
           std::to_string(r.mem.fills_remote_clean + r.mem.fills_dirty),
           stats::Table::pct(r.fraction(sim::TimeCategory::kScheduling))});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: dynamic scheduling loses cache affinity on this\n"
      "iterative workload (remote fills jump vs static); affinity\n"
      "scheduling recovers most of the locality while keeping dynamic's\n"
      "balancing; slipstream helps on top of every scheduler, most where\n"
      "the remaining stall time is largest.\n");
  return 0;
}
