// Extension study: affinity scheduling (the proposal the paper's §3.2.2
// cites as the fix for dynamic scheduling's cache-affinity loss),
// interacting with slipstream mode.
//
// Two questions:
//   1. On an iterative, balanced workload (MG), does affinity scheduling
//      recover static-like locality that plain dynamic scheduling loses?
//   2. Does slipstream still help on top of each scheduler?
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Extension: affinity scheduling x slipstream (MG, 16 "
              "CMPs) ===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("ext_affinity");
  plan.apps = {"MG"};
  plan.modes = {core::parse_mode_axis("single").value,
                core::parse_mode_axis("slip-G0").value};
  front::ScheduleClause dynamic_sched;
  dynamic_sched.kind = front::ScheduleKind::kDynamic;
  dynamic_sched.chunk = 1;
  front::ScheduleClause affinity_sched;
  affinity_sched.kind = front::ScheduleKind::kAffinity;
  plan.schedules = {{"static", {}},
                    {"dynamic", dynamic_sched},
                    {"affinity", affinity_sched}};
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"schedule", "mode", "cycles", "vs static-single",
                      "remote fills", "sched"});
  const sim::Cycles base = bench::at(run, "MG/single/static").cycles;
  for (const core::SchedAxis& sched : plan.schedules) {
    for (const core::ModeAxis& mode : plan.modes) {
      const auto& r = bench::at(run, "MG/" + mode.name + "/" + sched.name);
      table.add_row(
          {sched.name, mode.mode == rt::ExecutionMode::kSingle ? "single"
                                                               : "slipstream",
           std::to_string(r.cycles),
           stats::Table::fmt(static_cast<double>(base) / r.cycles, 3),
           std::to_string(r.mem.fills_remote_clean + r.mem.fills_dirty),
           stats::Table::pct(r.fraction(sim::TimeCategory::kScheduling))});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: dynamic scheduling loses cache affinity on this\n"
      "iterative workload (remote fills jump vs static); affinity\n"
      "scheduling recovers most of the locality while keeping dynamic's\n"
      "balancing; slipstream helps on top of every scheduler, most where\n"
      "the remaining stall time is largest.\n");
  return 0;
}
