// Figure 4 reproduction: execution-time breakdown under dynamic
// scheduling, base (one task/CMP) vs slipstream zero-token global.
//
// Paper setup (§5.2): LU is excluded (its scheduling is programmatically
// static); CG uses chunk = half the static block assignment, the others
// the compiler default; only G0 synchronization makes sense because the
// per-chunk forwarding adds synchronization points that subsume looser
// modes. Expected shape: scheduling overhead is a visible component of
// the base, and slipstream recovers 5-20% (12% average in the paper).
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 4: dynamic scheduling, base vs slipstream-G0 "
              "(16 CMPs) ===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("fig4_dynamic");
  for (const auto& spec : apps::paper_suite()) {
    if (spec.in_dynamic_suite) plan.apps.push_back(spec.name);
  }
  plan.modes = {core::parse_mode_axis("single").value,
                core::parse_mode_axis("slip-G0").value};
  plan.schedules = {{"dynamic", {}}};
  // The paper's per-app dynamic chunk sizes (CG: half the static block).
  plan.schedule_override = [](const core::PlanPoint& p) {
    return apps::dynamic_schedule_for(p.app, apps::AppScale::kBench, 16);
  };
  const core::SweepRun run = bench::run_plan(plan, args);

  std::vector<std::string> header = {"benchmark", "mode", "cycles",
                                     "speedup"};
  header.insert(header.end(), bench::kBreakdownHeader.begin(),
                bench::kBreakdownHeader.end());
  stats::Table table(header);

  double gain_product = 1.0;
  double sched_sum = 0.0;
  int n = 0;
  for (const std::string& app : plan.apps) {
    const auto& base = bench::at(run, app + "/single");
    const auto& slip = bench::at(run, app + "/slip-G0");
    const std::pair<const char*, const core::ExperimentResult*> rows[] = {
        {"base", &base}, {"slip-G0", &slip}};
    for (const auto& [label, result] : rows) {
      std::vector<std::string> row = {
          app, label, std::to_string(result->cycles),
          stats::Table::fmt(core::speedup(base, *result), 3)};
      const auto cells = bench::breakdown_cells(*result);
      row.insert(row.end(), cells.begin(), cells.end());
      table.add_row(row);
    }
    gain_product *= static_cast<double>(base.cycles) / slip.cycles;
    sched_sum += base.fraction(sim::TimeCategory::kScheduling);
    ++n;
    std::printf("%s: slipstream gain over dynamic base: %+.1f%%\n",
                app.c_str(),
                100.0 * (static_cast<double>(base.cycles) / slip.cycles - 1));
  }
  std::printf("\n");
  table.print();
  std::printf("\nAverage gain: %+.1f%% (paper: ~12%%)\n",
              100.0 * (std::pow(gain_product, 1.0 / n) - 1.0));
  std::printf("Average base scheduling overhead: %.1f%% (paper: ~11%%)\n",
              100.0 * sched_sum / n);
  return 0;
}
