// Extension study: network-latency sensitivity.
//
// The paper's thesis is that slipstream pays off "when the overheads
// caused by communication and synchronization" dominate. This sweep
// scales the interconnect latency (NetTime, with the NI/DC times scaled
// proportionally) and tracks each mode: slipstream's margin over both
// baselines should widen as remote misses get more expensive, and the
// machine's crossover point should shift accordingly.
#include "apps/registry.hpp"
#include "bench/bench_common.hpp"

using namespace ssomp;

namespace {

core::ExperimentResult run_scaled(const std::string& app, double net_scale,
                                  rt::ExecutionMode mode,
                                  slip::SlipstreamConfig slip) {
  core::ExperimentConfig cfg;
  cfg.machine = bench::paper_machine();
  cfg.machine.mem.net_ns *= net_scale;
  cfg.machine.mem.ni_remote_dc_ns *= net_scale;
  cfg.runtime.mode = mode;
  cfg.runtime.slip = slip;
  return core::run_experiment(
      cfg, apps::make_workload(app, apps::AppScale::kBench));
}

}  // namespace

int main() {
  std::printf("=== Extension: interconnect-latency sweep (MG, CG; 16 CMPs) "
              "===\n\n");
  stats::Table table({"benchmark", "NetTime", "remote miss", "single cycles",
                      "double", "slip best", "best sync",
                      "slip gain vs best"});
  struct SyncOpt {
    const char* name;
    slip::SlipstreamConfig cfg;
  };
  const SyncOpt syncs[] = {
      {"G0", slip::SlipstreamConfig::zero_token_global()},
      {"L0", {.type = slip::SyncType::kLocal, .tokens = 0}},
      {"L1", slip::SlipstreamConfig::one_token_local()},
  };
  for (const std::string app : {"MG", "CG"}) {
    for (double scale : {0.5, 1.0, 2.0, 4.0}) {
      const auto single = run_scaled(app, scale, rt::ExecutionMode::kSingle,
                                     slip::SlipstreamConfig::disabled());
      const auto dbl = run_scaled(app, scale, rt::ExecutionMode::kDouble,
                                  slip::SlipstreamConfig::disabled());
      bench::check_verified(app, single);
      bench::check_verified(app, dbl);
      sim::Cycles best_slip = ~sim::Cycles{0};
      const char* best_sync = "?";
      for (const SyncOpt& sync : syncs) {
        const auto r = run_scaled(app, scale, rt::ExecutionMode::kSlipstream,
                                  sync.cfg);
        bench::check_verified(app, r);
        if (r.cycles < best_slip) {
          best_slip = r.cycles;
          best_sync = sync.name;
        }
      }
      mem::MemParams p;
      p.net_ns *= scale;
      p.ni_remote_dc_ns *= scale;
      const double best_base = static_cast<double>(
          std::min(single.cycles, dbl.cycles));
      table.add_row(
          {app, std::to_string(static_cast<int>(50 * scale)) + "ns",
           std::to_string(static_cast<unsigned long long>(
               p.min_remote_miss_cycles())) +
               "cy",
           std::to_string(single.cycles),
           stats::Table::fmt(core::speedup(single, dbl), 3),
           stats::Table::fmt(static_cast<double>(single.cycles) / best_slip,
                             3),
           best_sync,
           stats::Table::pct(best_base / static_cast<double>(best_slip) -
                             1.0)});
    }
  }
  table.print();
  std::printf(
      "\nMeasured shape: the slipstream margin widens as the interconnect\n"
      "slows — and the best A/R synchronization FLIPS from loose (L1) at\n"
      "low latency to tight (L0/G0) at high latency, where premature\n"
      "prefetches are too expensive to risk. Exactly the motivation for\n"
      "the paper's runtime-selectable SLIPSTREAM(type, tokens) directive.\n");
  return 0;
}
