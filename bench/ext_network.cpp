// Extension study: network-latency sensitivity.
//
// The paper's thesis is that slipstream pays off "when the overheads
// caused by communication and synchronization" dominate. This sweep
// scales the interconnect latency (NetTime, with the NI/DC times scaled
// proportionally) and tracks each mode: slipstream's margin over both
// baselines should widen as remote misses get more expensive, and the
// machine's crossover point should shift accordingly.
#include "bench/bench_common.hpp"

using namespace ssomp;

namespace {

core::ConfigVariant net_variant(const std::string& name, double scale) {
  return {name, [scale](core::ExperimentConfig& cfg) {
            cfg.machine.mem.net_ns *= scale;
            cfg.machine.mem.ni_remote_dc_ns *= scale;
          }};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Extension: interconnect-latency sweep (MG, CG; 16 CMPs) "
              "===\n\n");

  const std::pair<const char*, double> scales[] = {
      {"net0.5x", 0.5}, {"net1x", 1.0}, {"net2x", 2.0}, {"net4x", 4.0}};
  const char* slip_modes[] = {"slip-G0", "slip-L0", "slip-L1"};

  core::ExperimentPlan plan = bench::paper_plan("ext_network");
  plan.apps = {"MG", "CG"};
  plan.modes = {core::parse_mode_axis("single").value,
                core::parse_mode_axis("double").value};
  for (const char* mode : slip_modes) {
    plan.modes.push_back(core::parse_mode_axis(mode).value);
  }
  for (const auto& [name, scale] : scales) {
    plan.variants.push_back(net_variant(name, scale));
  }
  plan.variants.erase(plan.variants.begin());  // drop the default variant
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"benchmark", "NetTime", "remote miss", "single cycles",
                      "double", "slip best", "best sync",
                      "slip gain vs best"});
  for (const std::string& app : plan.apps) {
    for (const auto& [variant, scale] : scales) {
      const std::string suffix = "/" + std::string(variant);
      const auto& single = bench::at(run, app + "/single" + suffix);
      const auto& dbl = bench::at(run, app + "/double" + suffix);
      sim::Cycles best_slip = ~sim::Cycles{0};
      const char* best_sync = "?";
      for (const char* mode : slip_modes) {
        const auto& r = bench::at(run, app + "/" + mode + suffix);
        if (r.cycles < best_slip) {
          best_slip = r.cycles;
          best_sync = mode + 5;  // "G0" / "L0" / "L1"
        }
      }
      mem::MemParams p;
      p.net_ns *= scale;
      p.ni_remote_dc_ns *= scale;
      const double best_base = static_cast<double>(
          std::min(single.cycles, dbl.cycles));
      table.add_row(
          {app, std::to_string(static_cast<int>(50 * scale)) + "ns",
           std::to_string(static_cast<unsigned long long>(
               p.min_remote_miss_cycles())) +
               "cy",
           std::to_string(single.cycles),
           stats::Table::fmt(core::speedup(single, dbl), 3),
           stats::Table::fmt(static_cast<double>(single.cycles) / best_slip,
                             3),
           best_sync,
           stats::Table::pct(best_base / static_cast<double>(best_slip) -
                             1.0)});
    }
  }
  table.print();
  std::printf(
      "\nMeasured shape: the slipstream margin widens as the interconnect\n"
      "slows — and the best A/R synchronization FLIPS from loose (L1) at\n"
      "low latency to tight (L0/G0) at high latency, where premature\n"
      "prefetches are too expensive to risk. Exactly the motivation for\n"
      "the paper's runtime-selectable SLIPSTREAM(type, tokens) directive.\n");
  return 0;
}
