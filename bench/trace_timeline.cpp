// Execution-timeline trace: samples every processor's activity category
// through an MG run and reports how an A/R pair spends its time across
// run quarters. Writes the full per-CPU trace to timeline_slipstream.csv
// for external plotting (one row per 2000-cycle sample) and the event-
// level protocol trace to trace_slipstream.json (open in Perfetto).
#include <fstream>

#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Timeline trace: MG under slipstream (one-token local) "
              "===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("trace_timeline");
  plan.apps = {"MG"};
  plan.modes = {core::parse_mode_axis("slip-L1").value};
  plan.base.timeline_interval = 2000;
  plan.base.runtime.trace.enabled = true;
  const core::SweepRun run = bench::run_plan(plan, args);
  const core::ExperimentResult& r = run.records[0].result;
  const sim::Cycles total = r.cycles;

  std::printf("run: %llu cycles, %zu samples (every 2000 cycles)\n\n",
              static_cast<unsigned long long>(total),
              r.timeline.samples.size());

  // How CMP 3's R-stream and A-stream spend each quarter.
  const auto& mc = run.points[0].config.machine;
  const sim::CpuId r_cpu = 3 * mc.cpus_per_cmp;
  const sim::CpuId a_cpu = r_cpu + 1;
  stats::Table table({"quarter", "R busy", "R stall", "R barrier", "A busy",
                      "A stall", "A token-wait"});
  for (int q = 0; q < 4; ++q) {
    const sim::Cycles from = total / 4 * q;
    const sim::Cycles to = q == 3 ? total : total / 4 * (q + 1);
    using sim::TimeCategory;
    table.add_row(
        {"Q" + std::to_string(q + 1),
         stats::Table::pct(r.timeline.fraction(r_cpu, TimeCategory::kBusy,
                                               from, to)),
         stats::Table::pct(r.timeline.fraction(r_cpu, TimeCategory::kMemStall,
                                               from, to)),
         stats::Table::pct(r.timeline.fraction(r_cpu, TimeCategory::kBarrier,
                                               from, to)),
         stats::Table::pct(r.timeline.fraction(a_cpu, TimeCategory::kBusy,
                                               from, to)),
         stats::Table::pct(r.timeline.fraction(a_cpu, TimeCategory::kMemStall,
                                               from, to)),
         stats::Table::pct(r.timeline.fraction(a_cpu, TimeCategory::kTokenWait,
                                               from, to))});
  }
  table.print();

  std::ofstream csv("timeline_slipstream.csv");
  csv << r.timeline_csv;
  std::printf("\nfull trace written to timeline_slipstream.csv (%zu rows, "
              "%d CPUs)\n",
              r.timeline.samples.size(), mc.ncpus());

  std::ofstream json("trace_slipstream.json");
  json << r.trace_json;
  std::printf("protocol trace written to trace_slipstream.json "
              "(%llu events, %llu evicted) — open in Perfetto\n",
              static_cast<unsigned long long>(r.trace_counts.recorded),
              static_cast<unsigned long long>(r.trace_counts.dropped));
  return 0;
}
