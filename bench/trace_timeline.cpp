// Execution-timeline trace: samples every processor's activity category
// through an MG run and reports how an A/R pair spends its time across
// run quarters. Writes the full per-CPU trace to timeline_slipstream.csv
// for external plotting (one row per 2000-cycle sample) and the event-
// level protocol trace to trace_slipstream.json (open in Perfetto).
#include <cstdio>
#include <fstream>

#include "apps/registry.hpp"
#include "bench/bench_common.hpp"
#include "stats/timeline.hpp"
#include "trace/chrome.hpp"

using namespace ssomp;

int main() {
  std::printf("=== Timeline trace: MG under slipstream (one-token local) "
              "===\n\n");

  machine::MachineConfig mc = bench::paper_machine();
  machine::Machine machine(mc);
  rt::RuntimeOptions opts;
  opts.mode = rt::ExecutionMode::kSlipstream;
  opts.slip = slip::SlipstreamConfig::one_token_local();
  opts.trace.enabled = true;
  rt::Runtime runtime(machine, opts);
  auto workload =
      apps::make_workload("MG", apps::AppScale::kBench)(runtime);

  stats::Timeline timeline(machine.engine(), 2000);
  const sim::Cycles total =
      runtime.run([&](rt::SerialCtx& sc) { workload->run(sc); });
  timeline.finalize();
  const auto verdict = workload->verify();
  if (!verdict.verified) {
    std::fprintf(stderr, "verification failed: %s\n", verdict.detail.c_str());
    return 1;
  }

  std::printf("run: %llu cycles, %zu samples (every 2000 cycles)\n\n",
              static_cast<unsigned long long>(total),
              timeline.samples().size());

  // How CMP 3's R-stream (cpu 6) and A-stream (cpu 7) spend each quarter.
  const sim::CpuId r_cpu = machine.r_cpu_of(3);
  const sim::CpuId a_cpu = machine.a_cpu_of(3);
  stats::Table table({"quarter", "R busy", "R stall", "R barrier", "A busy",
                      "A stall", "A token-wait"});
  for (int q = 0; q < 4; ++q) {
    const sim::Cycles from = total / 4 * q;
    const sim::Cycles to = q == 3 ? total : total / 4 * (q + 1);
    using sim::TimeCategory;
    table.add_row(
        {"Q" + std::to_string(q + 1),
         stats::Table::pct(timeline.fraction(r_cpu, TimeCategory::kBusy,
                                             from, to)),
         stats::Table::pct(timeline.fraction(r_cpu, TimeCategory::kMemStall,
                                             from, to)),
         stats::Table::pct(timeline.fraction(r_cpu, TimeCategory::kBarrier,
                                             from, to)),
         stats::Table::pct(timeline.fraction(a_cpu, TimeCategory::kBusy,
                                             from, to)),
         stats::Table::pct(timeline.fraction(a_cpu, TimeCategory::kMemStall,
                                             from, to)),
         stats::Table::pct(timeline.fraction(a_cpu, TimeCategory::kTokenWait,
                                             from, to))});
  }
  table.print();

  std::ofstream csv("timeline_slipstream.csv");
  csv << timeline.to_csv();
  std::printf("\nfull trace written to timeline_slipstream.csv (%zu rows, "
              "%d CPUs)\n",
              timeline.samples().size(), machine.ncpus());

  const auto& tracer = runtime.instrumentation().tracer();
  std::ofstream json("trace_slipstream.json");
  json << trace::chrome_trace_json(tracer);
  const auto counts = tracer.counts();
  std::printf("protocol trace written to trace_slipstream.json "
              "(%llu events, %llu evicted) — open in Perfetto\n",
              static_cast<unsigned long long>(counts.recorded),
              static_cast<unsigned long long>(counts.dropped));
  return 0;
}
