// Extension study: MESI Exclusive state vs. slipstream store conversion.
//
// The A-stream's converted stores pre-acquire exclusive ownership for the
// R-stream's writes. A MESI E-state gives private-then-written data the
// same first-store discount for free (silent E->M upgrade). This study
// asks how much of slipstream's win survives on a machine that already
// has E-state — i.e., which part of the benefit is upgrade avoidance and
// which part is genuine read prefetching.
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Extension: MESI E-state x slipstream (16 CMPs) ===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("ext_estate");
  plan.apps = {"MG", "SP", "CG"};
  plan.modes = {core::parse_mode_axis("single").value,
                core::parse_mode_axis("slip-L1").value};
  plan.variants = {
      {"msi", {}},
      {"mesi",
       [](core::ExperimentConfig& c) {
         c.machine.mem.exclusive_state = true;
       }},
  };
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"benchmark", "protocol", "single", "slip-L1 speedup",
                      "slip gain", "silent E->M", "dir upgrades"});
  for (const std::string& app : plan.apps) {
    for (const char* variant : {"msi", "mesi"}) {
      const auto& single = bench::at(run, app + "/single/" + std::string(variant));
      const auto& slip = bench::at(run, app + "/slip-L1/" + std::string(variant));
      const double sp = core::speedup(single, slip);
      table.add_row({app,
                     std::string(variant) == "mesi" ? "MESI (E-state)"
                                                    : "MSI (paper)",
                     std::to_string(single.cycles),
                     stats::Table::fmt(sp, 3),
                     stats::Table::pct(sp - 1.0),
                     std::to_string(single.mem.silent_upgrades),
                     std::to_string(single.mem.upgrades)});
    }
  }
  table.print();
  std::printf(
      "\nFinding: E-state is nearly irrelevant here (tens of silent\n"
      "upgrades vs tens of thousands of directory upgrades). The writes\n"
      "that dominate are to producer-consumer lines that readers re-share\n"
      "between every sweep, so the writer is back in Shared before its\n"
      "next store and E never applies. Slipstream's exclusive-prefetch\n"
      "coverage therefore is NOT obtainable for free from a richer\n"
      "protocol state — it exists precisely because the A-stream re-\n"
      "acquires ownership ahead of each write burst.\n");
  return 0;
}
