// Recovery-policy sweep: what resilient recovery costs and saves.
//
// Injects a persistent R-stream token loss (the harshest protocol fault:
// the pair diverges in every region from the fault on) and sweeps the
// divergence threshold under both recovery policies, against a clean
// slipstream run and the single-mode baseline. Emits the table to stdout
// and the raw numbers to BENCH_recovery.json for the CI trend check.
#include <fstream>

#include "bench/bench_common.hpp"

using namespace ssomp;

namespace {

struct SweepPoint {
  std::string app;
  std::string policy;
  int divergence = 0;
  core::ExperimentResult result;
};

core::ExperimentResult run_point(const std::string& app,
                                 rt::RecoveryPolicy policy, int divergence,
                                 bool inject) {
  core::ExperimentConfig cfg;
  cfg.machine = bench::paper_machine();
  cfg.runtime.mode = rt::ExecutionMode::kSlipstream;
  cfg.runtime.slip = slip::SlipstreamConfig::one_token_local();
  cfg.runtime.recovery = policy;
  cfg.runtime.divergence_threshold = divergence;
  cfg.runtime.watchdog_cycles = 200000;
  cfg.runtime.audit = true;
  if (inject) {
    cfg.runtime.fault = {.kind = slip::FaultKind::kRStreamTokenLoss,
                         .node = 0,
                         .visit = 4};
  }
  return core::run_experiment(
      cfg, apps::make_workload(app, apps::AppScale::kBench));
}

void check_audited(const std::string& app, const core::ExperimentResult& r) {
  bench::check_verified(app, r);
  if (!r.audit_ok) {
    std::fprintf(stderr, "FATAL: %s failed the invariant audit\n",
                 app.c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("=== Recovery-policy sweep (persistent token loss on CMP 0, "
              "watchdog armed) ===\n\n");

  std::vector<SweepPoint> points;
  stats::Table t({"benchmark", "policy", "divergence", "cycles",
                  "vs single", "recoveries", "restarts", "benched barriers",
                  "watchdog trips"});

  for (const std::string app : {"CG", "MG"}) {
    const auto single = bench::run_mode(app, rt::ExecutionMode::kSingle,
                                        slip::SlipstreamConfig::disabled());
    bench::check_verified(app, single);
    const auto clean = run_point(app, rt::RecoveryPolicy::kBench, 0, false);
    check_audited(app, clean);
    t.add_row({app, "clean", "-", std::to_string(clean.cycles),
               stats::Table::fmt(core::speedup(single, clean), 3), "0", "0",
               "0", "0"});
    for (const char* policy_name : {"bench", "restart"}) {
      const rt::RecoveryPolicy policy = std::string(policy_name) == "bench"
                                            ? rt::RecoveryPolicy::kBench
                                            : rt::RecoveryPolicy::kRestart;
      for (int divergence : {2, 8}) {
        auto r = run_point(app, policy, divergence, true);
        check_audited(app, r);
        t.add_row({app, policy_name, std::to_string(divergence),
                   std::to_string(r.cycles),
                   stats::Table::fmt(core::speedup(single, r), 3),
                   std::to_string(r.slip.recoveries),
                   std::to_string(r.slip.restarts),
                   std::to_string(r.slip.benched_barriers),
                   std::to_string(r.slip.watchdog_trips)});
        points.push_back({app, policy_name, divergence, std::move(r)});
      }
    }
  }
  t.print();

  std::ofstream json("BENCH_recovery.json", std::ios::binary);
  json << "{\"bench\":\"recovery_sweep\",\"points\":[";
  bool first = true;
  for (const auto& p : points) {
    if (!first) json << ',';
    first = false;
    json << "{\"app\":\"" << p.app << "\",\"policy\":\"" << p.policy
         << "\",\"divergence\":" << p.divergence
         << ",\"cycles\":" << p.result.cycles
         << ",\"recoveries\":" << p.result.slip.recoveries
         << ",\"restarts\":" << p.result.slip.restarts
         << ",\"benched_barriers\":" << p.result.slip.benched_barriers
         << ",\"watchdog_trips\":" << p.result.slip.watchdog_trips
         << ",\"verified\":" << (p.result.workload.verified ? "true" : "false")
         << ",\"audit_ok\":" << (p.result.audit_ok ? "true" : "false")
         << '}';
  }
  json << "]}\n";
  if (!json) {
    std::fprintf(stderr, "FATAL: cannot write BENCH_recovery.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_recovery.json (%zu sweep points)\n",
              points.size());
  return 0;
}
