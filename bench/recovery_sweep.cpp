// Recovery-policy sweep: what resilient recovery costs and saves.
//
// Injects a persistent R-stream token loss (the harshest protocol fault:
// the pair diverges in every region from the fault on) and sweeps the
// divergence threshold under both recovery policies, against a clean
// slipstream run and the single-mode baseline. The faulty grid is a
// variants axis on one declared plan; the canonical aggregate lands in
// BENCH_recovery.json for the CI trend check.
#include "bench/bench_common.hpp"

using namespace ssomp;

namespace {

core::ConfigVariant fault_variant(const char* name,
                                  rt::RecoveryPolicy policy,
                                  int divergence) {
  return {name, [policy, divergence](core::ExperimentConfig& cfg) {
            cfg.runtime.recovery = policy;
            cfg.runtime.divergence_threshold = divergence;
            cfg.runtime.fault = {.kind = slip::FaultKind::kRStreamTokenLoss,
                                 .node = 0,
                                 .visit = 4};
          }};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Recovery-policy sweep (persistent token loss on CMP 0, "
              "watchdog armed) ===\n\n");

  // Single-mode baselines, separate from the faulted grid so the fault
  // variants only ever apply to slipstream runs.
  core::ExperimentPlan base_plan = bench::paper_plan("recovery_baseline");
  base_plan.apps = {"CG", "MG"};
  base_plan.modes = {core::parse_mode_axis("single").value};
  bench::BenchArgs base_args = args;
  base_args.out.clear();
  const core::SweepRun base_run = bench::run_plan(base_plan, base_args);

  core::ExperimentPlan plan = bench::paper_plan("recovery");
  plan.apps = {"CG", "MG"};
  plan.modes = {core::parse_mode_axis("slip-L1").value};
  plan.base.runtime.watchdog_cycles = 200000;
  plan.base.runtime.audit = true;
  plan.variants = {
      {"clean", {}},
      fault_variant("bench-d2", rt::RecoveryPolicy::kBench, 2),
      fault_variant("bench-d8", rt::RecoveryPolicy::kBench, 8),
      fault_variant("restart-d2", rt::RecoveryPolicy::kRestart, 2),
      fault_variant("restart-d8", rt::RecoveryPolicy::kRestart, 8),
  };
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table t({"benchmark", "policy", "divergence", "cycles",
                  "vs single", "recoveries", "restarts", "benched barriers",
                  "watchdog trips"});
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const core::PlanPoint& p = run.points[i];
    const core::ExperimentResult& r = run.records[i].result;
    if (!r.audit_ok) {
      std::fprintf(stderr, "FATAL: %s failed the invariant audit\n",
                   p.label.c_str());
      return 1;
    }
    const auto& single = bench::at(base_run, p.app + "/single");
    const bool clean = p.variant == "clean";
    const std::string policy =
        clean ? "clean" : p.variant.substr(0, p.variant.find('-'));
    const std::string divergence =
        clean ? "-" : p.variant.substr(p.variant.find("-d") + 2);
    t.add_row({p.app, policy, divergence, std::to_string(r.cycles),
               stats::Table::fmt(core::speedup(single, r), 3),
               std::to_string(r.slip.recoveries),
               std::to_string(r.slip.restarts),
               std::to_string(r.slip.benched_barriers),
               std::to_string(r.slip.watchdog_trips)});
  }
  t.print();
  std::printf("\n%zu sweep points in BENCH_recovery.json\n",
              run.points.size());
  return 0;
}
