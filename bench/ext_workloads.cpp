// Extension study: the extended workloads (EP, FT, IS) under every
// execution mode — communication characters the paper's five kernels do
// not cover:
//   EP — compute-bound, nothing to prefetch: slipstream ~ neutral,
//        double mode wins (the regime where more parallelism is right);
//   FT — transpose-style all-plane communication: slipstream's best case;
//   IS — atomic/critical-heavy: serialized sections throttle double mode,
//        slipstream limited by the skipped-critical policy.
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Extended workloads: EP / FT / IS across modes (16 CMPs) "
              "===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("ext_workloads");
  for (const auto& spec : apps::extended_suite()) {
    plan.apps.push_back(spec.name);
  }
  plan.modes = core::paper_modes();
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"workload", "mode", "cycles", "speedup", "busy",
                      "stall", "lock", "barrier"});
  for (const std::string& app : plan.apps) {
    const auto& single = bench::at(run, app + "/single");
    for (const core::ModeAxis& mode : plan.modes) {
      const auto& r = bench::at(run, app + "/" + mode.name);
      using sim::TimeCategory;
      table.add_row(
          {app, mode.name, std::to_string(r.cycles),
           stats::Table::fmt(core::speedup(single, r), 3),
           stats::Table::pct(r.fraction(TimeCategory::kBusy)),
           stats::Table::pct(r.fraction(TimeCategory::kMemStall)),
           stats::Table::pct(r.fraction(TimeCategory::kLock)),
           stats::Table::pct(r.barrier_fraction())});
    }
  }
  table.print();
  std::printf("\nSlipstream is a *mode*, not a universal win: the per-\n"
              "region directive exists precisely because EP-like regions\n"
              "should run double, FT-like regions slipstream.\n");
  return 0;
}
