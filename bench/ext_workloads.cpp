// Extension study: the extended workloads (EP, FT, IS) under every
// execution mode — communication characters the paper's five kernels do
// not cover:
//   EP — compute-bound, nothing to prefetch: slipstream ~ neutral,
//        double mode wins (the regime where more parallelism is right);
//   FT — transpose-style all-plane communication: slipstream's best case;
//   IS — atomic/critical-heavy: serialized sections throttle double mode,
//        slipstream limited by the skipped-critical policy.
#include "bench/bench_common.hpp"

using namespace ssomp;

int main() {
  std::printf("=== Extended workloads: EP / FT / IS across modes (16 CMPs) "
              "===\n\n");
  stats::Table table({"workload", "mode", "cycles", "speedup", "busy",
                      "stall", "lock", "barrier"});
  for (const auto& spec : apps::extended_suite()) {
    core::ExperimentResult results[4];
    const char* names[4] = {"single", "double", "slip-L1", "slip-G0"};
    results[0] = bench::run_mode(spec.name, rt::ExecutionMode::kSingle,
                                 slip::SlipstreamConfig::disabled());
    results[1] = bench::run_mode(spec.name, rt::ExecutionMode::kDouble,
                                 slip::SlipstreamConfig::disabled());
    results[2] = bench::run_mode(spec.name, rt::ExecutionMode::kSlipstream,
                                 slip::SlipstreamConfig::one_token_local());
    results[3] = bench::run_mode(spec.name, rt::ExecutionMode::kSlipstream,
                                 slip::SlipstreamConfig::zero_token_global());
    for (int s = 0; s < 4; ++s) {
      bench::check_verified(spec.name, results[s]);
      using sim::TimeCategory;
      table.add_row(
          {spec.name, names[s], std::to_string(results[s].cycles),
           stats::Table::fmt(core::speedup(results[0], results[s]), 3),
           stats::Table::pct(results[s].fraction(TimeCategory::kBusy)),
           stats::Table::pct(results[s].fraction(TimeCategory::kMemStall)),
           stats::Table::pct(results[s].fraction(TimeCategory::kLock)),
           stats::Table::pct(results[s].barrier_fraction())});
    }
  }
  table.print();
  std::printf("\nSlipstream is a *mode*, not a universal win: the per-\n"
              "region directive exists precisely because EP-like regions\n"
              "should run double, FT-like regions slipstream.\n");
  return 0;
}
