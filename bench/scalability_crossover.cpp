// Scalability crossover study (paper §5.1 narrative: "for fewer number of
// CMPs, running in double mode can yield better performance compared with
// single and slipstream. We focused on the region where these benchmarks
// benefit more from reducing the communication overheads.")
//
// Sweeps the CMP count and reports where slipstream overtakes double mode.
#include "bench/bench_common.hpp"

using namespace ssomp;

int main() {
  std::printf("=== Scalability: double vs slipstream across machine sizes "
              "===\n\n");
  stats::Table table({"benchmark", "CMPs", "single cycles", "double",
                      "slip-L1", "slip-G0", "winner"});
  for (const std::string app : {"CG", "MG", "SP"}) {
    for (int ncmp : {2, 4, 8, 16}) {
      const auto single =
          bench::run_mode(app, rt::ExecutionMode::kSingle,
                          slip::SlipstreamConfig::disabled(), {}, ncmp);
      const auto dbl =
          bench::run_mode(app, rt::ExecutionMode::kDouble,
                          slip::SlipstreamConfig::disabled(), {}, ncmp);
      const auto l1 =
          bench::run_mode(app, rt::ExecutionMode::kSlipstream,
                          slip::SlipstreamConfig::one_token_local(), {}, ncmp);
      const auto g0 = bench::run_mode(
          app, rt::ExecutionMode::kSlipstream,
          slip::SlipstreamConfig::zero_token_global(), {}, ncmp);
      bench::check_verified(app, single);
      bench::check_verified(app, dbl);
      bench::check_verified(app, l1);
      bench::check_verified(app, g0);
      const double sd = core::speedup(single, dbl);
      const double sl = core::speedup(single, l1);
      const double sg = core::speedup(single, g0);
      const double slip_best = std::max(sl, sg);
      table.add_row({app, std::to_string(ncmp),
                     std::to_string(single.cycles),
                     stats::Table::fmt(sd, 3), stats::Table::fmt(sl, 3),
                     stats::Table::fmt(sg, 3),
                     slip_best > sd && slip_best > 1.0 ? "slipstream"
                     : sd > 1.0                        ? "double"
                                                       : "single"});
    }
  }
  table.print();
  std::printf("\nExpected shape: double mode is competitive at small CMP\n"
              "counts (ample parallelism headroom); as CMPs grow and\n"
              "communication starts to dominate, applying the second\n"
              "processor to prefetching (slipstream) wins.\n");
  return 0;
}
