// Scalability crossover study (paper §5.1 narrative: "for fewer number of
// CMPs, running in double mode can yield better performance compared with
// single and slipstream. We focused on the region where these benchmarks
// benefit more from reducing the communication overheads.")
//
// Sweeps the CMP count and reports where slipstream overtakes double mode.
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Scalability: double vs slipstream across machine sizes "
              "===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("scalability");
  plan.apps = {"CG", "MG", "SP"};
  plan.modes = core::paper_modes();
  plan.ncmps = {2, 4, 8, 16};
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"benchmark", "CMPs", "single cycles", "double",
                      "slip-L1", "slip-G0", "winner"});
  for (const std::string& app : plan.apps) {
    for (int ncmp : plan.ncmps) {
      const std::string size = "/cmp" + std::to_string(ncmp);
      const auto& single = bench::at(run, app + "/single" + size);
      const auto& dbl = bench::at(run, app + "/double" + size);
      const auto& l1 = bench::at(run, app + "/slip-L1" + size);
      const auto& g0 = bench::at(run, app + "/slip-G0" + size);
      const double sd = core::speedup(single, dbl);
      const double sl = core::speedup(single, l1);
      const double sg = core::speedup(single, g0);
      const double slip_best = std::max(sl, sg);
      table.add_row({app, std::to_string(ncmp),
                     std::to_string(single.cycles),
                     stats::Table::fmt(sd, 3), stats::Table::fmt(sl, 3),
                     stats::Table::fmt(sg, 3),
                     slip_best > sd && slip_best > 1.0 ? "slipstream"
                     : sd > 1.0                        ? "double"
                                                       : "single"});
    }
  }
  table.print();
  std::printf("\nExpected shape: double mode is competitive at small CMP\n"
              "counts (ample parallelism headroom); as CMPs grow and\n"
              "communication starts to dominate, applying the second\n"
              "processor to prefetching (slipstream) wins.\n");
  return 0;
}
