// Figure 5 reproduction: shared-data request classification for
// slipstream under dynamic scheduling.
//
// Expected shape (paper §5.2): A-Timely reads ~28% with a higher A-Late
// share (~26%) than static G0 (the per-chunk forwarding keeps the streams
// tightly coupled), and strong A-stream read-exclusive coverage (~59%
// A-Timely, ~2% A-Late).
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 5: request classification, dynamic scheduling, "
              "slipstream-G0 (16 CMPs) ===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("fig5_reqclass_dynamic");
  for (const auto& spec : apps::paper_suite()) {
    if (spec.in_dynamic_suite) plan.apps.push_back(spec.name);
  }
  plan.modes = {core::parse_mode_axis("slip-G0").value};
  plan.schedules = {{"dynamic", {}}};
  plan.schedule_override = [](const core::PlanPoint& p) {
    return apps::dynamic_schedule_for(p.app, apps::AppScale::kBench, 16);
  };
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"benchmark", "kind", "A-Timely", "A-Late", "A-Only",
                      "R-Timely", "R-Late", "R-Only", "requests"});
  using stats::ReqClass;
  using stats::ReqKind;
  double read_timely = 0, read_late = 0, ex_timely = 0, ex_late = 0;
  int n = 0;
  for (const std::string& app : plan.apps) {
    const auto& r = bench::at(run, app + "/slip-G0");
    for (ReqKind kind : {ReqKind::kRead, ReqKind::kReadEx}) {
      std::vector<std::string> row = {app, std::string(to_string(kind))};
      for (ReqClass cls :
           {ReqClass::kATimely, ReqClass::kALate, ReqClass::kAOnly,
            ReqClass::kRTimely, ReqClass::kRLate, ReqClass::kROnly}) {
        row.push_back(stats::Table::pct(r.mem.req_class.fraction(kind, cls)));
      }
      row.push_back(std::to_string(r.mem.req_class.total(kind)));
      table.add_row(row);
    }
    read_timely += r.mem.req_class.fraction(ReqKind::kRead, ReqClass::kATimely);
    read_late += r.mem.req_class.fraction(ReqKind::kRead, ReqClass::kALate);
    ex_timely +=
        r.mem.req_class.fraction(ReqKind::kReadEx, ReqClass::kATimely);
    ex_late += r.mem.req_class.fraction(ReqKind::kReadEx, ReqClass::kALate);
    ++n;
  }
  table.print();
  std::printf("\nAverages (paper §5.2 comparands):\n");
  std::printf("  reads:   A-Timely %.0f%% (paper ~28%%), A-Late %.0f%% "
              "(paper ~26%%)\n",
              100 * read_timely / n, 100 * read_late / n);
  std::printf("  read-ex: A-Timely %.0f%% (paper ~59%%), A-Late %.0f%% "
              "(paper ~2%%)\n",
              100 * ex_timely / n, 100 * ex_late / n);
  return 0;
}
