// Figure 1 demonstration: the token-based A/R synchronization protocol.
//
// A synthetic barrier loop shows, for each (type, tokens) configuration,
// how far ahead the A-stream runs: the session distance between the
// streams at every barrier, the token counter trace, and the A-stream's
// token-wait time. This is the mechanism figure of the paper made
// executable.
#include <memory>

#include "bench/bench_common.hpp"
#include "rt/shared.hpp"

using namespace ssomp;

namespace {

/// Per-pair lead samples: a_barriers - r_barriers at each A barrier pass.
struct LeadStats {
  long sum = 0;
  long samples = 0;
};

class ProtocolWorkload final : public core::Workload {
 public:
  ProtocolWorkload(rt::Runtime& runtime, std::shared_ptr<LeadStats> leads)
      : data_(runtime, kElems, "data"), leads_(std::move(leads)) {}

  [[nodiscard]] std::string name() const override { return "protocol"; }

  void run(rt::SerialCtx& sc) override {
    sc.parallel([&](rt::ThreadCtx& t) {
      for (int b = 0; b < kBarriers; ++b) {
        t.for_loop(
            0, kElems, front::ScheduleClause{},
            [&](long i) {
              data_.write(t, static_cast<std::size_t>(i),
                          data_.read(t, static_cast<std::size_t>(i)) + 1.0);
              t.compute(20);
            },
            /*nowait=*/true);
        if (t.is_a_stream()) {
          const auto& pair = *t.member().pair;
          leads_->sum += static_cast<long>(pair.a_barriers()) -
                         static_cast<long>(pair.r_barriers());
          ++leads_->samples;
        }
        t.barrier();
      }
    });
  }

  [[nodiscard]] core::WorkloadResult verify() override {
    return {.verified = true,
            .checksum = static_cast<double>(kBarriers),
            .detail = "protocol demonstration (no reference check)"};
  }

  static constexpr int kBarriers = 40;
  static constexpr long kElems = 2048;

 private:
  rt::SharedArray<double> data_;
  std::shared_ptr<LeadStats> leads_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 1: token-based A/R synchronization — protocol "
              "behaviour ===\n\n");
  std::printf("Synthetic 40-barrier loop on 4 CMPs. 'lead' is how many\n"
              "sessions the A-stream runs ahead of its R-stream when it\n"
              "passes a barrier (local insertion frees the token at R's\n"
              "barrier entry, global insertion at R's exit; the initial\n"
              "token count bounds the lead).\n\n");

  core::ExperimentPlan plan = bench::paper_plan("fig1_protocol");
  plan.apps = {"protocol"};
  for (const char* mode : {"slip-G0", "slip-G1", "slip-G2", "slip-G4",
                           "slip-L0", "slip-L1", "slip-L2", "slip-L4"}) {
    plan.modes.push_back(core::parse_mode_axis(mode).value);
  }
  plan.ncmps = {4};

  // One lead-sample slot per grid point; the workers write disjoint slots.
  auto leads = std::make_shared<std::vector<LeadStats>>(plan.size());
  const core::WorkloadResolver resolver = [leads](const core::PlanPoint& p) {
    auto slot = std::shared_ptr<LeadStats>(leads, &(*leads)[p.index]);
    return [slot](rt::Runtime& runtime) -> std::unique_ptr<core::Workload> {
      return std::make_unique<ProtocolWorkload>(runtime, slot);
    };
  };
  const core::SweepRun run = bench::run_plan(plan, args, resolver);

  stats::Table table({"sync", "tokens", "cycles", "avg lead", "A token wait",
                      "stores converted", "stores dropped"});
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const core::PlanPoint& p = run.points[i];
    const core::ExperimentResult& r = run.records[i].result;
    const LeadStats& lead = (*leads)[i];
    table.add_row(
        {std::string(to_string(p.config.runtime.slip.type)),
         std::to_string(p.config.runtime.slip.tokens),
         std::to_string(r.cycles),
         stats::Table::fmt(lead.samples ? static_cast<double>(lead.sum) /
                                              lead.samples
                                        : 0.0,
                           2),
         // Only A-streams accrue TokenWait, so the team sum is theirs.
         std::to_string(r.team_breakdown.get(sim::TimeCategory::kTokenWait)),
         std::to_string(r.slip.converted_stores),
         std::to_string(r.slip.dropped_stores)});
  }
  table.print();
  std::printf(
      "\nReading the table: more initial tokens and looser (local)\n"
      "insertion let the A-stream lead by more sessions, trading timely\n"
      "prefetch for premature-fetch risk; with zero-token global the\n"
      "streams stay in the same session, which is what makes store\n"
      "conversion (same-session condition) most effective.\n");
  return 0;
}
