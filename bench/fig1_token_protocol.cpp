// Figure 1 demonstration: the token-based A/R synchronization protocol.
//
// A synthetic barrier loop shows, for each (type, tokens) configuration,
// how far ahead the A-stream runs: the session distance between the
// streams at every barrier, the token counter trace, and the A-stream's
// token-wait time. This is the mechanism figure of the paper made
// executable.
#include "bench/bench_common.hpp"
#include "rt/shared.hpp"
#include "tests/helpers.hpp"

using namespace ssomp;

namespace {

struct ProtocolResult {
  double avg_lead_sessions = 0;  // how many sessions A leads R by
  sim::Cycles a_token_wait = 0;
  sim::Cycles total = 0;
  std::uint64_t converted = 0;
  std::uint64_t dropped = 0;
};

ProtocolResult run_protocol(slip::SyncType type, int tokens) {
  machine::MachineConfig mc = bench::paper_machine(4);
  machine::Machine machine(mc);
  rt::RuntimeOptions opts;
  opts.mode = rt::ExecutionMode::kSlipstream;
  opts.slip = {.type = type, .tokens = tokens};
  rt::Runtime runtime(machine, opts);

  constexpr int kBarriers = 40;
  constexpr long kElems = 2048;
  rt::SharedArray<double> data(runtime, kElems, "data");

  // Per-pair lead samples: r_barriers-a_barriers at each A token consume.
  long lead_sum = 0;
  long lead_samples = 0;
  const auto total = runtime.run([&](rt::SerialCtx& sc) {
    sc.parallel([&](rt::ThreadCtx& t) {
      for (int b = 0; b < kBarriers; ++b) {
        t.for_loop(
            0, kElems, front::ScheduleClause{},
            [&](long i) {
              data.write(t, static_cast<std::size_t>(i),
                         data.read(t, static_cast<std::size_t>(i)) + 1.0);
              t.compute(20);
            },
            /*nowait=*/true);
        if (t.is_a_stream()) {
          const auto& pair = *t.member().pair;
          lead_sum += static_cast<long>(pair.a_barriers()) -
                      static_cast<long>(pair.r_barriers());
          ++lead_samples;
        }
        t.barrier();
      }
    });
  });

  ProtocolResult out;
  out.total = total;
  out.avg_lead_sessions =
      lead_samples ? static_cast<double>(lead_sum) / lead_samples : 0.0;
  for (int n = 0; n < machine.ncmp(); ++n) {
    out.a_token_wait += machine.cpu(machine.a_cpu_of(n))
                            .breakdown()
                            .get(sim::TimeCategory::kTokenWait);
  }
  out.converted = runtime.slip_stats().converted_stores;
  out.dropped = runtime.slip_stats().dropped_stores;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: token-based A/R synchronization — protocol "
              "behaviour ===\n\n");
  std::printf("Synthetic 40-barrier loop on 4 CMPs. 'lead' is how many\n"
              "sessions the A-stream runs ahead of its R-stream when it\n"
              "passes a barrier (local insertion frees the token at R's\n"
              "barrier entry, global insertion at R's exit; the initial\n"
              "token count bounds the lead).\n\n");

  stats::Table table({"sync", "tokens", "cycles", "avg lead", "A token wait",
                      "stores converted", "stores dropped"});
  for (slip::SyncType type : {slip::SyncType::kGlobal, slip::SyncType::kLocal}) {
    for (int tokens : {0, 1, 2, 4}) {
      const auto r = run_protocol(type, tokens);
      table.add_row({std::string(to_string(type)), std::to_string(tokens),
                     std::to_string(r.total),
                     stats::Table::fmt(r.avg_lead_sessions, 2),
                     std::to_string(r.a_token_wait),
                     std::to_string(r.converted), std::to_string(r.dropped)});
    }
  }
  table.print();
  std::printf(
      "\nReading the table: more initial tokens and looser (local)\n"
      "insertion let the A-stream lead by more sessions, trading timely\n"
      "prefetch for premature-fetch risk; with zero-token global the\n"
      "streams stay in the same session, which is what makes store\n"
      "conversion (same-session condition) most effective.\n");
  return 0;
}
