// Extension study: LU sweep synchronization — a barrier per wavefront
// plane (the conservative variant) vs the NAS LU-OMP point-to-point
// pipelining (per-thread progress flags) — and how slipstream interacts
// with each. The A-stream skips both kinds of synchronization, so its
// prefetch benefit survives the pipelining; point-to-point waits show up
// in the lock column rather than the barrier column, as in the paper's
// breakdown taxonomy.
#include "apps/lu.hpp"
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Extension: LU wavefront sync — barriers vs point-to-point "
              "pipelining (16 CMPs) ===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("ext_lu_pipeline");
  plan.apps = {"LU"};
  plan.modes = {core::parse_mode_axis("single").value,
                core::parse_mode_axis("slip-L1").value};
  plan.variants = {{"barrier", {}}, {"pipelined", {}}};
  // The pipelining switch is a workload parameter, not a runtime option,
  // so this harness resolves workloads itself keyed on the variant axis.
  const core::WorkloadResolver resolver = [](const core::PlanPoint& point) {
    apps::LuParams p;
    p.pipelined = point.variant == "pipelined";
    return [p](rt::Runtime& rt) { return apps::make_lu(rt, p); };
  };
  const core::SweepRun run = bench::run_plan(plan, args, resolver);

  stats::Table table({"sweep sync", "mode", "cycles", "vs barrier-single",
                      "barrier", "lock"});
  const sim::Cycles base = bench::at(run, "LU/single/barrier").cycles;
  for (const char* variant : {"barrier", "pipelined"}) {
    for (const core::ModeAxis& mode : plan.modes) {
      const auto& r =
          bench::at(run, "LU/" + mode.name + "/" + std::string(variant));
      table.add_row(
          {std::string(variant) == "pipelined" ? "point-to-point"
                                               : "barrier/plane",
           mode.name, std::to_string(r.cycles),
           stats::Table::fmt(static_cast<double>(base) / r.cycles, 3),
           stats::Table::pct(r.barrier_fraction()),
           stats::Table::pct(r.fraction(sim::TimeCategory::kLock))});
    }
  }
  table.print();
  std::printf("\nExpected shape: pipelining converts per-plane barrier time\n"
              "into (smaller) point-to-point lock time; slipstream stacks\n"
              "on both because the A-stream skips either kind of wait.\n");
  return 0;
}
