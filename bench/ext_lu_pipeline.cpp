// Extension study: LU sweep synchronization — a barrier per wavefront
// plane (the conservative variant) vs the NAS LU-OMP point-to-point
// pipelining (per-thread progress flags) — and how slipstream interacts
// with each. The A-stream skips both kinds of synchronization, so its
// prefetch benefit survives the pipelining; point-to-point waits show up
// in the lock column rather than the barrier column, as in the paper's
// breakdown taxonomy.
#include "apps/lu.hpp"
#include "bench/bench_common.hpp"

using namespace ssomp;

int main() {
  std::printf("=== Extension: LU wavefront sync — barriers vs point-to-point "
              "pipelining (16 CMPs) ===\n\n");
  stats::Table table({"sweep sync", "mode", "cycles", "vs barrier-single",
                      "barrier", "lock"});
  sim::Cycles base = 0;
  for (bool pipelined : {false, true}) {
    for (int m = 0; m < 2; ++m) {
      apps::LuParams p;
      p.pipelined = pipelined;
      auto factory = [p](rt::Runtime& rt) { return apps::make_lu(rt, p); };
      core::ExperimentConfig cfg;
      cfg.machine = bench::paper_machine();
      cfg.runtime.mode =
          m == 0 ? rt::ExecutionMode::kSingle : rt::ExecutionMode::kSlipstream;
      cfg.runtime.slip = slip::SlipstreamConfig::one_token_local();
      const auto r = core::run_experiment(cfg, factory);
      bench::check_verified("LU", r);
      if (base == 0) base = r.cycles;
      table.add_row(
          {pipelined ? "point-to-point" : "barrier/plane",
           m == 0 ? "single" : "slip-L1", std::to_string(r.cycles),
           stats::Table::fmt(static_cast<double>(base) / r.cycles, 3),
           stats::Table::pct(r.barrier_fraction()),
           stats::Table::pct(r.fraction(sim::TimeCategory::kLock))});
    }
  }
  table.print();
  std::printf("\nExpected shape: pipelining converts per-plane barrier time\n"
              "into (smaller) point-to-point lock time; slipstream stacks\n"
              "on both because the A-stream skips either kind of wait.\n");
  return 0;
}
