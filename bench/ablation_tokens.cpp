// Ablation studies on the design choices DESIGN.md calls out:
//   1. token count x insertion point sweep on CG and MG (the paper's §5.1
//      "this encourages further exploration" of per-region A/R sync);
//   2. the A-stream construct policies: store conversion on/off and
//      critical-section execution on/off (§3.1 "advisable" defaults).
#include "bench/bench_common.hpp"

using namespace ssomp;

namespace {

core::ExperimentResult run_policy(const std::string& app,
                                  slip::SlipstreamConfig slip) {
  core::ExperimentConfig cfg;
  cfg.machine = bench::paper_machine();
  cfg.runtime.mode = rt::ExecutionMode::kSlipstream;
  cfg.runtime.slip = slip;
  cfg.runtime.policies = slip.policies;
  return core::run_experiment(
      cfg, apps::make_workload(app, apps::AppScale::kBench));
}

}  // namespace

int main() {
  std::printf("=== Ablation 1: A/R synchronization sweep (tokens x "
              "insertion) ===\n\n");
  stats::Table sweep({"benchmark", "sync", "tokens", "cycles",
                      "speedup vs single"});
  for (const std::string app : {"CG", "MG"}) {
    const auto single = bench::run_mode(app, rt::ExecutionMode::kSingle,
                                        slip::SlipstreamConfig::disabled());
    bench::check_verified(app, single);
    for (slip::SyncType type :
         {slip::SyncType::kGlobal, slip::SyncType::kLocal}) {
      for (int tokens : {0, 1, 2, 4}) {
        slip::SlipstreamConfig cfg{.type = type, .tokens = tokens};
        const auto r =
            bench::run_mode(app, rt::ExecutionMode::kSlipstream, cfg);
        bench::check_verified(app, r);
        sweep.add_row({app, std::string(to_string(type)),
                       std::to_string(tokens), std::to_string(r.cycles),
                       stats::Table::fmt(core::speedup(single, r), 3)});
      }
    }
  }
  sweep.print();

  std::printf("\n=== Ablation 2: A-stream construct policies (CG) ===\n\n");
  stats::Table pol({"policy", "cycles", "vs default", "converted",
                    "dropped"});
  slip::SlipstreamConfig base_cfg = slip::SlipstreamConfig::zero_token_global();
  const auto base = run_policy("CG", base_cfg);
  bench::check_verified("CG", base);
  pol.add_row({"default (stores->prefetch, A skips critical)",
               std::to_string(base.cycles), "1.000",
               std::to_string(base.slip.converted_stores),
               std::to_string(base.slip.dropped_stores)});

  {
    slip::SlipstreamConfig c = base_cfg;
    c.policies.a_stores_as_prefetch = false;  // drop all A-stores
    const auto r = run_policy("CG", c);
    bench::check_verified("CG", r);
    pol.add_row({"A-stores dropped (no conversion)",
                 std::to_string(r.cycles),
                 stats::Table::fmt(core::speedup(base, r), 3),
                 std::to_string(r.slip.converted_stores),
                 std::to_string(r.slip.dropped_stores)});
  }
  {
    slip::SlipstreamConfig c = base_cfg;
    c.policies.a_executes_critical = true;
    const auto r = run_policy("CG", c);
    bench::check_verified("CG", r);
    pol.add_row({"A executes criticals (unlocked)", std::to_string(r.cycles),
                 stats::Table::fmt(core::speedup(base, r), 3),
                 std::to_string(r.slip.converted_stores),
                 std::to_string(r.slip.dropped_stores)});
  }
  {
    slip::SlipstreamConfig c = base_cfg;
    c.policies.a_executes_atomic = false;
    const auto r = run_policy("CG", c);
    bench::check_verified("CG", r);
    pol.add_row({"A skips atomics", std::to_string(r.cycles),
                 stats::Table::fmt(core::speedup(base, r), 3),
                 std::to_string(r.slip.converted_stores),
                 std::to_string(r.slip.dropped_stores)});
  }
  pol.print();

  // Self-invalidation (paper §2, §3.2.1: an additional coherence
  // optimization tied to the one-token-global sync model).
  std::printf("\n=== Ablation 3: slipstream self-invalidation (one-token "
              "global) ===\n\n");
  stats::Table si({"benchmark", "self-inval", "cycles", "speedup vs single",
                   "hints sent"});
  for (const std::string app : {"CG", "MG"}) {
    const auto single = bench::run_mode(app, rt::ExecutionMode::kSingle,
                                        slip::SlipstreamConfig::disabled());
    for (bool enabled : {false, true}) {
      slip::SlipstreamConfig c{.type = slip::SyncType::kGlobal, .tokens = 1};
      c.policies.self_invalidation = enabled;
      const auto r = run_policy(app, c);
      bench::check_verified(app, r);
      si.add_row({app, enabled ? "on" : "off", std::to_string(r.cycles),
                  stats::Table::fmt(core::speedup(single, r), 3),
                  std::to_string(r.mem.self_invalidations)});
    }
  }
  si.print();
  std::printf("\n('vs default' > 1 means the variant runs faster than the "
              "default policy.)\n");
  return 0;
}
