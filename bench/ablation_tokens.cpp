// Ablation studies on the design choices DESIGN.md calls out:
//   1. token count x insertion point sweep on CG and MG (the paper's §5.1
//      "this encourages further exploration" of per-region A/R sync);
//   2. the A-stream construct policies: store conversion on/off and
//      critical-section execution on/off (§3.1 "advisable" defaults);
//   3. slipstream self-invalidation under one-token global sync.
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);

  std::printf("=== Ablation 1: A/R synchronization sweep (tokens x "
              "insertion) ===\n\n");
  core::ExperimentPlan sync_plan = bench::paper_plan("ablation_sync");
  sync_plan.apps = {"CG", "MG"};
  sync_plan.modes = {core::parse_mode_axis("single").value};
  for (const char* mode : {"slip-G0", "slip-G1", "slip-G2", "slip-G4",
                           "slip-L0", "slip-L1", "slip-L2", "slip-L4"}) {
    sync_plan.modes.push_back(core::parse_mode_axis(mode).value);
  }
  const core::SweepRun sync_run = bench::run_plan(sync_plan, args);

  stats::Table sweep({"benchmark", "sync", "tokens", "cycles",
                      "speedup vs single"});
  for (const std::string& app : sync_plan.apps) {
    const auto& single = bench::at(sync_run, app + "/single");
    for (std::size_t m = 1; m < sync_plan.modes.size(); ++m) {
      const core::ModeAxis& mode = sync_plan.modes[m];
      const auto& r = bench::at(sync_run, app + "/" + mode.name);
      sweep.add_row({app, std::string(to_string(mode.slip.type)),
                     std::to_string(mode.slip.tokens),
                     std::to_string(r.cycles),
                     stats::Table::fmt(core::speedup(single, r), 3)});
    }
  }
  sweep.print();

  std::printf("\n=== Ablation 2: A-stream construct policies (CG) ===\n\n");
  core::ExperimentPlan pol_plan = bench::paper_plan("ablation_policy");
  pol_plan.apps = {"CG"};
  pol_plan.modes = {core::parse_mode_axis("slip-G0").value};
  pol_plan.variants = {
      {"", {}},
      {"no-conversion",
       [](core::ExperimentConfig& c) {
         c.runtime.policies.a_stores_as_prefetch = false;  // drop A-stores
       }},
      {"a-criticals",
       [](core::ExperimentConfig& c) {
         c.runtime.policies.a_executes_critical = true;
       }},
      {"no-atomics",
       [](core::ExperimentConfig& c) {
         c.runtime.policies.a_executes_atomic = false;
       }},
  };
  bench::BenchArgs pol_args = args;
  pol_args.out.clear();  // --out names the sync-sweep file only
  const core::SweepRun pol_run = bench::run_plan(pol_plan, pol_args);

  stats::Table pol({"policy", "cycles", "vs default", "converted",
                    "dropped"});
  const auto& pol_base = bench::at(pol_run, "CG/slip-G0");
  pol.add_row({"default (stores->prefetch, A skips critical)",
               std::to_string(pol_base.cycles), "1.000",
               std::to_string(pol_base.slip.converted_stores),
               std::to_string(pol_base.slip.dropped_stores)});
  const std::pair<const char*, const char*> pol_rows[] = {
      {"no-conversion", "A-stores dropped (no conversion)"},
      {"a-criticals", "A executes criticals (unlocked)"},
      {"no-atomics", "A skips atomics"},
  };
  for (const auto& [variant, display] : pol_rows) {
    const auto& r = bench::at(pol_run, std::string("CG/slip-G0/") + variant);
    pol.add_row({display, std::to_string(r.cycles),
                 stats::Table::fmt(core::speedup(pol_base, r), 3),
                 std::to_string(r.slip.converted_stores),
                 std::to_string(r.slip.dropped_stores)});
  }
  pol.print();

  // Self-invalidation (paper §2, §3.2.1: an additional coherence
  // optimization tied to the one-token-global sync model).
  std::printf("\n=== Ablation 3: slipstream self-invalidation (one-token "
              "global) ===\n\n");
  core::ExperimentPlan si_plan = bench::paper_plan("ablation_selfinval");
  si_plan.apps = {"CG", "MG"};
  si_plan.modes = {core::parse_mode_axis("single").value,
                   core::parse_mode_axis("slip-G1").value};
  si_plan.variants = {
      {"si-off",
       [](core::ExperimentConfig& c) {
         c.runtime.policies.self_invalidation = false;
       }},
      {"si-on",
       [](core::ExperimentConfig& c) {
         c.runtime.policies.self_invalidation = true;
       }},
  };
  bench::BenchArgs si_args = args;
  si_args.out.clear();
  const core::SweepRun si_run = bench::run_plan(si_plan, si_args);

  stats::Table si({"benchmark", "self-inval", "cycles", "speedup vs single",
                   "hints sent"});
  for (const std::string& app : si_plan.apps) {
    const auto& single = bench::at(si_run, app + "/single/si-off");
    for (const char* variant : {"si-off", "si-on"}) {
      const auto& r = bench::at(si_run, app + "/slip-G1/" + std::string(variant));
      si.add_row({app, std::string(variant) == "si-on" ? "on" : "off",
                  std::to_string(r.cycles),
                  stats::Table::fmt(core::speedup(single, r), 3),
                  std::to_string(r.mem.self_invalidations)});
    }
  }
  si.print();
  std::printf("\n('vs default' > 1 means the variant runs faster than the "
              "default policy.)\n");
  return 0;
}
