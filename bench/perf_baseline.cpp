// Tracked performance baseline (BENCH_perf.json, schema ssomp-perf-v1).
//
// Two layers of measurement, both host-side:
//
//   * micro: tight chrono loops over the primitives the simulator spends
//     its host time in — engine event dispatch, the typed wake/resume
//     path, cancelable-event churn, the directory probe, an L1 hit.
//     Reported as best-of-batches ns/op (best, not mean: the minimum is
//     the least noise-contaminated estimate on a shared machine).
//
//   * e2e: the full ci_smoke experiment grid run repeatedly *in-process*
//     (jobs=1, so the measurement is single-threaded host work, not
//     scheduler luck), reporting best and median wall seconds per sweep.
//     One ci_smoke sweep is only tens of milliseconds, far too short to
//     time once; repetition inside one process amortizes startup and
//     lets the best-of estimate converge.
//
// Host seconds are the *only* thing this harness measures. Optimizations
// may change them freely; they must never change simulated cycles — that
// is enforced separately by the byte-identical sweep-JSON gate (see
// docs/PERFORMANCE.md).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/driver.hpp"
#include "core/plan.hpp"
#include "mem/memsys.hpp"
#include "sim/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Times `body(iters)` in `batches` batches and returns the best ns/op.
template <typename Body>
double best_ns_per_op(std::uint64_t iters, int batches, Body&& body) {
  double best = 1e300;
  for (int b = 0; b < batches; ++b) {
    const Clock::time_point t0 = Clock::now();
    body(iters);
    best = std::min(best, seconds_since(t0));
  }
  return best * 1e9 / static_cast<double>(iters);
}

double micro_engine_event(std::uint64_t iters, int batches) {
  ssomp::sim::Engine engine;
  std::uint64_t n = 0;
  return best_ns_per_op(iters, batches, [&](std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) {
      engine.schedule_after(1, [&n] { ++n; });
      engine.run();
    }
  });
}

double micro_engine_throughput(std::uint64_t iters, int batches) {
  ssomp::sim::Engine engine;
  std::uint64_t n = 0;
  constexpr std::uint64_t kBatch = 256;
  return best_ns_per_op(iters, batches, [&](std::uint64_t k) {
           for (std::uint64_t i = 0; i < k; ++i) {
             for (std::uint64_t j = 0; j < kBatch; ++j) {
               engine.schedule_after(j % 7, [&n] { ++n; });
             }
             engine.run();
           }
         }) /
         static_cast<double>(kBatch);
}

double micro_wake_resume(std::uint64_t iters, int batches) {
  ssomp::sim::Engine engine;
  ssomp::sim::SimCpu& cpu = engine.add_cpu("w");
  std::uint64_t wakes = 0;
  cpu.start([&] {
    while (true) {
      cpu.block(ssomp::sim::TimeCategory::kTokenWait);
      ++wakes;
    }
  });
  engine.run();  // reach the first block()
  return best_ns_per_op(iters, batches, [&](std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) {
      cpu.wake(1);
      engine.run();
    }
  });
}

double micro_cancel_churn(std::uint64_t iters, int batches) {
  ssomp::sim::Engine engine;
  return best_ns_per_op(iters, batches, [&](std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) {
      auto h = engine.schedule_cancelable_after(1000, [] {});
      h.cancel();
      engine.run();  // pop the stale entry so the queue never grows
    }
  });
}

double micro_directory_probe(std::uint64_t iters, int batches) {
  ssomp::mem::Directory dir(8);
  constexpr std::uint64_t kLines = 4096;
  for (std::uint64_t i = 0; i < kLines; ++i) {
    ssomp::mem::DirEntry& e = dir.entry(i * 64);
    e.state = ssomp::mem::DirState::kShared;
    e.sharers = 1;
  }
  ssomp::sim::Addr a = 0;
  const ssomp::mem::DirEntry* last = nullptr;
  const double ns = best_ns_per_op(iters, batches, [&](std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) {
      last = dir.find(a);
      a = (a + 64 * 17) % (kLines * 64);
    }
  });
  if (last == nullptr) std::fprintf(stderr, "probe missed\n");
  return ns;
}

double micro_l1_hit(std::uint64_t iters, int batches) {
  ssomp::mem::MemorySystem ms(ssomp::mem::MemParams{}, 4);
  (void)ms.load(0, ssomp::mem::AddrSpace::kAppBase, 0);
  ssomp::sim::Cycles now = 1;
  ssomp::sim::Cycles sink = 0;
  const double ns = best_ns_per_op(iters, batches, [&](std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) {
      sink += ms.load(0, ssomp::mem::AddrSpace::kAppBase, now++);
    }
  });
  if (sink == 0) std::fprintf(stderr, "impossible l1 timing\n");
  return ns;
}

struct E2eResult {
  bool ok = false;
  std::string plan_name;
  std::size_t points = 0;
  int reps = 0;
  std::vector<double> seconds;  // one entry per in-process sweep run
  bool all_verified = true;
};

E2eResult run_e2e(const std::string& plan_file, int reps) {
  E2eResult out;
  std::ifstream in(plan_file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "perf_baseline: cannot read plan file %s\n",
                 plan_file.c_str());
    return out;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = ssomp::core::parse_plan(text.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "perf_baseline: %s: %s\n", plan_file.c_str(),
                 parsed.error.c_str());
    return out;
  }
  out.plan_name = parsed.value.name;
  out.reps = reps;
  const ssomp::core::WorkloadResolver resolver = ssomp::apps::plan_resolver();
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    const ssomp::core::SweepRun run = ssomp::core::run_sweep(
        parsed.value, resolver, ssomp::core::SweepOptions{.jobs = 1, .progress = {}});
    out.seconds.push_back(seconds_since(t0));
    out.points = run.points.size();
    if (run.failures() != 0) out.all_verified = false;
    for (const ssomp::core::RunRecord& rec : run.records) {
      if (!rec.ok || !rec.result.workload.verified ||
          !rec.result.invariants_ok || !rec.result.audit_ok) {
        out.all_verified = false;
      }
    }
  }
  out.ok = true;
  return out;
}

double best_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: perf_baseline [--plan FILE] [--reps N] [--scale X]\n"
      "                     [--out FILE] [--skip-e2e]\n"
      "  --plan FILE   plan for the e2e timing (default plans/ci_smoke.plan)\n"
      "  --reps N      in-process sweep repetitions (default 15)\n"
      "  --scale X     micro-loop iteration multiplier (default 1.0)\n"
      "  --out FILE    write BENCH_perf.json here (default stdout)\n"
      "  --skip-e2e    micro loops only\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_file = "plans/ci_smoke.plan";
  std::string out_file;
  int reps = 15;
  double scale = 1.0;
  bool skip_e2e = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) return arg.substr(eq + 1);
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg.rfind("--plan", 0) == 0) {
      plan_file = value();
    } else if (arg.rfind("--reps", 0) == 0) {
      reps = std::stoi(value());
    } else if (arg.rfind("--scale", 0) == 0) {
      scale = std::stod(value());
    } else if (arg.rfind("--out", 0) == 0) {
      out_file = value();
    } else if (arg == "--skip-e2e") {
      skip_e2e = true;
    } else {
      usage();
    }
  }
  if (reps < 1 || scale <= 0.0) usage();

  const auto iters = [scale](double base) {
    return static_cast<std::uint64_t>(
        std::max(1.0, base * scale));
  };
  constexpr int kBatches = 5;

  struct Micro {
    const char* name;
    double ns;
  };
  std::vector<Micro> micro;
  std::fprintf(stderr, "perf_baseline: micro loops...\n");
  micro.push_back({"engine_event_ns",
                   micro_engine_event(iters(2e6), kBatches)});
  micro.push_back({"engine_throughput_ns",
                   micro_engine_throughput(iters(8e3), kBatches)});
  micro.push_back({"wake_resume_ns",
                   micro_wake_resume(iters(2e6), kBatches)});
  micro.push_back({"cancel_churn_ns",
                   micro_cancel_churn(iters(2e6), kBatches)});
  micro.push_back({"directory_probe_ns",
                   micro_directory_probe(iters(1e7), kBatches)});
  micro.push_back({"l1_hit_ns", micro_l1_hit(iters(1e7), kBatches)});
  for (const Micro& m : micro) {
    std::fprintf(stderr, "  %-22s %10.2f ns/op\n", m.name, m.ns);
  }

  E2eResult e2e;
  if (!skip_e2e) {
    std::fprintf(stderr, "perf_baseline: e2e sweep '%s' x%d (jobs=1)...\n",
                 plan_file.c_str(), reps);
    e2e = run_e2e(plan_file, reps);
    if (!e2e.ok) return 2;
    std::fprintf(stderr,
                 "  best %.4fs  median %.4fs  (%zu points, verified=%s)\n",
                 best_of(e2e.seconds), median_of(e2e.seconds), e2e.points,
                 e2e.all_verified ? "yes" : "NO");
  }

  std::ostringstream json;
  json << "{\"schema\":\"ssomp-perf-v1\"";
  json << ",\"micro\":{";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    if (i != 0) json << ',';
    json << '"' << micro[i].name << "\":" << fmt(micro[i].ns);
  }
  json << '}';
  if (!skip_e2e) {
    json << ",\"e2e\":{\"plan\":\"" << e2e.plan_name << '"'
         << ",\"points\":" << e2e.points << ",\"reps\":" << e2e.reps
         << ",\"jobs\":1"
         << ",\"best_host_seconds\":" << fmt(best_of(e2e.seconds))
         << ",\"median_host_seconds\":" << fmt(median_of(e2e.seconds))
         << ",\"all_verified\":" << (e2e.all_verified ? "true" : "false")
         << '}';
  }
  json << "}\n";

  if (out_file.empty()) {
    std::fputs(json.str().c_str(), stdout);
  } else {
    std::ofstream out(out_file, std::ios::binary);
    if (!out || !(out << json.str())) {
      std::fprintf(stderr, "perf_baseline: cannot write %s\n",
                   out_file.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_file.c_str());
  }
  return skip_e2e || e2e.all_verified ? 0 : 1;
}
