// Micro-benchmarks of the simulator and runtime primitives
// (google-benchmark): host-side costs of the machinery that the figure
// harnesses are built from.
#include <benchmark/benchmark.h>

#include "apps/registry.hpp"
#include "core/ssomp.hpp"
#include "rt/sync_primitives.hpp"

using namespace ssomp;

namespace {

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber* handle = nullptr;
  sim::Fiber fiber("bench", [&] {
    while (true) handle->yield();
  });
  handle = &fiber;
  for (auto _ : state) {
    fiber.resume();
  }
}
BENCHMARK(BM_FiberSwitch);

void BM_EngineEvent(benchmark::State& state) {
  sim::Engine engine;
  std::uint64_t n = 0;
  for (auto _ : state) {
    engine.schedule_after(1, [&n] { ++n; });
    engine.run();
  }
  benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EngineEvent);

void BM_EngineThroughput(benchmark::State& state) {
  // Steady-state scheduling: a batch of pending events per run() drain,
  // exercising the arena free list rather than a one-slot ping-pong.
  sim::Engine engine;
  std::uint64_t n = 0;
  constexpr int kBatch = 256;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      engine.schedule_after(static_cast<sim::Cycles>(i % 7), [&n] { ++n; });
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EngineThroughput);

void BM_WakeResume(benchmark::State& state) {
  // The dominant event: block a processor context, wake it, drain. This
  // is the typed resume fast path — no closure, no arena slot.
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("w");
  std::uint64_t wakes = 0;
  cpu.start([&] {
    while (true) {
      cpu.block(sim::TimeCategory::kTokenWait);
      ++wakes;
    }
  });
  engine.run();  // reach the first block()
  for (auto _ : state) {
    cpu.wake(1);
    engine.run();
  }
  benchmark::DoNotOptimize(wakes);
}
BENCHMARK(BM_WakeResume);

void BM_CancelableChurn(benchmark::State& state) {
  // Arm-then-disarm, the watchdog/guard pattern: every iteration acquires
  // an arena slot and recycles it through the free list via cancel().
  sim::Engine engine;
  for (auto _ : state) {
    auto h = engine.schedule_cancelable_after(1000, [] {});
    h.cancel();
    engine.run();  // pop the stale entry so the queue never grows
  }
  benchmark::DoNotOptimize(engine.event_pool_capacity());
}
BENCHMARK(BM_CancelableChurn);

void BM_DirectoryProbe(benchmark::State& state) {
  // Directory entry probe over a strided line-address working set — the
  // flat-map lookup on every miss-path coherence action.
  mem::Directory dir(8);
  constexpr int kLines = 4096;
  for (int i = 0; i < kLines; ++i) {
    mem::DirEntry& e = dir.entry(static_cast<sim::Addr>(i) * 64);
    e.state = mem::DirState::kShared;
    e.sharers = 1;
  }
  sim::Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.find(a));
    a = (a + 64 * 17) % (kLines * 64);
  }
}
BENCHMARK(BM_DirectoryProbe);

void BM_CacheLookupHit(benchmark::State& state) {
  struct M {};
  mem::SetAssocCache<M> cache(64 * 1024, 4, 64);
  mem::SetAssocCache<M>::Evicted ev;
  cache.insert(0x1000, mem::LineState::kShared, ev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(0x1000));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_MemSysL1Hit(benchmark::State& state) {
  mem::MemorySystem ms(mem::MemParams{}, 4);
  (void)ms.load(0, mem::AddrSpace::kAppBase, 0);
  sim::Cycles now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms.load(0, mem::AddrSpace::kAppBase, now++));
  }
}
BENCHMARK(BM_MemSysL1Hit);

void BM_MemSysMissStorm(benchmark::State& state) {
  // Cold-ish misses cycling through a footprint larger than the L2.
  mem::MemParams params;
  params.l2_size_bytes = 32 * 1024;
  params.l1_size_bytes = 2 * 1024;
  mem::MemorySystem ms(params, 4);
  sim::Cycles now = 0;
  sim::Addr a = mem::AddrSpace::kAppBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms.load(0, a, now));
    a += 64;
    if (a > mem::AddrSpace::kAppBase + 1024 * 1024) {
      a = mem::AddrSpace::kAppBase;
    }
    now += 400;
  }
}
BENCHMARK(BM_MemSysMissStorm);

void BM_TokenRoundTrip(benchmark::State& state) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("r");
  slip::TokenSemaphore sem(3);
  sem.initialize(0);
  std::uint64_t rounds = 0;
  cpu.start([&] {
    while (true) {
      sem.insert(cpu);
      (void)sem.try_consume(cpu);
      ++rounds;
      cpu.consume(1, sim::TimeCategory::kBusy);
    }
  });
  for (auto _ : state) {
    engine.run(engine.now() + 7);
  }
  benchmark::DoNotOptimize(rounds);
}
BENCHMARK(BM_TokenRoundTrip);

void BM_BarrierEpisode16(benchmark::State& state) {
  // Full simulated 16-way barrier episodes, including coherence traffic.
  sim::Engine engine;
  mem::AddrSpace as;
  mem::MemorySystem ms(mem::MemParams{}, 8);
  rt::SenseBarrier barrier(ms, as);
  barrier.configure(16);
  for (int c = 0; c < 16; ++c) {
    sim::SimCpu& cpu = engine.add_cpu("p" + std::to_string(c));
    cpu.start([&engine, &barrier, c] {
      sim::SimCpu& me = engine.cpu(c);
      while (true) {
        barrier.arrive(me, c, sim::TimeCategory::kBarrier);
        me.consume(100, sim::TimeCategory::kBusy);
      }
    });
  }
  std::uint64_t last = 0;
  for (auto _ : state) {
    while (barrier.episodes() == last) {
      engine.run(engine.now() + 1000);
    }
    last = barrier.episodes();
  }
}
BENCHMARK(BM_BarrierEpisode16);

void BM_TinyCgExperiment(benchmark::State& state) {
  // End-to-end cost of one tiny experiment (machine build + sim + verify).
  for (auto _ : state) {
    auto factory = apps::make_workload("CG", apps::AppScale::kTiny);
    auto r = core::run_experiment(core::ExperimentConfig::single(2), factory);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_TinyCgExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
