// Figure 3 reproduction: breakdown of shared-data memory requests for
// slipstream mode under static scheduling, one-token local (L1) vs
// zero-token global (G0).
//
// Expected shape (paper §5.1): L1 shows more A-Timely reads than G0 (the
// A-stream is allowed further ahead), G0 shows more A-Late reads (requests
// merge at the shared L2), G0 has higher read-exclusive A coverage (stores
// convert only in the same session) and fewer premature A-Only fills.
#include "bench/bench_common.hpp"

using namespace ssomp;

namespace {

void add_rows(stats::Table& t, const std::string& app, const char* sync,
              const core::ExperimentResult& r) {
  using stats::ReqClass;
  using stats::ReqKind;
  for (ReqKind kind : {ReqKind::kRead, ReqKind::kReadEx}) {
    std::vector<std::string> row = {app, sync, std::string(to_string(kind))};
    for (ReqClass cls :
         {ReqClass::kATimely, ReqClass::kALate, ReqClass::kAOnly,
          ReqClass::kRTimely, ReqClass::kRLate, ReqClass::kROnly}) {
      row.push_back(stats::Table::pct(r.mem.req_class.fraction(kind, cls)));
    }
    row.push_back(std::to_string(r.mem.req_class.total(kind)));
    row.push_back(
        stats::Table::pct(r.mem.req_class.both_streams_fraction(kind)));
    t.add_row(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 3: shared-data request classification, static "
              "scheduling (16 CMPs) ===\n\n");

  core::ExperimentPlan plan = bench::paper_plan("fig3_reqclass");
  for (const auto& spec : apps::paper_suite()) plan.apps.push_back(spec.name);
  plan.modes = {core::parse_mode_axis("slip-L1").value,
                core::parse_mode_axis("slip-G0").value};
  const core::SweepRun run = bench::run_plan(plan, args);

  stats::Table table({"benchmark", "sync", "kind", "A-Timely", "A-Late",
                      "A-Only", "R-Timely", "R-Late", "R-Only", "requests",
                      "both-streams"});

  double l1_read_timely = 0, g0_read_timely = 0;
  double l1_read_late = 0, g0_read_late = 0;
  double l1_ex_a = 0, g0_ex_a = 0;
  double l1_only = 0, g0_only = 0;
  int n = 0;
  for (const std::string& app : plan.apps) {
    const auto& l1 = bench::at(run, app + "/slip-L1");
    const auto& g0 = bench::at(run, app + "/slip-G0");
    add_rows(table, app, "L1", l1);
    add_rows(table, app, "G0", g0);
    using stats::ReqClass;
    using stats::ReqKind;
    l1_read_timely +=
        l1.mem.req_class.fraction(ReqKind::kRead, ReqClass::kATimely);
    g0_read_timely +=
        g0.mem.req_class.fraction(ReqKind::kRead, ReqClass::kATimely);
    l1_read_late +=
        l1.mem.req_class.fraction(ReqKind::kRead, ReqClass::kALate);
    g0_read_late +=
        g0.mem.req_class.fraction(ReqKind::kRead, ReqClass::kALate);
    l1_ex_a += l1.mem.req_class.fraction(ReqKind::kReadEx, ReqClass::kATimely) +
               l1.mem.req_class.fraction(ReqKind::kReadEx, ReqClass::kALate);
    g0_ex_a += g0.mem.req_class.fraction(ReqKind::kReadEx, ReqClass::kATimely) +
               g0.mem.req_class.fraction(ReqKind::kReadEx, ReqClass::kALate);
    l1_only += l1.mem.req_class.fraction(ReqKind::kRead, ReqClass::kAOnly);
    g0_only += g0.mem.req_class.fraction(ReqKind::kRead, ReqClass::kAOnly);
    ++n;
  }
  table.print();

  std::printf("\nAverages across the suite (paper §5.1 comparands):\n");
  std::printf("  A-Timely reads:        L1 %.0f%% vs G0 %.0f%%   (paper: 46%% "
              "vs 26%% — L1 higher)\n",
              100 * l1_read_timely / n, 100 * g0_read_timely / n);
  std::printf("  A-Late reads:          L1 %.0f%% vs G0 %.0f%%   (paper: 15%% "
              "vs 34%% — G0 higher)\n",
              100 * l1_read_late / n, 100 * g0_read_late / n);
  std::printf("  A read-ex coverage:    L1 %.0f%% vs G0 %.0f%%   (paper: 38%% "
              "vs 58%% — G0 higher)\n",
              100 * l1_ex_a / n, 100 * g0_ex_a / n);
  std::printf("  A-Only (premature):    L1 %.0f%% vs G0 %.0f%%   (paper: 8%% "
              "vs 3%% — G0 lower)\n",
              100 * l1_only / n, 100 * g0_only / n);
  return 0;
}
