// Figure 2 reproduction: speedup over single-mode execution and the
// execution-time breakdown, static scheduling, 16 CMPs.
//
// Paper series: single (1 task/CMP), double (2 tasks/CMP), slipstream with
// one-token local sync (L1), slipstream with zero-token global sync (G0).
// Expected shape: slipstream's best beats the best of single/double on all
// five benchmarks by ~5-20% (13.5% average in the paper).
#include "bench/bench_common.hpp"

using namespace ssomp;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  std::printf("=== Figure 2: slipstream vs single/double, static scheduling "
              "(16 CMPs) ===\n\n");
  mem::print_params(mem::MemParams::scaled_for_benchmarks());
  apps::print_paper_suite();

  core::ExperimentPlan plan = bench::paper_plan("fig2_static");
  for (const auto& spec : apps::paper_suite()) plan.apps.push_back(spec.name);
  plan.modes = core::paper_modes();
  const core::SweepRun run = bench::run_plan(plan, args);

  std::vector<std::string> header = {"benchmark", "mode", "cycles",
                                     "speedup"};
  header.insert(header.end(), bench::kBreakdownHeader.begin(),
                bench::kBreakdownHeader.end());
  stats::Table table(header);

  double gain_product = 1.0;
  int gain_count = 0;
  for (const std::string& app : plan.apps) {
    const core::ExperimentResult* results[4];
    for (std::size_t m = 0; m < plan.modes.size(); ++m) {
      results[m] = &bench::at(run, app + "/" + plan.modes[m].name);
    }
    for (std::size_t m = 0; m < plan.modes.size(); ++m) {
      std::vector<std::string> row = {
          app, plan.modes[m].name, std::to_string(results[m]->cycles),
          stats::Table::fmt(core::speedup(*results[0], *results[m]), 3)};
      const auto cells = bench::breakdown_cells(*results[m]);
      row.insert(row.end(), cells.begin(), cells.end());
      table.add_row(row);
    }
    const double best_base =
        std::min(results[0]->cycles, results[1]->cycles);
    const double best_slip =
        std::min(results[2]->cycles, results[3]->cycles);
    gain_product *= best_base / best_slip;
    ++gain_count;
    std::printf("%s: best slipstream vs best(single,double): %+.1f%%  "
                "(favors %s)\n",
                app.c_str(), 100.0 * (best_base / best_slip - 1.0),
                results[2]->cycles < results[3]->cycles ? "L1" : "G0");
  }
  std::printf("\n");
  table.print();
  // Geometric-mean gain over best of single/double (paper: 13.5% average,
  // 5% for LU up to 20% for MG).
  const double avg_gain =
      std::pow(gain_product, 1.0 / gain_count) - 1.0;
  std::printf("\nAverage slipstream gain over best(single,double): %+.1f%% "
              "(paper: ~13.5%%)\n",
              100.0 * avg_gain);
  return 0;
}
