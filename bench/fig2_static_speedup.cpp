// Figure 2 reproduction: speedup over single-mode execution and the
// execution-time breakdown, static scheduling, 16 CMPs.
//
// Paper series: single (1 task/CMP), double (2 tasks/CMP), slipstream with
// one-token local sync (L1), slipstream with zero-token global sync (G0).
// Expected shape: slipstream's best beats the best of single/double on all
// five benchmarks by ~5-20% (13.5% average in the paper).
#include "bench/bench_common.hpp"

using namespace ssomp;

int main() {
  std::printf("=== Figure 2: slipstream vs single/double, static scheduling "
              "(16 CMPs) ===\n\n");
  bench::print_table1(bench::paper_machine().mem);
  bench::print_table2();

  struct Series {
    const char* name;
    rt::ExecutionMode mode;
    slip::SlipstreamConfig slip;
  };
  const Series series[] = {
      {"single", rt::ExecutionMode::kSingle, slip::SlipstreamConfig::disabled()},
      {"double", rt::ExecutionMode::kDouble, slip::SlipstreamConfig::disabled()},
      {"slip-L1", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::one_token_local()},
      {"slip-G0", rt::ExecutionMode::kSlipstream,
       slip::SlipstreamConfig::zero_token_global()},
  };

  std::vector<std::string> header = {"benchmark", "mode", "cycles",
                                     "speedup"};
  header.insert(header.end(), bench::kBreakdownHeader.begin(),
                bench::kBreakdownHeader.end());
  stats::Table table(header);

  double gain_product = 1.0;
  int gain_count = 0;
  for (const auto& spec : apps::paper_suite()) {
    core::ExperimentResult results[4];
    for (int s = 0; s < 4; ++s) {
      results[s] = bench::run_mode(spec.name, series[s].mode, series[s].slip);
      bench::check_verified(spec.name, results[s]);
    }
    for (int s = 0; s < 4; ++s) {
      std::vector<std::string> row = {
          spec.name, series[s].name,
          std::to_string(results[s].cycles),
          stats::Table::fmt(core::speedup(results[0], results[s]), 3)};
      const auto cells = bench::breakdown_cells(results[s]);
      row.insert(row.end(), cells.begin(), cells.end());
      table.add_row(row);
    }
    const double best_base =
        std::min(results[0].cycles, results[1].cycles);
    const double best_slip =
        std::min(results[2].cycles, results[3].cycles);
    gain_product *= best_base / best_slip;
    ++gain_count;
    std::printf("%s: best slipstream vs best(single,double): %+.1f%%  "
                "(favors %s)\n",
                spec.name.c_str(), 100.0 * (best_base / best_slip - 1.0),
                results[2].cycles < results[3].cycles ? "L1" : "G0");
  }
  std::printf("\n");
  table.print();
  // Geometric-mean gain over best of single/double (paper: 13.5% average,
  // 5% for LU up to 20% for MG).
  const double avg_gain =
      std::pow(gain_product, 1.0 / gain_count) - 1.0;
  std::printf("\nAverage slipstream gain over best(single,double): %+.1f%% "
              "(paper: ~13.5%%)\n",
              100.0 * avg_gain);
  return 0;
}
