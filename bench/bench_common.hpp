// Shared helpers for the figure-reproduction harnesses: the Table 1/2
// printers and the sweep plumbing every harness shares — CLI flags, plan
// execution on the parallel driver, verification, and canonical
// BENCH_*.json emission (docs/SWEEPS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/ssomp.hpp"

namespace ssomp::bench {

/// Breakdown columns in the paper's Figure 2/4 order. TokenWait and
/// StreamWait fold into the barrier category as in the paper's plots.
inline std::vector<std::string> breakdown_cells(
    const core::ExperimentResult& r) {
  using sim::TimeCategory;
  return {
      stats::Table::pct(r.fraction(TimeCategory::kBusy)),
      stats::Table::pct(r.fraction(TimeCategory::kMemStall)),
      stats::Table::pct(r.fraction(TimeCategory::kLock)),
      stats::Table::pct(r.barrier_fraction()),
      stats::Table::pct(r.fraction(TimeCategory::kScheduling)),
      stats::Table::pct(r.fraction(TimeCategory::kJobWait)),
  };
}

inline const std::vector<std::string> kBreakdownHeader = {
    "busy", "mem_stall", "lock", "barrier", "sched", "job_wait"};

using BenchArgs = core::SweepCli;

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (!core::parse_sweep_flag(argc, argv, i, args)) {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--out FILE] [--no-host-seconds]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// A plan whose base machine is the paper machine: the 16-CMP system of
/// Table 1 with cache capacities scaled to the reduced problem classes
/// (EXPERIMENTS.md, "scaling").
inline core::ExperimentPlan paper_plan(const std::string& name) {
  core::ExperimentPlan plan;
  plan.name = name;
  plan.base.machine.mem = mem::MemParams::scaled_for_benchmarks();
  return plan;
}

/// Runs `plan` on the parallel sweep driver and writes the canonical
/// aggregate JSON to BENCH_<plan.name>.json (or `args.out`). The figure
/// harnesses expect a fully-verified grid, so any failed or unverified
/// point is fatal.
inline core::SweepRun run_plan(const core::ExperimentPlan& plan,
                               const BenchArgs& args,
                               const core::WorkloadResolver& resolver =
                                   apps::plan_resolver()) {
  core::SweepRun run =
      core::run_sweep(plan, resolver, core::SweepOptions{.jobs = args.jobs, .progress = {}});
  for (const core::RunRecord& rec : run.records) {
    if (!rec.ok || !rec.result.workload.verified ||
        !rec.result.invariants_ok) {
      std::fprintf(stderr, "FATAL: %s failed: %s\n", rec.label.c_str(),
                   rec.ok ? rec.result.workload.detail.c_str()
                          : rec.error.c_str());
      std::exit(1);
    }
  }
  const std::string path =
      args.out.empty() ? "BENCH_" + plan.name + ".json" : args.out;
  if (!core::write_sweep_json(
          run, path,
          core::SweepJsonOptions{.host_seconds = args.host_seconds})) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("[%s] %zu points on %d job(s) -> %s\n", plan.name.c_str(),
              run.points.size(), run.jobs, path.c_str());
  return run;
}

/// The result of the successful run labelled "CG/slip-L1/cmp4", ...;
/// fatal if the plan has no such point.
inline const core::ExperimentResult& at(const core::SweepRun& run,
                                        const std::string& label) {
  const core::RunRecord* rec = run.find(label);
  if (rec == nullptr || !rec->ok) {
    std::fprintf(stderr, "FATAL: no successful run labelled '%s'\n",
                 label.c_str());
    std::exit(1);
  }
  return rec->result;
}

}  // namespace ssomp::bench
