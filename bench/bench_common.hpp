// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/ssomp.hpp"

namespace ssomp::bench {

/// The machine every experiment harness simulates: the paper's 16-CMP
/// system (Table 1) with cache capacities scaled to the reduced problem
/// classes (EXPERIMENTS.md, "scaling").
inline machine::MachineConfig paper_machine(int ncmp = 16) {
  machine::MachineConfig mc;
  mc.ncmp = ncmp;
  mc.mem = mem::MemParams::scaled_for_benchmarks();
  return mc;
}

inline void print_table1(const mem::MemParams& p) {
  std::printf("Simulated system parameters (paper Table 1):\n");
  std::printf("  CPU: MIPSY-like in-order CMP model, %.1f GHz\n", p.clock_ghz);
  std::printf("  L1: %u KB, %u-way, hit %llu cycle(s)\n",
              p.l1_size_bytes / 1024, p.l1_assoc,
              static_cast<unsigned long long>(p.l1_hit_cycles));
  std::printf("  L2 (shared): %u KB, %u-way, hit %llu cycles\n",
              p.l2_size_bytes / 1024, p.l2_assoc,
              static_cast<unsigned long long>(p.l2_hit_cycles));
  std::printf(
      "  BusTime %.0fns  PILocalDC %.0fns  NILocalDC %.0fns  NIRemoteDC "
      "%.0fns  Net %.0fns  Mem %.0fns\n",
      p.bus_ns, p.pi_local_dc_ns, p.ni_local_dc_ns, p.ni_remote_dc_ns,
      p.net_ns, p.mem_ns);
  std::printf("  min local miss %llu cycles (170ns), min remote miss %llu "
              "cycles (290ns)\n\n",
              static_cast<unsigned long long>(p.min_local_miss_cycles()),
              static_cast<unsigned long long>(p.min_remote_miss_cycles()));
}

inline void print_table2() {
  std::printf("Benchmarks (paper Table 2; reduced problem classes):\n");
  stats::Table t({"benchmark", "description", "dynamic suite"});
  for (const auto& s : apps::paper_suite()) {
    t.add_row({s.name, s.description, s.in_dynamic_suite ? "yes" : "no"});
  }
  t.print();
  std::printf("\n");
}

/// Runs one workload under one mode on the paper machine.
inline core::ExperimentResult run_mode(const std::string& app,
                                       rt::ExecutionMode mode,
                                       slip::SlipstreamConfig slip,
                                       front::ScheduleClause sched = {},
                                       int ncmp = 16) {
  core::ExperimentConfig cfg;
  cfg.machine = paper_machine(ncmp);
  cfg.runtime.mode = mode;
  cfg.runtime.slip = slip;
  return core::run_experiment(
      cfg, apps::make_workload(app, apps::AppScale::kBench, sched));
}

/// Breakdown columns in the paper's Figure 2/4 order. TokenWait and
/// StreamWait fold into the barrier category as in the paper's plots.
inline std::vector<std::string> breakdown_cells(
    const core::ExperimentResult& r) {
  using sim::TimeCategory;
  return {
      stats::Table::pct(r.fraction(TimeCategory::kBusy)),
      stats::Table::pct(r.fraction(TimeCategory::kMemStall)),
      stats::Table::pct(r.fraction(TimeCategory::kLock)),
      stats::Table::pct(r.barrier_fraction()),
      stats::Table::pct(r.fraction(TimeCategory::kScheduling)),
      stats::Table::pct(r.fraction(TimeCategory::kJobWait)),
  };
}

inline const std::vector<std::string> kBreakdownHeader = {
    "busy", "mem_stall", "lock", "barrier", "sched", "job_wait"};

inline void check_verified(const std::string& app,
                           const core::ExperimentResult& r) {
  if (!r.workload.verified || !r.invariants_ok) {
    std::fprintf(stderr, "FATAL: %s failed verification: %s\n", app.c_str(),
                 r.workload.detail.c_str());
    std::exit(1);
  }
}

}  // namespace ssomp::bench
