// slipreport — the slipstream-aware compiler's report tool.
//
//   slipreport file.c [OMP_SLIPSTREAM-value]
//
// Scans OpenMP-annotated source and prints the slipstream handling of
// every construct (paper §3.1) plus the resolved A/R synchronization per
// parallel region (§3.3 precedence). With no file argument, reads stdin.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "front/report.hpp"

int main(int argc, char** argv) {
  std::string source;
  std::string env;
  if (argc > 1 && std::string(argv[1]) != "-") {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "slipreport: cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }
  if (argc > 2) env = argv[2];

  const auto report = ssomp::front::analyze_source(source, env);
  std::fputs(ssomp::front::format_report(report).c_str(), stdout);
  return report.errors.empty() ? 0 : 2;
}
