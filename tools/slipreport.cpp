// slipreport — the slipstream-aware compiler's report tool.
//
//   slipreport file.c [OMP_SLIPSTREAM-value]
//   slipreport --trace trace.json
//   slipreport --sweep aggregate.json
//   slipreport --compare base.json cand.json
//
// In source mode, scans OpenMP-annotated source and prints the slipstream
// handling of every construct (paper §3.1) plus the resolved A/R
// synchronization per parallel region (§3.3 precedence). With no file
// argument, reads stdin.
//
// In trace mode, parses a Chrome trace-event JSON file produced by
// `ssomp_run --trace` and prints the protocol summary (exact token
// counts, retained-event breakdowns, wait/barrier slice durations).
// Exits nonzero when the file is not valid trace JSON.
//
// In sweep mode, strictly validates an ssomp-sweep-v1 aggregate
// (truncated or schema-violating input exits nonzero with a clear
// message) and prints the per-point summary plus the top-down
// cycle-account breakdown (docs/OBSERVABILITY.md). --compare diffs two
// aggregates with slipdiff's zero-threshold semantics.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/diff.hpp"
#include "front/report.hpp"
#include "stats/report.hpp"
#include "trace/summary.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// --sweep mode: validate the aggregate, print one row per point, then
/// the cycle-account bucket breakdown summed across ok points.
int sweep_mode(const char* path) {
  const ssomp::core::LoadedSweep sweep =
      ssomp::core::load_sweep_file(path);
  if (!sweep.ok) {
    std::fprintf(stderr, "slipreport: %s\n", sweep.error.c_str());
    return 2;
  }
  const ssomp::trace::JsonValue& root = sweep.root;
  const ssomp::trace::JsonValue* plan = root.find("plan");
  const ssomp::trace::JsonValue* points = root.find("points");
  std::printf("sweep '%s': %zu points\n",
              plan->string_or("name").c_str(), points->array.size());

  ssomp::stats::Table t(
      {"point", "cycles", "verified", "audit", "account", "status"});
  std::map<std::string, double> buckets;  // bucket name -> summed cycles
  double accounted = 0.0;
  int bad = 0;
  for (const ssomp::trace::JsonValue& p : points->array) {
    const ssomp::trace::JsonValue* ok = p.find("ok");
    if (ok == nullptr ||
        ok->type != ssomp::trace::JsonValue::Type::kBool || !ok->boolean) {
      ++bad;
      t.add_row({p.string_or("label"), "-", "-", "-", "-",
                 "ERROR: " + p.string_or("error", "failed")});
      continue;
    }
    const auto flag = [&](const char* key) {
      const ssomp::trace::JsonValue* v = p.find(key);
      const bool set =
          v == nullptr || v->type != ssomp::trace::JsonValue::Type::kBool ||
          v->boolean;
      if (!set) ++bad;
      return set ? "ok" : "FAIL";
    };
    t.add_row({p.string_or("label"),
               std::to_string(static_cast<unsigned long long>(
                   p.number_or("cycles"))),
               flag("verified"), flag("audit_ok"), flag("cycle_account_ok"),
               "ok"});
    const ssomp::trace::JsonValue* account = p.find("cycle_account");
    if (account == nullptr) continue;
    const ssomp::trace::JsonValue* pb = account->find("buckets");
    if (pb == nullptr || !pb->is_object()) continue;
    for (const auto& [name, v] : pb->object) {
      if (!v.is_number()) continue;
      buckets[name] += v.number;
      accounted += v.number;
    }
  }
  std::fputs(t.to_string().c_str(), stdout);

  if (accounted > 0.0) {
    std::printf("\ncycle account (all ok points, %llu cpu-cycles):\n",
                static_cast<unsigned long long>(accounted));
    ssomp::stats::Table b({"bucket", "cycles", "share"});
    for (const auto& [name, cycles] : buckets) {
      if (cycles <= 0.0) continue;
      b.add_row({name,
                 std::to_string(static_cast<unsigned long long>(cycles)),
                 ssomp::stats::Table::pct(cycles / accounted)});
    }
    std::fputs(b.to_string().c_str(), stdout);
  }
  return bad == 0 ? 0 : 1;
}

/// --compare mode: slipdiff semantics (zero thresholds) behind the
/// report tool's front door.
int compare_mode(const char* base, const char* cand) {
  const ssomp::core::SweepDiff diff =
      ssomp::core::diff_sweep_files(base, cand, {});
  if (!diff.ok) {
    std::fprintf(stderr, "slipreport: %s\n", diff.error.c_str());
    return 2;
  }
  std::fputs(ssomp::core::diff_to_text(diff).c_str(), stdout);
  return diff.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--sweep") {
    if (argc < 3) {
      std::fprintf(stderr, "slipreport: --sweep needs a file argument\n");
      return 2;
    }
    return sweep_mode(argv[2]);
  }
  if (argc > 1 && std::string(argv[1]) == "--compare") {
    if (argc < 4) {
      std::fprintf(stderr,
                   "slipreport: --compare needs BASE and CAND files\n");
      return 2;
    }
    return compare_mode(argv[2], argv[3]);
  }
  if (argc > 1 && std::string(argv[1]) == "--trace") {
    if (argc < 3) {
      std::fprintf(stderr, "slipreport: --trace needs a file argument\n");
      return 2;
    }
    std::string text;
    if (!read_file(argv[2], text)) {
      std::fprintf(stderr, "slipreport: cannot open %s\n", argv[2]);
      return 1;
    }
    const auto summary = ssomp::trace::summarize_chrome_trace_text(text);
    if (!summary.ok) {
      std::fprintf(stderr, "slipreport: %s: %s\n", argv[2],
                   summary.error.c_str());
      return 2;
    }
    std::fputs(summary.format().c_str(), stdout);
    return 0;
  }

  std::string source;
  std::string env;
  if (argc > 1 && std::string(argv[1]) != "-") {
    if (!read_file(argv[1], source)) {
      std::fprintf(stderr, "slipreport: cannot open %s\n", argv[1]);
      return 1;
    }
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }
  if (argc > 2) env = argv[2];

  const auto report = ssomp::front::analyze_source(source, env);
  std::fputs(ssomp::front::format_report(report).c_str(), stdout);
  return report.errors.empty() ? 0 : 2;
}
