// slipreport — the slipstream-aware compiler's report tool.
//
//   slipreport file.c [OMP_SLIPSTREAM-value]
//   slipreport --trace trace.json
//
// In source mode, scans OpenMP-annotated source and prints the slipstream
// handling of every construct (paper §3.1) plus the resolved A/R
// synchronization per parallel region (§3.3 precedence). With no file
// argument, reads stdin.
//
// In trace mode, parses a Chrome trace-event JSON file produced by
// `ssomp_run --trace` and prints the protocol summary (exact token
// counts, retained-event breakdowns, wait/barrier slice durations).
// Exits nonzero when the file is not valid trace JSON.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "front/report.hpp"
#include "trace/summary.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--trace") {
    if (argc < 3) {
      std::fprintf(stderr, "slipreport: --trace needs a file argument\n");
      return 2;
    }
    std::string text;
    if (!read_file(argv[2], text)) {
      std::fprintf(stderr, "slipreport: cannot open %s\n", argv[2]);
      return 1;
    }
    const auto summary = ssomp::trace::summarize_chrome_trace_text(text);
    if (!summary.ok) {
      std::fprintf(stderr, "slipreport: %s: %s\n", argv[2],
                   summary.error.c_str());
      return 2;
    }
    std::fputs(summary.format().c_str(), stdout);
    return 0;
  }

  std::string source;
  std::string env;
  if (argc > 1 && std::string(argv[1]) != "-") {
    if (!read_file(argv[1], source)) {
      std::fprintf(stderr, "slipreport: cannot open %s\n", argv[1]);
      return 1;
    }
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  }
  if (argc > 2) env = argv[2];

  const auto report = ssomp::front::analyze_source(source, env);
  std::fputs(ssomp::front::format_report(report).c_str(), stdout);
  return report.errors.empty() ? 0 : 2;
}
