// ssomp_run — general experiment driver.
//
//   ssomp_run [--app NAME] [--mode single|double|slipstream]
//             [--sync global|local] [--tokens N] [--ncmp N]
//             [--sched static|dynamic|guided|affinity[,CHUNK]]
//             [--scale tiny|bench] [--env OMP_SLIPSTREAM-value]
//             [--self-invalidation] [--divergence N]
//             [--recovery bench|restart[,BUDGET]] [--watchdog N]
//             [--degrade[=DEMOTE,PROBATION]]
//             [--inject KIND[,NODE[,VISIT[,SEED]]]] [--audit] [--json]
//             [--trace FILE] [--metrics] [--timeline FILE[,INTERVAL]]
//   ssomp_run --sweep PLANFILE [--jobs N] [--out FILE]
//             [--no-host-seconds] [--progress]
//   ssomp_run --modelcheck [--max-states N]
//   ssomp_run --replay SCHEDULEFILE
//
// Runs one workload on one configuration and prints either a summary
// table or a machine-readable JSON object. --inject deterministically
// fires one fault into the slipstream recovery machinery (see
// docs/FAULTS.md); --audit enables the token/mailbox/recovery invariant
// auditor (always on in debug builds) and fails the run on violations.
// --recovery/--watchdog/--degrade select the resilience machinery (see
// docs/RECOVERY.md). --trace/--metrics/--timeline are the observability
// layer (see docs/OBSERVABILITY.md). Every value-taking flag also
// accepts the --flag=value form.
//
// --sweep switches to plan mode: PLANFILE declares an experiment grid
// (docs/SWEEPS.md) that runs on the parallel sweep driver (--jobs, or
// SSOMP_JOBS, default = hardware concurrency) and emits the canonical
// ssomp-sweep-v1 aggregate JSON to --out (default stdout).
// --no-host-seconds drops wall-clock timing so the same plan serializes
// byte-identically at any job count. --progress streams one-line
// per-run start/finish/fail updates (with an ETA once the first run
// completes) to stderr while the grid executes.
//
// --modelcheck runs the bounded protocol model checker over the
// canonical verification grid (docs/VERIFICATION.md; the dedicated
// slipcheck tool exposes single-config knobs). --replay executes an
// ssomp-schedule-v1 counterexample file on the live protocol objects in
// lockstep with the model.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "core/json.hpp"
#include "core/ssomp.hpp"
#include "slip/model/checker.hpp"
#include "slip/model/grid.hpp"
#include "slip/model/replay.hpp"
#include "slip/model/schedule.hpp"

using namespace ssomp;

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "ssomp_run: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: ssomp_run [--app NAME] [--mode single|double|slipstream]\n"
      "                 [--sync global|local] [--tokens N] [--ncmp N]\n"
      "                 [--sched KIND[,CHUNK]] [--scale tiny|bench]\n"
      "                 [--env VALUE] [--self-invalidation] [--json]\n"
      "                 [--divergence N] [--recovery bench|restart[,N]]\n"
      "                 [--watchdog CYCLES] [--degrade[=DEMOTE,PROBATION]]\n"
      "                 [--inject KIND[,NODE[,VISIT[,SEED]]]] [--audit]\n"
      "                 [--trace FILE] [--metrics]\n"
      "                 [--timeline FILE[,INTERVAL]]\n"
      "       ssomp_run --sweep PLANFILE [--jobs N] [--out FILE]\n"
      "                 [--no-host-seconds] [--progress]\n"
      "       ssomp_run --modelcheck [--max-states N]\n"
      "       ssomp_run --replay SCHEDULEFILE\n"
      "  fault kinds: skip-barrier duplicate-barrier starve-token\n"
      "               extra-token recover-in-consume recover-in-syscall\n"
      "               corrupt-forward a-stream-hang r-stream-token-loss\n"
      "  --divergence N   flag divergence when the A-stream lags the\n"
      "                   R-stream by more than N barriers (0 = off)\n"
      "  --recovery P[,N] bench: a diverged A-stream sits out the region;\n"
      "                   restart: resynchronize and resume run-ahead, up\n"
      "                   to N restarts per region (default 3)\n"
      "  --watchdog C     diagnose any protocol wait longer than C\n"
      "                   simulated cycles as a hang and force recovery\n"
      "  --degrade[=D,P]  demote a CMP to single-stream after D regions\n"
      "                   with recoveries; re-probe after P regions\n"
      "                   (defaults 2,4)\n"
      "  --trace FILE     write a Perfetto-loadable Chrome trace-event\n"
      "                   JSON of the slipstream protocol to FILE\n"
      "  --metrics        print counters + cycle histograms (implied by\n"
      "                   --trace; included in --json output)\n"
      "  --timeline FILE  write per-CPU activity samples as CSV, sampled\n"
      "                   every INTERVAL cycles (default 10000)\n"
      "  --sweep FILE     run the declared experiment grid in FILE on the\n"
      "                   parallel sweep driver (docs/SWEEPS.md)\n"
      "  --jobs N         concurrent runs for --sweep (default: SSOMP_JOBS\n"
      "                   env, then hardware concurrency)\n"
      "  --out FILE       write the sweep aggregate JSON to FILE\n"
      "                   (default stdout)\n"
      "  --no-host-seconds  omit wall-clock fields: the sweep JSON is then\n"
      "                   byte-identical at any --jobs count\n"
      "  --progress       stream per-run start/finish/ETA lines to stderr\n"
      "                   while the sweep executes\n"
      "  --modelcheck     exhaustively check the token/recovery protocol\n"
      "                   model over the verification grid\n"
      "                   (docs/VERIFICATION.md)\n"
      "  --replay FILE    execute an ssomp-schedule-v1 counterexample on\n"
      "                   the live protocol objects in model lockstep\n"
      "  all value flags accept --flag VALUE or --flag=VALUE\n");
  std::exit(2);
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

/// --sweep mode: parse the plan file, run it on the driver, emit the
/// canonical aggregate. Per-point failures are reported but only fail the
/// process exit code — the rest of the grid still completes and lands in
/// the JSON.
int run_sweep_mode(const std::string& plan_file, int jobs,
                   const std::string& out_file, bool host_seconds,
                   bool progress) {
  std::ifstream in(plan_file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ssomp_run: cannot read plan file %s\n",
                 plan_file.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = core::parse_plan(text.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "ssomp_run: %s: %s\n", plan_file.c_str(),
                 parsed.error.c_str());
    return 2;
  }

  core::SweepOptions opts;
  opts.jobs = jobs;
  if (progress) {
    opts.progress = [](const core::ProgressEvent& ev) {
      if (ev.kind == core::ProgressEvent::Kind::kStart) {
        std::fprintf(stderr, "[%zu/%zu] start  %s\n", ev.completed,
                     ev.total, ev.label.c_str());
        return;
      }
      const bool failed = ev.kind == core::ProgressEvent::Kind::kFail;
      std::fprintf(stderr, "[%zu/%zu] %s %s (%.2fs, eta %.0fs)\n",
                   ev.completed, ev.total, failed ? "FAIL  " : "finish",
                   ev.label.c_str(), ev.host_seconds, ev.eta_seconds);
    };
  }
  const core::SweepRun run =
      core::run_sweep(parsed.value, apps::plan_resolver(), opts);

  stats::Table t({"point", "cycles", "verified", "status"});
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const core::RunRecord& rec = run.records[i];
    if (rec.ok) {
      t.add_row({run.points[i].label, std::to_string(rec.result.cycles),
                 rec.result.workload.verified ? "yes" : "NO", "ok"});
    } else {
      t.add_row({run.points[i].label, "-", "-", "ERROR: " + rec.error});
    }
  }
  std::fprintf(stderr, "sweep '%s': %zu points on %d job(s), %d failure(s)\n",
               run.plan.name.c_str(), run.points.size(), run.jobs,
               run.failures());
  const core::SweepJsonOptions jopts{.host_seconds = host_seconds};
  if (out_file.empty()) {
    std::printf("%s\n", core::sweep_to_json(run, jopts).c_str());
  } else {
    t.print();
    if (!core::write_sweep_json(run, out_file, jopts)) {
      std::fprintf(stderr, "ssomp_run: cannot write %s\n", out_file.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_file.c_str());
  }
  bool all_verified = true;
  for (const core::RunRecord& rec : run.records) {
    if (!rec.ok || !rec.result.workload.verified ||
        !rec.result.invariants_ok || !rec.result.audit_ok ||
        !rec.result.cycle_account_ok) {
      all_verified = false;
    }
  }
  return all_verified ? 0 : 1;
}

/// --modelcheck mode: exhaustively enumerate the canonical verification
/// grid. Exit 0 only when every configuration verifies with zero
/// violations; a counterexample schedule is printed for the first
/// violation found (replayable with --replay).
int run_modelcheck_mode(std::uint64_t max_states) {
  slip::model::CheckerOptions opts;
  if (max_states > 0) opts.max_states = max_states;
  const auto grid = slip::model::default_grid();
  std::printf("modelcheck: %zu grid configurations, budget %llu states\n",
              grid.size(), static_cast<unsigned long long>(opts.max_states));
  bool truncated = false;
  for (const auto& cfg : grid) {
    slip::model::Model model(cfg);
    const auto res = slip::model::run_checker(model, opts);
    if (!res.ok) {
      std::printf("%s VIOLATION\nviolation: %s\n", cfg.describe().c_str(),
                  res.violation.c_str());
      slip::model::Schedule sched;
      sched.config = cfg;
      sched.actions = res.schedule;
      sched.expect = res.violation;
      std::printf("--- counterexample (%zu steps) ---\n%s---\n",
                  res.schedule.size(), serialize_schedule(sched).c_str());
      return 1;
    }
    if (res.truncated) {
      truncated = true;
      std::printf("%s TRUNCATED at %llu states\n", cfg.describe().c_str(),
                  static_cast<unsigned long long>(res.stats.states_visited));
    }
  }
  std::printf("modelcheck: zero violations%s\n",
              truncated ? " (some configs truncated by the state budget)"
                        : ", all configurations exhaustive");
  return 0;
}

/// --replay mode: run a counterexample (or recorded random-walk) schedule
/// on the real protocol objects, comparing against the model in lockstep.
int run_replay_mode(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ssomp_run: cannot read schedule %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = slip::model::parse_schedule(text.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "ssomp_run: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return 2;
  }
  const slip::model::Schedule& sched = parsed.value;
  std::printf("replaying %zu steps on %s\n", sched.actions.size(),
              sched.config.describe().c_str());
  const auto res = slip::model::replay_schedule(sched);
  std::printf("steps executed: %zu, live/model comparisons: %zu\n",
              res.steps_executed, res.compares);
  if (!res.fidelity_ok) {
    std::printf("FIDELITY ERROR: %s\n", res.fidelity_error.c_str());
    return 3;
  }
  for (const std::string& v : res.live_violations) {
    std::printf("live protocol violation: %s\n", v.c_str());
  }
  if (res.violation_hit) {
    std::printf("model violation at step %zu: %s\n", res.violation_step,
                res.violation.c_str());
  }
  if (!sched.expect.empty()) {
    std::printf("expected violation %sreproduced: %s\n",
                res.ok ? "" : "NOT ", sched.expect.c_str());
    return res.ok ? 0 : 1;
  }
  if (res.ok) {
    std::printf("replay clean: live and model agreed at every step\n");
  }
  return res.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app = "CG";
  std::string mode = "slipstream";
  std::string sync = "local";
  std::string sched_text = "static";
  std::string env;
  int tokens = 1;
  int ncmp = 16;
  bool tiny = false;
  bool json = false;
  bool self_inval = false;
  slip::FaultPlan fault{};
  bool audit = slip::kAuditDefaultOn;
  std::string trace_file;
  std::string timeline_spec;
  bool metrics = false;
  int divergence = 0;
  rt::RecoveryPolicy recovery = rt::RecoveryPolicy::kBench;
  int restart_budget = 3;
  long watchdog_cycles = 0;
  rt::DegradeOptions degrade{};
  std::string sweep_file;
  std::string out_file;
  int jobs = 0;
  bool host_seconds = true;
  bool progress = false;
  bool modelcheck = false;
  std::uint64_t max_states = 0;
  std::string replay_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.erase(eq);
        has_inline = true;
      }
    }
    const auto value = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--app") {
      app = value();
    } else if (arg == "--mode") {
      mode = value();
    } else if (arg == "--sync") {
      sync = value();
    } else if (arg == "--tokens") {
      tokens = std::atoi(value().c_str());
    } else if (arg == "--ncmp") {
      ncmp = std::atoi(value().c_str());
    } else if (arg == "--sched") {
      sched_text = value();
    } else if (arg == "--scale") {
      tiny = value() == "tiny";
    } else if (arg == "--env") {
      env = value();
    } else if (arg == "--self-invalidation") {
      self_inval = true;
    } else if (arg == "--divergence") {
      divergence = std::atoi(value().c_str());
      if (divergence < 0) usage("bad --divergence (must be >= 0)");
    } else if (arg == "--recovery") {
      std::string v = value();
      const auto comma = v.find(',');
      if (comma != std::string::npos) {
        restart_budget = std::atoi(v.c_str() + comma + 1);
        if (restart_budget < 0) usage("bad --recovery budget");
        v.erase(comma);
      }
      if (v == "bench") {
        recovery = rt::RecoveryPolicy::kBench;
      } else if (v == "restart") {
        recovery = rt::RecoveryPolicy::kRestart;
      } else {
        usage("bad --recovery (expected bench or restart)");
      }
    } else if (arg == "--watchdog") {
      watchdog_cycles = std::atol(value().c_str());
      if (watchdog_cycles < 0) usage("bad --watchdog (must be >= 0)");
    } else if (arg == "--degrade") {
      degrade.enabled = true;
      if (has_inline) {  // value is optional: bare --degrade uses defaults
        const std::string v = value();
        const auto comma = v.find(',');
        degrade.demote_after = std::atoi(v.c_str());
        if (comma != std::string::npos) {
          degrade.probation = std::atoi(v.c_str() + comma + 1);
        }
        if (degrade.demote_after < 1 || degrade.probation < 1) {
          usage("bad --degrade (expected DEMOTE,PROBATION >= 1)");
        }
      }
    } else if (arg == "--inject") {
      const auto parsed = slip::parse_fault_plan(value());
      if (!parsed.ok) usage(("bad --inject: " + parsed.error).c_str());
      fault = parsed.value;
      audit = true;  // an injected fault is only meaningful if checked
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--trace") {
      trace_file = value();
      if (trace_file.empty()) usage("empty --trace file name");
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--timeline") {
      timeline_spec = value();
      if (timeline_spec.empty()) usage("empty --timeline file name");
    } else if (arg == "--sweep") {
      sweep_file = value();
      if (sweep_file.empty()) usage("empty --sweep plan file name");
    } else if (arg == "--jobs") {
      jobs = std::atoi(value().c_str());
      if (jobs < 0) usage("bad --jobs (must be >= 0)");
    } else if (arg == "--out") {
      out_file = value();
      if (out_file.empty()) usage("empty --out file name");
    } else if (arg == "--no-host-seconds") {
      host_seconds = false;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--modelcheck") {
      modelcheck = true;
    } else if (arg == "--max-states") {
      max_states = std::strtoull(value().c_str(), nullptr, 10);
      if (max_states == 0) usage("bad --max-states (must be > 0)");
    } else if (arg == "--replay") {
      replay_file = value();
      if (replay_file.empty()) usage("empty --replay schedule file name");
    } else {
      usage(("unknown argument " + std::string(argv[i])).c_str());
    }
  }

  if (!sweep_file.empty()) {
    return run_sweep_mode(sweep_file, jobs, out_file, host_seconds,
                          progress);
  }
  if (modelcheck) return run_modelcheck_mode(max_states);
  if (!replay_file.empty()) return run_replay_mode(replay_file);

  // App names are registered uppercase; accept any casing on the CLI.
  for (char& c : app) c = static_cast<char>(std::toupper(
                         static_cast<unsigned char>(c)));

  core::ExperimentConfig cfg;
  cfg.machine.ncmp = ncmp;
  cfg.machine.mem = mem::MemParams::scaled_for_benchmarks();
  if (mode == "single") {
    cfg.runtime.mode = rt::ExecutionMode::kSingle;
  } else if (mode == "double") {
    cfg.runtime.mode = rt::ExecutionMode::kDouble;
  } else if (mode == "slipstream") {
    cfg.runtime.mode = rt::ExecutionMode::kSlipstream;
  } else {
    usage("bad --mode");
  }
  cfg.runtime.slip.type =
      sync == "local" ? slip::SyncType::kLocal : slip::SyncType::kGlobal;
  cfg.runtime.slip.tokens = tokens;
  cfg.runtime.omp_slipstream_env = env;
  cfg.runtime.policies.self_invalidation = self_inval;
  cfg.runtime.divergence_threshold = divergence;
  cfg.runtime.recovery = recovery;
  cfg.runtime.restart_budget = restart_budget;
  cfg.runtime.watchdog_cycles = static_cast<sim::Cycles>(watchdog_cycles);
  cfg.runtime.degrade = degrade;
  cfg.runtime.fault = fault;
  cfg.runtime.audit = audit;
  cfg.runtime.trace.enabled = !trace_file.empty();
  cfg.runtime.metrics = metrics;

  std::string timeline_file;
  if (!timeline_spec.empty()) {
    timeline_file = timeline_spec;
    cfg.timeline_interval = 10000;
    const auto comma = timeline_spec.rfind(',');
    if (comma != std::string::npos && comma + 1 < timeline_spec.size()) {
      const long interval = std::atol(timeline_spec.c_str() + comma + 1);
      if (interval > 0) {
        timeline_file = timeline_spec.substr(0, comma);
        cfg.timeline_interval = static_cast<sim::Cycles>(interval);
      }
    }
    if (timeline_file.empty()) usage("empty --timeline file name");
  }

  const auto sched = front::parse_schedule_clause(sched_text);
  if (!sched.ok) usage(("bad --sched: " + sched.error).c_str());

  const auto factory = apps::make_workload(
      app, tiny ? apps::AppScale::kTiny : apps::AppScale::kBench,
      sched.value);
  const auto result = core::run_experiment(cfg, factory);

  bool outputs_ok = true;
  if (!trace_file.empty()) {
    if (!write_file(trace_file, result.trace_json)) {
      std::fprintf(stderr, "ssomp_run: cannot write trace to %s\n",
                   trace_file.c_str());
      outputs_ok = false;
    }
  }
  if (!timeline_file.empty()) {
    if (!write_file(timeline_file, result.timeline_csv)) {
      std::fprintf(stderr, "ssomp_run: cannot write timeline to %s\n",
                   timeline_file.c_str());
      outputs_ok = false;
    }
  }

  if (json) {
    std::printf("%s\n", core::to_json(cfg, result).c_str());
  } else {
    std::printf("%s on %d CMPs, %s mode", app.c_str(), ncmp, mode.c_str());
    if (cfg.runtime.mode == rt::ExecutionMode::kSlipstream) {
      std::printf(" (%s, tokens=%d)", std::string(to_string(
                                          cfg.runtime.slip.type))
                                          .c_str(),
                  tokens);
    }
    std::printf(", schedule %s\n", sched_text.c_str());
    std::printf("cycles: %llu   verified: %s   %s\n",
                static_cast<unsigned long long>(result.cycles),
                result.workload.verified ? "yes" : "NO",
                result.workload.detail.c_str());
    if (fault.active()) {
      std::printf("fault: %s node=%d visit=%llu   fired: %llu\n",
                  std::string(slip::to_string(fault.kind)).c_str(),
                  fault.node, static_cast<unsigned long long>(fault.visit),
                  static_cast<unsigned long long>(result.faults_injected));
    }
    if (cfg.runtime.mode == rt::ExecutionMode::kSlipstream &&
        (result.slip.recoveries > 0 ||
         recovery == rt::RecoveryPolicy::kRestart)) {
      std::printf(
          "recovery: policy=%s budget=%d   recoveries=%llu restarts=%llu "
          "benched-barriers=%llu\n",
          std::string(to_string(recovery)).c_str(), restart_budget,
          static_cast<unsigned long long>(result.slip.recoveries),
          static_cast<unsigned long long>(result.slip.restarts),
          static_cast<unsigned long long>(result.slip.benched_barriers));
    }
    if (watchdog_cycles > 0) {
      std::printf("watchdog: timeout=%ld cycles   trips=%llu\n",
                  watchdog_cycles,
                  static_cast<unsigned long long>(result.slip.watchdog_trips));
      for (const auto& rep : result.watchdog_reports)
        std::printf("  %s\n", rep.c_str());
    }
    if (degrade.enabled) {
      std::printf("degrade: demote-after=%d probation=%d   demotions=%llu "
                  "promotions=%llu\n",
                  degrade.demote_after, degrade.probation,
                  static_cast<unsigned long long>(result.slip.demotions),
                  static_cast<unsigned long long>(result.slip.promotions));
    }
    if (audit) {
      std::printf("audit: %s (%llu checks)\n",
                  result.audit_ok ? "ok" : "VIOLATIONS",
                  static_cast<unsigned long long>(result.audit_checks));
      for (const auto& v : result.audit_violations)
        std::printf("  violation: %s\n", v.c_str());
    }
    stats::Table t({"category", "fraction"});
    for (int c = 0; c < sim::kTimeCategoryCount; ++c) {
      const auto cat = static_cast<sim::TimeCategory>(c);
      if (result.team_breakdown.get(cat) == 0) continue;
      t.add_row({std::string(to_string(cat)),
                 stats::Table::pct(result.fraction(cat))});
    }
    t.print();
    // Top-down cycle account: every simulated cycle of every CPU in
    // exactly one bucket, identity-checked against the sim breakdown.
    const trace::CycleAccount& account = result.cycle_account;
    const sim::Cycles accounted = account.total();
    if (accounted > 0) {
      std::printf("cycle account: %s (%d cpus, %d slots)\n",
                  result.cycle_account_ok ? "identity ok"
                                          : "IDENTITY VIOLATED",
                  account.cpus(), account.slots());
      for (const auto& v : result.cycle_account_violations)
        std::printf("  %s\n", v.c_str());
      stats::Table bt({"bucket", "cpu-cycles", "share"});
      for (int b = 0; b < sim::kCycleBucketCount; ++b) {
        const auto bucket = static_cast<sim::CycleBucket>(b);
        const sim::Cycles cycles = account.bucket_total(bucket);
        if (cycles == 0) continue;
        bt.add_row({std::string(to_string(bucket)),
                    std::to_string(static_cast<unsigned long long>(cycles)),
                    stats::Table::pct(static_cast<double>(cycles) /
                                      static_cast<double>(accounted))});
      }
      bt.print();
    }
    if (result.trace_enabled) {
      const auto& tc = result.trace_counts;
      std::printf(
          "trace: %s  (%llu events, %llu evicted)\n"
          "trace tokens: insert=%llu consume=%llu  "
          "slip stats: insert=%llu consume=%llu  [%s]\n",
          trace_file.c_str(), static_cast<unsigned long long>(tc.recorded),
          static_cast<unsigned long long>(tc.dropped),
          static_cast<unsigned long long>(tc.of(trace::EventKind::kTokenInsert)),
          static_cast<unsigned long long>(
              tc.of(trace::EventKind::kTokenConsume)),
          static_cast<unsigned long long>(result.slip.tokens_inserted),
          static_cast<unsigned long long>(result.slip.tokens_consumed),
          tc.of(trace::EventKind::kTokenInsert) ==
                      result.slip.tokens_inserted &&
                  tc.of(trace::EventKind::kTokenConsume) ==
                      result.slip.tokens_consumed
              ? "match"
              : "MISMATCH");
      std::printf(
          "trace resilience: restart=%llu bench=%llu watchdog=%llu "
          "demote=%llu promote=%llu  [%s]\n",
          static_cast<unsigned long long>(
              tc.of(trace::EventKind::kRestart)),
          static_cast<unsigned long long>(tc.of(trace::EventKind::kBench)),
          static_cast<unsigned long long>(
              tc.of(trace::EventKind::kWatchdog)),
          static_cast<unsigned long long>(tc.of(trace::EventKind::kDemote)),
          static_cast<unsigned long long>(
              tc.of(trace::EventKind::kPromote)),
          tc.of(trace::EventKind::kRestart) == result.slip.restarts &&
                  tc.of(trace::EventKind::kWatchdog) ==
                      result.slip.watchdog_trips &&
                  tc.of(trace::EventKind::kDemote) ==
                      result.slip.demotions &&
                  tc.of(trace::EventKind::kPromote) ==
                      result.slip.promotions
              ? "match"
              : "MISMATCH");
    }
    if (!timeline_file.empty()) {
      std::printf("timeline: %s  (interval %llu cycles)\n",
                  timeline_file.c_str(),
                  static_cast<unsigned long long>(cfg.timeline_interval));
    }
    if (result.metrics_enabled) {
      std::fputs(result.metrics_text.c_str(), stdout);
    }
  }
  return result.workload.verified && result.invariants_ok &&
                 result.audit_ok && result.cycle_account_ok && outputs_ok
             ? 0
             : 1;
}
