// ssomp_run — general experiment driver.
//
//   ssomp_run [--app NAME] [--mode single|double|slipstream]
//             [--sync global|local] [--tokens N] [--ncmp N]
//             [--sched static|dynamic|guided|affinity[,CHUNK]]
//             [--scale tiny|bench] [--env OMP_SLIPSTREAM-value]
//             [--self-invalidation] [--json]
//
// Runs one workload on one configuration and prints either a summary
// table or a machine-readable JSON object.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/registry.hpp"
#include "core/json.hpp"
#include "core/ssomp.hpp"

using namespace ssomp;

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "ssomp_run: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: ssomp_run [--app NAME] [--mode single|double|slipstream]\n"
      "                 [--sync global|local] [--tokens N] [--ncmp N]\n"
      "                 [--sched KIND[,CHUNK]] [--scale tiny|bench]\n"
      "                 [--env VALUE] [--self-invalidation] [--json]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string app = "CG";
  std::string mode = "slipstream";
  std::string sync = "local";
  std::string sched_text = "static";
  std::string env;
  int tokens = 1;
  int ncmp = 16;
  bool tiny = false;
  bool json = false;
  bool self_inval = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--app") {
      app = value();
    } else if (arg == "--mode") {
      mode = value();
    } else if (arg == "--sync") {
      sync = value();
    } else if (arg == "--tokens") {
      tokens = std::atoi(value().c_str());
    } else if (arg == "--ncmp") {
      ncmp = std::atoi(value().c_str());
    } else if (arg == "--sched") {
      sched_text = value();
    } else if (arg == "--scale") {
      tiny = value() == "tiny";
    } else if (arg == "--env") {
      env = value();
    } else if (arg == "--self-invalidation") {
      self_inval = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }

  core::ExperimentConfig cfg;
  cfg.machine.ncmp = ncmp;
  cfg.machine.mem = mem::MemParams::scaled_for_benchmarks();
  if (mode == "single") {
    cfg.runtime.mode = rt::ExecutionMode::kSingle;
  } else if (mode == "double") {
    cfg.runtime.mode = rt::ExecutionMode::kDouble;
  } else if (mode == "slipstream") {
    cfg.runtime.mode = rt::ExecutionMode::kSlipstream;
  } else {
    usage("bad --mode");
  }
  cfg.runtime.slip.type =
      sync == "local" ? slip::SyncType::kLocal : slip::SyncType::kGlobal;
  cfg.runtime.slip.tokens = tokens;
  cfg.runtime.omp_slipstream_env = env;
  cfg.runtime.policies.self_invalidation = self_inval;

  const auto sched = front::parse_schedule_clause(sched_text);
  if (!sched.ok) usage(("bad --sched: " + sched.error).c_str());

  const auto factory = apps::make_workload(
      app, tiny ? apps::AppScale::kTiny : apps::AppScale::kBench,
      sched.value);
  const auto result = core::run_experiment(cfg, factory);

  if (json) {
    std::printf("%s\n", core::to_json(cfg, result).c_str());
  } else {
    std::printf("%s on %d CMPs, %s mode", app.c_str(), ncmp, mode.c_str());
    if (cfg.runtime.mode == rt::ExecutionMode::kSlipstream) {
      std::printf(" (%s, tokens=%d)", std::string(to_string(
                                          cfg.runtime.slip.type))
                                          .c_str(),
                  tokens);
    }
    std::printf(", schedule %s\n", sched_text.c_str());
    std::printf("cycles: %llu   verified: %s   %s\n",
                static_cast<unsigned long long>(result.cycles),
                result.workload.verified ? "yes" : "NO",
                result.workload.detail.c_str());
    stats::Table t({"category", "fraction"});
    for (int c = 0; c < sim::kTimeCategoryCount; ++c) {
      const auto cat = static_cast<sim::TimeCategory>(c);
      if (result.team_breakdown.get(cat) == 0) continue;
      t.add_row({std::string(to_string(cat)),
                 stats::Table::pct(result.fraction(cat))});
    }
    t.print();
  }
  return result.workload.verified && result.invariants_ok ? 0 : 1;
}
