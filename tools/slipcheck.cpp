// slipcheck — exhaustive bounded model checker for the slipstream
// token/recovery protocol.
//
// Modes:
//   slipcheck --grid                 enumerate the canonical verification
//                                    grid (tokens x policy x degrade x
//                                    fault kind, plus a global-sync slice)
//   slipcheck [config flags]         check one configuration
//   slipcheck --replay FILE          execute a schedule file on the live
//                                    engine in lockstep with the model
//
// On a violation the minimized counterexample schedule is printed (and
// written to --out FILE if given) in the ssomp-schedule-v1 format that
// `ssomp_run --replay` and `slipcheck --replay` execute deterministically
// against the real SlipPair/TokenSemaphore objects.
//
// Exit status: 0 all clean, 1 violation found, 2 usage/config error,
// 3 replay infidelity (schedule not strictly replayable or live/model
// state diverged).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "slip/model/checker.hpp"
#include "slip/model/grid.hpp"
#include "slip/model/model.hpp"
#include "slip/model/replay.hpp"
#include "slip/model/schedule.hpp"
#include "slip/protocol.hpp"

namespace {

using namespace ssomp;
using namespace ssomp::slip::model;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--grid] [config flags] [options]\n"
               "       %s --replay FILE\n"
               "\n"
               "config flags (single-config mode):\n"
               "  --ncmp N            slipstream pairs (default 2)\n"
               "  --tokens N          initial barrier-token allowance (1)\n"
               "  --sync local|global barrier token placement (local)\n"
               "  --regions N         parallel regions (1)\n"
               "  --barriers N        barrier episodes per region (2)\n"
               "  --chunks N          forwarded dynamic chunks per region (0)\n"
               "  --mailbox-depth N   decision mailbox capacity (4)\n"
               "  --threshold N       divergence probe threshold (1)\n"
               "  --policy bench|restart  recovery policy (bench)\n"
               "  --restart-budget N  restarts per region before benching (3)\n"
               "  --watchdog          arm hang-detection timers\n"
               "  --degrade D,P       enable degradation (demote_after D,\n"
               "                      probation P regions)\n"
               "  --inject KIND[,NODE,VISIT[,SEED]]  fault plan\n"
               "\n"
               "options:\n"
               "  --max-states N      state budget per config (2000000)\n"
               "  --max-depth N       schedule length bound (4096)\n"
               "  --out FILE          write first counterexample schedule\n"
               "  --legacy-poison-drop  re-enable the historical poison-drop\n"
               "                      bug in the wake window (demo/tests)\n"
               "  --quiet             per-config lines only on violation\n",
               argv0, argv0);
}

struct Cli {
  bool grid = false;
  bool quiet = false;
  bool any_config_flag = false;
  std::string replay_file;
  std::string out_file;
  ModelConfig config;
  CheckerOptions opts;
};

bool parse_int(const char* s, int& out) {
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

int run_one(const ModelConfig& cfg, const Cli& cli, bool& any_violation,
            bool& any_truncated) {
  Model model(cfg);
  CheckResult res = run_checker(model, cli.opts);
  const bool show = !cli.quiet || !res.ok;
  if (show) {
    std::printf("%-72s %8llu states %7llu transitions depth %u%s%s\n",
                cfg.describe().c_str(),
                static_cast<unsigned long long>(res.stats.states_visited),
                static_cast<unsigned long long>(res.stats.transitions),
                res.stats.max_depth_seen, res.truncated ? " TRUNCATED" : "",
                res.ok ? "" : " VIOLATION");
  }
  if (res.truncated) any_truncated = true;
  if (!res.ok) {
    any_violation = true;
    std::printf("violation: %s\n", res.violation.c_str());
    Schedule sched;
    sched.config = cfg;
    sched.actions = res.schedule;
    sched.expect = res.violation;
    std::string text = serialize_schedule(sched);
    std::printf("--- counterexample (%zu steps) ---\n%s---\n",
                res.schedule.size(), text.c_str());
    if (!cli.out_file.empty()) {
      std::ofstream out(cli.out_file);
      if (!out) {
        std::fprintf(stderr, "slipcheck: cannot write %s\n",
                     cli.out_file.c_str());
        return 2;
      }
      out << text;
      std::printf("counterexample written to %s\n", cli.out_file.c_str());
    }
  }
  return 0;
}

int do_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "slipcheck: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  ScheduleParse parsed = parse_schedule(buf.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "slipcheck: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return 2;
  }
  const Schedule& sched = parsed.value;
  std::printf("replaying %zu steps on %s\n", sched.actions.size(),
              sched.config.describe().c_str());
  ReplayResult res = replay_schedule(sched);
  std::printf("steps executed: %zu, live/model comparisons: %zu\n",
              res.steps_executed, res.compares);
  if (!res.fidelity_ok) {
    std::printf("FIDELITY ERROR: %s\n", res.fidelity_error.c_str());
    return 3;
  }
  for (const std::string& v : res.live_violations) {
    std::printf("live protocol violation: %s\n", v.c_str());
  }
  if (res.violation_hit) {
    std::printf("model violation at step %zu: %s\n", res.violation_step,
                res.violation.c_str());
  }
  if (!sched.expect.empty()) {
    if (res.ok) {
      std::printf("expected violation reproduced: %s\n", sched.expect.c_str());
      return 0;
    }
    std::printf("expected violation NOT reproduced (wanted: %s)\n",
                sched.expect.c_str());
    return 1;
  }
  if (res.ok) {
    std::printf("replay clean: live and model agreed at every step\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bool legacy = false;

  auto value = [&](int& i, const char* flag) -> const char* {
    const char* arg = argv[i];
    std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[++i];
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--grid") == 0) {
      cli.grid = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      cli.quiet = true;
    } else if (std::strcmp(arg, "--watchdog") == 0) {
      cli.config.watchdog = true;
      cli.any_config_flag = true;
    } else if (std::strcmp(arg, "--legacy-poison-drop") == 0) {
      legacy = true;
    } else if ((v = value(i, "--replay"))) {
      cli.replay_file = v;
    } else if ((v = value(i, "--out"))) {
      cli.out_file = v;
    } else if ((v = value(i, "--max-states"))) {
      if (!parse_u64(v, cli.opts.max_states)) goto bad;
    } else if ((v = value(i, "--max-depth"))) {
      std::uint64_t d = 0;
      if (!parse_u64(v, d)) goto bad;
      cli.opts.max_depth = static_cast<std::uint32_t>(d);
    } else if ((v = value(i, "--ncmp"))) {
      if (!parse_int(v, cli.config.ncmp)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--tokens"))) {
      if (!parse_int(v, cli.config.tokens)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--sync"))) {
      if (std::strcmp(v, "local") == 0) {
        cli.config.sync = ssomp::slip::SyncType::kLocal;
      } else if (std::strcmp(v, "global") == 0) {
        cli.config.sync = ssomp::slip::SyncType::kGlobal;
      } else goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--regions"))) {
      if (!parse_int(v, cli.config.regions)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--barriers"))) {
      if (!parse_int(v, cli.config.barriers)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--chunks"))) {
      if (!parse_int(v, cli.config.chunks)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--mailbox-depth"))) {
      if (!parse_u64(v, cli.config.mailbox_depth)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--threshold"))) {
      if (!parse_int(v, cli.config.divergence_threshold)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--policy"))) {
      if (std::strcmp(v, "bench") == 0) cli.config.policy = Policy::kBench;
      else if (std::strcmp(v, "restart") == 0) {
        cli.config.policy = Policy::kRestart;
      } else goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--restart-budget"))) {
      if (!parse_int(v, cli.config.restart_budget)) goto bad;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--degrade"))) {
      int d = 0, p = 0;
      if (std::sscanf(v, "%d,%d", &d, &p) != 2) goto bad;
      cli.config.degrade_enabled = true;
      cli.config.demote_after = d;
      cli.config.probation = p;
      cli.any_config_flag = true;
    } else if ((v = value(i, "--inject"))) {
      slip::FaultPlanParse fp = slip::parse_fault_plan(v);
      if (!fp.ok) {
        std::fprintf(stderr, "slipcheck: --inject: %s\n", fp.error.c_str());
        return 2;
      }
      cli.config.fault = fp.value;
      cli.any_config_flag = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
    bad:
      std::fprintf(stderr, "slipcheck: bad argument '%s'\n", arg);
      usage(argv[0]);
      return 2;
    }
  }

  if (legacy) slip::proto::legacy_bugs().drop_poison_in_wake_window = true;

  if (!cli.replay_file.empty()) return do_replay(cli.replay_file);

  std::vector<ModelConfig> configs;
  if (cli.grid || !cli.any_config_flag) {
    configs = default_grid();
    std::printf("checking %zu grid configurations (budget %llu states each)\n",
                configs.size(),
                static_cast<unsigned long long>(cli.opts.max_states));
  } else {
    configs.push_back(cli.config);
  }

  bool any_violation = false;
  bool any_truncated = false;
  for (const ModelConfig& cfg : configs) {
    int rc = run_one(cfg, cli, any_violation, any_truncated);
    if (rc != 0) return rc;
    if (any_violation) break;  // first counterexample is the deliverable
  }
  if (any_violation) return 1;
  if (any_truncated) {
    std::printf("result: no violation found, but some configs were "
                "TRUNCATED by the state budget\n");
    return 0;
  }
  std::printf("result: all %zu configurations exhaustively verified, "
              "zero violations\n",
              configs.size());
  return 0;
}
