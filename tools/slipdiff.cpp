// slipdiff — sweep-aggregate regression gate.
//
//   slipdiff BASE.json CAND.json [--cycles-pct N] [--share-pts N]
//            [--counter-pct N] [--out FILE] [--json]
//
// Diffs two ssomp-sweep-v1 aggregates point-by-point: simulated-cycle
// deltas, cycle-account bucket-share shifts, counter changes, and
// boolean gate flips (ok/verified/audit/cycle-account identity). All
// thresholds default to zero — any change is a regression — matching
// the repo's byte-determinism ethos; host wall-clock fields are never
// compared (docs/PERFORMANCE.md).
//
// Exit codes: 0 = clean, 1 = at least one regression, 2 = usage / I/O /
// schema error. --out writes the machine-readable ssomp-diff-v1 report
// (docs/SWEEPS.md); --json prints it to stdout instead of the table.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/diff.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "slipdiff: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: slipdiff BASE.json CAND.json [--cycles-pct N]\n"
      "                [--share-pts N] [--counter-pct N] [--out FILE]\n"
      "                [--json]\n"
      "  BASE/CAND        ssomp-sweep-v1 aggregates (ssomp_run --sweep)\n"
      "  --cycles-pct N   allow cycles to grow up to N%% per point\n"
      "  --share-pts N    allow non-compute bucket shares to grow up to\n"
      "                   N percentage points\n"
      "  --counter-pct N  allow counters to move up to N%% either way\n"
      "  --out FILE       also write the ssomp-diff-v1 JSON report\n"
      "  --json           print the JSON report instead of the table\n"
      "  all value flags accept --flag VALUE or --flag=VALUE\n");
  std::exit(2);
}

double pct_value(const std::string& v, const char* flag) {
  char* end = nullptr;
  const double pct = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || pct < 0.0) {
    usage((std::string("bad value for ") + flag).c_str());
  }
  return pct / 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string cand_path;
  std::string out_file;
  bool json = false;
  ssomp::core::DiffThresholds thresholds;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.erase(eq);
        has_inline = true;
      }
    }
    const auto value = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--cycles-pct") {
      thresholds.cycles_rel = pct_value(value(), "--cycles-pct");
    } else if (arg == "--share-pts") {
      thresholds.share_abs = pct_value(value(), "--share-pts");
    } else if (arg == "--counter-pct") {
      thresholds.counter_rel = pct_value(value(), "--counter-pct");
    } else if (arg == "--out") {
      out_file = value();
      if (out_file.empty()) usage("empty --out file name");
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage(("unknown argument " + std::string(argv[i])).c_str());
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (cand_path.empty()) {
      cand_path = arg;
    } else {
      usage("too many positional arguments");
    }
  }
  if (base_path.empty() || cand_path.empty()) {
    usage("need BASE and CAND aggregate files");
  }

  const ssomp::core::SweepDiff diff =
      ssomp::core::diff_sweep_files(base_path, cand_path, thresholds);
  if (!diff.ok) {
    std::fprintf(stderr, "slipdiff: %s\n", diff.error.c_str());
    return 2;
  }

  if (!out_file.empty()) {
    std::ofstream out(out_file, std::ios::binary);
    if (out) out << ssomp::core::diff_to_json(diff) << '\n';
    if (!out) {
      std::fprintf(stderr, "slipdiff: cannot write %s\n", out_file.c_str());
      return 2;
    }
  }
  if (json) {
    std::printf("%s\n", ssomp::core::diff_to_json(diff).c_str());
  } else {
    std::fputs(ssomp::core::diff_to_text(diff).c_str(), stdout);
  }
  return diff.clean() ? 0 : 1;
}
