file(REMOVE_RECURSE
  "../bench/trace_timeline"
  "../bench/trace_timeline.pdb"
  "CMakeFiles/trace_timeline.dir/trace_timeline.cpp.o"
  "CMakeFiles/trace_timeline.dir/trace_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
