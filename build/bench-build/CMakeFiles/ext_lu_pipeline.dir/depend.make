# Empty dependencies file for ext_lu_pipeline.
# This may be replaced when dependencies are built.
