file(REMOVE_RECURSE
  "../bench/ext_lu_pipeline"
  "../bench/ext_lu_pipeline.pdb"
  "CMakeFiles/ext_lu_pipeline.dir/ext_lu_pipeline.cpp.o"
  "CMakeFiles/ext_lu_pipeline.dir/ext_lu_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
