file(REMOVE_RECURSE
  "../bench/ext_workloads"
  "../bench/ext_workloads.pdb"
  "CMakeFiles/ext_workloads.dir/ext_workloads.cpp.o"
  "CMakeFiles/ext_workloads.dir/ext_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
