# Empty compiler generated dependencies file for fig3_request_class.
# This may be replaced when dependencies are built.
