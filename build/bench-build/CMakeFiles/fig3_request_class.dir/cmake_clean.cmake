file(REMOVE_RECURSE
  "../bench/fig3_request_class"
  "../bench/fig3_request_class.pdb"
  "CMakeFiles/fig3_request_class.dir/fig3_request_class.cpp.o"
  "CMakeFiles/fig3_request_class.dir/fig3_request_class.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_request_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
