file(REMOVE_RECURSE
  "../bench/ext_estate"
  "../bench/ext_estate.pdb"
  "CMakeFiles/ext_estate.dir/ext_estate.cpp.o"
  "CMakeFiles/ext_estate.dir/ext_estate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_estate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
