# Empty compiler generated dependencies file for ext_estate.
# This may be replaced when dependencies are built.
