
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_estate.cpp" "bench-build/CMakeFiles/ext_estate.dir/ext_estate.cpp.o" "gcc" "bench-build/CMakeFiles/ext_estate.dir/ext_estate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ssomp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ssomp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ssomp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ssomp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/front/CMakeFiles/ssomp_front.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ssomp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssomp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
