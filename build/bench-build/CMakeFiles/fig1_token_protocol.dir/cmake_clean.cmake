file(REMOVE_RECURSE
  "../bench/fig1_token_protocol"
  "../bench/fig1_token_protocol.pdb"
  "CMakeFiles/fig1_token_protocol.dir/fig1_token_protocol.cpp.o"
  "CMakeFiles/fig1_token_protocol.dir/fig1_token_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_token_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
