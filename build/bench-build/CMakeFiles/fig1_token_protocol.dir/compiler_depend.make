# Empty compiler generated dependencies file for fig1_token_protocol.
# This may be replaced when dependencies are built.
