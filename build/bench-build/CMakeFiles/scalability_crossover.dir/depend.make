# Empty dependencies file for scalability_crossover.
# This may be replaced when dependencies are built.
