file(REMOVE_RECURSE
  "../bench/scalability_crossover"
  "../bench/scalability_crossover.pdb"
  "CMakeFiles/scalability_crossover.dir/scalability_crossover.cpp.o"
  "CMakeFiles/scalability_crossover.dir/scalability_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
