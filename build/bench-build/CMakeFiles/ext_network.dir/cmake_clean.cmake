file(REMOVE_RECURSE
  "../bench/ext_network"
  "../bench/ext_network.pdb"
  "CMakeFiles/ext_network.dir/ext_network.cpp.o"
  "CMakeFiles/ext_network.dir/ext_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
