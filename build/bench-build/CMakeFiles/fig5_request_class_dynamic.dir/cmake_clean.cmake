file(REMOVE_RECURSE
  "../bench/fig5_request_class_dynamic"
  "../bench/fig5_request_class_dynamic.pdb"
  "CMakeFiles/fig5_request_class_dynamic.dir/fig5_request_class_dynamic.cpp.o"
  "CMakeFiles/fig5_request_class_dynamic.dir/fig5_request_class_dynamic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_request_class_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
