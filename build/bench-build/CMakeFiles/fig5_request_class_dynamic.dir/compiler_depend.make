# Empty compiler generated dependencies file for fig5_request_class_dynamic.
# This may be replaced when dependencies are built.
