file(REMOVE_RECURSE
  "../bench/ablation_tokens"
  "../bench/ablation_tokens.pdb"
  "CMakeFiles/ablation_tokens.dir/ablation_tokens.cpp.o"
  "CMakeFiles/ablation_tokens.dir/ablation_tokens.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
