# Empty dependencies file for ablation_tokens.
# This may be replaced when dependencies are built.
