# Empty compiler generated dependencies file for fig4_dynamic_breakdown.
# This may be replaced when dependencies are built.
