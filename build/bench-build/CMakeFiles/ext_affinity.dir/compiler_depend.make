# Empty compiler generated dependencies file for ext_affinity.
# This may be replaced when dependencies are built.
