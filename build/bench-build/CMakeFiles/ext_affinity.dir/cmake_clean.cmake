file(REMOVE_RECURSE
  "../bench/ext_affinity"
  "../bench/ext_affinity.pdb"
  "CMakeFiles/ext_affinity.dir/ext_affinity.cpp.o"
  "CMakeFiles/ext_affinity.dir/ext_affinity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
