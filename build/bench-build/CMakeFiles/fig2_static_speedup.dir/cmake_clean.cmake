file(REMOVE_RECURSE
  "../bench/fig2_static_speedup"
  "../bench/fig2_static_speedup.pdb"
  "CMakeFiles/fig2_static_speedup.dir/fig2_static_speedup.cpp.o"
  "CMakeFiles/fig2_static_speedup.dir/fig2_static_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_static_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
