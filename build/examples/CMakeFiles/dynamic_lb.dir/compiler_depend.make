# Empty compiler generated dependencies file for dynamic_lb.
# This may be replaced when dependencies are built.
