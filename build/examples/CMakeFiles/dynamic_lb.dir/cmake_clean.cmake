file(REMOVE_RECURSE
  "CMakeFiles/dynamic_lb.dir/dynamic_lb.cpp.o"
  "CMakeFiles/dynamic_lb.dir/dynamic_lb.cpp.o.d"
  "dynamic_lb"
  "dynamic_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
