# Empty dependencies file for region_profile.
# This may be replaced when dependencies are built.
