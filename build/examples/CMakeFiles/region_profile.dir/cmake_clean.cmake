file(REMOVE_RECURSE
  "CMakeFiles/region_profile.dir/region_profile.cpp.o"
  "CMakeFiles/region_profile.dir/region_profile.cpp.o.d"
  "region_profile"
  "region_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
