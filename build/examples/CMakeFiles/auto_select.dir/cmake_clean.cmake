file(REMOVE_RECURSE
  "CMakeFiles/auto_select.dir/auto_select.cpp.o"
  "CMakeFiles/auto_select.dir/auto_select.cpp.o.d"
  "auto_select"
  "auto_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
