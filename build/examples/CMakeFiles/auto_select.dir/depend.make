# Empty dependencies file for auto_select.
# This may be replaced when dependencies are built.
