file(REMOVE_RECURSE
  "CMakeFiles/ssomp_stats.dir/report.cpp.o"
  "CMakeFiles/ssomp_stats.dir/report.cpp.o.d"
  "CMakeFiles/ssomp_stats.dir/timeline.cpp.o"
  "CMakeFiles/ssomp_stats.dir/timeline.cpp.o.d"
  "libssomp_stats.a"
  "libssomp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
