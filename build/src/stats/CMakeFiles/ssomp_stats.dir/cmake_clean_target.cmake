file(REMOVE_RECURSE
  "libssomp_stats.a"
)
