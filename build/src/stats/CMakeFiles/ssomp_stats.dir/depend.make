# Empty dependencies file for ssomp_stats.
# This may be replaced when dependencies are built.
