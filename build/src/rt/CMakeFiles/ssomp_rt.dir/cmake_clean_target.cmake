file(REMOVE_RECURSE
  "libssomp_rt.a"
)
