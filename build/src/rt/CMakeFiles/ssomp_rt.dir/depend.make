# Empty dependencies file for ssomp_rt.
# This may be replaced when dependencies are built.
