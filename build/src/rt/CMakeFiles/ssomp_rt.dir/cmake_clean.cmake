file(REMOVE_RECURSE
  "CMakeFiles/ssomp_rt.dir/pointsync.cpp.o"
  "CMakeFiles/ssomp_rt.dir/pointsync.cpp.o.d"
  "CMakeFiles/ssomp_rt.dir/runtime.cpp.o"
  "CMakeFiles/ssomp_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/ssomp_rt.dir/sync_primitives.cpp.o"
  "CMakeFiles/ssomp_rt.dir/sync_primitives.cpp.o.d"
  "libssomp_rt.a"
  "libssomp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
