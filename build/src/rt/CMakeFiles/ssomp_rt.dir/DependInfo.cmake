
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/pointsync.cpp" "src/rt/CMakeFiles/ssomp_rt.dir/pointsync.cpp.o" "gcc" "src/rt/CMakeFiles/ssomp_rt.dir/pointsync.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/rt/CMakeFiles/ssomp_rt.dir/runtime.cpp.o" "gcc" "src/rt/CMakeFiles/ssomp_rt.dir/runtime.cpp.o.d"
  "/root/repo/src/rt/sync_primitives.cpp" "src/rt/CMakeFiles/ssomp_rt.dir/sync_primitives.cpp.o" "gcc" "src/rt/CMakeFiles/ssomp_rt.dir/sync_primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/ssomp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/front/CMakeFiles/ssomp_front.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ssomp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ssomp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssomp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
