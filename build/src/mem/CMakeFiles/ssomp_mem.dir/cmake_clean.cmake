file(REMOVE_RECURSE
  "CMakeFiles/ssomp_mem.dir/memsys.cpp.o"
  "CMakeFiles/ssomp_mem.dir/memsys.cpp.o.d"
  "libssomp_mem.a"
  "libssomp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
