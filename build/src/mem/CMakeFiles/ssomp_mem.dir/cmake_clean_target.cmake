file(REMOVE_RECURSE
  "libssomp_mem.a"
)
