# Empty dependencies file for ssomp_mem.
# This may be replaced when dependencies are built.
