file(REMOVE_RECURSE
  "CMakeFiles/ssomp_front.dir/directive.cpp.o"
  "CMakeFiles/ssomp_front.dir/directive.cpp.o.d"
  "CMakeFiles/ssomp_front.dir/report.cpp.o"
  "CMakeFiles/ssomp_front.dir/report.cpp.o.d"
  "libssomp_front.a"
  "libssomp_front.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
