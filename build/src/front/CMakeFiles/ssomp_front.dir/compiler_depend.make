# Empty compiler generated dependencies file for ssomp_front.
# This may be replaced when dependencies are built.
