
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/front/directive.cpp" "src/front/CMakeFiles/ssomp_front.dir/directive.cpp.o" "gcc" "src/front/CMakeFiles/ssomp_front.dir/directive.cpp.o.d"
  "/root/repo/src/front/report.cpp" "src/front/CMakeFiles/ssomp_front.dir/report.cpp.o" "gcc" "src/front/CMakeFiles/ssomp_front.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ssomp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
