file(REMOVE_RECURSE
  "libssomp_front.a"
)
