
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adi.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/adi.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/adi.cpp.o.d"
  "/root/repo/src/apps/bt.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/bt.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/bt.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/ep.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/ep.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/ep.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/is.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/is.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/is.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/mg.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/mg.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sp.cpp" "src/apps/CMakeFiles/ssomp_apps.dir/sp.cpp.o" "gcc" "src/apps/CMakeFiles/ssomp_apps.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ssomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/ssomp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ssomp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ssomp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/front/CMakeFiles/ssomp_front.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ssomp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ssomp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
