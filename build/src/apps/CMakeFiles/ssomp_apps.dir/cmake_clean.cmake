file(REMOVE_RECURSE
  "CMakeFiles/ssomp_apps.dir/adi.cpp.o"
  "CMakeFiles/ssomp_apps.dir/adi.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/bt.cpp.o"
  "CMakeFiles/ssomp_apps.dir/bt.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/cg.cpp.o"
  "CMakeFiles/ssomp_apps.dir/cg.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/ep.cpp.o"
  "CMakeFiles/ssomp_apps.dir/ep.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/ft.cpp.o"
  "CMakeFiles/ssomp_apps.dir/ft.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/is.cpp.o"
  "CMakeFiles/ssomp_apps.dir/is.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/lu.cpp.o"
  "CMakeFiles/ssomp_apps.dir/lu.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/mg.cpp.o"
  "CMakeFiles/ssomp_apps.dir/mg.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/registry.cpp.o"
  "CMakeFiles/ssomp_apps.dir/registry.cpp.o.d"
  "CMakeFiles/ssomp_apps.dir/sp.cpp.o"
  "CMakeFiles/ssomp_apps.dir/sp.cpp.o.d"
  "libssomp_apps.a"
  "libssomp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
