file(REMOVE_RECURSE
  "libssomp_apps.a"
)
