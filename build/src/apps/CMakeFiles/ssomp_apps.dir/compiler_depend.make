# Empty compiler generated dependencies file for ssomp_apps.
# This may be replaced when dependencies are built.
