# Empty compiler generated dependencies file for ssomp_machine.
# This may be replaced when dependencies are built.
