file(REMOVE_RECURSE
  "libssomp_machine.a"
)
