file(REMOVE_RECURSE
  "CMakeFiles/ssomp_machine.dir/machine.cpp.o"
  "CMakeFiles/ssomp_machine.dir/machine.cpp.o.d"
  "libssomp_machine.a"
  "libssomp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
