# Empty dependencies file for ssomp_core.
# This may be replaced when dependencies are built.
