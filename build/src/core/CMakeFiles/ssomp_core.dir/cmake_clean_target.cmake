file(REMOVE_RECURSE
  "libssomp_core.a"
)
