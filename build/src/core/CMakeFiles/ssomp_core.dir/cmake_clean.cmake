file(REMOVE_RECURSE
  "CMakeFiles/ssomp_core.dir/advisor.cpp.o"
  "CMakeFiles/ssomp_core.dir/advisor.cpp.o.d"
  "CMakeFiles/ssomp_core.dir/experiment.cpp.o"
  "CMakeFiles/ssomp_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ssomp_core.dir/json.cpp.o"
  "CMakeFiles/ssomp_core.dir/json.cpp.o.d"
  "libssomp_core.a"
  "libssomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
