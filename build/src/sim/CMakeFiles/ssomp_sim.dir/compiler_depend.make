# Empty compiler generated dependencies file for ssomp_sim.
# This may be replaced when dependencies are built.
