file(REMOVE_RECURSE
  "libssomp_sim.a"
)
