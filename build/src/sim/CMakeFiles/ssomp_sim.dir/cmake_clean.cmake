file(REMOVE_RECURSE
  "CMakeFiles/ssomp_sim.dir/engine.cpp.o"
  "CMakeFiles/ssomp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ssomp_sim.dir/fiber.cpp.o"
  "CMakeFiles/ssomp_sim.dir/fiber.cpp.o.d"
  "libssomp_sim.a"
  "libssomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
