# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ssomp_run_smoke "/root/repo/build/tools/ssomp_run" "--app" "EP" "--scale" "tiny" "--ncmp" "2" "--json")
set_tests_properties(ssomp_run_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ssomp_run_table "/root/repo/build/tools/ssomp_run" "--app" "CG" "--scale" "tiny" "--ncmp" "2" "--mode" "single")
set_tests_properties(ssomp_run_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slipreport_smoke "/root/repo/build/tools/slipreport" "/root/repo/examples/sources/cg_annotated.c" "GLOBAL_SYNC,0")
set_tests_properties(slipreport_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
