# Empty compiler generated dependencies file for slipreport.
# This may be replaced when dependencies are built.
