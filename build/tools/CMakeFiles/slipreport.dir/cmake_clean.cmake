file(REMOVE_RECURSE
  "CMakeFiles/slipreport.dir/slipreport.cpp.o"
  "CMakeFiles/slipreport.dir/slipreport.cpp.o.d"
  "slipreport"
  "slipreport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slipreport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
