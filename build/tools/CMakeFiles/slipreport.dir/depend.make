# Empty dependencies file for slipreport.
# This may be replaced when dependencies are built.
