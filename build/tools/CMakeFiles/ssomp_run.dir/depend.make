# Empty dependencies file for ssomp_run.
# This may be replaced when dependencies are built.
