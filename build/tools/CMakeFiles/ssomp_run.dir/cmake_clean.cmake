file(REMOVE_RECURSE
  "CMakeFiles/ssomp_run.dir/ssomp_run.cpp.o"
  "CMakeFiles/ssomp_run.dir/ssomp_run.cpp.o.d"
  "ssomp_run"
  "ssomp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssomp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
