# Empty compiler generated dependencies file for contracts_tests.
# This may be replaced when dependencies are built.
