file(REMOVE_RECURSE
  "CMakeFiles/contracts_tests.dir/contracts_test.cpp.o"
  "CMakeFiles/contracts_tests.dir/contracts_test.cpp.o.d"
  "contracts_tests"
  "contracts_tests.pdb"
  "contracts_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contracts_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
