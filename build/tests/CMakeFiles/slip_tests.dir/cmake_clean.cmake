file(REMOVE_RECURSE
  "CMakeFiles/slip_tests.dir/slip/tokens_property_test.cpp.o"
  "CMakeFiles/slip_tests.dir/slip/tokens_property_test.cpp.o.d"
  "CMakeFiles/slip_tests.dir/slip/tokens_test.cpp.o"
  "CMakeFiles/slip_tests.dir/slip/tokens_test.cpp.o.d"
  "slip_tests"
  "slip_tests.pdb"
  "slip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
