# Empty compiler generated dependencies file for slip_tests.
# This may be replaced when dependencies are built.
