# Empty dependencies file for front_tests.
# This may be replaced when dependencies are built.
