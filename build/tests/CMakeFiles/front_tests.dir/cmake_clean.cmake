file(REMOVE_RECURSE
  "CMakeFiles/front_tests.dir/front/directive_test.cpp.o"
  "CMakeFiles/front_tests.dir/front/directive_test.cpp.o.d"
  "CMakeFiles/front_tests.dir/front/report_test.cpp.o"
  "CMakeFiles/front_tests.dir/front/report_test.cpp.o.d"
  "front_tests"
  "front_tests.pdb"
  "front_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/front_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
