file(REMOVE_RECURSE
  "CMakeFiles/rt_tests.dir/rt/fuzz_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/fuzz_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/pointsync_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/pointsync_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/runtime_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/runtime_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/shared_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/shared_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/slipstream_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/slipstream_test.cpp.o.d"
  "CMakeFiles/rt_tests.dir/rt/sync_test.cpp.o"
  "CMakeFiles/rt_tests.dir/rt/sync_test.cpp.o.d"
  "rt_tests"
  "rt_tests.pdb"
  "rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
