file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/cache_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/cache_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/directory_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/directory_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/estate_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/estate_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/memsys_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/memsys_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/params_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/params_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/resource_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/resource_test.cpp.o.d"
  "mem_tests"
  "mem_tests.pdb"
  "mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
