#include <gtest/gtest.h>

#include "stats/memstats.hpp"
#include "stats/report.hpp"
#include "stats/reqclass.hpp"
#include "stats/timeline.hpp"

namespace ssomp::stats {
namespace {

TEST(ReqClassTest, CountsAndFractions) {
  ReqClassCounts c;
  c.add(ReqKind::kRead, ReqClass::kATimely, 30);
  c.add(ReqKind::kRead, ReqClass::kAOnly, 10);
  c.add(ReqKind::kReadEx, ReqClass::kRTimely, 5);
  EXPECT_EQ(c.total(ReqKind::kRead), 40u);
  EXPECT_EQ(c.total(ReqKind::kReadEx), 5u);
  EXPECT_DOUBLE_EQ(c.fraction(ReqKind::kRead, ReqClass::kATimely), 0.75);
  EXPECT_DOUBLE_EQ(c.fraction(ReqKind::kReadEx, ReqClass::kRTimely), 1.0);
}

TEST(ReqClassTest, EmptyFractionIsZero) {
  ReqClassCounts c;
  EXPECT_DOUBLE_EQ(c.fraction(ReqKind::kRead, ReqClass::kALate), 0.0);
}

TEST(ReqClassTest, BothStreamsFraction) {
  ReqClassCounts c;
  c.add(ReqKind::kRead, ReqClass::kATimely, 50);
  c.add(ReqKind::kRead, ReqClass::kALate, 20);
  c.add(ReqKind::kRead, ReqClass::kAOnly, 20);
  c.add(ReqKind::kRead, ReqClass::kROnly, 10);
  EXPECT_DOUBLE_EQ(c.both_streams_fraction(ReqKind::kRead), 0.70);
}

TEST(ReqClassTest, Merge) {
  ReqClassCounts a, b;
  a.add(ReqKind::kRead, ReqClass::kATimely, 1);
  b.add(ReqKind::kRead, ReqClass::kATimely, 2);
  a += b;
  EXPECT_EQ(a.get(ReqKind::kRead, ReqClass::kATimely), 3u);
  a.clear();
  EXPECT_EQ(a.total(ReqKind::kRead), 0u);
}

TEST(ReqClassTest, Names) {
  EXPECT_EQ(to_string(ReqClass::kATimely), "A-Timely");
  EXPECT_EQ(to_string(ReqClass::kROnly), "R-Only");
  EXPECT_EQ(to_string(ReqKind::kReadEx), "read_ex");
}

TEST(MemStatsTest, Merge) {
  MemStats a, b;
  a.loads = 10;
  b.loads = 5;
  b.writebacks = 2;
  a += b;
  EXPECT_EQ(a.loads, 15u);
  EXPECT_EQ(a.writebacks, 2u);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"b", "100.00"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric cells right-align: "  1.25" ends aligned with "100.00".
  EXPECT_NE(s.find("  1.25"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}

TEST(TimelineTest, SamplesCategoriesOverTime) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] {
    cpu.consume(1000, sim::TimeCategory::kBusy);
    cpu.consume(1000, sim::TimeCategory::kMemStall);
  });
  Timeline tl(engine, 100);
  engine.run();
  ASSERT_GE(tl.samples().size(), 15u);
  // First half busy, second half stalled.
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kBusy, 0, 1000), 0.9);
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kMemStall, 1001, 2001), 0.9);
  const std::string csv = tl.to_csv();
  EXPECT_NE(csv.find("cycle,p0"), std::string::npos);
  EXPECT_NE(csv.find("busy"), std::string::npos);
  EXPECT_NE(csv.find("mem_stall"), std::string::npos);
}

TEST(TimelineTest, SamplingStopsWhenCpusFinish) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] { cpu.consume(500, sim::TimeCategory::kBusy); });
  Timeline tl(engine, 50);
  engine.run();
  // One trailing sample after completion at most.
  EXPECT_LE(tl.samples().back().when, 600u);
}

TEST(TimelineTest, BlockedCpuReportsWaitCategory) {
  sim::Engine engine;
  sim::SimCpu& sleeper = engine.add_cpu("s");
  sim::SimCpu& waker = engine.add_cpu("w");
  sleeper.start([&] { sleeper.block(sim::TimeCategory::kJobWait); });
  waker.start([&] {
    waker.consume(2000, sim::TimeCategory::kBusy);
    sleeper.wake();
  });
  Timeline tl(engine, 100);
  engine.run();
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kJobWait, 0, 2000), 0.9);
}

}  // namespace
}  // namespace ssomp::stats
