#include <gtest/gtest.h>

#include <limits>

#include "stats/memstats.hpp"
#include "stats/report.hpp"
#include "stats/reqclass.hpp"
#include "stats/timeline.hpp"

namespace ssomp::stats {
namespace {

TEST(ReqClassTest, CountsAndFractions) {
  ReqClassCounts c;
  c.add(ReqKind::kRead, ReqClass::kATimely, 30);
  c.add(ReqKind::kRead, ReqClass::kAOnly, 10);
  c.add(ReqKind::kReadEx, ReqClass::kRTimely, 5);
  EXPECT_EQ(c.total(ReqKind::kRead), 40u);
  EXPECT_EQ(c.total(ReqKind::kReadEx), 5u);
  EXPECT_DOUBLE_EQ(c.fraction(ReqKind::kRead, ReqClass::kATimely), 0.75);
  EXPECT_DOUBLE_EQ(c.fraction(ReqKind::kReadEx, ReqClass::kRTimely), 1.0);
}

TEST(ReqClassTest, EmptyFractionIsZero) {
  ReqClassCounts c;
  EXPECT_DOUBLE_EQ(c.fraction(ReqKind::kRead, ReqClass::kALate), 0.0);
}

TEST(ReqClassTest, BothStreamsFraction) {
  ReqClassCounts c;
  c.add(ReqKind::kRead, ReqClass::kATimely, 50);
  c.add(ReqKind::kRead, ReqClass::kALate, 20);
  c.add(ReqKind::kRead, ReqClass::kAOnly, 20);
  c.add(ReqKind::kRead, ReqClass::kROnly, 10);
  EXPECT_DOUBLE_EQ(c.both_streams_fraction(ReqKind::kRead), 0.70);
}

TEST(ReqClassTest, Merge) {
  ReqClassCounts a, b;
  a.add(ReqKind::kRead, ReqClass::kATimely, 1);
  b.add(ReqKind::kRead, ReqClass::kATimely, 2);
  a += b;
  EXPECT_EQ(a.get(ReqKind::kRead, ReqClass::kATimely), 3u);
  a.clear();
  EXPECT_EQ(a.total(ReqKind::kRead), 0u);
}

TEST(ReqClassTest, Names) {
  EXPECT_EQ(to_string(ReqClass::kATimely), "A-Timely");
  EXPECT_EQ(to_string(ReqClass::kROnly), "R-Only");
  EXPECT_EQ(to_string(ReqKind::kReadEx), "read_ex");
}

TEST(MemStatsTest, Merge) {
  MemStats a, b;
  a.loads = 10;
  b.loads = 5;
  b.writebacks = 2;
  a += b;
  EXPECT_EQ(a.loads, 15u);
  EXPECT_EQ(a.writebacks, 2u);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"b", "100.00"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric cells right-align: "  1.25" ends aligned with "100.00".
  EXPECT_NE(s.find("  1.25"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}

TEST(TableTest, FormattersNegativeValues) {
  EXPECT_EQ(Table::fmt(-1.2345, 2), "-1.23");
  EXPECT_EQ(Table::pct(-0.5, 1), "-50.0%");
}

TEST(TableTest, FormattersHugeValuesAreNotTruncated) {
  // %f on 1e300 needs 300+ characters; a fixed 64-byte buffer would
  // silently truncate. The full rendering ends with the asked precision.
  const std::string s = Table::fmt(1e300, 2);
  EXPECT_GT(s.size(), 300u);
  EXPECT_EQ(s.substr(s.size() - 3), ".00");
  EXPECT_EQ(s[0], '1');
  const std::string p = Table::pct(1e300, 1);
  EXPECT_EQ(p.back(), '%');
  EXPECT_GT(p.size(), 300u);
}

TEST(TableTest, FormattersNonFiniteValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Table::fmt(nan, 2), "nan");
  EXPECT_EQ(Table::fmt(inf, 2), "inf");
  EXPECT_EQ(Table::fmt(-inf, 2), "-inf");
  EXPECT_EQ(Table::pct(nan, 1), "nan%");
  EXPECT_EQ(Table::pct(inf, 1), "inf%");
  EXPECT_EQ(Table::pct(-inf, 1), "-inf%");
}

TEST(TimelineTest, SamplesCategoriesOverTime) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] {
    cpu.consume(1000, sim::TimeCategory::kBusy);
    cpu.consume(1000, sim::TimeCategory::kMemStall);
  });
  Timeline tl(engine, 100);
  engine.run();
  ASSERT_GE(tl.samples().size(), 15u);
  // First half busy, second half stalled.
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kBusy, 0, 1000), 0.9);
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kMemStall, 1001, 2001), 0.9);
  const std::string csv = tl.to_csv();
  EXPECT_NE(csv.find("cycle,p0"), std::string::npos);
  EXPECT_NE(csv.find("busy"), std::string::npos);
  EXPECT_NE(csv.find("mem_stall"), std::string::npos);
}

TEST(TimelineTest, SamplingStopsWhenCpusFinish) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] { cpu.consume(500, sim::TimeCategory::kBusy); });
  Timeline tl(engine, 50);
  engine.run();
  // One trailing sample after completion at most.
  EXPECT_LE(tl.samples().back().when, 600u);
}

TEST(TimelineTest, ShortRunStillGetsASampleAfterFinalize) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] { cpu.consume(100, sim::TimeCategory::kBusy); });
  Timeline tl(engine, 10000);  // interval longer than the whole run
  engine.run();
  EXPECT_TRUE(tl.samples().empty());  // no tick ever fired...
  tl.finalize();
  ASSERT_EQ(tl.samples().size(), 1u);  // ...but the end state is recorded
  EXPECT_EQ(tl.samples().back().when, 100u);
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kBusy), 0.9);
}

TEST(TimelineTest, FinalizeCancelsPendingTickWithoutAdvancingTime) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] { cpu.consume(120, sim::TimeCategory::kBusy); });
  Timeline tl(engine, 100);
  engine.run();
  tl.finalize();
  // The tick due at cycle 200 must not fire or inflate simulated time.
  EXPECT_EQ(engine.run(), 120u);
  EXPECT_EQ(tl.samples().back().when, 120u);
  // Idempotent: a second finalize at the same instant records nothing new.
  const std::size_t n = tl.samples().size();
  tl.finalize();
  EXPECT_EQ(tl.samples().size(), n);
}

TEST(TimelineTest, FractionBoundsChecksCpu) {
  sim::Engine engine;
  sim::SimCpu& cpu = engine.add_cpu("p0");
  cpu.start([&] { cpu.consume(500, sim::TimeCategory::kBusy); });
  Timeline tl(engine, 50);
  engine.run();
  tl.finalize();
  EXPECT_EQ(tl.fraction(-1, sim::TimeCategory::kBusy), 0.0);
  EXPECT_EQ(tl.fraction(7, sim::TimeCategory::kBusy), 0.0);
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kBusy), 0.9);
}

TEST(TimelineTest, BlockedCpuReportsWaitCategory) {
  sim::Engine engine;
  sim::SimCpu& sleeper = engine.add_cpu("s");
  sim::SimCpu& waker = engine.add_cpu("w");
  sleeper.start([&] { sleeper.block(sim::TimeCategory::kJobWait); });
  waker.start([&] {
    waker.consume(2000, sim::TimeCategory::kBusy);
    sleeper.wake();
  });
  Timeline tl(engine, 100);
  engine.run();
  EXPECT_GT(tl.fraction(0, sim::TimeCategory::kJobWait, 0, 2000), 0.9);
}

}  // namespace
}  // namespace ssomp::stats
