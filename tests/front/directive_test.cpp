// SLIPSTREAM directive / OMP_SLIPSTREAM grammar tests (paper §3.3).
#include <gtest/gtest.h>

#include "front/directive.hpp"

namespace ssomp::front {
namespace {

using slip::SyncType;

TEST(DirectiveParseTest, BareDirective) {
  const auto r = parse_slipstream_directive("SLIPSTREAM");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.value.type.has_value());
  EXPECT_FALSE(r.value.tokens.has_value());
}

TEST(DirectiveParseTest, TypeOnly) {
  const auto r = parse_slipstream_directive("SLIPSTREAM(LOCAL_SYNC)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.type, SyncType::kLocal);
  EXPECT_FALSE(r.value.tokens.has_value());
}

TEST(DirectiveParseTest, TypeAndTokens) {
  const auto r = parse_slipstream_directive("SLIPSTREAM(GLOBAL_SYNC, 2)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.type, SyncType::kGlobal);
  EXPECT_EQ(r.value.tokens, 2);
}

TEST(DirectiveParseTest, TokensOnly) {
  // Grammar: SLIPSTREAM([type] [, tokens]) — both parts optional.
  const auto r = parse_slipstream_directive("SLIPSTREAM(3)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.value.type.has_value());
  EXPECT_EQ(r.value.tokens, 3);
}

TEST(DirectiveParseTest, SentinelsAccepted) {
  EXPECT_TRUE(parse_slipstream_directive("!$OMP SLIPSTREAM(RUNTIME_SYNC)")
                  .ok);
  EXPECT_TRUE(
      parse_slipstream_directive("#pragma omp slipstream(local_sync,1)").ok);
}

TEST(DirectiveParseTest, CaseInsensitive) {
  const auto r = parse_slipstream_directive("slipstream(global_sync, 1)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.type, SyncType::kGlobal);
}

TEST(DirectiveParseTest, WhitespaceTolerated) {
  const auto r =
      parse_slipstream_directive("  SLIPSTREAM (  LOCAL_SYNC ,  4 )  ");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.type, SyncType::kLocal);
  EXPECT_EQ(r.value.tokens, 4);
}

TEST(DirectiveParseTest, Rejections) {
  EXPECT_FALSE(parse_slipstream_directive("PARALLEL").ok);
  EXPECT_FALSE(parse_slipstream_directive("SLIPSTREAM(BOGUS_SYNC, 1)").ok);
  EXPECT_FALSE(parse_slipstream_directive("SLIPSTREAM(GLOBAL_SYNC, -1)").ok);
  EXPECT_FALSE(parse_slipstream_directive("SLIPSTREAM(GLOBAL_SYNC, 1, 2)").ok);
  EXPECT_FALSE(parse_slipstream_directive("SLIPSTREAM(1, GLOBAL_SYNC)").ok);
  EXPECT_FALSE(parse_slipstream_directive("SLIPSTREAM(NONE)").ok)
      << "NONE is an environment-only value";
  EXPECT_FALSE(parse_slipstream_directive("SLIPSTREAM(GLOBAL_SYNC").ok);
}

TEST(EnvParseTest, AcceptsNone) {
  const auto r = parse_slipstream_env("NONE");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.type, SyncType::kNone);
}

TEST(EnvParseTest, TypeAndTokens) {
  const auto r = parse_slipstream_env("LOCAL_SYNC,1");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.type, SyncType::kLocal);
  EXPECT_EQ(r.value.tokens, 1);
}

TEST(ScheduleParseTest, Kinds) {
  EXPECT_EQ(parse_schedule_clause("static").value.kind,
            ScheduleKind::kStatic);
  EXPECT_EQ(parse_schedule_clause("schedule(dynamic, 4)").value.kind,
            ScheduleKind::kDynamic);
  EXPECT_EQ(parse_schedule_clause("schedule(dynamic, 4)").value.chunk, 4);
  EXPECT_EQ(parse_schedule_clause("guided").value.kind,
            ScheduleKind::kGuided);
  EXPECT_EQ(parse_schedule_clause("schedule(affinity, 2)").value.kind,
            ScheduleKind::kAffinity);
  EXPECT_FALSE(parse_schedule_clause("schedule(random)").ok);
  EXPECT_FALSE(parse_schedule_clause("schedule(dynamic, 0)").ok);
}

TEST(DirectiveControlTest, DefaultIsGlobalZero) {
  DirectiveControl dc;
  const auto cfg = dc.resolve();
  EXPECT_EQ(cfg.type, SyncType::kGlobal);
  EXPECT_EQ(cfg.tokens, 0);
}

TEST(DirectiveControlTest, SerialDirectiveSetsGlobal) {
  DirectiveControl dc;
  dc.apply_serial(parse_slipstream_directive("SLIPSTREAM(LOCAL_SYNC,1)")
                      .value);
  const auto cfg = dc.resolve();
  EXPECT_EQ(cfg.type, SyncType::kLocal);
  EXPECT_EQ(cfg.tokens, 1);
}

TEST(DirectiveControlTest, RegionOverridesButDoesNotPersist) {
  // §3.3: "Using the directive on a parallel region takes precedence but
  // does not override the global setting."
  DirectiveControl dc;
  dc.apply_serial(parse_slipstream_directive("SLIPSTREAM(LOCAL_SYNC,1)")
                      .value);
  const auto region =
      parse_slipstream_directive("SLIPSTREAM(GLOBAL_SYNC)").value;
  const auto cfg = dc.resolve(region);
  EXPECT_EQ(cfg.type, SyncType::kGlobal);
  EXPECT_EQ(cfg.tokens, 1);  // unspecified field inherits the global
  // Global restored for the next region.
  const auto cfg2 = dc.resolve();
  EXPECT_EQ(cfg2.type, SyncType::kLocal);
}

TEST(DirectiveControlTest, RuntimeSyncReadsEnvironment) {
  DirectiveControl dc;
  ASSERT_TRUE(dc.set_env("LOCAL_SYNC,2"));
  const auto region =
      parse_slipstream_directive("SLIPSTREAM(RUNTIME_SYNC)").value;
  const auto cfg = dc.resolve(region);
  EXPECT_EQ(cfg.type, SyncType::kLocal);
  EXPECT_EQ(cfg.tokens, 2);
}

TEST(DirectiveControlTest, RuntimeSyncWithoutEnvFallsBackToDefault) {
  DirectiveControl dc;
  const auto region =
      parse_slipstream_directive("SLIPSTREAM(RUNTIME_SYNC)").value;
  EXPECT_EQ(dc.resolve(region).type, SyncType::kGlobal);
}

TEST(DirectiveControlTest, EnvNoneDisablesSlipstream) {
  DirectiveControl dc;
  ASSERT_TRUE(dc.set_env("NONE"));
  const auto region =
      parse_slipstream_directive("SLIPSTREAM(RUNTIME_SYNC)").value;
  EXPECT_FALSE(dc.resolve(region).enabled());
}

TEST(DirectiveControlTest, BadEnvRejectedAndPreserved) {
  DirectiveControl dc;
  ASSERT_TRUE(dc.set_env("LOCAL_SYNC"));
  EXPECT_FALSE(dc.set_env("WAT"));
  const auto region =
      parse_slipstream_directive("SLIPSTREAM(RUNTIME_SYNC)").value;
  EXPECT_EQ(dc.resolve(region).type, SyncType::kLocal);  // old value kept
  ASSERT_TRUE(dc.set_env(""));  // unset
  EXPECT_EQ(dc.resolve(region).type, SyncType::kGlobal);
}

}  // namespace
}  // namespace ssomp::front
