// Slipstream compile-report analyzer tests.
#include <gtest/gtest.h>

#include "front/report.hpp"

namespace ssomp::front {
namespace {

const ConstructReport* find_construct(const SourceReport& r,
                                      const std::string& name) {
  for (const auto& c : r.constructs) {
    if (c.construct == name) return &c;
  }
  return nullptr;
}

TEST(ReportTest, RecognizesAllConstructs) {
  const char* src = R"(
#pragma omp parallel
{
#pragma omp for schedule(static)
#pragma omp barrier
#pragma omp single
#pragma omp master
#pragma omp critical
#pragma omp atomic
#pragma omp sections
#pragma omp flush
}
)";
  const auto r = analyze_source(src, "");
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.parallel_regions, 1);
  for (const char* name : {"parallel", "for", "barrier", "single", "master",
                           "critical", "atomic", "sections", "flush"}) {
    EXPECT_NE(find_construct(r, name), nullptr) << name;
  }
}

TEST(ReportTest, StaticVsDynamicForActions) {
  const auto r = analyze_source(R"(
#pragma omp parallel
{
#pragma omp for schedule(static)
#pragma omp for schedule(dynamic, 4)
}
)",
                                "");
  ASSERT_EQ(r.constructs.size(), 3u);
  EXPECT_NE(r.constructs[1].a_action.find("identical bounds"),
            std::string::npos);
  EXPECT_NE(r.constructs[2].a_action.find("syscall semaphore"),
            std::string::npos);
}

TEST(ReportTest, SerialDirectiveSetsGlobal) {
  const auto r = analyze_source(R"(
#pragma omp slipstream(LOCAL_SYNC, 2)
#pragma omp parallel
{
}
)",
                                "");
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(r.final_global.type, slip::SyncType::kLocal);
  EXPECT_EQ(r.final_global.tokens, 2);
  const auto* par = find_construct(r, "parallel");
  ASSERT_NE(par, nullptr);
  EXPECT_NE(par->sync.find("LOCAL_SYNC, tokens=2"), std::string::npos);
}

TEST(ReportTest, RegionOverrideDoesNotPersist) {
  const auto r = analyze_source(R"(
#pragma omp slipstream(LOCAL_SYNC, 1)
#pragma omp parallel slipstream(GLOBAL_SYNC, 0)
{
}
#pragma omp parallel
{
}
)",
                                "");
  ASSERT_EQ(r.parallel_regions, 2);
  EXPECT_NE(r.constructs[1].sync.find("GLOBAL_SYNC"), std::string::npos);
  EXPECT_NE(r.constructs[2].sync.find("LOCAL_SYNC"), std::string::npos);
  EXPECT_EQ(r.final_global.type, slip::SyncType::kLocal);
}

TEST(ReportTest, RuntimeSyncResolvesThroughEnvironment) {
  const auto r = analyze_source(R"(
#pragma omp parallel slipstream(RUNTIME_SYNC)
{
}
)",
                                "LOCAL_SYNC,3");
  EXPECT_NE(r.constructs[0].sync.find("LOCAL_SYNC, tokens=3"),
            std::string::npos);
}

TEST(ReportTest, EnvironmentNoneDisables) {
  const auto r = analyze_source(R"(
#pragma omp parallel slipstream(RUNTIME_SYNC)
{
}
)",
                                "NONE");
  EXPECT_NE(r.constructs[0].sync.find("disabled"), std::string::npos);
  EXPECT_NE(r.constructs[0].a_action.find("idle"), std::string::npos);
}

TEST(ReportTest, SlipstreamInsideRegionIsDiagnosed) {
  const auto r = analyze_source(R"(
#pragma omp parallel
{
#pragma omp slipstream(GLOBAL_SYNC)
}
)",
                                "");
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("no effect"), std::string::npos);
}

TEST(ReportTest, BadDirectivesAreDiagnosed) {
  const auto r = analyze_source(R"(
#pragma omp slipstream(BOGUS, 1)
#pragma omp taskwait
)",
                                "");
  ASSERT_EQ(r.errors.size(), 2u);
  EXPECT_NE(r.errors[1].find("taskwait"), std::string::npos);
}

TEST(ReportTest, BadEnvironmentDiagnosed) {
  const auto r = analyze_source("", "WAT");
  ASSERT_EQ(r.errors.size(), 1u);
}

TEST(ReportTest, FortranSentinelAccepted) {
  const auto r = analyze_source(R"(
!$OMP SLIPSTREAM(GLOBAL_SYNC, 1)
!$OMP PARALLEL
!$OMP DO
)",
                                "");
  EXPECT_EQ(r.parallel_regions, 1);
  EXPECT_NE(find_construct(r, "for"), nullptr);  // DO maps to for
  EXPECT_EQ(r.final_global.tokens, 1);
}

TEST(ReportTest, FormatIncludesSummary) {
  const auto r = analyze_source(R"(
#pragma omp parallel
{
}
)",
                                "");
  const std::string text = format_report(r);
  EXPECT_NE(text.find("1 parallel region(s)"), std::string::npos);
  EXPECT_NE(text.find("global setting"), std::string::npos);
}

}  // namespace
}  // namespace ssomp::front
