// Contract violations abort with SSOMP_CHECK (death tests): the simulator
// fails loudly on misuse rather than silently producing wrong timings.
#include <gtest/gtest.h>

#include "mem/addrspace.hpp"
#include "mem/cache.hpp"
#include "machine/machine.hpp"
#include "sim/engine.hpp"

namespace ssomp {
namespace {

using DeathTest = ::testing::Test;

TEST(ContractsTest, EngineRejectsPastEvents) {
  EXPECT_DEATH(
      {
        sim::Engine e;
        e.schedule_at(100, [] {});
        e.run();
        e.schedule_at(50, [] {});  // the past
      },
      "check failed");
}

TEST(ContractsTest, CpuConsumeOutsideFiber) {
  EXPECT_DEATH(
      {
        sim::Engine e;
        sim::SimCpu& cpu = e.add_cpu("p0");
        cpu.start([] {});
        e.run();
        cpu.consume(10, sim::TimeCategory::kBusy);  // not on its fiber
      },
      "check failed");
}

TEST(ContractsTest, WakeOfRunnableCpu) {
  EXPECT_DEATH(
      {
        sim::Engine e;
        sim::SimCpu& cpu = e.add_cpu("p0");
        cpu.start([] {});
        cpu.wake();  // never blocked
      },
      "check failed");
}

TEST(ContractsTest, CacheGeometryMustBePowerOfTwoSets) {
  struct M {};
  EXPECT_DEATH({ mem::SetAssocCache<M> c(3 * 64, 1, 64); }, "check failed");
}

TEST(ContractsTest, AddrSpaceOverflow) {
  EXPECT_DEATH(
      {
        mem::AddrSpace as;
        as.alloc_app(mem::AddrSpace::kArenaSize + 1);
      },
      "check failed");
}

TEST(ContractsTest, MachineRequiresDualCpuCmps) {
  EXPECT_DEATH(
      {
        machine::MachineConfig mc;
        mc.cpus_per_cmp = 4;
        machine::Machine m(mc);
      },
      "check failed");
}

TEST(ContractsTest, MachineCmpCountBounds) {
  EXPECT_DEATH(
      {
        machine::MachineConfig mc;
        mc.ncmp = 65;  // directory sharer mask is 64 bits
        machine::Machine m(mc);
      },
      "check failed");
}

}  // namespace
}  // namespace ssomp
