// Validates the Table 1 machine parameters and the paper's two stated
// latency calibration points.
#include <gtest/gtest.h>

#include "mem/params.hpp"

namespace ssomp::mem {
namespace {

TEST(ParamsTest, Table1Defaults) {
  const MemParams p;
  EXPECT_DOUBLE_EQ(p.clock_ghz, 1.2);
  EXPECT_EQ(p.l1_size_bytes, 16u * 1024);
  EXPECT_EQ(p.l1_assoc, 2u);
  EXPECT_EQ(p.l1_hit_cycles, 1u);
  EXPECT_EQ(p.l2_size_bytes, 1024u * 1024);
  EXPECT_EQ(p.l2_assoc, 4u);
  EXPECT_EQ(p.l2_hit_cycles, 10u);
  EXPECT_DOUBLE_EQ(p.bus_ns, 30);
  EXPECT_DOUBLE_EQ(p.pi_local_dc_ns, 10);
  EXPECT_DOUBLE_EQ(p.ni_local_dc_ns, 60);
  EXPECT_DOUBLE_EQ(p.ni_remote_dc_ns, 10);
  EXPECT_DOUBLE_EQ(p.net_ns, 50);
  EXPECT_DOUBLE_EQ(p.mem_ns, 50);
}

TEST(ParamsTest, NsToCyclesAt1200MHz) {
  const MemParams p;
  EXPECT_EQ(p.ns(50), 60u);
  EXPECT_EQ(p.ns(30), 36u);
  EXPECT_EQ(p.ns(10), 12u);
}

TEST(ParamsTest, PaperCalibrationLocalMiss170ns) {
  const MemParams p;
  // "A local miss requires 170 ns."
  EXPECT_EQ(p.min_local_miss_cycles(), p.ns(170));
}

TEST(ParamsTest, PaperCalibrationRemoteMiss290ns) {
  const MemParams p;
  // "The minimum latency to bring data into the L2 cache on a remote miss
  //  is 290 ns, assuming no contention."
  EXPECT_EQ(p.min_remote_miss_cycles(), p.ns(290));
}

TEST(ParamsTest, ScaledConfigKeepsLatencies) {
  const MemParams s = MemParams::scaled_for_benchmarks();
  const MemParams d;
  EXPECT_LT(s.l2_size_bytes, d.l2_size_bytes);
  EXPECT_LT(s.l1_size_bytes, d.l1_size_bytes);
  EXPECT_EQ(s.min_local_miss_cycles(), d.min_local_miss_cycles());
  EXPECT_EQ(s.min_remote_miss_cycles(), d.min_remote_miss_cycles());
}

}  // namespace
}  // namespace ssomp::mem
