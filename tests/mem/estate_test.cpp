// MESI Exclusive-state extension tests (opt-in protocol feature).
#include <gtest/gtest.h>

#include "mem/addrspace.hpp"
#include "mem/memsys.hpp"
#include "sim/rng.hpp"

namespace ssomp::mem {
namespace {

constexpr sim::Addr kApp = AddrSpace::kAppBase;

MemParams estate_params() {
  MemParams p;
  p.exclusive_state = true;
  return p;
}

TEST(EStateTest, SoleReaderGetsSilentStoreUpgrade) {
  MemorySystem ms(estate_params(), 4);
  (void)ms.load(0, kApp, 0);  // uncached -> E grant
  // The first store upgrades silently: just an L2 access, no directory
  // round-trip (in plain MSI this was a full upgrade transaction).
  const sim::Cycles lat = ms.store(0, kApp, 10000);
  EXPECT_EQ(lat, ms.params().l2_hit_cycles);
  EXPECT_EQ(ms.stats().silent_upgrades, 1u);
  EXPECT_EQ(ms.stats().upgrades, 0u);
  EXPECT_TRUE(ms.check_invariants());
}

TEST(EStateTest, MsiDefaultStillPaysUpgrade) {
  MemorySystem ms(MemParams{}, 4);  // extension off
  (void)ms.load(0, kApp, 0);
  EXPECT_GT(ms.store(0, kApp, 10000), ms.params().l2_hit_cycles);
  EXPECT_EQ(ms.stats().silent_upgrades, 0u);
  EXPECT_EQ(ms.stats().upgrades, 1u);
}

TEST(EStateTest, SecondReaderDemotesToShared) {
  MemorySystem ms(estate_params(), 4);
  (void)ms.load(0, kApp, 0);      // node 0: E
  (void)ms.load(2, kApp, 10000);  // node 1 reads: owner forwards, both S
  EXPECT_TRUE(ms.check_invariants());
  // Now node 0's store must be a real upgrade with an invalidation.
  EXPECT_GT(ms.store(0, kApp, 20000), ms.params().l2_hit_cycles);
  EXPECT_EQ(ms.stats().upgrades, 1u);
  EXPECT_EQ(ms.stats().invalidations, 1u);
  EXPECT_TRUE(ms.check_invariants());
}

TEST(EStateTest, CleanExclusiveEvictionNeedsNoWriteback) {
  MemParams p = estate_params();
  p.l2_size_bytes = 4 * 1024;  // 1 set x ... small enough to force evicts
  p.l1_size_bytes = 1 * 1024;
  MemorySystem ms(p, 2);
  // Fill well past the L2 with clean-exclusive lines.
  for (int i = 0; i < 256; ++i) {
    (void)ms.load(0, kApp + static_cast<sim::Addr>(i) * 64,
                  static_cast<sim::Cycles>(i) * 1000);
  }
  EXPECT_EQ(ms.stats().writebacks, 0u);
  EXPECT_TRUE(ms.check_invariants());
}

TEST(EStateTest, DirtyReadOfExclusiveLineForwardsFromOwner) {
  MemorySystem ms(estate_params(), 4);
  (void)ms.load(0, kApp, 0);  // node 0 E (clean)
  const sim::Cycles lat = ms.load(4, kApp, 10000);  // node 2 reads
  // Served through the owner (directory tracks E as owned): costlier than
  // a clean remote miss.
  EXPECT_GT(lat, ms.params().min_remote_miss_cycles());
  EXPECT_EQ(ms.stats().fills_dirty, 1u);
  EXPECT_TRUE(ms.check_invariants());
}

TEST(EStateTest, ExclusivePrefetchSatisfiedByEState) {
  MemorySystem ms(estate_params(), 4);
  ms.set_role(0, stats::StreamRole::kR);
  ms.set_role(1, stats::StreamRole::kA);
  (void)ms.load(1, kApp, 0);  // node 0 E via the A-stream
  // A converted store needs ownership; E already provides it.
  EXPECT_TRUE(ms.prefetch(1, kApp, /*exclusive=*/true, 10000));
  EXPECT_EQ(ms.stats().upgrades, 0u);
}

TEST(EStateTest, StormKeepsInvariants) {
  MemParams p = estate_params();
  p.l2_size_bytes = 16 * 1024;
  p.l1_size_bytes = 2 * 1024;
  MemorySystem ms(p, 8);
  sim::Rng rng(123);
  sim::Cycles now = 0;
  for (int op = 0; op < 30000; ++op) {
    const auto cpu =
        static_cast<sim::CpuId>(rng.next_below(16));
    const sim::Addr addr = kApp + rng.next_below(512) * 64;
    now += rng.next_below(100);
    switch (rng.next_below(3)) {
      case 0: (void)ms.load(cpu, addr, now); break;
      case 1: (void)ms.store(cpu, addr, now); break;
      default: (void)ms.prefetch(cpu, addr, true, now); break;
    }
    if (op % 5000 == 0) {
      ASSERT_TRUE(ms.check_invariants()) << op;
    }
  }
  EXPECT_TRUE(ms.check_invariants());
  EXPECT_GT(ms.stats().silent_upgrades, 0u);
}

}  // namespace
}  // namespace ssomp::mem
