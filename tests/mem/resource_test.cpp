// Gap-fitting Resource semantics (the contention model's core).
#include <gtest/gtest.h>

#include "mem/resource.hpp"
#include "sim/rng.hpp"

namespace ssomp::mem {
namespace {

TEST(GapFitTest, RequestFitsInIdleWindowBetweenReservations) {
  Resource r;
  // A transaction reserves the bus now and for its reply far in the
  // future (two separate serves).
  EXPECT_EQ(r.serve(100, 36), 136u);
  EXPECT_EQ(r.serve(400, 36), 436u);  // the "reply"
  // Another processor's request in between must NOT queue behind the
  // future reply: the bus is idle from 136 to 400.
  EXPECT_EQ(r.serve(150, 36), 186u);
  EXPECT_EQ(r.queue_delay_total(), 0u);
}

TEST(GapFitTest, TooLargeForGapQueues) {
  Resource r;
  (void)r.serve(100, 10);   // [100,110)
  (void)r.serve(115, 10);   // [115,125)
  // A 10-cycle job arriving at 102 does not fit in [110,115): queued to
  // 125.
  EXPECT_EQ(r.serve(102, 10), 135u);
  EXPECT_EQ(r.queue_delay_total(), 23u);
}

TEST(GapFitTest, ExactFitUsesGap) {
  Resource r;
  (void)r.serve(0, 10);    // [0,10)
  (void)r.serve(20, 10);   // [20,30)
  EXPECT_EQ(r.serve(10, 10), 20u);  // fits exactly in [10,20)
  EXPECT_EQ(r.queue_delay_total(), 0u);
}

TEST(GapFitTest, OccupyBlocksWithoutLatencyCharge) {
  Resource r;
  r.occupy(50, 100);
  EXPECT_EQ(r.queue_delay_total(), 0u);
  EXPECT_EQ(r.serve(60, 10), 160u);
  EXPECT_EQ(r.queue_delay_total(), 90u);
}

TEST(GapFitTest, StatsAccumulate) {
  Resource r("memctl");
  (void)r.serve(0, 60);
  (void)r.serve(0, 60);
  EXPECT_EQ(r.requests(), 2u);
  EXPECT_EQ(r.busy_total(), 120u);
  EXPECT_EQ(r.queue_delay_total(), 60u);
  EXPECT_EQ(r.name(), "memctl");
}

TEST(GapFitTest, PropertyNoOverlappingService) {
  // Whatever the arrival pattern, granted service intervals never overlap
  // and every request starts at or after its arrival.
  sim::Rng rng(99);
  Resource r;
  std::vector<std::pair<sim::Cycles, sim::Cycles>> granted;
  sim::Cycles t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.next_below(50);
    const sim::Cycles occ = 1 + rng.next_below(40);
    const sim::Cycles done = r.serve(t, occ);
    const sim::Cycles start = done - occ;
    ASSERT_GE(start, t);
    granted.push_back({start, done});
  }
  std::sort(granted.begin(), granted.end());
  for (std::size_t i = 1; i < granted.size(); ++i) {
    ASSERT_LE(granted[i - 1].second, granted[i].first)
        << "service intervals overlap at " << i;
  }
}

TEST(GapFitTest, PropertyConservesWork) {
  // Total service time granted equals the sum of occupancies.
  sim::Rng rng(7);
  Resource r;
  sim::Cycles total_occ = 0;
  sim::Cycles t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.next_below(20);
    const sim::Cycles occ = 1 + rng.next_below(30);
    total_occ += occ;
    (void)r.serve(t, occ);
  }
  EXPECT_EQ(r.busy_total(), total_occ);
}

}  // namespace
}  // namespace ssomp::mem
