// MemorySystem protocol, latency, and classification tests.
#include <gtest/gtest.h>

#include "mem/addrspace.hpp"
#include "mem/memsys.hpp"
#include "sim/rng.hpp"

namespace ssomp::mem {
namespace {

using stats::ReqClass;
using stats::ReqKind;
using stats::StreamRole;

constexpr sim::Addr kApp = AddrSpace::kAppBase;

class MemSysTest : public ::testing::Test {
 protected:
  MemSysTest() : ms_(MemParams{}, /*nodes=*/4) {
    // Deterministic homes: page p -> node p % 4 (the default), so kApp
    // (page-aligned) is homed at (kApp / 4096) % 4 == 0.
  }

  MemorySystem ms_;
};

TEST_F(MemSysTest, HomeOfAppBaseIsNode0) {
  EXPECT_EQ(ms_.home_map().home_of(kApp), (kApp / 4096) % 4);
}

TEST_F(MemSysTest, ColdLocalMissCosts170ns) {
  // CPU 0 lives on node 0; kApp is homed there.
  const sim::Cycles lat = ms_.load(0, kApp, 0);
  EXPECT_EQ(lat, ms_.params().min_local_miss_cycles());
  EXPECT_EQ(ms_.stats().fills_local, 1u);
}

TEST_F(MemSysTest, ColdRemoteMissCosts290ns) {
  // CPU 2 lives on node 1; kApp is homed on node 0.
  const sim::Cycles lat = ms_.load(2, kApp, 0);
  EXPECT_EQ(lat, ms_.params().min_remote_miss_cycles());
  EXPECT_EQ(ms_.stats().fills_remote_clean, 1u);
}

TEST_F(MemSysTest, L1ThenL2Hits) {
  (void)ms_.load(0, kApp, 0);
  EXPECT_EQ(ms_.load(0, kApp, 1000), ms_.params().l1_hit_cycles);
  // The sibling CPU on the same node misses L1 but hits the shared L2.
  EXPECT_EQ(ms_.load(1, kApp, 2000), ms_.params().l2_hit_cycles);
  // And then hits its own L1.
  EXPECT_EQ(ms_.load(1, kApp, 3000), ms_.params().l1_hit_cycles);
  EXPECT_EQ(ms_.stats().l2_fills, 1u);
}

TEST_F(MemSysTest, SameLineDifferentOffsetsHit) {
  (void)ms_.load(0, kApp, 0);
  EXPECT_EQ(ms_.load(0, kApp + 63, 100), ms_.params().l1_hit_cycles);
  EXPECT_GT(ms_.load(0, kApp + 64, 200), ms_.params().l2_hit_cycles);
}

TEST_F(MemSysTest, StoreBringsLineExclusive) {
  const sim::Cycles lat = ms_.store(0, kApp, 0);
  EXPECT_GE(lat, ms_.params().min_local_miss_cycles());
  // Subsequent store by the same CPU is an L1 hit.
  EXPECT_EQ(ms_.store(0, kApp, 1000), ms_.params().l1_hit_cycles);
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, StoreAfterSharedLoadUpgrades) {
  (void)ms_.load(0, kApp, 0);      // node 0 shared
  (void)ms_.load(2, kApp, 1000);   // node 1 shared
  const sim::Cycles lat = ms_.store(0, kApp, 2000);
  EXPECT_GT(lat, ms_.params().l2_hit_cycles);  // upgrade round-trip
  EXPECT_EQ(ms_.stats().upgrades, 1u);
  EXPECT_EQ(ms_.stats().invalidations, 1u);
  // The other node's copy is gone: reloading misses.
  EXPECT_GT(ms_.load(2, kApp, 3000), ms_.params().l2_hit_cycles);
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, DirtyRemoteLineServedByOwner) {
  (void)ms_.store(2, kApp, 0);  // node 1 owns dirty
  const sim::Cycles lat = ms_.load(4, kApp, 1000);  // node 2 reads
  EXPECT_GT(lat, ms_.params().min_remote_miss_cycles());  // 3-hop
  EXPECT_EQ(ms_.stats().fills_dirty, 1u);
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, StoreToDirtyRemoteTransfersOwnership) {
  (void)ms_.store(2, kApp, 0);     // node 1 dirty
  (void)ms_.store(4, kApp, 1000);  // node 2 takes ownership
  // Node 1 lost its copy.
  EXPECT_GT(ms_.load(2, kApp, 2000), ms_.params().l2_hit_cycles);
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, SiblingStoreInvalidatesL1NotL2) {
  (void)ms_.load(0, kApp, 0);
  (void)ms_.load(1, kApp, 100);
  (void)ms_.store(0, kApp, 200);
  // While the store's upgrade is in flight the sibling's read merges and
  // waits out the remainder at the shared L2.
  EXPECT_GT(ms_.load(1, kApp, 210), ms_.params().l2_hit_cycles);
  // Invalidate the sibling's L1 again and read well after completion: the
  // shared L2 still holds the (modified) line — an L2 hit, not a miss.
  (void)ms_.store(0, kApp, 5000);
  EXPECT_EQ(ms_.load(1, kApp, 20000), ms_.params().l2_hit_cycles);
}

TEST_F(MemSysTest, ContentionQueuesAtHomeControllers) {
  // Two remote requests for different lines with the same home node,
  // issued at the same instant from different nodes: the second queues at
  // the home directory controller.
  const sim::Cycles lat1 = ms_.load(2, kApp, 0);              // node 1
  const sim::Cycles lat2 = ms_.load(4, kApp + 4 * 4096, 0);   // node 2
  EXPECT_EQ(lat1, ms_.params().min_remote_miss_cycles());
  EXPECT_GT(lat2, ms_.params().min_remote_miss_cycles());
  EXPECT_GT(ms_.total_queue_delay(), 0u);
}

TEST_F(MemSysTest, PrefetchInstallsPendingLine) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  EXPECT_TRUE(ms_.prefetch(1, kApp, false, 0));
  // R accesses while the fill is outstanding: merged, waits out the rest.
  const sim::Cycles wait = ms_.load(0, kApp, 10);
  EXPECT_GT(wait, ms_.params().l2_hit_cycles);
  EXPECT_LT(wait, ms_.params().min_local_miss_cycles() + 1);
  EXPECT_EQ(ms_.stats().merges, 1u);
}

TEST_F(MemSysTest, PrefetchCompletedActsAsHit) {
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.prefetch(1, kApp, false, 0);
  // Well past completion.
  EXPECT_EQ(ms_.load(0, kApp, 100000), ms_.params().l2_hit_cycles);
}

TEST_F(MemSysTest, ClassificationATimely) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(1, kApp, 0);       // A fetches
  (void)ms_.load(0, kApp, 100000);  // R references later
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kRead, ReqClass::kATimely),
            1u);
}

TEST_F(MemSysTest, ClassificationALateOnMerge) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.prefetch(1, kApp, false, 0);
  (void)ms_.load(0, kApp, 5);  // merges with outstanding fill
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kRead, ReqClass::kALate), 1u);
}

TEST_F(MemSysTest, ClassificationAOnlyWhenUnreferenced) {
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(1, kApp, 0);
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kRead, ReqClass::kAOnly), 1u);
}

TEST_F(MemSysTest, ClassificationRTimelyWhenABehind) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(0, kApp, 0);       // R fetches first
  (void)ms_.load(1, kApp, 100000);  // A benefits later
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kRead, ReqClass::kRTimely),
            1u);
}

TEST_F(MemSysTest, ClassificationExclusivePrefetch) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.prefetch(1, kApp, true, 0);   // converted store
  (void)ms_.store(0, kApp, 100000);       // R's real store hits M line
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kReadEx, ReqClass::kATimely),
            1u);
  // And the R store paid only an L2 hit thanks to the prefetch.
}

TEST_F(MemSysTest, UpgradeStartsNewExclusiveEpoch) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(1, kApp, 0);       // A fetches shared
  (void)ms_.load(0, kApp, 100000);  // R references -> read epoch A-Timely
  (void)ms_.store(0, kApp, 200000);  // upgrade -> retires read epoch
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kRead, ReqClass::kATimely),
            1u);
  // The exclusive epoch belongs to R and was never touched by A.
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kReadEx, ReqClass::kROnly),
            1u);
}

TEST_F(MemSysTest, RuntimeArenaExcludedFromClassification) {
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(1, AddrSpace::kRuntimeBase, 0);
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.total(ReqKind::kRead), 0u);
}

TEST_F(MemSysTest, NoneRoleFillsNotClassified) {
  (void)ms_.load(0, kApp, 0);
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.total(ReqKind::kRead), 0u);
}

TEST_F(MemSysTest, FinalizeIsIdempotent) {
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(1, kApp, 0);
  ms_.finalize_classification();
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.total(ReqKind::kRead), 1u);
}

TEST_F(MemSysTest, PrefetchThrottledByMshrBudget) {
  ms_.set_role(1, StreamRole::kA);
  // Fill the outstanding-fill budget with distinct lines.
  int accepted = 0;
  for (int i = 0; i < 32; ++i) {
    if (ms_.prefetch(1, kApp + static_cast<sim::Addr>(i) * 64, false, 0)) {
      ++accepted;
    }
  }
  EXPECT_LT(accepted, 32);  // the budget is finite
  EXPECT_GE(accepted, 4);
  // Once the fills complete, prefetching resumes.
  EXPECT_TRUE(ms_.prefetch(1, kApp + 100 * 64, false, 1000000));
}

TEST_F(MemSysTest, ExclusivePrefetchSkipsWidelySharedLines) {
  ms_.set_role(1, StreamRole::kA);
  // Three other nodes share the line.
  (void)ms_.load(2, kApp, 0);
  (void)ms_.load(4, kApp, 1000);
  (void)ms_.load(6, kApp, 2000);
  EXPECT_FALSE(ms_.prefetch(1, kApp, /*exclusive=*/true, 3000))
      << "exclusive prefetch must not rip a widely-shared line away";
  // A read prefetch is still fine.
  EXPECT_TRUE(ms_.prefetch(1, kApp, /*exclusive=*/false, 3000));
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, ExclusivePrefetchAllowedWithFewSharers) {
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(2, kApp, 0);  // one other sharer
  EXPECT_TRUE(ms_.prefetch(1, kApp, /*exclusive=*/true, 1000));
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, SiblingLoadDowngradesDirtyL1) {
  (void)ms_.store(0, kApp, 0);           // cpu0 L1 holds M
  (void)ms_.load(1, kApp, 10000);        // sibling reads -> downgrade
  // cpu0's next store must re-assert ownership (not a silent L1-M hit),
  // which invalidates the sibling's copy again.
  EXPECT_GT(ms_.store(0, kApp, 20000), ms_.params().l1_hit_cycles);
  EXPECT_GT(ms_.load(1, kApp, 30000), ms_.params().l1_hit_cycles);
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, DemandFillsMergeAtSharedL2) {
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  const sim::Cycles a_lat = ms_.load(1, kApp, 0);  // A demand-fetches
  // R arrives mid-fill: it waits out the remainder instead of paying a
  // fresh miss or getting an instant (physically impossible) hit.
  const sim::Cycles r_lat = ms_.load(0, kApp, a_lat / 2);
  EXPECT_GT(r_lat, ms_.params().l2_hit_cycles);
  EXPECT_LE(r_lat, a_lat);
  EXPECT_EQ(ms_.stats().merges, 1u);
  ms_.finalize_classification();
  EXPECT_EQ(ms_.stats().req_class.get(ReqKind::kRead, ReqClass::kALate), 1u);
}

TEST_F(MemSysTest, SharedL2PortContention) {
  // Both CPUs of a CMP issue L2-hit accesses to different lines at the
  // same instant: the single-ported shared L2 serializes them.
  (void)ms_.load(0, kApp, 0);            // brings kApp into the L2
  (void)ms_.load(1, kApp + 128, 0);      // brings kApp+128 into the L2
  const sim::Cycles a = ms_.load(1, kApp, 200000);        // L1 miss, L2 hit
  const sim::Cycles b = ms_.load(0, kApp + 128, 200000);  // same instant
  EXPECT_EQ(a, ms_.params().l2_hit_cycles);
  EXPECT_EQ(b, 2 * ms_.params().l2_hit_cycles);  // queued behind a
}

TEST_F(MemSysTest, SelfInvalidationHintsClearSharers) {
  ms_.set_self_invalidation(true);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(2, kApp, 0);
  (void)ms_.load(4, kApp, 1000);
  (void)ms_.load(6, kApp, 2000);
  // With hints enabled the conversion proceeds instead of being dropped.
  EXPECT_TRUE(ms_.prefetch(1, kApp, /*exclusive=*/true, 3000));
  EXPECT_EQ(ms_.stats().self_invalidations, 3u);
  EXPECT_TRUE(ms_.check_invariants());
  // The hinted sharers lost their copies (they refetch on next access).
  EXPECT_GT(ms_.load(2, kApp, 100000), ms_.params().l2_hit_cycles);
}

TEST_F(MemSysTest, SelfInvalidationAvoidsFanOutOnStore) {
  ms_.set_self_invalidation(true);
  ms_.set_role(0, StreamRole::kR);
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(2, kApp, 0);
  (void)ms_.load(4, kApp, 1000);
  (void)ms_.load(6, kApp, 2000);
  (void)ms_.load(0, kApp, 3000);  // R shares the line too
  ASSERT_TRUE(ms_.prefetch(1, kApp, /*exclusive=*/true, 4000));
  const auto invals_before = ms_.stats().invalidations;
  // R's real store arrives after the prefetch completed: an L2 hit with no
  // invalidation fan-out on the critical path.
  EXPECT_EQ(ms_.store(0, kApp, 100000), ms_.params().l1_hit_cycles * 0 +
                                            ms_.params().l2_hit_cycles);
  EXPECT_EQ(ms_.stats().invalidations, invals_before);
  EXPECT_TRUE(ms_.check_invariants());
}

TEST_F(MemSysTest, SelfInvalidationDisabledByDefault) {
  ms_.set_role(1, StreamRole::kA);
  (void)ms_.load(2, kApp, 0);
  (void)ms_.load(4, kApp, 1000);
  (void)ms_.load(6, kApp, 2000);
  EXPECT_FALSE(ms_.prefetch(1, kApp, /*exclusive=*/true, 3000));
  EXPECT_EQ(ms_.stats().self_invalidations, 0u);
}

// Property: a storm of random loads/stores/prefetches from random CPUs
// leaves every protocol invariant intact, and the classification identity
// (classified fills <= total fills) holds. Run over several node counts.
class MemSysStormTest : public ::testing::TestWithParam<int> {};

TEST_P(MemSysStormTest, InvariantsSurviveRandomTraffic) {
  const int nodes = GetParam();
  MemParams params;
  params.l2_size_bytes = 16 * 1024;  // small, to force evictions
  params.l1_size_bytes = 2 * 1024;
  MemorySystem ms(params, nodes);
  const int ncpus = nodes * 2;
  for (int c = 0; c < ncpus; ++c) {
    ms.set_role(c, c % 2 == 0 ? StreamRole::kR : StreamRole::kA);
  }
  sim::Rng rng(77);
  sim::Cycles now = 0;
  for (int op = 0; op < 30000; ++op) {
    const auto cpu = static_cast<sim::CpuId>(rng.next_below(
        static_cast<std::uint64_t>(ncpus)));
    const sim::Addr addr = kApp + rng.next_below(512) * 64;
    now += rng.next_below(100);
    switch (rng.next_below(4)) {
      case 0:
        (void)ms.load(cpu, addr, now);
        break;
      case 1:
        (void)ms.store(cpu, addr, now);
        break;
      case 2:
        (void)ms.prefetch(cpu, addr, false, now);
        break;
      default:
        (void)ms.prefetch(cpu, addr, true, now);
        break;
    }
    if (op % 5000 == 0) {
      EXPECT_TRUE(ms.check_invariants()) << "op " << op;
    }
  }
  EXPECT_TRUE(ms.check_invariants());
  ms.finalize_classification();
  const auto& rc = ms.stats().req_class;
  EXPECT_LE(rc.total(ReqKind::kRead) + rc.total(ReqKind::kReadEx),
            ms.stats().l2_fills + ms.stats().upgrades);
  EXPECT_GT(ms.stats().writebacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, MemSysStormTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace ssomp::mem
