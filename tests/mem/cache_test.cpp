#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/cache.hpp"
#include "sim/rng.hpp"

namespace ssomp::mem {
namespace {

struct NoMeta {};
using Cache = SetAssocCache<NoMeta>;

TEST(CacheTest, LineOfMasksOffset) {
  Cache c(1024, 2, 64);
  EXPECT_EQ(c.line_of(0x1000), 0x1000u);
  EXPECT_EQ(c.line_of(0x103f), 0x1000u);
  EXPECT_EQ(c.line_of(0x1040), 0x1040u);
}

TEST(CacheTest, GeometryDerived) {
  Cache c(16 * 1024, 2, 64);
  EXPECT_EQ(c.sets(), 128u);
  EXPECT_EQ(c.assoc(), 2u);
}

TEST(CacheTest, MissThenHit) {
  Cache c(1024, 2, 64);
  EXPECT_EQ(c.find(0x40), nullptr);
  Cache::Evicted ev;
  c.insert(0x40, LineState::kShared, ev);
  EXPECT_FALSE(ev.valid);
  Cache::Line* line = c.find(0x7f);  // same line as 0x40
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::kShared);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  // One set: size = assoc * line_bytes.
  Cache c(2 * 64, 2, 64);
  Cache::Evicted ev;
  c.insert(0 * 64, LineState::kShared, ev);
  c.insert(128 * 64, LineState::kShared, ev);  // same set (1 set total)
  // Touch the first so the second becomes LRU.
  c.touch(*c.find(0));
  c.insert(256 * 64, LineState::kShared, ev);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line_addr, 128u * 64u);
  EXPECT_NE(c.find(0), nullptr);
  EXPECT_EQ(c.find(128 * 64), nullptr);
}

TEST(CacheTest, EvictedCarriesStateAndMeta) {
  struct M {
    int tag = 0;
  };
  SetAssocCache<M> c(64, 1, 64);  // one line total
  SetAssocCache<M>::Evicted ev;
  auto& line = c.insert(0x0, LineState::kModified, ev);
  line.meta.tag = 42;
  c.insert(64 * 1, LineState::kShared, ev);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.state, LineState::kModified);
  EXPECT_EQ(ev.meta.tag, 42);
}

TEST(CacheTest, InvalidateRemovesLine) {
  Cache c(1024, 2, 64);
  Cache::Evicted ev;
  c.insert(0x80, LineState::kModified, ev);
  const auto gone = c.invalidate(0x80);
  EXPECT_TRUE(gone.valid);
  EXPECT_EQ(gone.state, LineState::kModified);
  EXPECT_EQ(c.find(0x80), nullptr);
  // Idempotent.
  EXPECT_FALSE(c.invalidate(0x80).valid);
}

TEST(CacheTest, ForEachVisitsOnlyValid) {
  Cache c(1024, 2, 64);
  Cache::Evicted ev;
  c.insert(0x40, LineState::kShared, ev);
  c.insert(0x80, LineState::kShared, ev);
  c.invalidate(0x40);
  int count = 0;
  c.for_each([&](Cache::Line&) { ++count; });
  EXPECT_EQ(count, 1);
}

// Property: the cache agrees with a reference model (map + per-set LRU
// order) across random operation sequences, for several geometries.
class CachePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CachePropertyTest, MatchesReferenceModel) {
  const int size_kb = std::get<0>(GetParam());
  const int assoc = std::get<1>(GetParam());
  const std::uint32_t line = 64;
  Cache c(static_cast<std::uint32_t>(size_kb) * 1024,
          static_cast<std::uint32_t>(assoc), line);

  // Reference: per set, list of lines in LRU order (front = LRU).
  std::map<std::uint64_t, std::vector<std::uint64_t>> ref;
  const auto set_of = [&](std::uint64_t la) { return (la / line) % c.sets(); };

  sim::Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t la = rng.next_below(4096) * line;
    auto& set = ref[set_of(la)];
    const auto it = std::find(set.begin(), set.end(), la);
    if (rng.next_below(10) == 0) {
      // Invalidate.
      c.invalidate(la);
      if (it != set.end()) set.erase(it);
      continue;
    }
    Cache::Line* found = c.find(la);
    EXPECT_EQ(found != nullptr, it != set.end()) << "line " << la;
    if (found != nullptr) {
      c.touch(*found);
      set.erase(std::find(set.begin(), set.end(), la));
      set.push_back(la);
    } else {
      Cache::Evicted ev;
      c.insert(la, LineState::kShared, ev);
      if (set.size() == static_cast<std::size_t>(assoc)) {
        EXPECT_TRUE(ev.valid);
        EXPECT_EQ(ev.line_addr, set.front());
        set.erase(set.begin());
      } else {
        EXPECT_FALSE(ev.valid);
      }
      set.push_back(la);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CachePropertyTest,
                         ::testing::Values(std::make_tuple(4, 1),
                                           std::make_tuple(4, 2),
                                           std::make_tuple(16, 2),
                                           std::make_tuple(16, 4),
                                           std::make_tuple(64, 4),
                                           std::make_tuple(64, 8)));

}  // namespace
}  // namespace ssomp::mem
