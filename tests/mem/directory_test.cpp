#include <gtest/gtest.h>

#include "mem/addrspace.hpp"
#include "mem/directory.hpp"
#include "mem/resource.hpp"

namespace ssomp::mem {
namespace {

TEST(DirectoryTest, EntriesStartUncached) {
  Directory d(4);
  DirEntry& e = d.entry(0x1000);
  EXPECT_EQ(e.state, DirState::kUncached);
  EXPECT_EQ(e.sharers, 0u);
  EXPECT_EQ(e.owner, sim::kInvalidNode);
}

TEST(DirectoryTest, SharerBitManipulation) {
  DirEntry e;
  Directory::add_sharer(e, 0);
  Directory::add_sharer(e, 3);
  EXPECT_TRUE(Directory::is_sharer(e, 0));
  EXPECT_FALSE(Directory::is_sharer(e, 1));
  EXPECT_TRUE(Directory::is_sharer(e, 3));
  EXPECT_EQ(Directory::sharer_count(e), 2);
  Directory::remove_sharer(e, 0);
  EXPECT_FALSE(Directory::is_sharer(e, 0));
  EXPECT_EQ(Directory::sharer_count(e), 1);
}

TEST(DirectoryTest, InvariantViolationsDetected) {
  {
    Directory d(4);
    DirEntry& e = d.entry(0);
    e.state = DirState::kShared;  // shared with no sharers
    EXPECT_FALSE(d.check_invariants());
  }
  {
    Directory d(4);
    DirEntry& e = d.entry(0);
    e.state = DirState::kModified;
    e.owner = 2;
    e.sharers = 0b0101;  // modified with two sharers
    EXPECT_FALSE(d.check_invariants());
  }
  {
    Directory d(4);
    DirEntry& e = d.entry(0);
    e.state = DirState::kModified;
    e.owner = 1;
    e.sharers = 0b0010;
    EXPECT_TRUE(d.check_invariants());
  }
}

TEST(HomeMapTest, RoundRobinByPage) {
  HomeMap hm(4, 4096);
  EXPECT_EQ(hm.home_of(0), 0);
  EXPECT_EQ(hm.home_of(4096), 1);
  EXPECT_EQ(hm.home_of(4 * 4096), 0);
  EXPECT_EQ(hm.home_of(4 * 4096 + 17), 0);  // same page, any offset
}

TEST(HomeMapTest, PinOverridesRoundRobin) {
  HomeMap hm(4, 4096);
  hm.pin_range(0, 3 * 4096, 2);
  EXPECT_EQ(hm.home_of(0), 2);
  EXPECT_EQ(hm.home_of(2 * 4096 + 100), 2);
  EXPECT_EQ(hm.home_of(3 * 4096), 3);  // past the pinned range
}

TEST(HomeMapTest, BlockDistributionCoversAllNodes) {
  HomeMap hm(4, 4096);
  const std::uint64_t bytes = 16 * 4096;
  hm.distribute_block(0, bytes);
  // 16 pages over 4 nodes -> 4 pages each, contiguous.
  EXPECT_EQ(hm.home_of(0), 0);
  EXPECT_EQ(hm.home_of(3 * 4096), 0);
  EXPECT_EQ(hm.home_of(4 * 4096), 1);
  EXPECT_EQ(hm.home_of(15 * 4096), 3);
}

TEST(HomeMapTest, BlockDistributionUnevenClamps) {
  HomeMap hm(4, 4096);
  hm.distribute_block(0, 5 * 4096);  // 5 pages over 4 nodes (ceil = 2/node)
  EXPECT_EQ(hm.home_of(0), 0);
  EXPECT_EQ(hm.home_of(4 * 4096), 2);
}

TEST(ResourceTest, NoContentionNoDelay) {
  Resource r("bus");
  EXPECT_EQ(r.serve(100, 30), 130u);
  EXPECT_EQ(r.queue_delay_total(), 0u);
}

TEST(ResourceTest, BackToBackQueues) {
  Resource r;
  EXPECT_EQ(r.serve(100, 30), 130u);
  EXPECT_EQ(r.serve(110, 30), 160u);  // arrives busy: waits 20
  EXPECT_EQ(r.queue_delay_total(), 20u);
  EXPECT_EQ(r.requests(), 2u);
}

TEST(ResourceTest, OccupyAddsNoRequesterLatency) {
  Resource r;
  r.occupy(50, 100);
  EXPECT_EQ(r.next_free(), 150u);
  EXPECT_EQ(r.queue_delay_total(), 0u);
  // A later request still queues behind the occupancy.
  EXPECT_EQ(r.serve(100, 10), 160u);
}

TEST(AddrSpaceTest, ArenasAreDisjointAndAligned) {
  AddrSpace as;
  const sim::Addr a = as.alloc_app(100);
  const sim::Addr b = as.alloc_app(10);
  const sim::Addr r = as.alloc_runtime(8);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_TRUE(AddrSpace::is_app(a));
  EXPECT_TRUE(AddrSpace::is_app(b));
  EXPECT_TRUE(AddrSpace::is_runtime(r));
  EXPECT_FALSE(AddrSpace::is_app(r));
  EXPECT_TRUE(AddrSpace::is_shared(a));
  EXPECT_TRUE(AddrSpace::is_shared(r));
  EXPECT_FALSE(AddrSpace::is_shared(0x10));
}

TEST(AddrSpaceTest, TracksAllocatedBytes) {
  AddrSpace as;
  as.alloc_app(64);
  as.alloc_app(1);
  EXPECT_EQ(as.app_bytes_allocated(), 65u);  // 64, then 1 at offset 64
  as.alloc_app(1);
  EXPECT_EQ(as.app_bytes_allocated(), 129u);  // third alloc re-aligns to 128
}

}  // namespace
}  // namespace ssomp::mem
