// FFT helper correctness against a direct DFT.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "apps/ft.hpp"
#include "sim/rng.hpp"

namespace ssomp::apps {
namespace {

std::vector<std::complex<double>> dft(
    const std::vector<std::complex<double>>& in, bool inverse) {
  const auto n = static_cast<long>(in.size());
  std::vector<std::complex<double>> out(in.size());
  const double sign = inverse ? 1.0 : -1.0;
  for (long k = 0; k < n; ++k) {
    std::complex<double> sum(0.0, 0.0);
    for (long j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * 3.14159265358979323846 *
                         static_cast<double>(k) * static_cast<double>(j) /
                         static_cast<double>(n);
      sum += in[static_cast<std::size_t>(j)] *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[static_cast<std::size_t>(k)] = sum;
  }
  return out;
}

class FftTest : public ::testing::TestWithParam<long> {};

TEST_P(FftTest, MatchesDirectDft) {
  const long n = GetParam();
  sim::Rng rng(5 + static_cast<std::uint64_t>(n));
  std::vector<std::complex<double>> data(static_cast<std::size_t>(n));
  for (auto& c : data) c = {rng.next_double(), rng.next_double()};
  const auto want = dft(data, false);
  auto got = data;
  fft_line(got.data(), n, false);
  for (long k = 0; k < n; ++k) {
    EXPECT_NEAR(got[static_cast<std::size_t>(k)].real(),
                want[static_cast<std::size_t>(k)].real(), 1e-9);
    EXPECT_NEAR(got[static_cast<std::size_t>(k)].imag(),
                want[static_cast<std::size_t>(k)].imag(), 1e-9);
  }
}

TEST_P(FftTest, InverseRoundTrips) {
  const long n = GetParam();
  sim::Rng rng(7);
  std::vector<std::complex<double>> data(static_cast<std::size_t>(n));
  for (auto& c : data) c = {rng.next_double(), rng.next_double()};
  auto work = data;
  fft_line(work.data(), n, false);
  for (auto& c : work) c /= static_cast<double>(n);
  fft_line(work.data(), n, true);
  for (long k = 0; k < n; ++k) {
    EXPECT_NEAR(work[static_cast<std::size_t>(k)].real(),
                data[static_cast<std::size_t>(k)].real(), 1e-12);
    EXPECT_NEAR(work[static_cast<std::size_t>(k)].imag(),
                data[static_cast<std::size_t>(k)].imag(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftTest, ::testing::Values(2, 4, 8, 16, 64));

}  // namespace
}  // namespace ssomp::apps
