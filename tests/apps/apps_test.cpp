// Workload correctness across all execution modes, schedules and
// slipstream configurations — the end-to-end guarantee that slipstream
// execution never changes program results (parameterized sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/cg.hpp"
#include "apps/lu.hpp"
#include "apps/registry.hpp"
#include "core/experiment.hpp"

namespace ssomp::apps {
namespace {

struct Case {
  const char* app;
  rt::ExecutionMode mode;
  slip::SlipstreamConfig slip;
  front::ScheduleKind sched;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = info.param.app;
  s += "_";
  s += to_string(info.param.mode);
  if (info.param.mode == rt::ExecutionMode::kSlipstream) {
    s += info.param.slip.type == slip::SyncType::kLocal ? "_L" : "_G";
    s += std::to_string(info.param.slip.tokens);
  }
  s += info.param.sched == front::ScheduleKind::kStatic ? "_static"
                                                        : "_dynamic";
  return s;
}

class AppModeTest : public ::testing::TestWithParam<Case> {};

TEST_P(AppModeTest, VerifiesAndKeepsInvariants) {
  const Case& c = GetParam();
  front::ScheduleClause sched;
  sched.kind = c.sched;
  if (c.sched == front::ScheduleKind::kDynamic) sched.chunk = 2;
  auto factory = make_workload(c.app, AppScale::kTiny, sched);
  core::ExperimentConfig cfg;
  cfg.machine.ncmp = 4;
  cfg.runtime.mode = c.mode;
  cfg.runtime.slip = c.slip;
  const auto res = core::run_experiment(cfg, factory);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.invariants_ok);
  EXPECT_GT(res.cycles, 0u);
  EXPECT_GT(res.participating_cpus, 0);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const auto g0 = slip::SlipstreamConfig::zero_token_global();
  const auto l1 = slip::SlipstreamConfig::one_token_local();
  for (const char* app :
       {"BT", "CG", "LU", "MG", "SP", "EP", "FT", "IS"}) {
    const bool dynamic_ok =
        std::string(app) != "LU" && std::string(app) != "IS";
    for (auto sched :
         {front::ScheduleKind::kStatic, front::ScheduleKind::kDynamic}) {
      if (sched == front::ScheduleKind::kDynamic && !dynamic_ok) continue;
      cases.push_back({app, rt::ExecutionMode::kSingle, g0, sched});
      cases.push_back({app, rt::ExecutionMode::kDouble, g0, sched});
      cases.push_back({app, rt::ExecutionMode::kSlipstream, g0, sched});
      cases.push_back({app, rt::ExecutionMode::kSlipstream, l1, sched});
    }
  }
  // Extra token counts on one app.
  cases.push_back({"CG", rt::ExecutionMode::kSlipstream,
                   {.type = slip::SyncType::kLocal, .tokens = 2},
                   front::ScheduleKind::kStatic});
  cases.push_back({"CG", rt::ExecutionMode::kSlipstream,
                   {.type = slip::SyncType::kGlobal, .tokens = 1},
                   front::ScheduleKind::kStatic});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AppModeTest, ::testing::ValuesIn(all_cases()),
                         case_name);

TEST(AppRegistryTest, PaperSuiteOrderAndDynamicFlags) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "BT");
  EXPECT_EQ(suite[2].name, "LU");
  EXPECT_FALSE(suite[2].in_dynamic_suite);  // §5.2 excludes LU
  EXPECT_TRUE(suite[1].in_dynamic_suite);
}

TEST(LuPipelinedTest, VerifiesInEveryMode) {
  for (auto mode : {rt::ExecutionMode::kSingle, rt::ExecutionMode::kDouble,
                    rt::ExecutionMode::kSlipstream}) {
    LuParams p = LuParams::tiny();
    p.pipelined = true;
    auto factory = [p](rt::Runtime& rt) { return make_lu(rt, p); };
    core::ExperimentConfig cfg;
    cfg.machine.ncmp = 4;
    cfg.runtime.mode = mode;
    cfg.runtime.slip = slip::SlipstreamConfig::one_token_local();
    const auto res = core::run_experiment(cfg, factory);
    EXPECT_TRUE(res.workload.verified)
        << to_string(mode) << ": " << res.workload.detail;
    EXPECT_TRUE(res.invariants_ok);
  }
}

TEST(LuPipelinedTest, SameResultAsBarrierVariant) {
  double results[2];
  for (int v = 0; v < 2; ++v) {
    LuParams p = LuParams::tiny();
    p.pipelined = v == 1;
    auto factory = [p](rt::Runtime& rt) { return make_lu(rt, p); };
    const auto res =
        core::run_experiment(core::ExperimentConfig::single(4), factory);
    EXPECT_TRUE(res.workload.verified) << res.workload.detail;
    results[v] = res.workload.checksum;
  }
  EXPECT_DOUBLE_EQ(results[0], results[1]);
}

TEST(LuPipelinedTest, PipeliningBeatsPerPlaneBarriers) {
  sim::Cycles cycles[2];
  for (int v = 0; v < 2; ++v) {
    LuParams p;  // bench size
    p.pipelined = v == 1;
    auto factory = [p](rt::Runtime& rt) { return make_lu(rt, p); };
    core::ExperimentConfig cfg = core::ExperimentConfig::single(16);
    cfg.machine.mem = mem::MemParams::scaled_for_benchmarks();
    const auto res = core::run_experiment(cfg, factory);
    EXPECT_TRUE(res.workload.verified);
    cycles[v] = res.cycles;
  }
  EXPECT_LT(cycles[1], cycles[0])
      << "point-to-point pipelining should beat a 16-way barrier per plane";
}

TEST(AppRegistryTest, ExtendedSuite) {
  const auto& suite = extended_suite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "EP");
  EXPECT_EQ(suite[1].name, "FT");
  EXPECT_EQ(suite[2].name, "IS");
}

TEST(AppRegistryTest, CgDynamicChunkHalvesStaticBlock) {
  // §5.2: chunk = half the static block assignment.
  const auto sched = dynamic_schedule_for("CG", AppScale::kBench, 16);
  EXPECT_EQ(sched.kind, front::ScheduleKind::kDynamic);
  EXPECT_EQ(sched.chunk, CgParams{}.n / 32);
}

TEST(AppRegistryTest, DefaultChunkElsewhere) {
  EXPECT_EQ(dynamic_schedule_for("MG", AppScale::kBench, 16).chunk, 1);
}

TEST(AppDeterminismTest, IdenticalCyclesForIdenticalConfig) {
  auto run = [] {
    auto factory = make_workload("CG", AppScale::kTiny);
    core::ExperimentConfig cfg;
    cfg.machine.ncmp = 2;
    cfg.runtime.mode = rt::ExecutionMode::kSlipstream;
    cfg.runtime.slip = slip::SlipstreamConfig::zero_token_global();
    return core::run_experiment(cfg, factory).cycles;
  };
  EXPECT_EQ(run(), run());
}

TEST(AppResultInvarianceTest, ChecksumIndependentOfMode) {
  // The computed numerical answer must be identical whichever way the
  // machine executes it.
  for (const char* app : {"CG", "MG", "BT"}) {
    auto factory = make_workload(app, AppScale::kTiny);
    double checksums[3];
    int i = 0;
    for (auto mode : {rt::ExecutionMode::kSingle, rt::ExecutionMode::kDouble,
                      rt::ExecutionMode::kSlipstream}) {
      core::ExperimentConfig cfg;
      cfg.machine.ncmp = 2;
      cfg.runtime.mode = mode;
      cfg.runtime.slip = slip::SlipstreamConfig::one_token_local();
      checksums[i++] = core::run_experiment(cfg, factory).workload.checksum;
    }
    EXPECT_DOUBLE_EQ(checksums[0], checksums[1]) << app;
    EXPECT_DOUBLE_EQ(checksums[0], checksums[2]) << app;
  }
}

TEST(AppScaleSweepTest, ChecksumInvariantAcrossMachineSizes) {
  // The computed answer must not depend on the machine at all.
  double ref = 0.0;
  bool first = true;
  for (int ncmp : {1, 2, 4, 8}) {
    auto factory = make_workload("MG", AppScale::kTiny);
    core::ExperimentConfig cfg;
    cfg.machine.ncmp = ncmp;
    cfg.runtime.mode = rt::ExecutionMode::kSlipstream;
    cfg.runtime.slip = slip::SlipstreamConfig::one_token_local();
    const auto res = core::run_experiment(cfg, factory);
    EXPECT_TRUE(res.workload.verified) << "ncmp=" << ncmp;
    if (first) {
      ref = res.workload.checksum;
      first = false;
    } else {
      // Reduction partials are combined per thread id, so the summation
      // order varies with the machine size: agreement is to rounding.
      EXPECT_NEAR(res.workload.checksum, ref, 1e-9 * std::abs(ref))
          << "ncmp=" << ncmp;
    }
  }
}

TEST(AppScaleSweepTest, MachineSizeChangesTimingNotResults) {
  // Different machine sizes produce different timings (the machine is
  // actually being simulated) but identical verification outcomes. Note
  // the timing need not improve monotonically — at tiny scale more CMPs
  // can lose to communication, which is the paper's entire premise.
  std::set<sim::Cycles> timings;
  for (int ncmp : {1, 2, 4}) {
    auto factory = make_workload("CG", AppScale::kTiny);
    const auto res =
        core::run_experiment(core::ExperimentConfig::single(ncmp), factory);
    EXPECT_TRUE(res.workload.verified) << "ncmp=" << ncmp;
    timings.insert(res.cycles);
  }
  EXPECT_EQ(timings.size(), 3u);
}

TEST(ExperimentTest, ConfigFactories) {
  const auto s = core::ExperimentConfig::single(8);
  EXPECT_EQ(s.machine.ncmp, 8);
  EXPECT_EQ(s.runtime.mode, rt::ExecutionMode::kSingle);
  const auto d = core::ExperimentConfig::double_mode(8);
  EXPECT_EQ(d.runtime.mode, rt::ExecutionMode::kDouble);
  const auto sl = core::ExperimentConfig::slipstream(
      8, slip::SlipstreamConfig::one_token_local());
  EXPECT_EQ(sl.runtime.mode, rt::ExecutionMode::kSlipstream);
  EXPECT_EQ(sl.runtime.slip.tokens, 1);
}

TEST(ExperimentTest, BreakdownFractionsSumBelowOne) {
  auto factory = make_workload("MG", AppScale::kTiny);
  const auto res =
      core::run_experiment(core::ExperimentConfig::single(2), factory);
  double total = 0.0;
  for (int c = 0; c < sim::kTimeCategoryCount; ++c) {
    total += res.fraction(static_cast<sim::TimeCategory>(c));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(res.fraction(sim::TimeCategory::kBusy), 0.0);
}

TEST(ExperimentTest, SpeedupHelper) {
  core::ExperimentResult a, b;
  a.cycles = 1000;
  b.cycles = 800;
  EXPECT_DOUBLE_EQ(core::speedup(a, b), 1.25);
}

}  // namespace
}  // namespace ssomp::apps
