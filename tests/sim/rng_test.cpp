#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"

namespace ssomp::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ReasonableSpread) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(1u << 20));
  EXPECT_GT(seen.size(), 990u);  // virtually no collisions expected
}

TEST(SplitMixTest, KnownGoodSequence) {
  // SplitMix64 reference values for seed 0 (from the published algorithm).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace ssomp::sim
