// Engine, fiber, and CPU time-accounting tests.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace ssomp::sim {
namespace {

TEST(FiberTest, RunsBodyToCompletion) {
  int steps = 0;
  Fiber f("t", [&] { steps = 3; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(steps, 3);
}

TEST(FiberTest, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber* handle = nullptr;
  Fiber f("t", [&] {
    order.push_back(1);
    handle->yield();
    order.push_back(3);
  });
  handle = &f;
  f.resume();
  order.push_back(2);
  f.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(FiberTest, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f("t", [&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(FiberTest, DeepStackUsage) {
  // Recursion exercising a good chunk of the 256 KiB stack.
  std::function<long(long)> rec = [&](long n) -> long {
    volatile char pad[512] = {};
    (void)pad;
    return n == 0 ? 0 : n + rec(n - 1);
  };
  long result = -1;
  Fiber f("deep", [&] { result = rec(200); });
  f.resume();
  EXPECT_EQ(result, 200 * 201 / 2);
}

TEST(EngineTest, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, RunUntilStopsEarly) {
  Engine e;
  int fired = 0;
  e.schedule_at(5, [&] { ++fired; });
  e.schedule_at(50, [&] { ++fired; });
  e.run(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 5u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, EventsScheduledDuringRunExecute) {
  Engine e;
  int value = 0;
  e.schedule_at(1, [&] {
    e.schedule_after(4, [&] { value = 42; });
  });
  e.run();
  EXPECT_EQ(value, 42);
  EXPECT_EQ(e.now(), 5u);
}

TEST(SimCpuTest, ConsumeAdvancesTimeAndAccounts) {
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  cpu.start([&] {
    cpu.consume(100, TimeCategory::kBusy);
    cpu.consume(50, TimeCategory::kMemStall);
  });
  e.run();
  EXPECT_EQ(e.now(), 150u);
  EXPECT_EQ(cpu.breakdown().get(TimeCategory::kBusy), 100u);
  EXPECT_EQ(cpu.breakdown().get(TimeCategory::kMemStall), 50u);
  EXPECT_TRUE(cpu.finished());
}

TEST(SimCpuTest, ChargeDefersYieldUntilThreshold) {
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  Cycles seen_pending = 0;
  cpu.start([&] {
    cpu.charge(10, TimeCategory::kBusy);
    seen_pending = cpu.pending();
    cpu.charge(5, TimeCategory::kBusy);
    EXPECT_EQ(cpu.issue_time(), e.now() + 15);
    cpu.flush_time();
    EXPECT_EQ(cpu.pending(), 0u);
  });
  e.run();
  EXPECT_EQ(seen_pending, 10u);
  EXPECT_EQ(e.now(), 15u);
  EXPECT_EQ(cpu.breakdown().get(TimeCategory::kBusy), 15u);
}

TEST(SimCpuTest, ChargeAutoFlushesPastQuantum) {
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  cpu.start([&] {
    for (int i = 0; i < 100; ++i) cpu.charge(10, TimeCategory::kBusy);
    cpu.flush_time();
  });
  e.run();
  EXPECT_EQ(e.now(), 1000u);
}

TEST(SimCpuTest, BlockAndWake) {
  Engine e;
  SimCpu& sleeper = e.add_cpu("sleeper");
  SimCpu& waker = e.add_cpu("waker");
  Cycles woke_at = 0;
  sleeper.start([&] {
    sleeper.block(TimeCategory::kJobWait);
    woke_at = e.now();
  });
  waker.start([&] {
    waker.consume(500, TimeCategory::kBusy);
    sleeper.wake();
  });
  e.run();
  EXPECT_EQ(woke_at, 500u);
  EXPECT_EQ(sleeper.breakdown().get(TimeCategory::kJobWait), 500u);
}

TEST(SimCpuTest, WakeWithDelay) {
  Engine e;
  SimCpu& sleeper = e.add_cpu("s");
  SimCpu& waker = e.add_cpu("w");
  Cycles woke_at = 0;
  sleeper.start([&] {
    sleeper.block(TimeCategory::kBarrier);
    woke_at = e.now();
  });
  waker.start([&] {
    waker.consume(100, TimeCategory::kBusy);
    sleeper.wake(25);
  });
  e.run();
  EXPECT_EQ(woke_at, 125u);
}

TEST(SimCpuTest, BlockFlushesPendingCharges) {
  Engine e;
  SimCpu& sleeper = e.add_cpu("s");
  SimCpu& waker = e.add_cpu("w");
  sleeper.start([&] {
    sleeper.charge(40, TimeCategory::kBusy);
    sleeper.block(TimeCategory::kJobWait);  // must flush the 40 first
  });
  waker.start([&] {
    waker.consume(100, TimeCategory::kBusy);
    sleeper.wake();
  });
  e.run();
  // Waiting started at 40, ended at 100.
  EXPECT_EQ(sleeper.breakdown().get(TimeCategory::kJobWait), 60u);
}

TEST(SimCpuTest, InterleavingIsDeterministic) {
  auto run_once = [] {
    Engine e;
    std::vector<int> order;
    for (int c = 0; c < 4; ++c) {
      SimCpu& cpu = e.add_cpu("p" + std::to_string(c));
      cpu.start([&e, &cpu, &order, c] {
        for (int i = 0; i < 10; ++i) {
          cpu.consume(static_cast<Cycles>(7 + c), TimeCategory::kBusy);
          order.push_back(c);
        }
        (void)e;
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimCpuTest, FinishTimeRecorded) {
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  cpu.start([&] { cpu.consume(123, TimeCategory::kBusy); });
  e.run();
  EXPECT_EQ(cpu.finish_time(), 123u);
}

TEST(EngineTimerTest, ArmedTimerFiresAfterOrdinaryEventsDrain) {
  // Hardware-timer semantics: unlike auxiliary cancelable events, an
  // armed timer is not dropped when the last ordinary event drains — a
  // hung simulation's next real event IS the timer expiry.
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  bool fired = false;
  cpu.start([&] { cpu.consume(10, TimeCategory::kBusy); });
  (void)e.schedule_timer_at(100, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineTimerTest, CancelledTimerIsDroppedWithoutAdvancingTime) {
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  bool fired = false;
  auto handle = e.schedule_timer_at(100, [&] { fired = true; });
  cpu.start([&] {
    cpu.consume(10, TimeCategory::kBusy);
    handle.cancel();  // disarm: the wait this timer guarded completed
  });
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 10u);  // cycle-identical to a run with no timer
}

TEST(EngineTimerTest, TimerAfterIsRelativeToNow) {
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  Cycles fired_at = 0;
  cpu.start([&] {
    cpu.consume(40, TimeCategory::kBusy);
    (void)e.schedule_timer_after(60, [&] { fired_at = e.now(); });
    cpu.consume(5, TimeCategory::kBusy);
  });
  e.run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(EngineTimerTest, CancelableAuxEventDropsWhenOrdinaryDrain) {
  // Contrast with the timer above: an auxiliary cancelable event is
  // dropped once no ordinary event remains to observe it.
  Engine e;
  SimCpu& cpu = e.add_cpu("p0");
  bool fired = false;
  cpu.start([&] { cpu.consume(10, TimeCategory::kBusy); });
  (void)e.schedule_cancelable_at(100, [&] { fired = true; });
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 10u);
}

TEST(TimeBreakdownTest, TotalsAndMerge) {
  TimeBreakdown a;
  a.add(TimeCategory::kBusy, 10);
  a.add(TimeCategory::kLock, 5);
  TimeBreakdown b;
  b.add(TimeCategory::kBusy, 1);
  a += b;
  EXPECT_EQ(a.get(TimeCategory::kBusy), 11u);
  EXPECT_EQ(a.total(), 16u);
  a.clear();
  EXPECT_EQ(a.total(), 0u);
}

TEST(TimeCategoryTest, NamesAreStable) {
  EXPECT_EQ(to_string(TimeCategory::kBusy), "busy");
  EXPECT_EQ(to_string(TimeCategory::kJobWait), "job_wait");
  EXPECT_EQ(to_string(TimeCategory::kTokenWait), "token_wait");
}

}  // namespace
}  // namespace ssomp::sim
