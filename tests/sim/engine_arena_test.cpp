// Event-arena and allocation-discipline tests for the engine hot path:
// slot recycling, generation-counter cancellation, semantic equivalence
// of the pooled queue with the reference event semantics, and the
// zero-allocation guarantee for steady-state scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <random>
#include <vector>

#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/event_arena.hpp"

// ---------------------------------------------------------------------
// Global operator-new hook. Counting is off by default, so the rest of
// the test binary (gtest, other suites) is unaffected; the allocation
// tests below switch it on around the region they assert over.
namespace {
std::atomic<std::uint64_t> g_new_count{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_new_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ssomp::sim {
namespace {

struct AllocWindow {
  AllocWindow() {
    g_new_count.store(0);
    g_count_allocs.store(true);
  }
  ~AllocWindow() { g_count_allocs.store(false); }
  [[nodiscard]] std::uint64_t count() const { return g_new_count.load(); }
};

// ---------------------------------------------------------------------
// InlineCallback

TEST(InlineCallbackTest, SmallCallableStoredInline) {
  std::uint64_t n = 0;
  AllocWindow w;
  InlineCallback cb;
  cb.emplace([&n] { ++n; });
  cb();
  cb();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(w.count(), 0u);  // fits the inline buffer: no heap
}

TEST(InlineCallbackTest, OversizedCallableFallsBackToHeap) {
  struct Big {
    char pad[128] = {};
    std::uint64_t* out = nullptr;
  };
  std::uint64_t n = 0;
  Big big;
  big.out = &n;
  auto fn = [big] { ++*big.out; };
  static_assert(!InlineCallback::stored_inline<decltype(fn)>());
  InlineCallback cb;
  cb.emplace(fn);
  cb();
  EXPECT_EQ(n, 1u);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  auto flag = std::make_shared<int>(7);
  InlineCallback a;
  a.emplace([flag] { ++*flag; });
  EXPECT_EQ(flag.use_count(), 2);
  InlineCallback b = std::move(a);
  EXPECT_TRUE(a.empty());
  ASSERT_FALSE(b.empty());
  b();
  EXPECT_EQ(*flag, 8);
  b.reset();
  EXPECT_EQ(flag.use_count(), 1);  // destroyed exactly once
}

// ---------------------------------------------------------------------
// EventArena

TEST(EventArenaTest, PoolReusesSlotsAfterChurn) {
  EventArena arena;
  // Far more acquire/release cycles than slots: capacity must stay at
  // one chunk because released slots are recycled through the free list.
  for (int round = 0; round < 1000; ++round) {
    const std::uint32_t idx = arena.acquire([] {}, false, false);
    arena.release(idx);
  }
  EXPECT_EQ(arena.capacity(), 64u);
  EXPECT_EQ(arena.live_slots(), 0u);

  // Interleaved bursts: hold a working set, release in mixed order.
  std::vector<std::uint32_t> held;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 48; ++i) {
      held.push_back(arena.acquire([] {}, false, false));
    }
    for (std::size_t i = 0; i < held.size(); i += 2) {
      arena.release(held[i]);
    }
    for (std::size_t i = 1; i < held.size(); i += 2) {
      arena.release(held[i]);
    }
    held.clear();
  }
  EXPECT_EQ(arena.capacity(), 64u);
  EXPECT_EQ(arena.live_slots(), 0u);
}

TEST(EventArenaTest, GenerationAdvancesOnRelease) {
  EventArena arena;
  const std::uint32_t idx = arena.acquire([] {}, false, false);
  const std::uint32_t gen = arena.slot(idx).gen;
  arena.release(idx);
  const std::uint32_t again = arena.acquire([] {}, false, false);
  ASSERT_EQ(again, idx);  // LIFO free list hands the same slot back
  EXPECT_NE(arena.slot(idx).gen, gen);
  arena.release(again);
}

TEST(EngineCancelTest, StaleHandleCannotCancelRecycledSlot) {
  Engine e;
  bool first = false;
  bool second = false;
  auto h1 = e.schedule_cancelable_at(10, [&first] { first = true; });
  e.schedule_at(20, [] {});  // keeps the queue ordinary so aux events run
  e.run(15);
  EXPECT_TRUE(first);     // fired; its arena slot was recycled
  EXPECT_FALSE(h1.armed());

  // The recycled slot is reused by a new event; the stale handle must
  // not be able to cancel it (generation mismatch).
  auto h2 = e.schedule_cancelable_at(18, [&second] { second = true; });
  h1.cancel();
  EXPECT_TRUE(h2.armed());
  e.run();
  EXPECT_TRUE(second);
}

TEST(EngineCancelTest, CancelInsideOwnCallbackIsNoop) {
  Engine e;
  Engine::CancelHandle self;
  int fired = 0;
  self = e.schedule_cancelable_at(5, [&] {
    ++fired;
    EXPECT_FALSE(self.armed());  // already fired: handle reads disarmed
    self.cancel();               // must be a harmless no-op
  });
  e.schedule_at(10, [] {});
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineCancelTest, DoubleCancelIsNoop) {
  Engine e;
  bool fired = false;
  auto h = e.schedule_cancelable_at(10, [&fired] { fired = true; });
  auto copy = h;
  h.cancel();
  copy.cancel();  // second cancel through a copied handle: no-op
  e.schedule_at(20, [] {});
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 20u);
}

// ---------------------------------------------------------------------
// Satellite regression: a cancelled timer sharing a timestamp with an
// ordinary event must not perturb event accounting or time.

TEST(EngineCancelTest, CancelledTimerAtSameCycleDoesNotPerturbAccounting) {
  Engine e;
  std::vector<int> order;
  auto timer = e.schedule_timer_at(10, [&] { order.push_back(99); });
  e.schedule_at(10, [&] { order.push_back(1); });
  timer.cancel();
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(e.now(), 10u);
  EXPECT_EQ(e.events_processed(), 1u);  // the dropped timer never counts
}

TEST(EngineCancelTest, TimerCancelledByCoTimedEventIsDropped) {
  // The ordinary event at t=10 runs first (earlier seq: ties break by
  // insertion order) and disarms the timer also pending at t=10 — the
  // timer must be discarded mid-run.
  Engine e;
  std::vector<int> order;
  Engine::CancelHandle timer;
  e.schedule_at(10, [&] {
    order.push_back(1);
    timer.cancel();
  });
  timer = e.schedule_timer_at(10, [&] { order.push_back(99); });
  e.schedule_at(11, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.events_processed(), 2u);
}

TEST(EngineCancelTest, TimerSurvivesOrdinaryDrainAuxDoesNot) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  (void)e.schedule_cancelable_at(50, [&] { order.push_back(98); });
  (void)e.schedule_timer_at(100, [&] { order.push_back(2); });
  e.run();
  // Aux dropped at the drain, timer fired as the wedge-breaker.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), 100u);
}

// ---------------------------------------------------------------------
// Property test: the pooled engine is observation-equivalent to the
// reference semantics (the previous std::function/shared_ptr design) on
// randomized schedule/cancel/run sequences.

/// Reference implementation of the engine's event semantics, kept
/// deliberately naive: heap-allocated closures, shared_ptr cancellation
/// flags, the exact drop rules the real engine documents.
class RefEngine {
 public:
  using Handle = std::shared_ptr<bool>;

  void schedule_at(Cycles when, std::function<void()> fn) {
    push(when, std::move(fn), false, false, nullptr);
    ++ordinary_;
  }
  Handle schedule_cancelable_at(Cycles when, std::function<void()> fn) {
    auto h = std::make_shared<bool>(false);
    push(when, std::move(fn), true, false, h);
    return h;
  }
  Handle schedule_timer_at(Cycles when, std::function<void()> fn) {
    auto h = std::make_shared<bool>(false);
    push(when, std::move(fn), true, true, h);
    return h;
  }

  Cycles run(Cycles until = ~Cycles{0}) {
    while (!q_.empty()) {
      const Ev& top = q_.top();
      if (top.cancelled && *top.cancelled) {
        q_.pop();
        continue;
      }
      if (top.cancelable && !top.timer && ordinary_ == 0) {
        q_.pop();
        continue;
      }
      if (top.when > until) break;
      Ev ev = top;
      q_.pop();
      now_ = ev.when;
      ++events_;
      if (!ev.cancelable) --ordinary_;
      ev.fn();
    }
    return now_;
  }

  [[nodiscard]] Cycles now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_; }

 private:
  struct Ev {
    Cycles when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool cancelable;
    bool timer;
    Handle cancelled;
  };
  struct Order {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void push(Cycles when, std::function<void()> fn, bool cancelable,
            bool timer, Handle h) {
    q_.push(Ev{when, seq_++, std::move(fn), cancelable, timer, std::move(h)});
  }

  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t ordinary_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Order> q_;
};

TEST(EnginePropertyTest, RandomSequencesMatchReferenceSemantics) {
  std::mt19937 rng(0xC0FFEEu);
  for (int trial = 0; trial < 50; ++trial) {
    Engine real;
    RefEngine ref;
    std::vector<int> real_log;
    std::vector<int> ref_log;
    std::vector<Engine::CancelHandle> real_handles;
    std::vector<RefEngine::Handle> ref_handles;
    int next_id = 0;

    for (int op = 0; op < 200; ++op) {
      const int kind = static_cast<int>(rng() % 6);
      const Cycles delay = rng() % 37;
      switch (kind) {
        case 0:
        case 1: {  // ordinary event
          const int id = next_id++;
          real.schedule_at(real.now() + delay,
                           [&real_log, id] { real_log.push_back(id); });
          ref.schedule_at(ref.now() + delay,
                          [&ref_log, id] { ref_log.push_back(id); });
          break;
        }
        case 2: {  // cancelable auxiliary event
          const int id = next_id++;
          real_handles.push_back(real.schedule_cancelable_at(
              real.now() + delay,
              [&real_log, id] { real_log.push_back(id); }));
          ref_handles.push_back(ref.schedule_cancelable_at(
              ref.now() + delay, [&ref_log, id] { ref_log.push_back(id); }));
          break;
        }
        case 3: {  // timer event
          const int id = next_id++;
          real_handles.push_back(real.schedule_timer_at(
              real.now() + delay,
              [&real_log, id] { real_log.push_back(id); }));
          ref_handles.push_back(ref.schedule_timer_at(
              ref.now() + delay, [&ref_log, id] { ref_log.push_back(id); }));
          break;
        }
        case 4: {  // cancel a random outstanding handle
          if (!real_handles.empty()) {
            const std::size_t pick = rng() % real_handles.size();
            real_handles[pick].cancel();
            *ref_handles[pick] = true;
          }
          break;
        }
        case 5: {  // bounded run
          const Cycles until = real.now() + delay;
          EXPECT_EQ(real.run(until), ref.run(until));
          break;
        }
      }
      ASSERT_EQ(real.now(), ref.now()) << "trial " << trial << " op " << op;
    }
    EXPECT_EQ(real.run(), ref.run()) << "trial " << trial;
    EXPECT_EQ(real_log, ref_log) << "trial " << trial;
    EXPECT_EQ(real.events_processed(), ref.events_processed())
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Allocation discipline: steady-state scheduling is heap-free.

TEST(EngineAllocTest, SteadyStateSchedulingIsAllocationFree) {
  Engine e;
  std::uint64_t n = 0;
  // Warm-up: grow the queue vector and the arena chunk past the working
  // set this test uses.
  for (int i = 0; i < 48; ++i) {
    e.schedule_after(static_cast<Cycles>(i), [&n] { ++n; });
  }
  e.run();

  {
    AllocWindow w;
    for (int round = 0; round < 1000; ++round) {
      for (int i = 0; i < 48; ++i) {
        e.schedule_after(static_cast<Cycles>(i % 7), [&n] { ++n; });
      }
      e.run();
    }
    EXPECT_EQ(w.count(), 0u) << "heap allocation on the event hot path";
  }
  EXPECT_EQ(n, 48u + 48u * 1000u);
}

TEST(EngineAllocTest, WakeResumeIsAllocationFree) {
  Engine e;
  SimCpu& cpu = e.add_cpu("w");
  std::uint64_t wakes = 0;
  cpu.start([&] {
    while (true) {
      cpu.block(TimeCategory::kTokenWait);
      ++wakes;
    }
  });
  e.run();  // create the fiber, reach the first block()

  {
    AllocWindow w;
    for (int round = 0; round < 1000; ++round) {
      cpu.wake(1);
      e.run();
    }
    EXPECT_EQ(w.count(), 0u) << "heap allocation on the wake/resume path";
  }
  EXPECT_EQ(wakes, 1000u);
}

TEST(EngineAllocTest, CancelableChurnIsAllocationFree) {
  Engine e;
  // Warm-up acquires the first arena chunk.
  auto h0 = e.schedule_cancelable_after(10, [] {});
  h0.cancel();
  e.run();  // drop the stale queue entry
  {
    AllocWindow w;
    for (int round = 0; round < 1000; ++round) {
      auto h = e.schedule_cancelable_after(1000, [] {});
      h.cancel();
      e.run();  // pop the stale entry so the queue never grows
    }
    EXPECT_EQ(w.count(), 0u) << "heap allocation in cancelable churn";
  }
  EXPECT_EQ(e.event_pool_capacity(), 64u);
}

}  // namespace
}  // namespace ssomp::sim
