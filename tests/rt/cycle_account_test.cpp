// Cycle accounting: every simulated cycle of every CPU lands in exactly
// one exclusive bucket (sum(buckets) == breakdown total, audited by
// run_experiment), and the buckets a run populates match its execution
// mode — token waits only under slipstream, recovery/resync only when
// the recovery machinery runs, degraded only after a demotion, syscall
// waits only when the A-stream consumes forwarded scheduling decisions.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/experiment.hpp"
#include "slip/config.hpp"
#include "slip/faultinject.hpp"

namespace ssomp::rt {
namespace {

using trace::CycleAccount;

core::ExperimentConfig base_config(ExecutionMode mode) {
  core::ExperimentConfig ec;
  ec.machine.ncmp = 2;
  ec.runtime.mode = mode;
  ec.runtime.slip = slip::SlipstreamConfig::one_token_local();
  ec.runtime.audit = true;
  return ec;
}

core::ExperimentResult run_app(const char* app,
                               const core::ExperimentConfig& ec,
                               front::ScheduleClause sched = {}) {
  auto factory = apps::make_workload(app, apps::AppScale::kTiny, sched);
  return core::run_experiment(ec, factory);
}

sim::Cycles bucket(const core::ExperimentResult& res, sim::CycleBucket b) {
  return res.cycle_account.bucket_total(b);
}

void expect_identity(const core::ExperimentResult& res) {
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.cycle_account_ok)
      << (res.cycle_account_violations.empty()
              ? ""
              : res.cycle_account_violations.front());
  EXPECT_GT(res.cycle_account.total(), 0u);
}

TEST(CycleAccountTest, IdentityHoldsInEveryExecutionMode) {
  for (ExecutionMode mode : {ExecutionMode::kSingle, ExecutionMode::kDouble,
                             ExecutionMode::kSlipstream}) {
    const auto res = run_app("CG", base_config(mode));
    expect_identity(res);
    // Serial slot plus at least one parallel region.
    EXPECT_GT(res.cycle_account.slots(), 1);
    EXPECT_GT(res.cycle_account.cpus(), 0);
  }
}

TEST(CycleAccountTest, NonSlipstreamModesNeverWaitOnTokens) {
  for (ExecutionMode mode :
       {ExecutionMode::kSingle, ExecutionMode::kDouble}) {
    const auto res = run_app("CG", base_config(mode));
    expect_identity(res);
    EXPECT_EQ(bucket(res, sim::CycleBucket::kTokenWait), 0u);
    EXPECT_EQ(bucket(res, sim::CycleBucket::kRecovery), 0u);
    EXPECT_EQ(bucket(res, sim::CycleBucket::kRestartResync), 0u);
    EXPECT_EQ(bucket(res, sim::CycleBucket::kDegraded), 0u);
    EXPECT_GT(bucket(res, sim::CycleBucket::kCompute), 0u);
  }
}

TEST(CycleAccountTest, SlipstreamPopulatesTokenWait) {
  auto ec = base_config(ExecutionMode::kSlipstream);
  ec.runtime.slip = slip::SlipstreamConfig::zero_token_global();
  const auto res = run_app("CG", ec);
  expect_identity(res);
  // Zero-token global blocks the A-stream at every barrier.
  EXPECT_GT(bucket(res, sim::CycleBucket::kTokenWait), 0u);
  EXPECT_EQ(bucket(res, sim::CycleBucket::kRecovery), 0u);
}

TEST(CycleAccountTest, SyscallWaitAppearsOnlyUnderForwardedScheduling) {
  front::ScheduleClause dyn;
  dyn.kind = front::ScheduleKind::kDynamic;
  dyn.chunk = 2;
  const auto forwarded =
      run_app("CG", base_config(ExecutionMode::kSlipstream), dyn);
  expect_identity(forwarded);
  EXPECT_GT(bucket(forwarded, sim::CycleBucket::kSyscallWait), 0u);

  const auto statics = run_app("CG", base_config(ExecutionMode::kSlipstream));
  expect_identity(statics);
  EXPECT_EQ(bucket(statics, sim::CycleBucket::kSyscallWait), 0u);
}

TEST(CycleAccountTest, ForcedRecoveryChargesTheRecoveryBucket) {
  auto ec = base_config(ExecutionMode::kSlipstream);
  ec.runtime.slip = slip::SlipstreamConfig::zero_token_global();
  ec.runtime.fault = {
      .kind = slip::FaultKind::kRecoverInConsume, .node = 0, .visit = 1};
  const auto res = run_app("CG", ec);
  expect_identity(res);
  EXPECT_GE(res.slip.recoveries, 1u);
  EXPECT_GT(bucket(res, sim::CycleBucket::kRecovery), 0u);
}

TEST(CycleAccountTest, RestartChargesResyncAndIdentityHoldsUnderStress) {
  auto ec = base_config(ExecutionMode::kSlipstream);
  ec.runtime.fault = {
      .kind = slip::FaultKind::kRStreamTokenLoss, .node = 0, .visit = 2};
  ec.runtime.recovery = RecoveryPolicy::kRestart;
  ec.runtime.divergence_threshold = 2;
  ec.runtime.watchdog_cycles = 50000;
  const auto res = run_app("CG", ec);
  expect_identity(res);
  EXPECT_GT(res.slip.restarts, 0u);
  EXPECT_GT(bucket(res, sim::CycleBucket::kRecovery), 0u);
  EXPECT_GT(bucket(res, sim::CycleBucket::kRestartResync), 0u);
}

TEST(CycleAccountTest, DemotedCmpChargesDegradedCycles) {
  auto ec = base_config(ExecutionMode::kSlipstream);
  ec.runtime.fault = {
      .kind = slip::FaultKind::kRStreamTokenLoss, .node = 1, .visit = 1};
  ec.runtime.recovery = RecoveryPolicy::kRestart;
  ec.runtime.divergence_threshold = 1;
  ec.runtime.watchdog_cycles = 50000;
  ec.runtime.degrade = {.enabled = true, .demote_after = 1,
                        .probation = 1000};
  const auto res = run_app("CG", ec);
  expect_identity(res);
  EXPECT_GE(res.slip.demotions, 1u);
  EXPECT_GT(bucket(res, sim::CycleBucket::kDegraded), 0u);
}

TEST(CycleAccountTest, PerCpuRowsSumToTheBucketTotals) {
  const auto res = run_app("CG", base_config(ExecutionMode::kSlipstream));
  expect_identity(res);
  const CycleAccount& a = res.cycle_account;
  for (int b = 0; b < sim::kCycleBucketCount; ++b) {
    sim::Cycles sum = 0;
    for (int c = 0; c < a.cpus(); ++c) {
      sum += a.cpu_total(c).get(static_cast<sim::CycleBucket>(b));
    }
    EXPECT_EQ(sum, a.bucket_total(static_cast<sim::CycleBucket>(b)))
        << to_string(static_cast<sim::CycleBucket>(b));
  }
}

}  // namespace
}  // namespace ssomp::rt
