// DegradationController state-machine tests (rt/degrade.hpp).
#include <gtest/gtest.h>

#include "rt/degrade.hpp"

namespace ssomp::rt {
namespace {

using State = DegradationController::State;
using Transition = DegradationController::Transition;

TEST(DegradationControllerTest, DisabledControllerAlwaysAllowsSlipstream) {
  DegradationController c(false, 1, 1, 2);
  EXPECT_FALSE(c.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.on_region_end(0, true), Transition::kNone);
  }
  EXPECT_TRUE(c.slipstream_allowed(0));
  EXPECT_EQ(c.demotions(), 0u);
}

TEST(DegradationControllerTest, DemotesAfterConsecutiveRecoveredRegions) {
  DegradationController c(true, 2, 4, 2);
  EXPECT_EQ(c.on_region_end(0, true), Transition::kNone);  // strike 1
  EXPECT_TRUE(c.slipstream_allowed(0));
  EXPECT_EQ(c.on_region_end(0, true), Transition::kDemoted);  // strike 2
  EXPECT_FALSE(c.slipstream_allowed(0));
  EXPECT_EQ(c.state(0), State::kDegraded);
  EXPECT_EQ(c.demotions(), 1u);
  // The other node's record is independent.
  EXPECT_TRUE(c.slipstream_allowed(1));
  EXPECT_EQ(c.state(1), State::kHealthy);
}

TEST(DegradationControllerTest, CleanRegionResetsTheStrikeCount) {
  DegradationController c(true, 2, 4, 1);
  EXPECT_EQ(c.on_region_end(0, true), Transition::kNone);
  EXPECT_EQ(c.on_region_end(0, false), Transition::kNone);  // forgiven
  EXPECT_EQ(c.on_region_end(0, true), Transition::kNone);   // strike 1 again
  EXPECT_TRUE(c.slipstream_allowed(0));
}

TEST(DegradationControllerTest, ProbationAfterServingDemotedRegions) {
  DegradationController c(true, 1, 2, 1);
  EXPECT_EQ(c.on_region_end(0, true), Transition::kDemoted);
  EXPECT_EQ(c.on_region_end(0, false), Transition::kNone);  // demoted 1/2
  EXPECT_FALSE(c.slipstream_allowed(0));
  EXPECT_EQ(c.on_region_end(0, false), Transition::kPromoted);  // 2/2
  EXPECT_EQ(c.state(0), State::kProbation);
  EXPECT_TRUE(c.slipstream_allowed(0));  // trial region gets an A-stream
  EXPECT_EQ(c.promotions(), 1u);
}

TEST(DegradationControllerTest, CleanProbationRestoresHealthy) {
  DegradationController c(true, 1, 1, 1);
  EXPECT_EQ(c.on_region_end(0, true), Transition::kDemoted);
  EXPECT_EQ(c.on_region_end(0, false), Transition::kPromoted);
  EXPECT_EQ(c.on_region_end(0, false), Transition::kRestored);
  EXPECT_EQ(c.state(0), State::kHealthy);
  // A fresh divergence starts a fresh strike count, not instant demotion.
  EXPECT_EQ(c.on_region_end(0, true), Transition::kDemoted);  // demote_after=1
}

TEST(DegradationControllerTest, RecoveredProbationGoesStraightBack) {
  DegradationController c(true, 1, 2, 1);
  EXPECT_EQ(c.on_region_end(0, true), Transition::kDemoted);
  EXPECT_EQ(c.on_region_end(0, false), Transition::kNone);
  EXPECT_EQ(c.on_region_end(0, false), Transition::kPromoted);
  EXPECT_EQ(c.on_region_end(0, true), Transition::kDemoted);  // failed trial
  EXPECT_EQ(c.state(0), State::kDegraded);
  EXPECT_EQ(c.demotions(), 2u);
  EXPECT_EQ(c.promotions(), 1u);
}

TEST(DegradationControllerTest, StateNamesAreStable) {
  EXPECT_EQ(to_string(State::kHealthy), "healthy");
  EXPECT_EQ(to_string(State::kDegraded), "degraded");
  EXPECT_EQ(to_string(State::kProbation), "probation");
}

}  // namespace
}  // namespace ssomp::rt
